(* Tests for the SoC generators: the Kite core is differential-tested
   against its ISA reference interpreter; the scratchpad, crossbar and
   accelerators are checked against hand computations. *)

open Firrtl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let halted sim = Rtlsim.Sim.get sim "halted" = 1

let run_soc_until_halt ?(max_cycles = 200_000) circuit ~program ~data =
  let sim = Rtlsim.Sim.of_circuit circuit in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data program;
  let cycles =
    Rtlsim.Sim.run_until sim ~max_cycles (fun s -> Rtlsim.Sim.get s "halted" = 1)
  in
  (sim, cycles)

let reference_run ~mem_words ~program ~data =
  let m = Socgen.Kite_isa.make_machine ~mem_words in
  Socgen.Kite_isa.load_words m (Socgen.Kite_isa.assemble program);
  List.iter (fun (a, v) -> m.Socgen.Kite_isa.mem.(a) <- v) data;
  Socgen.Kite_isa.run m ~max_steps:100_000;
  m

(* ------------------------------------------------------------------ *)
(* Kite core differential tests                                        *)
(* ------------------------------------------------------------------ *)

let diff_test ~program ~data ~watch_addrs () =
  let circuit = Socgen.Soc.single_core_soc ~mem_latency:1 () in
  let sim, _ = run_soc_until_halt circuit ~program ~data in
  let m = reference_run ~mem_words:1024 ~program ~data in
  List.iter
    (fun a ->
      check_int
        (Printf.sprintf "mem[%d]" a)
        m.Socgen.Kite_isa.mem.(a)
        (Rtlsim.Sim.peek_mem sim "mem$mem" a))
    watch_addrs;
  check_int "retired instructions" m.Socgen.Kite_isa.retired (Rtlsim.Sim.get sim "retired")

let test_core_sum () =
  let data = List.mapi (fun i v -> (32 + i, v)) [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  diff_test ~program:(Socgen.Kite_isa.sum_program ~base:32 ~n:8 ~dst:60) ~data
    ~watch_addrs:[ 60 ] ()

let test_core_fib () =
  diff_test ~program:(Socgen.Kite_isa.fib_program ~n:20 ~dst:60) ~data:[] ~watch_addrs:[ 60 ] ()

let test_core_fib_zero () =
  diff_test ~program:(Socgen.Kite_isa.fib_program ~n:0 ~dst:60) ~data:[] ~watch_addrs:[ 60 ] ()

let test_core_memcopy () =
  let data = List.mapi (fun i v -> (40 + i, v)) [ 11; 22; 33; 44; 55 ] in
  diff_test
    ~program:(Socgen.Kite_isa.memcopy_program ~src:40 ~dst:50 ~n:5)
    ~data
    ~watch_addrs:[ 50; 51; 52; 53; 54 ]
    ()

let test_core_alu_ops () =
  (* Exercise every ALU funct and both branches. *)
  let open Socgen.Kite_isa in
  let program =
    [
      Addi (1, 0, 13);
      Addi (2, 0, 5);
      Addi (5, 0, 60);
      Alu (F_add, 3, 1, 2);
      Sw (3, 5, 0);
      Alu (F_sub, 3, 1, 2);
      Sw (3, 5, 1);
      Alu (F_and, 3, 1, 2);
      Sw (3, 5, 2);
      Alu (F_or, 3, 1, 2);
      Sw (3, 5, 3);
      Alu (F_xor, 3, 1, 2);
      Sw (3, 5, 4);
      Alu (F_sll, 3, 1, 2);
      Sw (3, 5, 5);
      Alu (F_srl, 3, 1, 2);
      Sw (3, 5, 6);
      Alu (F_slt, 3, 1, 2);
      Sw (3, 5, 7);
      Alu (F_mul, 3, 1, 2);
      Sw (3, 5, 8);
      Alu (F_slt, 3, 2, 1);
      Sw (3, 5, 9);
      Jal (4, 1) (* skip the next instruction *);
      Sw (1, 5, 10) (* must NOT execute *);
      Sw (4, 5, 11) (* link register value *);
      Halt;
    ]
  in
  diff_test ~program ~data:[]
    ~watch_addrs:(List.init 12 (fun i -> 60 + i))
    ()

let test_core_latency_sensitivity () =
  (* Same program under different memory latencies: same results, more
     cycles. *)
  let program = Socgen.Kite_isa.fib_program ~n:10 ~dst:60 in
  let run lat =
    let circuit = Socgen.Soc.single_core_soc ~mem_latency:lat () in
    run_soc_until_halt circuit ~program ~data:[]
  in
  let sim_fast, cycles_fast = run 0 in
  let sim_slow, cycles_slow = run 6 in
  check_int "same result" (Rtlsim.Sim.peek_mem sim_fast "mem$mem" 60)
    (Rtlsim.Sim.peek_mem sim_slow "mem$mem" 60);
  check_bool "slower memory costs cycles" true (cycles_slow > cycles_fast)

let prop_core_random_programs =
  (* Random straight-line ALU/store programs against the reference. *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (oneof
           [
             map3 (fun rd rs i -> Socgen.Kite_isa.Addi (rd, rs, i)) (int_range 1 7) (int_bound 7)
               (int_range (-64) 63);
             map3
               (fun f (rd, rs1) rs2 -> Socgen.Kite_isa.Alu (f, rd, rs1, rs2))
               (oneofl
                  Socgen.Kite_isa.
                    [ F_add; F_sub; F_and; F_or; F_xor; F_sll; F_srl; F_slt; F_mul ])
               (pair (int_range 1 7) (int_bound 7))
               (int_bound 7);
             map2 (fun r a -> Socgen.Kite_isa.Sw (r, 0, a)) (int_bound 7) (int_range 40 63);
           ]))
  in
  QCheck.Test.make ~name:"random straight-line programs match reference" ~count:25
    (QCheck.make gen)
    (fun body ->
      let program = body @ [ Socgen.Kite_isa.Halt ] in
      let circuit = Socgen.Soc.single_core_soc ~mem_latency:0 () in
      let sim, _ = run_soc_until_halt circuit ~program ~data:[] in
      let m = reference_run ~mem_words:1024 ~program ~data:[] in
      List.for_all
        (fun a -> m.Socgen.Kite_isa.mem.(a) = Rtlsim.Sim.peek_mem sim "mem$mem" a)
        (List.init 24 (fun i -> 40 + i))
      && m.Socgen.Kite_isa.retired = Rtlsim.Sim.get sim "retired")

(* ------------------------------------------------------------------ *)
(* Scratchpad                                                          *)
(* ------------------------------------------------------------------ *)

let test_scratchpad_latency () =
  let flat =
    Flatten.flatten
      (Flatten.to_circuit (Socgen.Memsys.scratchpad ~depth:64 ~latency:3 ()))
  in
  let s = Rtlsim.Sim.create flat in
  Rtlsim.Sim.poke_mem s "mem" 5 77;
  Rtlsim.Sim.set_input s "req_valid" 1;
  Rtlsim.Sim.set_input s "req_addr" 5;
  Rtlsim.Sim.set_input s "req_wen" 0;
  Rtlsim.Sim.set_input s "resp_ready" 1;
  (* Accept at cycle 0; response should appear latency+1 cycles later. *)
  Rtlsim.Sim.step s;
  Rtlsim.Sim.set_input s "req_valid" 0;
  let waited = ref 0 in
  Rtlsim.Sim.eval_comb s;
  while Rtlsim.Sim.get s "resp_valid" = 0 do
    incr waited;
    Rtlsim.Sim.step s;
    Rtlsim.Sim.eval_comb s
  done;
  check_int "wait cycles" 3 !waited;
  check_int "data" 77 (Rtlsim.Sim.get s "resp_data")

let test_scratchpad_write () =
  let flat =
    Flatten.flatten
      (Flatten.to_circuit (Socgen.Memsys.scratchpad ~depth:64 ~latency:0 ()))
  in
  let s = Rtlsim.Sim.create flat in
  Rtlsim.Sim.set_input s "req_valid" 1;
  Rtlsim.Sim.set_input s "req_addr" 9;
  Rtlsim.Sim.set_input s "req_wdata" 123;
  Rtlsim.Sim.set_input s "req_wen" 1;
  Rtlsim.Sim.set_input s "resp_ready" 1;
  Rtlsim.Sim.step s;
  check_int "stored" 123 (Rtlsim.Sim.peek_mem s "mem" 9)

(* ------------------------------------------------------------------ *)
(* Multi-core SoC with crossbar                                        *)
(* ------------------------------------------------------------------ *)

let test_multicore_halts () =
  let circuit = Socgen.Soc.multi_core_soc ~cores:3 ~mem_latency:1 () in
  let sim = Rtlsim.Sim.of_circuit circuit in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data:[]
    (Socgen.Kite_isa.fib_program ~n:8 ~dst:60);
  let _ =
    Rtlsim.Sim.run_until sim ~max_cycles:500_000 (fun s ->
        Rtlsim.Sim.get s "all_halted" = 1)
  in
  (* All three cores raced through the same code; each retired the same
     instruction count. *)
  let r0 = Rtlsim.Sim.get sim "retired0" in
  check_bool "retired something" true (r0 > 0);
  check_int "core1 same count" r0 (Rtlsim.Sim.get sim "retired1");
  check_int "core2 same count" r0 (Rtlsim.Sim.get sim "retired2")

(* ------------------------------------------------------------------ *)
(* Accelerators                                                        *)
(* ------------------------------------------------------------------ *)

let test_gemmini_reference () =
  let a = Array.init 64 (fun i -> (i * 7) + 1) in
  let w = Array.init 16 (fun i -> i + 1) in
  let circuit = Socgen.Soc.accel_soc ~mem_latency:1 Socgen.Soc.Gemmini in
  let sim = Rtlsim.Sim.of_circuit circuit in
  Array.iteri (fun i v -> Rtlsim.Sim.poke_mem sim "mem$mem" (16 + i) v) a;
  Array.iteri (fun i v -> Rtlsim.Sim.poke_mem sim "mem$mem" (80 + i) v) w;
  let _ =
    Rtlsim.Sim.run_until sim ~max_cycles:100_000 (fun s -> Rtlsim.Sim.get s "done" = 1)
  in
  let expected = Socgen.Accel.gemminiish_reference ~a ~w ~out_n:32 ~klen:16 in
  List.iteri
    (fun j e -> check_int (Printf.sprintf "out[%d]" j) e (Rtlsim.Sim.peek_mem sim "mem$mem" (100 + j)))
    expected

let test_sha3_completes_and_is_input_sensitive () =
  let digest data_block =
    let circuit = Socgen.Soc.accel_soc ~mem_latency:1 Socgen.Soc.Sha3 in
    let sim = Rtlsim.Sim.of_circuit circuit in
    List.iteri (fun i v -> Rtlsim.Sim.poke_mem sim "mem$mem" (16 + i) v) data_block;
    let cycles =
      Rtlsim.Sim.run_until sim ~max_cycles:100_000 (fun s -> Rtlsim.Sim.get s "done" = 1)
    in
    ( List.init 3 (fun i -> Rtlsim.Sim.peek_mem sim "mem$mem" (64 + i)), cycles )
  in
  let d1, c1 = digest [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let d2, c2 = digest [ 1; 2; 3; 4; 5; 6; 7; 9 ] in
  check_bool "digests differ" true (d1 <> d2);
  check_int "same cycle count (data independent)" c1 c2

let test_disassembler_roundtrip () =
  (* encode/decode is the identity on canonical instructions. *)
  let open Socgen.Kite_isa in
  let program =
    sum_repeat_program ~base:32 ~n:8 ~reps:3 ~dst:60
    @ fib_program ~n:5 ~dst:50
    @ [ Alu (F_mul, 7, 6, 5); Jal (2, -10); Halt ]
  in
  List.iter
    (fun instr -> check_bool (to_string instr) true (decode (encode instr) = instr))
    program;
  check_int "listing lines" (List.length program)
    (List.length (disassemble (assemble program)))

let test_decode_total () =
  (* Every 16-bit word decodes to something printable. *)
  let open Socgen.Kite_isa in
  for w = 0 to 0xffff do
    ignore (to_string (decode w))
  done

let suite =
  [
    ( "socgen.kite",
      [
        Alcotest.test_case "sum program" `Quick test_core_sum;
        Alcotest.test_case "fib program" `Quick test_core_fib;
        Alcotest.test_case "fib n=0" `Quick test_core_fib_zero;
        Alcotest.test_case "memcopy" `Quick test_core_memcopy;
        Alcotest.test_case "alu ops + jal" `Quick test_core_alu_ops;
        Alcotest.test_case "latency sensitivity" `Quick test_core_latency_sensitivity;
        Alcotest.test_case "disassembler round-trip" `Quick test_disassembler_roundtrip;
        Alcotest.test_case "decode is total" `Quick test_decode_total;
        QCheck_alcotest.to_alcotest prop_core_random_programs;
      ] );
    ( "socgen.scratchpad",
      [
        Alcotest.test_case "latency" `Quick test_scratchpad_latency;
        Alcotest.test_case "write" `Quick test_scratchpad_write;
      ] );
    ("socgen.multicore", [ Alcotest.test_case "3 cores halt" `Quick test_multicore_halts ]);
    ( "socgen.accel",
      [
        Alcotest.test_case "gemminiish matches reference" `Quick test_gemmini_reference;
        Alcotest.test_case "sha3ish digests" `Quick test_sha3_completes_and_is_input_sensitive;
      ] );
  ]
