(* Tests for synthesized printfs: site discovery through the hierarchy,
   argument ordering, exact fire cycles, and the Kite core's built-in
   commit log agreeing with the ISA reference. *)

open Firrtl

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Fires every [period] cycles, logging the counter and its double. *)
let ticker ~period () =
  let b = Builder.create "ticker" in
  let open Dsl in
  Builder.output b "q" 8;
  let c = Builder.reg b "c" 8 in
  Builder.reg_next b "c" (c +: lit ~width:8 1);
  Builder.connect b "q" c;
  Builder.printf b "tick"
    ~fire:(c %: lit ~width:8 period ==: lit ~width:8 0)
    [ (c, 8); (Builder.node b ~width:8 (c +: c), 8) ];
  Builder.finish b

let ticker_circuit () =
  let m = ticker ~period:5 () in
  let b = Builder.create "top" in
  let i = Builder.inst b "t" "ticker" in
  Builder.output b "q" 8;
  Builder.connect b "q" (Builder.of_inst i "q");
  Ast.{ cname = "top"; main = "top"; modules = [ m; Builder.finish b ] }

let test_sites_and_labels () =
  let sim = Rtlsim.Sim.of_circuit (ticker_circuit ()) in
  match Rtlsim.Printfs.sites sim with
  | [ s ] ->
    Alcotest.(check string) "label includes the instance path" "t$tick"
      s.Rtlsim.Printfs.p_label;
    check_int "two args" 2 (List.length s.Rtlsim.Printfs.p_args)
  | ss -> Alcotest.fail (Printf.sprintf "expected 1 site, found %d" (List.length ss))

let test_fire_cycles_and_args () =
  let sim = Rtlsim.Sim.of_circuit (ticker_circuit ()) in
  let log = Rtlsim.Printfs.collect sim ~cycles:16 in
  (* Fires when c mod 5 = 0: cycles 0 (c=0), 5, 10, 15. *)
  check_int "four records" 4 (List.length log);
  List.iteri
    (fun k r ->
      check_int "cycle" (k * 5) r.Rtlsim.Printfs.r_cycle;
      check_bool "args are (c, 2c)" true
        (r.Rtlsim.Printfs.r_args = [ k * 5; 2 * (k * 5) mod 256 ]))
    log;
  check_bool "renders" true
    (Rtlsim.Printfs.to_string (List.hd log) = "[0] t$tick: 0 0")

let test_many_args_ordered () =
  (* Four args spanning the arg10-vs-arg2 lexicographic trap would need
     11; four suffice to check index ordering beyond pairs. *)
  let b = Builder.create "m" in
  let open Dsl in
  Builder.output b "q" 4;
  let c = Builder.reg b "c" 4 in
  Builder.reg_next b "c" (c +: lit ~width:4 1);
  Builder.connect b "q" c;
  Builder.printf b "p" ~fire:one
    (List.init 4 (fun k -> (Builder.node b ~width:4 (c +: lit ~width:4 k), 4)));
  let sim = Rtlsim.Sim.create (Builder.finish b) in
  let log = Rtlsim.Printfs.collect sim ~cycles:3 in
  check_int "three records" 3 (List.length log);
  let last = List.nth log 2 in
  check_bool "args in declaration order" true
    (last.Rtlsim.Printfs.r_args = [ 2; 3; 4; 5 ])

let test_kite_commit_log_matches_reference () =
  let program = Socgen.Kite_isa.fib_program ~n:7 ~dst:60 in
  let sim = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data:[] program;
  let log = Rtlsim.Printfs.collect sim ~cycles:1500 in
  let commits =
    List.filter (fun r -> r.Rtlsim.Printfs.r_label = "tile$core$commit") log
  in
  (* Reference execution order. *)
  let m = Socgen.Kite_isa.make_machine ~mem_words:1024 in
  Socgen.Kite_isa.load_words m (Socgen.Kite_isa.assemble program);
  let want = ref [] in
  while not m.Socgen.Kite_isa.halted do
    want := m.Socgen.Kite_isa.pc :: !want;
    Socgen.Kite_isa.step m
  done;
  check_int "one record per retired instruction" m.Socgen.Kite_isa.retired
    (List.length commits);
  check_bool "logged PCs are the reference execution order" true
    (List.map (fun r -> List.hd r.Rtlsim.Printfs.r_args) commits = List.rev !want);
  (* The logged instruction words disassemble to the program. *)
  let first = List.hd commits in
  check_int "first logged instruction"
    (Socgen.Kite_isa.encode (List.hd program))
    (List.nth first.Rtlsim.Printfs.r_args 1)

let suite =
  [
    ( "rtlsim.printfs",
      [
        Alcotest.test_case "sites and labels" `Quick test_sites_and_labels;
        Alcotest.test_case "fire cycles and args" `Quick test_fire_cycles_and_args;
        Alcotest.test_case "argument ordering" `Quick test_many_args_ordered;
        Alcotest.test_case "kite commit log vs reference" `Quick
          test_kite_commit_log_matches_reference;
      ] );
  ]
