(* Tests for the textual circuit format: exact round-trips over every
   generator in the repository, hand-written sources, and error
   reporting. *)

open Firrtl

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let roundtrip name circuit () =
  let text = Text.emit circuit in
  let back = Text.parse text in
  check_bool (name ^ " round-trips structurally") true (back = circuit);
  (* And a second emit is a fixpoint. *)
  Alcotest.(check string) (name ^ " emit is stable") text (Text.emit back)

let generator_roundtrips =
  [
    ("single_core_soc", Socgen.Soc.single_core_soc ());
    ("multi_core_soc", Socgen.Soc.multi_core_soc ~cores:3 ());
    ("accel_soc sha3", Socgen.Soc.accel_soc Socgen.Soc.Sha3);
    ("accel_soc gemmini", Socgen.Soc.accel_soc Socgen.Soc.Gemmini);
    ("ring_soc", Socgen.Ring_noc.ring_soc ~n_tiles:4 ());
    ("bigcore tiny", Socgen.Bigcore.circuit ~p:Socgen.Bigcore.tiny ());
  ]

let test_handwritten_source () =
  let src =
    {|
circuit blinky main top:
  module top:
    output led : UInt<1>
    reg c : UInt<8> init 0
    wire msb : UInt<1>   ; comments reach end of line
    connect msb = bits(c, 7, 7)
    regnext c <= add(c, UInt<8>(1))
    connect led = msb
|}
  in
  let circuit = Text.parse src in
  let sim = Rtlsim.Sim.of_circuit circuit in
  for _ = 1 to 128 do
    Rtlsim.Sim.step sim
  done;
  Rtlsim.Sim.eval_comb sim;
  check_int "led high in upper half" 1 (Rtlsim.Sim.get sim "led");
  for _ = 1 to 128 do
    Rtlsim.Sim.step sim
  done;
  Rtlsim.Sim.eval_comb sim;
  check_int "led low after wrap" 0 (Rtlsim.Sim.get sim "led")

let test_parse_errors () =
  let bad =
    [
      ("no header", "module m:\n  output o : UInt<1>\n  connect o = UInt<1>(0)\n");
      ("unknown op", "circuit c main m:\n  module m:\n    output o : UInt<1>\n    connect o = frob(x)\n");
      ("unterminated uint", "circuit c main m:\n  module m:\n    input a : UInt<8\n");
      ("stray decl", "circuit c main m:\n  wire w : UInt<1>\n");
    ]
  in
  List.iter
    (fun (label, src) ->
      check_bool label true
        (try
           ignore (Text.parse src);
           false
         with Text.Parse_error _ -> true))
    bad

let test_parse_checks_structure () =
  (* Parses but fails the structural check: undriven output. *)
  let src = "circuit c main m:\n  module m:\n    output o : UInt<1>\n" in
  check_bool "structural check applied" true
    (try
       ignore (Text.parse src);
       false
     with Ast.Ir_error _ -> true)

let test_annotations_roundtrip () =
  let m = Socgen.Kite_core.module_def () in
  let circuit = { Ast.cname = "c"; main = m.Ast.name; modules = [ m ] } in
  let back = Text.parse (Text.emit circuit) in
  let annots = (Ast.main_module back).Ast.annots in
  check_int "both ready-valid bundles survive" 2 (List.length annots)

let test_file_io () =
  let circuit = Socgen.Soc.single_core_soc () in
  let path = Filename.temp_file "fireaxe" ".fir" in
  Text.save circuit ~path;
  let back = Text.load ~path in
  Sys.remove path;
  check_bool "file round-trip" true (back = circuit)

let prop_expr_roundtrip =
  (* Random expressions round-trip through the textual form. *)
  let gen =
    QCheck.Gen.(
      fix
        (fun self n ->
          if n = 0 then
            oneof
              [
                map (fun v -> Ast.Lit { value = v land 0xff; width = 8 }) (int_bound 255);
                return (Ast.Ref "x");
                return (Ast.Ref "inst.port");
              ]
          else
            let sub = self (n / 2) in
            oneof
              [
                map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) sub sub;
                map2 (fun a b -> Ast.Binop (Ast.Xor, a, b)) sub sub;
                map2 (fun a b -> Ast.Cat (a, b)) sub sub;
                map3 (fun c a b -> Ast.Mux (c, a, b)) sub sub sub;
                map (fun a -> Ast.Unop (Ast.Orr, a)) sub;
                map (fun a -> Ast.Bits { e = a; hi = 5; lo = 2 }) sub;
                map (fun a -> Ast.Read { mem = "m"; addr = a }) sub;
              ])
        3)
  in
  QCheck.Test.make ~name:"expressions round-trip through text" ~count:200 (QCheck.make gen)
    (fun e ->
      let text = Text.expr_to_string e in
      let c = { Text.toks = Text.lex text; line = text } in
      Text.parse_expr c = e)

let test_checked_in_sample () =
  (* A hand-authored .fir file ships with the repo: it must load, pass
     the structural checks, simulate, and partition. *)
  let path =
    (* Materialized by the dune dep next to the build tree root. *)
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "examples/designs/blinker.fir"
  in
  let circuit = Firrtl.Text.load ~path in
  Firrtl.Ast.check_circuit circuit;
  let sim = Rtlsim.Sim.of_circuit circuit in
  for _ = 1 to 40 do
    Rtlsim.Sim.step sim
  done;
  Rtlsim.Sim.eval_comb sim;
  Alcotest.(check int) "counter" 40 (Rtlsim.Sim.get sim "count");
  Alcotest.(check int) "led = bit 4 of the counter" ((40 lsr 4) land 1)
    (Rtlsim.Sim.get sim "led");
  let config =
    {
      Fireripper.Spec.default_config with
      Fireripper.Spec.selection = Fireripper.Spec.Instances [ [ "b" ] ];
    }
  in
  let h = Fireripper.Runtime.instantiate (Fireripper.Compile.compile ~config circuit) in
  Fireripper.Runtime.run h ~cycles:40;
  let u = Fireripper.Runtime.locate h "b$c" in
  Alcotest.(check int) "partitioned counter" 40
    (Rtlsim.Sim.get (Fireripper.Runtime.sim_of h u) "b$c")

let suite =
  [
    ( "text.roundtrip",
      List.map
        (fun (name, circuit) -> Alcotest.test_case name `Quick (roundtrip name circuit))
        generator_roundtrips );
    ( "text.file",
      [ Alcotest.test_case "checked-in sample loads and partitions" `Quick test_checked_in_sample ]
    );
    ( "text.parse",
      [
        Alcotest.test_case "hand-written source" `Quick test_handwritten_source;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "structural check" `Quick test_parse_checks_structure;
        Alcotest.test_case "annotations" `Quick test_annotations_roundtrip;
        Alcotest.test_case "file io" `Quick test_file_io;
      ] );
    ("text.properties", [ QCheck_alcotest.to_alcotest prop_expr_roundtrip ]);
  ]
