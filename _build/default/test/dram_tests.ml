(* Tests for the FASED-style DRAM timing model: row-buffer hit /
   conflict / closed-bank latencies, refresh behaviour, architectural
   equivalence with the scratchpad-backed SoC, and partition exactness
   of the DRAM-backed SoC. *)

module FR = Fireripper

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let timing = { Socgen.Dram.default_timing with t_refi = 0 (* no refresh *) }

(* Drives one request through a bare DRAM engine; returns the cycle
   count from acceptance to the response becoming valid. *)
let issue eng addr =
  let set = eng.Libdn.Engine.set_input and get = eng.Libdn.Engine.get in
  set "req_valid" 1;
  set "req_addr" addr;
  set "req_wdata" 0;
  set "req_wen" 0;
  set "resp_ready" 1;
  eng.Libdn.Engine.eval_comb ();
  while get "req_ready" = 0 do
    eng.Libdn.Engine.step_seq ();
    eng.Libdn.Engine.eval_comb ()
  done;
  eng.Libdn.Engine.step_seq ();
  set "req_valid" 0;
  let lat = ref 1 in
  eng.Libdn.Engine.eval_comb ();
  while get "resp_valid" = 0 do
    eng.Libdn.Engine.step_seq ();
    incr lat;
    eng.Libdn.Engine.eval_comb ()
  done;
  eng.Libdn.Engine.step_seq ();
  !lat

let bare_engine ?(timing = timing) () =
  Libdn.Engine.of_flat (Socgen.Dram.dram ~timing ~banks:4 ~cols:16 ~depth:1024 ())

(* With banks=4, cols=16: addr = {row[4:0], bank[1:0], col[3:0]}. *)
let addr ~row ~bank ~col = (row * 4 * 16) + (bank * 16) + col

let t_hit = timing.Socgen.Dram.t_cas + 1
let t_closed = timing.Socgen.Dram.t_rcd + timing.Socgen.Dram.t_cas + 1

let t_conflict =
  timing.Socgen.Dram.t_rp + timing.Socgen.Dram.t_rcd + timing.Socgen.Dram.t_cas + 1

(* ------------------------------------------------------------------ *)
(* Bank-state latencies                                                *)
(* ------------------------------------------------------------------ *)

let test_closed_then_hit_then_conflict () =
  let eng = bare_engine () in
  check_int "first access activates a closed bank" t_closed
    (issue eng (addr ~row:0 ~bank:0 ~col:0));
  check_int "same row: row-buffer hit" t_hit (issue eng (addr ~row:0 ~bank:0 ~col:5));
  check_int "same bank, new row: conflict" t_conflict
    (issue eng (addr ~row:3 ~bank:0 ~col:0));
  check_int "back to the new row: hit again" t_hit
    (issue eng (addr ~row:3 ~bank:0 ~col:9))

let test_banks_are_independent () =
  let eng = bare_engine () in
  ignore (issue eng (addr ~row:0 ~bank:0 ~col:0));
  (* A different bank starts closed — activation, not conflict. *)
  check_int "other bank closed" t_closed (issue eng (addr ~row:7 ~bank:2 ~col:0));
  (* ...and bank 0's open row survived the bank-2 access. *)
  check_int "bank 0 row still open" t_hit (issue eng (addr ~row:0 ~bank:0 ~col:1))

let test_streaming_beats_strided () =
  (* Sequential addresses stay in one row per bank (mostly hits); a
     stride of banks*cols touches a new row of the same bank every
     time (all conflicts after the first). *)
  let eng_seq = bare_engine () in
  for a = 0 to 63 do
    ignore (issue eng_seq a)
  done;
  let eng_str = bare_engine () in
  for k = 0 to 15 do
    ignore (issue eng_str (addr ~row:k ~bank:0 ~col:0))
  done;
  eng_seq.Libdn.Engine.eval_comb ();
  eng_str.Libdn.Engine.eval_comb ();
  let hits e = e.Libdn.Engine.get "hits" and misses e = e.Libdn.Engine.get "misses" in
  check_int "sequential: one activation per row per bank" 4 (misses eng_seq);
  check_int "sequential: the rest hit" 60 (hits eng_seq);
  check_int "strided: no hits" 0 (hits eng_str);
  check_int "strided: all misses" 16 (misses eng_str)

let test_write_then_read () =
  let eng = bare_engine () in
  let set = eng.Libdn.Engine.set_input in
  set "req_valid" 1;
  set "req_addr" 100;
  set "req_wdata" 4242;
  set "req_wen" 1;
  set "resp_ready" 1;
  eng.Libdn.Engine.eval_comb ();
  eng.Libdn.Engine.step_seq ();
  set "req_valid" 0;
  set "req_wen" 0;
  eng.Libdn.Engine.eval_comb ();
  while eng.Libdn.Engine.get "resp_valid" = 0 do
    eng.Libdn.Engine.step_seq ();
    eng.Libdn.Engine.eval_comb ()
  done;
  eng.Libdn.Engine.step_seq ();
  ignore (issue eng 100);
  eng.Libdn.Engine.eval_comb ();
  check_int "readback" 4242 (eng.Libdn.Engine.get "resp_data")

(* ------------------------------------------------------------------ *)
(* Refresh                                                             *)
(* ------------------------------------------------------------------ *)

let test_refresh_closes_rows () =
  let timing = { Socgen.Dram.default_timing with t_refi = 40; t_rfc = 6 } in
  let eng = bare_engine ~timing () in
  check_int "activate row 0" t_closed (issue eng (addr ~row:0 ~bank:0 ~col:0));
  check_int "hit before refresh" t_hit (issue eng (addr ~row:0 ~bank:0 ~col:1));
  (* Idle past the refresh interval. *)
  for _ = 1 to 60 do
    eng.Libdn.Engine.eval_comb ();
    eng.Libdn.Engine.step_seq ()
  done;
  eng.Libdn.Engine.eval_comb ();
  check_bool "a refresh happened" true (eng.Libdn.Engine.get "refreshes" >= 1);
  (* The refresh closed the open row: same address now re-activates. *)
  check_int "closed again after refresh" t_closed (issue eng (addr ~row:0 ~bank:0 ~col:2))

let test_refresh_blocks_requests () =
  let timing = { Socgen.Dram.default_timing with t_refi = 20; t_rfc = 10 } in
  let eng = bare_engine ~timing () in
  let set = eng.Libdn.Engine.set_input in
  set "req_valid" 0;
  set "resp_ready" 1;
  (* Count cycles with req_ready low over a refresh period: at least
     t_rfc of them. *)
  let blocked = ref 0 in
  for _ = 1 to 35 do
    eng.Libdn.Engine.eval_comb ();
    if eng.Libdn.Engine.get "req_ready" = 0 then incr blocked;
    eng.Libdn.Engine.step_seq ()
  done;
  check_bool
    (Printf.sprintf "device busy during refresh (%d cycles blocked)" !blocked)
    true
    (!blocked >= timing.Socgen.Dram.t_rfc)

let test_refresh_disabled () =
  let eng = bare_engine () (* t_refi = 0 *) in
  for _ = 1 to 600 do
    eng.Libdn.Engine.eval_comb ();
    eng.Libdn.Engine.step_seq ()
  done;
  eng.Libdn.Engine.eval_comb ();
  check_int "no refreshes" 0 (eng.Libdn.Engine.get "refreshes")

(* ------------------------------------------------------------------ *)
(* DRAM-backed SoC                                                     *)
(* ------------------------------------------------------------------ *)

let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:8 ~reps:4 ~dst:60

let run_soc circuit =
  let sim = Rtlsim.Sim.of_circuit circuit in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data:[] program;
  let halt_cycle =
    Rtlsim.Sim.run_until sim ~max_cycles:100_000 (fun s -> Rtlsim.Sim.get s "halted" = 1)
  in
  (sim, halt_cycle)

let test_dram_soc_architectural_equivalence () =
  (* Same program, same architectural outcome as the scratchpad SoC —
     only the timing differs. *)
  let dram_sim, dram_halt = run_soc (Socgen.Dram.dram_soc ()) in
  let sp_sim, sp_halt = run_soc (Socgen.Soc.single_core_soc ()) in
  check_int "same retired count" (Rtlsim.Sim.get sp_sim "retired")
    (Rtlsim.Sim.get dram_sim "retired");
  check_int "same result in memory"
    (Rtlsim.Sim.peek_mem sp_sim "mem$mem" 60)
    (Rtlsim.Sim.peek_mem dram_sim "mem$mem" 60);
  check_bool "timing differs from the scratchpad" true (dram_halt <> sp_halt);
  (* The L1 keeps most accesses on-tile; the DRAM sees a miss stream. *)
  check_bool "dram saw traffic" true
    (Rtlsim.Sim.get dram_sim "hits" + Rtlsim.Sim.get dram_sim "misses" > 0)

let test_dram_soc_refresh_costs_cycles () =
  let with_refresh =
    { Socgen.Dram.default_timing with t_refi = 64; t_rfc = 12 }
  in
  let _, halt_no_refresh = run_soc (Socgen.Dram.dram_soc ~timing ()) in
  let _, halt_refresh = run_soc (Socgen.Dram.dram_soc ~timing:with_refresh ()) in
  check_bool
    (Printf.sprintf "refresh slows execution (%d -> %d)" halt_no_refresh halt_refresh)
    true (halt_refresh > halt_no_refresh)

let test_dram_soc_partition_exact () =
  (* Cut at the tile boundary: exact-mode partition of the DRAM-backed
     SoC matches the monolithic run cycle for cycle. *)
  let mono, halt = run_soc (Socgen.Dram.dram_soc ()) in
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "tile" ] ] }
  in
  let plan = FR.Compile.compile ~config (Socgen.Dram.dram_soc ()) in
  let h = FR.Runtime.instantiate plan in
  let u = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h u) ~mem:"mem$mem" ~data:[] program;
  let part_halt =
    FR.Runtime.run_until h ~max_cycles:100_000 (fun h ->
        let u = FR.Runtime.locate h "tile$core$state" in
        Rtlsim.Sim.get (FR.Runtime.sim_of h u) "tile$core$state" = Socgen.Kite_core.s_halted)
  in
  check_bool
    (Printf.sprintf "partitioned halts at the same cycle (%d vs %d)" part_halt halt)
    true
    (abs (part_halt - halt) <= 1);
  List.iter
    (fun reg ->
      let u = FR.Runtime.locate h reg in
      check_int reg (Rtlsim.Sim.get mono reg) (Rtlsim.Sim.get (FR.Runtime.sim_of h u) reg))
    [ "tile$core$retired_count"; "mem$hits_r"; "mem$misses_r" ]

let test_dram_soc_hardware_exact () =
  (* The DRAM-backed SoC through the generated FAME-1 hardware path:
     data-dependent memory timing survives the host-clock schedule. *)
  let mono = Rtlsim.Sim.of_circuit (Socgen.Dram.dram_soc ()) in
  Socgen.Soc.load_program mono ~mem:"mem$mem" ~data:[] program;
  let target = 600 in
  for _ = 1 to target do
    Rtlsim.Sim.step mono
  done;
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "tile" ] ] }
  in
  let plan = FR.Compile.compile ~config (Socgen.Dram.dram_soc ()) in
  let r =
    FR.Hw.run ~latency:2 ~target_cycles:target plan ~setup:(fun sim ->
        List.iteri
          (fun i w -> Rtlsim.Sim.poke_mem sim (FR.Hw.host_signal ~unit:0 "mem$mem") i w)
          (Socgen.Kite_isa.assemble program))
  in
  List.iter
    (fun (unit, reg) ->
      check_int reg (Rtlsim.Sim.get mono reg)
        (Rtlsim.Sim.get r.FR.Hw.hr_sim (FR.Hw.host_signal ~unit reg)))
    [ (1, "tile$core$retired_count"); (0, "mem$hits_r"); (0, "mem$misses_r") ]

let suite =
  [
    ( "socgen.dram",
      [
        Alcotest.test_case "closed/hit/conflict latencies" `Quick
          test_closed_then_hit_then_conflict;
        Alcotest.test_case "bank independence" `Quick test_banks_are_independent;
        Alcotest.test_case "streaming vs strided" `Quick test_streaming_beats_strided;
        Alcotest.test_case "write then read" `Quick test_write_then_read;
        Alcotest.test_case "refresh closes rows" `Quick test_refresh_closes_rows;
        Alcotest.test_case "refresh blocks requests" `Quick test_refresh_blocks_requests;
        Alcotest.test_case "refresh disabled" `Quick test_refresh_disabled;
      ] );
    ( "socgen.dram_soc",
      [
        Alcotest.test_case "architectural equivalence" `Quick
          test_dram_soc_architectural_equivalence;
        Alcotest.test_case "refresh costs cycles" `Quick test_dram_soc_refresh_costs_cycles;
        Alcotest.test_case "partition exact" `Quick test_dram_soc_partition_exact;
        Alcotest.test_case "generated hardware exact" `Quick test_dram_soc_hardware_exact;
      ] );
  ]
