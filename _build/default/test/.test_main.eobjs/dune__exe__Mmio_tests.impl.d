test/mmio_tests.ml: Alcotest Buffer Char Fireripper Libdn List QCheck QCheck_alcotest Rtlsim Socgen String
