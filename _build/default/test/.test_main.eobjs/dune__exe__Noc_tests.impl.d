test/noc_tests.ml: Alcotest Fireripper Firrtl Fun Libdn List Printf Rtlsim Socgen String
