test/kite5_tests.ml: Alcotest Array Des Fireaxe Fireripper Fun List Printf QCheck QCheck_alcotest Rtlsim Socgen
