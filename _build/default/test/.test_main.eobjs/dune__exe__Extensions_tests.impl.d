test/extensions_tests.ml: Alcotest Array Ast Builder Des Dsl Fireaxe Fireripper Firrtl Fun Goldengate Hierarchy List Option Platform Printf QCheck QCheck_alcotest Rtlsim Socgen String
