test/assertions_tests.ml: Alcotest Ast Builder Dsl Fireripper Firrtl List Printf Rtlsim Socgen String
