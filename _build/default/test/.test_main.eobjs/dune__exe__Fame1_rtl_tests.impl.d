test/fame1_rtl_tests.ml: Alcotest Ast Builder Dsl Fireripper Firrtl Flatten Goldengate Libdn List Option Printf Rtlsim Socgen
