test/robustness_tests.ml: Alcotest Ast Builder Dsl Fireripper Firrtl Hierarchy List Platform QCheck QCheck_alcotest Rtlsim Socgen Text
