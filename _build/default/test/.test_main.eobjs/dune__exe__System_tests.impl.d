test/system_tests.ml: Alcotest Ddio Fireaxe Fireripper Firrtl Golang List Platform Printf Rtlsim Socgen
