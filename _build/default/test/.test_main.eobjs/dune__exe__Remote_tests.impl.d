test/remote_tests.ml: Alcotest Filename Fireripper Libdn List Printf Rtlsim Socgen Sys Unix
