test/platform_tests.ml: Alcotest Array Builder Dsl Fireripper Firrtl List Platform Printf Socgen
