test/firrtl_tests.ml: Alcotest Analysis Ast Builder Dsl Firrtl Flatten Hashtbl Hierarchy List Option Printf QCheck QCheck_alcotest Rtlsim
