test/dram_tests.ml: Alcotest Fireripper Libdn List Printf Rtlsim Socgen
