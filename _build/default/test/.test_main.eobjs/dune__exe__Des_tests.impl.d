test/des_tests.ml: Alcotest Des List Printf
