test/multiclock_tests.ml: Alcotest Ast Builder Des Dsl Extensions_tests Fireripper Firrtl Fun Goldengate Libdn List Option Printf QCheck QCheck_alcotest Rtlsim Socgen String
