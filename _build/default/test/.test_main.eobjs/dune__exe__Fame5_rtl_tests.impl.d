test/fame5_rtl_tests.ml: Alcotest Array Ast Builder Dsl Extensions_tests Firrtl Flatten Fun Goldengate List Platform Printf QCheck QCheck_alcotest Rtlsim Socgen
