test/text_tests.ml: Alcotest Ast Filename Fireripper Firrtl List QCheck QCheck_alcotest Rtlsim Socgen Sys Text
