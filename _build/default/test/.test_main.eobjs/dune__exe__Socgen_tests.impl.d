test/socgen_tests.ml: Alcotest Array Firrtl Flatten List Printf QCheck QCheck_alcotest Rtlsim Socgen
