test/snapshot_tests.ml: Alcotest Array Des Extensions_tests Filename Fireripper Fun List Option Printf QCheck QCheck_alcotest Rtlsim Socgen Sys
