test/nic_tests.ml: Alcotest Fireripper List Printf Rtlsim Socgen
