test/uarch_tests.ml: Alcotest Array Float List Printf Uarch Workloads
