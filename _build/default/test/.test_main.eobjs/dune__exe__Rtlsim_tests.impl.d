test/rtlsim_tests.ml: Alcotest Builder Dsl Firrtl List QCheck QCheck_alcotest Rtlsim Socgen
