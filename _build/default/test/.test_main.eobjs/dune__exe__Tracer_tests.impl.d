test/tracer_tests.ml: Alcotest Array Fireripper List Printf Rtlsim Socgen String
