test/libdn_tests.ml: Alcotest Array Ast Builder Dsl Firrtl Flatten Goldengate Libdn Printf QCheck QCheck_alcotest Rtlsim
