test/fireripper_tests.ml: Alcotest Ast Builder Dsl Fireripper Firrtl Goldengate List Option Printf Rtlsim Socgen String
