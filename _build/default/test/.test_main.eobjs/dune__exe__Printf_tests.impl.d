test/printf_tests.ml: Alcotest Ast Builder Dsl Firrtl List Printf Rtlsim Socgen
