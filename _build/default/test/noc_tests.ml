(* Ring-NoC tests: functional behaviour of the credit-based ring, the
   NoC-partition-mode module selection (Fig. 4), feedthrough elision
   (direct wrapper-to-wrapper nets), and cycle-exactness of NoC
   partitions — including with FAME-5 threaded tiles (the Fig. 6
   24-core-SoC structure, scaled down). *)

module FR = Fireripper

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_mono circuit cycles =
  let sim = Rtlsim.Sim.of_circuit circuit in
  for _ = 1 to cycles do
    Rtlsim.Sim.step sim
  done;
  sim

let test_ring_delivers_packets () =
  let circuit = Socgen.Ring_noc.ring_soc ~n_tiles:3 ~period:8 () in
  let sim = run_mono circuit 600 in
  Rtlsim.Sim.eval_comb sim;
  for i = 0 to 2 do
    let sent = Rtlsim.Sim.get sim (Printf.sprintf "sent%d" i) in
    let rcvd = Rtlsim.Sim.get sim (Printf.sprintf "rcvd%d" i) in
    check_bool (Printf.sprintf "tile %d sent" i) true (sent > 10);
    (* Echo round trip: everything sent long enough ago has come back. *)
    check_bool (Printf.sprintf "tile %d received most" i) true (rcvd >= sent - 8)
  done;
  let reflected = Rtlsim.Sim.get sim "reflected" in
  let total_sent =
    List.fold_left (fun acc i -> acc + Rtlsim.Sim.get sim (Printf.sprintf "sent%d" i)) 0 [ 0; 1; 2 ]
  in
  check_bool "reflector saw the traffic" true (reflected > 0 && reflected <= total_sent)

let test_ring_is_deterministic () =
  let run () =
    let sim = run_mono (Socgen.Ring_noc.ring_soc ~n_tiles:2 ~period:5 ()) 400 in
    Rtlsim.Sim.eval_comb sim;
    (Rtlsim.Sim.get sim "checksum0", Rtlsim.Sim.get sim "checksum1")
  in
  check_bool "deterministic" true (run () = run ())

let test_noc_selection_absorbs_tiles () =
  let circuit = Socgen.Ring_noc.ring_soc ~n_tiles:3 () in
  let groups = FR.Select.resolve circuit (FR.Spec.Noc_routers [ [ 0; 1 ] ]) in
  match groups with
  | [ g ] ->
    let names = List.map (String.concat ".") g in
    List.iter
      (fun expected ->
        check_bool (expected ^ " selected") true (List.mem expected names))
      [ "router0"; "router1"; "conv0"; "conv1"; "ttile0"; "ttile1" ];
    check_bool "router2 not absorbed" true (not (List.mem "router2" names));
    check_bool "reflector not absorbed" true (not (List.mem "reflector" names))
  | _ -> Alcotest.fail "expected one group"

let noc_config groups =
  { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Noc_routers groups }

let ring_regs n_tiles =
  List.concat_map
    (fun i ->
      [
        Printf.sprintf "ttile%d$sent_r" i;
        Printf.sprintf "ttile%d$rcvd_r" i;
        Printf.sprintf "ttile%d$checksum_r" i;
      ])
    (List.init n_tiles Fun.id)

let assert_partitioned_matches_monolithic ?(fame5 = false) ~groups ~cycles n_tiles =
  let circuit = Socgen.Ring_noc.ring_soc ~n_tiles ~period:6 () in
  let mono = run_mono circuit cycles in
  let plan = FR.Compile.compile ~config:(noc_config groups) circuit in
  let h = FR.Runtime.instantiate ~fame5 plan in
  FR.Runtime.run h ~cycles;
  List.iter
    (fun name ->
      let expected = Rtlsim.Sim.get mono name in
      let u = FR.Runtime.locate h name in
      check_int name expected (Rtlsim.Sim.get (FR.Runtime.sim_of h u) name))
    (ring_regs n_tiles);
  plan

let test_noc_partition_cycle_exact () =
  let plan =
    assert_partitioned_matches_monolithic ~groups:[ [ 0; 1 ] ] ~cycles:400 3
  in
  check_int "two units" 2 (FR.Plan.n_units plan)

let test_noc_two_groups_direct_nets () =
  let circuit = Socgen.Ring_noc.ring_soc ~n_tiles:4 ~period:6 () in
  let plan = FR.Compile.compile ~config:(noc_config [ [ 0; 1 ]; [ 2; 3 ] ]) circuit in
  check_int "three units" 3 (FR.Plan.n_units plan);
  (* Feedthrough elision: the router1 -> router2 ring link must connect
     partition 1 and partition 2 directly, not via the base. *)
  let direct =
    List.exists
      (fun (n : FR.Plan.net) ->
        fst n.FR.Plan.n_src = 1 && List.exists (fun (u, _) -> u = 2) n.FR.Plan.n_dsts)
      plan.FR.Plan.p_nets
  in
  check_bool "direct wrapper-to-wrapper net" true direct;
  (* And it stays cycle-exact. *)
  let mono = run_mono circuit 400 in
  let h = FR.Runtime.instantiate plan in
  FR.Runtime.run h ~cycles:400;
  List.iter
    (fun name ->
      let u = FR.Runtime.locate h name in
      check_int name (Rtlsim.Sim.get mono name) (Rtlsim.Sim.get (FR.Runtime.sim_of h u) name))
    (ring_regs 4)

let test_noc_partition_crossings () =
  (* Router boundaries have no combinational dependencies, so even
     exact-mode needs only one crossing per direction per cycle. *)
  let circuit = Socgen.Ring_noc.ring_soc ~n_tiles:3 ~period:6 () in
  let plan = FR.Compile.compile ~config:(noc_config [ [ 0; 1 ] ]) circuit in
  let r = FR.Report.build plan in
  check_int "max chain 1" 1 r.FR.Report.r_max_chain;
  check_int "one crossing per cycle" 1 r.FR.Report.r_crossings_per_cycle

let test_injected_bug_manifests_late () =
  (* The Section V-A story: a latent RTL bug that only fires deep into
     the simulation.  Checksums agree with the bug-free design until the
     trigger, then diverge. *)
  let good = Socgen.Ring_noc.ring_soc ~n_tiles:2 ~period:4 () in
  let bad = Socgen.Ring_noc.ring_soc ~n_tiles:2 ~period:4 ~bug_tile:0 ~bug_at:40 () in
  let sg = Rtlsim.Sim.of_circuit good in
  let sb = Rtlsim.Sim.of_circuit bad in
  let diverged_at = ref None in
  for cyc = 1 to 600 do
    Rtlsim.Sim.step sg;
    Rtlsim.Sim.step sb;
    if !diverged_at = None && Rtlsim.Sim.get sg "ttile0$checksum_r" <> Rtlsim.Sim.get sb "ttile0$checksum_r"
    then diverged_at := Some cyc
  done;
  match !diverged_at with
  | None -> Alcotest.fail "bug never manifested"
  | Some c -> check_bool (Printf.sprintf "bug manifests late (cycle %d)" c) true (c > 150)

let test_noc_fast_mode_flows () =
  (* Credit-based boundaries tolerate fast-mode's injected latency
     natively: traffic keeps flowing, no deadlock, deterministic — but
     cycle counts shift relative to the monolithic run. *)
  let circuit = Socgen.Ring_noc.ring_soc ~n_tiles:3 ~period:6 () in
  let cycles = 500 in
  let run () =
    let plan =
      FR.Compile.compile
        ~config:
          {
            FR.Spec.default_config with
            FR.Spec.mode = FR.Spec.Fast;
            FR.Spec.selection = FR.Spec.Noc_routers [ [ 0; 1 ] ];
          }
        circuit
    in
    let h = FR.Runtime.instantiate plan in
    FR.Runtime.run h ~cycles;
    List.map
      (fun name ->
        let u = FR.Runtime.locate h name in
        Rtlsim.Sim.get (FR.Runtime.sim_of h u) name)
      (ring_regs 3)
  in
  let a = run () and b = run () in
  check_bool "deterministic" true (a = b);
  let rcvd0 = List.nth a 1 in
  check_bool "traffic flows under fast mode" true (rcvd0 > 10);
  (* And differs from the exact/monolithic counts (injected latency). *)
  let mono = run_mono circuit cycles in
  check_bool "cycle-approximate" true
    (a <> List.map (Rtlsim.Sim.get mono) (ring_regs 3))

(* ------------------------------------------------------------------ *)
(* 2-D mesh NoC                                                        *)
(* ------------------------------------------------------------------ *)

let test_mesh_delivers () =
  let circuit = Socgen.Mesh_noc.mesh_soc ~width:3 ~height:3 ~period:8 () in
  let sim = run_mono circuit 1200 in
  Rtlsim.Sim.eval_comb sim;
  for i = 0 to 7 do
    let sent = Rtlsim.Sim.get sim (Printf.sprintf "sent%d" i) in
    let rcvd = Rtlsim.Sim.get sim (Printf.sprintf "rcvd%d" i) in
    check_bool (Printf.sprintf "tile %d sent" i) true (sent > 5);
    check_bool (Printf.sprintf "tile %d got echoes" i) true (rcvd > 0)
  done;
  check_bool "reflector busy" true (Rtlsim.Sim.get sim "reflected" > 20)

let test_mesh_row_partition_cycle_exact () =
  let circuit = Socgen.Mesh_noc.mesh_soc ~width:3 ~height:3 ~period:6 () in
  let groups = [ Socgen.Mesh_noc.row_group ~width:3 0; Socgen.Mesh_noc.row_group ~width:3 1 ] in
  let plan = FR.Compile.compile ~config:(noc_config groups) circuit in
  check_int "three units (two row bands + base)" 3 (FR.Plan.n_units plan);
  let mono = run_mono circuit 600 in
  let h = FR.Runtime.instantiate plan in
  FR.Runtime.run h ~cycles:600;
  List.iter
    (fun name ->
      let u = FR.Runtime.locate h name in
      check_int name (Rtlsim.Sim.get mono name) (Rtlsim.Sim.get (FR.Runtime.sim_of h u) name))
    (ring_regs 8)

let test_mesh_xy_no_deadlock_under_load () =
  (* Saturating load: short period, all tiles firing at once. *)
  let circuit = Socgen.Mesh_noc.mesh_soc ~width:4 ~height:2 ~period:2 () in
  let sim = run_mono circuit 2000 in
  Rtlsim.Sim.eval_comb sim;
  let total_rcvd =
    List.fold_left (fun acc i -> acc + Rtlsim.Sim.get sim (Printf.sprintf "rcvd%d" i)) 0
      (List.init 7 Fun.id)
  in
  check_bool "traffic keeps flowing" true (total_rcvd > 100)

(* ------------------------------------------------------------------ *)
(* 2-D torus NoC                                                       *)
(* ------------------------------------------------------------------ *)

let test_torus_delivers () =
  let circuit = Socgen.Torus_noc.torus_soc ~width:3 ~height:3 ~period:8 () in
  let sim = run_mono circuit 1200 in
  Rtlsim.Sim.eval_comb sim;
  for i = 0 to 7 do
    let sent = Rtlsim.Sim.get sim (Printf.sprintf "sent%d" i) in
    let rcvd = Rtlsim.Sim.get sim (Printf.sprintf "rcvd%d" i) in
    check_bool (Printf.sprintf "tile %d sent" i) true (sent > 5);
    check_bool (Printf.sprintf "tile %d got echoes" i) true (rcvd > 0)
  done;
  check_bool "reflector busy" true (Rtlsim.Sim.get sim "reflected" > 20)

let test_torus_wraparound_is_shortcut () =
  (* Shortest-way routing at the router level: a 4x4 torus router at
     (0, 0) sends a packet for (3, 3) out its WEST port (one wraparound
     hop beats three eastward ones), a packet for (1, 0) east, and one
     for (0, 3) north; the mesh router would always go east/south. *)
  let route dest_id =
    let r =
      Socgen.Torus_noc.router_module ~name:"r" ~x:0 ~y:0 ~width:4 ~height:4
        ~payload_width:16 ()
    in
    let eng = Libdn.Engine.of_flat r in
    let set = eng.Libdn.Engine.set_input in
    List.iter
      (fun d ->
        set (d ^ "_in_valid") 0;
        set (d ^ "_out_credit") 0)
      [ "north"; "south"; "east"; "west"; "local" ];
    set "local_in_valid" 1;
    set "local_in_data" ((dest_id lsl 21) lor 7);
    eng.Libdn.Engine.eval_comb ();
    eng.Libdn.Engine.step_seq ();
    set "local_in_valid" 0;
    eng.Libdn.Engine.eval_comb ();
    List.find
      (fun d -> eng.Libdn.Engine.get (d ^ "_out_valid") = 1)
      [ "north"; "south"; "east"; "west"; "local" ]
  in
  Alcotest.(check string) "far corner wraps west" "west" (route 15);
  Alcotest.(check string) "near neighbour goes east" "east" (route 1);
  Alcotest.(check string) "far row wraps north" "north" (route 12);
  Alcotest.(check string) "near row goes south" "south" (route 4)

let test_torus_row_partition_cycle_exact () =
  let circuit = Socgen.Torus_noc.torus_soc ~width:3 ~height:3 ~period:6 () in
  let groups = [ Socgen.Torus_noc.row_group ~width:3 0; Socgen.Torus_noc.row_group ~width:3 1 ] in
  let plan = FR.Compile.compile ~config:(noc_config groups) circuit in
  check_int "three units (two row bands + base)" 3 (FR.Plan.n_units plan);
  let mono = run_mono circuit 600 in
  let h = FR.Runtime.instantiate plan in
  FR.Runtime.run h ~cycles:600;
  List.iter
    (fun name ->
      let u = FR.Runtime.locate h name in
      check_int name (Rtlsim.Sim.get mono name) (Rtlsim.Sim.get (FR.Runtime.sim_of h u) name))
    (ring_regs 8)

let test_torus_no_deadlock_under_load () =
  let circuit = Socgen.Torus_noc.torus_soc ~width:4 ~height:2 ~period:2 () in
  let sim = run_mono circuit 2000 in
  Rtlsim.Sim.eval_comb sim;
  let total_rcvd =
    List.fold_left (fun acc i -> acc + Rtlsim.Sim.get sim (Printf.sprintf "rcvd%d" i)) 0
      (List.init 7 Fun.id)
  in
  check_bool "traffic keeps flowing" true (total_rcvd > 100)

let test_torus_rejects_thin_dimensions () =
  check_bool "1-wide torus rejected" true
    (try
       ignore (Socgen.Torus_noc.torus_soc ~width:1 ~height:4 ());
       false
     with Firrtl.Ast.Ir_error _ -> true)

let suite =
  [
    ( "noc.ring",
      [
        Alcotest.test_case "packets delivered" `Quick test_ring_delivers_packets;
        Alcotest.test_case "deterministic" `Quick test_ring_is_deterministic;
        Alcotest.test_case "latent bug manifests late" `Quick test_injected_bug_manifests_late;
      ] );
    ( "noc.mesh",
      [
        Alcotest.test_case "delivers" `Quick test_mesh_delivers;
        Alcotest.test_case "row partition cycle-exact" `Quick test_mesh_row_partition_cycle_exact;
        Alcotest.test_case "no deadlock under load" `Quick test_mesh_xy_no_deadlock_under_load;
      ] );
    ( "noc.torus",
      [
        Alcotest.test_case "delivers" `Quick test_torus_delivers;
        Alcotest.test_case "wraparound is a shortcut" `Quick test_torus_wraparound_is_shortcut;
        Alcotest.test_case "row partition cycle-exact" `Quick test_torus_row_partition_cycle_exact;
        Alcotest.test_case "no deadlock under load" `Quick test_torus_no_deadlock_under_load;
        Alcotest.test_case "thin dimensions rejected" `Quick test_torus_rejects_thin_dimensions;
      ] );
    ( "noc.partition",
      [
        Alcotest.test_case "selection absorbs tiles" `Quick test_noc_selection_absorbs_tiles;
        Alcotest.test_case "cycle exact" `Quick test_noc_partition_cycle_exact;
        Alcotest.test_case "two groups, direct nets" `Quick test_noc_two_groups_direct_nets;
        Alcotest.test_case "single crossing" `Quick test_noc_partition_crossings;
        Alcotest.test_case "fast mode flows" `Quick test_noc_fast_mode_flows;
      ] );
  ]
