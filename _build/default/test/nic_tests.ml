(* Tests for the per-core-queue NIC with hardware latency counters
   (§V-C): latencies measured in RTL rise under core contention, and the
   counters stay cycle-exact when the NIC is partitioned out. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* All tiles run the forwarding loop; "active cores" scales with the
   tile count, as in the paper's sweep. *)
let run_soc ~cores ~cycles =
  let sim = Rtlsim.Sim.of_circuit (Socgen.Nic.nic_soc ~cores ()) in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data:[] Socgen.Nic.forwarding_program;
  for _ = 1 to cycles do
    Rtlsim.Sim.step sim
  done;
  Rtlsim.Sim.eval_comb sim;
  sim

let test_counters_accumulate () =
  let sim = run_soc ~cores:2 ~cycles:4000 in
  let rd_cnt = Rtlsim.Sim.get sim "rd_count" in
  let wr_cnt = Rtlsim.Sim.get sim "wr_count" in
  check_bool "reads happened" true (rd_cnt > 20);
  check_bool "writes happened" true (wr_cnt > 20);
  (* Round-robin over RX/TX keeps the two counts within one another. *)
  check_bool "balanced" true (abs (rd_cnt - wr_cnt) <= 1);
  let rd, wr = Socgen.Nic.averages ~peek:(Rtlsim.Sim.get sim) in
  check_bool "latencies positive" true (rd > 2. && wr > 2.)

let test_contention_raises_latency () =
  (* More active cores -> higher NIC latency, measured by the NIC's own
     hardware counters (the paper's Figure 9 methodology, in RTL). *)
  let avg_wr cores =
    let sim = run_soc ~cores ~cycles:6000 in
    snd (Socgen.Nic.averages ~peek:(Rtlsim.Sim.get sim))
  in
  let one = avg_wr 1 and four = avg_wr 4 in
  check_bool
    (Printf.sprintf "latency rises with cores (%.1f -> %.1f)" one four)
    true (four > one)

let test_partitioned_nic_counters_exact () =
  let cores = 2 in
  let cycles = 3000 in
  let mono = run_soc ~cores ~cycles in
  let plan =
    Fireripper.Compile.compile
      ~config:
        {
          Fireripper.Spec.default_config with
          Fireripper.Spec.selection = Fireripper.Spec.Instances [ [ "nic" ] ];
        }
      (Socgen.Nic.nic_soc ~cores ())
  in
  let h = Fireripper.Runtime.instantiate plan in
  let base = Fireripper.Runtime.sim_of h (Fireripper.Runtime.locate h "mem$mem") in
  Socgen.Soc.load_program base ~mem:"mem$mem" ~data:[] Socgen.Nic.forwarding_program;
  Fireripper.Runtime.run h ~cycles;
  let nic_unit = Fireripper.Runtime.locate h "nic$rd_sum" in
  let nic = Fireripper.Runtime.sim_of h nic_unit in
  List.iter
    (fun reg ->
      check_int reg (Rtlsim.Sim.get mono ("nic$" ^ reg)) (Rtlsim.Sim.get nic ("nic$" ^ reg)))
    [ "rd_sum"; "wr_sum"; "rd_cnt"; "wr_cnt" ]

let suite =
  [
    ( "nic.counters",
      [
        Alcotest.test_case "accumulate" `Quick test_counters_accumulate;
        Alcotest.test_case "contention raises latency" `Quick test_contention_raises_latency;
        Alcotest.test_case "partitioned counters exact" `Quick test_partitioned_nic_counters_exact;
      ] );
  ]
