(* Tests for the hardware FAME-1 generator: the LI-BDN control logic
   (token queues, output FSMs, fireFSM, clock-gated target) emitted as
   circuit IR and executed on the host clock by the ordinary RTL
   simulator.  The generated hardware must be target-cycle-exact against
   the monolithic target across link latencies, and the measured
   host-cycles-per-target-cycle (FMR) must track the protocol's cost. *)

open Firrtl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The Fig. 2 half-design: x register, source out (x), sink out
   (a_src + x), state update from the peer's sink out. *)
let half_module name init =
  let b = Builder.create name in
  let a_src = Builder.input b "a_src" 8 in
  let a_snk = Builder.input b "a_snk" 8 in
  let x = Builder.reg b ~init "x" 8 in
  Builder.reg_next b "x" a_snk;
  Builder.output b "d_src" 8;
  Builder.connect b "d_src" x;
  Builder.output b "d_snk" 8;
  Builder.connect b "d_snk" Dsl.(a_src +: x);
  Builder.finish b

let monolithic_pair () =
  let b = Builder.create "mono" in
  let p1 = Builder.inst b "p1" "half1" in
  let p2 = Builder.inst b "p2" "half2" in
  Builder.connect_in b p2 "a_src" (Builder.of_inst p1 "d_src");
  Builder.connect_in b p2 "a_snk" (Builder.of_inst p1 "d_snk");
  Builder.connect_in b p1 "a_src" (Builder.of_inst p2 "d_src");
  Builder.connect_in b p1 "a_snk" (Builder.of_inst p2 "d_snk");
  Builder.output b "x1" 8;
  Builder.connect b "x1" (Builder.of_inst p1 "d_src");
  {
    Ast.cname = "mono";
    main = "mono";
    modules = [ half_module "half1" 1; half_module "half2" 2; Builder.finish b ];
  }

let chan name ports = { Libdn.Channel.name; ports }

(* Host-level circuit: two exact-mode FAME-1 wrappers (source and sink
   channels split per Fig. 2b) linked at the given host-cycle latency. *)
let host_circuit ~latency =
  let mk name init =
    let flat = Flatten.flatten (Flatten.to_circuit (half_module name init)) in
    Goldengate.Fame1_rtl.wrap ~name:(name ^ "_host") ~flat
      ~ins:[ chan "in_src" [ ("a_src", 8) ]; chan "in_snk" [ ("a_snk", 8) ] ]
      ~outs:[ chan "out_src" [ ("d_src", 8) ]; chan "out_snk" [ ("d_snk", 8) ] ]
      ()
  in
  let w1, t1 = mk "half1" 1 in
  let w2, t2 = mk "half2" 2 in
  let b = Builder.create "host_top" in
  let _ = Builder.inst b "w1" w1.Ast.name in
  let _ = Builder.inst b "w2" w2.Ast.name in
  let wire src dst =
    Goldengate.Fame1_rtl.link b ~latency ~src:(src, "out_src") ~dst:(dst, "in_src")
      ~ports:[ ("d_src", "a_src", 8) ];
    Goldengate.Fame1_rtl.link b ~latency ~src:(src, "out_snk") ~dst:(dst, "in_snk")
      ~ports:[ ("d_snk", "a_snk", 8) ]
  in
  wire "w1" "w2";
  wire "w2" "w1";
  Builder.connect_in b "w1" "cycle_limit" (Dsl.lit ~width:32 0x3FFFFFFF);
  Builder.connect_in b "w2" "cycle_limit" (Dsl.lit ~width:32 0x3FFFFFFF);
  Builder.output b "cycles1" 32;
  Builder.connect b "cycles1" (Builder.of_inst "w1" "target_cycles");
  Builder.output b "cycles2" 32;
  Builder.connect b "cycles2" (Builder.of_inst "w2" "target_cycles");
  {
    Ast.cname = "host";
    main = "host_top";
    modules = [ t1; w1; t2; w2; Builder.finish b ];
  }

(* Runs the host simulation until partition 1 completes [target] cycles;
   returns (host cycles spent, x1 value, x2 value). *)
let run_host circuit ~target =
  let sim = Rtlsim.Sim.of_circuit circuit in
  let host = ref 0 in
  Rtlsim.Sim.eval_comb sim;
  while Rtlsim.Sim.get sim "cycles1" < target && !host < 100_000 do
    Rtlsim.Sim.step sim;
    Rtlsim.Sim.eval_comb sim;
    incr host
  done;
  check_int "both wrappers stay within one cycle" target (Rtlsim.Sim.get sim "cycles1");
  (!host, Rtlsim.Sim.get sim "w1$target$x", Rtlsim.Sim.get sim "w2$target$x")

let mono_reference ~target =
  let sim = Rtlsim.Sim.of_circuit (monolithic_pair ()) in
  for _ = 1 to target do
    Rtlsim.Sim.step sim
  done;
  (Rtlsim.Sim.get sim "p1$x", Rtlsim.Sim.get sim "p2$x")

let test_hardware_fame1_cycle_exact () =
  List.iter
    (fun latency ->
      List.iter
        (fun target ->
          let _, x1, x2 = run_host (host_circuit ~latency) ~target in
          let e1, e2 = mono_reference ~target in
          check_int (Printf.sprintf "x1 @%d (latency %d)" target latency) e1 x1;
          check_int (Printf.sprintf "x2 @%d (latency %d)" target latency) e2 x2)
        [ 1; 2; 7; 40 ])
    [ 0; 1; 3 ]

let test_fmr_grows_with_latency () =
  let fmr latency =
    let host, _, _ = run_host (host_circuit ~latency) ~target:50 in
    float_of_int host /. 50.
  in
  let f0 = fmr 0 and f3 = fmr 3 and f8 = fmr 8 in
  check_bool (Printf.sprintf "fmr(0)=%.1f < fmr(3)=%.1f" f0 f3) true (f0 < f3);
  check_bool (Printf.sprintf "fmr(3)=%.1f < fmr(8)=%.1f" f3 f8) true (f3 < f8);
  (* Exact mode needs two serialized crossings per cycle: the FMR should
     grow by roughly 2 host cycles per added latency cycle. *)
  let slope = (f8 -. f3) /. 5. in
  check_bool (Printf.sprintf "slope %.2f ~ 2" slope) true (slope > 1.5 && slope < 2.6)

let test_gated_target_holds_without_fire () =
  (* A gated target with an empty input queue must not advance. *)
  let flat = Flatten.flatten (Flatten.to_circuit (half_module "half1" 5)) in
  let w, t =
    Goldengate.Fame1_rtl.wrap ~name:"lonely" ~flat
      ~ins:[ chan "cin" [ ("a_src", 8); ("a_snk", 8) ] ]
      ~outs:[ chan "cout" [ ("d_src", 8); ("d_snk", 8) ] ]
      ()
  in
  let b = Builder.create "ttop" in
  let _ = Builder.inst b "w" w.Ast.name in
  (* Nothing ever arrives; the output is never accepted. *)
  Builder.connect_in b "w" (Goldengate.Fame1_rtl.h_valid "cin") Dsl.zero;
  List.iter
    (fun p -> Builder.connect_in b "w" (Goldengate.Fame1_rtl.h_data "cin" p) (Dsl.lit ~width:8 0))
    [ "a_src"; "a_snk" ];
  Builder.connect_in b "w" (Goldengate.Fame1_rtl.h_ready "cout") Dsl.zero;
  Builder.connect_in b "w" "cycle_limit" (Dsl.lit ~width:32 0x3FFFFFFF);
  Builder.output b "cycles" 32;
  Builder.connect b "cycles" (Builder.of_inst "w" "target_cycles");
  let top = Builder.finish b in
  let sim =
    Rtlsim.Sim.of_circuit
      { Ast.cname = "t"; main = "ttop"; modules = [ t; w; top ] }
  in
  for _ = 1 to 200 do
    Rtlsim.Sim.step sim
  done;
  Rtlsim.Sim.eval_comb sim;
  check_int "target never advances" 0 (Rtlsim.Sim.get sim "cycles");
  check_int "target state frozen" 5 (Rtlsim.Sim.get sim "w$target$x")

(* ------------------------------------------------------------------ *)
(* Whole-plan hardware instantiation                                   *)
(* ------------------------------------------------------------------ *)

let kite_plan mode =
  let config =
    {
      Fireripper.Spec.default_config with
      Fireripper.Spec.mode;
      Fireripper.Spec.selection = Fireripper.Spec.Instances [ [ "tile" ] ];
    }
  in
  Fireripper.Compile.compile ~config (Socgen.Soc.single_core_soc ~mem_latency:1 ())

let program = Socgen.Kite_isa.fib_program ~n:10 ~dst:60

let mono_halt_cycle () =
  let sim = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data:[] program;
  Rtlsim.Sim.run_until sim ~max_cycles:100_000 (fun s ->
      Rtlsim.Sim.get s "tile$core$state" = Socgen.Kite_core.s_halted)

let hw_halt_cycle ~mode ~latency =
  let plan = kite_plan mode in
  (* The tile lands in unit 1, the memory in unit 0. *)
  let state_sig = Fireripper.Hw.host_signal ~unit:1 "tile$core$state" in
  let r =
    Fireripper.Hw.run ~latency ~target_cycles:100_000 plan
      ~pred:(fun sim -> Rtlsim.Sim.get sim state_sig = Socgen.Kite_core.s_halted)
      ~setup:(fun sim ->
        List.iteri
          (fun i w ->
            Rtlsim.Sim.poke_mem sim (Fireripper.Hw.host_signal ~unit:0 "mem$mem") i w)
          (Socgen.Kite_isa.assemble program))
  in
  (* The halt is detected on unit 1; read its target cycle counter. *)
  (Rtlsim.Sim.get r.Fireripper.Hw.hr_sim "cycles1", r.Fireripper.Hw.hr_host_cycles)

let test_plan_hardware_exact () =
  let mono = mono_halt_cycle () in
  List.iter
    (fun latency ->
      let hw, _ = hw_halt_cycle ~mode:Fireripper.Spec.Exact ~latency in
      check_int (Printf.sprintf "halt cycle at latency %d" latency) mono hw)
    [ 0; 4 ]

let test_plan_hardware_fast_bounded () =
  let mono = mono_halt_cycle () in
  let hw, _ = hw_halt_cycle ~mode:Fireripper.Spec.Fast ~latency:0 in
  check_bool "fast differs" true (hw <> mono);
  check_bool
    (Printf.sprintf "bounded error (mono %d hw %d)" mono hw)
    true
    (abs (hw - mono) * 100 / mono <= 40)

let test_plan_hardware_fmr () =
  let f0 = Fireripper.Hw.fmr ~latency:0 ~target_cycles:300 (kite_plan Fireripper.Spec.Exact) in
  let f6 = Fireripper.Hw.fmr ~latency:6 ~target_cycles:300 (kite_plan Fireripper.Spec.Exact) in
  check_bool (Printf.sprintf "fmr grows with latency (%.1f -> %.1f)" f0 f6) true (f6 > f0 +. 4.)

let test_plan_hardware_ring () =
  (* Multi-unit hardware: a 3-tile ring NoC partitioned by router groups,
     with a direct wrapper-to-wrapper ring link, in generated hardware. *)
  let circuit () = Socgen.Ring_noc.ring_soc ~n_tiles:3 ~period:5 () in
  let config =
    {
      Fireripper.Spec.default_config with
      Fireripper.Spec.selection = Fireripper.Spec.Noc_routers [ [ 0 ]; [ 1; 2 ] ];
    }
  in
  let plan = Fireripper.Compile.compile ~config (circuit ()) in
  check_int "three units" 3 (Fireripper.Plan.n_units plan);
  let target = 400 in
  let mono = Rtlsim.Sim.of_circuit (circuit ()) in
  for _ = 1 to target do
    Rtlsim.Sim.step mono
  done;
  let r =
    Fireripper.Hw.run ~latency:2 ~target_cycles:target plan ~setup:(fun _ -> ())
  in
  List.iteri
    (fun i reg ->
      ignore i;
      (* Find which unit holds the register by probing the host names. *)
      let value =
        List.find_map
          (fun u ->
            try Some (Rtlsim.Sim.get r.Fireripper.Hw.hr_sim (Fireripper.Hw.host_signal ~unit:u reg))
            with Rtlsim.Sim.Sim_error _ -> None)
          [ 0; 1; 2 ]
      in
      check_int reg (Rtlsim.Sim.get mono reg) (Option.get value))
    [ "ttile0$checksum_r"; "ttile1$checksum_r"; "ttile2$checksum_r"; "reflector$count" ]

let suite =
  [
    ( "fireripper.hw",
      [
        Alcotest.test_case "plan hardware is cycle-exact" `Quick test_plan_hardware_exact;
        Alcotest.test_case "plan hardware fast mode bounded" `Quick test_plan_hardware_fast_bounded;
        Alcotest.test_case "plan hardware FMR" `Quick test_plan_hardware_fmr;
        Alcotest.test_case "ring plan hardware cycle-exact" `Quick test_plan_hardware_ring;
      ] );
    ( "goldengate.fame1_rtl",
      [
        Alcotest.test_case "hardware LI-BDN cycle-exact" `Quick test_hardware_fame1_cycle_exact;
        Alcotest.test_case "FMR grows with link latency" `Quick test_fmr_grows_with_latency;
        Alcotest.test_case "gated target holds" `Quick test_gated_target_holds_without_fire;
      ] );
  ]
