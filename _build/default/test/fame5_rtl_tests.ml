(* Tests for the generated-hardware FAME-5 transform: N threads share
   one datapath with banked state.  Each thread must behave exactly like
   an independent copy of the original module, registers with reset
   values must be swept into the banks, memories must bank without
   cross-talk, and the resource win over N copies must materialize. *)

open Firrtl
module F5 = Goldengate.Fame5_rtl

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let as_circuit m = { Ast.cname = m.Ast.name; main = m.Ast.name; modules = [ m ] }

(* An accumulator with an enable — exercises reg reads, reg enables and
   comb outputs. *)
let accum () =
  let b = Builder.create "accum" in
  let open Dsl in
  let din = Builder.input b "din" 16 in
  let en = Builder.input b "en" 1 in
  Builder.output b "acc" 16;
  let sum = Builder.reg b "sum" 16 in
  Builder.reg_next b ~enable:en "sum" (sum +: din);
  Builder.connect b "acc" sum;
  Builder.finish b

let test_threads_are_independent_copies () =
  let threads = 3 in
  let wrapped = F5.wrap ~threads (accum ()) in
  Ast.check_circuit (as_circuit wrapped);
  let hw = Rtlsim.Sim.of_circuit (as_circuit wrapped) in
  (* Per-thread input streams: thread t adds (t+1)*k+1 on its k-th
     cycle, with thread 1 enabled only on odd cycles. *)
  let din t k = ((t + 1) * k) + 1 in
  let en t k = if t = 1 then k mod 2 else 1 in
  let steps = 8 in
  for host = 0 to F5.init_cycles ~threads + (steps * threads) - 1 do
    let t = host mod threads in
    let k = (host - F5.init_cycles ~threads) / threads in
    if host >= F5.init_cycles ~threads then begin
      Rtlsim.Sim.set_input hw "din" (din t k);
      Rtlsim.Sim.set_input hw "en" (en t k)
    end;
    Rtlsim.Sim.step hw
  done;
  (* References: independent unthreaded runs of the original module. *)
  for t = 0 to threads - 1 do
    let r = Rtlsim.Sim.of_circuit (as_circuit (accum ())) in
    for k = 0 to steps - 1 do
      Rtlsim.Sim.set_input r "din" (din t k);
      Rtlsim.Sim.set_input r "en" (en t k);
      Rtlsim.Sim.step r
    done;
    check_int
      (Printf.sprintf "thread %d bank equals its independent run" t)
      (Rtlsim.Sim.get r "sum")
      (Rtlsim.Sim.peek_mem hw "sum" t)
  done;
  (* Sanity: the streams genuinely diverge across threads. *)
  check_bool "banks differ" true
    (Rtlsim.Sim.peek_mem hw "sum" 0 <> Rtlsim.Sim.peek_mem hw "sum" 2)

let test_output_mux_tracks_tid () =
  (* The shared comb output reflects the currently scheduled thread. *)
  let threads = 2 in
  let wrapped = F5.wrap ~threads (accum ()) in
  let hw = Rtlsim.Sim.of_circuit (as_circuit wrapped) in
  (* Thread 0 accumulates 10 per cycle; thread 1 accumulates 1. *)
  for host = 0 to F5.init_cycles ~threads + 7 do
    let t = host mod threads in
    Rtlsim.Sim.set_input hw "din" (if t = 0 then 10 else 1);
    Rtlsim.Sim.set_input hw "en" 1;
    Rtlsim.Sim.step hw
  done;
  (* After an even number of post-init host cycles, tid is back at 0:
     the visible [acc] must be thread 0's bank; one host cycle later,
     thread 1's. *)
  Rtlsim.Sim.eval_comb hw;
  check_int "tid back at 0" 0 (Rtlsim.Sim.get hw F5.tid_name);
  check_int "output shows thread 0" (Rtlsim.Sim.peek_mem hw "sum" 0) (Rtlsim.Sim.get hw "acc");
  Rtlsim.Sim.set_input hw "en" 0;
  Rtlsim.Sim.step hw;
  Rtlsim.Sim.eval_comb hw;
  check_int "output shows thread 1" (Rtlsim.Sim.peek_mem hw "sum" 1) (Rtlsim.Sim.get hw "acc")

let test_nonzero_reset_swept () =
  (* A register with a non-zero reset value: every bank must start from
     it after the init sweep, and advance independently afterwards. *)
  let m =
    let b = Builder.create "cnt" in
    let open Dsl in
    Builder.output b "q" 16;
    let c = Builder.reg b ~init:5 "c" 16 in
    Builder.reg_next b "c" (c +: lit ~width:16 1);
    Builder.connect b "q" c;
    Builder.finish b
  in
  let threads = 4 in
  let hw = Rtlsim.Sim.of_circuit (as_circuit (F5.wrap ~threads m)) in
  for _ = 1 to F5.init_cycles ~threads do
    Rtlsim.Sim.step hw
  done;
  for t = 0 to threads - 1 do
    check_int (Printf.sprintf "bank %d holds the reset value" t) 5
      (Rtlsim.Sim.peek_mem hw "c" t)
  done;
  (* Two full rounds: every thread steps twice. *)
  for _ = 1 to 2 * threads do
    Rtlsim.Sim.step hw
  done;
  for t = 0 to threads - 1 do
    check_int (Printf.sprintf "bank %d advanced twice" t) 7 (Rtlsim.Sim.peek_mem hw "c" t)
  done

let test_memories_bank_without_crosstalk () =
  (* A module with a target memory: each thread's writes land in its
     own bank. *)
  let m =
    let b = Builder.create "scratch" in
    let open Dsl in
    let we = Builder.input b "we" 1 in
    let addr = Builder.input b "addr" 2 in
    let data = Builder.input b "data" 16 in
    let raddr = Builder.input b "raddr" 2 in
    Builder.output b "q" 16;
    let mem = Builder.mem b "m" ~width:16 ~depth:4 in
    Builder.mem_write b mem ~addr ~data ~enable:we;
    Builder.connect b "q" (read mem raddr);
    Builder.finish b
  in
  let threads = 2 in
  let hw = Rtlsim.Sim.of_circuit (as_circuit (F5.wrap ~threads m)) in
  for _ = 1 to F5.init_cycles ~threads do
    Rtlsim.Sim.set_input hw "we" 1;
    (* Writes during the init sweep must be suppressed. *)
    Rtlsim.Sim.set_input hw "addr" 0;
    Rtlsim.Sim.set_input hw "data" 9999;
    Rtlsim.Sim.step hw
  done;
  check_int "init-sweep writes suppressed" 0 (Rtlsim.Sim.peek_mem hw "m" 0);
  (* Thread 0 writes 111 at address 2; thread 1 writes 222 at the same
     target address. *)
  for host = 0 to 1 do
    Rtlsim.Sim.set_input hw "we" 1;
    Rtlsim.Sim.set_input hw "addr" 2;
    Rtlsim.Sim.set_input hw "data" (if host = 0 then 111 else 222);
    Rtlsim.Sim.step hw
  done;
  (* Physical layout: bank t spans [t*4, t*4+4). *)
  check_int "thread 0's word" 111 (Rtlsim.Sim.peek_mem hw "m" 2);
  check_int "thread 1's word" 222 (Rtlsim.Sim.peek_mem hw "m" (4 + 2));
  (* Reads see the scheduled thread's bank. *)
  Rtlsim.Sim.set_input hw "we" 0;
  Rtlsim.Sim.set_input hw "raddr" 2;
  Rtlsim.Sim.eval_comb hw;
  check_int "thread 0 reads its bank" 111 (Rtlsim.Sim.get hw "q");
  Rtlsim.Sim.step hw;
  Rtlsim.Sim.eval_comb hw;
  check_int "thread 1 reads its bank" 222 (Rtlsim.Sim.get hw "q")

let test_wrap_validation () =
  check_bool "threads = 1 is the identity" true
    (let m = accum () in
     F5.wrap ~threads:1 m == m);
  check_bool "threads = 0 rejected" true
    (try
       ignore (F5.wrap ~threads:0 (accum ()));
       false
     with Ast.Ir_error _ -> true);
  (* Non-flat modules are rejected. *)
  let hier =
    let b = Builder.create "top" in
    let a = Builder.inst b "a" "accum" in
    Builder.connect_in b a "din" (Dsl.lit ~width:16 1);
    Builder.connect_in b a "en" Dsl.one;
    Builder.output b "o" 16;
    Builder.connect b "o" (Builder.of_inst a "acc");
    Builder.finish b
  in
  check_bool "instances rejected" true
    (try
       ignore (F5.wrap ~threads:2 hier);
       false
     with Ast.Ir_error _ -> true)

let test_resource_amortization () =
  (* The point of FAME-5: N threads of hardware cost far fewer LUTs
     than N copies, paying in BRAM instead. *)
  let core = Flatten.flatten (Socgen.Soc.single_core_soc ~cache_sets:None ()) in
  let one = Platform.Resource.estimate_flat core in
  let threaded = Platform.Resource.estimate_flat (F5.wrap ~threads:4 core) in
  check_bool
    (Printf.sprintf "4 threads cost %d LUTs, 4 copies cost %d" threaded.Platform.Resource.luts
       (4 * one.Platform.Resource.luts))
    true
    (threaded.Platform.Resource.luts < 2 * one.Platform.Resource.luts);
  check_bool "state moved to BRAM" true
    (threaded.Platform.Resource.bram_bits > one.Platform.Resource.bram_bits)

let test_threaded_soc_runs_programs () =
  (* End to end: a 2-threaded whole Kite SoC runs two different programs
     to completion, one per thread bank. *)
  let threads = 2 in
  let flat = Flatten.flatten (Socgen.Soc.single_core_soc ~mem_latency:1 ~cache_sets:None ()) in
  let hw = Rtlsim.Sim.of_circuit (as_circuit (F5.wrap ~threads flat)) in
  for _ = 1 to F5.init_cycles ~threads do
    Rtlsim.Sim.step hw
  done;
  (* Load per-thread programs directly into the banks (bank stride =
     the memory depth of the original scratchpad, 1024). *)
  let load t program data =
    List.iteri
      (fun i w -> Rtlsim.Sim.poke_mem hw "mem$mem" ((t * 1024) + i) w)
      (Socgen.Kite_isa.assemble program);
    List.iter (fun (a, v) -> Rtlsim.Sim.poke_mem hw "mem$mem" ((t * 1024) + a) v) data
  in
  load 0 (Socgen.Kite_isa.sum_program ~base:32 ~n:4 ~dst:60) (List.init 4 (fun i -> (32 + i, i + 1)));
  load 1 (Socgen.Kite_isa.fib_program ~n:9 ~dst:60) [];
  (* Run both threads to halt. *)
  for _ = 1 to 6000 do
    Rtlsim.Sim.step hw
  done;
  check_int "thread 0 result (sum 1..4)" 10 (Rtlsim.Sim.peek_mem hw "mem$mem" 60);
  check_int "thread 1 result (fib 9)" 34 (Rtlsim.Sim.peek_mem hw "mem$mem" (1024 + 60))

let test_threaded_pipelined_soc () =
  (* Composition: the 5-stage pipelined SoC threaded 2 ways in
     hardware — per-thread instruction memories run different programs
     to completion, each matching the ISA reference. *)
  let threads = 2 in
  let flat = Flatten.flatten (Socgen.Kite5_core.soc ~mem_latency:1 ()) in
  let hw = Rtlsim.Sim.of_circuit (as_circuit (F5.wrap ~threads flat)) in
  for _ = 1 to F5.init_cycles ~threads do
    Rtlsim.Sim.step hw
  done;
  (* imem depth 256, mem depth 1024: bank strides. *)
  let load t program data =
    List.iteri
      (fun i w -> Rtlsim.Sim.poke_mem hw "core$imem" ((t * 256) + i) w)
      (Socgen.Kite_isa.assemble program);
    List.iter (fun (a, v) -> Rtlsim.Sim.poke_mem hw "mem$mem" ((t * 1024) + a) v) data
  in
  let p0 = Socgen.Kite_isa.sum_program ~base:32 ~n:5 ~dst:60 in
  let d0 = List.init 5 (fun i -> (32 + i, (i * 2) + 1)) in
  let p1 = Socgen.Kite_isa.fib_program ~n:11 ~dst:60 in
  load 0 p0 d0;
  load 1 p1 [];
  for _ = 1 to 4000 do
    Rtlsim.Sim.step hw
  done;
  let reference program data =
    let m = Socgen.Kite_isa.make_machine ~mem_words:1024 in
    List.iter (fun (a, v) -> m.Socgen.Kite_isa.mem.(a) <- v) data;
    let imem = Array.of_list (Socgen.Kite_isa.assemble program) in
    let steps = ref 0 in
    while (not m.Socgen.Kite_isa.halted) && !steps < 4000 do
      Socgen.Kite_isa.step_fetch m ~fetch:(fun pc ->
          if pc < Array.length imem then imem.(pc) else 0);
      incr steps
    done;
    m
  in
  let m0 = reference p0 d0 and m1 = reference p1 [] in
  check_int "thread 0 result" m0.Socgen.Kite_isa.mem.(60)
    (Rtlsim.Sim.peek_mem hw "mem$mem" 60);
  check_int "thread 1 result" m1.Socgen.Kite_isa.mem.(60)
    (Rtlsim.Sim.peek_mem hw "mem$mem" (1024 + 60));
  check_int "thread 0 retired" m0.Socgen.Kite_isa.retired
    (Rtlsim.Sim.peek_mem hw "core$retired_count" 0);
  check_int "thread 1 retired" m1.Socgen.Kite_isa.retired
    (Rtlsim.Sim.peek_mem hw "core$retired_count" 1)

let prop_random_circuits_thread_exact =
  (* Random hierarchical circuits, flattened and threaded N ways with
     no external inputs: every thread bank must track an independent
     (unthreaded) reference simulation register for register. *)
  QCheck.Test.make ~name:"fame5_rtl: random circuits thread exactly" ~count:20
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, extra) ->
      let threads = 2 + (seed mod 3) in
      let n = 4 + extra in
      let flat = Flatten.flatten (Extensions_tests.random_circuit (seed + 9) n) in
      let hw = Rtlsim.Sim.of_circuit (as_circuit (F5.wrap ~threads flat)) in
      let steps = 12 in
      for _ = 1 to F5.init_cycles ~threads + (steps * threads) do
        Rtlsim.Sim.step hw
      done;
      let r = Rtlsim.Sim.of_circuit (as_circuit flat) in
      for _ = 1 to steps do
        Rtlsim.Sim.step r
      done;
      List.for_all
        (fun k ->
          let reg = Printf.sprintf "i%d$r" k in
          List.for_all
            (fun t -> Rtlsim.Sim.get r reg = Rtlsim.Sim.peek_mem hw reg t)
            (List.init threads Fun.id))
        (List.init n Fun.id))

let suite =
  [
    ( "goldengate.fame5_rtl",
      [
        Alcotest.test_case "threads are independent copies" `Quick
          test_threads_are_independent_copies;
        Alcotest.test_case "output mux tracks tid" `Quick test_output_mux_tracks_tid;
        Alcotest.test_case "non-zero resets swept" `Quick test_nonzero_reset_swept;
        Alcotest.test_case "memories bank without crosstalk" `Quick
          test_memories_bank_without_crosstalk;
        Alcotest.test_case "validation" `Quick test_wrap_validation;
        Alcotest.test_case "resource amortization" `Quick test_resource_amortization;
        Alcotest.test_case "2-threaded SoC runs two programs" `Quick
          test_threaded_soc_runs_programs;
        Alcotest.test_case "2-threaded pipelined SoC" `Quick test_threaded_pipelined_soc;
        QCheck_alcotest.to_alcotest prop_random_circuits_thread_exact;
      ] );
  ]
