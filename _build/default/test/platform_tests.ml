(* Tests for the platform models: transports, FPGA resource estimation,
   and the DES performance model's paper-shape properties. *)

module FR = Fireripper

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)
(* ------------------------------------------------------------------ *)

let test_transport_ordering () =
  let d kind = Platform.Transport.delivery_ps kind ~bits:512 in
  check_bool "qsfp fastest" true (d Platform.Transport.Qsfp < d Platform.Transport.Pcie_p2p);
  check_bool "host slowest" true
    (d Platform.Transport.Pcie_p2p < d Platform.Transport.Pcie_host)

let test_transport_monotone_in_bits () =
  List.iter
    (fun kind ->
      check_bool "wider is slower" true
        (Platform.Transport.delivery_ps kind ~bits:256
        < Platform.Transport.delivery_ps kind ~bits:8192))
    [ Platform.Transport.Qsfp; Platform.Transport.Pcie_p2p; Platform.Transport.Pcie_host ]

(* ------------------------------------------------------------------ *)
(* Resource estimation                                                 *)
(* ------------------------------------------------------------------ *)

let test_resource_monotone () =
  let small = Platform.Resource.estimate_circuit (Socgen.Soc.single_core_soc ()) in
  let big = Platform.Resource.estimate_circuit (Socgen.Soc.multi_core_soc ~cores:4 ()) in
  check_bool "positive" true (small.Platform.Resource.luts > 0);
  check_bool "4 cores > 1 core LUTs" true
    (big.Platform.Resource.luts > small.Platform.Resource.luts);
  check_bool "4 cores > 1 core FFs" true (big.Platform.Resource.ffs > small.Platform.Resource.ffs)

let test_resource_bram_threshold () =
  let open Firrtl in
  let mk depth =
    let b = Builder.create "m" in
    let a = Builder.input b "a" 8 in
    let m = Builder.mem b "mem" ~width:16 ~depth in
    Builder.output b "o" 16;
    Builder.connect b "o" (Dsl.read m a);
    Builder.finish b
  in
  let small = Platform.Resource.estimate_flat (mk 16) in
  let big = Platform.Resource.estimate_flat (mk 4096) in
  check_int "small mem stays out of BRAM" 0 small.Platform.Resource.bram_bits;
  check_int "large mem uses BRAM" (16 * 4096) big.Platform.Resource.bram_bits

let test_fame5_resource_sharing () =
  let circuit = Socgen.Soc.multi_core_soc ~cores:4 () in
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Instances [ [ "tile0"; "tile1"; "tile2"; "tile3" ] ];
    }
  in
  let plan = FR.Compile.compile ~config circuit in
  let unthreaded = Platform.Resource.estimate_unit plan.FR.Plan.p_units.(1) in
  let threaded = Platform.Resource.estimate_unit ~threads:4 plan.FR.Plan.p_units.(1) in
  check_bool "FAME-5 shares combinational LUTs" true
    (threaded.Platform.Resource.luts < unthreaded.Platform.Resource.luts);
  check_int "state is replicated, not shared" unthreaded.Platform.Resource.ffs
    threaded.Platform.Resource.ffs

let test_fits () =
  let big =
    { Platform.Resource.luts = 2_000_000; ffs = 0; bram_bits = 0; dsps = 0 }
  in
  check_bool "too big" false (Platform.Fpga.fits Platform.Fpga.u250 big);
  let small = { Platform.Resource.luts = 100_000; ffs = 1000; bram_bits = 10; dsps = 2 } in
  check_bool "fits" true (Platform.Fpga.fits Platform.Fpga.u250 small);
  check_bool "u250 has more LUTs than cloud VU9P" true
    (Platform.Fpga.u250.Platform.Fpga.luts > Platform.Fpga.vu9p_f1.Platform.Fpga.luts)

(* ------------------------------------------------------------------ *)
(* Performance model (the Figure 11-14 shape claims)                   *)
(* ------------------------------------------------------------------ *)

let rate ?(bits = 512) ?(freq = 90.) ?(transport = Platform.Transport.Qsfp) mode =
  Platform.Perf.rate (Platform.Perf.two_fpga_spec ~mode ~bits ~freq_mhz:freq ~transport)

let test_fast_doubles_exact_when_narrow () =
  let ratio = rate FR.Spec.Fast /. rate FR.Spec.Exact in
  check_bool (Printf.sprintf "ratio %.2f near 2" ratio) true (ratio > 1.7 && ratio < 2.3)

let test_fast_advantage_shrinks_with_width () =
  let ratio bits = rate ~bits FR.Spec.Fast /. rate ~bits FR.Spec.Exact in
  check_bool "advantage shrinks as serialization dominates" true (ratio 128 > ratio 7000)

let test_rate_monotone () =
  check_bool "wider interface is slower" true
    (rate ~bits:128 FR.Spec.Fast > rate ~bits:7000 FR.Spec.Fast);
  check_bool "faster bitstream is faster" true
    (rate ~freq:90. FR.Spec.Fast > rate ~freq:10. FR.Spec.Fast)

let test_transport_rates () =
  let qsfp = rate FR.Spec.Fast in
  let p2p = rate ~transport:Platform.Transport.Pcie_p2p FR.Spec.Fast in
  let host = rate ~transport:Platform.Transport.Pcie_host FR.Spec.Fast in
  check_bool "qsfp ~1.6MHz" true (qsfp > 1.3e6 && qsfp < 2.0e6);
  check_bool "p2p ~1MHz" true (p2p > 0.8e6 && p2p < 1.2e6);
  check_bool "host-managed tens of kHz" true (host > 1.0e4 && host < 6.0e4);
  check_bool "p2p about 1.5x slower than qsfp" true
    (qsfp /. p2p > 1.3 && qsfp /. p2p < 2.0)

let test_ring_decays_with_fpga_count () =
  let r n =
    Platform.Perf.rate
      (Platform.Perf.ring_spec ~n ~bits:256 ~freq_mhz:50. ~transport:Platform.Transport.Qsfp)
  in
  check_bool "5-ring slower than 2-ring" true (r 5 < r 2);
  check_bool "but not catastrophically" true (r 5 > 0.5 *. r 2)

let test_fame5_amortizes () =
  let r tiles =
    Platform.Perf.rate
      (Platform.Perf.fame5_spec ~tiles ~bits_per_tile:250 ~tile_freq_mhz:15.
         ~soc_freq_mhz:25. ~transport:Platform.Transport.Qsfp)
  in
  (* Six threaded tiles must cost less than 2x over one tile (§VI-B). *)
  check_bool "1->6 tiles degrades < 2x" true (r 1 /. r 6 < 2.0);
  check_bool "more tiles not faster" true (r 6 <= r 1)

let test_analytic_close_to_des () =
  List.iter
    (fun spec ->
      let des = Platform.Perf.rate spec and formula = Platform.Perf.analytic_rate spec in
      check_bool
        (Printf.sprintf "DES %.3g vs formula %.3g within 2x" des formula)
        true
        (des /. formula < 2. && formula /. des < 2.))
    [
      Platform.Perf.two_fpga_spec ~mode:FR.Spec.Fast ~bits:512 ~freq_mhz:90.
        ~transport:Platform.Transport.Qsfp;
      Platform.Perf.two_fpga_spec ~mode:FR.Spec.Exact ~bits:2048 ~freq_mhz:30.
        ~transport:Platform.Transport.Pcie_p2p;
    ]

let test_of_plan () =
  (* A real compiled plan prices out to a positive, finite rate, and the
     exact-mode NoC plan (all-source channels) beats a hypothetical
     double-crossing boundary of the same width. *)
  let circuit = Socgen.Ring_noc.ring_soc ~n_tiles:3 ~period:6 () in
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Noc_routers [ [ 0; 1 ] ] }
  in
  let plan = FR.Compile.compile ~config circuit in
  let spec = Platform.Perf.of_plan plan in
  let r = Platform.Perf.rate spec in
  check_bool "positive finite" true (r > 0. && r < 1e9);
  (* All channels in a NoC plan are source channels: no deps. *)
  check_bool "source-only channels" true
    (Array.for_all (fun c -> c.Platform.Perf.ch_deps = []) spec.Platform.Perf.chans)

let suite =
  [
    ( "platform.transport",
      [
        Alcotest.test_case "ordering" `Quick test_transport_ordering;
        Alcotest.test_case "monotone in bits" `Quick test_transport_monotone_in_bits;
      ] );
    ( "platform.resource",
      [
        Alcotest.test_case "monotone" `Quick test_resource_monotone;
        Alcotest.test_case "BRAM threshold" `Quick test_resource_bram_threshold;
        Alcotest.test_case "FAME-5 sharing" `Quick test_fame5_resource_sharing;
        Alcotest.test_case "fit check" `Quick test_fits;
      ] );
    ( "platform.perf",
      [
        Alcotest.test_case "fast ~2x exact when narrow" `Quick test_fast_doubles_exact_when_narrow;
        Alcotest.test_case "fast advantage shrinks" `Quick test_fast_advantage_shrinks_with_width;
        Alcotest.test_case "monotone" `Quick test_rate_monotone;
        Alcotest.test_case "headline transport rates" `Quick test_transport_rates;
        Alcotest.test_case "ring decay" `Quick test_ring_decays_with_fpga_count;
        Alcotest.test_case "FAME-5 amortization" `Quick test_fame5_amortizes;
        Alcotest.test_case "DES vs formula" `Quick test_analytic_close_to_des;
        Alcotest.test_case "of_plan" `Quick test_of_plan;
      ] );
  ]
