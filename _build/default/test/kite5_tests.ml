(* Tests for the 5-stage pipelined Kite core: differential architectural
   equivalence against the ISA reference interpreter (canned programs
   and randomized ones), pipeline hazards, memory-latency tolerance,
   speedup over the multi-cycle FSM core, and partition exactness. *)

module FR = Fireripper
open Socgen.Kite_isa

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Runs [program] on the pipelined SoC; returns (sim, halt_cycle). *)
let run_rtl ?(mem_latency = 1) ?(max_cycles = 30_000) program data =
  let sim = Rtlsim.Sim.of_circuit (Socgen.Kite5_core.soc ~mem_latency ()) in
  Socgen.Kite5_core.load_program sim ~data program;
  let halt =
    Rtlsim.Sim.run_until sim ~max_cycles (fun s -> Rtlsim.Sim.get s "halted" = 1)
  in
  (sim, halt)

(* Runs [program] on the reference interpreter. *)
let run_ref program data =
  let m = make_machine ~mem_words:1024 in
  load_words m (assemble program);
  List.iter (fun (a, v) -> m.mem.(a) <- v) data;
  run m ~max_steps:30_000;
  m

let check_architectural name program data =
  let sim, _ = run_rtl program data in
  let m = run_ref program data in
  for r = 0 to 7 do
    check_int
      (Printf.sprintf "%s: r%d" name r)
      m.regs.(r)
      (Rtlsim.Sim.peek_mem sim "core$rf" r)
  done;
  for a = 40 to 70 do
    check_int
      (Printf.sprintf "%s: mem[%d]" name a)
      m.mem.(a)
      (Rtlsim.Sim.peek_mem sim "mem$mem" a)
  done;
  check_int (name ^ ": retired") m.retired (Rtlsim.Sim.get sim "retired")

(* ------------------------------------------------------------------ *)
(* Differential equivalence                                            *)
(* ------------------------------------------------------------------ *)

let test_programs_match_reference () =
  check_architectural "sum" (sum_program ~base:32 ~n:8 ~dst:60)
    (List.init 8 (fun i -> (32 + i, (i * 3) + 1)));
  check_architectural "fib" (fib_program ~n:10 ~dst:60) [];
  check_architectural "sum_repeat" (sum_repeat_program ~base:32 ~n:8 ~reps:5 ~dst:60)
    (List.init 8 (fun i -> (32 + i, i + 1)));
  check_architectural "memcopy" (memcopy_program ~src:32 ~dst:52 ~n:6)
    (List.init 6 (fun i -> (32 + i, 100 + i)))

let test_all_alu_functs () =
  check_architectural "alu"
    [
      Addi (1, 0, 9);
      Addi (2, 0, 3);
      Alu (F_sub, 3, 1, 2);
      Alu (F_and, 4, 1, 2);
      Alu (F_or, 5, 1, 2);
      Alu (F_xor, 6, 1, 2);
      Alu (F_sll, 7, 1, 2);
      Sw (3, 0, 50);
      Sw (4, 0, 51);
      Sw (5, 0, 52);
      Sw (6, 0, 53);
      Sw (7, 0, 54);
      Alu (F_srl, 3, 1, 2);
      Alu (F_slt, 4, 2, 1);
      Alu (F_slt, 5, 1, 2);
      Alu (F_mul, 6, 1, 2);
      Sw (3, 0, 55);
      Sw (4, 0, 56);
      Sw (5, 0, 57);
      Sw (6, 0, 58);
      Halt;
    ]
    []

let test_load_use_and_forwarding () =
  (* Back-to-back dependencies through every distance: LW feeding the
     very next instruction (load-use stall), ALU feeding the next
     (EX/MEM forward), one apart (MEM/WB forward), two apart (ID
     bypass). *)
  check_architectural "hazards"
    [
      Addi (1, 0, 60);
      Lw (2, 1, 0) (* load-use: consumer immediately after *);
      Alu (F_add, 3, 2, 2);
      Alu (F_add, 3, 3, 3) (* EX/MEM forward *);
      Alu (F_add, 4, 3, 2) (* mixes both forwards *);
      Addi (5, 0, 1);
      Addi (6, 0, 2);
      Alu (F_add, 7, 5, 6) (* distance-2: ID bypass *);
      Sw (3, 0, 50);
      Sw (4, 0, 51);
      Sw (7, 0, 52);
      Halt;
    ]
    [ (60, 21) ]

let test_branch_flush () =
  (* Wrong-path instructions after a taken branch must not commit. *)
  check_architectural "flush"
    [
      Addi (1, 0, 5);
      Bne (1, 0, 2) (* taken: skip the two poison stores *);
      Sw (1, 0, 50) (* wrong path *);
      Sw (1, 0, 51) (* wrong path *);
      Addi (2, 0, 7);
      Sw (2, 0, 52);
      Jal (3, 1) (* skip another poison store *);
      Sw (1, 0, 53);
      Sw (3, 0, 54) (* link register lands here *);
      Halt;
    ]
    []

let prop_random_programs_match_reference =
  (* Random straight-line-plus-forward-branches programs: identical
     architectural outcome (all registers, all memory, retired count)
     on the pipeline and the reference interpreter.  Forward-only
     control flow guarantees termination. *)
  QCheck.Test.make ~name:"kite5: random programs match the ISA reference" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Des.Stats.rng ~seed:(seed + 3) in
      let ri n = Des.Stats.int rng n in
      let len = 8 + ri 16 in
      let instr k =
        match ri 8 with
        | 0 | 1 -> Addi (ri 8, ri 8, ri 127 - 64)
        | 2 ->
          Alu
            ( List.nth [ F_add; F_sub; F_and; F_or; F_xor; F_sll; F_srl; F_slt; F_mul ] (ri 9),
              ri 8, ri 8, ri 8 )
        | 3 -> Lw (ri 8, ri 8, ri 63)
        | 4 -> Sw (ri 8, ri 8, ri 63)
        | 5 -> Beq (ri 8, ri 8, min 3 (len - k)) (* forward only *)
        | 6 -> Bne (ri 8, ri 8, min 3 (len - k))
        | _ -> Jal (ri 8, min 2 (len - k))
      in
      let program = List.init len instr @ [ Halt; Halt; Halt; Halt ] in
      let data = List.init 64 (fun i -> (i + 100, Des.Stats.int rng 65536)) in
      let sim, _ = run_rtl program data in
      (* Harvard reference: instructions fetched from a side image, so
         random stores never clobber code (as in the RTL). *)
      let imem = Array.of_list (assemble program) in
      let m = make_machine ~mem_words:1024 in
      List.iter (fun (a, v) -> m.mem.(a) <- v) data;
      let steps = ref 0 in
      while (not m.halted) && !steps < 30_000 do
        step_fetch m ~fetch:(fun pc -> if pc < Array.length imem then imem.(pc) else 0);
        incr steps
      done;
      let regs_ok =
        List.for_all
          (fun r -> m.regs.(r) = Rtlsim.Sim.peek_mem sim "core$rf" r)
          (List.init 8 Fun.id)
      in
      let mem_ok =
        List.for_all
          (fun a -> m.mem.(a) = Rtlsim.Sim.peek_mem sim "mem$mem" a)
          (List.init 256 Fun.id)
      in
      regs_ok && mem_ok && m.retired = Rtlsim.Sim.get sim "retired")

let test_parked_consumer_late_forward () =
  (* Regression (found by the random property): a consumer parked in EX
     behind a multi-cycle store sees its producer retire out of MEM/WB
     before EX fires; the operand must be captured as the producer
     passes write-back. *)
  List.iter
    (fun mem_latency ->
      let sim, _ =
        run_rtl ~mem_latency
          [
            Addi (1, 0, 7) (* producer *);
            Sw (0, 0, 50) (* parks the pipeline in MEM *);
            Alu (F_add, 2, 1, 1) (* consumer waits in EX meanwhile *);
            Sw (2, 0, 51);
            Halt;
          ]
          []
      in
      check_int
        (Printf.sprintf "captured operand at latency %d" mem_latency)
        14
        (Rtlsim.Sim.peek_mem sim "mem$mem" 51))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Pipelining pays, and tolerates memory latency                       *)
(* ------------------------------------------------------------------ *)

let test_faster_than_fsm_core () =
  let program = sum_repeat_program ~base:32 ~n:8 ~reps:6 ~dst:60 in
  let data = List.init 8 (fun i -> (32 + i, i + 1)) in
  let _, k5 = run_rtl program data in
  (* The multi-cycle FSM core on the same program (no L1, same
     scratchpad latency, to compare the cores themselves). *)
  let fsm = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ~mem_latency:1 ~cache_sets:None ()) in
  Socgen.Soc.load_program fsm ~mem:"mem$mem" ~data program;
  let fsm_halt =
    Rtlsim.Sim.run_until fsm ~max_cycles:30_000 (fun s -> Rtlsim.Sim.get s "halted" = 1)
  in
  check_bool
    (Printf.sprintf "pipeline at least 2x the FSM core (%d vs %d cycles)" k5 fsm_halt)
    true
    (k5 * 2 < fsm_halt)

let test_memory_latency_tolerance () =
  (* Same architectural result at any memory latency; more cycles at
     higher latency. *)
  let program = memcopy_program ~src:32 ~dst:52 ~n:6 in
  let data = List.init 6 (fun i -> (32 + i, 100 + i)) in
  let sim1, halt1 = run_rtl ~mem_latency:1 program data in
  let sim4, halt4 = run_rtl ~mem_latency:4 program data in
  for a = 52 to 57 do
    check_int
      (Printf.sprintf "mem[%d] latency-independent" a)
      (Rtlsim.Sim.peek_mem sim1 "mem$mem" a)
      (Rtlsim.Sim.peek_mem sim4 "mem$mem" a)
  done;
  check_bool "higher latency costs cycles" true (halt4 > halt1)

let test_dram_backed_equivalence () =
  (* The pipelined core in front of the DRAM timing model: same
     architectural result as with the scratchpad, different timing. *)
  let program = sum_repeat_program ~base:32 ~n:8 ~reps:4 ~dst:60 in
  let data = List.init 8 (fun i -> (32 + i, i + 2)) in
  let sp, sp_halt = run_rtl program data in
  let dr = Rtlsim.Sim.of_circuit (Socgen.Kite5_core.dram_soc ()) in
  Socgen.Kite5_core.load_program dr ~data program;
  let dr_halt =
    Rtlsim.Sim.run_until dr ~max_cycles:30_000 (fun s -> Rtlsim.Sim.get s "halted" = 1)
  in
  check_int "same result" (Rtlsim.Sim.peek_mem sp "mem$mem" 60)
    (Rtlsim.Sim.peek_mem dr "mem$mem" 60);
  check_int "same retired" (Rtlsim.Sim.get sp "retired") (Rtlsim.Sim.get dr "retired");
  check_bool "different timing" true (sp_halt <> dr_halt);
  check_bool "dram row activity recorded" true
    (Rtlsim.Sim.get dr "mem$hits_r" + Rtlsim.Sim.get dr "mem$misses_r" > 0)

let test_tracer_on_pipeline () =
  (* The commit-PC pipe makes the TracerV bridge trace the pipelined
     core: the traced PC sequence equals the reference interpreter's
     execution order. *)
  let program = fib_program ~n:6 ~dst:60 in
  let sim = Rtlsim.Sim.of_circuit (Socgen.Kite5_core.soc ~mem_latency:1 ()) in
  Socgen.Kite5_core.load_program sim ~data:[] program;
  let events =
    Fireripper.Tracer.of_sim sim ~pc:"core$mw_pc" ~retired:"core$retired_count"
      ~cycles:400
  in
  let m = run_ref program [] in
  check_int "every commit traced" m.retired (List.length events);
  (* Reference PC order. *)
  let m2 = make_machine ~mem_words:1024 in
  load_words m2 (assemble program);
  let want = ref [] in
  while not m2.halted do
    want := m2.pc :: !want;
    step m2
  done;
  check_bool "PC sequence matches reference" true
    (List.map (fun e -> e.Fireripper.Tracer.t_pc) events = List.rev !want)

(* ------------------------------------------------------------------ *)
(* Partitioning                                                        *)
(* ------------------------------------------------------------------ *)

let program = sum_repeat_program ~base:32 ~n:8 ~reps:4 ~dst:60
let data = List.init 8 (fun i -> (32 + i, (i * 2) + 1))

let test_partition_exact () =
  let mono = Rtlsim.Sim.of_circuit (Socgen.Kite5_core.soc ~mem_latency:1 ()) in
  Socgen.Kite5_core.load_program mono ~data program;
  for _ = 1 to 800 do
    Rtlsim.Sim.step mono
  done;
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "core" ] ] }
  in
  let plan = FR.Compile.compile ~config (Socgen.Kite5_core.soc ~mem_latency:1 ()) in
  let h = FR.Runtime.instantiate plan in
  let u = FR.Runtime.locate h "core$imem" in
  let mu = FR.Runtime.locate h "mem$mem" in
  List.iteri
    (fun i w -> Rtlsim.Sim.poke_mem (FR.Runtime.sim_of h u) "core$imem" i w)
    (assemble program);
  List.iter (fun (a, v) -> Rtlsim.Sim.poke_mem (FR.Runtime.sim_of h mu) "mem$mem" a v) data;
  FR.Runtime.run h ~cycles:800;
  List.iter
    (fun reg ->
      let ur = FR.Runtime.locate h reg in
      check_int reg (Rtlsim.Sim.get mono reg)
        (Rtlsim.Sim.get (FR.Runtime.sim_of h ur) reg))
    [ "core$retired_count"; "core$pc"; "core$halted_r"; "mem$state" ]

let test_partition_fast_mode_bounded () =
  (* The core's decoupled memory port is latency-insensitive by
     construction, so fast mode preserves the architectural result with
     a bounded cycle error. *)
  let v =
    Fireaxe.validate ~name:"k5"
      ~circuit:(fun () -> Socgen.Kite5_core.soc ~mem_latency:1 ())
      ~selection:(FR.Spec.Instances [ [ "core" ] ])
      ~setup:(fun ~poke ->
        List.iteri (fun i w -> poke ~mem:"core$imem" i w) (assemble program);
        List.iter (fun (a, v) -> poke ~mem:"mem$mem" a v) data)
      ~finished:(fun ~peek -> peek "core$halted_r" = 1)
      ()
  in
  check_int "exact mode cycle-identical" v.Fireaxe.v_monolithic_cycles v.Fireaxe.v_exact_cycles;
  check_bool
    (Printf.sprintf "fast mode bounded (%.2f%%)" v.Fireaxe.v_fast_error_pct)
    true
    (v.Fireaxe.v_fast_error_pct < 35.0)

let test_partition_hardware_exact () =
  (* The pipelined SoC through the generated FAME-1 hardware path. *)
  let mono = Rtlsim.Sim.of_circuit (Socgen.Kite5_core.soc ~mem_latency:1 ()) in
  Socgen.Kite5_core.load_program mono ~data program;
  let target = 600 in
  for _ = 1 to target do
    Rtlsim.Sim.step mono
  done;
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "core" ] ] }
  in
  let plan = FR.Compile.compile ~config (Socgen.Kite5_core.soc ~mem_latency:1 ()) in
  let r =
    FR.Hw.run ~latency:3 ~target_cycles:target plan ~setup:(fun sim ->
        List.iteri
          (fun i w -> Rtlsim.Sim.poke_mem sim (FR.Hw.host_signal ~unit:1 "core$imem") i w)
          (Socgen.Kite_isa.assemble program);
        List.iter
          (fun (a, v) -> Rtlsim.Sim.poke_mem sim (FR.Hw.host_signal ~unit:0 "mem$mem") a v)
          data)
  in
  List.iter
    (fun (unit, reg) ->
      check_int reg (Rtlsim.Sim.get mono reg)
        (Rtlsim.Sim.get r.FR.Hw.hr_sim (FR.Hw.host_signal ~unit reg)))
    [ (1, "core$retired_count"); (1, "core$pc"); (0, "mem$state") ]

let suite =
  [
    ( "socgen.kite5",
      [
        Alcotest.test_case "canned programs match reference" `Quick
          test_programs_match_reference;
        Alcotest.test_case "all ALU functs" `Quick test_all_alu_functs;
        Alcotest.test_case "hazards: load-use + forwarding" `Quick
          test_load_use_and_forwarding;
        Alcotest.test_case "branch flush" `Quick test_branch_flush;
        Alcotest.test_case "late forward to parked consumer" `Quick
          test_parked_consumer_late_forward;
        Alcotest.test_case "faster than the FSM core" `Quick test_faster_than_fsm_core;
        Alcotest.test_case "memory latency tolerance" `Quick test_memory_latency_tolerance;
        Alcotest.test_case "DRAM-backed equivalence" `Quick test_dram_backed_equivalence;
        Alcotest.test_case "TracerV on the pipeline" `Quick test_tracer_on_pipeline;
        QCheck_alcotest.to_alcotest prop_random_programs_match_reference;
      ] );
    ( "socgen.kite5.partition",
      [
        Alcotest.test_case "exact" `Quick test_partition_exact;
        Alcotest.test_case "fast mode bounded" `Quick test_partition_fast_mode_bounded;
        Alcotest.test_case "generated hardware exact" `Quick test_partition_hardware_exact;
      ] );
  ]
