(* Tests for the multi-clock extension (Goldengate.Clockdiv): slower
   clock domains modeled with synchronous enable gating, so partitions
   that cut a clock-domain crossing stay cycle-exact — and for the
   AutoCounter-style statistics bridge (Fireripper.Counters). *)

open Firrtl
module FR = Fireripper

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A slow-domain accumulator fed by a fast-domain counter: the classic
   CDC shape (fast producer, slow consumer). *)
let accum_module () =
  let b = Builder.create "accum" in
  let open Dsl in
  let din = Builder.input b "din" 8 in
  Builder.output b "acc" 8;
  let sum = Builder.reg b "sum" 8 in
  Builder.reg_next b "sum" (sum +: din);
  Builder.connect b "acc" sum;
  Builder.finish b

let cdc_circuit ~div () =
  let accum = Goldengate.Clockdiv.gate ~div (accum_module ()) in
  let b = Builder.create "cdc" in
  let open Dsl in
  let t = Builder.reg b "t" 8 in
  Builder.reg_next b "t" (t +: lit ~width:8 1);
  let a = Builder.inst b "a" "accum" in
  Builder.connect_in b a "din" t;
  Builder.output b "out" 8;
  Builder.connect b "out" (Builder.of_inst a "acc");
  let c = { Ast.cname = "cdc"; main = "cdc"; modules = [ accum; Builder.finish b ] } in
  Ast.check_circuit c;
  c

(* ------------------------------------------------------------------ *)
(* Clock gating semantics                                              *)
(* ------------------------------------------------------------------ *)

let test_gate_updates_every_div () =
  (* With div = 3 the accumulator register changes at most once per
     three base cycles, and exactly floor(cycles / 3) times overall. *)
  let sim = Rtlsim.Sim.of_circuit (cdc_circuit ~div:3 ()) in
  let changes = ref 0 in
  let prev = ref (Rtlsim.Sim.get sim "a$sum") in
  for _ = 1 to 30 do
    Rtlsim.Sim.step sim;
    let v = Rtlsim.Sim.get sim "a$sum" in
    if v <> !prev then incr changes;
    prev := v
  done;
  check_int "updates in 30 cycles at div 3" 10 !changes

let test_gate_div1_is_identity () =
  let m = accum_module () in
  let gated = Goldengate.Clockdiv.gate ~div:1 m in
  check_bool "div 1 leaves the module unchanged" true (m == gated)

let test_gate_phase_offsets_first_tick () =
  (* phase = 0 makes the first enable fire on base cycle 0: after one
     step the slow register has already sampled; the next div - 1 base
     cycles are gated off. *)
  let gated = Goldengate.Clockdiv.gate ~phase:0 ~div:4 (accum_module ()) in
  let eng = Libdn.Engine.of_flat gated in
  eng.Libdn.Engine.set_input "din" 7;
  eng.Libdn.Engine.eval_comb ();
  eng.Libdn.Engine.step_seq ();
  eng.Libdn.Engine.eval_comb ();
  check_int "sampled on the first base cycle" 7 (eng.Libdn.Engine.get "acc");
  for _ = 1 to 3 do
    eng.Libdn.Engine.set_input "din" 100;
    eng.Libdn.Engine.eval_comb ();
    eng.Libdn.Engine.step_seq ()
  done;
  eng.Libdn.Engine.eval_comb ();
  check_int "held until the next slow edge" 7 (eng.Libdn.Engine.get "acc")

let test_gate_rejects_bad_div () =
  check_bool "div 0 rejected" true
    (try
       ignore (Goldengate.Clockdiv.gate ~div:0 (accum_module ()));
       false
     with Ast.Ir_error _ -> true)

let test_gate_composes_with_existing_enable () =
  (* A register that already carries an enable keeps it: the gated
     register fires only when both the enable and the tick hold. *)
  let b = Builder.create "en" in
  let open Dsl in
  let go = Builder.input b "go" 1 in
  Builder.output b "q" 8;
  let q = Builder.reg b "qr" 8 in
  Builder.reg_next b ~enable:go "qr" (q +: lit ~width:8 1);
  Builder.connect b "q" q;
  let gated = Goldengate.Clockdiv.gate ~phase:0 ~div:2 (Builder.finish b) in
  let eng = Libdn.Engine.of_flat gated in
  (* go = 1 throughout: q advances on ticks only (base cycles 0, 2). *)
  eng.Libdn.Engine.set_input "go" 1;
  for _ = 1 to 4 do
    eng.Libdn.Engine.eval_comb ();
    eng.Libdn.Engine.step_seq ()
  done;
  eng.Libdn.Engine.eval_comb ();
  check_int "two ticks with enable high" 2 (eng.Libdn.Engine.get "q");
  (* go = 0: no update even on a tick. *)
  eng.Libdn.Engine.set_input "go" 0;
  for _ = 1 to 4 do
    eng.Libdn.Engine.eval_comb ();
    eng.Libdn.Engine.step_seq ()
  done;
  eng.Libdn.Engine.eval_comb ();
  check_int "enable low masks the tick" 2 (eng.Libdn.Engine.get "q")

let test_gate_module_rewrites_circuit () =
  let c = cdc_circuit ~div:1 () in
  let c2 = Goldengate.Clockdiv.gate_module ~div:2 c "accum" in
  Ast.check_circuit c2;
  let sim = Rtlsim.Sim.of_circuit c2 in
  let changes = ref 0 in
  let prev = ref (Rtlsim.Sim.get sim "a$sum") in
  for _ = 1 to 20 do
    Rtlsim.Sim.step sim;
    let v = Rtlsim.Sim.get sim "a$sum" in
    if v <> !prev then incr changes;
    prev := v
  done;
  check_int "half-rate updates" 10 !changes

(* ------------------------------------------------------------------ *)
(* Multi-clock partitioning stays cycle-exact                          *)
(* ------------------------------------------------------------------ *)

let test_multiclock_partition_exact () =
  (* Cut the design exactly at the clock-domain crossing: the gated
     slow module goes to its own unit.  Exact-mode partitioning of the
     enable-gated RTL must match the monolithic run cycle for cycle. *)
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "a" ] ] }
  in
  List.iter
    (fun div ->
      let mono = Rtlsim.Sim.of_circuit (cdc_circuit ~div ()) in
      let plan = FR.Compile.compile ~config (cdc_circuit ~div ()) in
      let h = FR.Runtime.instantiate plan in
      for cyc = 1 to 40 do
        Rtlsim.Sim.step mono;
        FR.Runtime.run h ~cycles:cyc;
        List.iter
          (fun reg ->
            let u = FR.Runtime.locate h reg in
            check_int
              (Printf.sprintf "div %d cycle %d %s" div cyc reg)
              (Rtlsim.Sim.get mono reg)
              (Rtlsim.Sim.get (FR.Runtime.sim_of h u) reg))
          [ "a$sum"; "a$clkdiv$count"; "t" ]
      done)
    [ 2; 3; 5 ]

let test_multiclock_partition_hw_exact () =
  (* Same crossing through the generated FAME-1 hardware path. *)
  let div = 3 in
  let mono = Rtlsim.Sim.of_circuit (cdc_circuit ~div ()) in
  for _ = 1 to 25 do
    Rtlsim.Sim.step mono
  done;
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "a" ] ] }
  in
  let plan = FR.Compile.compile ~config (cdc_circuit ~div ()) in
  let r = FR.Hw.run ~latency:2 ~target_cycles:25 plan ~setup:(fun _ -> ()) in
  let peek reg =
    Option.get
      (List.find_map
         (fun u ->
           try Some (Rtlsim.Sim.get r.FR.Hw.hr_sim (FR.Hw.host_signal ~unit:u reg))
           with Rtlsim.Sim.Sim_error _ -> None)
         [ 0; 1 ])
  in
  check_int "slow accumulator matches" (Rtlsim.Sim.get mono "a$sum") (peek "a$sum");
  check_int "fast counter matches" (Rtlsim.Sim.get mono "t") (peek "t")

(* ------------------------------------------------------------------ *)
(* AutoCounter statistics bridge                                       *)
(* ------------------------------------------------------------------ *)

let partitioned_soc () =
  let circuit = Socgen.Soc.multi_core_soc ~cores:2 ~mem_latency:1 () in
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Instances [ [ "tile0" ]; [ "tile1" ] ];
    }
  in
  let plan = FR.Compile.compile ~config circuit in
  let h = FR.Runtime.instantiate plan in
  let u = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h u) ~mem:"mem$mem" ~data:[]
    (Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:5 ~reps:20 ~dst:60);
  h

let test_counters_sampling () =
  let h = partitioned_soc () in
  let samples =
    FR.Counters.collect h
      ~signals:[ "tile0$core$retired_count"; "tile1$core$retired_count" ]
      ~every:100 ~cycles:500
  in
  check_int "five samples" 5 (List.length samples);
  let cycles = List.map (fun s -> s.FR.Counters.s_cycle) samples in
  check_bool "sample cycles" true (cycles = [ 100; 200; 300; 400; 500 ]);
  (* Retired-instruction counters are monotone non-decreasing. *)
  List.iter
    (fun sig_ ->
      let vals = List.map (fun s -> List.assoc sig_ s.FR.Counters.s_values) samples in
      let rec mono = function
        | a :: b :: rest -> a <= b && mono (b :: rest)
        | _ -> true
      in
      check_bool (sig_ ^ " monotone") true (mono vals);
      (* The simulation must actually advance between samples: a
         strictly larger count at the last sample than at the first. *)
      check_bool (sig_ ^ " progressed") true (List.nth vals 4 > List.hd vals && List.hd vals > 0))
    [ "tile0$core$retired_count"; "tile1$core$retired_count" ]

let test_counters_csv_and_rates () =
  let h = partitioned_soc () in
  let samples =
    FR.Counters.collect h ~signals:[ "tile0$core$retired_count" ] ~every:128 ~cycles:300
  in
  (* Uneven tail: 128, 256, 300. *)
  check_bool "tail sample at the end" true
    (List.map (fun s -> s.FR.Counters.s_cycle) samples = [ 128; 256; 300 ]);
  let csv = FR.Counters.to_csv samples in
  let first_line = List.hd (String.split_on_char '\n' csv) in
  check_bool "csv header" true (first_line = "cycle,tile0$core$retired_count");
  check_int "csv rows" 4 (List.length (String.split_on_char '\n' (String.trim csv)));
  let rates = FR.Counters.rates samples in
  check_int "one rate row per interval" 2 (List.length rates);
  List.iter
    (fun (_, row) ->
      List.iter (fun (_, r) -> check_bool "rate non-negative" true (r >= 0.0)) row)
    rates

let test_counters_on_advanced_handle () =
  (* Regression: both host bridges must continue from the handle's
     current cycle — [Runtime.run] targets absolute counts, so a bridge
     that restarts at zero silently samples a frozen simulation. *)
  let h = partitioned_soc () in
  FR.Runtime.run h ~cycles:250;
  let samples =
    FR.Counters.collect h ~signals:[ "tile0$core$retired_count" ] ~every:100 ~cycles:200
  in
  check_bool "absolute sample cycles continue from 250" true
    (List.map (fun s -> s.FR.Counters.s_cycle) samples = [ 350; 450 ]);
  let vals = List.map (fun s -> List.assoc "tile0$core$retired_count" s.FR.Counters.s_values) samples in
  check_bool "simulation actually advanced" true (List.nth vals 1 > List.hd vals)

let test_counters_empty_and_errors () =
  let h = partitioned_soc () in
  check_bool "zero cycles yields no samples" true
    (FR.Counters.collect h ~signals:[ "tile0$core$retired_count" ] ~every:10 ~cycles:0 = []);
  check_bool "csv of nothing is empty" true (FR.Counters.to_csv [] = "");
  check_bool "rates of nothing is empty" true (FR.Counters.rates [] = []);
  check_bool "bad period rejected" true
    (try
       ignore (FR.Counters.collect h ~signals:[] ~every:0 ~cycles:10);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Randomized property: gating arbitrary modules to arbitrary rates    *)
(* preserves exact-mode equivalence                                    *)
(* ------------------------------------------------------------------ *)

let prop_random_multiclock_exact =
  QCheck.Test.make ~name:"random multi-clock circuits: exact partition = monolithic"
    ~count:20
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, extra) ->
      let n = 4 + extra in
      let make () =
        (* Re-derive the same random circuit, then push each leaf module
           into its own randomly chosen clock domain (div 1..3). *)
        let rng = Des.Stats.rng ~seed:(seed + 13) in
        let c = ref (Extensions_tests.random_circuit (seed + 1) n) in
        for k = 0 to n - 1 do
          let div = 1 + Des.Stats.int rng 3 in
          c := Goldengate.Clockdiv.gate_module ~div !c (Printf.sprintf "leaf%d" k)
        done;
        !c
      in
      let rng = Des.Stats.rng ~seed:(seed + 99) in
      let selected =
        List.init n (fun k -> (k, Des.Stats.bernoulli rng 0.4))
        |> List.filter_map (fun (k, pick) ->
               if pick then Some (Printf.sprintf "i%d" k) else None)
      in
      let selected = if selected = [] then [ "i1" ] else selected in
      if List.length selected = n then true
      else begin
        let config =
          {
            FR.Spec.default_config with
            FR.Spec.selection = FR.Spec.Instances [ selected ];
            FR.Spec.allow_long_chains = true;
          }
        in
        let plan = FR.Compile.compile ~config (make ()) in
        let mono = Rtlsim.Sim.of_circuit (make ()) in
        for _ = 1 to 36 do
          Rtlsim.Sim.step mono
        done;
        let h = FR.Runtime.instantiate plan in
        FR.Runtime.run h ~cycles:36;
        List.for_all
          (fun k ->
            let reg = Printf.sprintf "i%d$r" k in
            let u = FR.Runtime.locate h reg in
            Rtlsim.Sim.get mono reg = Rtlsim.Sim.get (FR.Runtime.sim_of h u) reg)
          (List.init n Fun.id)
      end)

let suite =
  [
    ( "goldengate.clockdiv",
      [
        Alcotest.test_case "update rate" `Quick test_gate_updates_every_div;
        Alcotest.test_case "div 1 identity" `Quick test_gate_div1_is_identity;
        Alcotest.test_case "phase offset" `Quick test_gate_phase_offsets_first_tick;
        Alcotest.test_case "bad div" `Quick test_gate_rejects_bad_div;
        Alcotest.test_case "existing enables kept" `Quick test_gate_composes_with_existing_enable;
        Alcotest.test_case "gate_module" `Quick test_gate_module_rewrites_circuit;
      ] );
    ( "fireripper.multiclock",
      [
        Alcotest.test_case "CDC cut is cycle-exact" `Quick test_multiclock_partition_exact;
        Alcotest.test_case "CDC cut in hardware" `Quick test_multiclock_partition_hw_exact;
        QCheck_alcotest.to_alcotest prop_random_multiclock_exact;
      ] );
    ( "fireripper.counters",
      [
        Alcotest.test_case "periodic sampling" `Quick test_counters_sampling;
        Alcotest.test_case "csv and rates" `Quick test_counters_csv_and_rates;
        Alcotest.test_case "advanced handle" `Quick test_counters_on_advanced_handle;
        Alcotest.test_case "edge cases" `Quick test_counters_empty_and_errors;
      ] );
  ]
