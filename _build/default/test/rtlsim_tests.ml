(* Tests for the cycle-accurate RTL simulator: two-phase register
   semantics, enables, memories, arithmetic edge cases, cone evaluation
   and state snapshots. *)

open Firrtl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let single name build =
  let b = Builder.create name in
  build b;
  Rtlsim.Sim.create (Builder.finish b)

(* ------------------------------------------------------------------ *)
(* Register semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_register_swap () =
  (* a <= b; b <= a must swap, not copy: two-phase commit. *)
  let s =
    single "swap" (fun b ->
        let ra = Builder.reg b ~init:1 "ra" 8 in
        let rb = Builder.reg b ~init:2 "rb" 8 in
        Builder.reg_next b "ra" rb;
        Builder.reg_next b "rb" ra;
        Builder.output b "oa" 8;
        Builder.connect b "oa" ra;
        Builder.output b "ob" 8;
        Builder.connect b "ob" rb)
  in
  Rtlsim.Sim.step s;
  check_int "ra" 2 (Rtlsim.Sim.get s "oa" |> fun _ -> Rtlsim.Sim.get s "ra");
  check_int "rb" 1 (Rtlsim.Sim.get s "rb");
  Rtlsim.Sim.step s;
  check_int "ra swapped back" 1 (Rtlsim.Sim.get s "ra")

let test_register_enable () =
  let s =
    single "en" (fun b ->
        let en = Builder.input b "en" 1 in
        let c = Builder.reg b "c" 8 in
        Builder.reg_next b ~enable:en "c" Dsl.(c +: lit ~width:8 1);
        Builder.output b "out" 8;
        Builder.connect b "out" c)
  in
  Rtlsim.Sim.set_input s "en" 0;
  Rtlsim.Sim.step s;
  Rtlsim.Sim.step s;
  check_int "disabled holds" 0 (Rtlsim.Sim.get s "c");
  Rtlsim.Sim.set_input s "en" 1;
  Rtlsim.Sim.step s;
  Rtlsim.Sim.step s;
  check_int "enabled counts" 2 (Rtlsim.Sim.get s "c")

let test_register_init () =
  let s =
    single "init" (fun b ->
        let r = Builder.reg b ~init:42 "r" 8 in
        Builder.reg_next b "r" r;
        Builder.output b "out" 8;
        Builder.connect b "out" r)
  in
  Rtlsim.Sim.eval_comb s;
  check_int "init value" 42 (Rtlsim.Sim.get s "out")

(* ------------------------------------------------------------------ *)
(* Memories                                                            *)
(* ------------------------------------------------------------------ *)

let mem_sim () =
  single "memtest" (fun b ->
      let waddr = Builder.input b "waddr" 4 in
      let wdata = Builder.input b "wdata" 8 in
      let wen = Builder.input b "wen" 1 in
      let raddr = Builder.input b "raddr" 4 in
      let m = Builder.mem b "m" ~width:8 ~depth:16 in
      Builder.mem_write b m ~addr:waddr ~data:wdata ~enable:wen;
      Builder.output b "rdata" 8;
      Builder.connect b "rdata" (Dsl.read m raddr))

let test_mem_write_read () =
  let s = mem_sim () in
  Rtlsim.Sim.set_input s "waddr" 5;
  Rtlsim.Sim.set_input s "wdata" 99;
  Rtlsim.Sim.set_input s "wen" 1;
  Rtlsim.Sim.set_input s "raddr" 5;
  Rtlsim.Sim.eval_comb s;
  (* Async read sees pre-write state this cycle. *)
  check_int "read before clock edge" 0 (Rtlsim.Sim.get s "rdata");
  Rtlsim.Sim.step_seq s;
  Rtlsim.Sim.set_input s "wen" 0;
  Rtlsim.Sim.eval_comb s;
  check_int "read after clock edge" 99 (Rtlsim.Sim.get s "rdata")

let test_mem_write_disabled () =
  let s = mem_sim () in
  Rtlsim.Sim.set_input s "waddr" 3;
  Rtlsim.Sim.set_input s "wdata" 7;
  Rtlsim.Sim.set_input s "wen" 0;
  Rtlsim.Sim.step s;
  check_int "no write" 0 (Rtlsim.Sim.peek_mem s "m" 3)

let test_mem_poke_peek () =
  let s = mem_sim () in
  Rtlsim.Sim.load_mem s "m" [ 10; 20; 30 ];
  check_int "peek" 20 (Rtlsim.Sim.peek_mem s "m" 1);
  Rtlsim.Sim.set_input s "raddr" 2;
  Rtlsim.Sim.eval_comb s;
  check_int "read poked" 30 (Rtlsim.Sim.get s "rdata")

(* ------------------------------------------------------------------ *)
(* Arithmetic edge cases                                               *)
(* ------------------------------------------------------------------ *)

let comb_out ?(width = 8) e inputs =
  let b = Builder.create "comb" in
  let _ = Builder.input b "x" 8 in
  let _ = Builder.input b "y" 8 in
  Builder.output b "out" width;
  Builder.connect b "out" e;
  let s = Rtlsim.Sim.create (Builder.finish b) in
  List.iter (fun (n, v) -> Rtlsim.Sim.set_input s n v) inputs;
  Rtlsim.Sim.eval_comb s;
  Rtlsim.Sim.get s "out"

let test_arith_edges () =
  check_int "sub wraps" 255 (comb_out Dsl.(ref_ "x" -: ref_ "y") [ ("x", 0); ("y", 1) ]);
  check_int "div by zero" 0 (comb_out Dsl.(ref_ "x" /: ref_ "y") [ ("x", 9); ("y", 0) ]);
  check_int "rem by zero" 0 (comb_out Dsl.(ref_ "x" %: ref_ "y") [ ("x", 9); ("y", 0) ]);
  check_int "huge shift is zero" 0
    (comb_out Dsl.(ref_ "x" <<: ref_ "y") [ ("x", 1); ("y", 200) ]);
  check_int "shl wraps in width" 128
    (comb_out Dsl.(ref_ "x" <<: ref_ "y") [ ("x", 3); ("y", 7) ]);
  check_int "neg" 255 (comb_out Dsl.(neg (ref_ "x")) [ ("x", 1) ]);
  check_int "not" 0xf0 (comb_out Dsl.(not_ (ref_ "x")) [ ("x", 0x0f) ]);
  check_int "andr all ones" 1 (comb_out ~width:1 Dsl.(andr (ref_ "x")) [ ("x", 255) ]);
  check_int "andr not all ones" 0 (comb_out ~width:1 Dsl.(andr (ref_ "x")) [ ("x", 254) ]);
  check_int "xorr parity" 1 (comb_out ~width:1 Dsl.(xorr (ref_ "x")) [ ("x", 0b0111) ]);
  check_int "cat" 0x1203
    (comb_out ~width:16 Dsl.(cat (ref_ "x") (ref_ "y")) [ ("x", 0x12); ("y", 0x03) ]);
  check_int "bits" 0b101
    (comb_out ~width:3 Dsl.(bits (ref_ "x") ~hi:4 ~lo:2) [ ("x", 0b10100) ])

let test_connect_truncates () =
  (* Driving a narrow output from a wide expression truncates. *)
  check_int "truncate to out width" 0x34
    (comb_out ~width:8
       Dsl.(cat (ref_ "x") (ref_ "y"))
       [ ("x", 0x12); ("y", 0x34) ])

(* ------------------------------------------------------------------ *)
(* Cone evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let test_cone_eval () =
  let b = Builder.create "conetest" in
  let x = Builder.input b "x" 8 in
  let y = Builder.input b "y" 8 in
  Builder.output b "ox" 8;
  Builder.connect b "ox" Dsl.(x +: lit ~width:8 1);
  Builder.output b "oy" 8;
  Builder.connect b "oy" Dsl.(y +: lit ~width:8 1);
  let s = Rtlsim.Sim.create (Builder.finish b) in
  let eval_ox = Rtlsim.Sim.make_cone_eval s [ "ox" ] in
  Rtlsim.Sim.set_input s "x" 10;
  Rtlsim.Sim.set_input s "y" 20;
  eval_ox ();
  check_int "cone target updated" 11 (Rtlsim.Sim.get s "ox");
  check_int "outside cone untouched" 0 (Rtlsim.Sim.get s "oy")

(* ------------------------------------------------------------------ *)
(* State snapshots                                                     *)
(* ------------------------------------------------------------------ *)

let test_save_restore () =
  let s =
    single "snap" (fun b ->
        let c = Builder.reg b "c" 8 in
        Builder.reg_next b "c" Dsl.(c +: lit ~width:8 1);
        let m = Builder.mem b "m" ~width:8 ~depth:4 in
        Builder.mem_write b m ~addr:(Dsl.lit ~width:2 0) ~data:c
          ~enable:(Dsl.lit ~width:1 1);
        Builder.output b "out" 8;
        Builder.connect b "out" c)
  in
  Rtlsim.Sim.step s;
  Rtlsim.Sim.step s;
  let st = Rtlsim.Sim.save_state s in
  check_int "c before" 2 (Rtlsim.Sim.get s "c");
  Rtlsim.Sim.step s;
  Rtlsim.Sim.step s;
  check_int "c advanced" 4 (Rtlsim.Sim.get s "c");
  Rtlsim.Sim.restore_state s st;
  check_int "c restored" 2 (Rtlsim.Sim.get s "c");
  check_int "mem restored" 1 (Rtlsim.Sim.peek_mem s "m" 0)

let test_run_until () =
  let s =
    single "until" (fun b ->
        let c = Builder.reg b "c" 8 in
        Builder.reg_next b "c" Dsl.(c +: lit ~width:8 1);
        Builder.output b "done" 1;
        Builder.connect b "done" Dsl.(c ==: lit ~width:8 10))
  in
  let cyc = Rtlsim.Sim.run_until s (fun s -> Rtlsim.Sim.get s "done" = 1) in
  check_int "reaches 10 at cycle 10" 10 cyc

let test_run_until_timeout () =
  let s =
    single "forever" (fun b ->
        let c = Builder.reg b "c" 8 in
        Builder.reg_next b "c" c;
        Builder.output b "done" 1;
        Builder.connect b "done" Dsl.(c ==: lit ~width:8 1))
  in
  check_bool "times out" true
    (try
       ignore (Rtlsim.Sim.run_until s ~max_cycles:100 (fun s -> Rtlsim.Sim.get s "done" = 1));
       false
     with Rtlsim.Sim.Sim_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Determinism property                                                *)
(* ------------------------------------------------------------------ *)

let test_fixpoint_matches_levelized () =
  let c = Socgen.Bigcore.circuit ~p:Socgen.Bigcore.tiny () in
  let a = Rtlsim.Sim.of_circuit c and b = Rtlsim.Sim.of_circuit c in
  for _ = 1 to 50 do
    Rtlsim.Sim.eval_comb a;
    Rtlsim.Sim.step_seq a;
    Rtlsim.Sim.eval_comb_fixpoint b;
    Rtlsim.Sim.step_seq b
  done;
  Rtlsim.Sim.eval_comb a;
  Rtlsim.Sim.eval_comb_fixpoint b;
  check_int "same commits" (Rtlsim.Sim.get a "backend$commits_r")
    (Rtlsim.Sim.get b "backend$commits_r");
  check_int "same checksum" (Rtlsim.Sim.get a "backend$checksum_r")
    (Rtlsim.Sim.get b "backend$checksum_r")

let prop_deterministic =
  QCheck.Test.make ~name:"simulation is deterministic" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let run () =
        let b = Builder.create "det" in
        let x = Builder.input b "x" 8 in
        let acc = Builder.reg b "acc" 16 in
        Builder.reg_next b "acc" Dsl.(acc +: (x *: x));
        Builder.output b "out" 16;
        Builder.connect b "out" acc;
        let s = Rtlsim.Sim.create (Builder.finish b) in
        let r = ref (seed land 0xff) in
        for _ = 1 to 32 do
          r := (!r * 75) land 0xff;
          Rtlsim.Sim.set_input s "x" !r;
          Rtlsim.Sim.step s
        done;
        Rtlsim.Sim.eval_comb s;
        Rtlsim.Sim.get s "out"
      in
      run () = run ())

let test_mem_writes_two_phase () =
  (* Regression (found by the FAME-5 hardware transform): all memory
     writes of a cycle must commit from pre-update state.  Here mem B's
     write is enabled by what mem A held BEFORE A's same-cycle write —
     sequential application would see the new value and misfire. *)
  let sim =
    single "twophase" (fun b ->
        let open Dsl in
        let a = Builder.mem b "a" ~width:8 ~depth:2 in
        let bm = Builder.mem b "bm" ~width:8 ~depth:2 in
        let wa = Builder.input b "wa" 8 in
        (* A[0] <- wa every cycle; B[0] <- 77 only when A[0] is still 0. *)
        Builder.mem_write b a ~addr:(lit ~width:1 0) ~data:wa ~enable:one;
        Builder.mem_write b bm ~addr:(lit ~width:1 0) ~data:(lit ~width:8 77)
          ~enable:(read a (lit ~width:1 0) ==: lit ~width:8 0);
        Builder.output b "q" 8;
        Builder.connect b "q" (read bm (lit ~width:1 0)))
  in
  Rtlsim.Sim.set_input sim "wa" 55;
  Rtlsim.Sim.step sim;
  (* During the step, A[0] was 0, so B must have fired. *)
  check_int "B fired from pre-update A" 77 (Rtlsim.Sim.peek_mem sim "bm" 0);
  check_int "A updated" 55 (Rtlsim.Sim.peek_mem sim "a" 0);
  (* Next cycle A[0] = 55: B's enable is now false; overwrite B to see. *)
  Rtlsim.Sim.poke_mem sim "bm" 0 1;
  Rtlsim.Sim.step sim;
  check_int "B held once A was non-zero" 1 (Rtlsim.Sim.peek_mem sim "bm" 0)

let suite =
  [
    ( "rtlsim.registers",
      [
        Alcotest.test_case "two-phase swap" `Quick test_register_swap;
        Alcotest.test_case "enable" `Quick test_register_enable;
        Alcotest.test_case "init" `Quick test_register_init;
      ] );
    ( "rtlsim.memories",
      [
        Alcotest.test_case "write then read" `Quick test_mem_write_read;
        Alcotest.test_case "write disabled" `Quick test_mem_write_disabled;
        Alcotest.test_case "poke/peek" `Quick test_mem_poke_peek;
        Alcotest.test_case "writes are two-phase" `Quick test_mem_writes_two_phase;
      ] );
    ( "rtlsim.arith",
      [
        Alcotest.test_case "edge cases" `Quick test_arith_edges;
        Alcotest.test_case "connect truncates" `Quick test_connect_truncates;
      ] );
    ("rtlsim.cone", [ Alcotest.test_case "partial eval" `Quick test_cone_eval ]);
    ( "rtlsim.ablation",
      [ Alcotest.test_case "fixpoint = levelized" `Quick test_fixpoint_matches_levelized ] );
    ( "rtlsim.state",
      [
        Alcotest.test_case "save/restore" `Quick test_save_restore;
        Alcotest.test_case "run_until" `Quick test_run_until;
        Alcotest.test_case "run_until timeout" `Quick test_run_until_timeout;
      ] );
    ("rtlsim.properties", [ QCheck_alcotest.to_alcotest prop_deterministic ]);
  ]
