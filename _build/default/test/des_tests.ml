(* Tests for the discrete-event engine and its statistics helpers. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_event_ordering () =
  let eng = Des.Engine.create () in
  let log = ref [] in
  Des.Engine.schedule eng ~delay:30 (fun () -> log := 3 :: !log);
  Des.Engine.schedule eng ~delay:10 (fun () -> log := 1 :: !log);
  Des.Engine.schedule eng ~delay:20 (fun () -> log := 2 :: !log);
  Des.Engine.run eng;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_int "now at last event" 30 (Des.Engine.now eng)

let test_same_time_fifo () =
  let eng = Des.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Des.Engine.schedule eng ~delay:5 (fun () -> log := i :: !log)
  done;
  Des.Engine.run eng;
  Alcotest.(check (list int)) "insertion order at equal time"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_nested_scheduling () =
  let eng = Des.Engine.create () in
  let fired = ref 0 in
  Des.Engine.schedule eng ~delay:10 (fun () ->
      Des.Engine.schedule eng ~delay:10 (fun () ->
          incr fired;
          check_int "nested time" 20 (Des.Engine.now eng)));
  Des.Engine.run eng;
  check_int "nested fired" 1 !fired

let test_run_until () =
  let eng = Des.Engine.create () in
  let count = ref 0 in
  Des.Engine.periodic eng ~period:10 (fun () ->
      incr count;
      true);
  Des.Engine.run eng ~until:105 ~max_events:1000;
  check_int "ten periods" 10 !count

let test_periodic_stop () =
  let eng = Des.Engine.create () in
  let count = ref 0 in
  Des.Engine.periodic eng ~period:7 (fun () ->
      incr count;
      !count < 5);
  Des.Engine.run eng;
  check_int "stops after five" 5 !count

let test_past_time_rejected () =
  let eng = Des.Engine.create () in
  Des.Engine.schedule eng ~delay:10 (fun () ->
      check_bool "raises" true
        (try
           Des.Engine.at eng ~time:5 ignore;
           false
         with Invalid_argument _ -> true));
  Des.Engine.run eng

let test_heap_growth () =
  let eng = Des.Engine.create () in
  let total = ref 0 in
  for i = 1 to 1000 do
    Des.Engine.schedule eng ~delay:(1000 - (i mod 997)) (fun () -> incr total)
  done;
  Des.Engine.run eng;
  check_int "all fired" 1000 !total

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_percentiles () =
  let s = Des.Stats.create () in
  for i = 1 to 100 do
    Des.Stats.add s i
  done;
  check_int "p50" 50 (Des.Stats.percentile s 50);
  check_int "p99" 99 (Des.Stats.percentile s 99);
  check_int "max" 100 (Des.Stats.max_value s);
  Alcotest.(check (float 0.01)) "mean" 50.5 (Des.Stats.mean s)

let test_rng_deterministic () =
  let draw () =
    let r = Des.Stats.rng ~seed:42 in
    List.init 10 (fun _ -> Des.Stats.int r 1000)
  in
  check_bool "same seed same stream" true (draw () = draw ());
  let r1 = Des.Stats.rng ~seed:1 and r2 = Des.Stats.rng ~seed:2 in
  check_bool "different seeds differ" true
    (List.init 10 (fun _ -> Des.Stats.int r1 1000)
    <> List.init 10 (fun _ -> Des.Stats.int r2 1000))

let test_rng_bounds () =
  let r = Des.Stats.rng ~seed:7 in
  for _ = 1 to 1000 do
    let v = Des.Stats.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_exponential_mean () =
  let r = Des.Stats.rng ~seed:11 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Des.Stats.exponential r 100
  done;
  let mean = float_of_int !sum /. float_of_int n in
  check_bool (Printf.sprintf "mean %.1f near 100" mean) true (mean > 80. && mean < 120.)

let suite =
  [
    ( "des.engine",
      [
        Alcotest.test_case "event ordering" `Quick test_event_ordering;
        Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
        Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
        Alcotest.test_case "run until" `Quick test_run_until;
        Alcotest.test_case "periodic stop" `Quick test_periodic_stop;
        Alcotest.test_case "past time rejected" `Quick test_past_time_rejected;
        Alcotest.test_case "heap growth" `Quick test_heap_growth;
      ] );
    ( "des.stats",
      [
        Alcotest.test_case "percentiles" `Quick test_percentiles;
        Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
      ] );
  ]
