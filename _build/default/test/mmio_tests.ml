(* Tests for the MMIO splitter, the UART device, and the host-driver
   pattern (§IV-A): a Kite program prints through the memory-mapped
   UART; the host driver drains it with identical results whether the
   SoC is monolithic or partitioned (exact and fast modes). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let message = "hello, fireaxe!"

let data =
  List.mapi (fun i c -> (40 + i, Char.code c)) (List.init (String.length message) (String.get message))

let program = Socgen.Mmio.print_program ~base:40 ~n:(String.length message)

let test_monolithic_print () =
  let out, cycles = Socgen.Mmio.run_monolithic ~program ~data () in
  check_string "printed" message out;
  check_bool "took some cycles" true (cycles > 100)

let run_partitioned mode =
  let config =
    {
      Fireripper.Spec.default_config with
      Fireripper.Spec.mode;
      Fireripper.Spec.selection = Fireripper.Spec.Instances [ [ "tile" ] ];
    }
  in
  let plan = Fireripper.Compile.compile ~config (Socgen.Mmio.uart_soc ()) in
  let h = Fireripper.Runtime.instantiate plan in
  let base = Fireripper.Runtime.sim_of h (Fireripper.Runtime.locate h "mem$mem") in
  Socgen.Soc.load_program base ~mem:"mem$mem" ~data program;
  let tile_unit = Fireripper.Runtime.locate h "tile$core$state" in
  let tile = Fireripper.Runtime.sim_of h tile_unit in
  let collected = Buffer.create 64 in
  let cycle = ref 0 in
  let halted () =
    Rtlsim.Sim.get tile "tile$core$state" = Socgen.Kite_core.s_halted
    && Rtlsim.Sim.get base "uart$occ" = 0
  in
  while (not (halted ())) && !cycle < 100_000 do
    (* The host driver talks to the base partition exactly as it would
       talk to the FPGA through PCIe: read device state, push the pop. *)
    Socgen.Mmio.driver_step ~peek:(Rtlsim.Sim.get base) ~peek_mem:(Rtlsim.Sim.peek_mem base)
      ~poke:(fun name v -> (Fireripper.Runtime.engine h 0).Libdn.Engine.set_input name v)
      collected;
    incr cycle;
    Fireripper.Runtime.run h ~cycles:!cycle
  done;
  (Buffer.contents collected, !cycle)

let test_partitioned_exact_print () =
  let mono_out, mono_cycles = Socgen.Mmio.run_monolithic ~program ~data () in
  let out, cycles = run_partitioned Fireripper.Spec.Exact in
  check_string "same output" mono_out out;
  check_int "same cycle count" mono_cycles cycles

let test_partitioned_fast_print () =
  let mono_out, mono_cycles = Socgen.Mmio.run_monolithic ~program ~data () in
  let out, cycles = run_partitioned Fireripper.Spec.Fast in
  check_string "same output" mono_out out;
  check_bool "bounded cycle error" true (abs (cycles - mono_cycles) * 100 / mono_cycles <= 40)

let test_uart_occupancy_read () =
  (* Target software can read the FIFO occupancy over MMIO. *)
  let open Socgen.Kite_isa in
  let program =
    [
      Addi (6, 0, 15);
      Addi (5, 0, 1);
      Alu (F_sll, 5, 5, 6);
      Addi (4, 0, 63) (* '?' *);
      Sw (4, 5, 0);
      Sw (4, 5, 0);
      Lw (1, 5, 0) (* r1 = occupancy *);
      Sw (1, 0, 60);
      Halt;
    ]
  in
  (* No driver pops: the two writes stay queued, so the read sees 2. *)
  let sim = Rtlsim.Sim.of_circuit (Socgen.Mmio.uart_soc ()) in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data:[] program;
  let _ =
    Rtlsim.Sim.run_until sim ~max_cycles:100_000 (fun s ->
        Rtlsim.Sim.get s "tile$core$state" = Socgen.Kite_core.s_halted)
  in
  check_int "occupancy readback" 2 (Rtlsim.Sim.peek_mem sim "mem$mem" 60)

let test_uart_backpressure () =
  (* Without a driver, a program printing more than the FIFO depth must
     stall (not halt) rather than lose bytes. *)
  let long = String.make 32 'x' in
  let data = List.mapi (fun i c -> (40 + i, Char.code c)) (List.init 32 (String.get long)) in
  let program = Socgen.Mmio.print_program ~base:40 ~n:32 in
  let sim = Rtlsim.Sim.of_circuit (Socgen.Mmio.uart_soc ()) in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data program;
  for _ = 1 to 20_000 do
    Rtlsim.Sim.step sim
  done;
  Rtlsim.Sim.eval_comb sim;
  check_bool "core stalled, not halted" true
    (Rtlsim.Sim.get sim "tile$core$state" <> Socgen.Kite_core.s_halted);
  check_int "fifo full" 16 (Rtlsim.Sim.get sim "uart$occ")

let prop_fast_mode_preserves_output =
  (* Random messages survive the fast-mode boundary bit for bit: the
     skid-buffer/valid-gating repairs guarantee no loss or duplication
     under the injected latency. *)
  QCheck.Test.make ~name:"fast mode preserves UART output" ~count:8
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 1 12) QCheck.Gen.printable)
    (fun message ->
      let data =
        List.mapi (fun i c -> (40 + i, Char.code c))
          (List.init (String.length message) (String.get message))
      in
      let program = Socgen.Mmio.print_program ~base:40 ~n:(String.length message) in
      let mono_out, _ = Socgen.Mmio.run_monolithic ~program ~data () in
      let config =
        {
          Fireripper.Spec.default_config with
          Fireripper.Spec.mode = Fireripper.Spec.Fast;
          Fireripper.Spec.selection = Fireripper.Spec.Instances [ [ "tile" ] ];
        }
      in
      let plan = Fireripper.Compile.compile ~config (Socgen.Mmio.uart_soc ()) in
      let h = Fireripper.Runtime.instantiate plan in
      let base = Fireripper.Runtime.sim_of h (Fireripper.Runtime.locate h "mem$mem") in
      Socgen.Soc.load_program base ~mem:"mem$mem" ~data program;
      let tile = Fireripper.Runtime.sim_of h (Fireripper.Runtime.locate h "tile$core$state") in
      let collected = Buffer.create 64 in
      let cycle = ref 0 in
      let finished () =
        Rtlsim.Sim.get tile "tile$core$state" = Socgen.Kite_core.s_halted
        && Rtlsim.Sim.get base "uart$occ" = 0
      in
      while (not (finished ())) && !cycle < 50_000 do
        Socgen.Mmio.driver_step ~peek:(Rtlsim.Sim.get base)
          ~peek_mem:(Rtlsim.Sim.peek_mem base)
          ~poke:(fun name v -> (Fireripper.Runtime.engine h 0).Libdn.Engine.set_input name v)
          collected;
        incr cycle;
        Fireripper.Runtime.run h ~cycles:!cycle
      done;
      Buffer.contents collected = mono_out)

let suite =
  [
    ( "mmio.uart",
      [
        Alcotest.test_case "monolithic print" `Quick test_monolithic_print;
        Alcotest.test_case "partitioned exact print" `Quick test_partitioned_exact_print;
        Alcotest.test_case "partitioned fast print" `Quick test_partitioned_fast_print;
        Alcotest.test_case "occupancy readback" `Quick test_uart_occupancy_read;
        Alcotest.test_case "backpressure" `Quick test_uart_backpressure;
        QCheck_alcotest.to_alcotest prop_fast_mode_preserves_output;
      ] );
  ]
