(* Tests for the TracerV-style instruction-trace bridge: trace fidelity
   against the ISA reference interpreter, exact-mode trace identity,
   fast-mode PC-sequence preservation, and the FirePerf-style profile. *)

module FR = Fireripper

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:4 ~reps:3 ~dst:60
let data = List.init 4 (fun i -> (32 + i, i + 1))

(* The architectural PC sequence from the ISA reference interpreter. *)
let reference_pcs () =
  let m = Socgen.Kite_isa.make_machine ~mem_words:1024 in
  Socgen.Kite_isa.load_words m (Socgen.Kite_isa.assemble program);
  List.iter (fun (a, v) -> m.Socgen.Kite_isa.mem.(a) <- v) data;
  let pcs = ref [] in
  while not m.Socgen.Kite_isa.halted do
    pcs := m.Socgen.Kite_isa.pc :: !pcs;
    Socgen.Kite_isa.step m
  done;
  List.rev !pcs

let mono_soc () =
  let sim = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data program;
  sim

let partitioned_soc ~mode () =
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.mode;
      FR.Spec.selection = FR.Spec.Instances [ [ "tile" ] ];
    }
  in
  let plan = FR.Compile.compile ~config (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  let h = FR.Runtime.instantiate plan in
  let u = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h u) ~mem:"mem$mem" ~data program;
  h

let pc = "tile$core$pc"
let retired = "tile$core$retired_count"
let window = 3000

let test_trace_matches_reference () =
  (* The RTL trace commits exactly the reference interpreter's PC
     sequence, in order. *)
  let events = FR.Tracer.of_sim (mono_soc ()) ~pc ~retired ~cycles:window in
  let got = List.map (fun e -> e.FR.Tracer.t_pc) events in
  let want = reference_pcs () in
  check_int "same instruction count" (List.length want) (List.length got);
  check_bool "same PC sequence" true (got = want);
  (* Cycles are strictly increasing. *)
  let rec increasing = function
    | a :: b :: rest -> a.FR.Tracer.t_cycle < b.FR.Tracer.t_cycle && increasing (b :: rest)
    | _ -> true
  in
  check_bool "strictly increasing commit cycles" true (increasing events)

let test_exact_partition_trace_identical () =
  let mono = FR.Tracer.of_sim (mono_soc ()) ~pc ~retired ~cycles:window in
  let part =
    FR.Tracer.of_handle (partitioned_soc ~mode:FR.Spec.Exact ()) ~pc ~retired ~cycles:window
  in
  check_bool "exact-mode trace identical (cycles and PCs)" true (mono = part)

let test_fast_partition_preserves_pc_sequence () =
  let mono = FR.Tracer.of_sim (mono_soc ()) ~pc ~retired ~cycles:window in
  let part =
    FR.Tracer.of_handle (partitioned_soc ~mode:FR.Spec.Fast ()) ~pc ~retired ~cycles:window
  in
  let pcs evs = List.map (fun e -> e.FR.Tracer.t_pc) evs in
  check_bool "fast-mode PC sequence identical" true (pcs mono = pcs part);
  check_bool "fast-mode cycles shifted" true (mono <> part)

let test_histogram_finds_hot_loop () =
  let events = FR.Tracer.of_sim (mono_soc ()) ~pc ~retired ~cycles:window in
  let hist = FR.Tracer.histogram events in
  check_int "histogram covers every commit" (List.length events)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 hist);
  (* The inner loop body executes n * reps = 12 times; straight-line
     setup code once.  The hottest PC must be a loop PC. *)
  let _, hottest = List.hd hist in
  check_bool (Printf.sprintf "hottest PC runs the loop (%d commits)" hottest) true
    (hottest >= 12);
  (* Histogram is sorted by count, descending. *)
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  check_bool "sorted descending" true (sorted hist)

let test_ipc_and_render () =
  let sim = mono_soc () in
  let events = FR.Tracer.of_sim sim ~pc ~retired ~cycles:window in
  let ipc = FR.Tracer.ipc events ~cycles:window in
  check_bool (Printf.sprintf "ipc in (0, 1) (%.3f)" ipc) true (ipc > 0.0 && ipc < 1.0);
  check_bool "ipc of empty window" true (FR.Tracer.ipc [] ~cycles:0 = 0.0);
  let lines =
    FR.Tracer.render events
      ~fetch:(fun a -> Rtlsim.Sim.peek_mem sim "mem$mem" a)
      ~disasm:(fun w -> Socgen.Kite_isa.to_string (Socgen.Kite_isa.decode w))
  in
  check_int "one line per event" (List.length events) (List.length lines);
  (* The final committed instruction is the halt. *)
  let last = List.nth lines (List.length lines - 1) in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "trace ends in halt" true (contains (String.lowercase_ascii last) "halt")

let suite =
  [
    ( "fireripper.tracer",
      [
        Alcotest.test_case "matches ISA reference" `Quick test_trace_matches_reference;
        Alcotest.test_case "exact partition: identical trace" `Quick
          test_exact_partition_trace_identical;
        Alcotest.test_case "fast partition: same PC sequence" `Quick
          test_fast_partition_preserves_pc_sequence;
        Alcotest.test_case "FirePerf histogram" `Quick test_histogram_finds_hot_loop;
        Alcotest.test_case "ipc and render" `Quick test_ipc_and_render;
      ] );
  ]
