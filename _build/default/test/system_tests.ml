(* Tests for the system-level studies: the Go GC latency model
   (Figure 10 shapes) and the DDIO / leaky-DMA model (Figure 9 shapes),
   plus unit tests of the LLC and bus substrates. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Go GC model                                                         *)
(* ------------------------------------------------------------------ *)

let gc_run gomaxprocs affinity =
  Golang.Model.run { Golang.Model.gomaxprocs; affinity; duration_ms = 200 }

let test_gomaxprocs1_dominates_tail () =
  let serial = gc_run 1 Golang.Model.Pinned in
  let multi = gc_run 2 Golang.Model.Spread in
  check_bool "GOMAXPROCS=1 p99 is order of magnitude worse" true
    (serial.Golang.Model.p99_us > 5. *. multi.Golang.Model.p99_us);
  check_bool "GCs ran" true (serial.Golang.Model.gc_cycles > 10)

let test_pinned_beats_spread () =
  List.iter
    (fun p ->
      let pinned = gc_run p Golang.Model.Pinned in
      let spread = gc_run p Golang.Model.Spread in
      check_bool
        (Printf.sprintf "P=%d pinned p99 %.1f <= spread %.1f" p pinned.Golang.Model.p99_us
           spread.Golang.Model.p99_us)
        true
        (pinned.Golang.Model.p99_us <= spread.Golang.Model.p99_us);
      check_bool "p95 too" true
        (pinned.Golang.Model.p95_us <= spread.Golang.Model.p95_us))
    [ 2; 4 ]

let test_gc_model_deterministic () =
  let a = gc_run 2 Golang.Model.Spread and b = gc_run 2 Golang.Model.Spread in
  check_bool "deterministic" true (a = b)

let test_numa_experiment () =
  let same, cross = Golang.Model.numa_experiment () in
  check_bool "cross-NUMA worse" true (cross > same *. 1.2)

(* ------------------------------------------------------------------ *)
(* LLC with DDIO ways                                                  *)
(* ------------------------------------------------------------------ *)

let test_llc_hit_after_fill () =
  let c = Ddio.Llc.create ~size_kb:128 ~ways:8 ~ddio_ways:2 in
  check_bool "first touch misses" true (Ddio.Llc.access c ~io:false ~write:false 42 <> Ddio.Llc.Hit);
  check_bool "second touch hits" true (Ddio.Llc.access c ~io:false ~write:false 42 = Ddio.Llc.Hit)

let test_llc_ddio_way_restriction () =
  let c = Ddio.Llc.create ~size_kb:128 ~ways:8 ~ddio_ways:2 in
  let sets = 128 * 1024 / 64 / 8 in
  (* Three distinct IO lines mapping to the same set: only 2 DDIO ways,
     so the first is evicted. *)
  ignore (Ddio.Llc.access c ~io:true ~write:true 0);
  ignore (Ddio.Llc.access c ~io:true ~write:true sets);
  ignore (Ddio.Llc.access c ~io:true ~write:true (2 * sets));
  check_bool "first io line evicted" true
    (Ddio.Llc.access c ~io:true ~write:false 0 <> Ddio.Llc.Hit)

let test_llc_core_uses_all_ways () =
  let c = Ddio.Llc.create ~size_kb:128 ~ways:8 ~ddio_ways:2 in
  let sets = 128 * 1024 / 64 / 8 in
  for k = 0 to 7 do
    ignore (Ddio.Llc.access c ~io:false ~write:false (k * sets))
  done;
  (* All eight fit in the eight ways. *)
  for k = 0 to 7 do
    check_bool
      (Printf.sprintf "way %d retained" k)
      true
      (Ddio.Llc.access c ~io:false ~write:false (k * sets) = Ddio.Llc.Hit)
  done

let test_llc_dirty_writeback () =
  let c = Ddio.Llc.create ~size_kb:128 ~ways:8 ~ddio_ways:1 in
  let sets = 128 * 1024 / 64 / 8 in
  ignore (Ddio.Llc.access c ~io:true ~write:true 0);
  check_bool "dirty victim reports writeback" true
    (Ddio.Llc.access c ~io:true ~write:true sets = Ddio.Llc.Miss_writeback)

(* ------------------------------------------------------------------ *)
(* Bus models                                                          *)
(* ------------------------------------------------------------------ *)

let test_xbar_queues () =
  let bus = Ddio.Bus.xbar () in
  let t1 = Ddio.Bus.traverse bus ~channel:Ddio.Bus.Req ~src:0 ~dst:1 ~arrival:0 in
  let t2 = Ddio.Bus.traverse bus ~channel:Ddio.Bus.Req ~src:2 ~dst:1 ~arrival:0 in
  check_bool "second request queues behind first" true (t2 > t1);
  (* Response channel is independent. *)
  let t3 = Ddio.Bus.traverse bus ~channel:Ddio.Bus.Resp ~src:1 ~dst:0 ~arrival:0 in
  check_bool "response channel unaffected" true (t3 <= t1)

let test_ring_hop_latency () =
  let bus = Ddio.Bus.ring ~nodes:14 in
  let near = Ddio.Bus.traverse bus ~channel:Ddio.Bus.Req ~src:0 ~dst:1 ~arrival:0 in
  let far = Ddio.Bus.traverse bus ~channel:Ddio.Bus.Req ~src:0 ~dst:7 ~arrival:1_000_000 in
  check_bool "more hops take longer" true (far - 1_000_000 > near)

let test_ring_shortest_path () =
  let bus = Ddio.Bus.ring ~nodes:14 in
  (* 13 is one hop counterclockwise from 0. *)
  let t = Ddio.Bus.traverse bus ~channel:Ddio.Bus.Req ~src:0 ~dst:13 ~arrival:0 in
  let t2 = Ddio.Bus.traverse bus ~channel:Ddio.Bus.Req ~src:0 ~dst:1 ~arrival:1_000_000 in
  check_bool "wraps the short way" true (t < 2 * (t2 - 1_000_000))

(* ------------------------------------------------------------------ *)
(* Leaky-DMA experiment shapes                                         *)
(* ------------------------------------------------------------------ *)

let leaky topo cores =
  Ddio.Leaky.run ~topology:topo ~active_cores:cores ~packets_per_core:300 ()

let test_latency_rises_with_cores () =
  List.iter
    (fun topo ->
      let low = leaky topo 1 and high = leaky topo 12 in
      check_bool "write latency rises" true
        (high.Ddio.Leaky.wr_lat_ns > 2. *. low.Ddio.Leaky.wr_lat_ns);
      check_bool "read latency rises" true
        (high.Ddio.Leaky.rd_lat_ns > 2. *. low.Ddio.Leaky.rd_lat_ns))
    [ Ddio.Leaky.Topo_xbar; Ddio.Leaky.Topo_ring ]

let test_ring_higher_base_latency () =
  let x = leaky Ddio.Leaky.Topo_xbar 1 and r = leaky Ddio.Leaky.Topo_ring 1 in
  check_bool "NoC costs more per transaction under low load" true
    (r.Ddio.Leaky.wr_lat_ns > x.Ddio.Leaky.wr_lat_ns)

let test_xbar_saturates_faster () =
  let x = leaky Ddio.Leaky.Topo_xbar 12 and r = leaky Ddio.Leaky.Topo_ring 12 in
  check_bool "crossbar write latency overtakes ring at high core counts" true
    (x.Ddio.Leaky.wr_lat_ns > r.Ddio.Leaky.wr_lat_ns)

let test_ddio_ways_relief () =
  let narrow = Ddio.Leaky.run ~ddio_ways:2 ~topology:Ddio.Leaky.Topo_xbar ~active_cores:12 ~packets_per_core:300 () in
  let wide = Ddio.Leaky.run ~ddio_ways:8 ~topology:Ddio.Leaky.Topo_xbar ~active_cores:12 ~packets_per_core:300 () in
  check_bool "more DDIO ways improve hit rate" true
    (wide.Ddio.Leaky.llc_hit_rate >= narrow.Ddio.Leaky.llc_hit_rate)

let test_leaky_deterministic () =
  let a = leaky Ddio.Leaky.Topo_xbar 6 and b = leaky Ddio.Leaky.Topo_xbar 6 in
  check_bool "deterministic" true (a = b)

(* ------------------------------------------------------------------ *)
(* Bigcore (split-core case study design)                              *)
(* ------------------------------------------------------------------ *)

let test_bigcore_tiny_runs () =
  let sim = Rtlsim.Sim.of_circuit (Socgen.Bigcore.circuit ~p:Socgen.Bigcore.tiny ()) in
  for _ = 1 to 500 do
    Rtlsim.Sim.step sim
  done;
  check_bool "commits advance" true (Rtlsim.Sim.get sim "backend$commits_r" > 0)

let test_bigcore_partition_exact () =
  let p = Socgen.Bigcore.tiny in
  let circuit () = Socgen.Bigcore.circuit ~p () in
  let mono = Rtlsim.Sim.of_circuit (circuit ()) in
  for _ = 1 to 400 do
    Rtlsim.Sim.step mono
  done;
  let config =
    {
      Fireripper.Spec.default_config with
      Fireripper.Spec.selection = Fireripper.Spec.Instances [ [ "backend" ] ];
    }
  in
  let plan = Fireripper.Compile.compile ~config (circuit ()) in
  let h = Fireripper.Runtime.instantiate plan in
  Fireripper.Runtime.run h ~cycles:400;
  List.iter
    (fun reg ->
      let u = Fireripper.Runtime.locate h reg in
      check_int reg (Rtlsim.Sim.get mono reg)
        (Rtlsim.Sim.get (Fireripper.Runtime.sim_of h u) reg))
    [ "backend$commits_r"; "backend$checksum_r"; "frontend$pc" ]

let test_bigcore_backend_dominates_area () =
  let p = Socgen.Bigcore.tiny in
  let fe = Platform.Resource.estimate_flat
      (Firrtl.Flatten.flatten (Firrtl.Flatten.to_circuit (Socgen.Bigcore.frontend_module p ()))) in
  let be = Platform.Resource.estimate_flat
      (Firrtl.Flatten.flatten (Firrtl.Flatten.to_circuit (Socgen.Bigcore.backend_module p ()))) in
  check_bool "backend bigger than frontend" true
    (be.Platform.Resource.luts > fe.Platform.Resource.luts)

(* ------------------------------------------------------------------ *)
(* Fireaxe facade                                                      *)
(* ------------------------------------------------------------------ *)

let test_fireaxe_validate () =
  let v =
    Fireaxe.validate ~name:"fib"
      ~circuit:(fun () -> Socgen.Soc.single_core_soc ~mem_latency:1 ())
      ~selection:(Fireaxe.Spec.Instances [ [ "tile" ] ])
      ~setup:(fun ~poke ->
        List.iteri (fun i w -> poke ~mem:"mem$mem" i w)
          (Socgen.Kite_isa.assemble (Socgen.Kite_isa.fib_program ~n:12 ~dst:60)))
      ~finished:(fun ~peek -> peek "tile$core$state" = Socgen.Kite_core.s_halted)
      ()
  in
  Alcotest.(check (float 0.0001)) "exact error zero" 0. v.Fireaxe.v_exact_error_pct;
  check_bool "fast differs but bounded" true
    (v.Fireaxe.v_fast_error_pct > 0. && v.Fireaxe.v_fast_error_pct < 25.)

let test_fireaxe_estimate_and_fit () =
  let plan =
    Fireaxe.compile
      ~config:
        {
          Fireaxe.Spec.default_config with
          Fireaxe.Spec.selection = Fireaxe.Spec.Instances [ [ "tile" ] ];
        }
      (Socgen.Soc.single_core_soc ())
  in
  check_bool "rate positive" true (Fireaxe.estimate_rate plan > 0.);
  let utils = Fireaxe.utilization plan in
  check_int "one row per unit" 2 (List.length utils);
  List.iter (fun (_, _, _, fits) -> check_bool "small SoC fits" true fits) utils

let suite =
  [
    ( "golang.gc",
      [
        Alcotest.test_case "GOMAXPROCS=1 tail" `Quick test_gomaxprocs1_dominates_tail;
        Alcotest.test_case "pinned beats spread" `Quick test_pinned_beats_spread;
        Alcotest.test_case "deterministic" `Quick test_gc_model_deterministic;
        Alcotest.test_case "NUMA corroboration" `Quick test_numa_experiment;
      ] );
    ( "ddio.llc",
      [
        Alcotest.test_case "hit after fill" `Quick test_llc_hit_after_fill;
        Alcotest.test_case "DDIO way restriction" `Quick test_llc_ddio_way_restriction;
        Alcotest.test_case "core uses all ways" `Quick test_llc_core_uses_all_ways;
        Alcotest.test_case "dirty writeback" `Quick test_llc_dirty_writeback;
      ] );
    ( "ddio.bus",
      [
        Alcotest.test_case "xbar queues" `Quick test_xbar_queues;
        Alcotest.test_case "ring hops" `Quick test_ring_hop_latency;
        Alcotest.test_case "ring shortest path" `Quick test_ring_shortest_path;
      ] );
    ( "ddio.leaky",
      [
        Alcotest.test_case "latency rises with cores" `Quick test_latency_rises_with_cores;
        Alcotest.test_case "ring base latency higher" `Quick test_ring_higher_base_latency;
        Alcotest.test_case "xbar saturates faster" `Quick test_xbar_saturates_faster;
        Alcotest.test_case "more DDIO ways help" `Quick test_ddio_ways_relief;
        Alcotest.test_case "deterministic" `Quick test_leaky_deterministic;
      ] );
    ( "socgen.bigcore",
      [
        Alcotest.test_case "tiny runs" `Quick test_bigcore_tiny_runs;
        Alcotest.test_case "partition exact" `Quick test_bigcore_partition_exact;
        Alcotest.test_case "backend dominates area" `Quick test_bigcore_backend_dominates_area;
      ] );
    ( "fireaxe.api",
      [
        Alcotest.test_case "validate" `Quick test_fireaxe_validate;
        Alcotest.test_case "estimate + fit" `Quick test_fireaxe_estimate_and_fit;
      ] );
  ]
