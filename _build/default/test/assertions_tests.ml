(* Tests for synthesized assertions: conventional [assert$] wires found
   through the hierarchy, violations pinpointed at their exact cycle —
   monolithically and through the partition runtime — and the NoC
   credit-protocol invariants holding under real traffic. *)

open Firrtl
module FR = Fireripper

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A counter that asserts when it reaches [limit]. *)
let bomb ~name ~limit () =
  let b = Builder.create name in
  let open Dsl in
  Builder.output b "q" 8;
  let c = Builder.reg b "c" 8 in
  Builder.reg_next b "c" (c +: lit ~width:8 1);
  Builder.connect b "q" c;
  Builder.assertion b "limit" (c ==: lit ~width:8 limit);
  Builder.finish b

let bomb_circuit ~limit () =
  let m = bomb ~name:"bomb" ~limit () in
  let b = Builder.create "top" in
  let i = Builder.inst b "u" "bomb" in
  Builder.output b "q" 8;
  Builder.connect b "q" (Builder.of_inst i "q");
  Ast.{ cname = "top"; main = "top"; modules = [ m; Builder.finish b ] }

let test_signals_found_through_hierarchy () =
  let sim = Rtlsim.Sim.of_circuit (bomb_circuit ~limit:10 ()) in
  Alcotest.(check (list string)) "flattened assertion names" [ "u$assert$limit" ]
    (Rtlsim.Assertions.signals sim)

let test_violation_at_exact_cycle () =
  let sim = Rtlsim.Sim.of_circuit (bomb_circuit ~limit:10 ()) in
  match Rtlsim.Assertions.run sim ~max_cycles:100 (fun _ -> false) with
  | Error (cycle, bad) ->
    check_int "fires the cycle the counter reads 10" 10 cycle;
    Alcotest.(check (list string)) "names the assertion" [ "u$assert$limit" ] bad
  | Ok _ -> Alcotest.fail "assertion did not fire"

let test_clean_run_is_ok () =
  let sim = Rtlsim.Sim.of_circuit (bomb_circuit ~limit:200 ()) in
  match Rtlsim.Assertions.run sim ~max_cycles:50 (fun _ -> false) with
  | Ok cycles -> check_int "ran to the bound" 50 cycles
  | Error (c, _) -> Alcotest.fail (Printf.sprintf "spurious violation at %d" c)

let test_partitioned_detection_matches () =
  (* The asserting module on its own (simulated) FPGA: the partition
     runtime pinpoints the same cycle as the monolithic run. *)
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "u" ] ] }
  in
  let plan = FR.Compile.compile ~config (bomb_circuit ~limit:17 ()) in
  let h = FR.Runtime.instantiate plan in
  check_bool "assertion listed across units" true
    (List.exists (fun (_, s) -> s = "u$assert$limit") (FR.Runtime.assertions h));
  (match FR.Runtime.run_checked h ~max_cycles:100 with
  | Error (cycle, bad) ->
    check_int "same cycle as monolithic" 17 cycle;
    check_bool "names the assertion" true (bad = [ "u$assert$limit" ])
  | Ok _ -> Alcotest.fail "partitioned run missed the violation");
  (* A clean partitioned run reports Ok. *)
  let h2 =
    FR.Runtime.instantiate (FR.Compile.compile ~config (bomb_circuit ~limit:200 ()))
  in
  check_bool "clean partitioned run" true (FR.Runtime.run_checked h2 ~max_cycles:60 = Ok 60)

let test_hardware_path_detection () =
  (* Third execution backend: the generated FAME-1 host circuit keeps
     the assertion wires (under [unitN$target$...]), so the host can
     stop the moment one fires and read the exact target cycle. *)
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "u" ] ] }
  in
  let plan = FR.Compile.compile ~config (bomb_circuit ~limit:17 ()) in
  let assert_wire = FR.Hw.host_signal ~unit:1 "u$assert$limit" in
  let r =
    FR.Hw.run ~latency:2 ~target_cycles:100 plan
      ~pred:(fun sim -> Rtlsim.Sim.get sim assert_wire = 1)
      ~setup:(fun _ -> ())
  in
  check_bool "hardware assertion wires discoverable" true
    (List.mem assert_wire (Rtlsim.Assertions.signals r.FR.Hw.hr_sim));
  check_int "stopped at the violating target cycle" 17
    (Rtlsim.Sim.get r.FR.Hw.hr_sim "cycles1")

let test_noc_credit_invariants_hold () =
  (* Every ring/mesh/torus queue now carries overflow/underflow
     assertions; saturating traffic must never violate them. *)
  List.iter
    (fun (name, circuit) ->
      let sim = Rtlsim.Sim.of_circuit circuit in
      check_bool (name ^ " has assertions") true
        (List.length (Rtlsim.Assertions.signals sim) > 0);
      match Rtlsim.Assertions.run sim ~max_cycles:800 (fun _ -> false) with
      | Ok _ -> ()
      | Error (c, bad) ->
        Alcotest.fail
          (Printf.sprintf "%s: credit invariant broken at %d (%s)" name c
             (String.concat ", " bad)))
    [
      ("ring", Socgen.Ring_noc.ring_soc ~n_tiles:4 ~period:2 ());
      ("mesh", Socgen.Mesh_noc.mesh_soc ~width:3 ~height:2 ~period:2 ());
      ("torus", Socgen.Torus_noc.torus_soc ~width:2 ~height:2 ~period:2 ());
    ]

let test_broken_sender_caught () =
  (* A producer that ignores credits and pushes every cycle: the
     overflow assertion must fire shortly after the 2-deep queue and
     2 credits are exhausted. *)
  let router =
    Socgen.Ring_noc.router_module ~name:"r" ~index:0
      ~payload_width:16 ()
  in
  let b = Builder.create "brk" in
  let open Dsl in
  let r = Builder.inst b "r" "r" in
  Builder.connect_in b r "ring_in_valid" one (* push always: protocol violation *);
  Builder.connect_in b r "ring_in_data" (lit ~width:26 ((1 lsl 21) lor 7));
  Builder.connect_in b r "ring_out_credit" zero;
  Builder.connect_in b r "loc_in_valid" zero;
  Builder.connect_in b r "loc_in_data" (lit ~width:26 0);
  Builder.connect_in b r "loc_out_credit" zero;
  Builder.output b "v" 1;
  Builder.connect b "v" (Builder.of_inst r "ring_out_valid");
  let circuit = Ast.{ cname = "brk"; main = "brk"; modules = [ router; Builder.finish b ] } in
  let sim = Rtlsim.Sim.of_circuit circuit in
  match Rtlsim.Assertions.run sim ~max_cycles:50 (fun _ -> false) with
  | Error (cycle, bad) ->
    check_bool (Printf.sprintf "overflow caught at cycle %d" cycle) true (cycle <= 10);
    check_bool "it is a queue-overflow assertion" true
      (List.exists (fun s -> Rtlsim.Assertions.has_marker s && String.length s > 0) bad)
  | Ok _ -> Alcotest.fail "credit violation went undetected"

let suite =
  [
    ( "rtlsim.assertions",
      [
        Alcotest.test_case "found through hierarchy" `Quick test_signals_found_through_hierarchy;
        Alcotest.test_case "violation at exact cycle" `Quick test_violation_at_exact_cycle;
        Alcotest.test_case "clean run" `Quick test_clean_run_is_ok;
        Alcotest.test_case "partitioned detection" `Quick test_partitioned_detection_matches;
        Alcotest.test_case "hardware-path detection" `Quick test_hardware_path_detection;
        Alcotest.test_case "NoC credit invariants hold" `Quick test_noc_credit_invariants_hold;
        Alcotest.test_case "broken sender caught" `Quick test_broken_sender_caught;
      ] );
  ]
