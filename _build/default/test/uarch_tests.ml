(* Tests for the OoO core timing model and the Embench workload
   generator: Table I parameters, first-principles IPC sanity on
   hand-built traces, and the Figure 7/8 shape claims. *)

open Uarch.Trace

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk ?(op = Int_alu) ?(src1 = 0) ?(src2 = 0) ?(mispredicted = false) ?(pc = 0)
    ?(addr = -1) () =
  {
    op;
    src1_dist = src1;
    src2_dist = src2;
    mispredicted;
    pc_block = pc;
    addr_block = addr;
    fp_dest = (op = Fp);
  }

let run cfg trace = Uarch.Core.run cfg (Array.of_list trace)

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

let test_table1_values () =
  check_int "large issue" 3 Uarch.Config.large_boom.Uarch.Config.issue_width;
  check_int "gc40 rob" 216 Uarch.Config.gc40_boom.Uarch.Config.rob_entries;
  check_int "xeon rob" 512 Uarch.Config.gc_xeon.Uarch.Config.rob_entries;
  check_int "gc40 ld queue" 76 Uarch.Config.gc40_boom.Uarch.Config.ld_queue;
  check_int "xeon l1d" 48 Uarch.Config.gc_xeon.Uarch.Config.l1d_kb;
  check_int "rows" 9 (List.length Uarch.Config.table1);
  Alcotest.(check (float 0.001)) "gc40 area" 1.56 (Uarch.Config.area_mm2 "GC40 BOOM")

(* ------------------------------------------------------------------ *)
(* First-principles IPC sanity                                         *)
(* ------------------------------------------------------------------ *)

let test_independent_alu_hits_width () =
  (* Independent single-cycle ops: IPC approaches the issue width. *)
  let trace = List.init 3000 (fun _ -> mk ()) in
  let r = run Uarch.Config.large_boom trace in
  check_bool
    (Printf.sprintf "ipc %.2f near width 3" r.Uarch.Core.r_ipc)
    true
    (r.Uarch.Core.r_ipc > 2.5 && r.Uarch.Core.r_ipc <= 3.01)

let test_serial_chain_limits_ipc () =
  (* Every instruction depends on the previous one: IPC <= 1. *)
  let trace = List.init 3000 (fun _ -> mk ~src1:1 ()) in
  let r = run Uarch.Config.gc40_boom trace in
  check_bool (Printf.sprintf "ipc %.2f <= 1" r.Uarch.Core.r_ipc) true (r.Uarch.Core.r_ipc <= 1.01)

let test_serial_fp_chain_slower () =
  let alu = run Uarch.Config.gc40_boom (List.init 2000 (fun _ -> mk ~src1:1 ())) in
  let fp = run Uarch.Config.gc40_boom (List.init 2000 (fun _ -> mk ~op:Fp ~src1:1 ())) in
  check_bool "fp chain pays fp latency" true
    (fp.Uarch.Core.r_cycles > 3 * alu.Uarch.Core.r_cycles)

let test_mispredicts_cost_cycles () =
  let clean =
    run Uarch.Config.large_boom
      (List.init 2000 (fun i -> if i mod 10 = 0 then mk ~op:Branch () else mk ()))
  in
  let dirty =
    run Uarch.Config.large_boom
      (List.init 2000 (fun i ->
           if i mod 10 = 0 then mk ~op:Branch ~mispredicted:true () else mk ()))
  in
  check_bool "mispredicts slow the core" true
    (dirty.Uarch.Core.r_cycles > clean.Uarch.Core.r_cycles + 1000)

let test_dcache_misses_cost_cycles () =
  let hot = run Uarch.Config.large_boom (List.init 2000 (fun _ -> mk ~op:Load ~addr:3 ())) in
  let cold =
    run Uarch.Config.large_boom (List.init 2000 (fun i -> mk ~op:Load ~addr:(i * 17) ()))
  in
  check_bool "streaming misses are slower" true
    (cold.Uarch.Core.r_cycles > hot.Uarch.Core.r_cycles);
  check_bool "miss rate reported" true (cold.Uarch.Core.r_l1d_miss_rate > 0.5)

let test_cpi_stack_accounts_for_total () =
  let r = Workloads.Embench.run ~config:Uarch.Config.large_boom "nettle-aes" in
  let stack_total =
    List.fold_left (fun acc (_, v) -> acc +. v) 0. r.Uarch.Core.r_cpi_stack
  in
  let cpi = 1. /. r.Uarch.Core.r_ipc in
  check_bool
    (Printf.sprintf "stack %.3f ~ cpi %.3f" stack_total cpi)
    true
    (Float.abs (stack_total -. cpi) /. cpi < 0.15)

let test_prefetch_helps_streaming () =
  let run prefetch name =
    Workloads.Embench.run
      ~config:{ Uarch.Config.gc40_boom with Uarch.Config.l1d_prefetch = prefetch }
      name
  in
  let off = run false "matmult-int" and on = run true "matmult-int" in
  check_bool "prefetch speeds up streaming loads" true
    (on.Uarch.Core.r_cycles < off.Uarch.Core.r_cycles);
  check_bool "and lowers the miss rate" true
    (on.Uarch.Core.r_l1d_miss_rate < off.Uarch.Core.r_l1d_miss_rate);
  (* Compute-bound workloads are insensitive. *)
  let off = run false "nbody" and on = run true "nbody" in
  check_bool "nbody barely moves" true
    (abs (on.Uarch.Core.r_cycles - off.Uarch.Core.r_cycles) * 100 / off.Uarch.Core.r_cycles < 5)

let test_deterministic () =
  let r1 = Workloads.Embench.run ~config:Uarch.Config.gc40_boom "crc32" in
  let r2 = Workloads.Embench.run ~config:Uarch.Config.gc40_boom "crc32" in
  check_int "same cycles" r1.Uarch.Core.r_cycles r2.Uarch.Core.r_cycles

(* ------------------------------------------------------------------ *)
(* Figure 7/8 shape claims                                             *)
(* ------------------------------------------------------------------ *)

let test_gc40_beats_large_everywhere () =
  List.iter
    (fun name ->
      let large = Workloads.Embench.run ~config:Uarch.Config.large_boom name in
      let gc40 = Workloads.Embench.run ~config:Uarch.Config.gc40_boom name in
      check_bool (name ^ ": GC40 >= Large") true
        (gc40.Uarch.Core.r_ipc >= large.Uarch.Core.r_ipc *. 0.99))
    Workloads.Embench.all_names

let test_average_uplift_matches_paper () =
  let ratios =
    List.map
      (fun name ->
        let large = Workloads.Embench.run ~config:Uarch.Config.large_boom name in
        let gc40 = Workloads.Embench.run ~config:Uarch.Config.gc40_boom name in
        gc40.Uarch.Core.r_ipc /. large.Uarch.Core.r_ipc)
      Workloads.Embench.all_names
  in
  let avg = List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios) in
  (* Paper: 15.8% average IPC increase.  Accept a band around it. *)
  check_bool (Printf.sprintf "average uplift %.1f%%" ((avg -. 1.) *. 100.)) true
    (avg > 1.08 && avg < 1.30)

let test_benchmark_sensitivity_spread () =
  let uplift name =
    let large = Workloads.Embench.run ~config:Uarch.Config.large_boom name in
    let gc40 = Workloads.Embench.run ~config:Uarch.Config.gc40_boom name in
    gc40.Uarch.Core.r_ipc /. large.Uarch.Core.r_ipc
  in
  (* nettle-aes (frontend-bandwidth-bound) gains much more than nbody
     (execution-bound) — the paper's 56% vs 2% contrast. *)
  check_bool "aes gains much more than nbody" true
    (uplift "nettle-aes" > uplift "nbody" +. 0.2)

let stack_value r cat = List.assoc cat r.Uarch.Core.r_cpi_stack

let test_cpi_stack_signatures () =
  let aes = Workloads.Embench.run ~config:Uarch.Config.large_boom "nettle-aes" in
  (* aes: committing (base) dominates. *)
  let base = stack_value aes Uarch.Core.Base in
  List.iter
    (fun c ->
      if c <> Uarch.Core.Base then
        check_bool "aes is commit-bound" true (base >= stack_value aes c))
    Uarch.Core.categories;
  (* nbody: execution dominates everything except possibly base. *)
  let nbody = Workloads.Embench.run ~config:Uarch.Config.large_boom "nbody" in
  check_bool "nbody is execution-bound" true
    (stack_value nbody Uarch.Core.Execution > stack_value nbody Uarch.Core.Memory
    && stack_value nbody Uarch.Core.Execution > stack_value nbody Uarch.Core.Frontend);
  (* nsichneu: big code footprint shows frontend + branch stalls. *)
  let nsi = Workloads.Embench.run ~config:Uarch.Config.large_boom "nsichneu" in
  check_bool "nsichneu stresses frontend/branch" true
    (stack_value nsi Uarch.Core.Frontend +. stack_value nsi Uarch.Core.Branch
    > stack_value aes Uarch.Core.Frontend +. stack_value aes Uarch.Core.Branch);
  (* matmult: memory stalls visible. *)
  let mat = Workloads.Embench.run ~config:Uarch.Config.large_boom "matmult-int" in
  check_bool "matmult stresses memory" true
    (stack_value mat Uarch.Core.Memory > stack_value aes Uarch.Core.Memory)

(* ------------------------------------------------------------------ *)
(* Workload generator                                                  *)
(* ------------------------------------------------------------------ *)

let test_profiles_generate () =
  List.iter
    (fun name ->
      let trace = Workloads.Embench.generate (Workloads.Embench.find name) in
      check_bool (name ^ " non-empty") true (Array.length trace > 1000))
    Workloads.Embench.all_names

let test_mix_matches_profile () =
  let p = Workloads.Embench.find "nbody" in
  let trace = Workloads.Embench.generate p in
  let n = Array.length trace in
  let count pred = Array.fold_left (fun acc i -> if pred i then acc + 1 else acc) 0 trace in
  let frac pred = float_of_int (count pred) /. float_of_int n in
  check_bool "fp fraction" true
    (Float.abs (frac (fun i -> i.op = Fp) -. p.Workloads.Embench.fp_ratio) < 0.03);
  check_bool "load fraction" true
    (Float.abs (frac (fun i -> i.op = Load) -. p.Workloads.Embench.load_ratio) < 0.03)

let test_generator_deterministic () =
  let p = Workloads.Embench.find "crc32" in
  check_bool "same trace" true (Workloads.Embench.generate p = Workloads.Embench.generate p)

let suite =
  [
    ("uarch.table1", [ Alcotest.test_case "parameters" `Quick test_table1_values ]);
    ( "uarch.core",
      [
        Alcotest.test_case "independent ALU hits width" `Quick test_independent_alu_hits_width;
        Alcotest.test_case "serial chain limits IPC" `Quick test_serial_chain_limits_ipc;
        Alcotest.test_case "fp chain pays latency" `Quick test_serial_fp_chain_slower;
        Alcotest.test_case "mispredicts cost" `Quick test_mispredicts_cost_cycles;
        Alcotest.test_case "dcache misses cost" `Quick test_dcache_misses_cost_cycles;
        Alcotest.test_case "prefetch helps streaming" `Quick test_prefetch_helps_streaming;
        Alcotest.test_case "cpi stack totals" `Quick test_cpi_stack_accounts_for_total;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
      ] );
    ( "uarch.figures",
      [
        Alcotest.test_case "GC40 never slower" `Quick test_gc40_beats_large_everywhere;
        Alcotest.test_case "average uplift" `Quick test_average_uplift_matches_paper;
        Alcotest.test_case "sensitivity spread" `Quick test_benchmark_sensitivity_spread;
        Alcotest.test_case "cpi-stack signatures" `Quick test_cpi_stack_signatures;
      ] );
    ( "workloads.embench",
      [
        Alcotest.test_case "profiles generate" `Quick test_profiles_generate;
        Alcotest.test_case "mix matches profile" `Quick test_mix_matches_profile;
        Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
      ] );
  ]
