(* Robustness and edge-case tests: bad selections, overlapping groups,
   the remove transform, perf-model monotonicity properties, mesh
   routing unit checks and MMIO splitter corner cases. *)

open Firrtl
module FR = Fireripper

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let raises_compile f =
  try
    ignore (f ());
    false
  with
  | FR.Spec.Compile_error _ -> true
  | Ast.Ir_error _ -> true

(* ------------------------------------------------------------------ *)
(* Selection edge cases                                                *)
(* ------------------------------------------------------------------ *)

let test_unknown_instance_rejected () =
  check_bool "unknown path" true
    (raises_compile (fun () ->
         FR.Compile.compile
           ~config:
             {
               FR.Spec.default_config with
               FR.Spec.selection = FR.Spec.Instances [ [ "not_a_tile" ] ];
             }
           (Socgen.Soc.single_core_soc ())))

let test_empty_selection_rejected () =
  check_bool "empty selection" true
    (raises_compile (fun () ->
         FR.Compile.compile
           ~config:{ FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [] }
           (Socgen.Soc.single_core_soc ())))

let test_overlapping_groups_rejected () =
  (* The same instance in two partitions cannot work: the second group
     no longer finds it in the main module. *)
  check_bool "overlap" true
    (raises_compile (fun () ->
         FR.Compile.compile
           ~config:
             {
               FR.Spec.default_config with
               FR.Spec.selection = FR.Spec.Instances [ [ "tile0" ]; [ "tile0" ] ];
             }
           (Socgen.Soc.multi_core_soc ~cores:2 ())))

let test_unknown_router_rejected () =
  check_bool "unknown router index" true
    (raises_compile (fun () ->
         FR.Compile.compile
           ~config:
             { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Noc_routers [ [ 99 ] ] }
           (Socgen.Ring_noc.ring_soc ~n_tiles:3 ())))

let test_selecting_everything_rejected () =
  (* Extracting every instance leaves a base with no state to drive the
     original outputs; grouping must refuse or the result must still
     check.  Either way, no crash. *)
  let circuit = Socgen.Soc.single_core_soc () in
  check_bool "total extraction handled" true
    (try
       let plan =
         FR.Compile.compile
           ~config:
             {
               FR.Spec.default_config with
               FR.Spec.selection = FR.Spec.Instances [ [ "tile"; "mem" ] ];
             }
           circuit
       in
       ignore (FR.Plan.channel_pairs plan);
       true
     with FR.Spec.Compile_error _ | Ast.Ir_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Remove transform                                                    *)
(* ------------------------------------------------------------------ *)

let test_remove_punches_boundary () =
  let rest =
    FR.Compile.remove
      ~config:
        { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "tile" ] ] }
      (Socgen.Soc.single_core_soc ())
  in
  Ast.check_circuit rest;
  let main = Ast.main_module rest in
  (* The tile's request bundle now appears as top-level ports. *)
  let names = List.map (fun (p : Ast.port) -> p.Ast.pname) main.Ast.ports in
  check_bool "boundary ports exposed" true (List.mem "tile#req_valid" names);
  check_bool "no tile instance left" true
    (not (List.mem_assoc "tile" (Hierarchy.instances main)));
  (* The rest is simulable with the boundary tied off. *)
  let b = Builder.create "tb" in
  let r = Builder.inst b "rest" main.Ast.name in
  List.iter
    (fun (p : Ast.port) ->
      if p.Ast.pdir = Ast.Input then
        Builder.connect_in b r p.Ast.pname (Dsl.lit ~width:p.Ast.pwidth 0))
    main.Ast.ports;
  Builder.output b "halted" 1;
  Builder.connect b "halted" (Builder.of_inst r "halted");
  let tb = Builder.finish b in
  let sim =
    Rtlsim.Sim.of_circuit
      { Ast.cname = "tb"; main = "tb"; modules = rest.Ast.modules @ [ tb ] }
  in
  for _ = 1 to 50 do
    Rtlsim.Sim.step sim
  done;
  check_int "rest idles without the tile" 0 (Rtlsim.Sim.get sim "halted")

(* ------------------------------------------------------------------ *)
(* Perf-model monotonicity properties                                  *)
(* ------------------------------------------------------------------ *)

let prop_rate_monotone_in_width =
  QCheck.Test.make ~name:"perf: rate monotone non-increasing in width" ~count:40
    QCheck.(pair (int_range 1 60) (int_range 1 9))
    (fun (w, f) ->
      let bits = w * 100 and freq_mhz = float_of_int (f * 10) in
      let r b =
        Platform.Perf.rate
          (Platform.Perf.two_fpga_spec ~mode:FR.Spec.Fast ~bits:b ~freq_mhz
             ~transport:Platform.Transport.Qsfp)
      in
      r bits >= r (bits + 512) -. 1e-6)

let prop_rate_monotone_in_freq =
  QCheck.Test.make ~name:"perf: rate monotone in bitstream frequency" ~count:40
    QCheck.(pair (int_range 1 20) (int_range 1 8))
    (fun (w, f) ->
      let bits = w * 250 and freq = float_of_int (f * 10) in
      let r fr =
        Platform.Perf.rate
          (Platform.Perf.two_fpga_spec ~mode:FR.Spec.Exact ~bits ~freq_mhz:fr
             ~transport:Platform.Transport.Pcie_p2p)
      in
      r (freq +. 10.) >= r freq -. 1e-6)

let prop_fast_at_least_exact =
  QCheck.Test.make ~name:"perf: fast-mode never slower than exact" ~count:40
    QCheck.(pair (int_range 1 30) (int_range 1 9))
    (fun (w, f) ->
      let bits = w * 200 and freq_mhz = float_of_int (f * 10) in
      let r mode =
        Platform.Perf.rate
          (Platform.Perf.two_fpga_spec ~mode ~bits ~freq_mhz
             ~transport:Platform.Transport.Qsfp)
      in
      r FR.Spec.Fast >= r FR.Spec.Exact -. 1e-6)

(* ------------------------------------------------------------------ *)
(* Mesh routing unit checks                                            *)
(* ------------------------------------------------------------------ *)

let test_mesh_corner_router_ports () =
  (* Corner router (0,0) of a 3x3 mesh has no north/west ports. *)
  let m =
    Socgen.Mesh_noc.router_module ~name:"r" ~x:0 ~y:0 ~width:3 ~height:3 ~payload_width:8 ()
  in
  let names = List.map (fun (p : Ast.port) -> p.Ast.pname) m.Ast.ports in
  check_bool "no north" true (not (List.mem "north_in_valid" names));
  check_bool "no west" true (not (List.mem "west_in_valid" names));
  check_bool "has south" true (List.mem "south_in_valid" names);
  check_bool "has east" true (List.mem "east_in_valid" names);
  check_bool "has local" true (List.mem "local_in_valid" names)

let test_mesh_router_annotation () =
  let m =
    Socgen.Mesh_noc.router_module ~name:"r" ~x:2 ~y:1 ~width:3 ~height:3 ~payload_width:8 ()
  in
  check_bool "router index y*w+x" true
    (List.exists
       (fun a -> match a with Ast.Noc_router { index } -> index = 5 | _ -> false)
       m.Ast.annots)

(* ------------------------------------------------------------------ *)
(* Text-format negative space                                          *)
(* ------------------------------------------------------------------ *)

let test_text_rejects_width_overflow () =
  let src = "circuit c main m:\n  module m:\n    input a : UInt<99>\n    output o : UInt<1>\n    connect o = orr(a)\n" in
  check_bool "width > 62 rejected" true
    (try
       ignore (Text.parse src);
       false
     with Ast.Ir_error _ -> true)

let suite =
  [
    ( "robustness.selection",
      [
        Alcotest.test_case "unknown instance" `Quick test_unknown_instance_rejected;
        Alcotest.test_case "empty selection" `Quick test_empty_selection_rejected;
        Alcotest.test_case "overlapping groups" `Quick test_overlapping_groups_rejected;
        Alcotest.test_case "unknown router" `Quick test_unknown_router_rejected;
        Alcotest.test_case "total extraction" `Quick test_selecting_everything_rejected;
      ] );
    ( "robustness.remove",
      [ Alcotest.test_case "remove punches boundary" `Quick test_remove_punches_boundary ] );
    ( "robustness.perf",
      [
        QCheck_alcotest.to_alcotest prop_rate_monotone_in_width;
        QCheck_alcotest.to_alcotest prop_rate_monotone_in_freq;
        QCheck_alcotest.to_alcotest prop_fast_at_least_exact;
      ] );
    ( "robustness.mesh",
      [
        Alcotest.test_case "corner router ports" `Quick test_mesh_corner_router_ports;
        Alcotest.test_case "router annotation" `Quick test_mesh_router_annotation;
      ] );
    ( "robustness.text",
      [ Alcotest.test_case "width overflow" `Quick test_text_rejects_width_overflow ] );
  ]
