(* Tests for the FIRRTL-like IR: builder, structural checks, flattening,
   combinational analysis and hierarchy surgery. *)

open Firrtl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Example circuits                                                    *)
(* ------------------------------------------------------------------ *)

(* 8-bit counter with enable. *)
let counter_circuit () =
  let b = Builder.create "counter" in
  let en = Builder.input b "en" 1 in
  let c = Builder.reg b "c" 8 in
  Builder.reg_next b ~enable:en "c" Dsl.(c +: lit ~width:8 1);
  Builder.output b "out" 8;
  Builder.connect b "out" c;
  { Ast.cname = "counter"; main = "counter"; modules = [ Builder.finish b ] }

(* leaf: registered adder (out is sequential), plus a combinational
   passthrough [echo = a].  mid wraps leaf; top wraps mid. *)
let leaf_module () =
  let b = Builder.create "leaf" in
  let a = Builder.input b "a" 8 in
  let acc = Builder.reg b "acc" 8 in
  Builder.reg_next b "acc" Dsl.(acc +: a);
  Builder.output b "sum" 8;
  Builder.connect b "sum" acc;
  Builder.output b "echo" 8;
  Builder.connect b "echo" Dsl.(a +: lit ~width:8 1);
  Builder.finish b

let mid_module () =
  let b = Builder.create "mid" in
  let a = Builder.input b "a" 8 in
  let leaf = Builder.inst b "the_leaf" "leaf" in
  Builder.connect_in b leaf "a" a;
  Builder.output b "sum" 8;
  Builder.connect b "sum" (Builder.of_inst leaf "sum");
  Builder.output b "echo" 8;
  Builder.connect b "echo" (Builder.of_inst leaf "echo");
  Builder.finish b

let nested_circuit () =
  let b = Builder.create "top" in
  let a = Builder.input b "a" 8 in
  let mid = Builder.inst b "the_mid" "mid" in
  Builder.connect_in b mid "a" a;
  Builder.output b "sum" 8;
  Builder.connect b "sum" (Builder.of_inst mid "sum");
  Builder.output b "echo" 8;
  Builder.connect b "echo" (Builder.of_inst mid "echo");
  {
    Ast.cname = "nested";
    main = "top";
    modules = [ leaf_module (); mid_module (); Builder.finish b ];
  }

(* Drives the same pseudo-random input sequence into two sims and checks
   the listed outputs agree cycle by cycle. *)
let assert_equivalent ?(cycles = 64) ~inputs ~outputs c1 c2 =
  let s1 = Rtlsim.Sim.of_circuit c1 and s2 = Rtlsim.Sim.of_circuit c2 in
  let rand = ref 12345 in
  let next_rand () =
    rand := (!rand * 1103515245) + 12345;
    (!rand lsr 16) land 0xff
  in
  for cyc = 0 to cycles - 1 do
    List.iter
      (fun (name, width) ->
        let v = next_rand () land Ast.mask width in
        Rtlsim.Sim.set_input s1 name v;
        Rtlsim.Sim.set_input s2 name v)
      inputs;
    Rtlsim.Sim.eval_comb s1;
    Rtlsim.Sim.eval_comb s2;
    List.iter
      (fun out ->
        check_int
          (Printf.sprintf "cycle %d output %s" cyc out)
          (Rtlsim.Sim.get s1 out) (Rtlsim.Sim.get s2 out))
      outputs;
    Rtlsim.Sim.step_seq s1;
    Rtlsim.Sim.step_seq s2
  done

(* ------------------------------------------------------------------ *)
(* Structural checks                                                   *)
(* ------------------------------------------------------------------ *)

let test_check_ok () =
  Ast.check_circuit (counter_circuit ());
  Ast.check_circuit (nested_circuit ())

let test_undriven_output () =
  let b = Builder.create "bad" in
  Builder.output b "out" 4;
  let c = { Ast.cname = "bad"; main = "bad"; modules = [ Builder.finish b ] } in
  Alcotest.check_raises "undriven output" (Ast.Ir_error "module bad: output port out is undriven")
    (fun () -> Ast.check_circuit c)

let test_double_driver () =
  let b = Builder.create "bad2" in
  Builder.output b "out" 4;
  Builder.connect b "out" (Dsl.lit ~width:4 1);
  Builder.connect b "out" (Dsl.lit ~width:4 2);
  let c = { Ast.cname = "bad2"; main = "bad2"; modules = [ Builder.finish b ] } in
  check_bool "raises" true
    (try
       Ast.check_circuit c;
       false
     with Ast.Ir_error _ -> true)

let test_bad_width_literal () =
  check_bool "literal too wide raises" true
    (try
       ignore (Dsl.lit ~width:4 16);
       false
     with Ast.Ir_error _ -> true)

let test_unknown_ref () =
  let b = Builder.create "bad3" in
  Builder.output b "out" 4;
  Builder.connect b "out" (Dsl.ref_ "nonexistent");
  let c = { Ast.cname = "bad3"; main = "bad3"; modules = [ Builder.finish b ] } in
  check_bool "raises" true
    (try
       Ast.check_circuit c;
       false
     with Ast.Ir_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Width inference                                                     *)
(* ------------------------------------------------------------------ *)

let width_env =
  {
    Ast.width_of_name = (fun _ -> 8);
    Ast.width_of_mem = (fun _ -> 16);
  }

let test_widths () =
  let w e = Ast.width_of width_env e in
  check_int "add" 8 (w Dsl.(ref_ "a" +: ref_ "b"));
  check_int "eq" 1 (w Dsl.(ref_ "a" ==: ref_ "b"));
  check_int "cat" 16 (w Dsl.(cat (ref_ "a") (ref_ "b")));
  check_int "bits" 3 (w Dsl.(bits (ref_ "a") ~hi:4 ~lo:2));
  check_int "bit" 1 (w Dsl.(bit (ref_ "a") 7));
  check_int "mux" 8 (w Dsl.(mux (ref_ "c") (ref_ "a") (ref_ "b")));
  check_int "read" 16 (w Dsl.(read "m" (ref_ "a")));
  check_int "orr" 1 (w Dsl.(orr (ref_ "a")));
  check_int "lit" 5 (w (Dsl.lit ~width:5 17))

(* ------------------------------------------------------------------ *)
(* Flattening                                                          *)
(* ------------------------------------------------------------------ *)

let test_flatten_behaviour () =
  let c = nested_circuit () in
  let flat = Flatten.flatten c in
  check_bool "no instances left" true
    (List.for_all
       (fun comp -> match comp with Ast.Inst _ -> false | _ -> true)
       flat.Ast.comps);
  let s = Rtlsim.Sim.create flat in
  Rtlsim.Sim.set_input s "a" 3;
  Rtlsim.Sim.eval_comb s;
  check_int "echo is comb" 4 (Rtlsim.Sim.get s "echo");
  check_int "sum initially 0" 0 (Rtlsim.Sim.get s "sum");
  Rtlsim.Sim.step_seq s;
  Rtlsim.Sim.eval_comb s;
  check_int "sum after one step" 3 (Rtlsim.Sim.get s "sum")

let test_flat_names () =
  let c = nested_circuit () in
  let flat = Flatten.flatten c in
  let names =
    List.filter_map
      (fun comp ->
        match comp with
        | Ast.Reg { name; _ } -> Some name
        | _ -> None)
      flat.Ast.comps
  in
  check_bool "nested register path" true (List.mem "the_mid$the_leaf$acc" names)

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let test_source_sink_classification () =
  let c = nested_circuit () in
  let t = Analysis.build (Flatten.flatten c) in
  let deps = Analysis.output_port_deps t in
  check_bool "sum is a source port" true (List.assoc "sum" deps = []);
  check_bool "echo is a sink port" true (List.assoc "echo" deps = [ "a" ])

let test_comb_cycle_detected () =
  let b = Builder.create "loop" in
  let x = Builder.wire b "x" 4 in
  let y = Builder.wire b "y" 4 in
  Builder.connect b "x" Dsl.(y +: lit ~width:4 1);
  Builder.connect b "y" Dsl.(x +: lit ~width:4 1);
  Builder.output b "out" 4;
  Builder.connect b "out" x;
  let m = Builder.finish b in
  check_bool "comb cycle raises" true
    (try
       ignore (Analysis.build m);
       false
     with Analysis.Comb_cycle _ -> true)

let test_cone () =
  let c = nested_circuit () in
  let t = Analysis.build (Flatten.flatten c) in
  let cone = Analysis.cone t [ "sum" ] in
  (* sum's cone must not include echo's adder chain. *)
  check_bool "cone excludes echo" true (not (List.mem "echo" cone));
  check_bool "cone includes sum" true (List.mem "sum" cone)

(* ------------------------------------------------------------------ *)
(* Hierarchy surgery                                                   *)
(* ------------------------------------------------------------------ *)

let test_promote_preserves_behaviour () =
  let c = nested_circuit () in
  let c', top_name = Hierarchy.promote_path c [ "the_mid"; "the_leaf" ] in
  Ast.check_circuit c';
  check_bool "leaf now a direct child of main" true
    (List.mem_assoc top_name (Hierarchy.instances (Ast.main_module c')));
  assert_equivalent ~inputs:[ ("a", 8) ] ~outputs:[ "sum"; "echo" ] c c'

let test_promote_requires_unique_path () =
  (* Two mids sharing the leaf module: promotion must refuse. *)
  let b = Builder.create "top" in
  let a = Builder.input b "a" 8 in
  let m1 = Builder.inst b "mid1" "mid" in
  let m2 = Builder.inst b "mid2" "mid" in
  Builder.connect_in b m1 "a" a;
  Builder.connect_in b m2 "a" a;
  Builder.output b "sum" 8;
  Builder.connect b "sum" Dsl.(Builder.of_inst m1 "sum" +: Builder.of_inst m2 "sum");
  Builder.output b "echo" 8;
  Builder.connect b "echo" (Builder.of_inst m1 "echo");
  let c =
    {
      Ast.cname = "dup";
      main = "top";
      modules = [ leaf_module (); mid_module (); Builder.finish b ];
    }
  in
  check_bool "non-unique path refused" true
    (try
       ignore (Hierarchy.promote_path c [ "mid1"; "the_leaf" ]);
       false
     with Ast.Ir_error _ -> true)

let test_group_split_recombine () =
  let c = nested_circuit () in
  let c', inst = Hierarchy.promote_path c [ "the_mid"; "the_leaf" ] in
  let grouped = Hierarchy.group_in_main c' ~insts:[ inst ] ~wrapper:"part0" in
  Ast.check_circuit grouped.Hierarchy.g_circuit;
  let split =
    Hierarchy.split_at_wrapper grouped.Hierarchy.g_circuit
      ~wrapper_inst:grouped.Hierarchy.g_wrapper_inst
  in
  Ast.check_circuit split.Hierarchy.sp_partition;
  Ast.check_circuit split.Hierarchy.sp_rest;
  check_bool "boundary is non-empty" true (split.Hierarchy.sp_boundary <> []);
  let recombined = Hierarchy.recombine split in
  Ast.check_circuit recombined;
  assert_equivalent ~inputs:[ ("a", 8) ] ~outputs:[ "sum"; "echo" ] c recombined

let test_group_boundary_width () =
  let b = Builder.create "chain" in
  let a = Builder.input b "a" 8 in
  let l1 = Builder.inst b "l1" "leaf" in
  let l2 = Builder.inst b "l2" "leaf" in
  Builder.connect_in b l1 "a" a;
  Builder.connect_in b l2 "a" (Builder.of_inst l1 "sum");
  Builder.output b "sum" 8;
  Builder.connect b "sum" (Builder.of_inst l2 "sum");
  let c =
    { Ast.cname = "chain"; main = "chain"; modules = [ leaf_module (); Builder.finish b ] }
  in
  let grouped = Hierarchy.group_in_main c ~insts:[ "l1"; "l2" ] ~wrapper:"w" in
  let w = Ast.find_module grouped.Hierarchy.g_circuit "w" in
  (* Boundary: l1.a in; l2.sum out.  The l1.sum -> l2.a edge is internal;
     l1/l2 echo outputs are unused hence unexported. *)
  let names = List.map (fun (p : Ast.port) -> p.Ast.pname) w.Ast.ports in
  check_bool "l1$a punched in" true (List.mem "l1#a" names);
  check_bool "l2$sum punched out" true (List.mem "l2#sum" names);
  check_bool "internal edge not punched" true (not (List.mem "l1#sum" names));
  check_bool "unused echo not punched" true (not (List.mem "l1#echo" names));
  let split = Hierarchy.split_at_wrapper grouped.Hierarchy.g_circuit ~wrapper_inst:"w" in
  assert_equivalent ~inputs:[ ("a", 8) ] ~outputs:[ "sum" ]
    c (Hierarchy.recombine split)

let test_instance_adjacency () =
  let b = Builder.create "ringtop" in
  let a = Builder.input b "a" 8 in
  let l1 = Builder.inst b "l1" "leaf" in
  let l2 = Builder.inst b "l2" "leaf" in
  let l3 = Builder.inst b "l3" "leaf" in
  (* l1 -> wire -> l2 -> l3, l3 output unused except port *)
  let w = Builder.wire b "mid_wire" 8 in
  Builder.connect_in b l1 "a" a;
  Builder.connect b "mid_wire" (Builder.of_inst l1 "sum");
  Builder.connect_in b l2 "a" w;
  Builder.connect_in b l3 "a" (Builder.of_inst l2 "sum");
  Builder.output b "out" 8;
  Builder.connect b "out" (Builder.of_inst l3 "sum");
  let top = Builder.finish b in
  let adj = Hierarchy.instance_adjacency top in
  let neighbours n = Option.value ~default:[] (Hashtbl.find_opt adj n) |> List.sort compare in
  Alcotest.(check (list string)) "l2 adj" [ "l1"; "l3" ] (neighbours "l2");
  Alcotest.(check (list string)) "l1 adj through wire" [ "l2" ] (neighbours "l1")

let test_instantiation_counts () =
  let c = nested_circuit () in
  let counts = Hierarchy.instantiation_counts c in
  check_int "leaf count" 1 (Option.value ~default:0 (Hashtbl.find_opt counts "leaf"));
  check_int "mid count" 1 (Option.value ~default:0 (Hashtbl.find_opt counts "mid"))

(* ------------------------------------------------------------------ *)
(* Property: expression evaluation matches a reference interpreter     *)
(* ------------------------------------------------------------------ *)

(* Independent reference interpreter mirroring the documented width
   semantics; differential-tested against the compiled simulator. *)
let rec ref_eval env e =
  let module A = Ast in
  match e with
  | A.Lit { value; width } -> (value, width)
  | A.Ref n -> List.assoc n env
  | A.Mux (c, a, b) ->
    let vc, _ = ref_eval env c in
    let va, wa = ref_eval env a and vb, wb = ref_eval env b in
    ((if vc <> 0 then va else vb), max wa wb)
  | A.Binop (op, a, b) ->
    let va, wa = ref_eval env a and vb, wb = ref_eval env b in
    let w = max wa wb in
    let m = A.mask w in
    (match op with
    | Add -> ((va + vb) land m, w)
    | Sub -> ((va - vb) land m, w)
    | Mul -> (va * vb land m, w)
    | Div -> ((if vb = 0 then 0 else va / vb), w)
    | Rem -> ((if vb = 0 then 0 else va mod vb), w)
    | And -> (va land vb, w)
    | Or -> (va lor vb, w)
    | Xor -> (va lxor vb, w)
    | Shl -> ((if vb > A.max_width then 0 else (va lsl vb) land A.mask wa), wa)
    | Shr -> ((if vb > A.max_width then 0 else va lsr vb), wa)
    | Eq -> ((if va = vb then 1 else 0), 1)
    | Neq -> ((if va <> vb then 1 else 0), 1)
    | Lt -> ((if va < vb then 1 else 0), 1)
    | Le -> ((if va <= vb then 1 else 0), 1)
    | Gt -> ((if va > vb then 1 else 0), 1)
    | Ge -> ((if va >= vb then 1 else 0), 1))
  | A.Unop (op, a) ->
    let va, wa = ref_eval env a in
    let m = A.mask wa in
    (match op with
    | Not -> (lnot va land m, wa)
    | Neg -> (-va land m, wa)
    | Andr -> ((if va = m then 1 else 0), 1)
    | Orr -> ((if va <> 0 then 1 else 0), 1)
    | Xorr ->
      let rec parity acc v = if v = 0 then acc else parity (acc lxor (v land 1)) (v lsr 1) in
      (parity 0 va, 1))
  | A.Bits { e; hi; lo } ->
    let v, _ = ref_eval env e in
    ((v lsr lo) land A.mask (hi - lo + 1), hi - lo + 1)
  | A.Cat (a, b) ->
    let va, wa = ref_eval env a and vb, wb = ref_eval env b in
    ((va lsl wb) lor vb, wa + wb)
  | A.Read _ -> failwith "no memories in property exprs"

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun v -> Ast.Lit { value = v land 0xff; width = 8 }) (int_bound 255);
        return (Ast.Ref "x");
        return (Ast.Ref "y");
      ]
  in
  fix
    (fun self n ->
      if n = 0 then leaf
      else
        let sub = self (n / 2) in
        oneof
          [
            leaf;
            map2 (fun a b -> Ast.Binop (Add, a, b)) sub sub;
            map2 (fun a b -> Ast.Binop (Sub, a, b)) sub sub;
            map2 (fun a b -> Ast.Binop (And, a, b)) sub sub;
            map2 (fun a b -> Ast.Binop (Or, a, b)) sub sub;
            map2 (fun a b -> Ast.Binop (Xor, a, b)) sub sub;
            map2 (fun a b -> Ast.Binop (Mul, a, b)) sub sub;
            map2 (fun a b -> Ast.Binop (Eq, a, b)) sub sub;
            map2 (fun a b -> Ast.Binop (Lt, a, b)) sub sub;
            map3 (fun c a b -> Ast.Mux (c, a, b)) sub sub sub;
            map (fun a -> Ast.Unop (Not, a)) sub;
            map (fun a -> Ast.Unop (Orr, a)) sub;
            map
              (fun a ->
                Ast.Bits { e = Ast.Binop (Add, a, Ast.Lit { value = 0; width = 8 }); hi = 5; lo = 1 })
              sub;
          ])
    4

let prop_sim_matches_reference =
  QCheck.Test.make ~name:"compiled sim matches reference interpreter" ~count:200
    (QCheck.make gen_expr)
    (fun e ->
      let b = Builder.create "prop" in
      let _ = Builder.input b "x" 8 in
      let _ = Builder.input b "y" 8 in
      let env0 = { Ast.width_of_name = (fun _ -> 8); width_of_mem = (fun _ -> 8) } in
      let w = Ast.width_of env0 e in
      if w > Ast.max_width then true
      else begin
        Builder.output b "out" w;
        Builder.connect b "out" e;
        let m = Builder.finish b in
        let s = Rtlsim.Sim.create m in
        List.for_all
          (fun (x, y) ->
            Rtlsim.Sim.set_input s "x" x;
            Rtlsim.Sim.set_input s "y" y;
            Rtlsim.Sim.eval_comb s;
            let expected, _ = ref_eval [ ("x", (x, 8)); ("y", (y, 8)) ] e in
            Rtlsim.Sim.get s "out" = expected land Ast.mask w)
          [ (0, 0); (1, 255); (170, 85); (255, 255); (37, 142) ]
      end)

let suite =
  [
    ( "firrtl.check",
      [
        Alcotest.test_case "valid circuits pass" `Quick test_check_ok;
        Alcotest.test_case "undriven output" `Quick test_undriven_output;
        Alcotest.test_case "double driver" `Quick test_double_driver;
        Alcotest.test_case "bad literal" `Quick test_bad_width_literal;
        Alcotest.test_case "unknown ref" `Quick test_unknown_ref;
      ] );
    ("firrtl.widths", [ Alcotest.test_case "width inference" `Quick test_widths ]);
    ( "firrtl.flatten",
      [
        Alcotest.test_case "behaviour" `Quick test_flatten_behaviour;
        Alcotest.test_case "flat names" `Quick test_flat_names;
      ] );
    ( "firrtl.analysis",
      [
        Alcotest.test_case "source/sink ports" `Quick test_source_sink_classification;
        Alcotest.test_case "comb cycle" `Quick test_comb_cycle_detected;
        Alcotest.test_case "cone" `Quick test_cone;
      ] );
    ( "firrtl.hierarchy",
      [
        Alcotest.test_case "promote preserves behaviour" `Quick test_promote_preserves_behaviour;
        Alcotest.test_case "promote needs unique path" `Quick test_promote_requires_unique_path;
        Alcotest.test_case "group/split/recombine" `Quick test_group_split_recombine;
        Alcotest.test_case "boundary minimality" `Quick test_group_boundary_width;
        Alcotest.test_case "instance adjacency" `Quick test_instance_adjacency;
        Alcotest.test_case "instantiation counts" `Quick test_instantiation_counts;
      ] );
    ( "firrtl.properties",
      [ QCheck_alcotest.to_alcotest prop_sim_matches_reference ] );
  ]
