bin/fireaxe_cli.ml: Arg Cmd Cmdliner Filename Fireaxe Fireripper Firrtl Fmt Fun Libdn List Platform Printf Rtlsim Socgen String Sys Term
