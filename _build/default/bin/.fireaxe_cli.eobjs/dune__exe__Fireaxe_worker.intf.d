bin/fireaxe_worker.mli:
