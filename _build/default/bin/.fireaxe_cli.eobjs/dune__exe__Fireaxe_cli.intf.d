bin/fireaxe_cli.mli:
