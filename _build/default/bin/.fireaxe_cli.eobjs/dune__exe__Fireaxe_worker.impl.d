bin/fireaxe_worker.ml: Array Firrtl Hashtbl Libdn List Printf Rtlsim String Sys
