(* The Fig. 6 case study, scaled to run in seconds: a 24-tile ring-NoC
   SoC partitioned across five FPGAs with NoC-partition-mode.  The user
   names router indices; FireRipper walks the circuit, absorbs each
   router's protocol converter and tile, and cuts the ring links so
   neighbouring FPGAs exchange tokens directly.

   Run with: dune exec examples/noc_ring24.exe *)

let () =
  let n_tiles = 24 in
  let circuit () = Socgen.Ring_noc.ring_soc ~n_tiles ~period:6 () in
  let groups = List.init 4 (fun g -> List.init 6 (fun i -> (g * 6) + i)) in
  let config =
    {
      Fireaxe.Spec.default_config with
      Fireaxe.Spec.selection = Fireaxe.Spec.Noc_routers groups;
    }
  in
  Printf.printf "compiling the 24-tile ring SoC across %d+1 FPGAs...\n" (List.length groups);
  let plan = Fireaxe.compile ~config (circuit ()) in
  print_string (Fireaxe.Report.to_string (Fireaxe.report plan));
  let cycles = 3_000 in
  let mono = Rtlsim.Sim.of_circuit (circuit ()) in
  for _ = 1 to cycles do
    Rtlsim.Sim.step mono
  done;
  let h = Fireaxe.instantiate plan in
  Fireaxe.Runtime.run h ~cycles;
  let ok = ref true in
  for i = 0 to n_tiles - 1 do
    let reg = Printf.sprintf "ttile%d$checksum_r" i in
    let u = Fireaxe.Runtime.locate h reg in
    if Rtlsim.Sim.get mono reg <> Rtlsim.Sim.get (Fireaxe.Runtime.sim_of h u) reg then begin
      ok := false;
      Printf.printf "  tile %d checksum mismatch!\n" i
    end
  done;
  Printf.printf "\n%d cycles simulated on 5 partitions: %s\n" cycles
    (if !ok then "all 24 tile checksums match the monolithic run" else "MISMATCH");
  Printf.printf "token transfers: %d\n" (Fireaxe.Runtime.token_transfers h);
  (* Host-platform estimate with FAME-5-threaded tiles, as in the paper. *)
  let spec =
    Platform.Perf.of_plan
      ~freq_mhz:(fun u -> if u = 0 then 30. else 15.)
      ~threads:(fun u -> if u = 0 then 1 else 6)
      ~transport:(fun ~src:_ ~dst:_ -> Platform.Transport.Qsfp)
      plan
  in
  Printf.printf "modeled FireAxe rate: %.2f MHz (paper: 0.58 MHz)\n"
    (Platform.Perf.rate spec /. 1e6)
