(* The §V-D study: latency spikes induced by Go's garbage collector on a
   multi-core SoC.  A main goroutine is woken every 10 µs; we measure
   the tail of its wakeup-to-completion latency while varying
   GOMAXPROCS and the CPU affinity mask — reproducing both the obvious
   effect (one OS thread serializes GC work with the application) and
   the paper's surprising one (pinning all threads to ONE core beats
   spreading them, because cache affinity outweighs parallelism for
   this workload).

   Run with: dune exec examples/gc_latency.exe *)

let () =
  Printf.printf "Go GC tick latency on the simulated 4-core SoC (10us tick):\n\n";
  Printf.printf "%-24s %10s %10s %10s\n" "configuration" "p95 (us)" "p99 (us)" "max (us)";
  List.iter
    (fun cfg ->
      let r = Golang.Model.run cfg in
      Printf.printf "%-24s %10.1f %10.1f %10.1f\n" (Golang.Model.label cfg)
        r.Golang.Model.p95_us r.Golang.Model.p99_us r.Golang.Model.max_us)
    Golang.Model.figure10_configs;
  print_newline ();
  print_endline "observations (cf. paper Fig. 10):";
  print_endline "  - GOMAXPROCS=1: the GC's mark phase shares the application's only OS";
  print_endline "    thread, so ticks queue behind cooperative-preemption chunks -> huge p99.";
  print_endline "  - pinning beats spreading: on one core the kernel preempts the GC thread";
  print_endline "    and caches stay warm; across cores the mark phase bounces heap lines.";
  let same, cross = Golang.Model.numa_experiment () in
  Printf.printf
    "\nXeon corroboration (GOMAXPROCS=2): p99 %.0f us same-NUMA vs %.0f us cross-NUMA\n"
    same cross;
  print_endline "(the paper measures 28 ms vs 42 ms at server scale — same direction)"
