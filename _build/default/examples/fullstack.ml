(* Full-stack composition: every layer of the repo in one run.

   A 5-stage pipelined Kite core sits in front of the FASED-style DRAM
   timing model; FireRipper cuts the SoC at the core/memory boundary
   (exact mode); the run is profiled out of band with the AutoCounter
   bridge and the TracerV commit-PC bridge, snapshotted to disk halfway,
   and resumed in a fresh handle — which finishes with a state identical
   to the uninterrupted run.

   Run with: dune exec examples/fullstack.exe *)

module FR = Fireaxe

let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:8 ~reps:8 ~dst:60
let data = List.init 8 (fun i -> (32 + i, (i * 3) + 1))

let fresh () =
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "core" ] ] }
  in
  FR.instantiate (FR.compile ~config (Socgen.Kite5_core.dram_soc ()))

let load h =
  let iu = FR.Runtime.locate h "core$imem" in
  let mu = FR.Runtime.locate h "mem$mem" in
  List.iteri
    (fun i w -> Rtlsim.Sim.poke_mem (FR.Runtime.sim_of h iu) "core$imem" i w)
    (Socgen.Kite_isa.assemble program);
  List.iter (fun (a, v) -> Rtlsim.Sim.poke_mem (FR.Runtime.sim_of h mu) "mem$mem" a v) data

let () =
  let h = fresh () in
  load h;

  (* AutoCounter profile of the first 600 cycles: IPC and DRAM row
     behaviour, sampled without touching the token network. *)
  let samples =
    FR.Counters.collect h
      ~signals:[ "core$retired_count"; "mem$hits_r"; "mem$misses_r" ]
      ~every:150 ~cycles:600
  in
  print_string (FR.Counters.to_csv samples);

  (* Snapshot to disk, then resume in a brand-new handle. *)
  let path = Filename.temp_file "fireaxe_fullstack" ".snap" in
  FR.Runtime.save h ~path;
  Printf.printf "\nsnapshot at cycle 600 -> %s\n" path;
  let h2 = fresh () in
  FR.Runtime.load h2 ~path;
  Sys.remove path;

  (* Finish both runs; trace the resumed one with TracerV. *)
  let halt_pred h =
    let u = FR.Runtime.locate h "core$halted_r" in
    Rtlsim.Sim.get (FR.Runtime.sim_of h u) "core$halted_r" = 1
  in
  let c1 = FR.Runtime.run_until h ~max_cycles:20_000 halt_pred in
  let events =
    FR.Tracer.of_handle h2 ~pc:"core$mw_pc" ~retired:"core$retired_count" ~cycles:(c1 - 600)
  in
  Printf.printf "resumed run committed %d more instructions\n" (List.length events);
  let c2 = FR.Runtime.run_until h2 ~max_cycles:20_000 halt_pred in
  Printf.printf "original halted at %d, resumed at %d\n" c1 c2;
  assert (c1 = c2);

  (* Identical final state. *)
  List.iter
    (fun reg ->
      let u1 = FR.Runtime.locate h reg and u2 = FR.Runtime.locate h2 reg in
      assert (
        Rtlsim.Sim.get (FR.Runtime.sim_of h u1) reg
        = Rtlsim.Sim.get (FR.Runtime.sim_of h2 u2) reg))
    [ "core$retired_count"; "core$pc"; "mem$hits_r"; "mem$misses_r" ];
  let mu = FR.Runtime.locate h "mem$mem" in
  Printf.printf "result mem[60] = %d\n"
    (Rtlsim.Sim.peek_mem (FR.Runtime.sim_of h mu) "mem$mem" 60);
  print_endline "snapshot-resumed run identical to uninterrupted run: OK"
