(* Multi-clock partitioning with AutoCounter-style profiling.

   A dual-domain SoC in the FireSim style: a Kite core tile runs at the
   full base clock while a telemetry peripheral sits in a quarter-rate
   clock domain (modeled with synchronous enable gating, so ordinary
   exact-mode partitioning applies).  FireRipper cuts the design exactly
   at the clock-domain crossing — tile on one FPGA, slow peripheral on
   the other — and the host samples performance counters from the
   running partitioned simulation every 200 target cycles, the way
   FireSim's AutoCounter bridge does.

   Run with: dune exec examples/multiclock.exe *)

open Firrtl
module FR = Fireaxe

(* A slow-domain telemetry block: accumulates the number of retired
   instructions it observes and counts its own (slow) cycles. *)
let telemetry () =
  let b = Builder.create "telemetry" in
  let open Dsl in
  let retired = Builder.input b "retired" 16 in
  let ticks = Builder.reg b "ticks" 16 in
  Builder.reg_next b "ticks" (ticks +: lit ~width:16 1);
  let seen = Builder.reg b "seen" 16 in
  Builder.reg_next b "seen" retired;
  Builder.output b "ticks_out" 16;
  Builder.connect b "ticks_out" ticks;
  Builder.output b "seen_out" 16;
  Builder.connect b "seen_out" seen;
  Builder.finish b

(* The dual-domain SoC: single-core Kite SoC plus the gated telemetry
   block watching the core's retired-instruction counter. *)
let design ~div () =
  let soc = Socgen.Soc.single_core_soc ~mem_latency:1 () in
  let slow = FR.Clockdiv.gate ~div (telemetry ()) in
  let main = Ast.main_module soc in
  let b = Builder.create "dualclock" in
  (* Re-instantiate the SoC top's contents unchanged under a new top
     that also hosts the telemetry domain. *)
  let soc_inst = Builder.inst b "soc" main.Ast.name in
  let tel = Builder.inst b "tel" "telemetry" in
  Builder.connect_in b tel "retired" (Builder.of_inst soc_inst "retired");
  Builder.output b "ticks" 16;
  Builder.connect b "ticks" (Builder.of_inst tel "ticks_out");
  Builder.output b "seen" 16;
  Builder.connect b "seen" (Builder.of_inst tel "seen_out");
  Builder.output b "retired" 16;
  Builder.connect b "retired" (Builder.of_inst soc_inst "retired");
  {
    Ast.cname = "dualclock";
    main = "dualclock";
    modules = soc.Ast.modules @ [ slow; Builder.finish b ];
  }

let () =
  let div = 4 in
  let circuit = design ~div () in
  Ast.check_circuit circuit;

  (* Cut at the clock-domain crossing: the slow telemetry block gets
     its own unit. *)
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Instances [ [ "tel" ] ];
    }
  in
  let plan = FR.compile ~config circuit in
  Format.printf "%a@." FR.Report.pp (FR.report plan);

  let h = FR.instantiate plan in
  let mem_unit = FR.Runtime.locate h "soc$mem$mem" in
  Socgen.Soc.load_program
    (FR.Runtime.sim_of h mem_unit)
    ~mem:"soc$mem$mem" ~data:[]
    (Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:8 ~reps:24 ~dst:60);

  (* AutoCounter: sample the fast-domain core counter and the slow
     domain's own tick counter every 200 target cycles. *)
  let samples =
    FR.Counters.collect h
      ~signals:[ "soc$tile$core$retired_count"; "tel$ticks" ]
      ~every:200 ~cycles:1600
  in
  print_string (FR.Counters.to_csv samples);

  (* The slow domain advanced exactly 1/div as many cycles. *)
  let last = List.nth samples (List.length samples - 1) in
  let ticks = List.assoc "tel$ticks" last.FR.Counters.s_values in
  Printf.printf "\nslow-domain ticks after 1600 base cycles at div %d: %d\n" div ticks;
  assert (ticks = 1600 / div);

  (* And the partition is still cycle-exact against the monolithic
     dual-clock design. *)
  let mono = Rtlsim.Sim.of_circuit (design ~div ()) in
  Socgen.Soc.load_program mono ~mem:"soc$mem$mem" ~data:[]
    (Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:8 ~reps:24 ~dst:60);
  for _ = 1 to 1600 do
    Rtlsim.Sim.step mono
  done;
  List.iter
    (fun reg ->
      let u = FR.Runtime.locate h reg in
      assert (Rtlsim.Sim.get mono reg = Rtlsim.Sim.get (FR.Runtime.sim_of h u) reg))
    [ "soc$tile$core$retired_count"; "tel$ticks"; "tel$seen" ];
  print_endline "multiclock partition cycle-exact: OK"
