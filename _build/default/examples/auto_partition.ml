(* Automated partitioning (§VIII-B future work, implemented here):
   FireRipper sizes every top-level instance of a 6-core SoC with the
   RTL-level resource estimator, weighs inter-instance connectivity by
   wire width, and packs the instances onto three FPGAs — then we check
   the resulting plan still simulates cycle-exactly, and checkpoint the
   partitioned run midway to demonstrate deterministic re-execution.

   Run with: dune exec examples/auto_partition.exe *)

let () =
  let circuit () = Socgen.Soc.multi_core_soc ~cores:6 ~mem_latency:1 () in
  let plan, assignment = Fireaxe.auto_partition ~n_fpgas:3 (circuit ()) in
  Fmt.pr "automatic assignment of the 6-core SoC onto 3 FPGAs:@.%a@."
    Fireripper.Auto.pp_assignment assignment;
  print_string (Fireaxe.Report.to_string (Fireaxe.report plan));
  (* Run it and compare against the monolithic simulation. *)
  let program = Socgen.Kite_isa.fib_program ~n:16 ~dst:60 in
  let mono = Rtlsim.Sim.of_circuit (circuit ()) in
  Socgen.Soc.load_program mono ~mem:"mem$mem" ~data:[] program;
  for _ = 1 to 3000 do
    Rtlsim.Sim.step mono
  done;
  let h = Fireaxe.instantiate plan in
  let u = Fireaxe.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (Fireaxe.Runtime.sim_of h u) ~mem:"mem$mem" ~data:[] program;
  Fireaxe.Runtime.run h ~cycles:1500;
  (* Checkpoint halfway, then continue to the end twice. *)
  let restore = Fireaxe.Runtime.checkpoint h in
  Fireaxe.Runtime.run h ~cycles:3000;
  let read reg =
    let u = Fireaxe.Runtime.locate h reg in
    Rtlsim.Sim.get (Fireaxe.Runtime.sim_of h u) reg
  in
  let first = List.init 6 (fun i -> read (Printf.sprintf "tile%d$core$retired_count" i)) in
  restore ();
  Fireaxe.Runtime.run h ~cycles:3000;
  let second = List.init 6 (fun i -> read (Printf.sprintf "tile%d$core$retired_count" i)) in
  let mono_counts =
    List.init 6 (fun i -> Rtlsim.Sim.get mono (Printf.sprintf "tile%d$core$retired_count" i))
  in
  Printf.printf "\nretired instructions after 3000 cycles (per core):\n";
  Printf.printf "  monolithic           : %s\n"
    (String.concat " " (List.map string_of_int mono_counts));
  Printf.printf "  auto-partitioned     : %s\n"
    (String.concat " " (List.map string_of_int first));
  Printf.printf "  replay from checkpoint : %s\n"
    (String.concat " " (List.map string_of_int second));
  Printf.printf "cycle-exact: %b; checkpoint replay identical: %b\n"
    (first = mono_counts) (first = second)
