(* The §V-B case study as a runnable example: a Golden-Cove-sized core
   whose backend does not fit on one FPGA next to its frontend.
   FireRipper cuts it at the frontend/backend boundary in exact-mode;
   the partition interface carries whole fetch bundles plus the branch
   resolution bus — over 7000 bits.

   This example uses the fast [tiny] configuration for the functional
   check (so it runs in a second) and the full [gc40ish] sizing for the
   resource story.

   Run with: dune exec examples/split_core.exe *)

let () =
  (* Resource story at full size. *)
  let full = Socgen.Bigcore.circuit () in
  let whole = Platform.Resource.estimate_circuit full in
  Printf.printf "GC40-class core, monolithic: %s\n" (Fmt.str "%a" Platform.Resource.pp whole);
  Printf.printf "  fits a U250: %b (the paper's monolithic bitstream build fails)\n"
    (Platform.Fpga.fits Platform.Fpga.u250 whole);
  let config =
    {
      Fireaxe.Spec.default_config with
      Fireaxe.Spec.selection = Fireaxe.Spec.Instances [ [ "backend" ] ];
    }
  in
  let plan = Fireaxe.compile ~config full in
  Printf.printf "  split at the frontend/backend boundary: %d bits of interface\n"
    (Fireaxe.Plan.total_boundary_width plan);
  List.iter
    (fun (name, _, util, fits) ->
      Printf.printf "  %-16s %s -> fits: %b\n" name
        (Fmt.str "%a" Platform.Fpga.pp_utilization util)
        fits)
    (Fireaxe.utilization plan);
  Printf.printf "  modeled rate at 10 MHz bitstreams: %.2f MHz (paper: 0.2 MHz)\n"
    (Fireaxe.estimate_rate ~freq_mhz:10. plan /. 1e6);
  (* Functional story at the tiny size: partitioned == monolithic, both
     through the token scheduler and as generated LI-BDN hardware. *)
  let tiny () = Socgen.Bigcore.circuit ~p:Socgen.Bigcore.tiny () in
  let cycles = 1_000 in
  let mono = Rtlsim.Sim.of_circuit (tiny ()) in
  for _ = 1 to cycles do
    Rtlsim.Sim.step mono
  done;
  let tplan = Fireaxe.compile ~config (tiny ()) in
  let h = Fireaxe.instantiate tplan in
  Fireaxe.Runtime.run h ~cycles;
  let sched_ok =
    let u = Fireaxe.Runtime.locate h "backend$checksum_r" in
    Rtlsim.Sim.get mono "backend$checksum_r"
    = Rtlsim.Sim.get (Fireaxe.Runtime.sim_of h u) "backend$checksum_r"
  in
  let hw = Fireripper.Hw.run ~latency:3 ~target_cycles:cycles tplan ~setup:(fun _ -> ()) in
  let hw_ok =
    Rtlsim.Sim.get hw.Fireripper.Hw.hr_sim (Fireripper.Hw.host_signal ~unit:1 "backend$checksum_r")
    = Rtlsim.Sim.get mono "backend$checksum_r"
  in
  Printf.printf
    "\nfunctional check (%d cycles, tiny config): scheduler cycle-exact %b; generated \
     hardware cycle-exact %b (FMR %.1f at link latency 3)\n"
    cycles sched_ok hw_ok
    (float_of_int hw.Fireripper.Hw.hr_host_cycles /. float_of_int cycles)
