(* Quickstart: build a tiny two-module design with the circuit builder,
   let FireRipper pull one module onto its own (simulated) FPGA, and
   check the partitioned simulation is cycle-exact against the
   monolithic one.

   Run with: dune exec examples/quickstart.exe *)

open Firrtl

(* A producer that emits a square wave and a running count... *)
let producer () =
  let b = Builder.create "producer" in
  let open Dsl in
  let count = Builder.reg b "count" 16 in
  Builder.reg_next b "count" (count +: lit ~width:16 1);
  Builder.output b "value" 16;
  Builder.connect b "value" count;
  Builder.finish b

(* ...and a consumer that integrates it. *)
let consumer () =
  let b = Builder.create "consumer" in
  let open Dsl in
  let value = Builder.input b "value" 16 in
  let acc = Builder.reg b "acc" 32 in
  Builder.reg_next b "acc" (acc +: value);
  Builder.output b "total" 32;
  Builder.connect b "total" acc;
  Builder.finish b

let design () =
  let b = Builder.create "top" in
  let p = Builder.inst b "producer" "producer" in
  let c = Builder.inst b "consumer" "consumer" in
  Builder.connect_in b c "value" (Builder.of_inst p "value");
  Builder.output b "total" 32;
  Builder.connect b "total" (Builder.of_inst c "total");
  { Ast.cname = "quickstart"; main = "top"; modules = [ producer (); consumer (); Builder.finish b ] }

let () =
  (* 1. Compile: pull the consumer onto its own partition, exact-mode. *)
  let config =
    {
      Fireaxe.Spec.default_config with
      Fireaxe.Spec.selection = Fireaxe.Spec.Instances [ [ "consumer" ] ];
    }
  in
  let plan = Fireaxe.compile ~config (design ()) in
  print_string (Fireaxe.Report.to_string (Fireaxe.report plan));
  (* 2. Run both simulations for 100 cycles. *)
  let mono = Rtlsim.Sim.of_circuit (design ()) in
  for _ = 1 to 100 do
    Rtlsim.Sim.step mono
  done;
  let h = Fireaxe.instantiate plan in
  Fireaxe.Runtime.run h ~cycles:100;
  let unit_of = Fireaxe.Runtime.locate h "consumer$acc" in
  let part_total = Rtlsim.Sim.get (Fireaxe.Runtime.sim_of h unit_of) "consumer$acc" in
  Printf.printf "\nafter 100 cycles: monolithic total = %d, partitioned total = %d -> %s\n"
    (Rtlsim.Sim.get mono "consumer$acc")
    part_total
    (if Rtlsim.Sim.get mono "consumer$acc" = part_total then "cycle-exact" else "MISMATCH");
  (* 3. What would this run at on real FPGAs? *)
  Printf.printf "estimated rate on QSFP-connected FPGAs at 90 MHz: %.2f MHz\n"
    (Fireaxe.estimate_rate ~freq_mhz:90. plan /. 1e6)
