examples/split_core.ml: Fireaxe Fireripper Fmt List Platform Printf Rtlsim Socgen
