examples/quickstart.mli:
