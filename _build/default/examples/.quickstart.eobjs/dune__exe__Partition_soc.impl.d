examples/partition_soc.ml: Fireaxe List Platform Printf Socgen
