examples/partition_soc.mli:
