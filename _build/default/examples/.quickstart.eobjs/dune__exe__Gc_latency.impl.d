examples/gc_latency.ml: Golang List Printf
