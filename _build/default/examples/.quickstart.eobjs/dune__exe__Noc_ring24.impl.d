examples/noc_ring24.ml: Fireaxe List Platform Printf Rtlsim Socgen
