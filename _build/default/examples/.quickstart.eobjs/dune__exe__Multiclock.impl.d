examples/multiclock.ml: Ast Builder Dsl Fireaxe Firrtl Format List Printf Rtlsim Socgen
