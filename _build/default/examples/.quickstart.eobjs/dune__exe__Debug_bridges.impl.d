examples/debug_bridges.ml: Ast Builder Dsl Fireaxe Firrtl List Printf Rtlsim Socgen String
