examples/trace_profile.ml: Fireaxe List Printf Rtlsim Socgen
