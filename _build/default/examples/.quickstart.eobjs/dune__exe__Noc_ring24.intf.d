examples/noc_ring24.mli:
