examples/bug_hunt.ml: Fireaxe List Printf Rtlsim Socgen
