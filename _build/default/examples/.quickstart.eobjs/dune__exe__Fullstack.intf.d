examples/fullstack.mli:
