examples/multiclock.mli:
