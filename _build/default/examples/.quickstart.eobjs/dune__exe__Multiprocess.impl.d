examples/multiprocess.ml: Filename Fireaxe Libdn List Printf Rtlsim Socgen Sys
