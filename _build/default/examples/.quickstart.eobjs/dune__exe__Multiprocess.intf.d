examples/multiprocess.mli:
