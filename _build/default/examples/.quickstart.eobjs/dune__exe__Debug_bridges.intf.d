examples/debug_bridges.mli:
