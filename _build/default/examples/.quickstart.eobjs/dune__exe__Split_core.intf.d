examples/split_core.mli:
