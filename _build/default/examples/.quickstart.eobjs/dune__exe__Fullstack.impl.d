examples/fullstack.ml: Filename Fireaxe List Printf Rtlsim Socgen Sys
