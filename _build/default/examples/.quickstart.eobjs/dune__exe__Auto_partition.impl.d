examples/auto_partition.ml: Fireaxe Fireripper Fmt List Printf Rtlsim Socgen String
