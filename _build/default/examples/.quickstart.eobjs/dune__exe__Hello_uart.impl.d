examples/hello_uart.ml: Buffer Char Fireaxe Libdn List Printf Rtlsim Socgen String
