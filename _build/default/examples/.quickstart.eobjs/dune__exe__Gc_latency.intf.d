examples/gc_latency.mli:
