examples/quickstart.ml: Ast Builder Dsl Fireaxe Firrtl Printf Rtlsim
