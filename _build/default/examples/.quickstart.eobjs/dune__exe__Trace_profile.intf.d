examples/trace_profile.mli:
