examples/hello_uart.mli:
