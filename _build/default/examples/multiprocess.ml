(* Multi-process partitioned simulation — the software analogue of the
   paper's multi-FPGA deployment.

   FireAxe's premise is that once a design is partitioned behind LI-BDN
   token channels, the partitions can live anywhere: the scheduler only
   moves tokens.  Here each partition of a Kite SoC runs in its OWN
   WORKER PROCESS (one per simulated FPGA); the parent process hosts
   only the token network.  The run is cycle-exact against the
   monolithic simulation, and target state is loaded and inspected over
   the same pipes that carry the tokens.

   Run with: dune exec examples/multiprocess.exe *)

module FR = Fireaxe

let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:12 ~reps:6 ~dst:60
let data = List.init 12 (fun i -> (32 + i, (i * 5) + 1))

(* The worker binary lives next to this example's build directory. *)
let worker =
  Filename.concat
    (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
    "fireaxe_worker.exe"

let () =
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "tile" ] ] }
  in
  let plan = FR.compile ~config (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  Printf.printf "plan: %d units; spawning one worker process per unit\n"
    (FR.Plan.n_units plan);

  let h, conns = FR.Runtime.instantiate_remote ~worker ~remote_units:[ 0; 1 ] plan in
  List.iter
    (fun (u, _) -> Printf.printf "  unit %d -> worker process\n" u)
    conns;

  (* Load the program into the remote memory over the pipe. *)
  let mem = List.assoc 0 conns in
  let tile = List.assoc 1 conns in
  List.iteri
    (fun i w -> Libdn.Remote_engine.poke_mem mem "mem$mem" i w)
    (Socgen.Kite_isa.assemble program);
  List.iter (fun (a, v) -> Libdn.Remote_engine.poke_mem mem "mem$mem" a v) data;

  let cycles = 2500 in
  FR.Runtime.run h ~cycles;
  Printf.printf "ran %d target cycles across %d processes (%d token transfers)\n" cycles
    (List.length conns)
    (FR.Runtime.token_transfers h);

  (* Cross-check against the monolithic run. *)
  let mono = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  Socgen.Soc.load_program mono ~mem:"mem$mem" ~data program;
  for _ = 1 to cycles do
    Rtlsim.Sim.step mono
  done;
  List.iter
    (fun (what, got, want) ->
      Printf.printf "  %-24s = %-6d (monolithic %d%s)\n" what got want
        (if got = want then ", exact" else " -- DIFFERS");
      assert (got = want))
    [
      ( "tile retired",
        Libdn.Remote_engine.get tile "tile$core$retired_count",
        Rtlsim.Sim.get mono "tile$core$retired_count" );
      ( "tile pc",
        Libdn.Remote_engine.get tile "tile$core$pc",
        Rtlsim.Sim.get mono "tile$core$pc" );
      ( "mem[60] (result)",
        Libdn.Remote_engine.peek_mem mem "mem$mem" 60,
        Rtlsim.Sim.peek_mem mono "mem$mem" 60 );
    ];
  List.iter (fun (_, c) -> Libdn.Remote_engine.close c) conns;
  print_endline "multi-process partitioned run cycle-exact: OK"
