(* TracerV + FirePerf out of a partitioned simulation.

   FireSim's TracerV bridge streams committed-instruction traces to the
   host, where FirePerf-style tooling builds profiles.  This example
   pulls the Kite tile onto its own (simulated) FPGA, traces the run
   out of band, disassembles the trace, and prints the hot-PC profile —
   then checks the partitioned trace is identical to the monolithic
   one, cycle for cycle.

   Run with: dune exec examples/trace_profile.exe *)

module FR = Fireaxe

let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:6 ~reps:5 ~dst:60
let data = List.init 6 (fun i -> (32 + i, (i * 7) + 1))
let pc = "tile$core$pc"
let retired = "tile$core$retired_count"
let window = 4000

let () =
  (* Partition: tile on its own FPGA, memory in the base. *)
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "tile" ] ] }
  in
  let plan = FR.compile ~config (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  let h = FR.instantiate plan in
  let mem_sim = FR.Runtime.sim_of h (FR.Runtime.locate h "mem$mem") in
  Socgen.Soc.load_program mem_sim ~mem:"mem$mem" ~data program;

  let events = FR.Tracer.of_handle h ~pc ~retired ~cycles:window in
  Printf.printf "traced %d committed instructions in %d cycles (IPC %.3f)\n\n"
    (List.length events) window
    (FR.Tracer.ipc events ~cycles:window);

  (* The head of the disassembled trace. *)
  let lines =
    FR.Tracer.render events
      ~fetch:(fun a -> Rtlsim.Sim.peek_mem mem_sim "mem$mem" a)
      ~disasm:(fun w -> Socgen.Kite_isa.to_string (Socgen.Kite_isa.decode w))
  in
  print_endline "   cycle    pc  instruction";
  List.iteri (fun i l -> if i < 12 then print_endline l) lines;
  Printf.printf "  ... %d more\n\n" (max 0 (List.length lines - 12));

  (* FirePerf-style hot-PC profile. *)
  print_endline "hot PCs:";
  List.iteri
    (fun i (pc_v, n) ->
      if i < 5 then
        Printf.printf "  %04x  %4d commits  %s\n" pc_v n
          (Socgen.Kite_isa.to_string
             (Socgen.Kite_isa.decode (Rtlsim.Sim.peek_mem mem_sim "mem$mem" pc_v))))
    (FR.Tracer.histogram events);

  (* Exact-mode partitioning leaves the trace bit-identical. *)
  let mono = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  Socgen.Soc.load_program mono ~mem:"mem$mem" ~data program;
  let mono_events = FR.Tracer.of_sim mono ~pc ~retired ~cycles:window in
  assert (mono_events = events);
  print_endline "\npartitioned trace identical to monolithic: OK"
