(* Synthesized assertions + printfs as debugging bridges.

   FireSim's answer to "printf debugging at FPGA speed": assertions and
   printfs synthesize into the image and the host drains them out of
   band.  This example wires a deliberately broken producer to a ring
   router — it ignores the credit protocol — and lets the partitioned
   simulation run.  The queue-overflow assertion pinpoints the exact
   cycle the protocol breaks; a healthy SoC then shows the other
   bridge — the Kite core's synthesized per-commit printf streaming an
   instruction log to the host.

   Run with: dune exec examples/debug_bridges.exe *)

open Firrtl
module FR = Fireaxe

(* A producer with the credit logic accidentally left out: it pushes a
   packet every other cycle regardless of buffer space — the kind of
   protocol bug that only manifests once the queues and the drain path
   saturate, several deliveries into the run. *)
let rogue_producer () =
  let b = Builder.create "rogue" in
  let open Dsl in
  let credit = Builder.input b "credit" 1 in
  ignore credit (* the bug: returned credits are ignored *);
  Builder.output b "valid" 1;
  Builder.output b "data" 26;
  let cycles = Builder.reg b "cycles" 16 in
  Builder.reg_next b "cycles" (cycles +: lit ~width:16 1);
  Builder.connect b "valid" (bit cycles 0);
  Builder.connect b "data" (lit ~width:26 ((1 lsl 21) lor 7));
  Builder.finish b

let broken_ring () =
  let router = Socgen.Ring_noc.router_module ~name:"router0" ~index:0 ~payload_width:16 () in
  let rogue = rogue_producer () in
  let b = Builder.create "brk" in
  let open Dsl in
  let r = Builder.inst b "router0" "router0" in
  let p = Builder.inst b "rogue" "rogue" in
  Builder.connect_in b r "ring_in_valid" (Builder.of_inst p "valid");
  Builder.connect_in b r "ring_in_data" (Builder.of_inst p "data");
  Builder.connect_in b p "credit" (Builder.of_inst r "ring_in_credit");
  Builder.connect_in b r "ring_out_credit" zero (* downstream never drains *);
  Builder.connect_in b r "loc_in_valid" zero;
  Builder.connect_in b r "loc_in_data" (lit ~width:26 0);
  Builder.connect_in b r "loc_out_credit" zero;
  Builder.output b "v" 1;
  Builder.connect b "v" (Builder.of_inst r "ring_out_valid");
  Ast.{ cname = "brk"; main = "brk"; modules = [ router; rogue; Builder.finish b ] }

let () =
  (* Partition the rogue producer onto its own (simulated) FPGA and let
     the runtime poll the synthesized assertions each target cycle. *)
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "rogue" ] ] }
  in
  let plan = FR.compile ~config (broken_ring ()) in
  let h = FR.instantiate plan in
  Printf.printf "polling %d synthesized assertions across %d partitions...\n"
    (List.length (FR.Runtime.assertions h))
    (FR.Plan.n_units plan);
  (match FR.Runtime.run_checked h ~max_cycles:500 with
  | Error (cycle, bad) ->
    Printf.printf "caught at target cycle %d: %s\n" cycle (String.concat ", " bad);
    (* Only once the 2-deep queue and its drain path saturate. *)
    assert (cycle > 5)
  | Ok _ -> failwith "the protocol bug went undetected");

  (* The healthy ring: no violations, and the Kite commit printf shows
     out-of-band logging from a running target. *)
  print_endline "\nhealthy SoC, synthesized commit log (first 6 records):";
  let sim = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data:[]
    (Socgen.Kite_isa.fib_program ~n:5 ~dst:60);
  let log = Rtlsim.Printfs.collect sim ~cycles:200 in
  List.iteri
    (fun i r -> if i < 6 then print_endline ("  " ^ Rtlsim.Printfs.to_string r))
    log;
  Printf.printf "  ... %d records total; assertions clean: %b\n" (List.length log)
    (Rtlsim.Assertions.violated sim = []);
  print_endline "debug bridges: OK"
