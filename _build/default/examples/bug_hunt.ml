(* The §V-A bug-hunt story, scaled down: a latent RTL bug is planted in
   one tile of the ring SoC — it corrupts the tile's checksum register
   only once its packet sequence number reaches a trigger value, so
   nothing looks wrong until deep into the simulation (the paper's bug
   took three billion cycles and only appeared under a heavy software
   stack).

   We run the buggy SoC partitioned across five model FPGAs and hunt the
   divergence against a golden monolithic run with
   [Fireaxe.find_divergence], which strides forward in checkpointed
   windows and rolls back to pinpoint the first bad cycle — then
   translate "time to bug" onto the paper's platforms: hours at FireAxe
   rates, weeks at commercial software-RTL-simulation rates.

   Run with: dune exec examples/bug_hunt.exe *)

let () =
  let n_tiles = 8 in
  let bug_at = 220 (* trigger sequence number: deep into the run *) in
  let good () = Socgen.Ring_noc.ring_soc ~n_tiles ~period:4 () in
  let bad () = Socgen.Ring_noc.ring_soc ~n_tiles ~period:4 ~bug_tile:3 ~bug_at () in
  (* Partition the buggy design across 5 FPGAs via NoC-partition-mode. *)
  let groups = [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ]; [ 6; 7 ] ] in
  let config =
    {
      Fireaxe.Spec.default_config with
      Fireaxe.Spec.selection = Fireaxe.Spec.Noc_routers groups;
    }
  in
  let plan = Fireaxe.compile ~config (bad ()) in
  let handle = Fireaxe.instantiate plan in
  let golden = Rtlsim.Sim.of_circuit (good ()) in
  let signals = List.init n_tiles (fun i -> Printf.sprintf "ttile%d$checksum_r" i) in
  match
    Fireaxe.find_divergence ~golden ~handle ~signals ~stride:1000 ~max_cycles:50_000 ()
  with
  | None -> print_endline "bug never manifested (try a lower trigger)"
  | Some d ->
    Printf.printf
      "divergence pinpointed: %s differs first at cycle %d (golden %#x, partitioned %#x)\n"
      d.Fireaxe.d_signal d.Fireaxe.d_cycle d.Fireaxe.d_golden d.Fireaxe.d_partitioned;
    (* Translate "cycles to bug" to wall-clock on each platform.  The
       paper's bug sat 3 billion cycles in: under 2 hours at 0.58 MHz,
       weeks at software-RTL rates. *)
    let paper_bug_cycles = 3e9 in
    let fireaxe_hz = 0.58e6 and software_hz = 1.26e3 in
    Printf.printf "\nat the paper's scale (bug at %.0e cycles):\n" paper_bug_cycles;
    Printf.printf "  FireAxe at %.2f MHz     : %5.1f hours\n" (fireaxe_hz /. 1e6)
      (paper_bug_cycles /. fireaxe_hz /. 3600.);
    Printf.printf "  software RTL at %.2f kHz: %5.1f weeks\n" (software_hz /. 1e3)
      (paper_bug_cycles /. software_hz /. (3600. *. 24. *. 7.))
