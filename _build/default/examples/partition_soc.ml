(* Partitioning a Kite SoC: pull the core tile (with its L1) onto a
   second FPGA, run a real program under exact- and fast-mode, and show
   the trade-off the paper's Table II captures — exact is cycle-identical
   to the monolithic simulation, fast is faster on the host platform but
   cycle-approximate.

   Run with: dune exec examples/partition_soc.exe *)

let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:16 ~reps:8 ~dst:60
let data = List.init 16 (fun i -> (32 + i, i * i))

let () =
  let v =
    Fireaxe.validate ~name:"kite SoC"
      ~circuit:(fun () -> Socgen.Soc.single_core_soc ~mem_latency:2 ())
      ~selection:(Fireaxe.Spec.Instances [ [ "tile" ] ])
      ~setup:(fun ~poke ->
        List.iteri (fun i w -> poke ~mem:"mem$mem" i w) (Socgen.Kite_isa.assemble program);
        List.iter (fun (a, w) -> poke ~mem:"mem$mem" a w) data)
      ~finished:(fun ~peek -> peek "tile$core$state" = Socgen.Kite_core.s_halted)
      ()
  in
  Printf.printf "program halt cycle:\n";
  Printf.printf "  monolithic  : %d cycles\n" v.Fireaxe.v_monolithic_cycles;
  Printf.printf "  exact-mode  : %d cycles (error %.2f%%)\n" v.Fireaxe.v_exact_cycles
    v.Fireaxe.v_exact_error_pct;
  Printf.printf "  fast-mode   : %d cycles (error %.2f%%)\n" v.Fireaxe.v_fast_cycles
    v.Fireaxe.v_fast_error_pct;
  (* Estimated host-platform rates for the same plan. *)
  List.iter
    (fun (label, mode) ->
      let config =
        {
          Fireaxe.Spec.default_config with
          Fireaxe.Spec.mode;
          Fireaxe.Spec.selection = Fireaxe.Spec.Instances [ [ "tile" ] ];
        }
      in
      let plan = Fireaxe.compile ~config (Socgen.Soc.single_core_soc ()) in
      Printf.printf "\n%s-mode estimated simulation rates (90 MHz bitstreams):\n" label;
      List.iter
        (fun transport ->
          Printf.printf "  %-22s %8.3f MHz\n"
            (Platform.Transport.name transport)
            (Fireaxe.estimate_rate ~freq_mhz:90. ~transport plan /. 1e6))
        [ Platform.Transport.Qsfp; Platform.Transport.Pcie_p2p; Platform.Transport.Pcie_host ])
    [ ("exact", Fireaxe.Spec.Exact); ("fast", Fireaxe.Spec.Fast) ]
