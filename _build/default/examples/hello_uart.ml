(* Hello world through a memory-mapped UART — the host-driver pattern of
   §IV-A.  A Kite program stores characters to the device address space;
   the UART queues them; a host-side driver (the code below, standing in
   for FireSim's C++ simulation drivers) polls the device and drains the
   bytes.  The same program, driver and output work whether the SoC is
   one simulation or partitioned across two model FPGAs with the core
   tile on the far side.

   Run with: dune exec examples/hello_uart.exe *)

let message = "FireAxe says hello across two FPGAs\n"

let data =
  List.mapi (fun i c -> (40 + i, Char.code c)) (List.init (String.length message) (String.get message))

let program = Socgen.Mmio.print_program ~base:40 ~n:(String.length message)

let () =
  (* Monolithic reference. *)
  let mono_out, mono_cycles = Socgen.Mmio.run_monolithic ~program ~data () in
  Printf.printf "monolithic SoC printed %S in %d cycles\n" mono_out mono_cycles;
  (* Partitioned: pull the tile onto the second FPGA, keep the UART and
     the driver on the base. *)
  let config =
    {
      Fireaxe.Spec.default_config with
      Fireaxe.Spec.selection = Fireaxe.Spec.Instances [ [ "tile" ] ];
    }
  in
  let plan = Fireaxe.compile ~config (Socgen.Mmio.uart_soc ()) in
  let h = Fireaxe.instantiate plan in
  let base = Fireaxe.Runtime.sim_of h (Fireaxe.Runtime.locate h "mem$mem") in
  Socgen.Soc.load_program base ~mem:"mem$mem" ~data program;
  let tile = Fireaxe.Runtime.sim_of h (Fireaxe.Runtime.locate h "tile$core$state") in
  let collected = Buffer.create 64 in
  let cycle = ref 0 in
  let finished () =
    Rtlsim.Sim.get tile "tile$core$state" = Socgen.Kite_core.s_halted
    && Rtlsim.Sim.get base "uart$occ" = 0
  in
  while (not (finished ())) && !cycle < 100_000 do
    Socgen.Mmio.driver_step
      ~peek:(Rtlsim.Sim.get base)
      ~peek_mem:(Rtlsim.Sim.peek_mem base)
      ~poke:(fun name v -> (Fireaxe.Runtime.engine h 0).Libdn.Engine.set_input name v)
      collected;
    incr cycle;
    Fireaxe.Runtime.run h ~cycles:!cycle
  done;
  Printf.printf "partitioned SoC printed %S in %d cycles\n" (Buffer.contents collected) !cycle;
  Printf.printf "identical output: %b; identical cycle count (exact mode): %b\n"
    (Buffer.contents collected = mono_out)
    (!cycle = mono_cycles)
