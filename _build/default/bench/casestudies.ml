(* Case studies: the 24-core ring SoC split over five FPGAs (§V-A,
   Fig. 6) and the split GC40-class core (§V-B).  These run the real
   compiler and LI-BDN runtime for functional validation, and the
   platform model for rate estimates. *)

module FR = Fireripper

let mhz rate = rate /. 1_000_000.

(* ------------------------------------------------------------------ *)
(* 24-core SoC on 5 FPGAs                                              *)
(* ------------------------------------------------------------------ *)

let casestudy_24core () =
  Printf.printf "\nCase study (Fig. 6): 24-core ring SoC on 5 FPGAs (NoC-partition-mode)\n";
  let n_tiles = 24 in
  let circuit () = Socgen.Ring_noc.ring_soc ~n_tiles ~period:6 () in
  let groups = [ [ 0; 1; 2; 3; 4; 5 ]; [ 6; 7; 8; 9; 10; 11 ]; [ 12; 13; 14; 15; 16; 17 ]; [ 18; 19; 20; 21; 22; 23 ] ] in
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Noc_routers groups }
  in
  let plan = FR.Compile.compile ~config (circuit ()) in
  let r = FR.Report.build plan in
  Printf.printf "  partitions: %d (4 tile FPGAs + SoC subsystem FPGA)\n"
    (FR.Plan.n_units plan);
  Printf.printf "  total boundary width: %d bits; crossings/cycle: %d\n"
    r.FR.Report.r_total_width r.FR.Report.r_crossings_per_cycle;
  (* Functional validation: partitioned vs monolithic over 2000 cycles. *)
  let cycles = 2_000 in
  let mono = Rtlsim.Sim.of_circuit (circuit ()) in
  let t0 = Sys.time () in
  for _ = 1 to cycles do
    Rtlsim.Sim.step mono
  done;
  let mono_rate = float_of_int cycles /. (Sys.time () -. t0 +. 1e-9) in
  let h = FR.Runtime.instantiate plan in
  FR.Runtime.run h ~cycles;
  let mismatches = ref 0 in
  for i = 0 to n_tiles - 1 do
    let reg = Printf.sprintf "ttile%d$checksum_r" i in
    let u = FR.Runtime.locate h reg in
    if Rtlsim.Sim.get mono reg <> Rtlsim.Sim.get (FR.Runtime.sim_of h u) reg then
      incr mismatches
  done;
  Printf.printf "  cycle-exactness after %d cycles: %s\n" cycles
    (if !mismatches = 0 then "all 24 tile checksums identical"
     else Printf.sprintf "%d MISMATCHES" !mismatches);
  (* Rate estimate: tile FPGAs run 6 FAME-5 threads at 15 MHz, the
     subsystem FPGA at 30 MHz, QSFP ring. *)
  let spec =
    Platform.Perf.of_plan
      ~freq_mhz:(fun u -> if u = 0 then 30. else 15.)
      ~threads:(fun u -> if u = 0 then 1 else 6)
      ~transport:(fun ~src:_ ~dst:_ -> Platform.Transport.Qsfp)
      plan
  in
  let rate = Platform.Perf.rate spec in
  Printf.printf "  modeled simulation rate: %.2f MHz (paper: 0.58 MHz)\n" (mhz rate);
  Printf.printf
    "  this host's software RTL simulation of the same SoC: %.1f kHz -> modeled speedup %.0fx \
     (paper: 1.26 kHz, 460x)\n"
    (mono_rate /. 1_000.) (rate /. mono_rate)

(* ------------------------------------------------------------------ *)
(* Split GC40-class core on 2 FPGAs                                    *)
(* ------------------------------------------------------------------ *)

let casestudy_split_core () =
  Printf.printf "\nCase study (§V-B): splitting a core that does not fit on one FPGA\n";
  let p = Socgen.Bigcore.gc40ish in
  let circuit () = Socgen.Bigcore.circuit ~p () in
  (* Monolithic build fails for GC40: the whole core exceeds the
     routable budget. *)
  let whole = Platform.Resource.estimate_circuit (circuit ()) in
  Printf.printf "  monolithic core: %s -> fits U250: %b (paper: bitstream build fails)\n"
    (Fmt.str "%a" Platform.Resource.pp whole)
    (Platform.Fpga.fits Platform.Fpga.u250 whole);
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Instances [ [ "backend" ] ];
    }
  in
  let plan = FR.Compile.compile ~config (circuit ()) in
  let r = FR.Report.build plan in
  Printf.printf "  partition interface: %d bits (paper: >7000 bits)\n"
    r.FR.Report.r_total_width;
  List.iter
    (fun (name, _, util, fits) ->
      Printf.printf "  %-18s %s -> fits: %b\n" name
        (Fmt.str "%a" Platform.Fpga.pp_utilization util)
        fits)
    (Fireaxe.utilization plan);
  (* Functional: partitioned == monolithic. *)
  let cycles = 3_000 in
  let mono = Rtlsim.Sim.of_circuit (circuit ()) in
  for _ = 1 to cycles do
    Rtlsim.Sim.step mono
  done;
  let h = FR.Runtime.instantiate plan in
  FR.Runtime.run h ~cycles;
  let check reg =
    let u = FR.Runtime.locate h reg in
    Rtlsim.Sim.get mono reg = Rtlsim.Sim.get (FR.Runtime.sim_of h u) reg
  in
  Printf.printf "  cycle-exact after %d cycles: commits %b, checksum %b\n" cycles
    (check "backend$commits_r") (check "backend$checksum_r");
  let rate = Fireaxe.estimate_rate ~freq_mhz:10. plan in
  Printf.printf "  modeled simulation rate at 10 MHz bitstreams: %.2f MHz (paper: 0.2 MHz)\n"
    (mhz rate)


(** §VIII-A: deployment advice for a 24-core benchmark campaign. *)
let advisor () =
  Printf.printf "\nDeployment advisor (§VIII-A): 24-core SoC, 200 runs of 1G cycles\n";
  let circuit = Socgen.Ring_noc.ring_soc ~n_tiles:24 ~period:6 () in
  let groups = List.init 4 (fun g -> List.init 6 (fun i -> (g * 6) + i)) in
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Noc_routers groups }
  in
  let plan = FR.Compile.compile ~config circuit in
  let unit_estimates = List.map (fun (_, est, _, _) -> est) (Fireaxe.utilization plan) in
  let advice =
    Platform.Advisor.advise ~n_fpgas:(FR.Plan.n_units plan)
      ~boundary_bits:(FR.Plan.total_boundary_width plan) ~cycles_per_run:1_000_000_000
      ~runs:200 ~unit_estimates
  in
  Fmt.pr "  %a@.  %a@.  recommendation: %s@." Platform.Advisor.pp_estimate
    advice.Platform.Advisor.a_on_prem Platform.Advisor.pp_estimate
    advice.Platform.Advisor.a_cloud advice.Platform.Advisor.a_recommendation
