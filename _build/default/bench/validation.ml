(* Table II: simulator validation — monolithic vs exact-mode vs
   fast-mode cycle counts on the three SoCs, using the real FireRipper
   compiler and LI-BDN runtime (not the performance model). *)

let kite_row () =
  let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:16 ~reps:12 ~dst:60 in
  let data = List.init 16 (fun i -> (32 + i, (i * 13) + 7)) in
  Fireaxe.validate ~name:"Kite tile (program run)"
    ~circuit:(fun () -> Socgen.Soc.single_core_soc ~mem_latency:2 ())
    ~selection:(Fireaxe.Spec.Instances [ [ "tile" ] ])
    ~setup:(fun ~poke ->
      List.iteri (fun i w -> poke ~mem:"mem$mem" i w) (Socgen.Kite_isa.assemble program);
      List.iter (fun (a, v) -> poke ~mem:"mem$mem" a v) data)
    ~finished:(fun ~peek -> peek "tile$core$state" = Socgen.Kite_core.s_halted)
    ()

let sha3_row () =
  Fireaxe.validate ~name:"Sha3Accel (encryption)"
    ~circuit:(fun () -> Socgen.Soc.accel_soc ~mem_latency:2 Socgen.Soc.Sha3)
    ~selection:(Fireaxe.Spec.Instances [ [ "accel" ] ])
    ~setup:(fun ~poke ->
      List.iteri (fun i v -> poke ~mem:"mem$mem" (16 + i) v) [ 1; 2; 3; 4; 5; 6; 7; 8 ])
    ~finished:(fun ~peek -> peek "accel$state" = Socgen.Accel.h_done)
    ()

let gemmini_row () =
  Fireaxe.validate ~name:"Gemmini (convolution)"
    ~circuit:(fun () -> Socgen.Soc.accel_soc ~mem_latency:2 Socgen.Soc.Gemmini)
    ~selection:(Fireaxe.Spec.Instances [ [ "accel" ] ])
    ~setup:(fun ~poke ->
      List.iteri (fun i v -> poke ~mem:"mem$mem" (16 + i) v)
        (List.init 48 (fun i -> (i * 3) + 1));
      List.iteri (fun i v -> poke ~mem:"mem$mem" (80 + i) v) (List.init 16 (fun i -> i + 1)))
    ~finished:(fun ~peek -> peek "accel$state" = Socgen.Accel.g_done)
    ()

(* Beyond the paper: the same methodology on the FASED-style DRAM-backed
   SoC — boundary traffic now has data-dependent (bank-state) timing. *)
let dram_row () =
  let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:16 ~reps:12 ~dst:60 in
  let data = List.init 16 (fun i -> (32 + i, (i * 13) + 7)) in
  Fireaxe.validate ~name:"Kite tile + DRAM (FASED)"
    ~circuit:(fun () -> Socgen.Dram.dram_soc ())
    ~selection:(Fireaxe.Spec.Instances [ [ "tile" ] ])
    ~setup:(fun ~poke ->
      List.iteri (fun i w -> poke ~mem:"mem$mem" i w) (Socgen.Kite_isa.assemble program);
      List.iter (fun (a, v) -> poke ~mem:"mem$mem" a v) data)
    ~finished:(fun ~peek -> peek "tile$core$state" = Socgen.Kite_core.s_halted)
    ()

(* Beyond the paper: the 5-stage pipelined core with NO L1 — every
   load/store ping-pongs across the cut, the paper's worst case for
   fast-mode error (contrast with the cached Kite tile row). *)
let k5_row () =
  let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:16 ~reps:8 ~dst:60 in
  Fireaxe.validate ~name:"Pipelined core, no L1"
    ~circuit:(fun () -> Socgen.Kite5_core.soc ())
    ~selection:(Fireaxe.Spec.Instances [ [ "core" ] ])
    ~setup:(fun ~poke ->
      List.iteri (fun i w -> poke ~mem:"core$imem" i w) (Socgen.Kite_isa.assemble program);
      List.iter (fun i -> poke ~mem:"mem$mem" (32 + i) ((i * 13) + 7)) (List.init 16 Fun.id))
    ~finished:(fun ~peek -> peek "core$halted_r" = 1)
    ()

let table2 () =
  Printf.printf "\nTable II: simulator validation (cycle counts vs monolithic)\n";
  Printf.printf "%-26s %12s %12s %12s %11s %11s\n" "target" "monolithic" "exact" "fast"
    "exact err" "fast err";
  List.iter
    (fun v ->
      Printf.printf "%-26s %12d %12d %12d %10.2f%% %10.2f%%\n" v.Fireaxe.v_name
        v.Fireaxe.v_monolithic_cycles v.Fireaxe.v_exact_cycles v.Fireaxe.v_fast_cycles
        v.Fireaxe.v_exact_error_pct v.Fireaxe.v_fast_error_pct)
    [ kite_row (); sha3_row (); gemmini_row (); dram_row (); k5_row () ]
