bench/system_figures.ml: Ddio Golang List Printf Rtlsim Socgen
