bench/casestudies.ml: Fireaxe Fireripper Fmt List Platform Printf Rtlsim Socgen Sys
