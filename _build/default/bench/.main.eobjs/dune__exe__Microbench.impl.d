bench/microbench.ml: Analyze Bechamel Benchmark Des Filename Fireripper Firrtl Hashtbl Instance List Measure Platform Printf Rtlsim Socgen Staged Sys Test Time Toolkit
