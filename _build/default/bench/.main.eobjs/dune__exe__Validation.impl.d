bench/validation.ml: Fireaxe Fun List Printf Socgen
