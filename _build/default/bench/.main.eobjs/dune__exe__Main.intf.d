bench/main.mli:
