bench/uarch_figures.ml: List Printf Uarch Workloads
