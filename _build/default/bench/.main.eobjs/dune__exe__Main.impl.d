bench/main.ml: Casestudies Hw_validation Microbench Perf_figures System_figures Uarch_figures Validation
