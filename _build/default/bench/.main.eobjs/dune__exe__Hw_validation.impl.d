bench/hw_validation.ml: Ast Builder Dsl Fireripper Firrtl Flatten Goldengate Libdn List Platform Printf Rtlsim Socgen
