bench/perf_figures.ml: Fireripper List Platform Printf Socgen
