(* Figures 11-14: simulation-performance sweeps from the DES platform
   model (Section VI-A/B).  Each function prints the series the paper
   plots; rates are in target MHz. *)

module FR = Fireripper

let mhz rate = rate /. 1_000_000.

let freqs_mhz = [ 10.; 30.; 50.; 70.; 90. ]
let widths = [ 128; 512; 1024; 1536; 3000; 7000 ]

let sweep_two_fpga ~transport ~mode =
  List.map
    (fun freq ->
      ( freq,
        List.map
          (fun bits ->
            let spec = Platform.Perf.two_fpga_spec ~mode ~bits ~freq_mhz:freq ~transport in
            (bits, mhz (Platform.Perf.rate spec)))
          widths ))
    freqs_mhz

let print_sweep ~title ~transport =
  Printf.printf "\n%s\n" title;
  Printf.printf "%-6s %-6s" "freq" "mode";
  List.iter (fun w -> Printf.printf " %8db" w) widths;
  print_newline ();
  List.iter
    (fun mode ->
      List.iter
        (fun (freq, series) ->
          Printf.printf "%-6.0f %-6s" freq (FR.Spec.mode_to_string mode);
          List.iter (fun (_, r) -> Printf.printf " %8.3f" r) series;
          print_newline ())
        (sweep_two_fpga ~transport ~mode))
    [ FR.Spec.Exact; FR.Spec.Fast ]

(** Figure 11: QSFP direct-attach sweep. *)
let figure11 () =
  print_sweep
    ~title:
      "Figure 11: QSFP performance sweep (target MHz vs interface width, bitstream \
       frequency, mode)"
    ~transport:Platform.Transport.Qsfp

(** Figure 12: PCIe peer-to-peer sweep. *)
let figure12 () =
  print_sweep
    ~title:
      "Figure 12: PCIe peer-to-peer performance sweep (target MHz vs interface width, \
       bitstream frequency, mode)"
    ~transport:Platform.Transport.Pcie_p2p

(** Host-managed PCIe reference point (Section IV-A: capped ~26.4 kHz). *)
let host_managed_rate () =
  let spec =
    Platform.Perf.two_fpga_spec ~mode:FR.Spec.Fast ~bits:512 ~freq_mhz:90.
      ~transport:Platform.Transport.Pcie_host
  in
  Platform.Perf.rate spec

(** Figure 13 companion: the same sweep driven by *real compiled plans*
    — ring SoCs cut into k router groups by NoC-partition-mode, priced
    through the plan-derived channelization. *)
let figure13_compiled () =
  Printf.printf "\nFigure 13 (compiled plans): ring SoC cut into k FPGAs, 30 MHz, QSFP\n";
  Printf.printf "%-6s %10s %14s\n" "FPGAs" "rate MHz" "boundary bits";
  List.iter
    (fun k ->
      (* 2 tiles per extracted group, plus the subsystem partition. *)
      let n_tiles = 2 * k in
      let circuit = Socgen.Ring_noc.ring_soc ~n_tiles ~period:6 () in
      let groups = List.init k (fun g -> [ 2 * g; (2 * g) + 1 ]) in
      let config =
        { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Noc_routers groups }
      in
      let plan = FR.Compile.compile ~config circuit in
      let spec =
        Platform.Perf.of_plan
          ~freq_mhz:(fun _ -> 30.)
          ~transport:(fun ~src:_ ~dst:_ -> Platform.Transport.Qsfp)
          plan
      in
      Printf.printf "%-6d %10.3f %14d\n" (k + 1)
        (mhz (Platform.Perf.rate spec))
        (FR.Plan.total_boundary_width plan))
    [ 1; 2; 3; 4 ];
  Printf.printf
    "  (flat: each FPGA only synchronizes with its ring neighbours; the measured decline\n\
    \   in the paper and in the synthetic sweep above comes from per-hop token-exchange\n\
    \   timing skew, which the plan-derived model treats as ideal)\n"

(** Figure 13: rate vs number of FPGAs in a ring (NoC-partition-mode). *)
let figure13 () =
  Printf.printf "\nFigure 13: FPGA-count sweep (ring topology, fixed interface width)\n";
  Printf.printf "%-6s" "freq";
  List.iter (fun n -> Printf.printf " %6dFPGA" n) [ 2; 3; 4; 5 ];
  print_newline ();
  List.iter
    (fun freq ->
      Printf.printf "%-6.0f" freq;
      List.iter
        (fun n ->
          let spec =
            Platform.Perf.ring_spec ~n ~bits:256 ~freq_mhz:freq
              ~transport:Platform.Transport.Qsfp
          in
          Printf.printf " %10.3f" (mhz (Platform.Perf.rate spec)))
        [ 2; 3; 4; 5 ];
      print_newline ())
    [ 30.; 50.; 90. ]

(** Figure 14: FAME-5 amortization — rate vs threaded tile count. *)
let figure14 () =
  Printf.printf
    "\nFigure 14: FAME-5 amortization (tile FPGA fixed at 15 MHz; interface grows with \
     tiles)\n";
  Printf.printf "%-8s" "soc_freq";
  List.iter (fun t -> Printf.printf " %6dtile" t) [ 1; 2; 3; 4; 5; 6 ];
  print_newline ();
  List.iter
    (fun soc_freq ->
      Printf.printf "%-8.0f" soc_freq;
      List.iter
        (fun tiles ->
          let spec =
            Platform.Perf.fame5_spec ~tiles ~bits_per_tile:250 ~tile_freq_mhz:15.
              ~soc_freq_mhz:soc_freq ~transport:Platform.Transport.Qsfp
          in
          Printf.printf " %10.3f" (mhz (Platform.Perf.rate spec)))
        [ 1; 2; 3; 4; 5; 6 ];
      print_newline ())
    [ 20.; 25.; 30. ]

(** Headline transport rates (Sections IV and VI intro). *)
let headline () =
  Printf.printf "\nHeadline transport rates (fast-mode, 512b boundary, 90 MHz bitstream)\n";
  List.iter
    (fun transport ->
      let spec =
        Platform.Perf.two_fpga_spec ~mode:FR.Spec.Fast ~bits:512 ~freq_mhz:90. ~transport
      in
      Printf.printf "  %-22s %10.4f MHz\n"
        (Platform.Transport.name transport)
        (mhz (Platform.Perf.rate spec)))
    [ Platform.Transport.Qsfp; Platform.Transport.Pcie_p2p; Platform.Transport.Pcie_host ]

(** Ablation: DES model vs closed-form estimate. *)
let ablation_perf_formula () =
  Printf.printf "\nAblation: DES performance model vs closed-form estimate (target MHz)\n";
  Printf.printf "%-28s %10s %10s\n" "configuration" "DES" "formula";
  List.iter
    (fun (label, spec) ->
      Printf.printf "%-28s %10.3f %10.3f\n" label
        (mhz (Platform.Perf.rate spec))
        (mhz (Platform.Perf.analytic_rate spec)))
    [
      ( "fast 512b qsfp 90MHz",
        Platform.Perf.two_fpga_spec ~mode:FR.Spec.Fast ~bits:512 ~freq_mhz:90.
          ~transport:Platform.Transport.Qsfp );
      ( "exact 512b qsfp 90MHz",
        Platform.Perf.two_fpga_spec ~mode:FR.Spec.Exact ~bits:512 ~freq_mhz:90.
          ~transport:Platform.Transport.Qsfp );
      ( "fast 7000b qsfp 90MHz",
        Platform.Perf.two_fpga_spec ~mode:FR.Spec.Fast ~bits:7000 ~freq_mhz:90.
          ~transport:Platform.Transport.Qsfp );
      ( "fast 512b p2p 90MHz",
        Platform.Perf.two_fpga_spec ~mode:FR.Spec.Fast ~bits:512 ~freq_mhz:90.
          ~transport:Platform.Transport.Pcie_p2p );
    ]
