(* Figure 9 (leaky-DMA) and Figure 10 (Go GC tail latency). *)

let figure9 () =
  Printf.printf
    "\nFigure 9: leaky-DMA — NIC request-to-response latency (ns/transaction)\n";
  Printf.printf "%-6s %-6s %10s %10s %10s\n" "bus" "cores" "RdLat" "WrLat" "LLC hit%";
  List.iter
    (fun (bus, series) ->
      List.iter
        (fun (r : Ddio.Leaky.result) ->
          Printf.printf "%-6s %-6d %10.1f %10.1f %9.1f%%\n" bus r.Ddio.Leaky.cores
            r.Ddio.Leaky.rd_lat_ns r.Ddio.Leaky.wr_lat_ns
            (100. *. r.Ddio.Leaky.llc_hit_rate))
        series)
    (Ddio.Leaky.figure9 ())

let figure10 () =
  Printf.printf "\nFigure 10: Go GC tick tail latency (us)\n";
  Printf.printf "%-24s %10s %10s %10s %8s\n" "configuration" "p95" "p99" "max" "GCs";
  List.iter
    (fun cfg ->
      let r = Golang.Model.run cfg in
      Printf.printf "%-24s %10.1f %10.1f %10.1f %8d\n" (Golang.Model.label cfg)
        r.Golang.Model.p95_us r.Golang.Model.p99_us r.Golang.Model.max_us
        r.Golang.Model.gc_cycles)
    Golang.Model.figure10_configs;
  let same_numa, cross_numa = Golang.Model.numa_experiment () in
  Printf.printf
    "Xeon corroboration (GOMAXPROCS=2): p99 same-NUMA %.0f us vs cross-NUMA %.0f us\n"
    same_numa cross_numa

(** Ablation: widening the DDIO way allocation relieves the leaky-DMA
    pressure ("don't forget the I/O when allocating your LLC"). *)
let ddio_ablation () =
  Printf.printf "\nAblation: DDIO ways at 12 forwarding cores (XBar)\n";
  Printf.printf "%-6s %10s %10s %10s\n" "ways" "RdLat" "WrLat" "LLC hit%";
  List.iter
    (fun (ways, (r : Ddio.Leaky.result)) ->
      Printf.printf "%-6d %10.1f %10.1f %9.1f%%\n" ways r.Ddio.Leaky.rd_lat_ns
        r.Ddio.Leaky.wr_lat_ns
        (100. *. r.Ddio.Leaky.llc_hit_rate))
    (Ddio.Leaky.ddio_ways_ablation ())


(** Figure 9 companion, measured in cycle-exact RTL: the NIC's own
    hardware latency counters (§V-C's modification) under growing core
    contention on the crossbar SoC. *)
let figure9_rtl () =
  Printf.printf
    "\nFigure 9 companion (RTL): NIC hardware counters vs active cores (crossbar SoC)\n";
  Printf.printf "%-6s %10s %10s\n" "cores" "RdLat cyc" "WrLat cyc";
  List.iter
    (fun cores ->
      let sim = Rtlsim.Sim.of_circuit (Socgen.Nic.nic_soc ~cores ()) in
      Socgen.Soc.load_program sim ~mem:"mem$mem" ~data:[] Socgen.Nic.forwarding_program;
      for _ = 1 to 6000 do
        Rtlsim.Sim.step sim
      done;
      Rtlsim.Sim.eval_comb sim;
      let rd, wr = Socgen.Nic.averages ~peek:(Rtlsim.Sim.get sim) in
      Printf.printf "%-6d %10.2f %10.2f\n" cores rd wr)
    [ 1; 2; 4; 6 ]
