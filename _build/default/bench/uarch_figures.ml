(* Table I, Figure 7 (Embench runtimes) and Figure 8 (CPI stacks). *)

let table1 () =
  Printf.printf "\nTable I: microarchitectural parameters\n";
  Printf.printf "%-22s" "";
  List.iter (fun c -> Printf.printf " %12s" c.Uarch.Config.name) Uarch.Config.all;
  print_newline ();
  List.iter
    (fun (label, values) ->
      Printf.printf "%-22s" label;
      List.iter (fun v -> Printf.printf " %12s" v) values;
      print_newline ())
    Uarch.Config.table1;
  Printf.printf "%-22s" "Core+L1 area (16nm)";
  List.iter
    (fun c -> Printf.printf " %9.2fmm2" (Uarch.Config.area_mm2 c.Uarch.Config.name))
    Uarch.Config.all;
  print_newline ()

let figure7 () =
  Printf.printf "\nFigure 7: Embench runtimes (ms at %.1f GHz)\n" Uarch.Config.clock_ghz;
  Printf.printf "%-16s %12s %12s %12s %14s\n" "benchmark" "Large BOOM" "GC40 BOOM"
    "GC Xeon" "GC40/Large IPC";
  let ratios =
    List.map
      (fun name ->
        let large = Workloads.Embench.run ~config:Uarch.Config.large_boom name in
        let gc40 = Workloads.Embench.run ~config:Uarch.Config.gc40_boom name in
        let xeon = Workloads.Embench.run ~config:Uarch.Config.gc_xeon name in
        let ratio = gc40.Uarch.Core.r_ipc /. large.Uarch.Core.r_ipc in
        Printf.printf "%-16s %12.3f %12.3f %12.3f %13.1f%%\n" name
          large.Uarch.Core.r_runtime_ms gc40.Uarch.Core.r_runtime_ms
          xeon.Uarch.Core.r_runtime_ms
          ((ratio -. 1.) *. 100.);
        ratio)
      Workloads.Embench.all_names
  in
  let avg = List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios) in
  Printf.printf "%-16s %38s %13.1f%%\n" "average" "" ((avg -. 1.) *. 100.)

let figure8 () =
  Printf.printf "\nFigure 8: CPI stacks (cycles per instruction by stall category)\n";
  Printf.printf "%-16s %-12s" "benchmark" "config";
  List.iter
    (fun c -> Printf.printf " %10s" (Uarch.Core.category_name c))
    Uarch.Core.categories;
  Printf.printf " %10s\n" "total";
  List.iter
    (fun name ->
      List.iter
        (fun config ->
          let r = Workloads.Embench.run ~config name in
          Printf.printf "%-16s %-12s" name config.Uarch.Config.name;
          List.iter (fun (_, v) -> Printf.printf " %10.3f" v) r.Uarch.Core.r_cpi_stack;
          Printf.printf " %10.3f\n" (1. /. r.Uarch.Core.r_ipc))
        [ Uarch.Config.large_boom; Uarch.Config.gc40_boom ])
    Workloads.Embench.cpi_stack_selection


(** Ablation: next-line D-cache prefetching on the memory-bound
    benchmarks (a microarchitectural knob the timing model exposes). *)
let ablation_prefetch () =
  Printf.printf "\nAblation: next-line L1D prefetch (GC40 BOOM, cycles)\n";
  Printf.printf "%-16s %12s %12s %10s\n" "benchmark" "no prefetch" "prefetch" "speedup";
  List.iter
    (fun name ->
      let off = Workloads.Embench.run ~config:Uarch.Config.gc40_boom name in
      let on =
        Workloads.Embench.run
          ~config:{ Uarch.Config.gc40_boom with Uarch.Config.l1d_prefetch = true }
          name
      in
      Printf.printf "%-16s %12d %12d %9.2fx\n" name off.Uarch.Core.r_cycles
        on.Uarch.Core.r_cycles
        (float_of_int off.Uarch.Core.r_cycles /. float_of_int on.Uarch.Core.r_cycles))
    [ "matmult-int"; "wikisort"; "edn"; "nbody" ]
