(* Ablation: the DES platform model vs host cycles *measured* on the
   generated FAME-1 hardware.  The same two-partition design (Fig. 2's
   register+adder halves, exact-mode channels) is built as real LI-BDN
   control hardware and executed on the host clock; its measured
   host-cycles-per-target-cycle (FMR) is converted to a simulation rate
   and set against the DES model configured with the same link latency
   and bitstream frequency. *)

open Firrtl

let half_module name init =
  let b = Builder.create name in
  let a_src = Builder.input b "a_src" 8 in
  let a_snk = Builder.input b "a_snk" 8 in
  let x = Builder.reg b ~init "x" 8 in
  Builder.reg_next b "x" a_snk;
  Builder.output b "d_src" 8;
  Builder.connect b "d_src" x;
  Builder.output b "d_snk" 8;
  Builder.connect b "d_snk" Dsl.(a_src +: x);
  Builder.finish b

let chan name ports = { Libdn.Channel.name; ports }

let host_circuit ~latency =
  let mk name init =
    let flat = Flatten.flatten (Flatten.to_circuit (half_module name init)) in
    Goldengate.Fame1_rtl.wrap ~name:(name ^ "_host") ~flat
      ~ins:[ chan "in_src" [ ("a_src", 8) ]; chan "in_snk" [ ("a_snk", 8) ] ]
      ~outs:[ chan "out_src" [ ("d_src", 8) ]; chan "out_snk" [ ("d_snk", 8) ] ]
      ()
  in
  let w1, t1 = mk "half1" 1 in
  let w2, t2 = mk "half2" 2 in
  let b = Builder.create "host_top" in
  let _ = Builder.inst b "w1" w1.Ast.name in
  let _ = Builder.inst b "w2" w2.Ast.name in
  let wire src dst =
    Goldengate.Fame1_rtl.link b ~latency ~src:(src, "out_src") ~dst:(dst, "in_src")
      ~ports:[ ("d_src", "a_src", 8) ];
    Goldengate.Fame1_rtl.link b ~latency ~src:(src, "out_snk") ~dst:(dst, "in_snk")
      ~ports:[ ("d_snk", "a_snk", 8) ]
  in
  wire "w1" "w2";
  wire "w2" "w1";
  Builder.connect_in b "w1" "cycle_limit" (Dsl.lit ~width:32 0x3FFFFFFF);
  Builder.connect_in b "w2" "cycle_limit" (Dsl.lit ~width:32 0x3FFFFFFF);
  Builder.output b "cycles1" 32;
  Builder.connect b "cycles1" (Builder.of_inst "w1" "target_cycles");
  { Ast.cname = "host"; main = "host_top"; modules = [ t1; w1; t2; w2; Builder.finish b ] }

let measured_fmr ~latency =
  let sim = Rtlsim.Sim.of_circuit (host_circuit ~latency) in
  let target = 400 in
  let host = ref 0 in
  Rtlsim.Sim.eval_comb sim;
  while Rtlsim.Sim.get sim "cycles1" < target && !host < 1_000_000 do
    Rtlsim.Sim.step sim;
    Rtlsim.Sim.eval_comb sim;
    incr host
  done;
  float_of_int !host /. float_of_int target

let run () =
  Printf.printf
    "\nAblation: generated FAME-1 hardware vs the platform model's host-cycle accounting\n";
  Printf.printf "  (exact mode, 2 FPGAs, 8-bit channels; FMR = host cycles per target cycle)\n";
  Printf.printf "%-14s %13s %13s\n" "link latency" "measured FMR" "model FMR";
  List.iter
    (fun latency ->
      let fmr = measured_fmr ~latency in
      (* The model's host-cycle account for one exact-mode target cycle:
         a step plus two serialized crossings, each paying sender and
         receiver (de)serialization around the link latency. *)
      let ser = Platform.Perf.ser_cycles 8 in
      let model =
        float_of_int (Platform.Perf.step_overhead_cycles + 1 + (2 * ((2 * ser) + latency)))
      in
      Printf.printf "%-14d %13.1f %13.1f\n" latency fmr model)
    [ 0; 2; 5; 10 ];
  (* Whole-plan hardware: the FireRipper-compiled Kite SoC as generated
     LI-BDN hardware. *)
  let plan mode =
    Fireripper.Compile.compile
      ~config:
        {
          Fireripper.Spec.default_config with
          Fireripper.Spec.mode;
          Fireripper.Spec.selection = Fireripper.Spec.Instances [ [ "tile" ] ];
        }
      (Socgen.Soc.single_core_soc ~mem_latency:1 ())
  in
  Printf.printf "  whole-plan hardware FMR (Kite SoC, tile partitioned out):
";
  List.iter
    (fun (label, mode) ->
      Printf.printf "    %-6s" label;
      List.iter
        (fun latency ->
          Printf.printf "  L=%d: %5.1f" latency
            (Fireripper.Hw.fmr ~latency ~target_cycles:300 (plan mode)))
        [ 0; 4; 8 ];
      print_newline ())
    [ ("exact", Fireripper.Spec.Exact); ("fast", Fireripper.Spec.Fast) ];
  let slope a b = (measured_fmr ~latency:b -. measured_fmr ~latency:a) /. float_of_int (b - a) in
  Printf.printf
    "  marginal cost: %.2f host cycles per latency cycle (exact mode's two-crossing\n\
    \  signature; the model's constant offset is its Aurora serdes pipeline, which\n\
    \  this 8-bit demo hardware does not instantiate)\n"
    (slope 2 10)
