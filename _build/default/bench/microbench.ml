(* Bechamel microbenchmarks of the core engines, plus the levelization
   ablation: how much does one-pass levelized evaluation buy over naive
   fixpoint sweeps?  One Test.make per engine. *)

open Bechamel
open Toolkit

let kite_sim () =
  let sim = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ()) in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data:[]
    (Socgen.Kite_isa.fib_program ~n:24 ~dst:60);
  sim

let test_rtlsim_step =
  let sim = kite_sim () in
  Test.make ~name:"rtlsim: kite SoC step" (Staged.stage (fun () -> Rtlsim.Sim.step sim))

(* The levelization ablation runs on a deep-combinational, always-active
   design (the split-core datapath), and must re-step between
   evaluations — otherwise the naive fixpoint converges instantly on
   already-settled values. *)
let ablation_sim () =
  let p =
    { Socgen.Bigcore.tiny with Socgen.Bigcore.slots = 8; exec_ways = 8; chain_depth = 10 }
  in
  Rtlsim.Sim.of_circuit (Socgen.Bigcore.circuit ~p ())

let test_rtlsim_levelized =
  let sim = ablation_sim () in
  Test.make ~name:"bigcore step: levelized eval"
    (Staged.stage (fun () ->
         Rtlsim.Sim.eval_comb sim;
         Rtlsim.Sim.step_seq sim))

let test_rtlsim_fixpoint =
  let sim = ablation_sim () in
  Test.make ~name:"bigcore step: naive fixpoint (ablation)"
    (Staged.stage (fun () ->
         Rtlsim.Sim.eval_comb_fixpoint sim;
         Rtlsim.Sim.step_seq sim))

let test_libdn_cycle =
  let circuit = Socgen.Soc.single_core_soc () in
  let config =
    {
      Fireripper.Spec.default_config with
      Fireripper.Spec.selection = Fireripper.Spec.Instances [ [ "tile" ] ];
    }
  in
  let plan = Fireripper.Compile.compile ~config circuit in
  let h = Fireripper.Runtime.instantiate plan in
  let target = ref 0 in
  Test.make ~name:"libdn: partitioned target cycle"
    (Staged.stage (fun () ->
         incr target;
         Fireripper.Runtime.run h ~cycles:!target))

let test_compile =
  Test.make ~name:"fireripper: compile kite SoC plan"
    (Staged.stage (fun () ->
         ignore
           (Fireripper.Compile.compile
              ~config:
                {
                  Fireripper.Spec.default_config with
                  Fireripper.Spec.selection = Fireripper.Spec.Instances [ [ "tile" ] ];
                }
              (Socgen.Soc.single_core_soc ()))))

let test_flatten =
  let circuit = Socgen.Ring_noc.ring_soc ~n_tiles:8 () in
  Test.make ~name:"firrtl: flatten 8-tile ring"
    (Staged.stage (fun () -> ignore (Firrtl.Flatten.flatten circuit)))

let test_des =
  Test.make ~name:"des: 1000 chained events"
    (Staged.stage (fun () ->
         let eng = Des.Engine.create () in
         let rec chain n = if n > 0 then Des.Engine.schedule eng ~delay:10 (fun () -> chain (n - 1)) in
         chain 1000;
         Des.Engine.run eng))

let test_perf_model =
  Test.make ~name:"platform: perf DES (2000 target cycles)"
    (Staged.stage (fun () ->
         ignore
           (Platform.Perf.rate
              (Platform.Perf.two_fpga_spec ~mode:Fireripper.Spec.Fast ~bits:512
                 ~freq_mhz:90. ~transport:Platform.Transport.Qsfp))))

let test_kite5_step =
  let sim = Rtlsim.Sim.of_circuit (Socgen.Kite5_core.soc ()) in
  Socgen.Kite5_core.load_program sim ~data:[]
    (Socgen.Kite_isa.fib_program ~n:24 ~dst:60);
  Test.make ~name:"rtlsim: pipelined-core SoC step"
    (Staged.stage (fun () -> Rtlsim.Sim.step sim))

let test_dram_step =
  let sim = Rtlsim.Sim.of_circuit (Socgen.Dram.dram_soc ()) in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data:[]
    (Socgen.Kite_isa.fib_program ~n:24 ~dst:60);
  Test.make ~name:"rtlsim: DRAM-backed SoC step"
    (Staged.stage (fun () -> Rtlsim.Sim.step sim))

let test_snapshot_serialize =
  let config =
    {
      Fireripper.Spec.default_config with
      Fireripper.Spec.selection = Fireripper.Spec.Instances [ [ "tile" ] ];
    }
  in
  let h =
    Fireripper.Runtime.instantiate
      (Fireripper.Compile.compile ~config (Socgen.Soc.single_core_soc ()))
  in
  Fireripper.Runtime.run h ~cycles:100;
  Test.make ~name:"runtime: snapshot serialize (whole network)"
    (Staged.stage (fun () -> ignore (Fireripper.Runtime.save_to_string h)))

let test_remote_cycle =
  (* Per-target-cycle cost when the extracted unit lives in a worker
     process: what the pipe protocol costs relative to in-process
     scheduling (compare with "libdn: partitioned target cycle"). *)
  let worker =
    Filename.concat
      (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
      "fireaxe_worker.exe"
  in
  let config =
    {
      Fireripper.Spec.default_config with
      Fireripper.Spec.selection = Fireripper.Spec.Instances [ [ "tile" ] ];
    }
  in
  let plan = Fireripper.Compile.compile ~config (Socgen.Soc.single_core_soc ()) in
  let h, _conns = Fireripper.Runtime.instantiate_remote ~worker ~remote_units:[ 1 ] plan in
  let target = ref 0 in
  Test.make ~name:"libdn: partitioned target cycle (worker process)"
    (Staged.stage (fun () ->
         incr target;
         Fireripper.Runtime.run h ~cycles:!target))

let all_tests =
  [
    test_rtlsim_step;
    test_rtlsim_levelized;
    test_rtlsim_fixpoint;
    test_libdn_cycle;
    test_compile;
    test_flatten;
    test_des;
    test_perf_model;
    test_kite5_step;
    test_dram_step;
    test_snapshot_serialize;
    test_remote_cycle;
  ]

let run () =
  Printf.printf "\nMicrobenchmarks (Bechamel; ns per run, OLS on monotonic clock)\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-40s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n" name)
        analyzed)
    all_tests
