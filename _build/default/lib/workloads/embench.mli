(** Embench-like workload generator (paper Figures 7-8): per-benchmark
    instruction-mix profiles expanded into deterministic dynamic traces
    for the OoO timing model. *)

type profile = {
  name : string;
  instructions : int;
  ilp : int;  (** mean producer distance; higher = more parallelism *)
  branch_ratio : float;
  mispredict_rate : float;
  load_ratio : float;
  store_ratio : float;
  fp_ratio : float;
  mul_ratio : float;
  div_ratio : float;
  code_blocks : int;  (** instruction footprint in 64 B blocks *)
  data_blocks : int;  (** data footprint in 64 B blocks *)
  hot_data_blocks : int;  (** hot subset receiving most accesses *)
  streaming : float;  (** fraction of accesses walking sequential blocks *)
  loop_body : int;  (** instructions per inner-loop iteration *)
}

val default : profile
val profiles : profile list

(** Raises [Invalid_argument] for unknown names. *)
val find : string -> profile

(** Expands a profile into a deterministic dynamic trace. *)
val generate : profile -> Uarch.Trace.instr array

(** Runs a named benchmark on a core configuration. *)
val run : config:Uarch.Config.t -> string -> Uarch.Core.result

val all_names : string list

(** The subset plotted in the paper's CPI-stack figure. *)
val cpi_stack_selection : string list
