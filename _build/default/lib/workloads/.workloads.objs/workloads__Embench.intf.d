lib/workloads/embench.mli: Uarch
