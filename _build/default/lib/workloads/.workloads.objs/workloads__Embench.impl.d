lib/workloads/embench.ml: Array Char Des List String Uarch
