(* Embench-like workload generator (Figures 7 and 8).

   Each benchmark is characterized by an instruction-mix profile —
   instruction-level parallelism (dependency distances), branchiness and
   predictability, memory intensity and footprints, FP/multiply shares —
   and expanded into a deterministic dynamic trace.  The profiles are
   set so the benchmarks reproduce the paper's qualitative behaviour:
   nettle-aes is frontend/commit-bandwidth-bound (GC40's doubled width
   helps a lot), nbody is execution-latency-bound (wider cores barely
   help), nsichneu stresses the I-cache, matmult the D-cache. *)

open Uarch.Trace

type profile = {
  name : string;
  instructions : int;
  ilp : int;  (** mean producer distance; higher = more parallelism *)
  branch_ratio : float;
  mispredict_rate : float;
  load_ratio : float;
  store_ratio : float;
  fp_ratio : float;
  mul_ratio : float;
  div_ratio : float;
  code_blocks : int;  (** instruction footprint in 64 B blocks *)
  data_blocks : int;  (** data footprint in 64 B blocks *)
  hot_data_blocks : int;  (** hot subset receiving most accesses *)
  streaming : float;  (** fraction of accesses walking sequential blocks *)
  loop_body : int;  (** instructions per inner-loop iteration *)
}

let default =
  {
    name = "default";
    instructions = 30_000;
    ilp = 4;
    branch_ratio = 0.10;
    mispredict_rate = 0.03;
    load_ratio = 0.20;
    store_ratio = 0.08;
    fp_ratio = 0.0;
    mul_ratio = 0.02;
    div_ratio = 0.0;
    code_blocks = 16;
    data_blocks = 64;
    hot_data_blocks = 16;
    streaming = 0.0;
    loop_body = 200;
  }

let profiles =
  [
    { default with name = "aha-mont64"; ilp = 6; mul_ratio = 0.18; branch_ratio = 0.06; mispredict_rate = 0.01 };
    { default with name = "crc32"; ilp = 3; branch_ratio = 0.14; mispredict_rate = 0.01; load_ratio = 0.22; loop_body = 24 };
    { default with name = "cubic"; ilp = 3; fp_ratio = 0.48; div_ratio = 0.02; load_ratio = 0.15; branch_ratio = 0.05 };
    { default with name = "edn"; ilp = 8; mul_ratio = 0.12; load_ratio = 0.34; store_ratio = 0.12; data_blocks = 256; hot_data_blocks = 64; streaming = 0.7 };
    { default with name = "matmult-int"; ilp = 6; mul_ratio = 0.16; load_ratio = 0.36; store_ratio = 0.06; data_blocks = 1024; hot_data_blocks = 512; streaming = 0.65; loop_body = 48 };
    { default with name = "nbody"; ilp = 2; fp_ratio = 0.46; div_ratio = 0.015; load_ratio = 0.24; branch_ratio = 0.04; mispredict_rate = 0.01 };
    { default with name = "nettle-aes"; ilp = 30; branch_ratio = 0.03; mispredict_rate = 0.005; load_ratio = 0.18; code_blocks = 40; loop_body = 420 };
    { default with name = "nettle-sha256"; ilp = 9; branch_ratio = 0.03; mispredict_rate = 0.005; load_ratio = 0.18; loop_body = 320 };
    { default with name = "nsichneu"; ilp = 3; branch_ratio = 0.22; mispredict_rate = 0.07; code_blocks = 640; loop_body = 2600 };
    { default with name = "st"; ilp = 4; fp_ratio = 0.34; load_ratio = 0.26; store_ratio = 0.10 };
    { default with name = "huffbench"; ilp = 3; branch_ratio = 0.18; mispredict_rate = 0.05; load_ratio = 0.28; loop_body = 60; data_blocks = 512; hot_data_blocks = 96 };
    { default with name = "md5sum"; ilp = 7; branch_ratio = 0.04; load_ratio = 0.24; loop_body = 260 };
    { default with name = "minver"; ilp = 3; fp_ratio = 0.40; div_ratio = 0.03; load_ratio = 0.22; loop_body = 80 };
    { default with name = "picojpeg"; ilp = 5; mul_ratio = 0.10; branch_ratio = 0.12; mispredict_rate = 0.04; load_ratio = 0.30; code_blocks = 320; loop_body = 900; data_blocks = 384; hot_data_blocks = 128 };
    { default with name = "primecount"; ilp = 2; branch_ratio = 0.16; mispredict_rate = 0.02; div_ratio = 0.04; loop_body = 16 };
    { default with name = "qrduino"; ilp = 4; branch_ratio = 0.11; mispredict_rate = 0.03; load_ratio = 0.26; store_ratio = 0.12; data_blocks = 192; hot_data_blocks = 48 };
    { default with name = "sglib-combined"; ilp = 3; branch_ratio = 0.17; mispredict_rate = 0.06; load_ratio = 0.30; code_blocks = 256; loop_body = 1200; data_blocks = 768; hot_data_blocks = 256 };
    { default with name = "slre"; ilp = 3; branch_ratio = 0.20; mispredict_rate = 0.05; load_ratio = 0.24; code_blocks = 96; loop_body = 180 };
    { default with name = "statemate"; ilp = 2; branch_ratio = 0.26; mispredict_rate = 0.08; code_blocks = 420; loop_body = 1800 };
    { default with name = "ud"; ilp = 4; mul_ratio = 0.14; div_ratio = 0.02; load_ratio = 0.24; loop_body = 56 };
    { default with name = "wikisort"; ilp = 4; branch_ratio = 0.15; mispredict_rate = 0.06; load_ratio = 0.30; store_ratio = 0.14; data_blocks = 1024; hot_data_blocks = 384; streaming = 0.5; loop_body = 140 };
  ]

let find name =
  match List.find_opt (fun p -> p.name = name) profiles with
  | Some p -> p
  | None -> invalid_arg ("unknown Embench profile: " ^ name)

let hash_seed s =
  let h = ref 5381 in
  String.iter (fun c -> h := (!h * 33) + Char.code c) s;
  !h land 0xFFFFFF

(** Expands a profile into a deterministic dynamic trace. *)
let generate profile =
  let rng = Des.Stats.rng ~seed:(hash_seed profile.name) in
  let stream_ptr = ref 0 in
  Array.init profile.instructions (fun i ->
      let roll = float_of_int (Des.Stats.int rng 10_000) /. 10_000. in
      let op, fp_dest =
        let b = profile.branch_ratio in
        let l = b +. profile.load_ratio in
        let s = l +. profile.store_ratio in
        let f = s +. profile.fp_ratio in
        let m = f +. profile.mul_ratio in
        let d = m +. profile.div_ratio in
        if roll < b then (Branch, false)
        else if roll < l then (Load, false)
        else if roll < s then (Store, false)
        else if roll < f then (Fp, true)
        else if roll < m then (Int_mul, false)
        else if roll < d then (Int_div, false)
        else (Int_alu, false)
      in
      let dist () = 1 + Des.Stats.exponential rng (profile.ilp - 1) in
      let src1_dist = if op = Branch then dist () else dist () in
      let src2_dist = if Des.Stats.bernoulli rng 0.6 then dist () else 0 in
      let mispredicted = op = Branch && Des.Stats.bernoulli rng profile.mispredict_rate in
      (* Instruction stream: walk the loop body, shifting phase across
         outer iterations so large code footprints churn the I-cache. *)
      let pos = i mod profile.loop_body in
      let outer = i / profile.loop_body in
      let pc_block = ((pos / 16) + (outer * 7 mod max 1 (profile.code_blocks / 4) * 4)) mod profile.code_blocks in
      let addr_block =
        if op = Load || op = Store then
          if Des.Stats.bernoulli rng profile.streaming then begin
            (* Sequential walk over the data footprint. *)
            stream_ptr := (!stream_ptr + 1) mod profile.data_blocks;
            !stream_ptr
          end
          else if Des.Stats.bernoulli rng 0.85 then Des.Stats.int rng profile.hot_data_blocks
          else Des.Stats.int rng profile.data_blocks
        else -1
      in
      { op; src1_dist; src2_dist; mispredicted; pc_block; addr_block; fp_dest })

(** Runs a benchmark on a core configuration. *)
let run ~config name = Uarch.Core.run config (generate (find name))

let all_names = List.map (fun p -> p.name) profiles

(** The subset plotted in the paper's CPI-stack figure. *)
let cpi_stack_selection = [ "aha-mont64"; "matmult-int"; "nbody"; "nettle-aes"; "nsichneu" ]
