(* Fast-mode boundary repairs (Section III-A2, Fig. 3c).

   Fast-mode seeds one token per input channel, which injects one cycle
   of latency at the partition boundary.  Credit-based interfaces absorb
   that latency natively; ready-valid interfaces lose backpressure
   (Fig. 3b).  FireRipper therefore rewrites each annotated ready-valid
   bundle at the boundary:

   - on the ready-valid *source* side, the transmitted valid becomes
     [valid && ready] so a transaction is sent exactly once, in the
     cycle the source dequeues it;
   - on the ready-valid *sink* side, a small skid buffer absorbs the
     in-flight transactions, and the transmitted ready is asserted only
     while the buffer is nearly empty so the delayed backpressure can
     never overflow it.

   Both rewrites happen on the partition's main module in place; the
   rewritten design is itself wrapped in an LI-BDN, so fast-mode results
   remain cycle-exact with respect to the *modified* target RTL. *)

open Firrtl

let skid_depth = 4

(* Source side: gate the outgoing valid with the (one-cycle delayed)
   incoming ready. *)
let gate_valid main ~valid ~ready =
  Hierarchy.assert_fresh main (valid ^ "#raw");
  let raw = valid ^ "#raw" in
  let stmts =
    List.map
      (fun s ->
        match s with
        | Ast.Connect { dst; src } when dst = valid -> Ast.Connect { dst = raw; src }
        | s -> s)
      main.Ast.stmts
  in
  {
    main with
    Ast.comps = main.Ast.comps @ [ Ast.Wire { name = raw; width = 1 } ];
    stmts =
      stmts
      @ [ Ast.Connect { dst = valid; src = Dsl.(ref_ raw &: ref_ ready) } ];
  }

(* Sink side: a [skid_depth]-deep queue between the boundary and the
   original logic.  Transmitted ready is asserted while occupancy <= 1,
   which tolerates the one-cycle-delayed deassertion without loss. *)
let insert_skid main ~valid ~ready ~payload =
  let pre s = valid ^ "#q_" ^ s in
  List.iter
    (fun n -> Hierarchy.assert_fresh main (pre n))
    ([ "head"; "tail"; "occ"; "valid"; "inner_ready"; "enq"; "deq" ] @ payload);
  let q_valid = pre "valid" in
  let inner_ready = pre "inner_ready" in
  (* Reroute the original logic's view of the bundle through the queue. *)
  let rename n =
    if n = valid then q_valid else if List.mem n payload then pre n else n
  in
  let stmts =
    List.map
      (fun s ->
        match s with
        | Ast.Connect { dst; src } ->
          let src = Ast.map_refs rename src in
          if dst = ready then Ast.Connect { dst = inner_ready; src }
          else Ast.Connect { dst; src }
        | Ast.Reg_update { reg; next; enable } ->
          Ast.Reg_update
            {
              reg;
              next = Ast.map_refs rename next;
              enable = Option.map (Ast.map_refs rename) enable;
            }
        | Ast.Mem_write { mem; addr; data; enable } ->
          Ast.Mem_write
            {
              mem;
              addr = Ast.map_refs rename addr;
              data = Ast.map_refs rename data;
              enable = Ast.map_refs rename enable;
            })
      main.Ast.stmts
  in
  let payload_widths =
    List.map (fun p -> (p, (Ast.find_port main p).Ast.pwidth)) payload
  in
  let comps =
    main.Ast.comps
    @ [
        Ast.Reg { name = pre "head"; width = 2; init = 0 };
        Ast.Reg { name = pre "tail"; width = 2; init = 0 };
        Ast.Reg { name = pre "occ"; width = 3; init = 0 };
        Ast.Wire { name = q_valid; width = 1 };
        Ast.Wire { name = inner_ready; width = 1 };
        Ast.Wire { name = pre "enq"; width = 1 };
        Ast.Wire { name = pre "deq"; width = 1 };
      ]
    @ List.concat_map
        (fun (p, w) ->
          [
            Ast.Mem { name = pre (p ^ "_mem"); width = w; depth = skid_depth };
            Ast.Wire { name = pre p; width = w };
          ])
        payload_widths
  in
  let occ = Dsl.ref_ (pre "occ") in
  let head = Dsl.ref_ (pre "head") in
  let tail = Dsl.ref_ (pre "tail") in
  let enq = Dsl.ref_ (pre "enq") in
  let deq = Dsl.ref_ (pre "deq") in
  (* Combinational bypass: with an empty queue an arriving transaction is
     presented to the inner logic in the same cycle, and only stored when
     the inner side does not take it.  This keeps the steady-state cost
     of fast-mode at exactly the one injected link cycle per direction. *)
  let empty = Dsl.(occ ==: lit ~width:3 0) in
  let new_stmts =
    [
      Ast.Connect
        {
          dst = pre "enq";
          src = Dsl.(ref_ valid &: not_ (empty &: ref_ inner_ready));
        };
      Ast.Connect { dst = pre "deq"; src = Dsl.(ref_ inner_ready &: not_ empty) };
      Ast.Connect { dst = q_valid; src = Dsl.(not_ empty |: ref_ valid) };
      Ast.Connect { dst = ready; src = Dsl.(occ <=: lit ~width:3 1) };
      Ast.Reg_update { reg = pre "tail"; next = Dsl.(tail +: lit ~width:2 1); enable = Some enq };
      Ast.Reg_update { reg = pre "head"; next = Dsl.(head +: lit ~width:2 1); enable = Some deq };
      Ast.Reg_update { reg = pre "occ"; next = Dsl.(occ +: enq -: deq); enable = None };
    ]
    @ List.concat_map
        (fun (p, _) ->
          [
            Ast.Mem_write
              { mem = pre (p ^ "_mem"); addr = tail; data = Dsl.ref_ p; enable = enq };
            Ast.Connect
              {
                dst = pre p;
                src = Dsl.(mux empty (ref_ p) (read (pre (p ^ "_mem")) head));
              };
          ])
        payload_widths
  in
  { main with Ast.comps = comps; stmts = stmts @ new_stmts }

let flip_role = function
  | Ast.Rv_source -> Ast.Rv_sink
  | Ast.Rv_sink -> Ast.Rv_source

(** Applies the fast-mode rewrites for one ready-valid annotation to a
    partition's main module.  [flip] selects the peer's perspective:
    annotations state the extracted module's role, so the partition
    containing that module applies them as-is and the partition on the
    other side of the boundary applies them flipped. *)
let apply_annotation ?(flip = false) main annot =
  match annot with
  | Ast.Noc_router _ -> main
  | Ast.Ready_valid { role; valid; ready; payload } ->
    let role = if flip then flip_role role else role in
    let have p = List.exists (fun (q : Ast.port) -> q.Ast.pname = p) main.Ast.ports in
    if not (List.for_all have (valid :: ready :: payload)) then main
    else (
      match role with
      | Ast.Rv_source -> gate_valid main ~valid ~ready
      | Ast.Rv_sink -> insert_skid main ~valid ~ready ~payload)

(** Rewrites a partition circuit's main module for every annotation. *)
let apply_circuit ?(flip = false) circuit annots =
  let main = Ast.main_module circuit in
  let main' = List.fold_left (fun m a -> apply_annotation ~flip m a) main annots in
  Hierarchy.replace_module circuit main'
