(** Quick feedback about a partition plan: unit inventory, interface
    widths, combinational chain lengths and expected link crossings —
    the fast pre-build insight the paper emphasizes. *)

type t = {
  r_mode : Spec.mode;
  r_units : (string * int) list;  (** unit name, boundary port count *)
  r_pair_widths : ((int * int) * int) list;  (** bits between unit pairs *)
  r_total_width : int;
  r_max_chain : int;
  r_crossings_per_cycle : int;
      (** link crossings (each direction) needed to simulate one cycle *)
  r_channels : (string * string * int) list;  (** src unit, channel, bits *)
}

val build : Plan.t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
