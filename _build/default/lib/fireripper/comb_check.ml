(* Cross-partition combinational chain-length analysis (Section III-A1).

   A boundary output port with no combinational input dependency has
   chain length 1 (a "source" port).  A sink output port's chain length
   is 1 + the maximum chain length of the boundary output ports that
   drive the inputs it depends on, following nets across partitions.
   Exact-mode compilation requires every chain length <= 2: longer
   chains would need additional link crossings per simulated cycle, so
   FireRipper refuses them and reports the offending port chain.  A
   combinational cycle through the boundary is a hard error in every
   mode. *)

open Firrtl

type result = {
  max_chain : int;
  longest : (int * string) list;  (** the (unit, port) chain, output ports *)
}

(** Computes chain lengths of every boundary output port.  Raises
    {!Spec.Compile_error} on a cross-partition combinational cycle. *)
let analyze (plan : Plan.t) =
  (* Driver of each (unit, input port): the net source feeding it. *)
  let driver = Hashtbl.create 64 in
  List.iter
    (fun (net : Plan.net) ->
      List.iter (fun dst -> Hashtbl.replace driver dst net.Plan.n_src) net.Plan.n_dsts)
    plan.Plan.p_nets;
  let memo = Hashtbl.create 64 in
  let rec chain visiting (u, port) =
    match Hashtbl.find_opt memo (u, port) with
    | Some r -> r
    | None ->
      if List.mem (u, port) visiting then
        Spec.compile_error
          "combinational cycle through the partition boundary: %s"
          (String.concat " <- "
             (List.map (fun (u, p) -> Printf.sprintf "%d:%s" u p)
                (((u, port) :: visiting) |> List.rev)));
      let deps =
        Analysis.comb_inputs (Lazy.force plan.Plan.p_units.(u).Plan.u_analysis) port
      in
      let r =
        List.fold_left
          (fun (best_len, best_path) inp ->
            match Hashtbl.find_opt driver (u, inp) with
            | None -> (best_len, best_path) (* external input: testbench-driven *)
            | Some src ->
              let len, path = chain ((u, port) :: visiting) src in
              if len + 1 > best_len then (len + 1, (u, port) :: path)
              else (best_len, best_path))
          (1, [ (u, port) ])
          deps
      in
      Hashtbl.replace memo (u, port) r;
      r
  in
  let outputs =
    List.map (fun (net : Plan.net) -> net.Plan.n_src) plan.Plan.p_nets
    |> List.sort_uniq compare
  in
  List.fold_left
    (fun acc src ->
      let len, path = chain [] src in
      if len > acc.max_chain then { max_chain = len; longest = path } else acc)
    { max_chain = 0; longest = [] }
    outputs

let pp_chain plan ppf chain =
  Fmt.pf ppf "%a"
    Fmt.(list ~sep:(any " <- ") string)
    (List.map
       (fun (u, p) -> Printf.sprintf "%s:%s" plan.Plan.p_units.(u).Plan.u_name p)
       chain)

(** Enforces the exact-mode chain bound, mirroring the paper: compilation
    terminates "while providing the user with the chain of combinational
    ports that caused the termination". *)
let enforce plan =
  let r = analyze plan in
  if r.max_chain > 2 then
    Spec.compile_error
      "exact-mode partition boundary has a combinational dependency chain of length %d \
       (max 2): %s"
      r.max_chain
      (Fmt.str "%a" (pp_chain plan) r.longest)
