(** Module selection: resolves a user selection into instance paths per
    partition.  NoC-partition-mode (Fig. 4) locates router instances by
    their [Noc_router] annotations and absorbs the sibling modules
    hanging off each selected router group (protocol converters, tiles)
    to a fixpoint, never crossing a router outside the group. *)

(** Instance paths of all router-annotated modules, keyed by index. *)
val router_paths : Firrtl.Ast.circuit -> (int, string list) Hashtbl.t

(** Expands one group of router indices into instance paths. *)
val expand_router_group :
  Firrtl.Ast.circuit -> (int, string list) Hashtbl.t -> int list -> string list list

(** Resolves a selection to instance-path groups (one per partition). *)
val resolve : Firrtl.Ast.circuit -> Spec.selection -> string list list list
