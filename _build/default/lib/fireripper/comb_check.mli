(** Cross-partition combinational chain-length analysis (§III-A1).
    Exact-mode requires chains of length <= 2; longer chains are
    refused with the offending port chain, mirroring the paper. *)

type result = {
  max_chain : int;
  longest : (int * string) list;  (** the (unit, port) output-port chain *)
}

(** Chain lengths of every boundary output port; raises
    {!Spec.Compile_error} on a cross-partition combinational cycle. *)
val analyze : Plan.t -> result

val pp_chain : Plan.t -> Format.formatter -> (int * string) list -> unit

(** Enforces the exact-mode bound (<= 2), naming the chain on failure. *)
val enforce : Plan.t -> unit
