(* AutoCounter-style statistics bridge: FireSim's out-of-band profiling
   facility periodically reads target counters into the host without
   perturbing the target.  Here the host side samples named (flattened)
   signals of a running partitioned simulation every [every] target
   cycles; each signal is resolved to its owning unit once, and reads go
   straight to that unit's RTL state, so sampling adds no tokens to the
   LI-BDN network. *)

type sample = {
  s_cycle : int;
  s_values : (string * int) list;  (** in the order [signals] was given *)
}

let collect handle ~signals ~every ~cycles =
  if every <= 0 then invalid_arg "Counters.collect: every must be positive";
  let resolved =
    List.map
      (fun s ->
        let u = Runtime.locate handle s in
        (s, u))
      signals
  in
  let take cycle =
    {
      s_cycle = cycle;
      s_values =
        List.map (fun (s, u) -> (s, Rtlsim.Sim.get (Runtime.sim_of handle u) s)) resolved;
    }
  in
  (* [Runtime.run] targets absolute cycle counts: advance [cycles] past
     wherever the handle already is (it may have run, or been resumed
     from a snapshot); samples report absolute target cycles. *)
  let base = Runtime.cycle handle 0 in
  let rec go done_ acc =
    if done_ >= cycles then List.rev acc
    else begin
      let done_ = min (done_ + every) cycles in
      Runtime.run handle ~cycles:(base + done_);
      go done_ (take (base + done_) :: acc)
    end
  in
  go 0 []

let to_csv samples =
  let buf = Buffer.create 256 in
  (match samples with
  | [] -> ()
  | first :: _ ->
    Buffer.add_string buf "cycle";
    List.iter (fun (s, _) -> Buffer.add_string buf ("," ^ s)) first.s_values;
    Buffer.add_char buf '\n';
    List.iter
      (fun smp ->
        Buffer.add_string buf (string_of_int smp.s_cycle);
        List.iter (fun (_, v) -> Buffer.add_string buf ("," ^ string_of_int v)) smp.s_values;
        Buffer.add_char buf '\n')
      samples);
  Buffer.contents buf

(* Rates of change between consecutive samples: (cycle, per-signal delta
   per kilocycle), the form AutoCounter plots (e.g. IPC, hit rates). *)
let rates samples =
  let rec go prev = function
    | [] -> []
    | smp :: rest ->
      let dt = smp.s_cycle - prev.s_cycle in
      let row =
        List.map2
          (fun (s, v) (_, pv) -> (s, float_of_int (v - pv) *. 1000.0 /. float_of_int dt))
          smp.s_values prev.s_values
      in
      (smp.s_cycle, row) :: go smp rest
  in
  match samples with [] -> [] | first :: rest -> go first rest
