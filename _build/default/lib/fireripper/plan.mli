(** Partition plans — the output of FireRipper's compile pipeline: one
    circuit per unit (unit 0 is the base partition) plus the boundary
    nets, with the LI-BDN channelization derived per mode. *)

open Firrtl

type unit_part = {
  u_index : int;
  u_name : string;
  u_circuit : Ast.circuit;
  u_flat : Ast.module_def Lazy.t;
  u_analysis : Analysis.t Lazy.t;
}

val make_unit : int -> string -> Ast.circuit -> unit_part

type net = {
  n_src : int * string;  (** (unit, output port) *)
  n_dsts : (int * string) list;  (** (unit, input port) fan-out *)
  n_width : int;
}

type t = {
  p_mode : Spec.mode;
  p_units : unit_part array;
  p_nets : net list;
  p_original : Ast.circuit;
}

type channel_class =
  | Class_source  (** chain depth 1: no combinational input dependency *)
  | Class_sink  (** chain depth 2 *)
  | Class_level of int  (** depth >= 3 (allow_long_chains only) *)
  | Class_mono  (** fast-mode: one channel per direction *)

type channel_pair = {
  cp_src_unit : int;
  cp_dst_unit : int;
  cp_class : channel_class;
  cp_out : Libdn.Channel.spec;  (** named ports on the source unit *)
  cp_in : Libdn.Channel.spec;  (** positionally matching ports on dst *)
}

(** Cross-partition combinational chain depth per net source; raises on
    a combinational cycle through the boundary. *)
val chain_depths : t -> (int * string, int) Hashtbl.t

(** Every directed channel between unit pairs: exact-mode splits ports
    by chain-depth level (source/sink for depths 1/2, generalized
    beyond); fast-mode aggregates per direction. *)
val channel_pairs : t -> channel_pair list

(** Boundary bits per unordered unit pair (the interface-width knob). *)
val pair_widths : t -> ((int * int) * int) list

val total_boundary_width : t -> int
val n_units : t -> int
