(* Automated partitioning (§VIII-B, "Further Automating the Partitioning
   Flow").  The paper leaves this as future work: FireRipper should make
   per-FPGA resource estimates from the RTL-level representation and
   search for boundaries amenable to partitioning.  This module
   implements that flow:

   - every top-level instance of the main module is sized by a
     caller-supplied estimator (the [Fireaxe] facade plugs in the
     RTL-level LUT estimator from [Platform.Resource]);
   - connectivity between instances is weighted by the bit width of the
     wires joining them (the partition-interface width a cut there would
     create);
   - a greedy grower assigns instances to [n_fpgas] bins, biggest first,
     preferring the bin with the strongest existing connectivity (to
     keep cuts narrow) among those with remaining LUT capacity.

   Bin 0 is the base partition (it also keeps the main module's own
   logic); bins 1.. become extracted partitions, so the result plugs
   directly into {!Compile.compile} as an [Instances] selection. *)

open Firrtl

type estimator = {
  est_luts : Ast.circuit -> string -> int;
      (** LUT estimate for one module (by name) of the circuit *)
  est_capacity : int;  (** usable LUTs per FPGA *)
}

(* Boundary bits between each pair of top-level instances. *)
let pair_widths circuit =
  let main = Ast.main_module circuit in
  let env = Ast.module_env circuit main in
  let widths = Hashtbl.create 64 in
  let add a b w =
    if a <> b then begin
      let key = (min a b, max a b) in
      Hashtbl.replace widths key (w + Option.value ~default:0 (Hashtbl.find_opt widths key))
    end
  in
  List.iter
    (fun s ->
      match s with
      | Ast.Connect { dst; src } -> (
        match Ast.split_instance_ref dst with
        | Some (di, _) ->
          let w = env.Ast.width_of_name dst in
          List.iter
            (fun r ->
              match Ast.split_instance_ref r with
              | Some (si, _) -> add di si w
              | None -> ())
            (Ast.expr_refs src)
        | None -> ())
      | Ast.Reg_update _ | Ast.Mem_write _ -> ())
    main.Ast.stmts;
  widths

type assignment = {
  a_groups : string list array;  (** instance names per bin; bin 0 = base *)
  a_luts : int array;  (** estimated LUTs per bin *)
  a_cut_bits : int;  (** total boundary bits the assignment creates *)
}

(** Greedily assigns the main module's instances to [n_fpgas] bins.
    Raises {!Spec.Compile_error} when even the greedy packing cannot fit
    within per-FPGA capacity. *)
let assign ~estimator ~n_fpgas circuit =
  if n_fpgas < 2 then Spec.compile_error "auto-partitioning needs at least 2 FPGAs";
  let main = Ast.main_module circuit in
  let insts = Hierarchy.instances main in
  let sizes =
    List.map (fun (name, of_module) -> (name, estimator.est_luts circuit of_module)) insts
  in
  let widths = pair_widths circuit in
  let width_between a b =
    Option.value ~default:0 (Hashtbl.find_opt widths (min a b, max a b))
  in
  let bins = Array.make n_fpgas [] in
  let loads = Array.make n_fpgas 0 in
  (* Biggest instances first; ties broken by name for determinism. *)
  let ordered = List.sort (fun (a, sa) (b, sb) -> compare (-sa, a) (-sb, b)) sizes in
  List.iter
    (fun (name, size) ->
      let score bin =
        let connectivity =
          List.fold_left (fun acc other -> acc + width_between name other) 0 bins.(bin)
        in
        let fits = loads.(bin) + size <= estimator.est_capacity in
        (* Prefer fitting bins; among them, strongest connectivity to
           keep cuts narrow, then lightest load. *)
        ((if fits then 1 else 0), connectivity, -loads.(bin))
      in
      let best = ref 0 in
      for bin = 1 to n_fpgas - 1 do
        if score bin > score !best then best := bin
      done;
      if loads.(!best) + size > estimator.est_capacity then
        Spec.compile_error
          "auto-partitioning: instance %s (%d LUTs) does not fit on any of %d FPGAs \
           (capacity %d LUTs each)"
          name size n_fpgas estimator.est_capacity;
      bins.(!best) <- name :: bins.(!best);
      loads.(!best) <- loads.(!best) + size)
    ordered;
  (* Cut size: width between instances landing in different bins. *)
  let bin_of = Hashtbl.create 16 in
  Array.iteri (fun b names -> List.iter (fun n -> Hashtbl.replace bin_of n b) names) bins;
  let cut =
    Hashtbl.fold
      (fun (a, b) w acc ->
        match (Hashtbl.find_opt bin_of a, Hashtbl.find_opt bin_of b) with
        | Some ba, Some bb when ba <> bb -> acc + w
        | _ -> acc)
      widths 0
  in
  { a_groups = Array.map List.rev bins; a_luts = loads; a_cut_bits = cut }

(** Converts an assignment to a FireRipper selection: bins 1.. become
    extracted partitions (bin 0 stays with the main logic as the base);
    empty bins are dropped. *)
let to_selection assignment =
  Spec.Instances
    (Array.to_list assignment.a_groups |> List.tl |> List.filter (fun g -> g <> []))

let pp_assignment ppf a =
  Array.iteri
    (fun bin names ->
      Fmt.pf ppf "  FPGA %d (%d LUTs est.): %a@." bin a.a_luts.(bin)
        Fmt.(list ~sep:comma string)
        names)
    a.a_groups;
  Fmt.pf ppf "  total cut width: %d bits@." a.a_cut_bits
