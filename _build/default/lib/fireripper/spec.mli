(** User-facing partitioning specification (paper Section III): the
    partitioning mode and the module selection. *)

exception Compile_error of string

(** Raises {!Compile_error} with a formatted message. *)
val compile_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

type mode =
  | Exact  (** Cycle-exact; combinational boundary chains bounded by 2. *)
  | Fast
      (** One token crossing per cycle via seed tokens; requires
          latency-insensitive boundaries, repaired with skid buffers and
          valid-gating on annotated ready-valid bundles. *)

val mode_to_string : mode -> string

type selection =
  | Instances of string list list
      (** One extracted partition per inner list of dotted instance
          paths. *)
  | Noc_routers of int list list
      (** One extracted partition per inner list of router-node indices
          (NoC-partition-mode, Fig. 4). *)

type config = {
  mode : mode;
  selection : selection;
  allow_long_chains : bool;
      (** Escape hatch: lift the exact-mode chain-length-2 bound.  The
          compiler then channelizes by chain-depth level, which stays
          deadlock-free for any acyclic depth at the cost of more link
          crossings per cycle. *)
}

val default_config : config

(** Splits a dotted instance path ("a.b.c") into components. *)
val parse_path : string -> string list
