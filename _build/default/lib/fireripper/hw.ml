(* Hardware instantiation of a partition plan: every unit is wrapped in
   generated FAME-1 control logic (token queues, output FSMs, fireFSM,
   clock-gated target — [Goldengate.Fame1_rtl]) and the plan's channel
   pairs become credit-flow links with a configurable host-cycle
   latency.  The resulting host-level circuit runs under the ordinary
   RTL simulator on the host clock, which is as close as a simulation
   substrate gets to what FireAxe flashes onto FPGAs: target-cycle
   exactness comes out of actual hardware semantics, and host-cycles-
   per-target-cycle (FMR) is measured, not modeled. *)

open Firrtl

let unit_inst k = Printf.sprintf "u%d" k

(** Flat signal name of [name] from unit [k] inside the host simulation
    (wrapper instance, then the gated target instance). *)
let host_signal ~unit name = Printf.sprintf "%s$target$%s" (unit_inst unit) name

(** Builds the host-level circuit for a plan.  [latency] is the link
    latency in host cycles (uniform across links). *)
let build ?(latency = 0) (plan : Plan.t) =
  let pairs = Plan.channel_pairs plan in
  let seeded = plan.Plan.p_mode = Spec.Fast in
  let wrappers =
    Array.map
      (fun (u : Plan.unit_part) ->
        let ins =
          List.filter_map
            (fun cp ->
              if cp.Plan.cp_dst_unit = u.Plan.u_index then Some cp.Plan.cp_in else None)
            pairs
        in
        let outs =
          List.filter_map
            (fun cp ->
              if cp.Plan.cp_src_unit = u.Plan.u_index then Some cp.Plan.cp_out else None)
            pairs
        in
        Goldengate.Fame1_rtl.wrap
          ~name:(Printf.sprintf "host_unit%d" u.Plan.u_index)
          ~flat:(Lazy.force u.Plan.u_flat) ~ins ~outs ~seeded ())
      plan.Plan.p_units
  in
  let b = Builder.create "host_top" in
  Array.iteri (fun k (w, _) -> ignore (Builder.inst b (unit_inst k) w.Ast.name)) wrappers;
  List.iter
    (fun cp ->
      let ports =
        List.map2
          (fun (sp, w) (dp, _) -> (sp, dp, w))
          cp.Plan.cp_out.Libdn.Channel.ports cp.Plan.cp_in.Libdn.Channel.ports
      in
      Goldengate.Fame1_rtl.link b ~latency
        ~src:(unit_inst cp.Plan.cp_src_unit, cp.Plan.cp_out.Libdn.Channel.name)
        ~dst:(unit_inst cp.Plan.cp_dst_unit, cp.Plan.cp_in.Libdn.Channel.name)
        ~ports)
    pairs;
  (* Tie off external target inputs and expose the per-unit target-cycle
     counters. *)
  Array.iteri
    (fun k (w, _) ->
      List.iter
        (fun (p : Ast.port) ->
          let is_ext =
            String.length p.Ast.pname >= 4 && String.sub p.Ast.pname 0 4 = "ext$"
          in
          if p.Ast.pdir = Ast.Input && is_ext then
            Builder.connect_in b (unit_inst k) p.Ast.pname (Dsl.lit ~width:p.Ast.pwidth 0))
        w.Ast.ports;
      Builder.output b (Printf.sprintf "cycles%d" k) 32;
      Builder.connect b
        (Printf.sprintf "cycles%d" k)
        (Builder.of_inst (unit_inst k) "target_cycles"))
    wrappers;
  (* One top-level cycle limit for all units. *)
  let limit = Builder.input b "cycle_limit" 32 in
  Array.iteri (fun k _ -> Builder.connect_in b (unit_inst k) "cycle_limit" limit) wrappers;
  let modules =
    Array.to_list wrappers |> List.concat_map (fun (w, t) -> [ t; w ])
  in
  {
    Ast.cname = plan.Plan.p_original.Ast.cname ^ "$host";
    main = "host_top";
    modules = modules @ [ Builder.finish b ];
  }

type run = {
  hr_sim : Rtlsim.Sim.t;
  hr_host_cycles : int;
  hr_target_cycles : int;
}

(** Simulates the host circuit until unit 0 completes [target_cycles]
    (or [pred] holds, when given); returns the simulation for state
    inspection plus the measured host/target cycle counts. *)
let run ?(latency = 0) ?(max_host_cycles = 10_000_000) ?pred ~target_cycles plan ~setup =
  let sim = Rtlsim.Sim.of_circuit (build ~latency plan) in
  Rtlsim.Sim.set_input sim "cycle_limit" target_cycles;
  setup sim;
  let host = ref 0 in
  let n_units = Array.length plan.Plan.p_units in
  Rtlsim.Sim.eval_comb sim;
  let done_ () =
    (* Every unit must complete the target cycle count: partitions can
       transiently lag one another by a cycle. *)
    (let all = ref true in
     for k = 0 to n_units - 1 do
       if Rtlsim.Sim.get sim (Printf.sprintf "cycles%d" k) < target_cycles then all := false
     done;
     !all)
    || match pred with Some p -> p sim | None -> false
  in
  while (not (done_ ())) && !host < max_host_cycles do
    Rtlsim.Sim.step sim;
    Rtlsim.Sim.eval_comb sim;
    incr host
  done;
  if !host >= max_host_cycles then
    Spec.compile_error "hardware run exceeded %d host cycles" max_host_cycles;
  { hr_sim = sim; hr_host_cycles = !host; hr_target_cycles = Rtlsim.Sim.get sim "cycles0" }

(** Measured host-cycles-per-target-cycle of the plan's hardware. *)
let fmr ?(latency = 0) ?(target_cycles = 500) plan =
  let r = run ~latency ~target_cycles plan ~setup:(fun _ -> ()) in
  float_of_int r.hr_host_cycles /. float_of_int (max 1 r.hr_target_cycles)
