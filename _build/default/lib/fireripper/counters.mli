(** AutoCounter-style statistics bridge: periodic host-side sampling of
    target counters in a running partitioned simulation.  Signals are
    read directly from the owning unit's RTL state, so sampling adds no
    tokens to the LI-BDN network. *)

type sample = {
  s_cycle : int;
  s_values : (string * int) list;  (** in the order [signals] was given *)
}

(** Advances the simulation [cycles] target cycles, recording [signals]
    every [every] cycles (and at the end).  Signals are flattened names
    anywhere in the partitioned design. *)
val collect :
  Runtime.handle -> signals:string list -> every:int -> cycles:int -> sample list

(** Renders samples as CSV with a [cycle] column followed by one column
    per signal. *)
val to_csv : sample list -> string

(** Per-interval rates of change, in counts per kilocycle — the form
    AutoCounter plots (IPC, hit rates, packet rates). *)
val rates : sample list -> (int * (string * float) list) list
