(** FireRipper's compile pipeline (paper §III-C, Fig. 5): resolve the
    selection, Reparent, Group, Extract, elide base feedthroughs,
    apply fast-mode boundary repairs, enforce the exact-mode chain
    bound, and produce a {!Plan.t}. *)

val wrapper_name : int -> string

(** Compiles a monolithic circuit into a partition plan.  Raises
    {!Spec.Compile_error} (selection/chain problems) or
    [Firrtl.Ast.Ir_error] (malformed circuits). *)
val compile : ?config:Spec.config -> Firrtl.Ast.circuit -> Plan.t

(** The module-removal view (Fig. 5b): the base partition alone, with
    the removed modules' boundary punched to top-level ports. *)
val remove : ?config:Spec.config -> Firrtl.Ast.circuit -> Firrtl.Ast.circuit
