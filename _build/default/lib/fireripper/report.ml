(* Quick feedback about a partition plan: the paper emphasizes that
   FireRipper gives hardware designers fast insight into the partition
   interface and the expected simulation behaviour before any bitstream
   (here: before any simulation) is built. *)

open Firrtl

type t = {
  r_mode : Spec.mode;
  r_units : (string * int) list;  (** unit name, boundary port count *)
  r_pair_widths : ((int * int) * int) list;  (** bits between unit pairs *)
  r_total_width : int;
  r_max_chain : int;
  r_crossings_per_cycle : int;
      (** link crossings (each direction) needed to simulate one cycle *)
  r_channels : (string * string * int) list;  (** src unit, channel, bits *)
}

let build (plan : Plan.t) =
  let chain = Comb_check.analyze plan in
  let pairs = Plan.channel_pairs plan in
  {
    r_mode = plan.Plan.p_mode;
    r_units =
      Array.to_list plan.Plan.p_units
      |> List.map (fun (u : Plan.unit_part) ->
             ( u.Plan.u_name,
               List.length (Ast.main_module u.Plan.u_circuit).Ast.ports ));
    r_pair_widths = Plan.pair_widths plan;
    r_total_width = Plan.total_boundary_width plan;
    r_max_chain = chain.Comb_check.max_chain;
    r_crossings_per_cycle =
      (match plan.Plan.p_mode with
      | Spec.Fast -> 1
      | Spec.Exact -> max 1 chain.Comb_check.max_chain);
    r_channels =
      List.map
        (fun cp ->
          ( plan.Plan.p_units.(cp.Plan.cp_src_unit).Plan.u_name,
            cp.Plan.cp_out.Libdn.Channel.name,
            Libdn.Channel.width cp.Plan.cp_out ))
        pairs;
  }

let pp ppf r =
  Fmt.pf ppf "partition plan (%s-mode):@." (Spec.mode_to_string r.r_mode);
  List.iter
    (fun (name, ports) -> Fmt.pf ppf "  unit %-16s %d boundary ports@." name ports)
    r.r_units;
  List.iter
    (fun ((a, b), w) -> Fmt.pf ppf "  interface %d<->%d: %d bits@." a b w)
    r.r_pair_widths;
  Fmt.pf ppf "  total boundary width: %d bits@." r.r_total_width;
  Fmt.pf ppf "  max combinational chain: %d@." r.r_max_chain;
  Fmt.pf ppf "  link crossings per target cycle: %d@." r.r_crossings_per_cycle;
  List.iter
    (fun (u, ch, w) -> Fmt.pf ppf "  channel %s.%s: %d bits@." u ch w)
    r.r_channels

let to_string r = Fmt.str "%a" pp r
