(** Fast-mode boundary repairs (§III-A2, Fig. 3c): on ready-valid
    bundles crossing a seeded boundary, the source side's transmitted
    valid becomes [valid && ready], and the sink side gets a skid
    buffer with conservatively-asserted ready, so no transaction is
    lost or duplicated under the injected cycle of latency. *)

val skid_depth : int

(** Source-side rewrite on a partition main module. *)
val gate_valid : Firrtl.Ast.module_def -> valid:string -> ready:string -> Firrtl.Ast.module_def

(** Sink-side rewrite: inserts the skid buffer between the boundary and
    the original logic. *)
val insert_skid :
  Firrtl.Ast.module_def ->
  valid:string ->
  ready:string ->
  payload:string list ->
  Firrtl.Ast.module_def

val flip_role : Firrtl.Ast.rv_role -> Firrtl.Ast.rv_role

(** Applies one annotation's rewrite ([flip] selects the peer's
    perspective); annotations whose ports are absent are skipped. *)
val apply_annotation :
  ?flip:bool -> Firrtl.Ast.module_def -> Firrtl.Ast.annotation -> Firrtl.Ast.module_def

(** Rewrites a partition circuit's main module for every annotation. *)
val apply_circuit :
  ?flip:bool -> Firrtl.Ast.circuit -> Firrtl.Ast.annotation list -> Firrtl.Ast.circuit
