(** Automated partitioning (paper §VIII-B, future work): size every
    top-level instance, weigh inter-instance connectivity by wire width,
    and greedily assign instances to FPGAs preferring narrow cuts. *)

type estimator = {
  est_luts : Firrtl.Ast.circuit -> string -> int;
      (** LUT estimate for one module (by name) of the circuit *)
  est_capacity : int;  (** usable LUTs per FPGA *)
}

type assignment = {
  a_groups : string list array;  (** instance names per bin; bin 0 = base *)
  a_luts : int array;  (** estimated LUTs per bin *)
  a_cut_bits : int;  (** total boundary bits the assignment creates *)
}

(** Greedy assignment of the main module's instances to [n_fpgas] bins.
    Raises {!Spec.Compile_error} when packing cannot fit. *)
val assign : estimator:estimator -> n_fpgas:int -> Firrtl.Ast.circuit -> assignment

(** Bins 1.. as a FireRipper selection (bin 0 stays with the base). *)
val to_selection : assignment -> Spec.selection

val pp_assignment : Format.formatter -> assignment -> unit
