(* FireRipper's compile pipeline (Section III-C, Fig. 5):

   1. resolve the module selection into instance paths per partition;
   2. Reparent: promote every selected instance to the top of the
      hierarchy, punching ports through the enclosing modules;
   3. Grouping: wrap each partition's instances in a wrapper module;
   4. Extract: split each wrapper out of the main hierarchy, leaving the
      base partition (the rest) behind;
   5. elide pure feedthroughs in the base so wrapper-to-wrapper nets
      (e.g. NoC ring links between neighbouring FPGAs) connect their
      partitions directly instead of detouring through the base;
   6. fast-mode only: rewrite annotated ready-valid boundaries (skid
      buffers / valid-gating) on both sides of each cut;
   7. exact-mode only: enforce the combinational chain-length bound.

   The result is a {!Plan.t}; {!Runtime} instantiates it as an LI-BDN
   network, and the platform library prices its simulation rate. *)

open Firrtl
open Spec

let wrapper_name k = Printf.sprintf "fireaxe_part%d" k

(* Step 5: replace [base-out <- base-in] feedthrough pairs with direct
   wrapper-to-wrapper nets. *)
let elide_feedthroughs base nets =
  let main = Ast.main_module base in
  (* Nets keyed by source endpoint for in-place surgery. *)
  let by_src = Hashtbl.create 64 in
  List.iter (fun (n : Plan.net) -> Hashtbl.replace by_src n.Plan.n_src n) nets;
  (* Base boundary ports that talk to wrappers. *)
  let base_out = Hashtbl.create 64 in
  (* port -> net source key *)
  let base_in = Hashtbl.create 64 in
  (* port -> wrapper source endpoint *)
  List.iter
    (fun (n : Plan.net) ->
      let su, sp = n.Plan.n_src in
      if su = 0 then Hashtbl.replace base_out sp n.Plan.n_src
      else
        List.iter
          (fun (du, dp) -> if du = 0 then Hashtbl.replace base_in dp n.Plan.n_src)
          n.Plan.n_dsts)
    nets;
  let removed_out_ports = Hashtbl.create 16 in
  let removed_stmts = Hashtbl.create 16 in
  List.iteri
    (fun si s ->
      match s with
      | Ast.Connect { dst; src = Ast.Ref p } when Hashtbl.mem base_out dst -> (
        match Hashtbl.find_opt base_in p with
        | Some wrapper_src ->
          (* Merge net (0,dst) into the wrapper-source net. *)
          let dead = Hashtbl.find by_src (0, dst) in
          let live = Hashtbl.find by_src wrapper_src in
          Hashtbl.replace by_src wrapper_src
            { live with Plan.n_dsts = live.Plan.n_dsts @ dead.Plan.n_dsts };
          Hashtbl.remove by_src (0, dst);
          Hashtbl.replace removed_out_ports dst ();
          Hashtbl.replace removed_stmts si ()
        | None -> ())
      | _ -> ())
    main.Ast.stmts;
  let stmts =
    List.filteri (fun si _ -> not (Hashtbl.mem removed_stmts si)) main.Ast.stmts
  in
  (* Drop base input ports that no longer have any use. *)
  let used = Hashtbl.create 256 in
  let note e = List.iter (fun r -> Hashtbl.replace used r ()) (Ast.expr_refs e) in
  List.iter
    (fun s ->
      match s with
      | Ast.Connect { src; _ } -> note src
      | Ast.Reg_update { next; enable; _ } ->
        note next;
        Option.iter note enable
      | Ast.Mem_write { addr; data; enable; _ } ->
        note addr;
        note data;
        note enable)
    stmts;
  let removed_in_ports = Hashtbl.create 16 in
  Hashtbl.iter
    (fun p wrapper_src ->
      if not (Hashtbl.mem used p) then begin
        Hashtbl.replace removed_in_ports p ();
        match Hashtbl.find_opt by_src wrapper_src with
        | Some net ->
          Hashtbl.replace by_src wrapper_src
            { net with Plan.n_dsts = List.filter (fun d -> d <> (0, p)) net.Plan.n_dsts }
        | None -> ()
      end)
    base_in;
  let ports =
    List.filter
      (fun (p : Ast.port) ->
        not (Hashtbl.mem removed_out_ports p.Ast.pname || Hashtbl.mem removed_in_ports p.Ast.pname))
      main.Ast.ports
  in
  let main' = { main with Ast.ports; stmts } in
  let nets' =
    Hashtbl.fold (fun _ n acc -> n :: acc) by_src []
    |> List.filter (fun (n : Plan.net) -> n.Plan.n_dsts <> [])
    |> List.sort compare
  in
  (Hierarchy.replace_module base main', nets')

(* Step 6 helper: translate an annotation's port names to the peer
   partition across the nets, and apply the flipped rewrite there. *)
let apply_fastmode units nets annots_per_wrapper =
  let by_src = Hashtbl.create 64 in
  List.iter (fun (n : Plan.net) -> Hashtbl.replace by_src n.Plan.n_src n) nets;
  let into_unit = Hashtbl.create 64 in
  (* (dst unit, dst port) -> src endpoint *)
  List.iter
    (fun (n : Plan.net) ->
      List.iter (fun d -> Hashtbl.replace into_unit d n.Plan.n_src) n.Plan.n_dsts)
    nets;
  (* Where does output port [p] of unit [k] land? *)
  let out_peer k p =
    match Hashtbl.find_opt by_src (k, p) with
    | Some { Plan.n_dsts = [ d ]; _ } -> Some d
    | Some _ | None -> None
  in
  (* Who drives input port [p] of unit [k]? *)
  let in_peer k p = Hashtbl.find_opt into_unit (k, p) in
  let units = Array.copy units in
  List.iter
    (fun (k, annots) ->
      List.iter
        (fun a ->
          match a with
          | Ast.Noc_router _ -> ()
          | Ast.Ready_valid { role; valid; ready; payload } -> (
            (* Apply on the annotated side. *)
            units.(k) <-
              Plan.make_unit k units.(k).Plan.u_name
                (Fastmode.apply_circuit units.(k).Plan.u_circuit [ a ]);
            (* Translate to the peer side and apply flipped. *)
            let ends =
              match role with
              | Ast.Rv_source ->
                (* valid/payload leave unit k; ready enters it. *)
                let v = out_peer k valid in
                let r = in_peer k ready in
                let pay = List.map (out_peer k) payload in
                (v, r, pay)
              | Ast.Rv_sink ->
                let v = in_peer k valid in
                let r = out_peer k ready in
                let pay = List.map (in_peer k) payload in
                (v, r, pay)
            in
            match ends with
            | Some (uv, pv), Some (ur, pr), pay
              when List.for_all (function Some (u, _) -> u = uv | None -> false) pay
                   && ur = uv ->
              let peer_annot =
                Ast.Ready_valid
                  {
                    role;
                    valid = pv;
                    ready = pr;
                    payload = List.map (function Some (_, p) -> p | None -> assert false) pay;
                  }
              in
              units.(uv) <-
                Plan.make_unit uv units.(uv).Plan.u_name
                  (Fastmode.apply_circuit ~flip:true units.(uv).Plan.u_circuit [ peer_annot ])
            | _ ->
              Logs.warn (fun m ->
                  m "fast-mode: ready-valid bundle at %s/%s spans multiple peers; skipped"
                    units.(k).Plan.u_name valid)))
        annots)
    annots_per_wrapper;
  units

(** Compiles a monolithic circuit into a partition plan. *)
let compile ?(config = default_config) circuit =
  Ast.check_circuit circuit;
  let original = circuit in
  let groups = Select.resolve circuit config.selection in
  if groups = [] then compile_error "empty selection: nothing to partition";
  (* Reparent. *)
  let circuit, group_insts =
    List.fold_left_map
      (fun c paths ->
        let c, insts =
          List.fold_left_map (fun c path -> Hierarchy.promote_path c path) c paths
        in
        (c, insts))
      circuit groups
  in
  (* Grouping. *)
  let circuit, wrappers =
    List.fold_left
      (fun (c, acc) (k, insts) ->
        let g = Hierarchy.group_in_main c ~insts ~wrapper:(wrapper_name k) in
        (g.Hierarchy.g_circuit, (k, g.Hierarchy.g_wrapper_inst) :: acc))
      (circuit, [])
      (List.mapi (fun i insts -> (i + 1, insts)) group_insts)
    |> fun (c, acc) -> (c, List.rev acc)
  in
  let annots_per_wrapper =
    List.map
      (fun (k, _) -> (k, (Ast.find_module circuit (wrapper_name k)).Ast.annots))
      wrappers
  in
  (* Extract. *)
  let rest, parts =
    List.fold_left
      (fun (c, acc) (k, wrapper_inst) ->
        let split = Hierarchy.split_at_wrapper c ~wrapper_inst in
        (split.Hierarchy.sp_rest, (k, split) :: acc))
      (circuit, []) wrappers
    |> fun (c, acc) -> (c, List.rev acc)
  in
  (* Initial nets: everything goes through the base. *)
  let nets =
    List.concat_map
      (fun (k, (split : Hierarchy.split)) ->
        List.map
          (fun (bp : Hierarchy.boundary_port) ->
            match bp.Hierarchy.bp_dir with
            | Ast.Input ->
              {
                Plan.n_src = (0, bp.Hierarchy.bp_name);
                n_dsts = [ (k, bp.Hierarchy.bp_name) ];
                n_width = bp.Hierarchy.bp_width;
              }
            | Ast.Output ->
              {
                Plan.n_src = (k, bp.Hierarchy.bp_name);
                n_dsts = [ (0, bp.Hierarchy.bp_name) ];
                n_width = bp.Hierarchy.bp_width;
              })
          split.Hierarchy.sp_boundary)
      parts
  in
  let base, nets = elide_feedthroughs rest nets in
  let units =
    Array.of_list
      (Plan.make_unit 0 "base" base
      :: List.map
           (fun (k, (split : Hierarchy.split)) ->
             Plan.make_unit k (wrapper_name k) split.Hierarchy.sp_partition)
           parts)
  in
  let units =
    match config.mode with
    | Fast -> apply_fastmode units nets annots_per_wrapper
    | Exact -> units
  in
  let plan =
    { Plan.p_mode = config.mode; p_units = units; p_nets = nets; p_original = original }
  in
  Array.iter (fun u -> Ast.check_circuit u.Plan.u_circuit) plan.Plan.p_units;
  (match config.mode with
  | Exact when not config.allow_long_chains -> Comb_check.enforce plan
  | Exact | Fast -> ());
  plan


(** The module-removal view (Fig. 5b): the base partition alone, with
    the removed modules' boundary punched to top-level ports — e.g. to
    co-simulate the rest against an external implementation of the
    extracted modules. *)
let remove ?(config = Spec.default_config) circuit =
  let plan = compile ~config:{ config with Spec.allow_long_chains = true } circuit in
  plan.Plan.p_units.(0).Plan.u_circuit
