(** Hardware instantiation of a partition plan: every unit wrapped in
    generated FAME-1 control logic, channel pairs becoming credit-flow
    links, the whole thing one host-level circuit executed on the host
    clock — measured FMR instead of modeled. *)

val unit_inst : int -> string

(** Flat signal name of [name] from unit [unit] inside the host
    simulation. *)
val host_signal : unit:int -> string -> string

(** Builds the host-level circuit; [latency] is the per-link latency in
    host cycles. *)
val build : ?latency:int -> Plan.t -> Firrtl.Ast.circuit

type run = {
  hr_sim : Rtlsim.Sim.t;
  hr_host_cycles : int;
  hr_target_cycles : int;
}

(** Simulates the host circuit until unit 0 reaches [target_cycles] or
    [pred] holds; [setup] pokes initial state (program images). *)
val run :
  ?latency:int ->
  ?max_host_cycles:int ->
  ?pred:(Rtlsim.Sim.t -> bool) ->
  target_cycles:int ->
  Plan.t ->
  setup:(Rtlsim.Sim.t -> unit) ->
  run

(** Measured host-cycles-per-target-cycle of the plan's hardware. *)
val fmr : ?latency:int -> ?target_cycles:int -> Plan.t -> float
