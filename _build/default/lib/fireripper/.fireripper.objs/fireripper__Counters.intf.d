lib/fireripper/counters.mli: Runtime
