lib/fireripper/tracer.mli: Rtlsim Runtime
