lib/fireripper/plan.ml: Analysis Array Ast Firrtl Flatten Hashtbl Lazy Libdn List Option Printf Spec
