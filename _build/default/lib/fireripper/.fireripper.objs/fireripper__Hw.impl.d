lib/fireripper/hw.ml: Array Ast Builder Dsl Firrtl Goldengate Lazy Libdn List Plan Printf Rtlsim Spec String
