lib/fireripper/report.mli: Format Plan Spec
