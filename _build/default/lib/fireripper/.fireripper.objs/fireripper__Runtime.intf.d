lib/fireripper/runtime.mli: Goldengate Libdn Plan Rtlsim
