lib/fireripper/runtime.ml: Array Ast Buffer Filename Firrtl Flatten Goldengate Hashtbl Hierarchy Lazy Libdn List Option Plan Printf Rtlsim Spec String Sys
