lib/fireripper/auto.mli: Firrtl Format Spec
