lib/fireripper/spec.ml: Format String
