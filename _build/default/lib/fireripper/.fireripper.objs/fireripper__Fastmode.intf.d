lib/fireripper/fastmode.mli: Firrtl
