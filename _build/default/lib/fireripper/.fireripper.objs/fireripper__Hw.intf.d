lib/fireripper/hw.mli: Firrtl Plan Rtlsim
