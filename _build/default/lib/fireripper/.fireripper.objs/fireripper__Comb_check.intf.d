lib/fireripper/comb_check.mli: Format Plan
