lib/fireripper/auto.ml: Array Ast Firrtl Fmt Hashtbl Hierarchy List Option Spec
