lib/fireripper/compile.mli: Firrtl Plan Spec
