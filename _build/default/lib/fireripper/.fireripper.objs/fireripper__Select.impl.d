lib/fireripper/select.ml: Ast Firrtl Hashtbl Hierarchy List Option Spec
