lib/fireripper/report.ml: Array Ast Comb_check Firrtl Fmt Libdn List Plan Spec
