lib/fireripper/tracer.ml: Hashtbl List Option Printf Rtlsim Runtime String
