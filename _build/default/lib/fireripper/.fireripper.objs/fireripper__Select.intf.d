lib/fireripper/select.mli: Firrtl Hashtbl Spec
