lib/fireripper/counters.ml: Buffer List Rtlsim Runtime
