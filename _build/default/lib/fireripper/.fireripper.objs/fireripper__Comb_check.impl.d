lib/fireripper/comb_check.ml: Analysis Array Firrtl Fmt Hashtbl Lazy List Plan Printf Spec String
