lib/fireripper/spec.mli: Format
