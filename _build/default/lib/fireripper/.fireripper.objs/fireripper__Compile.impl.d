lib/fireripper/compile.ml: Array Ast Comb_check Fastmode Firrtl Hashtbl Hierarchy List Logs Option Plan Printf Select Spec
