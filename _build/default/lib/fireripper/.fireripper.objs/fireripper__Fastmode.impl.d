lib/fireripper/fastmode.ml: Ast Dsl Firrtl Hierarchy List Option
