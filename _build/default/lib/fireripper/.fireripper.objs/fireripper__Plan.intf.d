lib/fireripper/plan.mli: Analysis Ast Firrtl Hashtbl Lazy Libdn Spec
