(* Module selection: resolves a user selection into concrete instance
   paths per extracted partition.

   NoC-partition-mode (Fig. 4): the user names router-node indices
   instead of module paths.  Router instances are located through
   [Noc_router] annotations; the group then absorbs every sibling module
   that hangs off the selected routers without touching any router
   outside the group (protocol converters, then the tiles behind them,
   recursively to a fixpoint). *)

open Firrtl
open Spec

(** Instance paths of all router-annotated modules, keyed by index. *)
let router_paths circuit =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun path ->
      let _, _, of_module = Hierarchy.resolve_path circuit path in
      let m = Ast.find_module circuit of_module in
      List.iter
        (fun a ->
          match a with
          | Ast.Noc_router { index } ->
            if Hashtbl.mem tbl index then
              compile_error "router index %d appears on more than one instance" index
            else Hashtbl.replace tbl index path
          | Ast.Ready_valid _ -> ())
        m.Ast.annots)
    (Hierarchy.instance_paths circuit);
  tbl

let parent_of path = List.rev (List.tl (List.rev path))
let last_of path = List.hd (List.rev path)

(** Expands one group of router indices into the set of instance paths
    to extract together. *)
let expand_router_group circuit routers group =
  let paths =
    List.map
      (fun idx ->
        match Hashtbl.find_opt routers idx with
        | Some p -> p
        | None -> compile_error "no NoC router with index %d" idx)
      group
  in
  let parents = List.sort_uniq compare (List.map parent_of paths) in
  let parent_path =
    match parents with
    | [ p ] -> p
    | _ -> compile_error "routers of one partition group must share a parent module"
  in
  let parent_module =
    match parent_path with
    | [] -> Ast.main_module circuit
    | _ ->
      let _, _, of_module = Hierarchy.resolve_path circuit parent_path in
      Ast.find_module circuit of_module
  in
  (* Router instances (any index) among the siblings, for the
     "not connected to any other router" test. *)
  let all_router_insts =
    Hashtbl.fold
      (fun _ path acc -> if parent_of path = parent_path then last_of path :: acc else acc)
      routers []
  in
  let selected_routers = List.map last_of paths in
  let outside_routers =
    List.filter (fun r -> not (List.mem r selected_routers)) all_router_insts
  in
  let adj = Hierarchy.instance_adjacency parent_module in
  let neighbours i = Option.value ~default:[] (Hashtbl.find_opt adj i) in
  let selected = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace selected i ()) selected_routers;
  (* Absorb to a fixpoint: any sibling touching the selection that does
     not touch a router outside the group comes along. *)
  let all_insts = List.map fst (Hierarchy.instances parent_module) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        (* Router nodes are only ever selected explicitly by index. *)
        if (not (Hashtbl.mem selected i)) && not (List.mem i all_router_insts) then begin
          let ns = neighbours i in
          let touches_selection = List.exists (Hashtbl.mem selected) ns in
          let touches_outside_router =
            List.exists (fun n -> List.mem n outside_routers) ns
          in
          if touches_selection && not touches_outside_router then begin
            Hashtbl.replace selected i ();
            changed := true
          end
        end)
      all_insts
  done;
  List.filter (fun i -> Hashtbl.mem selected i) all_insts
  |> List.map (fun i -> parent_path @ [ i ])

(** Resolves a selection to instance-path groups (one per partition). *)
let resolve circuit selection =
  match selection with
  | Instances groups -> List.map (List.map parse_path) groups
  | Noc_routers groups ->
    let routers = router_paths circuit in
    List.map (expand_router_group circuit routers) groups
