(* Partition plans: the output of FireRipper's compile pipeline.

   A plan holds one circuit per partition unit (unit 0 is the base/rest
   partition, the "SoC subsystem FPGA"; units 1..n are the extracted
   wrappers) and the point-to-point boundary nets between them.  From a
   plan and the partitioning mode, [channel_pairs] derives the LI-BDN
   channelization: exact-mode separates source ports (no combinational
   input dependency) from sink ports into distinct channels per
   direction (Fig. 2b); fast-mode aggregates everything into one channel
   per direction and relies on seed tokens (Fig. 3). *)

open Firrtl

type unit_part = {
  u_index : int;
  u_name : string;
  u_circuit : Ast.circuit;
  u_flat : Ast.module_def Lazy.t;
  u_analysis : Analysis.t Lazy.t;
}

let make_unit u_index u_name u_circuit =
  let u_flat = lazy (Flatten.flatten u_circuit) in
  let u_analysis = lazy (Analysis.build (Lazy.force u_flat)) in
  { u_index; u_name; u_circuit; u_flat; u_analysis }

type net = {
  n_src : int * string;  (** (unit, output port) *)
  n_dsts : (int * string) list;  (** (unit, input port) fan-out *)
  n_width : int;
}

type t = {
  p_mode : Spec.mode;
  p_units : unit_part array;
  p_nets : net list;
  p_original : Ast.circuit;
}

(* ------------------------------------------------------------------ *)
(* Channelization                                                      *)
(* ------------------------------------------------------------------ *)

type channel_class =
  | Class_source  (** chain depth 1: no combinational input dependency *)
  | Class_sink  (** chain depth 2: depends only on source-driven inputs *)
  | Class_level of int
      (** chain depth >= 3: beyond the paper's bound; produced only under
          the allow_long_chains escape hatch.  One channel per depth
          level keeps the channel dependency graph acyclic, so the
          generic LI-BDN scheduler stays deadlock-free at the cost of
          [depth] link crossings per cycle. *)
  | Class_mono  (** fast-mode: everything in one channel *)

type channel_pair = {
  cp_src_unit : int;
  cp_dst_unit : int;
  cp_class : channel_class;
  cp_out : Libdn.Channel.spec;  (** named ports on the source unit *)
  cp_in : Libdn.Channel.spec;  (** positionally matching ports on dst *)
}

let class_suffix = function
  | Class_source -> "_src"
  | Class_sink -> "_snk"
  | Class_level d -> Printf.sprintf "_lvl%d" d
  | Class_mono -> ""

let class_of_depth = function
  | 1 -> Class_source
  | 2 -> Class_sink
  | d -> Class_level d

(** Cross-partition combinational chain depth of every net's source
    port: 1 for register-driven ("source") ports, 1 + max depth of the
    feeding nets otherwise.  Raises on a combinational cycle through the
    boundary (never legal in any mode). *)
let chain_depths plan =
  let driver = Hashtbl.create 64 in
  List.iter
    (fun net -> List.iter (fun dst -> Hashtbl.replace driver dst net.n_src) net.n_dsts)
    plan.p_nets;
  let memo = Hashtbl.create 64 in
  let rec depth visiting ((u, port) as ep) =
    match Hashtbl.find_opt memo ep with
    | Some d -> d
    | None ->
      if List.mem ep visiting then
        Firrtl.Ast.ir_error
          "combinational cycle through the partition boundary at unit %d port %s" u port;
      let deps = Analysis.comb_inputs (Lazy.force plan.p_units.(u).u_analysis) port in
      let d =
        1
        + List.fold_left
            (fun acc inp ->
              match Hashtbl.find_opt driver (u, inp) with
              | None -> acc (* external input *)
              | Some src -> max acc (depth (ep :: visiting) src))
            0 deps
      in
      Hashtbl.replace memo ep d;
      d
  in
  List.iter (fun net -> ignore (depth [] net.n_src)) plan.p_nets;
  memo

(** Derives every directed channel between unit pairs.  Each channel
    pair lists (src port, dst port, width) triples in matching positions
    so a token's values apply positionally.  Exact-mode ports are split
    into one channel per chain-depth level (the paper's source/sink
    split for depths 1 and 2, generalized beyond). *)
let channel_pairs plan =
  let depths =
    match plan.p_mode with
    | Spec.Exact -> chain_depths plan
    | Spec.Fast -> Hashtbl.create 0
  in
  (* (src unit, dst unit, class) -> (src port, dst port, width) list *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun net ->
      let su, sp = net.n_src in
      let cls =
        match plan.p_mode with
        | Spec.Fast -> Class_mono
        | Spec.Exact -> class_of_depth (Hashtbl.find depths net.n_src)
      in
      List.iter
        (fun (du, dp) ->
          let key = (su, du, cls) in
          let cur = Option.value ~default:[] (Hashtbl.find_opt groups key) in
          Hashtbl.replace groups key ((sp, dp, net.n_width) :: cur))
        net.n_dsts)
    plan.p_nets;
  Hashtbl.fold
    (fun (su, du, cls) triples acc ->
      let triples = List.sort compare triples in
      let name dir =
        Printf.sprintf "%s%d%s" dir (match dir with "to" -> du | _ -> su) (class_suffix cls)
      in
      {
        cp_src_unit = su;
        cp_dst_unit = du;
        cp_class = cls;
        cp_out =
          {
            Libdn.Channel.name = name "to";
            ports = List.map (fun (sp, _, w) -> (sp, w)) triples;
          };
        cp_in =
          {
            Libdn.Channel.name = name "from";
            ports = List.map (fun (_, dp, w) -> (dp, w)) triples;
          };
      }
      :: acc)
    groups []
  |> List.sort (fun a b ->
         compare (a.cp_src_unit, a.cp_dst_unit, a.cp_class)
           (b.cp_src_unit, b.cp_dst_unit, b.cp_class))

(** Total boundary bits crossing between each unordered unit pair: the
    "partition interface width" knob of Section VI-A. *)
let pair_widths plan =
  let widths = Hashtbl.create 8 in
  List.iter
    (fun net ->
      let su, _ = net.n_src in
      List.iter
        (fun (du, _) ->
          let key = (min su du, max su du) in
          Hashtbl.replace widths key
            (net.n_width + Option.value ~default:0 (Hashtbl.find_opt widths key)))
        net.n_dsts)
    plan.p_nets;
  Hashtbl.fold (fun k w acc -> (k, w) :: acc) widths [] |> List.sort compare

let total_boundary_width plan =
  List.fold_left (fun acc (_, w) -> acc + w) 0 (pair_widths plan)

let n_units plan = Array.length plan.p_units
