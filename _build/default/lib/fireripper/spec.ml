(* User-facing partitioning specification (Section III of the paper).

   The user picks a partitioning mode (exact vs. fast), and describes
   which target modules go to which extracted partition.  Module
   selection is either explicit instance paths (fine-grained control) or
   NoC-partition-mode: sets of router-node indices, from which FireRipper
   derives the module groups by walking the circuit (Fig. 4). *)

exception Compile_error of string

let compile_error fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

type mode =
  | Exact  (** Cycle-exact; combinational boundary chains bounded by 2. *)
  | Fast
      (** One token crossing per cycle via seed tokens; requires
          latency-insensitive boundaries, repaired with skid buffers and
          valid-gating on annotated ready-valid bundles. *)

let mode_to_string = function
  | Exact -> "exact"
  | Fast -> "fast"

type selection =
  | Instances of string list list
      (** One extracted partition per inner list of instance paths
          (paths are "a.b.c" through the module hierarchy). *)
  | Noc_routers of int list list
      (** One extracted partition per inner list of router-node
          indices (NoC-partition-mode). *)

type config = {
  mode : mode;
  selection : selection;
  allow_long_chains : bool;
      (** Testing/ablation escape hatch: skip the chain-length-2 bound in
          exact mode (the generic LI-BDN scheduler can still execute such
          plans, at more link crossings per cycle). *)
}

let default_config = { mode = Exact; selection = Instances []; allow_long_chains = false }

let parse_path s = String.split_on_char '.' s
