(* TracerV-style instruction-trace bridge.

   FireSim's TracerV streams the committed-instruction trace (cycle +
   PC) of a running target out of band to the host, where FirePerf-type
   tools turn it into profiles.  Here the host side watches a core's
   retired-instruction counter and PC and records one event per commit;
   the same collector runs against a monolithic simulation or any core
   inside a partitioned run, so traces can be compared across
   partitionings (exact mode: identical cycle-for-cycle; fast mode:
   identical PC sequence, shifted cycles). *)

type event = {
  t_cycle : int;  (** target cycle at which the commit became visible *)
  t_pc : int;  (** PC of the committed instruction *)
}

(* Generic collector over a (step, peek) pair: a commit is visible as a
   change of [retired]; the committed PC is the one observed before the
   step that retired it. *)
let collect ~step ~peek ~pc ~retired ~cycles =
  let events = ref [] in
  let prev_ret = ref (peek retired) in
  let prev_pc = ref (peek pc) in
  for c = 1 to cycles do
    step ();
    let r = peek retired in
    if r <> !prev_ret then events := { t_cycle = c; t_pc = !prev_pc } :: !events;
    prev_ret := r;
    prev_pc := peek pc
  done;
  List.rev !events

let of_sim sim ~pc ~retired ~cycles =
  collect
    ~step:(fun () -> Rtlsim.Sim.step sim)
    ~peek:(Rtlsim.Sim.get sim) ~pc ~retired ~cycles

let of_handle handle ~pc ~retired ~cycles =
  let pc_sim = Runtime.sim_of handle (Runtime.locate handle pc) in
  let ret_sim = Runtime.sim_of handle (Runtime.locate handle retired) in
  (* [Runtime.run] targets absolute cycle counts: continue from wherever
     the handle already is (it may have run, or been resumed from a
     snapshot). *)
  let target = ref (Runtime.cycle handle 0) in
  collect
    ~step:(fun () ->
      incr target;
      Runtime.run handle ~cycles:!target)
    ~peek:(fun name -> Rtlsim.Sim.get (if String.equal name pc then pc_sim else ret_sim) name)
    ~pc ~retired ~cycles

(** Per-PC commit counts, hottest first — the FirePerf-style profile. *)
let histogram events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Hashtbl.replace tbl e.t_pc (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.t_pc)))
    events;
  Hashtbl.fold (fun pc n acc -> (pc, n) :: acc) tbl []
  |> List.sort (fun (p1, n1) (p2, n2) -> if n2 <> n1 then compare n2 n1 else compare p1 p2)

(** Committed instructions per cycle over the traced window. *)
let ipc events ~cycles =
  if cycles <= 0 then 0.0 else float_of_int (List.length events) /. float_of_int cycles

(** Renders the trace, given a word-fetch function (usually a peek into
    the program memory) and the target ISA's disassembler. *)
let render events ~fetch ~disasm =
  List.map
    (fun e -> Printf.sprintf "%8d  %04x  %s" e.t_cycle e.t_pc (disasm (fetch e.t_pc)))
    events
