(** TracerV-style instruction-trace bridge: records one (cycle, PC)
    event per committed instruction by watching a core's retired
    counter, against a monolithic simulation or a core anywhere inside
    a partitioned run.  Exact-mode partitions produce identical traces
    cycle for cycle; fast mode preserves the PC sequence. *)

type event = {
  t_cycle : int;  (** target cycle at which the commit became visible *)
  t_pc : int;  (** PC of the committed instruction *)
}

(** Traces [cycles] target cycles of a monolithic simulation; [pc] and
    [retired] are flattened signal names. *)
val of_sim :
  Rtlsim.Sim.t -> pc:string -> retired:string -> cycles:int -> event list

(** The same against a running partitioned simulation; sampling is out
    of band (direct unit-state reads, no extra LI-BDN tokens). *)
val of_handle :
  Runtime.handle -> pc:string -> retired:string -> cycles:int -> event list

(** Per-PC commit counts, hottest first — the FirePerf-style profile. *)
val histogram : event list -> (int * int) list

(** Committed instructions per cycle over the traced window. *)
val ipc : event list -> cycles:int -> float

(** Renders the trace, one line per event, given a word-fetch function
    and the target ISA's disassembler. *)
val render : event list -> fetch:(int -> int) -> disasm:(int -> string) -> string list
