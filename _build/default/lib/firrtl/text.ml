(* Textual circuit format: a FIRRTL-flavored serialization of the IR
   with an emitter and a parser, so designs can be stored in files,
   exchanged, and fed to the CLI (`fireaxe-cli plan --file design.fir`).
   [parse (emit c)] reconstructs [c] exactly (round-trip tested against
   every generator in the repository).

   Grammar (one declaration per line; indentation is cosmetic):

     circuit <name> main <module>:
       module <name>:
         input <id> : UInt<w>
         output <id> : UInt<w>
         wire <id> : UInt<w>
         reg <id> : UInt<w> init <int>
         mem <id> : UInt<w>[depth]
         inst <id> of <module>
         connect <target> = <expr>
         regnext <id> <= <expr> [when <expr>]
         memwrite <id>[<expr>] <= <expr> when <expr>
         annotation ready_valid <source|sink> valid=<id> ready=<id> payload=[<id>,...]
         annotation noc_router <int>

   Expressions are prefix applications — add(a, b), mux(c, t, f),
   bits(e, hi, lo), read(m, addr), cat(a, b) — plus literals
   UInt<w>(v) and references (identifiers, possibly dotted for
   instance ports).  '#' and '$' are legal identifier characters so
   punched and flattened names survive. *)

open Ast

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Emitter                                                             *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Eq -> "eq"
  | Neq -> "neq"
  | Lt -> "lt"
  | Le -> "leq"
  | Gt -> "gt"
  | Ge -> "geq"

let unop_name = function
  | Not -> "not"
  | Neg -> "neg"
  | Andr -> "andr"
  | Orr -> "orr"
  | Xorr -> "xorr"

let rec emit_expr buf e =
  let app name args =
    Buffer.add_string buf name;
    Buffer.add_char buf '(';
    List.iteri
      (fun i arg ->
        if i > 0 then Buffer.add_string buf ", ";
        arg ())
      args;
    Buffer.add_char buf ')'
  in
  match e with
  | Lit { value; width } -> Buffer.add_string buf (Printf.sprintf "UInt<%d>(%d)" width value)
  | Ref name -> Buffer.add_string buf name
  | Mux (c, t, f) ->
    app "mux" [ (fun () -> emit_expr buf c); (fun () -> emit_expr buf t); (fun () -> emit_expr buf f) ]
  | Binop (op, a, b) ->
    app (binop_name op) [ (fun () -> emit_expr buf a); (fun () -> emit_expr buf b) ]
  | Unop (op, a) -> app (unop_name op) [ (fun () -> emit_expr buf a) ]
  | Bits { e; hi; lo } ->
    app "bits"
      [
        (fun () -> emit_expr buf e);
        (fun () -> Buffer.add_string buf (string_of_int hi));
        (fun () -> Buffer.add_string buf (string_of_int lo));
      ]
  | Cat (a, b) -> app "cat" [ (fun () -> emit_expr buf a); (fun () -> emit_expr buf b) ]
  | Read { mem; addr } ->
    app "read" [ (fun () -> Buffer.add_string buf mem); (fun () -> emit_expr buf addr) ]

let expr_to_string e =
  let buf = Buffer.create 64 in
  emit_expr buf e;
  Buffer.contents buf

let emit_module buf m =
  Buffer.add_string buf (Printf.sprintf "  module %s:\n" m.name);
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "    %s %s : UInt<%d>\n"
           (match p.pdir with Input -> "input" | Output -> "output")
           p.pname p.pwidth))
    m.ports;
  List.iter
    (fun c ->
      match c with
      | Wire { name; width } ->
        Buffer.add_string buf (Printf.sprintf "    wire %s : UInt<%d>\n" name width)
      | Reg { name; width; init } ->
        Buffer.add_string buf (Printf.sprintf "    reg %s : UInt<%d> init %d\n" name width init)
      | Mem { name; width; depth } ->
        Buffer.add_string buf (Printf.sprintf "    mem %s : UInt<%d>[%d]\n" name width depth)
      | Inst { name; of_module } ->
        Buffer.add_string buf (Printf.sprintf "    inst %s of %s\n" name of_module))
    m.comps;
  List.iter
    (fun s ->
      match s with
      | Connect { dst; src } ->
        Buffer.add_string buf (Printf.sprintf "    connect %s = %s\n" dst (expr_to_string src))
      | Reg_update { reg; next; enable } -> (
        match enable with
        | None ->
          Buffer.add_string buf (Printf.sprintf "    regnext %s <= %s\n" reg (expr_to_string next))
        | Some en ->
          Buffer.add_string buf
            (Printf.sprintf "    regnext %s <= %s when %s\n" reg (expr_to_string next)
               (expr_to_string en)))
      | Mem_write { mem; addr; data; enable } ->
        Buffer.add_string buf
          (Printf.sprintf "    memwrite %s[%s] <= %s when %s\n" mem (expr_to_string addr)
             (expr_to_string data) (expr_to_string enable)))
    m.stmts;
  List.iter
    (fun a ->
      match a with
      | Ready_valid { role; valid; ready; payload } ->
        Buffer.add_string buf
          (Printf.sprintf "    annotation ready_valid %s valid=%s ready=%s payload=[%s]\n"
             (match role with Rv_source -> "source" | Rv_sink -> "sink")
             valid ready (String.concat "," payload))
      | Noc_router { index } ->
        Buffer.add_string buf (Printf.sprintf "    annotation noc_router %d\n" index))
    m.annots

(** Serializes a circuit to its textual form. *)
let emit circuit =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "circuit %s main %s:\n" circuit.cname circuit.main);
  List.iter (emit_module buf) circuit.modules;
  Buffer.contents buf

let save circuit ~path =
  let oc = open_out path in
  output_string oc (emit circuit);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Tid of string
  | Tint of int
  | Tpunct of char  (** one of ( ) , : [ ] = < > *)
  | Tarrow  (** "<=" *)
  | Tuint of int  (** "UInt<w>" *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '$' || c = '#' || c = '.'

(* Tokenizes one line. *)
let lex line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ';' then i := n (* comment to end of line *)
    else if c = '<' && !i + 1 < n && line.[!i + 1] = '=' then begin
      toks := Tarrow :: !toks;
      i := !i + 2
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do
        incr j
      done;
      toks := Tint (int_of_string (String.sub line !i (!j - !i))) :: !toks;
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char line.[!j] do
        incr j
      done;
      let word = String.sub line !i (!j - !i) in
      (* UInt<w> folds into one token (the '<' would otherwise clash
         with comparisons in no context). *)
      if word = "UInt" && !j < n && line.[!j] = '<' then begin
        let k = ref (!j + 1) in
        while !k < n && line.[!k] <> '>' do
          incr k
        done;
        if !k >= n then parse_error "unterminated UInt<...>";
        let w = int_of_string (String.trim (String.sub line (!j + 1) (!k - !j - 1))) in
        toks := Tuint w :: !toks;
        i := !k + 1
      end
      else begin
        toks := Tid word :: !toks;
        i := !j
      end
    end
    else if String.contains "(),:[]=<>" c then begin
      toks := Tpunct c :: !toks;
      incr i
    end
    else parse_error "unexpected character %C in %S" c line
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type cursor = {
  mutable toks : token list;
  line : string;
}

let peek c = match c.toks with [] -> None | t :: _ -> Some t

let next c =
  match c.toks with
  | [] -> parse_error "unexpected end of line: %S" c.line
  | t :: rest ->
    c.toks <- rest;
    t

let expect_id c =
  match next c with
  | Tid s -> s
  | _ -> parse_error "identifier expected in %S" c.line

let expect_int c =
  match next c with
  | Tint v -> v
  | _ -> parse_error "integer expected in %S" c.line

let expect_punct c ch =
  match next c with
  | Tpunct p when p = ch -> ()
  | _ -> parse_error "%C expected in %S" ch c.line

let expect_uint c =
  match next c with
  | Tuint w -> w
  | _ -> parse_error "UInt<w> expected in %S" c.line

let binop_of_name = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "div" -> Some Div
  | "rem" -> Some Rem
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "shl" -> Some Shl
  | "shr" -> Some Shr
  | "eq" -> Some Eq
  | "neq" -> Some Neq
  | "lt" -> Some Lt
  | "leq" -> Some Le
  | "gt" -> Some Gt
  | "geq" -> Some Ge
  | _ -> None

let unop_of_name = function
  | "not" -> Some Not
  | "neg" -> Some Neg
  | "andr" -> Some Andr
  | "orr" -> Some Orr
  | "xorr" -> Some Xorr
  | _ -> None

let rec parse_expr c =
  match next c with
  | Tuint w ->
    expect_punct c '(';
    let v = expect_int c in
    expect_punct c ')';
    Lit { value = v; width = w }
  | Tint _ -> parse_error "bare integer where an expression was expected in %S" c.line
  | Tid name -> (
    match peek c with
    | Some (Tpunct '(') -> (
      expect_punct c '(';
      match name with
      | "mux" ->
        let a = parse_expr c in
        expect_punct c ',';
        let b = parse_expr c in
        expect_punct c ',';
        let d = parse_expr c in
        expect_punct c ')';
        Mux (a, b, d)
      | "bits" ->
        let e = parse_expr c in
        expect_punct c ',';
        let hi = expect_int c in
        expect_punct c ',';
        let lo = expect_int c in
        expect_punct c ')';
        Bits { e; hi; lo }
      | "cat" ->
        let a = parse_expr c in
        expect_punct c ',';
        let b = parse_expr c in
        expect_punct c ')';
        Cat (a, b)
      | "read" ->
        let m = expect_id c in
        expect_punct c ',';
        let addr = parse_expr c in
        expect_punct c ')';
        Read { mem = m; addr }
      | _ -> (
        match (binop_of_name name, unop_of_name name) with
        | Some op, _ ->
          let a = parse_expr c in
          expect_punct c ',';
          let b = parse_expr c in
          expect_punct c ')';
          Binop (op, a, b)
        | None, Some op ->
          let a = parse_expr c in
          expect_punct c ')';
          Unop (op, a)
        | None, None -> parse_error "unknown operator %s in %S" name c.line))
    | _ -> Ref name)
  | _ -> parse_error "expression expected in %S" c.line

(* Mutable module under construction. *)
type pending = {
  pm_name : string;
  mutable pm_ports : port list;
  mutable pm_comps : component list;
  mutable pm_stmts : stmt list;
  mutable pm_annots : annotation list;
}

let finish_pending pm =
  {
    name = pm.pm_name;
    ports = List.rev pm.pm_ports;
    comps = List.rev pm.pm_comps;
    stmts = List.rev pm.pm_stmts;
    annots = List.rev pm.pm_annots;
  }

let parse_payload_list c =
  expect_punct c '[';
  let rec go acc =
    match peek c with
    | Some (Tpunct ']') ->
      ignore (next c);
      List.rev acc
    | Some (Tpunct ',') ->
      ignore (next c);
      go acc
    | Some (Tid s) ->
      ignore (next c);
      go (s :: acc)
    | _ -> parse_error "payload list expected in %S" c.line
  in
  go []

(** Parses the textual form back into a circuit; raises {!Parse_error}
    on malformed input.  The result is structurally checked. *)
let parse text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let modules = ref [] in
  let current = ref None in
  let close_current () =
    match !current with
    | Some pm ->
      modules := finish_pending pm :: !modules;
      current := None
    | None -> ()
  in
  List.iter
    (fun raw ->
      let c = { toks = lex raw; line = raw } in
      match peek c with
      | None -> ()
      | Some _ -> (
        match expect_id c with
        | "circuit" ->
          let cname = expect_id c in
          (match expect_id c with
          | "main" -> ()
          | _ -> parse_error "'main' expected in %S" raw);
          let main = expect_id c in
          expect_punct c ':';
          header := Some (cname, main)
        | "module" ->
          close_current ();
          let name = expect_id c in
          expect_punct c ':';
          current :=
            Some { pm_name = name; pm_ports = []; pm_comps = []; pm_stmts = []; pm_annots = [] }
        | keyword -> (
          let pm =
            match !current with
            | Some pm -> pm
            | None -> parse_error "declaration outside a module: %S" raw
          in
          match keyword with
          | "input" | "output" ->
            let pname = expect_id c in
            expect_punct c ':';
            let pwidth = expect_uint c in
            pm.pm_ports <-
              { pname; pdir = (if keyword = "input" then Input else Output); pwidth }
              :: pm.pm_ports
          | "wire" ->
            let name = expect_id c in
            expect_punct c ':';
            let width = expect_uint c in
            pm.pm_comps <- Wire { name; width } :: pm.pm_comps
          | "reg" ->
            let name = expect_id c in
            expect_punct c ':';
            let width = expect_uint c in
            (match expect_id c with
            | "init" -> ()
            | _ -> parse_error "'init' expected in %S" raw);
            let init = expect_int c in
            pm.pm_comps <- Reg { name; width; init } :: pm.pm_comps
          | "mem" ->
            let name = expect_id c in
            expect_punct c ':';
            let width = expect_uint c in
            expect_punct c '[';
            let depth = expect_int c in
            expect_punct c ']';
            pm.pm_comps <- Mem { name; width; depth } :: pm.pm_comps
          | "inst" ->
            let name = expect_id c in
            (match expect_id c with
            | "of" -> ()
            | _ -> parse_error "'of' expected in %S" raw);
            let of_module = expect_id c in
            pm.pm_comps <- Inst { name; of_module } :: pm.pm_comps
          | "connect" ->
            let dst = expect_id c in
            expect_punct c '=';
            let src = parse_expr c in
            pm.pm_stmts <- Connect { dst; src } :: pm.pm_stmts
          | "regnext" ->
            let reg = expect_id c in
            (match next c with
            | Tarrow -> ()
            | _ -> parse_error "'<=' expected in %S" raw);
            let nexte = parse_expr c in
            let enable =
              match peek c with
              | Some (Tid "when") ->
                ignore (next c);
                Some (parse_expr c)
              | _ -> None
            in
            pm.pm_stmts <- Reg_update { reg; next = nexte; enable } :: pm.pm_stmts
          | "memwrite" ->
            let mem = expect_id c in
            expect_punct c '[';
            let addr = parse_expr c in
            expect_punct c ']';
            (match next c with
            | Tarrow -> ()
            | _ -> parse_error "'<=' expected in %S" raw);
            let data = parse_expr c in
            (match expect_id c with
            | "when" -> ()
            | _ -> parse_error "'when' expected in %S" raw);
            let enable = parse_expr c in
            pm.pm_stmts <- Mem_write { mem; addr; data; enable } :: pm.pm_stmts
          | "annotation" -> (
            match expect_id c with
            | "ready_valid" ->
              let role =
                match expect_id c with
                | "source" -> Rv_source
                | "sink" -> Rv_sink
                | r -> parse_error "unknown ready_valid role %s in %S" r raw
              in
              let kv key =
                let k = expect_id c in
                if k <> key then parse_error "'%s=' expected in %S" key raw;
                expect_punct c '=';
                expect_id c
              in
              let valid = kv "valid" in
              let ready = kv "ready" in
              let k = expect_id c in
              if k <> "payload" then parse_error "'payload=' expected in %S" raw;
              expect_punct c '=';
              let payload = parse_payload_list c in
              pm.pm_annots <- Ready_valid { role; valid; ready; payload } :: pm.pm_annots
            | "noc_router" ->
              let index = expect_int c in
              pm.pm_annots <- Noc_router { index } :: pm.pm_annots
            | a -> parse_error "unknown annotation %s in %S" a raw)
          | _ -> parse_error "unknown declaration %S" raw)))
    lines;
  close_current ();
  match !header with
  | None -> parse_error "missing 'circuit' header"
  | Some (cname, main) ->
    let circuit = { cname; main; modules = List.rev !modules } in
    check_circuit circuit;
    circuit

let load ~path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse s
