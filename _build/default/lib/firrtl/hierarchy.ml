(* Module-hierarchy queries and surgery.

   These are the mechanical transforms FireRipper (the FireAxe
   partitioning compiler) is built from, mirroring Fig. 5 of the paper:

   - [promote_path]  (Reparent): hoists an instance up the hierarchy one
     level at a time, punching ports through enclosing modules, until it
     is a direct child of the main module.
   - [group_in_main] (Grouping): wraps a set of direct-child instances of
     main in a fresh wrapper module, keeping selected-to-selected
     connections internal to the wrapper.
   - [split_at_wrapper] (Extract / Remove): cuts a wrapper instance out of
     main, producing the partition circuit (wrapper as new main) and the
     rest circuit (main with the wrapper's ports punched to the top). *)

open Ast

let sep = "#"

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let instances m =
  List.filter_map
    (fun c ->
      match c with
      | Inst { name; of_module } -> Some (name, of_module)
      | Wire _ | Reg _ | Mem _ -> None)
    m.comps

(** Number of times each module is instantiated, counting hierarchy
    reachable from main (an instance inside a doubly-instantiated parent
    counts twice). *)
let instantiation_counts circuit =
  let counts = Hashtbl.create 16 in
  let bump name n =
    Hashtbl.replace counts name (n + Option.value ~default:0 (Hashtbl.find_opt counts name))
  in
  let rec go mult m =
    List.iter
      (fun (_, of_module) ->
        bump of_module mult;
        go mult (find_module circuit of_module))
      (instances m)
  in
  bump circuit.main 1;
  go 1 (main_module circuit);
  counts

(** All instance paths (lists of instance names from main). *)
let instance_paths circuit =
  let acc = ref [] in
  let rec go prefix m =
    List.iter
      (fun (name, of_module) ->
        let path = prefix @ [ name ] in
        acc := path :: !acc;
        go path (find_module circuit of_module))
      (instances m)
  in
  go [] (main_module circuit);
  List.rev !acc

(** Module defining the instance at [path], and the instance's module. *)
let resolve_path circuit path =
  let rec go m path =
    match path with
    | [] -> ir_error "resolve_path: empty path"
    | [ last ] -> (
      match List.assoc_opt last (instances m) with
      | Some of_module -> (m, last, of_module)
      | None -> ir_error "module %s has no instance %s" m.name last)
    | inst :: rest -> (
      match List.assoc_opt inst (instances m) with
      | Some of_module -> go (find_module circuit of_module) rest
      | None -> ir_error "module %s has no instance %s" m.name inst)
  in
  go (main_module circuit) path

let replace_module circuit m' =
  {
    circuit with
    modules = List.map (fun m -> if m.name = m'.name then m' else m) circuit.modules;
  }

let add_module circuit m =
  if List.exists (fun x -> x.name = m.name) circuit.modules then
    ir_error "circuit %s already has module %s" circuit.cname m.name
  else { circuit with modules = circuit.modules @ [ m ] }

(** Drops module definitions not reachable from main. *)
let prune circuit =
  let keep = Hashtbl.create 16 in
  let rec go name =
    if not (Hashtbl.mem keep name) then begin
      Hashtbl.replace keep name ();
      List.iter (fun (_, of_module) -> go of_module) (instances (find_module circuit name))
    end
  in
  go circuit.main;
  { circuit with modules = List.filter (fun m -> Hashtbl.mem keep m.name) circuit.modules }

(* ------------------------------------------------------------------ *)
(* Sibling-instance adjacency (used by NoC-partition-mode)             *)
(* ------------------------------------------------------------------ *)

(** Within one module, which sibling instances feed each connect
    destination, seeing through chains of plain wires. *)
let instance_adjacency m =
  let wire_driver = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match s with
      | Connect { dst; src } when split_instance_ref dst = None ->
        Hashtbl.replace wire_driver dst src
      | Connect _ | Reg_update _ | Mem_write _ -> ())
    m.stmts;
  let memo = Hashtbl.create 64 in
  (* Instances transitively feeding [name] through combinational wires. *)
  let rec sources_of_name visiting name =
    match split_instance_ref name with
    | Some (inst, _) -> [ inst ]
    | None -> (
      match Hashtbl.find_opt memo name with
      | Some srcs -> srcs
      | None ->
        if List.mem name visiting then []
        else
          let srcs =
            match Hashtbl.find_opt wire_driver name with
            | None -> []
            | Some e ->
              List.concat_map (sources_of_name (name :: visiting)) (expr_refs e)
          in
          Hashtbl.replace memo name srcs;
          srcs)
  in
  let adj = Hashtbl.create 16 in
  let add a b =
    if a <> b then begin
      let cur = Option.value ~default:[] (Hashtbl.find_opt adj a) in
      if not (List.mem b cur) then Hashtbl.replace adj a (b :: cur)
    end
  in
  List.iter
    (fun s ->
      match s with
      | Connect { dst; src } -> (
        match split_instance_ref dst with
        | Some (dst_inst, _) ->
          let srcs = List.concat_map (sources_of_name []) (expr_refs src) in
          List.iter
            (fun src_inst ->
              add dst_inst src_inst;
              add src_inst dst_inst)
            srcs
        | None -> ())
      | Reg_update _ | Mem_write _ -> ())
    m.stmts;
  adj

(* ------------------------------------------------------------------ *)
(* Reparent (promote an instance to the top of the hierarchy)          *)
(* ------------------------------------------------------------------ *)

let assert_fresh m name =
  let taken =
    List.map (fun p -> p.pname) m.ports
    @ List.filter_map
        (fun c ->
          match c with
          | Wire { name; _ } | Reg { name; _ } | Mem { name; _ } | Inst { name; _ } ->
            Some name)
        m.comps
  in
  if List.mem name taken then
    ir_error "module %s: generated name %s collides with an existing name" m.name name

(** Hoists the instance at [path] one level: it leaves its defining
    module [t] (which gets punched ports in its place) and reappears as
    a sibling of [t]'s instance in [t]'s parent.  [t] must be
    instantiated exactly once.  Returns the updated circuit and the
    hoisted instance's new path. *)
let promote_one circuit path =
  match List.rev path with
  | [] -> ir_error "promote_one: empty path"
  | [ _ ] -> (circuit, path) (* already a direct child of main *)
  | inst :: parent_rev ->
    let parent_path = List.rev parent_rev in
    let t_parent, t_inst_name, t_module_name = resolve_path circuit parent_path in
    let t = find_module circuit t_module_name in
    let counts = instantiation_counts circuit in
    (match Hashtbl.find_opt counts t_module_name with
    | Some 1 -> ()
    | Some n ->
      ir_error
        "cannot promote %s out of module %s: %s is instantiated %d times (paths to \
         partitioned instances must be unique)"
        inst t_module_name t_module_name n
    | None -> ir_error "module %s unreachable from main" t_module_name);
    let of_module =
      match List.assoc_opt inst (instances t) with
      | Some m -> m
      | None -> ir_error "module %s has no instance %s" t.name inst
    in
    let sub = find_module circuit of_module in
    let punched p = inst ^ sep ^ p in
    List.iter (fun p -> assert_fresh t (punched p.pname)) sub.ports;
    (* New version of t: instance removed, ports punched. *)
    let rename_out n =
      match split_instance_ref n with
      | Some (i, q) when i = inst -> punched q
      | Some _ | None -> n
    in
    let t' =
      {
        t with
        ports =
          t.ports
          @ List.map
              (fun p ->
                (* Directions flip: the sub's inputs become outputs of t
                   (t forwards the driving values up), and vice versa. *)
                {
                  pname = punched p.pname;
                  pdir = (match p.pdir with Input -> Output | Output -> Input);
                  pwidth = p.pwidth;
                })
              sub.ports;
        comps =
          List.filter
            (fun c ->
              match c with
              | Inst { name; _ } -> name <> inst
              | Wire _ | Reg _ | Mem _ -> true)
            t.comps;
        stmts =
          List.map
            (fun s ->
              match s with
              | Connect { dst; src } ->
                Connect { dst = rename_out dst; src = map_refs rename_out src }
              | Reg_update { reg; next; enable } ->
                Reg_update
                  {
                    reg;
                    next = map_refs rename_out next;
                    enable = Option.map (map_refs rename_out) enable;
                  }
              | Mem_write { mem; addr; data; enable } ->
                Mem_write
                  {
                    mem;
                    addr = map_refs rename_out addr;
                    data = map_refs rename_out data;
                    enable = map_refs rename_out enable;
                  })
            t.stmts;
      }
    in
    (* New version of t's parent: instantiate sub directly, bridge wires. *)
    let new_inst = t_inst_name ^ sep ^ inst in
    assert_fresh t_parent new_inst;
    let bridges =
      List.map
        (fun p ->
          match p.pdir with
          | Input ->
            Connect
              {
                dst = instance_ref new_inst p.pname;
                src = Ref (instance_ref t_inst_name (punched p.pname));
              }
          | Output ->
            Connect
              {
                dst = instance_ref t_inst_name (punched p.pname);
                src = Ref (instance_ref new_inst p.pname);
              })
        sub.ports
    in
    let parent' =
      {
        t_parent with
        comps = t_parent.comps @ [ Inst { name = new_inst; of_module } ];
        stmts = t_parent.stmts @ bridges;
      }
    in
    let circuit = replace_module (replace_module circuit t') parent' in
    (* The hoisted instance now lives in t's parent, i.e. one level above
       [parent_path]. *)
    let grandparent_path = List.rev (List.tl (List.rev parent_path)) in
    (circuit, grandparent_path @ [ new_inst ])

(** Promotes the instance at [path] until it is a direct child of main;
    returns the circuit and the final instance name. *)
let promote_path circuit path =
  let rec go circuit path =
    match path with
    | [ top ] -> (circuit, top)
    | _ ->
      let circuit, path' = promote_one circuit path in
      go circuit path'
  in
  go circuit path

(* ------------------------------------------------------------------ *)
(* Grouping                                                            *)
(* ------------------------------------------------------------------ *)

type grouped = {
  g_circuit : circuit;
  g_wrapper_module : string;
  g_wrapper_inst : string;
}

(** Wraps the direct-child instances [insts] of main into a fresh module
    named [wrapper], instantiated in main under the same name.
    Connections among selected instances stay inside the wrapper; every
    other selected-instance port is punched through the wrapper as
    [inst$port]. *)
let group_in_main circuit ~insts ~wrapper =
  let main = main_module circuit in
  let selected = insts in
  let is_selected i = List.mem i selected in
  let inst_defs =
    List.map
      (fun i ->
        match List.assoc_opt i (instances main) with
        | Some of_module -> (i, of_module)
        | None -> ir_error "group_in_main: main has no instance %s" i)
      selected
  in
  let sub_ports i =
    let of_module = List.assoc i inst_defs in
    (find_module circuit of_module).ports
  in
  (* Is [e] exactly a reference to a selected instance's output? *)
  let selected_source e =
    match e with
    | Ref n -> (
      match split_instance_ref n with
      | Some (i, q) when is_selected i -> Some (i, q)
      | Some _ | None -> None)
    | _ -> None
  in
  (* Partition main's statements. *)
  let internal = ref [] (* moved into the wrapper *) in
  let boundary_in = ref [] (* (inst, port, driver expr) *) in
  let kept = ref [] in
  List.iter
    (fun s ->
      match s with
      | Connect { dst; src } -> (
        match split_instance_ref dst with
        | Some (i, p) when is_selected i -> (
          match selected_source src with
          | Some _ -> internal := Connect { dst; src } :: !internal
          | None -> boundary_in := (i, p, src) :: !boundary_in)
        | Some _ | None -> kept := s :: !kept)
      | Reg_update _ | Mem_write _ -> kept := s :: !kept)
    main.stmts;
  let internal = List.rev !internal in
  let boundary_in = List.rev !boundary_in in
  let kept = List.rev !kept in
  (* Outputs of selected instances used by the kept statements (or by the
     boundary input drivers, which also stay in main). *)
  let used_outputs = Hashtbl.create 16 in
  let note_refs e =
    List.iter
      (fun n ->
        match split_instance_ref n with
        | Some (i, q) when is_selected i -> Hashtbl.replace used_outputs (i, q) ()
        | Some _ | None -> ())
      (expr_refs e)
  in
  List.iter
    (fun s ->
      match s with
      | Connect { src; _ } -> note_refs src
      | Reg_update { next; enable; _ } ->
        note_refs next;
        Option.iter note_refs enable
      | Mem_write { addr; data; enable; _ } ->
        note_refs addr;
        note_refs data;
        note_refs enable)
    kept;
  List.iter (fun (_, _, e) -> note_refs e) boundary_in;
  let punched i p = i ^ sep ^ p in
  (* Wrapper module. *)
  let w_ports = ref [] in
  let w_stmts = ref (List.rev internal) in
  List.iter
    (fun (i, p, _) ->
      let width = (List.find (fun q -> q.pname = p) (sub_ports i)).pwidth in
      w_ports := { pname = punched i p; pdir = Input; pwidth = width } :: !w_ports;
      w_stmts := Connect { dst = instance_ref i p; src = Ref (punched i p) } :: !w_stmts)
    boundary_in;
  Hashtbl.iter
    (fun (i, q) () ->
      let width = (List.find (fun x -> x.pname = q) (sub_ports i)).pwidth in
      w_ports := { pname = punched i q; pdir = Output; pwidth = width } :: !w_ports;
      w_stmts := Connect { dst = punched i q; src = Ref (instance_ref i q) } :: !w_stmts)
    used_outputs;
  (* Propagate ready-valid annotations from the selected modules onto the
     wrapper's punched ports so fast-mode can repair the boundary.  Only
     bundles whose valid/ready both cross the boundary are kept. *)
  let w_port_names = List.map (fun p -> p.pname) !w_ports in
  let w_annots =
    List.concat_map
      (fun (i, of_module) ->
        let sub = find_module circuit of_module in
        List.filter_map
          (fun a ->
            match a with
            | Ready_valid { role; valid; ready; payload } ->
              let v = punched i valid and r = punched i ready in
              let pay = List.map (punched i) payload in
              if
                List.mem v w_port_names && List.mem r w_port_names
                && List.for_all (fun p -> List.mem p w_port_names) pay
              then Some (Ready_valid { role; valid = v; ready = r; payload = pay })
              else None
            | Noc_router _ -> None)
          sub.annots)
      inst_defs
  in
  let wrapper_module =
    {
      name = wrapper;
      ports = List.rev !w_ports;
      comps = List.map (fun (i, of_module) -> Inst { name = i; of_module }) inst_defs;
      stmts = List.rev !w_stmts;
      annots = w_annots;
    }
  in
  (* New main: selected instances replaced by the wrapper. *)
  let rename_use n =
    match split_instance_ref n with
    | Some (i, q) when is_selected i -> instance_ref wrapper (punched i q)
    | Some _ | None -> n
  in
  let kept' =
    List.map
      (fun s ->
        match s with
        | Connect { dst; src } -> Connect { dst; src = map_refs rename_use src }
        | Reg_update { reg; next; enable } ->
          Reg_update
            {
              reg;
              next = map_refs rename_use next;
              enable = Option.map (map_refs rename_use) enable;
            }
        | Mem_write { mem; addr; data; enable } ->
          Mem_write
            {
              mem;
              addr = map_refs rename_use addr;
              data = map_refs rename_use data;
              enable = map_refs rename_use enable;
            })
      kept
  in
  let boundary_in' =
    List.map
      (fun (i, p, e) ->
        Connect
          { dst = instance_ref wrapper (punched i p); src = map_refs rename_use e })
      boundary_in
  in
  let main' =
    {
      main with
      comps =
        List.filter
          (fun c ->
            match c with
            | Inst { name; _ } -> not (is_selected name)
            | Wire _ | Reg _ | Mem _ -> true)
          main.comps
        @ [ Inst { name = wrapper; of_module = wrapper } ];
      stmts = kept' @ boundary_in';
    }
  in
  let circuit = add_module (replace_module circuit main') wrapper_module in
  { g_circuit = circuit; g_wrapper_module = wrapper; g_wrapper_inst = wrapper }

(* ------------------------------------------------------------------ *)
(* Extract / Remove                                                    *)
(* ------------------------------------------------------------------ *)

type boundary_port = {
  bp_name : string;
  bp_width : int;
  bp_dir : dir;  (** Direction from the partition (wrapper) perspective. *)
}

type split = {
  sp_partition : circuit;  (** The wrapper as its own circuit. *)
  sp_rest : circuit;  (** Main with the wrapper's ports punched out. *)
  sp_boundary : boundary_port list;
}

(** Cuts the wrapper instance [wrapper_inst] (a direct child of main) out
    of the circuit.  The partition circuit's main is the wrapper module;
    the rest circuit's main gains the wrapper's ports (flipped). *)
let split_at_wrapper circuit ~wrapper_inst =
  let main = main_module circuit in
  let of_module =
    match List.assoc_opt wrapper_inst (instances main) with
    | Some m -> m
    | None -> ir_error "split_at_wrapper: main has no instance %s" wrapper_inst
  in
  let w = find_module circuit of_module in
  let boundary =
    List.map (fun p -> { bp_name = p.pname; bp_width = p.pwidth; bp_dir = p.pdir }) w.ports
  in
  let partition = prune { circuit with cname = circuit.cname ^ sep ^ of_module; main = of_module } in
  (* The rest: wrapper input ports become outputs of main and vice versa. *)
  List.iter (fun p -> assert_fresh main p.pname) w.ports;
  let rename n =
    match split_instance_ref n with
    | Some (i, q) when i = wrapper_inst -> q
    | Some _ | None -> n
  in
  let rest_main =
    {
      main with
      ports =
        main.ports
        @ List.map
            (fun p ->
              {
                pname = p.pname;
                pdir = (match p.pdir with Input -> Output | Output -> Input);
                pwidth = p.pwidth;
              })
            w.ports;
      comps =
        List.filter
          (fun c ->
            match c with
            | Inst { name; _ } -> name <> wrapper_inst
            | Wire _ | Reg _ | Mem _ -> true)
          main.comps;
      stmts =
        List.map
          (fun s ->
            match s with
            | Connect { dst; src } ->
              Connect { dst = rename dst; src = map_refs rename src }
            | Reg_update { reg; next; enable } ->
              Reg_update
                {
                  reg;
                  next = map_refs rename next;
                  enable = Option.map (map_refs rename) enable;
                }
            | Mem_write { mem; addr; data; enable } ->
              Mem_write
                {
                  mem;
                  addr = map_refs rename addr;
                  data = map_refs rename data;
                  enable = map_refs rename enable;
                })
          main.stmts;
    }
  in
  let rest = prune (replace_module { circuit with cname = circuit.cname ^ sep ^ "rest" } rest_main) in
  { sp_partition = partition; sp_rest = rest; sp_boundary = boundary }

(** Stitches a split back into a single circuit by instantiating both
    sides under a new top and wiring the boundary ports together.  The
    result must behave identically to the pre-split circuit; used to
    validate the partitioning transforms. *)
let recombine split =
  let part_main = main_module split.sp_partition in
  let rest_main = main_module split.sp_rest in
  let b = Builder.create (rest_main.name ^ sep ^ "recombined") in
  (* The rest keeps the original external ports: everything that is not a
     boundary port. *)
  let boundary_names = List.map (fun bp -> bp.bp_name) split.sp_boundary in
  let is_boundary n = List.mem n boundary_names in
  let p_inst = Builder.inst b "part" part_main.name in
  let r_inst = Builder.inst b "rest" rest_main.name in
  List.iter
    (fun (p : port) ->
      if not (is_boundary p.pname) then
        match p.pdir with
        | Input ->
          let x = Builder.input b p.pname p.pwidth in
          Builder.connect_in b r_inst p.pname x
        | Output ->
          Builder.output b p.pname p.pwidth;
          Builder.connect b p.pname (Builder.of_inst r_inst p.pname))
    rest_main.ports;
  List.iter
    (fun bp ->
      match bp.bp_dir with
      | Input ->
        (* Into the partition, out of the rest. *)
        Builder.connect_in b p_inst bp.bp_name (Builder.of_inst r_inst bp.bp_name)
      | Output -> Builder.connect_in b r_inst bp.bp_name (Builder.of_inst p_inst bp.bp_name))
    split.sp_boundary;
  let top = Builder.finish b in
  let modules =
    split.sp_rest.modules
    @ List.filter
        (fun m -> not (List.exists (fun m' -> m'.name = m.name) split.sp_rest.modules))
        split.sp_partition.modules
  in
  { cname = top.name; main = top.name; modules = modules @ [ top ] }
