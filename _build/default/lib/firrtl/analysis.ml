(* Combinational analysis over a *flat* module (no instances): name
   classification, driver lookup, levelization (topological order of
   combinational assignments) with cycle detection, and the
   input-port dependency sets of every name.  FireRipper uses the
   output-port dependency sets to classify source vs. sink channels and
   to enforce the cross-partition chain-length bound; the RTL simulator
   uses the levelized order for single-pass evaluation. *)

open Ast

type kind =
  | K_input
  | K_output
  | K_wire
  | K_reg
  | K_mem

exception Comb_cycle of string list
(** Raised with the cycle path when combinational logic loops. *)

type t = {
  flat : module_def;
  kinds : (string, kind) Hashtbl.t;
  drivers : (string, expr) Hashtbl.t;  (** wire/output name -> driving expr *)
  order : string list;  (** levelized evaluation order (deps first) *)
  comb_deps : (string, string list) Hashtbl.t;
      (** name -> input ports it combinationally depends on *)
}

let kind_of t name =
  match Hashtbl.find_opt t.kinds name with
  | Some k -> k
  | None -> ir_error "analysis: unknown name %s" name

let driver_of t name = Hashtbl.find_opt t.drivers name

let build flat =
  let kinds = Hashtbl.create 256 in
  List.iter
    (fun p ->
      Hashtbl.replace kinds p.pname (match p.pdir with Input -> K_input | Output -> K_output))
    flat.ports;
  List.iter
    (fun c ->
      match c with
      | Wire { name; _ } -> Hashtbl.replace kinds name K_wire
      | Reg { name; _ } -> Hashtbl.replace kinds name K_reg
      | Mem { name; _ } -> Hashtbl.replace kinds name K_mem
      | Inst { name; _ } -> ir_error "analysis: module %s is not flat (instance %s)" flat.name name)
    flat.comps;
  let drivers = Hashtbl.create 256 in
  List.iter
    (fun s ->
      match s with
      | Connect { dst; src } -> Hashtbl.replace drivers dst src
      | Reg_update _ | Mem_write _ -> ())
    flat.stmts;
  (* Levelization by DFS over combinational references.  A reference to a
     register or an input port is a leaf; a reference to a wire/output
     recurses through its driver. *)
  let order = ref [] in
  let state = Hashtbl.create 256 in
  (* state: 0 absent, 1 visiting, 2 done *)
  let rec visit path name =
    match Hashtbl.find_opt state name with
    | Some 2 -> ()
    | Some 1 ->
      let cycle = name :: List.rev (List.filter (fun n -> n <> "") path) in
      raise (Comb_cycle cycle)
    | Some _ | None -> (
      match Hashtbl.find_opt kinds name with
      | Some (K_input | K_reg | K_mem) -> Hashtbl.replace state name 2
      | Some (K_wire | K_output) ->
        Hashtbl.replace state name 1;
        (match Hashtbl.find_opt drivers name with
        | Some e -> List.iter (visit (name :: path)) (expr_refs e)
        | None -> ir_error "analysis: %s has no driver" name);
        Hashtbl.replace state name 2;
        order := name :: !order
      | None -> ir_error "analysis: unknown name %s" name)
  in
  Hashtbl.iter (fun name _ -> visit [] name) kinds;
  let order = List.rev !order in
  (* Input-port dependency sets, propagated in levelized order. *)
  let comb_deps = Hashtbl.create 256 in
  let deps_of name =
    match Hashtbl.find_opt kinds name with
    | Some K_input -> [ name ]
    | Some (K_reg | K_mem) -> []
    | Some (K_wire | K_output) | None ->
      Option.value ~default:[] (Hashtbl.find_opt comb_deps name)
  in
  List.iter
    (fun name ->
      match Hashtbl.find_opt drivers name with
      | None -> ()
      | Some e ->
        let deps =
          List.sort_uniq compare (List.concat_map deps_of (expr_refs e))
        in
        Hashtbl.replace comb_deps name deps)
    order;
  { flat; kinds; drivers; order; comb_deps }

(** Input ports that [name] combinationally depends on. *)
let comb_inputs t name =
  match kind_of t name with
  | K_input -> [ name ]
  | K_reg | K_mem -> []
  | K_wire | K_output -> Option.value ~default:[] (Hashtbl.find_opt t.comb_deps name)

(** For each output port: the input ports it combinationally depends on.
    An empty list marks a "source" port in FireAxe terms (driven only by
    sequential state); a non-empty list marks a "sink" port. *)
let output_port_deps t =
  List.filter_map
    (fun p ->
      match p.pdir with
      | Output -> Some (p.pname, comb_inputs t p.pname)
      | Input -> None)
    t.flat.ports

(** Names in the combinational cone of [roots]: every wire/output that
    [roots] transitively read, in levelized evaluation order.  Used to
    evaluate one output channel before all inputs have arrived. *)
let cone t roots =
  let wanted = Hashtbl.create 64 in
  let rec mark name =
    if not (Hashtbl.mem wanted name) then begin
      Hashtbl.replace wanted name ();
      match Hashtbl.find_opt t.drivers name with
      | Some e -> List.iter mark (expr_refs e)
      | None -> ()
    end
  in
  List.iter mark roots;
  List.filter (fun n -> Hashtbl.mem wanted n) t.order
