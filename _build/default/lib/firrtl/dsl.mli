(** Expression combinators for building [Ast.expr] values concisely;
    open locally, e.g. [Dsl.(a +: b)]. *)

val lit : width:Ast.width -> int -> Ast.expr
val one : Ast.expr
val zero : Ast.expr
val ref_ : string -> Ast.expr
val ( +: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( -: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( *: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( /: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( %: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( &: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( |: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( ^: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <<: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >>: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( ==: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <>: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <=: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >=: ) : Ast.expr -> Ast.expr -> Ast.expr
val not_ : Ast.expr -> Ast.expr
val neg : Ast.expr -> Ast.expr
val andr : Ast.expr -> Ast.expr
val orr : Ast.expr -> Ast.expr
val xorr : Ast.expr -> Ast.expr
val mux : Ast.expr -> Ast.expr -> Ast.expr -> Ast.expr
val bits : Ast.expr -> hi:int -> lo:int -> Ast.expr
val bit : Ast.expr -> int -> Ast.expr
val cat : Ast.expr -> Ast.expr -> Ast.expr
val read : string -> Ast.expr -> Ast.expr

(** Concatenates with the first element most significant. *)
val cat_list : Ast.expr list -> Ast.expr

(** First matching condition wins, else [default]. *)
val select : default:Ast.expr -> (Ast.expr * Ast.expr) list -> Ast.expr
