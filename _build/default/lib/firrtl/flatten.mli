(** Hierarchy flattening: inlines every instance reachable from main
    into one flat module (wires, registers, memories only).  Instance
    ports become wires named [path$inst$port]. *)

(** The flat-name separator ("$"). *)
val sep : string

(** Flat name of a local or instance-port name under a prefix. *)
val flat_name : string -> string -> string

(** Flattens a checked circuit; raises [Ast.Ir_error] on malformed
    input. *)
val flatten : Ast.circuit -> Ast.module_def

(** Wraps a flat module as a single-module circuit. *)
val to_circuit : Ast.module_def -> Ast.circuit
