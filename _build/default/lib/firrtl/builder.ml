(* Imperative builder for module definitions.  Generators create a
   builder, declare ports and components, emit statements, and call
   [finish] to obtain a checked-for-shape [Ast.module_def]. *)

open Ast

type t = {
  bname : string;
  mutable ports : port list;  (* reversed *)
  mutable comps : component list;  (* reversed *)
  mutable stmts : stmt list;  (* reversed *)
  mutable annots : annotation list;  (* reversed *)
  mutable fresh : int;
}

let create bname = { bname; ports = []; comps = []; stmts = []; annots = []; fresh = 0 }

let name b = b.bname

let input b pname pwidth =
  b.ports <- { pname; pdir = Input; pwidth } :: b.ports;
  Ref pname

(** Declares an output port; drive it later with [connect]. *)
let output b pname pwidth =
  b.ports <- { pname; pdir = Output; pwidth } :: b.ports

let wire b name width =
  b.comps <- Wire { name; width } :: b.comps;
  Ref name

let reg b ?(init = 0) name width =
  b.comps <- Reg { name; width; init } :: b.comps;
  Ref name

let mem b name ~width ~depth =
  b.comps <- Mem { name; width; depth } :: b.comps;
  name

let inst b name of_module =
  b.comps <- Inst { name; of_module } :: b.comps;
  name

let connect b dst src = b.stmts <- Connect { dst; src } :: b.stmts

(** Connects an instance input port: [connect_in b inst "port" e]. *)
let connect_in b inst port src =
  b.stmts <- Connect { dst = instance_ref inst port; src } :: b.stmts

(** Reference to an instance output port. *)
let of_inst inst port = Ref (instance_ref inst port)

let reg_next b ?enable reg next = b.stmts <- Reg_update { reg; next; enable } :: b.stmts

let mem_write b mem ~addr ~data ~enable =
  b.stmts <- Mem_write { mem; addr; data; enable } :: b.stmts

let annotate b a = b.annots <- a :: b.annots

(** Declares a fresh intermediate wire driven by [src]; returns a
    reference to it.  Used to name subexpressions. *)
(* Synthesized assertion: a conventionally named 1-bit wire, active
   high on violation.  Flattening preserves the marker in the name, so
   harnesses (Rtlsim.Assertions, the partition runtime) can find every
   assertion anywhere in the hierarchy. *)
let assertion_prefix = "assert$"

let assertion b name violated =
  let n = assertion_prefix ^ name in
  ignore (wire b n 1);
  connect b n violated

(* Synthesized printf: a conventionally named fire wire plus argument
   wires.  The host side (Rtlsim.Printfs) scans for the markers and
   logs (cycle, label, args) whenever the fire wire is high. *)
let printf_prefix = "printf$"

let printf b name ~fire args =
  let base = printf_prefix ^ name in
  ignore (wire b (base ^ "$fire") 1);
  connect b (base ^ "$fire") fire;
  List.iteri
    (fun k (arg, width) ->
      let n = Printf.sprintf "%s$arg%d" base k in
      ignore (wire b n width);
      connect b n arg)
    args

let node b ~width src =
  let n = Printf.sprintf "_node_%d" b.fresh in
  b.fresh <- b.fresh + 1;
  b.comps <- Wire { name = n; width } :: b.comps;
  b.stmts <- Connect { dst = n; src } :: b.stmts;
  Ref n

let finish b =
  {
    name = b.bname;
    ports = List.rev b.ports;
    comps = List.rev b.comps;
    stmts = List.rev b.stmts;
    annots = List.rev b.annots;
  }
