lib/firrtl/analysis.ml: Ast Hashtbl List Option
