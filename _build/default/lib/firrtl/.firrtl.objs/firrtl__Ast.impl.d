lib/firrtl/ast.ml: Format Hashtbl List Option String
