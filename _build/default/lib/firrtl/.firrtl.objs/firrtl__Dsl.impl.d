lib/firrtl/dsl.ml: Ast List
