lib/firrtl/flatten.mli: Ast
