lib/firrtl/builder.mli: Ast
