lib/firrtl/hierarchy.mli: Ast Hashtbl
