lib/firrtl/text.ml: Ast Buffer Format List Printf String
