lib/firrtl/text.mli: Ast
