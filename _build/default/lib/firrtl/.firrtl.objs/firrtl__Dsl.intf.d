lib/firrtl/dsl.mli: Ast
