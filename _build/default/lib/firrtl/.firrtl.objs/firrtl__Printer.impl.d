lib/firrtl/printer.ml: Ast Fmt List
