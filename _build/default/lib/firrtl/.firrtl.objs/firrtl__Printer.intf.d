lib/firrtl/printer.mli: Ast Format
