lib/firrtl/builder.ml: Ast List Printf
