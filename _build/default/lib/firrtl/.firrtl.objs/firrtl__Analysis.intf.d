lib/firrtl/analysis.mli: Ast Hashtbl
