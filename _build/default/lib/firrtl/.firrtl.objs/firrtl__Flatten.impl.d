lib/firrtl/flatten.ml: Ast List Option
