lib/firrtl/hierarchy.ml: Ast Builder Hashtbl List Option
