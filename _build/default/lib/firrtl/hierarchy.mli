(** Module-hierarchy queries and surgery — the mechanical transforms
    FireRipper is built from (paper Fig. 5): promote (Reparent), group,
    and split (Extract / Remove), plus recombination for validating the
    cuts. *)

(** The punched-port / promoted-instance separator ("#"). *)
val sep : string

val instances : Ast.module_def -> (string * string) list

(** Instantiation counts reachable from main (nested multiplicities
    multiply). *)
val instantiation_counts : Ast.circuit -> (string, int) Hashtbl.t

val instance_paths : Ast.circuit -> string list list

(** (defining module, instance name, instance's module) at [path]. *)
val resolve_path : Ast.circuit -> string list -> Ast.module_def * string * string

val replace_module : Ast.circuit -> Ast.module_def -> Ast.circuit
val add_module : Ast.circuit -> Ast.module_def -> Ast.circuit

(** Drops module definitions unreachable from main. *)
val prune : Ast.circuit -> Ast.circuit

(** Sibling-instance adjacency within a module, seeing through wires
    (used by NoC-partition-mode). *)
val instance_adjacency : Ast.module_def -> (string, string list) Hashtbl.t

val assert_fresh : Ast.module_def -> string -> unit

(** Hoists the instance at [path] one level; the path to the hoisted
    instance is returned.  Modules along the path must be uniquely
    instantiated. *)
val promote_one : Ast.circuit -> string list -> Ast.circuit * string list

(** Promotes until the instance is a direct child of main; returns its
    final instance name. *)
val promote_path : Ast.circuit -> string list -> Ast.circuit * string

type grouped = {
  g_circuit : Ast.circuit;
  g_wrapper_module : string;
  g_wrapper_inst : string;
}

(** Wraps direct-child instances of main in a fresh wrapper module;
    selected-to-selected connections stay internal, everything else is
    punched as [inst#port]. *)
val group_in_main : Ast.circuit -> insts:string list -> wrapper:string -> grouped

type boundary_port = {
  bp_name : string;
  bp_width : int;
  bp_dir : Ast.dir;  (** from the partition (wrapper) perspective *)
}

type split = {
  sp_partition : Ast.circuit;
  sp_rest : Ast.circuit;
  sp_boundary : boundary_port list;
}

(** Cuts a wrapper instance out of main: the wrapper becomes its own
    circuit, the rest gains the wrapper's ports flipped. *)
val split_at_wrapper : Ast.circuit -> wrapper_inst:string -> split

(** Stitches a split back together; must behave identically to the
    pre-split circuit (used to validate the transforms). *)
val recombine : split -> Ast.circuit
