(** Imperative builder for module definitions: declare ports and
    components, emit statements, and call {!finish} to obtain an
    [Ast.module_def]. *)

type t

val create : string -> t
val name : t -> string

(** Declares an input port and returns a reference to it. *)
val input : t -> string -> Ast.width -> Ast.expr

(** Declares an output port; drive it later with {!connect}. *)
val output : t -> string -> Ast.width -> unit

val wire : t -> string -> Ast.width -> Ast.expr
val reg : t -> ?init:int -> string -> Ast.width -> Ast.expr

(** Declares a memory; returns its name (read it with [Dsl.read]). *)
val mem : t -> string -> width:Ast.width -> depth:int -> string

(** Declares an instance; returns its name. *)
val inst : t -> string -> string -> string

val connect : t -> string -> Ast.expr -> unit

(** Connects an instance input port. *)
val connect_in : t -> string -> string -> Ast.expr -> unit

(** Reference to an instance output port. *)
val of_inst : string -> string -> Ast.expr

(** Registers [reg <= next] (guarded by [enable] when given). *)
val reg_next : t -> ?enable:Ast.expr -> string -> Ast.expr -> unit

val mem_write : t -> string -> addr:Ast.expr -> data:Ast.expr -> enable:Ast.expr -> unit
val annotate : t -> Ast.annotation -> unit

(** Synthesized assertion (FireSim-style): declares the conventionally
    named 1-bit wire [assert$<name>], active high on violation; found
    by harnesses anywhere in the flattened hierarchy. *)
val assertion : t -> string -> Ast.expr -> unit

(** The [assert$] name marker. *)
val assertion_prefix : string

(** Synthesized printf (FireSim-style): declares the fire wire
    [printf$<name>$fire] and one [printf$<name>$arg<k>] wire per
    (argument, width) pair; the host logs args on cycles where fire is
    high (see [Rtlsim.Printfs]). *)
val printf : t -> string -> fire:Ast.expr -> (Ast.expr * Ast.width) list -> unit

(** The [printf$] name marker. *)
val printf_prefix : string

(** Declares a fresh intermediate wire driven by the expression and
    returns a reference to it. *)
val node : t -> width:Ast.width -> Ast.expr -> Ast.expr

val finish : t -> Ast.module_def
