(** Human-readable pretty-printer for circuits. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_port : Format.formatter -> Ast.port -> unit
val pp_component : Format.formatter -> Ast.component -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_annotation : Format.formatter -> Ast.annotation -> unit
val pp_module : Format.formatter -> Ast.module_def -> unit
val pp_circuit : Format.formatter -> Ast.circuit -> unit
val circuit_to_string : Ast.circuit -> string

(** One-line summary: module / component / instance counts. *)
val summary : Ast.circuit -> string
