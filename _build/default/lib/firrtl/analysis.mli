(** Combinational analysis over a flat module: name classification,
    levelization with cycle detection, and input-port dependency sets —
    the facts FireRipper's source/sink classification and the
    simulator's single-pass evaluation are built on. *)

type kind =
  | K_input
  | K_output
  | K_wire
  | K_reg
  | K_mem

exception Comb_cycle of string list
(** Raised with the cycle path when combinational logic loops. *)

type t = {
  flat : Ast.module_def;
  kinds : (string, kind) Hashtbl.t;
  drivers : (string, Ast.expr) Hashtbl.t;
  order : string list;  (** levelized evaluation order (deps first) *)
  comb_deps : (string, string list) Hashtbl.t;
}

val kind_of : t -> string -> kind
val driver_of : t -> string -> Ast.expr option

(** Raises {!Comb_cycle} on combinational loops, [Ast.Ir_error] on
    non-flat or malformed modules. *)
val build : Ast.module_def -> t

(** Input ports that [name] combinationally depends on. *)
val comb_inputs : t -> string -> string list

(** For each output port: its combinational input dependencies (empty =
    a "source" port in FireAxe terms). *)
val output_port_deps : t -> (string * string list) list

(** Names in the combinational cone of [roots], in evaluation order. *)
val cone : t -> string list -> string list
