(* Hierarchy flattening: inlines every module instance reachable from the
   main module into one flat module containing only wires, registers and
   memories.  Instance ports become wires named [path$inst$port]; local
   names are prefixed by their instance path.  The flat form is what the
   RTL simulator and the combinational-dependency analysis consume. *)

open Ast

let sep = "$"

(** Flat name of a local name [n] under instance-path prefix [prefix]
    (either empty or ending in [sep]). *)
let flat_name prefix n =
  match split_instance_ref n with
  | Some (inst, port) -> prefix ^ inst ^ sep ^ port
  | None -> prefix ^ n

let flatten circuit =
  check_circuit circuit;
  let comps = ref [] in
  let stmts = ref [] in
  let main = main_module circuit in
  let rec go prefix m =
    let rename n = flat_name prefix n in
    List.iter
      (fun comp ->
        match comp with
        | Wire { name; width } -> comps := Wire { name = prefix ^ name; width } :: !comps
        | Reg { name; width; init } ->
          comps := Reg { name = prefix ^ name; width; init } :: !comps
        | Mem { name; width; depth } ->
          comps := Mem { name = prefix ^ name; width; depth } :: !comps
        | Inst { name; of_module } ->
          let sub = find_module circuit of_module in
          (* Instance ports become plain wires at the flat level. *)
          List.iter
            (fun p ->
              comps :=
                Wire { name = prefix ^ name ^ sep ^ p.pname; width = p.pwidth }
                :: !comps)
            sub.ports;
          go (prefix ^ name ^ sep) sub)
      m.comps;
    List.iter
      (fun s ->
        let s' =
          match s with
          | Connect { dst; src } -> Connect { dst = rename dst; src = map_names rename src }
          | Reg_update { reg; next; enable } ->
            Reg_update
              {
                reg = rename reg;
                next = map_names rename next;
                enable = Option.map (map_names rename) enable;
              }
          | Mem_write { mem; addr; data; enable } ->
            Mem_write
              {
                mem = rename mem;
                addr = map_names rename addr;
                data = map_names rename data;
                enable = map_names rename enable;
              }
        in
        stmts := s' :: !stmts)
      m.stmts
  in
  go "" main;
  {
    name = main.name;
    ports = main.ports;
    comps = List.rev !comps;
    stmts = List.rev !stmts;
    annots = main.annots;
  }

(** Wraps a flat (instance-free) module as a single-module circuit. *)
let to_circuit flat = { cname = flat.name; main = flat.name; modules = [ flat ] }
