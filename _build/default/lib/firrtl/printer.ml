(* Human-readable pretty-printer for circuits, used by diagnostics and
   the CLI's describe command. *)

open Ast

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let unop_symbol = function
  | Not -> "~"
  | Neg -> "-"
  | Andr -> "andr"
  | Orr -> "orr"
  | Xorr -> "xorr"

let rec pp_expr ppf expr =
  match expr with
  | Lit { value; width } -> Fmt.pf ppf "%d'd%d" width value
  | Ref name -> Fmt.string ppf name
  | Mux (c, t, f) -> Fmt.pf ppf "mux(%a, %a, %a)" pp_expr c pp_expr t pp_expr f
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Unop (op, a) -> Fmt.pf ppf "%s(%a)" (unop_symbol op) pp_expr a
  | Bits { e; hi; lo } -> Fmt.pf ppf "%a[%d:%d]" pp_expr e hi lo
  | Cat (a, b) -> Fmt.pf ppf "cat(%a, %a)" pp_expr a pp_expr b
  | Read { mem; addr } -> Fmt.pf ppf "%s[%a]" mem pp_expr addr

let pp_port ppf p =
  Fmt.pf ppf "%s %s : UInt<%d>"
    (match p.pdir with Input -> "input" | Output -> "output")
    p.pname p.pwidth

let pp_component ppf c =
  match c with
  | Wire { name; width } -> Fmt.pf ppf "wire %s : UInt<%d>" name width
  | Reg { name; width; init } -> Fmt.pf ppf "reg %s : UInt<%d> init %d" name width init
  | Mem { name; width; depth } -> Fmt.pf ppf "mem %s : UInt<%d>[%d]" name width depth
  | Inst { name; of_module } -> Fmt.pf ppf "inst %s of %s" name of_module

let pp_stmt ppf s =
  match s with
  | Connect { dst; src } -> Fmt.pf ppf "%s <= %a" dst pp_expr src
  | Reg_update { reg; next; enable } -> (
    match enable with
    | None -> Fmt.pf ppf "%s <=r %a" reg pp_expr next
    | Some e -> Fmt.pf ppf "%s <=r %a when %a" reg pp_expr next pp_expr e)
  | Mem_write { mem; addr; data; enable } ->
    Fmt.pf ppf "%s[%a] <=w %a when %a" mem pp_expr addr pp_expr data pp_expr enable

let pp_annotation ppf a =
  match a with
  | Ready_valid { role; valid; ready; payload } ->
    Fmt.pf ppf "ready_valid %s valid=%s ready=%s payload=[%a]"
      (match role with Rv_source -> "source" | Rv_sink -> "sink")
      valid ready
      Fmt.(list ~sep:comma string)
      payload
  | Noc_router { index } -> Fmt.pf ppf "noc_router %d" index

let pp_module ppf m =
  Fmt.pf ppf "@[<v 2>module %s:@,%a@,%a@,%a@,%a@]" m.name
    Fmt.(list ~sep:cut pp_port)
    m.ports
    Fmt.(list ~sep:cut pp_component)
    m.comps
    Fmt.(list ~sep:cut pp_stmt)
    m.stmts
    Fmt.(list ~sep:cut pp_annotation)
    m.annots

let pp_circuit ppf c =
  Fmt.pf ppf "@[<v 2>circuit %s (main %s):@,%a@]" c.cname c.main
    Fmt.(list ~sep:cut pp_module)
    c.modules

let circuit_to_string c = Fmt.str "%a" pp_circuit c

(** One-line summary used for quick feedback: module count, component
    counts, port widths of main. *)
let summary c =
  let n_modules = List.length c.modules in
  let wires, regs, mems, insts =
    List.fold_left
      (fun (w, r, m, i) md ->
        List.fold_left
          (fun (w, r, m, i) comp ->
            match comp with
            | Wire _ -> (w + 1, r, m, i)
            | Reg _ -> (w, r + 1, m, i)
            | Mem _ -> (w, r, m + 1, i)
            | Inst _ -> (w, r, m, i + 1))
          (w, r, m, i) md.comps)
      (0, 0, 0, 0) c.modules
  in
  Fmt.str "circuit %s: %d modules, %d wires, %d regs, %d mems, %d instances"
    c.cname n_modules wires regs mems insts
