(* Structural IR for digital circuits, in the spirit of FIRRTL.

   A circuit is a set of module definitions with a designated main module.
   Modules contain ports, components (wires, registers, memories, module
   instances) and statements (connections, register updates, memory
   writes).  All values are unsigned integers of a fixed bit width between
   1 and 62, so that every value fits in an OCaml [int] with room to
   spare.  Arithmetic wraps modulo [2^width]. *)

exception Ir_error of string

let ir_error fmt = Format.kasprintf (fun s -> raise (Ir_error s)) fmt

let max_width = 62

type width = int

type dir =
  | Input
  | Output

type port = {
  pname : string;
  pdir : dir;
  pwidth : width;
}

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type unop =
  | Not
  | Neg
  | Andr
  | Orr
  | Xorr

type expr =
  | Lit of { value : int; width : width }
  | Ref of string
      (** A local name: port, wire, register, or an instance port written
          as ["inst.port"]. *)
  | Mux of expr * expr * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Bits of { e : expr; hi : int; lo : int }  (** Bit slice, inclusive. *)
  | Cat of expr * expr  (** [Cat (hi, lo)]: hi bits above lo bits. *)
  | Read of { mem : string; addr : expr }
      (** Asynchronous (combinational) memory read. *)

type component =
  | Wire of { name : string; width : width }
  | Reg of { name : string; width : width; init : int }
  | Mem of { name : string; width : width; depth : int }
  | Inst of { name : string; of_module : string }

type stmt =
  | Connect of { dst : string; src : expr }
      (** [dst] is a wire, an output port, or an instance input port
          ["inst.port"].  Exactly one connect per destination. *)
  | Reg_update of { reg : string; next : expr; enable : expr option }
      (** [reg <= next] each cycle (when [enable] holds, if present). *)
  | Mem_write of { mem : string; addr : expr; data : expr; enable : expr }

type rv_role =
  | Rv_source  (** The module drives valid/payload and receives ready. *)
  | Rv_sink  (** The module receives valid/payload and drives ready. *)

(* Annotations carry micro-architectural intent that the FireRipper
   compiler exploits: ready-valid bundles at module boundaries (fast-mode
   backpressure repair) and NoC router identities (NoC-partition-mode). *)
type annotation =
  | Ready_valid of {
      role : rv_role;
      valid : string;
      ready : string;
      payload : string list;
    }
  | Noc_router of { index : int }

type module_def = {
  name : string;
  ports : port list;
  comps : component list;
  stmts : stmt list;
  annots : annotation list;
}

type circuit = {
  cname : string;
  main : string;
  modules : module_def list;
}

(* ------------------------------------------------------------------ *)
(* Basic accessors                                                     *)
(* ------------------------------------------------------------------ *)

let find_module circuit name =
  match List.find_opt (fun m -> m.name = name) circuit.modules with
  | Some m -> m
  | None -> ir_error "circuit %s: no module named %s" circuit.cname name

let main_module circuit = find_module circuit circuit.main

let find_port m name =
  match List.find_opt (fun p -> p.pname = name) m.ports with
  | Some p -> p
  | None -> ir_error "module %s: no port named %s" m.name name

let input_ports m = List.filter (fun p -> p.pdir = Input) m.ports
let output_ports m = List.filter (fun p -> p.pdir = Output) m.ports

(** Splits an instance-port reference ["inst.port"] into [Some (inst,
    port)]; returns [None] for plain local names. *)
let split_instance_ref name =
  match String.index_opt name '.' with
  | None -> None
  | Some i ->
    Some (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))

let instance_ref inst port = inst ^ "." ^ port

(* ------------------------------------------------------------------ *)
(* Value helpers                                                       *)
(* ------------------------------------------------------------------ *)

let mask width =
  if width < 1 || width > max_width then
    ir_error "width %d out of supported range 1..%d" width max_width
  else (1 lsl width) - 1

let truncate width v = v land mask width

(* ------------------------------------------------------------------ *)
(* Width inference                                                     *)
(* ------------------------------------------------------------------ *)

(** Width environment: resolves a [Ref] or memory name to its width. *)
type env = {
  width_of_name : string -> width;
  width_of_mem : string -> width;
}

let rec width_of env expr =
  match expr with
  | Lit { width; _ } -> width
  | Ref name -> env.width_of_name name
  | Mux (_, t, f) -> max (width_of env t) (width_of env f)
  | Binop (op, a, b) -> (
    match op with
    | Eq | Neq | Lt | Le | Gt | Ge -> 1
    | Add | Sub | Mul | Div | Rem | And | Or | Xor -> max (width_of env a) (width_of env b)
    | Shl | Shr -> width_of env a)
  | Unop (op, a) -> (
    match op with
    | Not | Neg -> width_of env a
    | Andr | Orr | Xorr -> 1)
  | Bits { hi; lo; _ } ->
    if hi < lo || lo < 0 then ir_error "bad bit slice [%d:%d]" hi lo
    else hi - lo + 1
  | Cat (a, b) -> width_of env a + width_of env b
  | Read { mem; _ } -> env.width_of_mem mem

(** Width environment for names local to a module definition.  Instance
    ports resolve through [lookup_module]. *)
let module_env circuit m =
  let tbl = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace tbl p.pname p.pwidth) m.ports;
  let mems = Hashtbl.create 8 in
  List.iter
    (fun comp ->
      match comp with
      | Wire { name; width } | Reg { name; width; _ } -> Hashtbl.replace tbl name width
      | Mem { name; width; _ } -> Hashtbl.replace mems name width
      | Inst _ -> ())
    m.comps;
  let insts = Hashtbl.create 8 in
  List.iter
    (fun comp ->
      match comp with
      | Inst { name; of_module } -> Hashtbl.replace insts name of_module
      | Wire _ | Reg _ | Mem _ -> ())
    m.comps;
  let width_of_name name =
    match Hashtbl.find_opt tbl name with
    | Some w -> w
    | None -> (
      match split_instance_ref name with
      | Some (inst, port) -> (
        match Hashtbl.find_opt insts inst with
        | Some of_module -> (find_port (find_module circuit of_module) port).pwidth
        | None -> ir_error "module %s: unknown instance %s" m.name inst)
      | None -> ir_error "module %s: unknown name %s" m.name name)
  in
  let width_of_mem name =
    match Hashtbl.find_opt mems name with
    | Some w -> w
    | None -> ir_error "module %s: unknown memory %s" m.name name
  in
  { width_of_name; width_of_mem }

(* ------------------------------------------------------------------ *)
(* Expression traversal                                                *)
(* ------------------------------------------------------------------ *)

(** All [Ref] names read by [expr] (memory names excluded; address
    expressions included). *)
let rec refs_of_expr expr acc =
  match expr with
  | Lit _ -> acc
  | Ref name -> name :: acc
  | Mux (c, t, f) -> refs_of_expr c (refs_of_expr t (refs_of_expr f acc))
  | Binop (_, a, b) | Cat (a, b) -> refs_of_expr a (refs_of_expr b acc)
  | Unop (_, a) | Bits { e = a; _ } -> refs_of_expr a acc
  | Read { addr; _ } -> refs_of_expr addr acc

let expr_refs expr = refs_of_expr expr []

let rec map_refs f expr =
  match expr with
  | Lit _ -> expr
  | Ref name -> Ref (f name)
  | Mux (c, t, fa) -> Mux (map_refs f c, map_refs f t, map_refs f fa)
  | Binop (op, a, b) -> Binop (op, map_refs f a, map_refs f b)
  | Unop (op, a) -> Unop (op, map_refs f a)
  | Bits { e; hi; lo } -> Bits { e = map_refs f e; hi; lo }
  | Cat (a, b) -> Cat (map_refs f a, map_refs f b)
  | Read { mem; addr } -> Read { mem; addr = map_refs f addr }

(** Renames both [Ref]s and memory names. *)
let rec map_names f expr =
  match expr with
  | Lit _ -> expr
  | Ref name -> Ref (f name)
  | Mux (c, t, fa) -> Mux (map_names f c, map_names f t, map_names f fa)
  | Binop (op, a, b) -> Binop (op, map_names f a, map_names f b)
  | Unop (op, a) -> Unop (op, map_names f a)
  | Bits { e; hi; lo } -> Bits { e = map_names f e; hi; lo }
  | Cat (a, b) -> Cat (map_names f a, map_names f b)
  | Read { mem; addr } -> Read { mem = f mem; addr = map_names f addr }

(* ------------------------------------------------------------------ *)
(* Structural checks                                                   *)
(* ------------------------------------------------------------------ *)

let duplicate_names names =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then true
      else begin
        Hashtbl.replace seen n ();
        false
      end)
    names

(** Validates one module: unique names, every wire / output / instance
    input driven exactly once, every register updated exactly once,
    widths within range, all references resolvable. *)
let check_module circuit m =
  let names =
    List.map (fun p -> p.pname) m.ports
    @ List.filter_map
        (fun c ->
          match c with
          | Wire { name; _ } | Reg { name; _ } | Mem { name; _ } | Inst { name; _ } ->
            Some name)
        m.comps
  in
  (match duplicate_names names with
  | [] -> ()
  | d :: _ -> ir_error "module %s: duplicate name %s" m.name d);
  List.iter
    (fun p ->
      if p.pwidth < 1 || p.pwidth > max_width then
        ir_error "module %s: port %s has bad width %d" m.name p.pname p.pwidth)
    m.ports;
  List.iter
    (fun c ->
      match c with
      | Wire { name; width } | Reg { name; width; _ } | Mem { name; width; _ } ->
        if width < 1 || width > max_width then
          ir_error "module %s: %s has bad width %d" m.name name width
      | Inst { of_module; _ } -> ignore (find_module circuit of_module))
    m.comps;
  let env = module_env circuit m in
  (* Every expression must type-check (resolve + have a width). *)
  let check_expr e = ignore (width_of env e) in
  List.iter
    (fun s ->
      match s with
      | Connect { dst; src } ->
        ignore (env.width_of_name dst);
        check_expr src
      | Reg_update { reg; next; enable } ->
        ignore (env.width_of_name reg);
        check_expr next;
        Option.iter check_expr enable
      | Mem_write { mem; addr; data; enable } ->
        ignore (env.width_of_mem mem);
        check_expr addr;
        check_expr data;
        check_expr enable)
    m.stmts;
  (* Drivers: wires, output ports and instance inputs exactly once. *)
  let driven = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match s with
      | Connect { dst; _ } ->
        if Hashtbl.mem driven dst then
          ir_error "module %s: %s driven more than once" m.name dst
        else Hashtbl.replace driven dst ()
      | Reg_update _ | Mem_write _ -> ())
    m.stmts;
  let needs_driver dst = Hashtbl.mem driven dst in
  List.iter
    (fun p ->
      if p.pdir = Output && not (needs_driver p.pname) then
        ir_error "module %s: output port %s is undriven" m.name p.pname)
    m.ports;
  List.iter
    (fun c ->
      match c with
      | Wire { name; _ } ->
        if not (needs_driver name) then
          ir_error "module %s: wire %s is undriven" m.name name
      | Inst { name; of_module } ->
        let sub = find_module circuit of_module in
        List.iter
          (fun p ->
            if p.pdir = Input && not (needs_driver (instance_ref name p.pname)) then
              ir_error "module %s: instance input %s.%s is undriven" m.name name
                p.pname)
          sub.ports
      | Reg _ | Mem _ -> ())
    m.comps;
  let reg_updates = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match s with
      | Reg_update { reg; _ } ->
        if Hashtbl.mem reg_updates reg then
          ir_error "module %s: register %s updated more than once" m.name reg
        else Hashtbl.replace reg_updates reg ()
      | Connect _ | Mem_write _ -> ())
    m.stmts

let check_circuit circuit =
  (match duplicate_names (List.map (fun m -> m.name) circuit.modules) with
  | [] -> ()
  | d :: _ -> ir_error "circuit %s: duplicate module %s" circuit.cname d);
  ignore (main_module circuit);
  List.iter (check_module circuit) circuit.modules
