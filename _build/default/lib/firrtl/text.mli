(** Textual circuit format: FIRRTL-flavored serialization with an
    emitter and a parser; [parse (emit c) = c] structurally. *)

exception Parse_error of string

val expr_to_string : Ast.expr -> string

(** Serializes a circuit to its textual form. *)
val emit : Ast.circuit -> string

val save : Ast.circuit -> path:string -> unit

(** Lexer/expression-parser internals, exposed for property tests. *)
type token =
  | Tid of string
  | Tint of int
  | Tpunct of char
  | Tarrow
  | Tuint of int

val lex : string -> token list

type cursor = {
  mutable toks : token list;
  line : string;
}

val parse_expr : cursor -> Ast.expr

(** Parses the textual form; the result is structurally checked.
    Raises {!Parse_error} on malformed syntax, [Ast.Ir_error] on
    structural problems. *)
val parse : string -> Ast.circuit

val load : path:string -> Ast.circuit
