(* Expression combinators for building [Ast.expr] values concisely.
   Open this module locally (e.g. [Dsl.(a +: b)]) when constructing
   circuits. *)

open Ast

let lit ~width value =
  if value < 0 || value > mask width then
    ir_error "literal %d does not fit in %d bits" value width
  else Lit { value; width }

let one = Lit { value = 1; width = 1 }
let zero = Lit { value = 0; width = 1 }
let ref_ name = Ref name

let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Rem, a, b)
let ( &: ) a b = Binop (And, a, b)
let ( |: ) a b = Binop (Or, a, b)
let ( ^: ) a b = Binop (Xor, a, b)
let ( <<: ) a b = Binop (Shl, a, b)
let ( >>: ) a b = Binop (Shr, a, b)
let ( ==: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Neq, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)

let not_ a = Unop (Not, a)
let neg a = Unop (Neg, a)
let andr a = Unop (Andr, a)
let orr a = Unop (Orr, a)
let xorr a = Unop (Xorr, a)

let mux c t f = Mux (c, t, f)
let bits e ~hi ~lo = Bits { e; hi; lo }
let bit e i = Bits { e; hi = i; lo = i }
let cat hi lo = Cat (hi, lo)
let read mem addr = Read { mem; addr }

(** [cat_list [a; b; c]] concatenates with [a] in the most significant
    position. *)
let cat_list exprs =
  match exprs with
  | [] -> ir_error "cat_list: empty list"
  | e :: rest -> List.fold_left (fun acc x -> Cat (acc, x)) e rest

(** Chained mux: selects the first expression whose condition holds,
    falling back to [default]. *)
let select ~default cases =
  List.fold_right (fun (cond, value) acc -> Mux (cond, value, acc)) cases default
