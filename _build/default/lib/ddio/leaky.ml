(* The leaky-DMA experiment (Figure 9, §V-C).

   Server SoC: 12 cores forwarding packets, a NIC with one RX/TX queue
   pair per core (RSS-style), a 128 kB LLC of which 2 ways per set are
   dedicated to DDIO, and DRAM behind it.  The client side drives 1500 B
   packets (24 cache lines) into each active core's RX queue; the core
   reads the packet, writes it to its TX buffer, and the NIC reads it
   back out.  Latency is measured from the NIC's perspective: the
   request-to-response time of its LLC writes (RX path) and reads (TX
   path), averaged per bus transaction.

   Scaling the number of forwarding cores grows the in-flight buffer
   footprint past the DDIO ways: incoming DMA evicts unprocessed
   packets, adding writebacks and DRAM refills to the NIC's
   transactions, while the bus carries the extra traffic — the crossbar
   saturating faster than the ring beyond ~6 cores. *)

let lines_per_packet = 24
let descriptors_per_core = 128

(* Service times (ps). *)
let llc_hit = 16_000
let dram = 25_000
let dram_banks = 16
let line_issue_gap = 4_000 (* back-to-back issue spacing within a burst *)
let core_packet_work = 1_000_000 (* per-packet compute, excluding memory *)
let packet_interval = 3_000_000 (* per active core *)

type topology =
  | Topo_xbar
  | Topo_ring

type result = {
  cores : int;
  rd_lat_ns : float;  (** NIC TX reads *)
  wr_lat_ns : float;  (** NIC RX writes *)
  llc_hit_rate : float;
}

(* Line address of (core, direction, slot, line); direction 0 = RX.
   Each buffer region is skewed by a 61-line offset so different cores'
   buffers spread over the LLC sets instead of aliasing (buffer bases
   would otherwise all be multiples of the set count). *)
let line_addr ~core ~dir ~slot ~line =
  let region = (core * 2) + dir in
  ((region * descriptors_per_core) + slot) * lines_per_packet + line + (region * 61)

let run ?(ddio_ways = 2) ~topology ~active_cores ~packets_per_core () =
  let llc = Llc.create ~size_kb:128 ~ways:8 ~ddio_ways in
  let bus =
    match topology with
    | Topo_xbar -> Bus.xbar ()
    | Topo_ring -> Bus.ring ~nodes:14
  in
  let dram_ch = Array.init dram_banks (fun _ -> Bus.{ busy_until = 0 }) in
  let eng = Des.Engine.create () in
  let rd_lat = Des.Stats.create () in
  let wr_lat = Des.Stats.create () in
  (* Node map for the ring: NIC = 0, LLC home striped over 1..12, cores 1..12. *)
  let nic_node = 0 in
  let llc_node addr = 1 + (addr mod 12) in
  let core_node c = 1 + c in
  (* One line transaction: bus to the LLC slice, cache lookup, DRAM when
     needed; returns completion time. *)
  let line_txn ~src ~io ~write ~arrival addr =
    let at_llc = Bus.traverse bus ~channel:Bus.Req ~src ~dst:(llc_node addr) ~arrival in
    let finish =
      match Llc.access llc ~io ~write addr with
      | Llc.Hit -> at_llc + llc_hit
      | Llc.Miss ->
        if write then at_llc + llc_hit
        else Bus.serve dram_ch.(addr mod dram_banks) ~arrival:at_llc ~service:dram + llc_hit
      | Llc.Miss_writeback ->
        (* Dirty victim drains to DRAM before the fill completes. *)
        let wb_done = Bus.serve dram_ch.(addr mod dram_banks) ~arrival:at_llc ~service:dram in
        if write then wb_done + llc_hit
        else Bus.serve dram_ch.((addr + 1) mod dram_banks) ~arrival:wb_done ~service:dram + llc_hit
    in
    (* Response travels back on the response channel. *)
    Bus.traverse bus ~channel:Bus.Resp ~src:(llc_node addr) ~dst:src ~arrival:finish
  in
  (* Per-core pipeline: NIC RX write -> core forward -> NIC TX read. *)
  let core_free = Array.make active_cores 0 in
  let inflight = Array.make active_cores 0 in
  let dropped = ref 0 in
  let rec rx_packet core slot n =
    if n > 0 then begin
      let start = Des.Engine.now eng in
      if inflight.(core) >= descriptors_per_core then begin
        (* Descriptor queue full: the packet is dropped (load shedding,
           as on a real NIC) and the flow continues. *)
        incr dropped;
        Des.Engine.schedule eng ~delay:packet_interval (fun () ->
            rx_packet core slot (n - 1))
      end
      else begin
        inflight.(core) <- inflight.(core) + 1;
        (* NIC writes the packet's lines into the DDIO ways,
           pipelined back to back. *)
        let last = ref start in
        for line = 0 to lines_per_packet - 1 do
          let addr = line_addr ~core ~dir:0 ~slot ~line in
          let issue = start + (line * line_issue_gap) in
          let done_ = line_txn ~src:nic_node ~io:true ~write:true ~arrival:issue addr in
          Des.Stats.add wr_lat ((done_ - issue) / 1000);
          last := max !last done_
        done;
        (* Hand to the core. *)
        let core_start = max !last core_free.(core) in
        Des.Engine.at eng ~time:core_start (fun () -> forward core slot);
        (* Next arrival. *)
        Des.Engine.at eng
          ~time:(max (start + packet_interval) (Des.Engine.now eng))
          (fun () -> rx_packet core ((slot + 1) mod descriptors_per_core) (n - 1))
      end
    end
  and forward core slot =
    (* The core reads the RX packet and writes the TX copy, two
       pipelined bursts. *)
    let start = Des.Engine.now eng in
    let last = ref start in
    for line = 0 to lines_per_packet - 1 do
      let issue = start + (2 * line * line_issue_gap) in
      let rx = line_addr ~core ~dir:0 ~slot ~line in
      last := max !last (line_txn ~src:(core_node core) ~io:false ~write:false ~arrival:issue rx);
      let tx = line_addr ~core ~dir:1 ~slot ~line in
      last := max !last (line_txn ~src:(core_node core) ~io:false ~write:true ~arrival:(issue + line_issue_gap) tx)
    done;
    let finish = !last + core_packet_work in
    core_free.(core) <- finish;
    Des.Engine.at eng ~time:finish (fun () -> tx_packet core slot)
  and tx_packet core slot =
    (* The NIC reads the TX packet out, pipelined. *)
    let start = Des.Engine.now eng in
    for line = 0 to lines_per_packet - 1 do
      let addr = line_addr ~core ~dir:1 ~slot ~line in
      let issue = start + (line * line_issue_gap) in
      let done_ = line_txn ~src:nic_node ~io:true ~write:false ~arrival:issue addr in
      Des.Stats.add rd_lat ((done_ - issue) / 1000)
    done;
    inflight.(core) <- inflight.(core) - 1
  in
  for core = 0 to active_cores - 1 do
    (* Stagger the flows so they do not start in lockstep. *)
    Des.Engine.schedule eng ~delay:(core * 97_000) (fun () ->
        rx_packet core 0 packets_per_core)
  done;
  Des.Engine.run eng;
  {
    cores = active_cores;
    rd_lat_ns = Des.Stats.mean rd_lat;
    wr_lat_ns = Des.Stats.mean wr_lat;
    llc_hit_rate = Llc.hit_rate llc;
  }

(** The Figure 9 sweep: 1..12 forwarding cores, both topologies. *)
let figure9 ?(packets_per_core = 400) () =
  List.map
    (fun topology ->
      ( (match topology with Topo_xbar -> "XBar" | Topo_ring -> "Ring"),
        List.map
          (fun cores -> run ~topology ~active_cores:cores ~packets_per_core ())
          [ 1; 2; 4; 6; 8; 10; 12 ] ))
    [ Topo_xbar; Topo_ring ]

(** Ablation: dedicating more LLC ways to DDIO relieves the thrash (the
    "don't forget the I/O when allocating your LLC" observation). *)
let ddio_ways_ablation ?(packets_per_core = 400) () =
  List.map
    (fun ways ->
      (ways, run ~ddio_ways:ways ~topology:Topo_xbar ~active_cores:12 ~packets_per_core ()))
    [ 1; 2; 4; 8 ]
