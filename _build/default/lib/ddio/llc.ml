(* A set-associative last-level cache with DDIO way partitioning: I/O
   writes may only allocate into a limited subset of ways per set (the
   DDIO portion), while core accesses use the full set.  This is the
   mechanism behind the leaky-DMA effect (Farshin et al.): once the
   in-flight packet buffers outgrow the DDIO ways, incoming DMA evicts
   packets the cores have not processed yet and lines ping-pong between
   LLC and DRAM. *)

type line = {
  mutable tag : int;
  mutable valid : bool;
  mutable dirty : bool;
  mutable lru : int;
}

type t = {
  sets : line array array;  (** [set].(way) *)
  ways : int;
  ddio_ways : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let create ~size_kb ~ways ~ddio_ways =
  let lines = size_kb * 1024 / 64 in
  let n_sets = lines / ways in
  {
    sets =
      Array.init n_sets (fun _ ->
          Array.init ways (fun _ -> { tag = -1; valid = false; dirty = false; lru = 0 }));
    ways;
    ddio_ways;
    clock = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

type outcome =
  | Hit
  | Miss  (** clean fill *)
  | Miss_writeback  (** dirty victim written back to DRAM first *)

(** One line access.  [io] restricts allocation to the DDIO ways.
    [write] marks the line dirty. *)
let access t ~io ~write addr =
  t.clock <- t.clock + 1;
  let set = t.sets.(addr land (Array.length t.sets - 1)) in
  let tag = addr / Array.length t.sets in
  let found = ref None in
  Array.iter (fun l -> if l.valid && l.tag = tag && !found = None then found := Some l) set;
  match !found with
  | Some l ->
    l.lru <- t.clock;
    if write then l.dirty <- true;
    t.hits <- t.hits + 1;
    Hit
  | None ->
    t.misses <- t.misses + 1;
    (* Victim selection: LRU within the allowed ways. *)
    let lo, hi = if io then (0, t.ddio_ways - 1) else (0, t.ways - 1) in
    let victim = ref set.(lo) in
    for w = lo to hi do
      if (not set.(w).valid) || set.(w).lru < !victim.lru then victim := set.(w)
    done;
    let wb = !victim.valid && !victim.dirty in
    if wb then t.writebacks <- t.writebacks + 1;
    !victim.tag <- tag;
    !victim.valid <- true;
    !victim.dirty <- write;
    !victim.lru <- t.clock;
    if wb then Miss_writeback else Miss

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total
