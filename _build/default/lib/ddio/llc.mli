(** A set-associative last-level cache with DDIO way partitioning: I/O
    writes may only allocate into the first [ddio_ways] ways per set,
    core accesses use the full set — the mechanism behind the leaky-DMA
    effect (paper §V-C). *)

type t

val create : size_kb:int -> ways:int -> ddio_ways:int -> t

type outcome =
  | Hit
  | Miss  (** clean fill *)
  | Miss_writeback  (** dirty victim written back to DRAM first *)

(** One line access.  [io] restricts allocation to the DDIO ways;
    [write] marks the line dirty. *)
val access : t -> io:bool -> write:bool -> int -> outcome

val hit_rate : t -> float
