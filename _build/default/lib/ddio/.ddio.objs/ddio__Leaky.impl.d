lib/ddio/leaky.ml: Array Bus Des List Llc
