lib/ddio/llc.ml: Array
