lib/ddio/bus.mli:
