lib/ddio/leaky.mli:
