lib/ddio/bus.ml: Array
