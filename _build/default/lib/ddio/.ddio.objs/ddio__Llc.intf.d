lib/ddio/llc.mli:
