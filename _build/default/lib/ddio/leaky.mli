(** The leaky-DMA experiment (paper Figure 9, §V-C): per-core NIC
    RX/TX queues over a DDIO-partitioned LLC, with crossbar vs ring
    interconnects; latency measured from the NIC per bus transaction. *)

val lines_per_packet : int
val descriptors_per_core : int

type topology =
  | Topo_xbar
  | Topo_ring

type result = {
  cores : int;
  rd_lat_ns : float;  (** NIC TX reads *)
  wr_lat_ns : float;  (** NIC RX writes *)
  llc_hit_rate : float;
}

(** Runs one configuration; deterministic. *)
val run :
  ?ddio_ways:int -> topology:topology -> active_cores:int -> packets_per_core:int -> unit -> result

(** The Figure 9 sweep: 1..12 forwarding cores, both topologies. *)
val figure9 : ?packets_per_core:int -> unit -> (string * result list) list

(** DDIO way-allocation ablation at 12 cores. *)
val ddio_ways_ablation : ?packets_per_core:int -> unit -> (int * result) list
