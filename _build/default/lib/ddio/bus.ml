(* Bus models for the leaky-DMA study: a central crossbar arbiter (low
   base latency, one shared arbitration point that saturates under load)
   and a ring NoC (higher base hop latency, distributed per-link
   bandwidth that scales).

   Request and response channels are separate resources — as on real
   interconnects — and the two ring directions are distinct physical
   links.  Servers track their busy horizon, so queueing delay emerges
   from arrival order. *)

type server = { mutable busy_until : int }

(* Serves a request arriving at [arrival]; returns completion time. *)
let serve srv ~arrival ~service =
  let start = max arrival srv.busy_until in
  srv.busy_until <- start + service;
  srv.busy_until

type channel =
  | Req
  | Resp

type t =
  | Xbar of {
      req : server;
      resp : server;
      service_ps : int;
      base_ps : int;
    }
  | Ring of {
      cw : server array;  (** clockwise links, indexed by source node *)
      ccw : server array;
      per_hop_service_ps : int;
      per_hop_wire_ps : int;
    }

let xbar () =
  Xbar { req = { busy_until = 0 }; resp = { busy_until = 0 }; service_ps = 2_600; base_ps = 6_000 }

let ring ~nodes =
  Ring
    {
      cw = Array.init nodes (fun _ -> { busy_until = 0 });
      ccw = Array.init nodes (fun _ -> { busy_until = 0 });
      per_hop_service_ps = 800;
      per_hop_wire_ps = 3_500;
    }

(** Transports one line-sized transaction from [src] to [dst] on the
    given channel, arriving at [arrival]; returns delivery time. *)
let traverse t ~channel ~src ~dst ~arrival =
  match t with
  | Xbar { req; resp; service_ps; base_ps } ->
    ignore (src, dst);
    let srv = match channel with Req -> req | Resp -> resp in
    serve srv ~arrival ~service:service_ps + base_ps
  | Ring { cw; ccw; per_hop_service_ps; per_hop_wire_ps } ->
    let n = Array.length cw in
    let fwd = (dst - src + n) mod n and bwd = (src - dst + n) mod n in
    let hops, step, links = if fwd <= bwd then (fwd, 1, cw) else (bwd, n - 1, ccw) in
    let time = ref arrival in
    let node = ref src in
    for _ = 1 to max 1 hops do
      time := serve links.(!node) ~arrival:!time ~service:per_hop_service_ps + per_hop_wire_ps;
      node := (!node + step) mod n
    done;
    !time

let name = function
  | Xbar _ -> "XBar"
  | Ring _ -> "Ring"
