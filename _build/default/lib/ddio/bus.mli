(** Bus models for the leaky-DMA study: a central crossbar (one shared
    arbitration point per channel direction) and a ring with per-hop
    directional links.  Queueing delay emerges from server busy
    horizons. *)

type server = { mutable busy_until : int }

(** Serves a request arriving at [arrival]; returns completion time. *)
val serve : server -> arrival:int -> service:int -> int

type channel =
  | Req
  | Resp

type t

val xbar : unit -> t
val ring : nodes:int -> t

(** Transports one line-sized transaction; returns delivery time. *)
val traverse : t -> channel:channel -> src:int -> dst:int -> arrival:int -> int

val name : t -> string
