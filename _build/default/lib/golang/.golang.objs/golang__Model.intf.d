lib/golang/model.mli:
