lib/golang/model.ml: Des List Printf
