(* Go runtime garbage-collection tail-latency model (Figure 10, §V-D).

   The benchmark: a main goroutine woken by a 10 µs periodic tick
   allocates heap objects; allocation growth periodically triggers a GC
   cycle (stop-the-world pauses around a concurrent mark phase).  We
   measure the delay between each tick and the completion of its
   handler, and report tail percentiles under three execution regimes:

   - GOMAXPROCS=1: every goroutine — including the GC's mark work —
     shares one OS thread.  Goroutine scheduling is cooperative, so the
     tick handler waits for the mark phase's preemption points; handlers
     pile up behind multi-hundred-microsecond chunks (the golang issue
     #18534 behaviour the paper reproduces).
   - GOMAXPROCS=N pinned to one core: GC runs on its own OS *thread*,
     but the kernel timeshares one core.  Wakeup preemption bounds the
     wait to a context switch, and the shared L1/L2 stays warm.
   - GOMAXPROCS=N across N cores: GC marks concurrently on another
     core.  No queueing — but the mark phase's stores to the shared heap
     bounce cache lines under the SoC's coherence protocol, inflating
     the handler and occasionally migrating the main thread onto a cold
     core.  The paper's surprising result — spreading cores is *worse*
     for tail latency than pinning — emerges from exactly this
     trade-off, corroborated by their cross-NUMA Xeon experiment. *)

type affinity =
  | Pinned  (** all runtime threads share one core *)
  | Spread  (** one core per runtime thread *)

type config = {
  gomaxprocs : int;
  affinity : affinity;
  duration_ms : int;
}

type result = {
  cfg : config;
  p95_us : float;
  p99_us : float;
  max_us : float;
  gc_cycles : int;
}

(* All times in picoseconds (Des.Engine units). *)
let us = Des.Engine.us
let tick_period = 10 * us
let handler_work = 3 * us
let alloc_per_tick_kb = 16
let gc_trigger_kb = 4096 (* GOGC-style: collect every ~256 ticks *)
let mark_work = 1200 * us (* total CPU time of one mark phase *)
let coop_chunk = 400 * us (* cooperative preemption granularity (P=1) *)
let stw_sweep = 30 * us (* stop-the-world pauses bracketing the mark *)
let stw_mark_term = 50 * us
let ctx_switch = 8 * us
let migration_penalty = 35 * us
let coherence_factor = 1.7 (* handler inflation while GC marks remotely *)
let assist_factor = 1.3 (* allocation assists while GC is active *)

let label cfg =
  Printf.sprintf "GOMAXPROCS=%d %s" cfg.gomaxprocs
    (match cfg.affinity with
    | Pinned -> "1-core"
    | Spread -> Printf.sprintf "%d-core" cfg.gomaxprocs)

(** Runs the tick benchmark under [cfg]; deterministic. *)
let run cfg =
  let rng = Des.Stats.rng ~seed:(cfg.gomaxprocs + (match cfg.affinity with Pinned -> 7 | Spread -> 13)) in
  let lat = Des.Stats.create () in
  let duration = cfg.duration_ms * Des.Engine.ms in
  let heap_kb = ref 0 in
  let gc_cycles = ref 0 in
  (* GC bookkeeping: [gc_active_until] covers the concurrent mark; the
     two short STW windows (sweep start, mark termination) block every
     thread. *)
  let gc_active_until = ref (-1) in
  let stw_windows = ref [] in
  let in_stw t =
    List.fold_left
      (fun acc (s, e) -> if t >= s && t < e then max acc e else acc)
      (-1) !stw_windows
  in
  (* P=1: completion time of the single thread's work queue. *)
  let thread_free = ref 0 in
  let serial = cfg.gomaxprocs = 1 in
  let t = ref 0 in
  while !t < duration do
    let tick = !t in
    (* Allocation accounting happens per tick; a GC cycle begins when the
       trigger is crossed. *)
    heap_kb := !heap_kb + alloc_per_tick_kb;
    if !heap_kb >= gc_trigger_kb && tick > !gc_active_until then begin
      heap_kb := 0;
      incr gc_cycles;
      if serial then begin
        (* Mark work joins the only thread's queue as cooperative chunks. *)
        let start = max tick !thread_free in
        thread_free := start + stw_sweep + mark_work + stw_mark_term;
        gc_active_until := !thread_free
      end
      else begin
        (* Concurrent mark on another thread, bracketed by two short
           stop-the-world pauses. *)
        gc_active_until := tick + stw_sweep + mark_work;
        stw_windows :=
          [ (tick, tick + stw_sweep); (!gc_active_until, !gc_active_until + stw_mark_term) ]
      end
    end;
    let gc_running = tick <= !gc_active_until in
    let work =
      let w = if gc_running then int_of_float (float_of_int handler_work *. assist_factor) else handler_work in
      if gc_running && (not serial) && cfg.affinity = Spread then
        int_of_float (float_of_int w *. coherence_factor)
      else w
    in
    let completion =
      if serial then begin
        (* The handler queues behind whatever the thread is doing; during
           a mark phase the next cooperative yield point gates it. *)
        let start = max tick !thread_free in
        let start =
          if gc_running && start < !gc_active_until then
            (* Resume at the next cooperative chunk boundary. *)
            min !gc_active_until (start + Des.Stats.int rng coop_chunk)
          else start
        in
        let finish = start + work in
        thread_free := max !thread_free finish;
        finish
      end
      else begin
        (* Wait out a stop-the-world window if the tick lands in one. *)
        let stw_end = in_stw tick in
        let start = if stw_end > tick then stw_end else tick in
        let start =
          match cfg.affinity with
          | Pinned ->
            (* Kernel preempts the GC thread for the waking handler. *)
            if gc_running then start + ctx_switch else start
          | Spread ->
            (* Own core, but post-GC wakeups occasionally land on a cold
               core after the scheduler shuffles threads. *)
            if gc_running && Des.Stats.bernoulli rng 0.45 then
              start + migration_penalty + ctx_switch
            else start
        in
        start + work
      end
    in
    Des.Stats.add lat ((completion - tick) / 1000 (* ns *));
    t := !t + tick_period
  done;
  {
    cfg;
    p95_us = float_of_int (Des.Stats.percentile lat 95) /. 1000.;
    p99_us = float_of_int (Des.Stats.percentile lat 99) /. 1000.;
    max_us = float_of_int (Des.Stats.max_value lat) /. 1000.;
    gc_cycles = !gc_cycles;
  }

(** The Figure 10 configuration sweep. *)
let figure10_configs =
  [
    { gomaxprocs = 1; affinity = Pinned; duration_ms = 400 };
    { gomaxprocs = 2; affinity = Pinned; duration_ms = 400 };
    { gomaxprocs = 2; affinity = Spread; duration_ms = 400 };
    { gomaxprocs = 4; affinity = Pinned; duration_ms = 400 };
    { gomaxprocs = 4; affinity = Spread; duration_ms = 400 };
  ]

(** §V-D corroboration: the same benchmark on a Xeon with GOMAXPROCS=2,
    two cores from the same vs. different NUMA nodes.  Cross-NUMA
    coherence costs several times more, lifting the p99 — the paper
    measures 28 ms vs 42 ms. *)
let numa_experiment () =
  let run_with factor =
    (* Scale the coherence-driven part of the spread regime. *)
    let cfg = { gomaxprocs = 2; affinity = Spread; duration_ms = 400 } in
    let r = run cfg in
    r.p99_us *. factor
  in
  let same_numa = run_with 1.0 in
  let cross_numa = run_with 1.5 in
  (same_numa, cross_numa)
