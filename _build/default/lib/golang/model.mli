(** Go runtime garbage-collection tail-latency model (paper Figure 10,
    §V-D): a 10 µs tick wakes a heap-allocating main goroutine; GC
    cycles interfere according to GOMAXPROCS and the CPU affinity
    mask.  Deterministic. *)

type affinity =
  | Pinned  (** all runtime threads share one core *)
  | Spread  (** one core per runtime thread *)

type config = {
  gomaxprocs : int;
  affinity : affinity;
  duration_ms : int;
}

type result = {
  cfg : config;
  p95_us : float;
  p99_us : float;
  max_us : float;
  gc_cycles : int;
}

val label : config -> string
val run : config -> result

(** The Figure 10 configuration sweep. *)
val figure10_configs : config list

(** §V-D corroboration: (same-NUMA p99, cross-NUMA p99) for GOMAXPROCS=2
    on the Xeon-style setup; cross-NUMA is worse. *)
val numa_experiment : unit -> float * float
