(* A small deterministic discrete-event simulation engine.

   Time is an integer count of picoseconds, so host-platform quantities
   (PCIe microseconds, 90 MHz bitstream clocks, QSFP serialization) mix
   without rounding surprises.  Events scheduled for the same instant
   fire in scheduling order (a monotone sequence number breaks ties), so
   every run is reproducible. *)

type time = int

let ps = 1
let ns = 1_000
let us = 1_000_000
let ms = 1_000_000_000
let second = 1_000_000_000_000

type event = {
  ev_time : time;
  ev_seq : int;
  ev_fn : unit -> unit;
}

(* Binary min-heap on (time, seq). *)
type t = {
  mutable heap : event array;
  mutable size : int;
  mutable now : time;
  mutable seq : int;
  mutable processed : int;
}

let create () =
  {
    heap = Array.make 64 { ev_time = 0; ev_seq = 0; ev_fn = ignore };
    size = 0;
    now = 0;
    seq = 0;
    processed = 0;
  }

let now t = t.now
let events_processed t = t.processed

let earlier a b = a.ev_time < b.ev_time || (a.ev_time = b.ev_time && a.ev_seq < b.ev_seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) ev in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if earlier t.heap.(i) t.heap.(parent) then begin
        let tmp = t.heap.(i) in
        t.heap.(i) <- t.heap.(parent);
        t.heap.(parent) <- tmp;
        up parent
      end
    end
  in
  up (t.size - 1)

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  let rec down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> i then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(!smallest);
      t.heap.(!smallest) <- tmp;
      down !smallest
    end
  in
  down 0;
  top

(** Schedules [fn] to run [delay] picoseconds from now. *)
let schedule t ~delay fn =
  if delay < 0 then invalid_arg "schedule: negative delay";
  push t { ev_time = t.now + delay; ev_seq = t.seq; ev_fn = fn };
  t.seq <- t.seq + 1

(** Schedules [fn] at an absolute time (>= now). *)
let at t ~time fn =
  if time < t.now then invalid_arg "at: time in the past";
  push t { ev_time = time; ev_seq = t.seq; ev_fn = fn };
  t.seq <- t.seq + 1

(** Runs until the queue drains or simulated time passes [until]. *)
let run ?until ?(max_events = max_int) t =
  let continue_ () =
    t.size > 0
    && t.processed < max_events
    && match until with Some u -> t.heap.(0).ev_time <= u | None -> true
  in
  while continue_ () do
    let ev = pop t in
    t.now <- ev.ev_time;
    t.processed <- t.processed + 1;
    ev.ev_fn ()
  done;
  match until with Some u when t.now < u && t.size = 0 -> t.now <- u | _ -> ()

(** Repeats [fn] every [period] until it returns [false]. *)
let rec periodic t ~period fn =
  schedule t ~delay:period (fun () -> if fn () then periodic t ~period fn)
