lib/des/engine.ml: Array
