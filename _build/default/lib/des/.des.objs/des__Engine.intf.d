lib/des/engine.mli:
