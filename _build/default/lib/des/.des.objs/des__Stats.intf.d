lib/des/stats.mli:
