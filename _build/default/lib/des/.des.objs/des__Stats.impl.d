lib/des/stats.ml: Array
