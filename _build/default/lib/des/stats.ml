(* Online statistics for DES experiments: samples with mean and exact
   percentiles (sorted on demand), plus a deterministic splitmix-style
   PRNG so experiments never depend on global random state. *)

type t = {
  mutable samples : int array;
  mutable n : int;
}

let create () = { samples = Array.make 1024 0; n = 0 }

let add t v =
  if t.n = Array.length t.samples then begin
    let bigger = Array.make (2 * t.n) 0 in
    Array.blit t.samples 0 bigger 0 t.n;
    t.samples <- bigger
  end;
  t.samples.(t.n) <- v;
  t.n <- t.n + 1

let count t = t.n

let mean t =
  if t.n = 0 then 0.
  else
    float_of_int (Array.fold_left ( + ) 0 (Array.sub t.samples 0 t.n)) /. float_of_int t.n

(** Exact percentile (nearest-rank), [p] in 0..100. *)
let percentile t p =
  if t.n = 0 then 0
  else begin
    let sorted = Array.sub t.samples 0 t.n in
    Array.sort compare sorted;
    let rank = max 0 (min (t.n - 1) ((p * t.n / 100) - if p * t.n mod 100 = 0 then 1 else 0)) in
    sorted.(rank)
  end

let max_value t =
  if t.n = 0 then 0 else Array.fold_left max min_int (Array.sub t.samples 0 t.n)

(* ------------------------------------------------------------------ *)
(* Deterministic PRNG (splitmix64 folded to 62 bits)                   *)
(* ------------------------------------------------------------------ *)

type rng = { mutable state : int }

let rng ~seed = { state = seed lxor 0x243F6A8885A308 }

let next r =
  (* splitmix-style mixing, kept within OCaml's boxed-free int range *)
  r.state <- (r.state + 0x1E3779B97F4A7C15) land max_int;
  let z = r.state in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  z lxor (z lsr 31)

(** Uniform integer in [0, bound). *)
let int r bound = if bound <= 0 then 0 else next r mod bound

(** Bernoulli draw with probability [p]. *)
let bernoulli r p = float_of_int (int r 1_000_000) /. 1_000_000. < p

(** Geometric-ish exponential sample with the given mean (integer). *)
let exponential r mean =
  if mean <= 0 then 0
  else begin
    let u = (float_of_int (int r 1_000_000) +. 1.) /. 1_000_001. in
    int_of_float (-.float_of_int mean *. log u)
  end
