(** Online statistics and a deterministic PRNG for DES experiments. *)

(** A growable sample collection with exact (nearest-rank) percentiles. *)
type t

val create : unit -> t
val add : t -> int -> unit
val count : t -> int
val mean : t -> float

(** [percentile t p] for [p] in 0..100; 0 when empty. *)
val percentile : t -> int -> int

val max_value : t -> int

(** Splitmix-style deterministic PRNG: experiments never depend on the
    global [Random] state. *)
type rng

val rng : seed:int -> rng

(** Next raw non-negative value. *)
val next : rng -> int

(** Uniform integer in [0, bound); 0 when [bound <= 0]. *)
val int : rng -> int -> int

(** Bernoulli draw with probability [p]. *)
val bernoulli : rng -> float -> bool

(** Exponential-ish sample with the given integer mean. *)
val exponential : rng -> int -> int
