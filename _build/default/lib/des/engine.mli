(** A small deterministic discrete-event simulation engine.

    Time is an integer count of picoseconds.  Events scheduled for the
    same instant fire in scheduling order, so every run is
    reproducible. *)

type time = int

val ps : time
val ns : time
val us : time
val ms : time
val second : time

type t

val create : unit -> t

(** Current simulated time. *)
val now : t -> time

(** Number of events executed so far. *)
val events_processed : t -> int

(** [schedule t ~delay fn] runs [fn] [delay] picoseconds from now.
    Raises [Invalid_argument] on negative delays. *)
val schedule : t -> delay:time -> (unit -> unit) -> unit

(** [at t ~time fn] runs [fn] at an absolute time (>= now).  Raises
    [Invalid_argument] on past times. *)
val at : t -> time:time -> (unit -> unit) -> unit

(** Runs until the queue drains, simulated time passes [until], or
    [max_events] events have fired. *)
val run : ?until:time -> ?max_events:int -> t -> unit

(** [periodic t ~period fn] repeats [fn] every [period] until it returns
    [false]. *)
val periodic : t -> period:time -> (unit -> bool) -> unit
