(** RTL for the Kite in-order core: a multi-cycle state machine with one
    decoupled memory port (shared fetch/data), standing in for the
    Rocket tile of the validation experiments. *)

(* FSM state encodings (used by tests and run predicates). *)
val s_fetch_req : int
val s_fetch_wait : int
val s_exec : int
val s_mem_req : int
val s_mem_wait : int
val s_halted : int

(** Memory request/response payload fields: addr/wdata/wen and data. *)
val req_fields : (string * int) list

val resp_fields : (string * int) list

(** Builds the core module. *)
val module_def : ?name:string -> unit -> Firrtl.Ast.module_def
