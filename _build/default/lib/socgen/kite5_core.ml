(* A classic 5-stage in-order pipeline (IF / ID / EX / MEM / WB) for the
   Kite ISA — the pipelined counterpart of the multi-cycle FSM core in
   [Kite_core], playing the role of the Rocket-class in-order cores the
   paper partitions.  Architecturally identical to the reference
   interpreter (differentially tested program by program), so either
   core drops into the validation experiments.

   Microarchitecture:
   - Harvard front end: instructions come from an internal [imem]
     (poked like any memory); data goes through the standard decoupled
     request/response port, so the MEM stage tolerates any latency —
     including a partition boundary or the DRAM timing model.
   - Full forwarding: EX reads producers from EX/MEM and MEM/WB; the
     register file is bypassed at ID for writes retiring that cycle.
   - Loads: a consumer of an in-flight LW stalls in ID until the load
     reaches WB (variable-latency MEM makes the classic one-bubble
     schedule unsafe).
   - Branches and JAL resolve in EX; taken control flow flushes the two
     younger stages (2-cycle penalty).
   - HALT stops fetch when it reaches EX and raises [halted] when it
     retires, after every older instruction. *)

open Firrtl

(* Opcodes (see Kite_isa). *)
let op_alu = 0
let op_addi = 1
let op_lw = 2
let op_sw = 3
let op_beq = 4
let op_bne = 5
let op_jal = 6
let op_halt = 7

let module_def ?(name = "kite5_core") ?(imem_depth = 256) () =
  if imem_depth land (imem_depth - 1) <> 0 then
    Ast.ir_error "kite5: imem_depth must be a power of 2";
  let b = Builder.create name in
  let req = Decoupled.source b "req" Kite_core.req_fields in
  let resp = Decoupled.sink b "resp" Kite_core.resp_fields in
  Builder.output b "halted" 1;
  Builder.output b "retired" 16;
  let open Dsl in
  let lit16 = lit ~width:16 in
  let n16 e = Builder.node b ~width:16 e in
  let n1 e = Builder.node b ~width:1 e in

  let imem = Builder.mem b "imem" ~width:16 ~depth:imem_depth in
  let rf = Builder.mem b "rf" ~width:16 ~depth:8 in

  (* Architectural / pipeline registers. *)
  let pc = Builder.reg b "pc" 16 in
  let fetch_stop = Builder.reg b "fetch_stop" 1 in
  let halted = Builder.reg b "halted_r" 1 in
  let retired = Builder.reg b "retired_count" 16 in

  let fd_valid = Builder.reg b "fd_valid" 1 in
  let fd_pc = Builder.reg b "fd_pc" 16 in
  let fd_ir = Builder.reg b "fd_ir" 16 in

  let dx_valid = Builder.reg b "dx_valid" 1 in
  let dx_pc = Builder.reg b "dx_pc" 16 in
  let dx_op = Builder.reg b "dx_op" 3 in
  let dx_rd = Builder.reg b "dx_rd" 3 in
  let dx_rs1 = Builder.reg b "dx_rs1" 3 in
  let dx_bidx = Builder.reg b "dx_bidx" 3 in
  let dx_a = Builder.reg b "dx_a" 16 in
  let dx_b = Builder.reg b "dx_b" 16 in
  let dx_imm = Builder.reg b "dx_imm" 16 in
  let dx_funct = Builder.reg b "dx_funct" 4 in

  let xm_valid = Builder.reg b "xm_valid" 1 in
  let xm_pc = Builder.reg b "xm_pc" 16 in
  let xm_op = Builder.reg b "xm_op" 3 in
  let xm_rd = Builder.reg b "xm_rd" 3 in
  let xm_val = Builder.reg b "xm_val" 16 in
  let xm_store = Builder.reg b "xm_store" 16 in
  let m_issued = Builder.reg b "m_issued" 1 in

  let mw_valid = Builder.reg b "mw_valid" 1 in
  let (_ : Ast.expr) = Builder.reg b "mw_pc" 16 in
  let mw_rd = Builder.reg b "mw_rd" 3 in
  let mw_val = Builder.reg b "mw_val" 16 in
  let mw_wen = Builder.reg b "mw_wen" 1 in
  let mw_halt = Builder.reg b "mw_halt" 1 in

  (* ---------------- MEM stage ---------------- *)
  let xm_is_mem = n1 (xm_valid &: ((xm_op ==: lit ~width:3 op_lw) |: (xm_op ==: lit ~width:3 op_sw))) in
  let req_fire = n1 (ref_ req.Decoupled.valid &: ref_ req.Decoupled.ready) in
  let resp_fire = n1 (ref_ resp.Decoupled.valid &: ref_ resp.Decoupled.ready) in
  Builder.connect b req.Decoupled.valid (xm_is_mem &: not_ m_issued);
  Builder.connect b "req_addr" xm_val;
  Builder.connect b "req_wdata" xm_store;
  Builder.connect b "req_wen" (xm_op ==: lit ~width:3 op_sw);
  Builder.connect b resp.Decoupled.ready m_issued;
  let mem_finish = n1 (xm_valid &: (not_ xm_is_mem |: resp_fire)) in
  let m_ready = n1 (not_ xm_valid |: mem_finish) in
  Builder.reg_next b "m_issued"
    (select ~default:m_issued
       [ (resp_fire, zero); (req_fire, one); (m_ready, zero) ]);

  (* ---------------- EX stage ---------------- *)
  (* Forwarding: EX/MEM for ALU-class producers, then MEM/WB. *)
  let xm_fwd_ok =
    n1
      (xm_valid
      &: ((xm_op ==: lit ~width:3 op_alu)
         |: (xm_op ==: lit ~width:3 op_addi)
         |: (xm_op ==: lit ~width:3 op_jal)))
  in
  let mw_fwd_ok = n1 (mw_valid &: mw_wen) in
  let fwd idx latched =
    n16
      (select ~default:latched
         [
           (xm_fwd_ok &: (xm_rd ==: idx), xm_val);
           (mw_fwd_ok &: (mw_rd ==: idx), mw_val);
         ])
  in
  let a = fwd dx_rs1 dx_a in
  let bv = fwd dx_bidx dx_b in
  let shamt = bits bv ~hi:3 ~lo:0 in
  let alu =
    n16
      (select
         ~default:(a +: bv) (* undefined functs behave as add *)
         [
           (dx_funct ==: lit ~width:4 0, a +: bv);
           (dx_funct ==: lit ~width:4 1, a -: bv);
           (dx_funct ==: lit ~width:4 2, a &: bv);
           (dx_funct ==: lit ~width:4 3, a |: bv);
           (dx_funct ==: lit ~width:4 4, a ^: bv);
           (dx_funct ==: lit ~width:4 5, a <<: shamt);
           (dx_funct ==: lit ~width:4 6, a >>: shamt);
           (dx_funct ==: lit ~width:4 7, mux (a <: bv) (lit16 1) (lit16 0));
           (dx_funct ==: lit ~width:4 8, a *: bv);
         ])
  in
  let op_is v = dx_op ==: lit ~width:3 v in
  (* BEQ/BNE compare regs[rd] (latched as b) with regs[rs1] (a). *)
  let taken =
    n1
      (dx_valid
      &: ((op_is op_beq &: (bv ==: a)) |: (op_is op_bne &: (bv <>: a)) |: op_is op_jal))
  in
  let ex_fire = n1 (dx_valid &: m_ready) in
  let redirect = n1 (ex_fire &: taken) in
  let halt_seen = n1 (ex_fire &: op_is op_halt) in
  let seq_pc = n16 (dx_pc +: lit16 1) in
  let target = n16 (seq_pc +: dx_imm) in
  (* Value leaving EX: address for memory ops, link for JAL, ALU else. *)
  let ex_val =
    n16
      (select ~default:alu
         [
           (op_is op_addi, a +: dx_imm);
           (op_is op_lw |: op_is op_sw, a +: dx_imm);
           (op_is op_jal, seq_pc);
         ])
  in

  (* ---------------- ID stage ---------------- *)
  let ir = fd_ir in
  let id_op = Builder.node b ~width:3 (bits ir ~hi:15 ~lo:13) in
  let id_rd = Builder.node b ~width:3 (bits ir ~hi:12 ~lo:10) in
  let id_rs1 = Builder.node b ~width:3 (bits ir ~hi:9 ~lo:7) in
  let id_rs2 = Builder.node b ~width:3 (bits ir ~hi:6 ~lo:4) in
  let id_imm =
    (* sext7 *)
    n16
      (mux (bit ir 6)
         (bits ir ~hi:6 ~lo:0 |: lit16 0xff80)
         (bits ir ~hi:6 ~lo:0))
  in
  let id_op_is v = id_op ==: lit ~width:3 v in
  (* Second operand register: rs2 for ALU, rd for SW/BEQ/BNE. *)
  let id_bidx =
    Builder.node b ~width:3 (mux (id_op_is op_alu) id_rs2 id_rd)
  in
  let needs_rs1 =
    n1
      (id_op_is op_alu |: id_op_is op_addi |: id_op_is op_lw |: id_op_is op_sw
     |: id_op_is op_beq |: id_op_is op_bne)
  in
  let needs_b = n1 (id_op_is op_alu |: id_op_is op_sw |: id_op_is op_beq |: id_op_is op_bne) in
  (* Register read with WB bypass. *)
  let rf_read idx =
    n16 (mux (mw_fwd_ok &: (mw_rd ==: idx)) mw_val (read rf idx))
  in
  let id_a = rf_read id_rs1 in
  let id_b = rf_read id_bidx in
  (* Load-use: stall while a needed LW sits in EX or MEM. *)
  let lw_hazard idx =
    n1
      ((dx_valid &: (dx_op ==: lit ~width:3 op_lw) &: (dx_rd ==: idx))
      |: (xm_valid &: (xm_op ==: lit ~width:3 op_lw) &: (xm_rd ==: idx)))
  in
  let load_use =
    n1 (fd_valid &: ((needs_rs1 &: lw_hazard id_rs1) |: (needs_b &: lw_hazard id_bidx)))
  in
  let id_fire = n1 (fd_valid &: m_ready &: not_ load_use &: not_ redirect &: not_ halt_seen) in

  (* ---------------- IF stage ---------------- *)
  let fetch_ok = n1 (not_ fetch_stop &: not_ halted) in
  let fd_free = n1 (not_ fd_valid |: (m_ready &: not_ load_use)) in
  let squash = n1 (redirect |: halt_seen) in
  let do_fetch = n1 (fd_free &: fetch_ok &: not_ squash) in

  (* ---------------- Pipeline register updates ---------------- *)
  let gate = not_ halted in
  (* PC *)
  Builder.reg_next b ~enable:gate "pc"
    (select ~default:pc [ (redirect, target); (do_fetch, pc +: lit16 1) ]);
  (* IF/ID *)
  Builder.reg_next b ~enable:gate "fd_valid"
    (select ~default:fd_valid [ (squash, zero); (do_fetch, one); (fd_free, zero) ]);
  Builder.reg_next b ~enable:(gate &: do_fetch) "fd_pc" pc;
  Builder.reg_next b ~enable:(gate &: do_fetch) "fd_ir" (read imem pc);
  (* ID/EX *)
  Builder.reg_next b ~enable:(gate &: m_ready) "dx_valid" id_fire;
  let dx_en = n1 (gate &: m_ready &: id_fire) in
  Builder.reg_next b ~enable:dx_en "dx_pc" fd_pc;
  Builder.reg_next b ~enable:dx_en "dx_op" id_op;
  Builder.reg_next b ~enable:dx_en "dx_rd" id_rd;
  Builder.reg_next b ~enable:dx_en "dx_rs1" id_rs1;
  Builder.reg_next b ~enable:dx_en "dx_bidx" id_bidx;
  (* Operand registers: loaded at issue; while the instruction is
     parked in EX behind a multi-cycle MEM, a producer can retire out
     of MEM/WB before EX fires, so capture its value as it passes
     write-back (late forwarding). *)
  let parked = n1 (gate &: not_ m_ready &: dx_valid) in
  Builder.reg_next b "dx_a"
    (select ~default:dx_a
       [
         (dx_en, id_a);
         (parked &: mw_fwd_ok &: (mw_rd ==: dx_rs1), mw_val);
       ]);
  Builder.reg_next b "dx_b"
    (select ~default:dx_b
       [
         (dx_en, id_b);
         (parked &: mw_fwd_ok &: (mw_rd ==: dx_bidx), mw_val);
       ]);
  Builder.reg_next b ~enable:dx_en "dx_imm" id_imm;
  Builder.reg_next b ~enable:dx_en "dx_funct" (bits ir ~hi:3 ~lo:0);
  (* EX/MEM *)
  Builder.reg_next b ~enable:(gate &: m_ready) "xm_valid" ex_fire;
  let xm_en = n1 (gate &: m_ready &: ex_fire) in
  Builder.reg_next b ~enable:xm_en "xm_pc" dx_pc;
  Builder.reg_next b ~enable:xm_en "xm_op" dx_op;
  Builder.reg_next b ~enable:xm_en "xm_rd" dx_rd;
  Builder.reg_next b ~enable:xm_en "xm_val" ex_val;
  Builder.reg_next b ~enable:xm_en "xm_store" bv;
  (* MEM/WB *)
  Builder.reg_next b ~enable:gate "mw_valid" mem_finish;
  let mw_en = n1 (gate &: mem_finish) in
  (* Commit-PC pipe: [mw_pc] holds the PC of the instruction in WB, so
     the TracerV bridge traces the pipelined core too. *)
  Builder.reg_next b ~enable:mw_en "mw_pc" xm_pc;
  Builder.reg_next b ~enable:mw_en "mw_rd" xm_rd;
  Builder.reg_next b ~enable:mw_en "mw_val"
    (mux (xm_op ==: lit ~width:3 op_lw) (ref_ "resp_data") xm_val);
  Builder.reg_next b ~enable:mw_en "mw_wen"
    ((xm_op ==: lit ~width:3 op_alu)
    |: (xm_op ==: lit ~width:3 op_addi)
    |: (xm_op ==: lit ~width:3 op_lw)
    |: (xm_op ==: lit ~width:3 op_jal));
  Builder.reg_next b ~enable:mw_en "mw_halt" (xm_op ==: lit ~width:3 op_halt);
  (* WB *)
  Builder.mem_write b rf ~addr:mw_rd ~data:mw_val ~enable:(mw_valid &: mw_wen &: gate);
  Builder.reg_next b ~enable:(gate &: mw_valid) "retired_count" (retired +: lit16 1);
  Builder.reg_next b ~enable:(gate &: mw_valid &: mw_halt) "halted_r" one;
  Builder.reg_next b ~enable:(gate &: halt_seen) "fetch_stop" one;

  Builder.connect b "halted" halted;
  Builder.connect b "retired" retired;
  Builder.finish b

(** Pipelined core + scratchpad SoC; program words load into the
    core's ["core$imem"], data into ["mem$mem"]. *)
let soc_with ~mem ?(imem_depth = 256) () =
  let core = module_def ~imem_depth () in
  let b = Builder.create "k5soc" in
  let c = Builder.inst b "core" core.Ast.name in
  let m = Builder.inst b "mem" mem.Ast.name in
  Soc.connect_mem_port b ~master:c ~slave:m;
  Builder.output b "halted" 1;
  Builder.connect b "halted" (Builder.of_inst c "halted");
  Builder.output b "retired" 16;
  Builder.connect b "retired" (Builder.of_inst c "retired");
  { Ast.cname = "k5soc"; main = "k5soc"; modules = [ core; mem; Builder.finish b ] }

let soc ?(mem_latency = 1) ?(mem_depth = 1024) ?imem_depth () =
  soc_with ~mem:(Memsys.scratchpad ~name:"mem" ~depth:mem_depth ~latency:mem_latency ())
    ?imem_depth ()

(** Pipelined core in front of the FASED-style DRAM timing model. *)
let dram_soc ?timing ?banks ?cols ?(mem_depth = 1024) ?imem_depth () =
  soc_with ~mem:(Dram.dram ?timing ?banks ?cols ~name:"mem" ~depth:mem_depth ()) ?imem_depth ()

(** Loads a program into the pipelined SoC: instructions into the
    core's instruction memory, data words into the shared memory. *)
let load_program sim ~data program =
  List.iteri (fun i w -> Rtlsim.Sim.poke_mem sim "core$imem" i w) (Kite_isa.assemble program);
  List.iter (fun (a, v) -> Rtlsim.Sim.poke_mem sim "mem$mem" a v) data
