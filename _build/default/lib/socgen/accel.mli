(** Accelerator generators for the Table II validation SoCs: a
    latency-bound sponge-hash engine (the Sha3Accel analogue) and a
    streaming convolution engine with local buffers (the Gemmini
    analogue).  Both are memory masters with start/done control. *)

(* sha3ish FSM states *)
val h_idle : int
val h_rd_req : int
val h_rd_wait : int
val h_perm : int
val h_wr_req : int
val h_wr_wait : int
val h_done : int

(** Reads [len] words at [base], mixes each with [rounds] permutation
    cycles, writes the 3-word digest at [out]. *)
val sha3ish :
  ?name:string -> base:int -> len:int -> out:int -> rounds:int -> unit -> Firrtl.Ast.module_def

(* gemminiish FSM states *)
val g_idle : int
val g_load_a : int
val g_load_w : int
val g_compute : int
val g_write : int
val g_done : int

(** Streaming 1-D convolution: DMAs inputs into local buffers with
    back-to-back reads, computes locally, streams results back —
    throughput-bound, hence insensitive to boundary latency. *)
val gemminiish :
  ?name:string ->
  a_base:int ->
  w_base:int ->
  out_base:int ->
  out_n:int ->
  klen:int ->
  unit ->
  Firrtl.Ast.module_def

(** Reference result for tests. *)
val gemminiish_reference : a:int array -> w:int array -> out_n:int -> klen:int -> int list
