(** Direct-mapped, write-through L1 cache for the Kite tile: keeps most
    requests inside the tile so partitioned tiles cross the boundary
    rarely, like the paper's Rocket tile with its L1s. *)

val c_idle : int
val c_local : int
val c_fwd : int
val c_wait : int
val c_resp : int

(** [sets] must be a power of two.  Core-side bundle: [cpu_req]/
    [cpu_resp]; memory-side: [req]/[resp]. *)
val module_def : ?name:string -> sets:int -> unit -> Firrtl.Ast.module_def
