(** FASED-style DRAM timing model: per-bank open-row state, row-buffer
    hit/conflict/closed latencies and periodic refresh, behind the
    standard decoupled request/response port — drop-in for
    [Memsys.scratchpad], as synthesizable RTL. *)

open Firrtl

(** DRAM controller FSM states. *)
val d_idle : int

val d_busy : int
val d_resp : int
val d_refresh : int

type timing = {
  t_cas : int;  (** column access, row already open *)
  t_rcd : int;  (** activate: row closed -> open *)
  t_rp : int;  (** precharge: close the previously open row *)
  t_refi : int;  (** cycles between refreshes (0 disables refresh) *)
  t_rfc : int;  (** cycles a refresh occupies the device *)
}

(** Roughly DDR3-1600 ratios at the repo's 16-bit toy scale. *)
val default_timing : timing

(** The DRAM module: [depth] words split into [banks] banks with [cols]
    words per row (all powers of two).  Address map {row, bank, column}.
    Exports [hits]/[misses]/[refreshes] counter outputs. *)
val dram :
  ?name:string ->
  ?timing:timing ->
  ?banks:int ->
  ?cols:int ->
  depth:int ->
  unit ->
  Ast.module_def

(** One Kite tile backed by the DRAM model (the FASED-attached SoC
    shape); program loads into ["mem$mem"]. *)
val dram_soc :
  ?timing:timing ->
  ?banks:int ->
  ?cols:int ->
  ?mem_depth:int ->
  ?cache_sets:int option ->
  unit ->
  Ast.circuit
