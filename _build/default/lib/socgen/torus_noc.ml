(* A 2-D torus network-on-chip — the topology of the paper's DDIO case
   study interconnect family (Constellation generates "a wide range of
   topologies"; the §V-C study uses a bidirectional torus).  Same
   credit-based router fabric as the ring and mesh, but every router has
   all four direction ports (wraparound links) and dimension-ordered
   routing picks the shorter way around each dimension.

   All router outputs are register-driven (the credit queues), so any
   cut between neighbouring routers — including across a wraparound
   link — is exact-mode legal with chain length 1. *)

open Firrtl

let dest_bits = Ring_noc.dest_bits

let packet_width = Ring_noc.packet_width

let directions = [ "north"; "south"; "east"; "west" ]

let opposite = function
  | "north" -> "south"
  | "south" -> "north"
  | "east" -> "west"
  | "west" -> "east"
  | d -> Ast.ir_error "torus: bad direction %s" d

(** One torus router at (x, y) in a [width] x [height] grid; all four
    neighbour ports always exist. *)
let router_module ~name ~x ~y ~width ~height ~payload_width () =
  let w = packet_width ~payload_width in
  let my_id = (y * width) + x in
  let b = Builder.create name in
  let open Dsl in
  Builder.annotate b (Ast.Noc_router { index = my_id });
  let ports = directions @ [ "local" ] in
  let queues =
    List.map
      (fun d ->
        let _ = Builder.input b (d ^ "_in_valid") 1 in
        let _ = Builder.input b (d ^ "_in_data") w in
        Builder.output b (d ^ "_in_credit") 1;
        Builder.output b (d ^ "_out_valid") 1;
        Builder.output b (d ^ "_out_data") w;
        let _ = Builder.input b (d ^ "_out_credit") 1 in
        let ne, head, finish = Ring_noc.credit_queue b ~prefix:(d ^ "_q") ~width:w in
        let credit = Builder.reg b ~init:2 (d ^ "_credit") 2 in
        (d, ne, head, finish, credit))
      ports
  in
  (* Shortest-way dimension-ordered routing: resolve X first, going
     whichever way around the torus is shorter (ties eastward /
     southward), then Y the same way. *)
  let want_port head =
    let dest = Builder.node b ~width:dest_bits (Ring_noc.dest_of ~payload_width head) in
    let lw = lit ~width:dest_bits in
    let dx = Builder.node b ~width:dest_bits (dest %: lw width) in
    let dy = Builder.node b ~width:dest_bits (dest /: lw width) in
    (* Distance travelling east/south (positive direction), mod size. *)
    let ex = Builder.node b ~width:dest_bits ((dx +: lw width -: lw x) %: lw width) in
    let ey = Builder.node b ~width:dest_bits ((dy +: lw height -: lw y) %: lw height) in
    let x_done = Builder.node b ~width:1 (ex ==: lw 0) in
    let y_done = Builder.node b ~width:1 (ey ==: lw 0) in
    List.map
      (fun out ->
        let cond =
          match out with
          | "east" -> Dsl.(not_ x_done &: (ex <=: lw (width / 2)))
          | "west" -> Dsl.(not_ x_done &: (ex >: lw (width / 2)))
          | "south" -> Dsl.(x_done &: not_ y_done &: (ey <=: lw (height / 2)))
          | "north" -> Dsl.(x_done &: not_ y_done &: (ey >: lw (height / 2)))
          | _ -> Dsl.(x_done &: y_done)
        in
        (out, Builder.node b ~width:1 cond))
      ports
  in
  let wants =
    List.map (fun (d, ne, head, _, _) -> (d, ne, head, want_port head)) queues
  in
  let deq_exprs = Hashtbl.create 8 in
  List.iter (fun (d, _, _, _, _) -> Hashtbl.replace deq_exprs d []) queues;
  List.iter
    (fun (out, _, _, _, credit) ->
      let have_credit = Builder.node b ~width:1 Dsl.(credit >: lit ~width:2 0) in
      let requests =
        List.filter_map
          (fun (inp, ne, head, want) ->
            if inp = out then None (* no U-turns *)
            else
              match List.assoc_opt out want with
              | Some cond -> Some (inp, Builder.node b ~width:1 Dsl.(ne &: cond), head)
              | None -> None)
          wants
      in
      let _, grants =
        List.fold_left
          (fun (earlier, acc) (inp, req, head) ->
            let grant = Builder.node b ~width:1 Dsl.(req &: not_ earlier &: have_credit) in
            (Builder.node b ~width:1 Dsl.(earlier |: req), (inp, grant, head) :: acc))
          (Dsl.zero, []) requests
      in
      let grants = List.rev grants in
      let any = List.fold_left (fun acc (_, g, _) -> Dsl.(acc |: g)) Dsl.zero grants in
      Builder.connect b (out ^ "_out_valid") any;
      Builder.connect b (out ^ "_out_data")
        (Dsl.select
           ~default:(Dsl.lit ~width:w 0)
           (List.map (fun (_, g, head) -> (g, head)) grants));
      Builder.reg_next b (out ^ "_credit")
        Dsl.(credit -: any +: ref_ (out ^ "_out_credit"));
      List.iter
        (fun (inp, g, _) ->
          Hashtbl.replace deq_exprs inp (g :: Hashtbl.find deq_exprs inp))
        grants)
    queues;
  List.iter
    (fun (d, _, _, finish, _) ->
      let deq =
        List.fold_left (fun acc g -> Dsl.(acc |: g)) Dsl.zero (Hashtbl.find deq_exprs d)
      in
      let deq = Builder.node b ~width:1 deq in
      Builder.connect b (d ^ "_in_credit") deq;
      finish ~enq:(Dsl.ref_ (d ^ "_in_valid")) ~enq_data:(Dsl.ref_ (d ^ "_in_data")) ~deq)
    queues;
  Builder.finish b

(** A [width] x [height] torus SoC: traffic tiles behind converters on
    every node except the last, which hosts the reflector subsystem.
    Both dimensions must be at least 2 (wraparound links need distinct
    neighbours). *)
let torus_soc ?(payload_width = 16) ?(period = 8) ~width ~height () =
  if width < 2 || height < 2 then Ast.ir_error "torus_soc: dimensions must be >= 2";
  let n = width * height in
  if n > 1 lsl dest_bits then Ast.ir_error "torus_soc: too many nodes";
  let reflector_id = n - 1 in
  let routers =
    List.init n (fun i ->
        router_module
          ~name:(Printf.sprintf "router%d" i)
          ~x:(i mod width) ~y:(i / width) ~width ~height ~payload_width ())
  in
  let convs =
    List.init n (fun i ->
        Ring_noc.converter_module ~name:(Printf.sprintf "conv%d" i) ~payload_width ())
  in
  let tiles =
    List.init (n - 1) (fun i ->
        Ring_noc.traffic_tile_module
          ~name:(Printf.sprintf "ttile%d" i)
          ~my_id:i ~target:reflector_id ~period ~payload_width ())
  in
  let reflector =
    Ring_noc.reflector_module ~name:"reflector" ~my_id:reflector_id ~payload_width ()
  in
  let b = Builder.create "torussoc" in
  let r_insts =
    List.init n (fun i -> Builder.inst b (Printf.sprintf "router%d" i) (Printf.sprintf "router%d" i))
  in
  let c_insts =
    List.init n (fun i -> Builder.inst b (Printf.sprintf "conv%d" i) (Printf.sprintf "conv%d" i))
  in
  let t_insts =
    List.init (n - 1) (fun i -> Builder.inst b (Printf.sprintf "ttile%d" i) (Printf.sprintf "ttile%d" i))
  in
  let refl = Builder.inst b "reflector" "reflector" in
  (* Torus links, with wraparound. *)
  List.iteri
    (fun i r ->
      let x = i mod width and y = i / width in
      List.iter
        (fun (d, nx, ny) ->
          let nx = (nx + width) mod width and ny = (ny + height) mod height in
          let peer = List.nth r_insts ((ny * width) + nx) in
          let od = opposite d in
          Builder.connect_in b peer (od ^ "_in_valid") (Builder.of_inst r (d ^ "_out_valid"));
          Builder.connect_in b peer (od ^ "_in_data") (Builder.of_inst r (d ^ "_out_data"));
          Builder.connect_in b r (d ^ "_out_credit") (Builder.of_inst peer (od ^ "_in_credit")))
        [ ("north", x, y - 1); ("south", x, y + 1); ("east", x + 1, y); ("west", x - 1, y) ])
    r_insts;
  List.iteri
    (fun i c ->
      let r = List.nth r_insts i in
      Builder.connect_in b r "local_in_valid" (Builder.of_inst c "noc_out_valid");
      Builder.connect_in b r "local_in_data" (Builder.of_inst c "noc_out_data");
      Builder.connect_in b c "noc_out_credit" (Builder.of_inst r "local_in_credit");
      Builder.connect_in b c "noc_in_valid" (Builder.of_inst r "local_out_valid");
      Builder.connect_in b c "noc_in_data" (Builder.of_inst r "local_out_data");
      Builder.connect_in b r "local_out_credit" (Builder.of_inst c "noc_in_credit"))
    c_insts;
  let rv_link ~tile ~conv =
    Builder.connect_in b conv "tx_valid" (Builder.of_inst tile "tx_valid");
    Builder.connect_in b conv "tx_pkt" (Builder.of_inst tile "tx_pkt");
    Builder.connect_in b tile "tx_ready" (Builder.of_inst conv "tx_ready");
    Builder.connect_in b tile "rx_valid" (Builder.of_inst conv "rx_valid");
    Builder.connect_in b tile "rx_pkt" (Builder.of_inst conv "rx_pkt");
    Builder.connect_in b conv "rx_ready" (Builder.of_inst tile "rx_ready")
  in
  List.iteri (fun i t -> rv_link ~tile:t ~conv:(List.nth c_insts i)) t_insts;
  rv_link ~tile:refl ~conv:(List.nth c_insts reflector_id);
  List.iteri
    (fun i t ->
      List.iter
        (fun sig_ ->
          Builder.output b (Printf.sprintf "%s%d" sig_ i) 16;
          Builder.connect b (Printf.sprintf "%s%d" sig_ i) (Builder.of_inst t sig_))
        [ "sent"; "rcvd"; "checksum" ])
    t_insts;
  Builder.output b "reflected" 16;
  Builder.connect b "reflected" (Builder.of_inst refl "reflected");
  {
    Ast.cname = "torussoc";
    main = "torussoc";
    modules = routers @ convs @ tiles @ [ reflector; Builder.finish b ];
  }

(** Router indices of row [r] — a natural NoC-partition-mode group. *)
let row_group = Mesh_noc.row_group
