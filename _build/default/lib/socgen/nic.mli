(** DMA NIC with one RX/TX stream per core and in-NIC latency counters
    (the §V-C hardware modification), plus the crossbar SoC hosting it
    and a forwarding workload for the tiles. *)

val n_idle : int
val n_req : int
val n_wait : int

(** The NIC module: a memory master round-robining over per-core RX
    writes and TX reads, accumulating request-to-response latencies per
    direction (outputs [rd_lat_sum]/[rd_count]/[wr_lat_sum]/[wr_count]). *)
val module_def :
  ?name:string -> cores:int -> rx_base:int -> tx_base:int -> span:int -> unit -> Firrtl.Ast.module_def

(** Kite tiles + NIC on one crossbar, counters punched to the top. *)
val nic_soc :
  ?mem_latency:int -> ?mem_depth:int -> ?cache_sets:int option -> cores:int -> unit -> Firrtl.Ast.circuit

(** Endless memory-forwarding loop for the tiles (never halts). *)
val forwarding_program : Kite_isa.instr list

(** Average (read, write) request-to-response latencies from the
    counters. *)
val averages : peek:(string -> int) -> float * float
