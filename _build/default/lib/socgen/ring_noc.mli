(** Constellation-style credit-based ring NoC: per-node router modules
    carrying [Noc_router] annotations, protocol converters bridging
    ready-valid tiles onto credit links, traffic-generator tiles, and a
    reflector node standing in for the SoC subsystem.  Router outputs
    are register-driven — the property NoC-partition-mode exploits. *)

open Firrtl

val dest_bits : int
val src_bits : int

(** Packet layout: [dest | src | payload]. *)
val packet_width : payload_width:int -> int

val pack :
  payload_width:int -> dest:Ast.expr -> src:Ast.expr -> payload:Ast.expr -> Ast.expr

val dest_of : payload_width:int -> Ast.expr -> Ast.expr
val src_of : payload_width:int -> Ast.expr -> Ast.expr
val payload_of : payload_width:int -> Ast.expr -> Ast.expr

(** A 2-deep queue (mem + head/tail/occ): returns (nonempty, head data,
    finisher taking the enq/deq strobes). *)
val credit_queue :
  Builder.t ->
  prefix:string ->
  width:int ->
  Ast.expr * Ast.expr * (enq:Ast.expr -> enq_data:Ast.expr -> deq:Ast.expr -> unit)

(** One ring router node, annotated [Noc_router index]. *)
val router_module : name:string -> index:int -> payload_width:int -> unit -> Ast.module_def

(** Protocol converter: tile ready-valid <-> router credit link. *)
val converter_module : name:string -> payload_width:int -> unit -> Ast.module_def

(** Traffic tile: sends to [target] every [period] cycles, checksums
    received packets; [bug_at] plants the §V-A latent bug. *)
val traffic_tile_module :
  name:string ->
  my_id:int ->
  target:int ->
  period:int ->
  payload_width:int ->
  ?bug_at:int ->
  unit ->
  Ast.module_def

(** Reflector node: echoes packets to their source, payload + 1. *)
val reflector_module : name:string -> my_id:int -> payload_width:int -> unit -> Ast.module_def

(** [n_tiles] traffic tiles plus a reflector, each behind a converter
    and a ring router. *)
val ring_soc :
  ?payload_width:int ->
  ?period:int ->
  ?bug_tile:int ->
  ?bug_at:int ->
  n_tiles:int ->
  unit ->
  Ast.circuit
