(* Ready-valid (decoupled) interface helpers for circuit generators.

   A bundle groups a valid, a ready and payload fields under a common
   prefix, and registers the [Ready_valid] annotation FireRipper's
   fast-mode uses to repair backpressure at partition boundaries. *)

open Firrtl

type bundle = {
  valid : string;
  ready : string;
  payload : (string * int) list;  (** field port name, width *)
}

let field_name prefix field = prefix ^ "_" ^ field

(** Declares an outgoing bundle: output valid/payload, input ready.
    Drive [valid] and the payload fields with [Builder.connect]. *)
let source b prefix fields =
  let valid = field_name prefix "valid" in
  let ready = field_name prefix "ready" in
  Builder.output b valid 1;
  let _ = Builder.input b ready 1 in
  let payload =
    List.map
      (fun (f, w) ->
        let name = field_name prefix f in
        Builder.output b name w;
        (name, w))
      fields
  in
  Builder.annotate b
    (Ast.Ready_valid
       { role = Ast.Rv_source; valid; ready; payload = List.map fst payload });
  { valid; ready; payload }

(** Declares an incoming bundle: input valid/payload, output ready.
    Drive [ready] with [Builder.connect]. *)
let sink b prefix fields =
  let valid = field_name prefix "valid" in
  let ready = field_name prefix "ready" in
  let _ = Builder.input b valid 1 in
  Builder.output b ready 1;
  let payload =
    List.map
      (fun (f, w) ->
        let name = field_name prefix f in
        let _ = Builder.input b name w in
        (name, w))
      fields
  in
  Builder.annotate b
    (Ast.Ready_valid { role = Ast.Rv_sink; valid; ready; payload = List.map fst payload });
  { valid; ready; payload }

let fire bundle = Dsl.(ref_ bundle.valid &: ref_ bundle.ready)

(** Connects instance [src]'s source bundle [prefix] to instance [dst]'s
    sink bundle of the same prefix (same field names both sides). *)
let connect_insts b ~src ~dst ~prefix ~fields =
  let v = field_name prefix "valid" and r = field_name prefix "ready" in
  Builder.connect_in b dst v (Builder.of_inst src v);
  Builder.connect_in b src r (Builder.of_inst dst r);
  List.iter
    (fun (f, _) ->
      Builder.connect_in b dst (field_name prefix f) (Builder.of_inst src (field_name prefix f)))
    fields
