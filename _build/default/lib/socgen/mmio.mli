(** Memory-mapped I/O: an address-decoding splitter, a UART-style
    transmit device, and the host-side driver that drains it — the
    FireSim/FireAxe bridge pattern of §IV-A. *)

(** Word-address bit selecting the device space. *)
val device_bit : int

(** One master in, memory + device out; responses routed back by the
    outstanding-request target. *)
val splitter : ?name:string -> unit -> Firrtl.Ast.module_def

(** UART transmitter: device writes enqueue bytes into a 16-deep FIFO
    drained through [tx_valid]/[tx_byte]/[tx_pop]; device reads return
    the occupancy. *)
val uart_tx : ?name:string -> unit -> Firrtl.Ast.module_def

(** Kite SoC with the UART behind the splitter; the UART's host-driver
    face punches to the top. *)
val uart_soc :
  ?mem_latency:int -> ?mem_depth:int -> ?cache_sets:int option -> unit -> Firrtl.Ast.circuit

(** Prints the words at [base..base+n-1] through the UART, then halts. *)
val print_program : base:int -> n:int -> Kite_isa.instr list

(** One host-driver step against primitive accessors; collects at most
    one byte and sets the pop acknowledgment for the next cycle. *)
val driver_step :
  peek:(string -> int) ->
  peek_mem:(string -> int -> int) ->
  poke:(string -> int -> unit) ->
  Buffer.t ->
  unit

(** Runs the UART SoC monolithically until halt + drained; returns the
    printed string and the halt cycle. *)
val run_monolithic :
  ?max_cycles:int -> program:Kite_isa.instr list -> data:(int * int) list -> unit -> string * int
