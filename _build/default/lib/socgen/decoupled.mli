(** Ready-valid (decoupled) interface helpers for circuit generators;
    bundles register the [Ready_valid] annotations FireRipper's
    fast-mode uses to repair backpressure at partition boundaries. *)

open Firrtl

type bundle = {
  valid : string;
  ready : string;
  payload : (string * int) list;  (** field port name, width *)
}

val field_name : string -> string -> string

(** Outgoing bundle: output valid/payload, input ready. *)
val source : Builder.t -> string -> (string * int) list -> bundle

(** Incoming bundle: input valid/payload, output ready. *)
val sink : Builder.t -> string -> (string * int) list -> bundle

val fire : bundle -> Ast.expr

(** Connects [src]'s source bundle [prefix] to [dst]'s same-named sink
    bundle. *)
val connect_insts :
  Builder.t -> src:string -> dst:string -> prefix:string -> fields:(string * int) list -> unit
