(* SoC compositions used across the validation and performance studies:

   - [single_core_soc]: one Kite tile + scratchpad (the "Rocket tile"
     partition target of Table II);
   - [accel_soc]: an accelerator + scratchpad + start pulse (the
     Sha3Accel / Gemmini rows of Table II);
   - [multi_core_soc]: N Kite tiles behind a crossbar (the bus-based
     design whose tiles are pulled out in the Section VI-A sweeps). *)

open Firrtl

let connect_mem_port b ~master ~slave =
  (* master.req -> slave.req, slave.resp -> master.resp *)
  Decoupled.connect_insts b ~src:master ~dst:slave ~prefix:"req"
    ~fields:Kite_core.req_fields;
  Decoupled.connect_insts b ~src:slave ~dst:master ~prefix:"resp"
    ~fields:Kite_core.resp_fields

(** A tile wrapping the Kite core (and, unless [cache_sets] is [None],
    a direct-mapped L1 cache) — with the ready-valid annotations
    re-stated on the tile boundary so the tile itself is a legal
    fast-mode partition target.  Keeping the L1 inside the tile gives
    partitioned tiles the paper's "rare boundary crossing" behaviour. *)
let tile_module ?(name = "kite_tile") ?(cache_sets = Some 64) ~core_module () =
  let b = Builder.create name in
  let req = Decoupled.source b "req" Kite_core.req_fields in
  let resp = Decoupled.sink b "resp" Kite_core.resp_fields in
  Builder.output b "halted" 1;
  Builder.output b "retired" 16;
  let core = Builder.inst b "core" core_module in
  (match cache_sets with
  | None ->
    List.iter
      (fun p -> Builder.connect b p (Builder.of_inst core p))
      (req.Decoupled.valid :: List.map fst req.Decoupled.payload);
    Builder.connect_in b core req.Decoupled.ready (Dsl.ref_ req.Decoupled.ready);
    Builder.connect_in b core resp.Decoupled.valid (Dsl.ref_ resp.Decoupled.valid);
    List.iter
      (fun (p, _) -> Builder.connect_in b core p (Dsl.ref_ p))
      resp.Decoupled.payload;
    Builder.connect b resp.Decoupled.ready (Builder.of_inst core resp.Decoupled.ready)
  | Some sets ->
    let l1def = Cache.module_def ~name:(name ^ "_l1") ~sets () in
    ignore l1def;
    let l1 = Builder.inst b "l1" (name ^ "_l1") in
    (* core.req -> l1.cpu_req; l1.cpu_resp -> core.resp *)
    Builder.connect_in b l1 "cpu_req_valid" (Builder.of_inst core "req_valid");
    List.iter
      (fun (f, _) ->
        Builder.connect_in b l1 ("cpu_req_" ^ f) (Builder.of_inst core ("req_" ^ f)))
      Kite_core.req_fields;
    Builder.connect_in b core "req_ready" (Builder.of_inst l1 "cpu_req_ready");
    Builder.connect_in b core "resp_valid" (Builder.of_inst l1 "cpu_resp_valid");
    Builder.connect_in b core "resp_data" (Builder.of_inst l1 "cpu_resp_data");
    Builder.connect_in b l1 "cpu_resp_ready" (Builder.of_inst core "resp_ready");
    (* l1.req -> tile boundary; tile resp -> l1.resp *)
    List.iter
      (fun p -> Builder.connect b p (Builder.of_inst l1 p))
      (req.Decoupled.valid :: List.map fst req.Decoupled.payload);
    Builder.connect_in b l1 req.Decoupled.ready (Dsl.ref_ req.Decoupled.ready);
    Builder.connect_in b l1 resp.Decoupled.valid (Dsl.ref_ resp.Decoupled.valid);
    List.iter
      (fun (p, _) -> Builder.connect_in b l1 p (Dsl.ref_ p))
      resp.Decoupled.payload;
    Builder.connect b resp.Decoupled.ready (Builder.of_inst l1 resp.Decoupled.ready));
  Builder.connect b "halted" (Builder.of_inst core "halted");
  Builder.connect b "retired" (Builder.of_inst core "retired");
  Builder.finish b

(** One Kite tile and one scratchpad.  The program is loaded by poking
    the memory ["mem$mem"] (monolithic) or via {!Fireripper.Runtime}'s
    locate/poke helpers (partitioned). *)
let single_core_soc ?(mem_latency = 2) ?(mem_depth = 1024) ?(cache_sets = Some 64) () =
  let core = Kite_core.module_def () in
  let tile = tile_module ~cache_sets ~core_module:core.Ast.name () in
  let mem = Memsys.scratchpad ~name:"mem" ~depth:mem_depth ~latency:mem_latency () in
  let l1_modules =
    match cache_sets with
    | Some sets -> [ Cache.module_def ~name:"kite_tile_l1" ~sets () ]
    | None -> []
  in
  let b = Builder.create "soc" in
  let t = Builder.inst b "tile" tile.Ast.name in
  let m = Builder.inst b "mem" mem.Ast.name in
  connect_mem_port b ~master:t ~slave:m;
  Builder.output b "halted" 1;
  Builder.connect b "halted" (Builder.of_inst t "halted");
  Builder.output b "retired" 16;
  Builder.connect b "retired" (Builder.of_inst t "retired");
  {
    Ast.cname = "soc";
    main = "soc";
    modules = l1_modules @ [ core; tile; mem; Builder.finish b ];
  }

type accel_kind =
  | Sha3
  | Gemmini

(** Accelerator + scratchpad; the accelerator is kicked by a one-shot
    start pulse a few cycles after reset and raises [done]. *)
let accel_soc ?(mem_latency = 2) ?(mem_depth = 1024) kind =
  let accel =
    match kind with
    | Sha3 -> Accel.sha3ish ~name:"accel" ~base:16 ~len:8 ~out:64 ~rounds:24 ()
    | Gemmini ->
      Accel.gemminiish ~name:"accel" ~a_base:16 ~w_base:80 ~out_base:100 ~out_n:32 ~klen:16 ()
  in
  let mem =
    (* The streaming Gemmini-like engine needs a pipelined memory to
       keep multiple requests in flight; the Sha3-like engine ping-pongs
       on a plain scratchpad (that is what makes it latency-bound). *)
    match kind with
    | Gemmini -> Memsys.stream_mem ~name:"mem" ~depth:mem_depth ~latency:mem_latency ()
    | Sha3 -> Memsys.scratchpad ~name:"mem" ~depth:mem_depth ~latency:mem_latency ()
  in
  let b = Builder.create "accel_soc" in
  let open Dsl in
  let a = Builder.inst b "accel" accel.Ast.name in
  let m = Builder.inst b "mem" mem.Ast.name in
  connect_mem_port b ~master:a ~slave:m;
  (* One-shot start pulse at cycle 4. *)
  let counter = Builder.reg b "start_counter" 4 in
  Builder.reg_next b ~enable:(counter <: lit ~width:4 8) "start_counter"
    (counter +: lit ~width:4 1);
  Builder.connect_in b a "start" (counter ==: lit ~width:4 4);
  Builder.output b "done" 1;
  Builder.connect b "done" (Builder.of_inst a "done");
  {
    Ast.cname = "accel_soc";
    main = "accel_soc";
    modules = [ accel; mem; Builder.finish b ];
  }

(** N Kite tiles sharing one scratchpad through the crossbar.  All tiles
    fetch from the same program image. *)
let multi_core_soc ?(mem_latency = 2) ?(mem_depth = 1024) ?(cache_sets = Some 64) ~cores () =
  let core = Kite_core.module_def () in
  let tile = tile_module ~cache_sets ~core_module:core.Ast.name () in
  let l1_modules =
    match cache_sets with
    | Some sets -> [ Cache.module_def ~name:"kite_tile_l1" ~sets () ]
    | None -> []
  in
  let xbar = Memsys.xbar ~masters:cores () in
  let mem = Memsys.scratchpad ~name:"mem" ~depth:mem_depth ~latency:mem_latency () in
  let b = Builder.create "multisoc" in
  let x = Builder.inst b "xbar" xbar.Ast.name in
  let m = Builder.inst b "mem" mem.Ast.name in
  let tiles =
    List.init cores (fun i ->
        let t = Builder.inst b (Printf.sprintf "tile%d" i) tile.Ast.name in
        (* tile.req -> xbar.m<i>_req; xbar.m<i>_resp -> tile.resp *)
        let mp = Printf.sprintf "m%d" i in
        Builder.connect_in b x (mp ^ "_req_valid") (Builder.of_inst t "req_valid");
        List.iter
          (fun (f, _) ->
            Builder.connect_in b x
              (mp ^ "_req_" ^ f)
              (Builder.of_inst t ("req_" ^ f)))
          [ ("addr", 16); ("wdata", 16); ("wen", 1) ];
        Builder.connect_in b t "req_ready" (Builder.of_inst x (mp ^ "_req_ready"));
        Builder.connect_in b t "resp_valid" (Builder.of_inst x (mp ^ "_resp_valid"));
        Builder.connect_in b t "resp_data" (Builder.of_inst x (mp ^ "_resp_data"));
        Builder.connect_in b x (mp ^ "_resp_ready") (Builder.of_inst t "resp_ready");
        t)
  in
  (* xbar.mem_req -> mem.req; mem.resp -> xbar.mem_resp *)
  Builder.connect_in b m "req_valid" (Builder.of_inst x "mem_req_valid");
  List.iter
    (fun (f, _) ->
      Builder.connect_in b m ("req_" ^ f) (Builder.of_inst x ("mem_req_" ^ f)))
    [ ("addr", 16); ("wdata", 16); ("wen", 1) ];
  Builder.connect_in b x "mem_req_ready" (Builder.of_inst m "req_ready");
  Builder.connect_in b x "mem_resp_valid" (Builder.of_inst m "resp_valid");
  Builder.connect_in b x "mem_resp_data" (Builder.of_inst m "resp_data");
  Builder.connect_in b m "resp_ready" (Builder.of_inst x "mem_resp_ready");
  let open Dsl in
  Builder.output b "all_halted" 1;
  Builder.connect b "all_halted"
    (List.fold_left (fun acc t -> acc &: Builder.of_inst t "halted") one tiles);
  List.iteri
    (fun i t ->
      Builder.output b (Printf.sprintf "halted%d" i) 1;
      Builder.connect b (Printf.sprintf "halted%d" i) (Builder.of_inst t "halted");
      Builder.output b (Printf.sprintf "retired%d" i) 16;
      Builder.connect b (Printf.sprintf "retired%d" i) (Builder.of_inst t "retired"))
    tiles;
  {
    Ast.cname = "multisoc";
    main = "multisoc";
    modules = l1_modules @ [ core; tile; xbar; mem; Builder.finish b ];
  }

(** Loads a Kite program (plus optional data words) into a simulation's
    memory array named [mem]. *)
let load_program sim ~mem ?(data = []) program =
  List.iteri (fun i w -> Rtlsim.Sim.poke_mem sim mem i w) (Kite_isa.assemble program);
  List.iter (fun (addr, w) -> Rtlsim.Sim.poke_mem sim mem addr w) data
