(** Memory-system generators: fixed-latency and pipelined scratchpads
    with decoupled ports, and an N-master crossbar arbiter. *)

(** Scratchpad FSM states. *)
val m_idle : int

val m_busy : int
val m_resp : int

(** Fixed-latency scratchpad; [depth] must be a power of two.  The
    response appears [latency]+1 cycles after acceptance. *)
val scratchpad : ?name:string -> depth:int -> latency:int -> unit -> Firrtl.Ast.module_def

(** Pipelined scratchpad: accepts a request per cycle (up to 8
    outstanding), responses in order after [latency] cycles — for
    streaming masters. *)
val stream_mem : ?name:string -> depth:int -> latency:int -> unit -> Firrtl.Ast.module_def

(** N-master (1..8) crossbar with rotating priority and one outstanding
    request; master bundles [m<i>_req]/[m<i>_resp], memory side
    [mem_req]/[mem_resp]. *)
val xbar : ?name:string -> masters:int -> unit -> Firrtl.Ast.module_def
