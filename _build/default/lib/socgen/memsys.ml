(* Memory system generators: a fixed-latency scratchpad memory with a
   decoupled request/response port, and a crossbar arbiter that shares
   one memory port among N masters (the "bus based design" whose core
   tiles get pulled out in the Section VI-A sweeps). *)

open Firrtl

(* States of the scratchpad FSM *)
let m_idle = 0
let m_busy = 1
let m_resp = 2

(** Scratchpad with [latency] wait cycles between accepting a request
    and presenting the response.  [depth] must be a power of two so the
    hardware and the Kite reference machine wrap addresses alike. *)
let scratchpad ?(name = "scratchpad") ~depth ~latency () =
  if depth land (depth - 1) <> 0 then Ast.ir_error "scratchpad depth must be a power of 2";
  let b = Builder.create name in
  let req = Decoupled.sink b "req" Kite_core.req_fields in
  let resp = Decoupled.source b "resp" Kite_core.resp_fields in
  let open Dsl in
  let lit16 v = lit ~width:16 v in
  let mem = Builder.mem b "mem" ~width:16 ~depth in
  let state = Builder.reg b ~init:m_idle "state" 2 in
  let count = Builder.reg b "count" 8 in
  let addr_r = Builder.reg b "addr_r" 16 in
  let st v = lit ~width:2 v in
  let in_state v = state ==: st v in
  let req_fire = Builder.node b ~width:1 (ref_ req.Decoupled.valid &: ref_ req.Decoupled.ready) in
  let resp_fire =
    Builder.node b ~width:1 (ref_ resp.Decoupled.valid &: ref_ resp.Decoupled.ready)
  in
  Builder.connect b req.Decoupled.ready (in_state m_idle);
  Builder.connect b resp.Decoupled.valid (in_state m_resp);
  Builder.connect b "resp_data" (read mem addr_r);
  (* Write happens at acceptance; the response returns the new value for
     stores and the stored value for loads. *)
  Builder.mem_write b mem ~addr:(ref_ "req_addr") ~data:(ref_ "req_wdata")
    ~enable:(req_fire &: ref_ "req_wen");
  Builder.reg_next b ~enable:req_fire "addr_r" (ref_ "req_addr");
  let next_state =
    select ~default:state
      [
        ( in_state m_idle &: req_fire,
          if latency = 0 then st m_resp else st m_busy );
        (in_state m_busy &: (count ==: lit ~width:8 0), st m_resp);
        (in_state m_resp &: resp_fire, st m_idle);
      ]
  in
  Builder.reg_next b "state" next_state;
  Builder.reg_next b "count"
    (mux req_fire (lit ~width:8 (max 0 (latency - 1))) (count -: lit ~width:8 1));
  ignore lit16;
  Builder.finish b

(** Pipelined scratchpad: accepts a request per cycle (up to 8
    outstanding) and returns responses in order after [latency] cycles
    through a valid/data shift pipe feeding a small FIFO.  Used by
    streaming masters (the Gemmini-like accelerator), whose throughput
    — unlike the ping-pong Kite port — hides boundary latency. *)
let stream_mem ?(name = "stream_mem") ~depth ~latency () =
  if depth land (depth - 1) <> 0 then Ast.ir_error "stream_mem depth must be a power of 2";
  let latency = max 1 latency in
  let fifo_cap = 8 in
  let b = Builder.create name in
  let req = Decoupled.sink b "req" Kite_core.req_fields in
  let resp = Decoupled.source b "resp" Kite_core.resp_fields in
  let open Dsl in
  let mem = Builder.mem b "mem" ~width:16 ~depth in
  (* Response pipe: stage 0 is filled on acceptance. *)
  let vstage = List.init latency (fun i -> Builder.reg b (Printf.sprintf "v%d" i) 1) in
  let dstage = List.init latency (fun i -> Builder.reg b (Printf.sprintf "d%d" i) 16) in
  let fifo = Builder.mem b "fifo" ~width:16 ~depth:fifo_cap in
  let head = Builder.reg b "head" 3 in
  let tail = Builder.reg b "tail" 3 in
  let occ = Builder.reg b "occ" 4 in
  let outstanding = Builder.reg b "outstanding" 4 in
  let req_fire = Builder.node b ~width:1 (ref_ req.Decoupled.valid &: ref_ req.Decoupled.ready) in
  let resp_fire =
    Builder.node b ~width:1 (ref_ resp.Decoupled.valid &: ref_ resp.Decoupled.ready)
  in
  Builder.connect b req.Decoupled.ready (outstanding <: lit ~width:4 fifo_cap);
  Builder.connect b resp.Decoupled.valid (occ >: lit ~width:4 0);
  Builder.connect b "resp_data" (read fifo head);
  Builder.mem_write b mem ~addr:(ref_ "req_addr") ~data:(ref_ "req_wdata")
    ~enable:(req_fire &: ref_ "req_wen");
  (* Pipe advance. *)
  Builder.reg_next b "v0" req_fire;
  Builder.reg_next b "d0" (read mem (ref_ "req_addr"));
  List.iteri
    (fun i (v, d) ->
      if i > 0 then begin
        Builder.reg_next b (Printf.sprintf "v%d" i) (List.nth vstage (i - 1));
        Builder.reg_next b (Printf.sprintf "d%d" i) (List.nth dstage (i - 1));
        ignore (v, d)
      end)
    (List.combine vstage dstage);
  let pipe_out_v = List.nth vstage (latency - 1) in
  let pipe_out_d = List.nth dstage (latency - 1) in
  Builder.mem_write b fifo ~addr:tail ~data:pipe_out_d ~enable:pipe_out_v;
  Builder.reg_next b ~enable:pipe_out_v "tail" (tail +: lit ~width:3 1);
  Builder.reg_next b ~enable:resp_fire "head" (head +: lit ~width:3 1);
  Builder.reg_next b "occ" (occ +: pipe_out_v -: resp_fire);
  Builder.reg_next b "outstanding" (outstanding +: req_fire -: resp_fire);
  Builder.finish b

(** N-master crossbar arbiter in front of one memory port.  Fixed
    priority with a rotating start index for fairness; one outstanding
    request at a time (each Kite master has at most one in flight).
    Master-side bundles are [m<i>_req] (sink) and [m<i>_resp] (source);
    the memory side is [mem_req] (source) / [mem_resp] (sink). *)
let xbar ?(name = "xbar") ~masters () =
  if masters < 1 || masters > 8 then Ast.ir_error "xbar supports 1..8 masters";
  let b = Builder.create name in
  let open Dsl in
  let m_req =
    List.init masters (fun i ->
        Decoupled.sink b (Printf.sprintf "m%d_req" i) Kite_core.req_fields)
  in
  let m_resp =
    List.init masters (fun i ->
        Decoupled.source b (Printf.sprintf "m%d_resp" i) Kite_core.resp_fields)
  in
  let mem_req = Decoupled.source b "mem_req" Kite_core.req_fields in
  let mem_resp = Decoupled.sink b "mem_resp" Kite_core.resp_fields in
  let busy = Builder.reg b "busy" 1 in
  let owner = Builder.reg b "owner" 3 in
  (* Grant: lowest index with a valid request, starting from the rotating
     pointer.  For simplicity the rotation advances on every grant. *)
  let rot = Builder.reg b "rot" 3 in
  let idle = Builder.node b ~width:1 (not_ busy) in
  let valid_of i = ref_ (Printf.sprintf "m%d_req_valid" i) in
  (* Priority order: rot, rot+1, ... (mod masters).  Encoded as a mux
     chain over the rotated index. *)
  let grant_idx =
    let candidates =
      List.init masters (fun k ->
          let idx_expr =
            Builder.node b ~width:3
              (let sum = rot +: lit ~width:3 k in
               (* modulo masters *)
               mux
                 (sum >=: lit ~width:3 masters)
                 (sum -: lit ~width:3 masters)
                 sum)
          in
          let is_valid =
            Builder.node b ~width:1
              (select ~default:zero
                 (List.init masters (fun i ->
                      (idx_expr ==: lit ~width:3 i, valid_of i))))
          in
          (is_valid, idx_expr))
    in
    Builder.node b ~width:3 (select ~default:(lit ~width:3 0) candidates)
  in
  let any_valid =
    Builder.node b ~width:1
      (List.fold_left (fun acc i -> acc |: valid_of i) zero (List.init masters Fun.id))
  in
  let granted i = Builder.node b ~width:1 (idle &: any_valid &: (grant_idx ==: lit ~width:3 i)) in
  let grants = List.init masters granted in
  (* Memory request muxing *)
  let mux_field f =
    select
      ~default:(ref_ (Printf.sprintf "m0_req_%s" f))
      (List.mapi
         (fun i g -> (g, ref_ (Printf.sprintf "m%d_req_%s" i f)))
         grants)
  in
  Builder.connect b mem_req.Decoupled.valid (idle &: any_valid);
  Builder.connect b "mem_req_addr" (mux_field "addr");
  Builder.connect b "mem_req_wdata" (mux_field "wdata");
  Builder.connect b "mem_req_wen" (mux_field "wen");
  let mem_req_fire =
    Builder.node b ~width:1 (ref_ mem_req.Decoupled.valid &: ref_ mem_req.Decoupled.ready)
  in
  List.iteri
    (fun i g ->
      Builder.connect b (List.nth m_req i).Decoupled.ready
        (g &: ref_ mem_req.Decoupled.ready))
    grants;
  (* Response routing *)
  let resp_valid = ref_ mem_resp.Decoupled.valid in
  List.iteri
    (fun i (r : Decoupled.bundle) ->
      Builder.connect b r.Decoupled.valid (busy &: resp_valid &: (owner ==: lit ~width:3 i));
      Builder.connect b (Printf.sprintf "m%d_resp_data" i) (ref_ "mem_resp_data"))
    m_resp;
  let owner_ready =
    Builder.node b ~width:1
      (select ~default:zero
         (List.init masters (fun i ->
              ( owner ==: lit ~width:3 i,
                ref_ (Printf.sprintf "m%d_resp_ready" i) ))))
  in
  Builder.connect b mem_resp.Decoupled.ready (busy &: owner_ready);
  let mem_resp_fire = Builder.node b ~width:1 (resp_valid &: ref_ mem_resp.Decoupled.ready) in
  Builder.reg_next b "busy" (mux mem_req_fire one (mux mem_resp_fire zero busy));
  Builder.reg_next b ~enable:mem_req_fire "owner" grant_idx;
  Builder.reg_next b ~enable:mem_req_fire "rot"
    (mux
       (grant_idx ==: lit ~width:3 (masters - 1))
       (lit ~width:3 0)
       (grant_idx +: lit ~width:3 1));
  Builder.finish b
