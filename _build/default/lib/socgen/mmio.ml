(* Memory-mapped I/O: an address-decoding bus splitter and a UART-style
   transmit device, plus the host-side driver that drains it — the
   FireSim/FireAxe "bridge" pattern of §IV-A, where each FPGA partition
   has a host driver pushing and pulling tokens.  Here the driver is the
   per-cycle drive hook of the LI-BDN network (or a plain polling loop
   for monolithic simulation), reading the device's registers and
   returning the characters the target program printed.

   The device occupies the upper half of the address space (bit 15 of
   the word address set); everything below goes to memory. *)

open Firrtl

(* Address split: bit 15 selects the device. *)
let device_bit = 15

(** Address-decoding splitter: one master port in, memory + device out.
    Responses are routed back by remembering which slave accepted the
    outstanding request (masters have one in flight). *)
let splitter ?(name = "mmio_split") () =
  let b = Builder.create name in
  let open Dsl in
  let m_req = Decoupled.sink b "req" Kite_core.req_fields in
  let m_resp = Decoupled.source b "resp" Kite_core.resp_fields in
  let mem_req = Decoupled.source b "mem_req" Kite_core.req_fields in
  let mem_resp = Decoupled.sink b "mem_resp" Kite_core.resp_fields in
  let dev_req = Decoupled.source b "dev_req" Kite_core.req_fields in
  let dev_resp = Decoupled.sink b "dev_resp" Kite_core.resp_fields in
  let to_dev = Builder.node b ~width:1 (bit (ref_ "req_addr") device_bit) in
  Builder.connect b mem_req.Decoupled.valid (ref_ m_req.Decoupled.valid &: not_ to_dev);
  Builder.connect b dev_req.Decoupled.valid (ref_ m_req.Decoupled.valid &: to_dev);
  List.iter
    (fun (f, _) ->
      Builder.connect b ("mem_req_" ^ f) (ref_ ("req_" ^ f));
      Builder.connect b ("dev_req_" ^ f) (ref_ ("req_" ^ f)))
    Kite_core.req_fields;
  Builder.connect b m_req.Decoupled.ready
    (mux to_dev (ref_ dev_req.Decoupled.ready) (ref_ mem_req.Decoupled.ready));
  (* Response routing: remember the target of the outstanding request. *)
  let pending_dev = Builder.reg b "pending_dev" 1 in
  let req_fire = Builder.node b ~width:1 (ref_ m_req.Decoupled.valid &: ref_ m_req.Decoupled.ready) in
  Builder.reg_next b ~enable:req_fire "pending_dev" to_dev;
  Builder.connect b m_resp.Decoupled.valid
    (mux pending_dev (ref_ dev_resp.Decoupled.valid) (ref_ mem_resp.Decoupled.valid));
  Builder.connect b "resp_data"
    (mux pending_dev (ref_ "dev_resp_data") (ref_ "mem_resp_data"));
  Builder.connect b mem_resp.Decoupled.ready
    (ref_ m_resp.Decoupled.ready &: not_ pending_dev);
  Builder.connect b dev_resp.Decoupled.ready (ref_ m_resp.Decoupled.ready &: pending_dev);
  Builder.finish b

(** UART transmitter: a write to any device address enqueues the low
    byte into a 16-entry FIFO that the host driver drains through the
    [tx_*] ports ([tx_pop] acknowledges one byte per cycle).  Reads
    return the FIFO occupancy, so target software can throttle. *)
let uart_tx ?(name = "uart") () =
  let b = Builder.create name in
  let open Dsl in
  let req = Decoupled.sink b "req" Kite_core.req_fields in
  let resp = Decoupled.source b "resp" Kite_core.resp_fields in
  (* Host-driver side. *)
  Builder.output b "tx_valid" 1;
  Builder.output b "tx_byte" 8;
  let tx_pop = Builder.input b "tx_pop" 1 in
  let fifo = Builder.mem b "fifo" ~width:8 ~depth:16 in
  let head = Builder.reg b "head" 4 in
  let tail = Builder.reg b "tail" 4 in
  let occ = Builder.reg b "occ" 5 in
  let have_resp = Builder.reg b "have_resp" 1 in
  let full = Builder.node b ~width:1 (occ >=: lit ~width:5 16) in
  let req_fire = Builder.node b ~width:1 (ref_ req.Decoupled.valid &: ref_ req.Decoupled.ready) in
  let resp_fire = Builder.node b ~width:1 (ref_ resp.Decoupled.valid &: ref_ resp.Decoupled.ready) in
  (* Accept when not mid-response, and never drop writes on a full FIFO. *)
  Builder.connect b req.Decoupled.ready
    (not_ have_resp &: (not_ (ref_ "req_wen") |: not_ full));
  Builder.connect b resp.Decoupled.valid have_resp;
  Builder.connect b "resp_data" occ;
  Builder.reg_next b "have_resp" (mux req_fire one (mux resp_fire zero have_resp));
  let enq = Builder.node b ~width:1 (req_fire &: ref_ "req_wen") in
  let pop = Builder.node b ~width:1 (tx_pop &: (occ >: lit ~width:5 0)) in
  Builder.mem_write b fifo ~addr:tail ~data:(bits (ref_ "req_wdata") ~hi:7 ~lo:0) ~enable:enq;
  Builder.reg_next b ~enable:enq "tail" (tail +: lit ~width:4 1);
  Builder.reg_next b ~enable:pop "head" (head +: lit ~width:4 1);
  Builder.reg_next b "occ" (occ +: enq -: pop);
  Builder.connect b "tx_valid" (occ >: lit ~width:5 0);
  Builder.connect b "tx_byte" (read fifo head);
  Builder.finish b

(** The Kite SoC with a UART behind the MMIO splitter.  Stores to
    addresses with bit 15 set print; everything else is memory. *)
let uart_soc ?(mem_latency = 1) ?(mem_depth = 1024) ?(cache_sets = Some 64) () =
  let core = Kite_core.module_def () in
  let tile = Soc.tile_module ~cache_sets ~core_module:core.Ast.name () in
  let l1_modules =
    match cache_sets with
    | Some sets -> [ Cache.module_def ~name:"kite_tile_l1" ~sets () ]
    | None -> []
  in
  let split = splitter () in
  let mem = Memsys.scratchpad ~name:"mem" ~depth:mem_depth ~latency:mem_latency () in
  let uart = uart_tx () in
  let b = Builder.create "uart_soc" in
  let t = Builder.inst b "tile" tile.Ast.name in
  let s = Builder.inst b "split" split.Ast.name in
  let m = Builder.inst b "mem" mem.Ast.name in
  let u = Builder.inst b "uart" uart.Ast.name in
  (* tile <-> splitter *)
  Decoupled.connect_insts b ~src:t ~dst:s ~prefix:"req" ~fields:Kite_core.req_fields;
  Decoupled.connect_insts b ~src:s ~dst:t ~prefix:"resp" ~fields:Kite_core.resp_fields;
  (* splitter <-> memory *)
  let port ~src_i ~src_p ~dst_i ~dst_p fields valid ready =
    Builder.connect_in b dst_i (dst_p ^ "_" ^ valid) (Builder.of_inst src_i (src_p ^ "_" ^ valid));
    List.iter
      (fun (f, _) ->
        Builder.connect_in b dst_i (dst_p ^ "_" ^ f) (Builder.of_inst src_i (src_p ^ "_" ^ f)))
      fields;
    Builder.connect_in b src_i (src_p ^ "_" ^ ready) (Builder.of_inst dst_i (dst_p ^ "_" ^ ready))
  in
  port ~src_i:s ~src_p:"mem_req" ~dst_i:m ~dst_p:"req" Kite_core.req_fields "valid" "ready";
  port ~src_i:m ~src_p:"resp" ~dst_i:s ~dst_p:"mem_resp" Kite_core.resp_fields "valid" "ready";
  port ~src_i:s ~src_p:"dev_req" ~dst_i:u ~dst_p:"req" Kite_core.req_fields "valid" "ready";
  port ~src_i:u ~src_p:"resp" ~dst_i:s ~dst_p:"dev_resp" Kite_core.resp_fields "valid" "ready";
  (* The UART's host-driver face punches to the top. *)
  Builder.output b "tx_valid" 1;
  Builder.connect b "tx_valid" (Builder.of_inst u "tx_valid");
  Builder.output b "tx_byte" 8;
  Builder.connect b "tx_byte" (Builder.of_inst u "tx_byte");
  let pop = Builder.input b "tx_pop" 1 in
  Builder.connect_in b u "tx_pop" pop;
  Builder.output b "halted" 1;
  Builder.connect b "halted" (Builder.of_inst t "halted");
  {
    Ast.cname = "uart_soc";
    main = "uart_soc";
    modules = l1_modules @ [ core; tile; split; mem; uart; Builder.finish b ];
  }

(** A Kite program that prints the bytes at [base..base+n-1] (one word
    per character) through the UART, then halts.  The UART lives at
    word address 2^15. *)
let print_program ~base ~n =
  let open Kite_isa in
  (* r6 = 15; r5 = 1 << 15 (device base); r2 = data pointer; r3 = count *)
  [
    Addi (6, 0, 15);
    Addi (5, 0, 1);
    Alu (F_sll, 5, 5, 6);
    Addi (2, 0, base);
    Addi (3, 0, n);
    (* loop: *)
    Lw (4, 2, 0);
    Sw (4, 5, 0);
    Addi (2, 2, 1);
    Addi (3, 3, -1);
    Bne (3, 0, -5);
    Halt;
  ]

(** One host-driver step (§IV-A: "each FPGA partition has a
    corresponding simulation driver running on the host CPU").  Reads
    the UART's architectural state through the given accessors, collects
    at most one byte, and sets the pop acknowledgment for the next
    target cycle.  Identical timing whether the accessors talk to a
    monolithic simulation or to the base partition of an LI-BDN
    network, so the printed output is bit-identical across setups. *)
let driver_step ~peek ~peek_mem ~poke collected =
  if peek "uart$occ" > 0 then begin
    Buffer.add_char collected (Char.chr (peek_mem "uart$fifo" (peek "uart$head") land 0xff));
    poke "tx_pop" 1
  end
  else poke "tx_pop" 0

(** Runs the UART SoC monolithically until halt, returning the printed
    string and the halt cycle. *)
let run_monolithic ?(max_cycles = 200_000) ~program ~data () =
  let sim = Rtlsim.Sim.of_circuit (uart_soc ()) in
  Soc.load_program sim ~mem:"mem$mem" ~data program;
  let collected = Buffer.create 64 in
  let cycle = ref 0 in
  Rtlsim.Sim.eval_comb sim;
  while (not (Rtlsim.Sim.get sim "tile$core$state" = Kite_core.s_halted && Rtlsim.Sim.get sim "uart$occ" = 0))
        && !cycle < max_cycles do
    driver_step ~peek:(Rtlsim.Sim.get sim)
      ~peek_mem:(Rtlsim.Sim.peek_mem sim)
      ~poke:(Rtlsim.Sim.set_input sim) collected;
    Rtlsim.Sim.step sim;
    Rtlsim.Sim.eval_comb sim;
    incr cycle
  done;
  (Buffer.contents collected, !cycle)
