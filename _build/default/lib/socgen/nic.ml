(* A DMA NIC with one RX/TX stream per core and hardware latency
   counters — the §V-C hardware modification: "we modify our NIC such
   that it has a TX/RX queue corresponding to each core, [and] add
   hardware counters inside the NIC to measure the average bus request
   to response latency".

   The NIC is one more master on the SoC crossbar.  It round-robins over
   (core, direction) jobs: an RX job writes the next packet word into
   the core's RX buffer, a TX job reads the next word of the core's TX
   buffer.  Per direction it accumulates (response - request) latencies
   and transaction counts, so average bus latency under contention can
   be read out of the hardware exactly as in the paper's Figure 9
   methodology — here measured in cycle-exact RTL rather than the DES
   model. *)

open Firrtl

let n_idle = 0
let n_req = 1
let n_wait = 2

(** Buffer layout: per core, RX words at [rx_base + core*span] and TX
    words at [tx_base + core*span], walked cyclically. *)
let module_def ?(name = "nic") ~cores ~rx_base ~tx_base ~span () =
  if cores < 1 || cores > 8 then Ast.ir_error "nic supports 1..8 cores";
  let b = Builder.create name in
  let open Dsl in
  let lit16 v = lit ~width:16 v in
  let req = Decoupled.source b "req" Kite_core.req_fields in
  let resp = Decoupled.sink b "resp" Kite_core.resp_fields in
  List.iter
    (fun o -> Builder.output b o 32)
    [ "rd_lat_sum"; "wr_lat_sum" ];
  List.iter (fun o -> Builder.output b o 16) [ "rd_count"; "wr_count" ];
  let state = Builder.reg b ~init:n_idle "state" 2 in
  let job = Builder.reg b "job" 4 in
  (* job encodes (core, direction): low bit = direction (0 = RX write) *)
  let word = Builder.reg b "word" 16 in
  let now = Builder.reg b "now" 32 in
  let issue_t = Builder.reg b "issue_t" 32 in
  let rd_sum = Builder.reg b "rd_sum" 32 in
  let wr_sum = Builder.reg b "wr_sum" 32 in
  let rd_cnt = Builder.reg b "rd_cnt" 16 in
  let wr_cnt = Builder.reg b "wr_cnt" 16 in
  let seq = Builder.reg b "seq" 16 in
  Builder.reg_next b "now" (now +: lit ~width:32 1);
  let st v = lit ~width:2 v in
  let in_state v = state ==: st v in
  let is_rx = Builder.node b ~width:1 (not_ (bit job 0)) in
  let core = Builder.node b ~width:3 (bits job ~hi:3 ~lo:1) in
  let req_fire = Builder.node b ~width:1 (ref_ req.Decoupled.valid &: ref_ req.Decoupled.ready) in
  let resp_fire =
    Builder.node b ~width:1 (ref_ resp.Decoupled.valid &: ref_ resp.Decoupled.ready)
  in
  let base = Builder.node b ~width:16 (mux is_rx (lit16 rx_base) (lit16 tx_base)) in
  let addr =
    Builder.node b ~width:16
      (base +: (core *: lit16 span) +: (word %: lit16 span))
  in
  Builder.connect b req.Decoupled.valid (in_state n_req);
  Builder.connect b "req_addr" addr;
  Builder.connect b "req_wen" is_rx;
  Builder.connect b "req_wdata" seq;
  Builder.connect b resp.Decoupled.ready (in_state n_wait);
  let next_job =
    (* Round-robin over cores*2 jobs. *)
    mux (job ==: lit ~width:4 ((cores * 2) - 1)) (lit ~width:4 0) (job +: lit ~width:4 1)
  in
  let next_state =
    select ~default:state
      [
        (in_state n_idle, st n_req);
        (in_state n_req &: req_fire, st n_wait);
        (in_state n_wait &: resp_fire, st n_req);
      ]
  in
  Builder.reg_next b "state" next_state;
  (* Latency is measured from the moment the request is first
     *presented* (so crossbar arbitration waits count, as in the
     paper's request-to-response metric), to the response. *)
  let done_txn = Builder.node b ~width:1 (in_state n_wait &: resp_fire) in
  Builder.reg_next b
    ~enable:(in_state n_idle |: done_txn)
    "issue_t"
    (now +: lit ~width:32 1);
  Builder.reg_next b ~enable:done_txn "job" next_job;
  Builder.reg_next b ~enable:done_txn "word" (word +: lit16 1);
  Builder.reg_next b ~enable:done_txn "seq" (seq +: lit16 1);
  let lat = Builder.node b ~width:32 (now -: issue_t) in
  Builder.reg_next b ~enable:(done_txn &: is_rx) "wr_sum" (wr_sum +: lat);
  Builder.reg_next b ~enable:(done_txn &: is_rx) "wr_cnt" (wr_cnt +: lit16 1);
  Builder.reg_next b ~enable:(done_txn &: not_ is_rx) "rd_sum" (rd_sum +: lat);
  Builder.reg_next b ~enable:(done_txn &: not_ is_rx) "rd_cnt" (rd_cnt +: lit16 1);
  Builder.connect b "rd_lat_sum" rd_sum;
  Builder.connect b "wr_lat_sum" wr_sum;
  Builder.connect b "rd_count" rd_cnt;
  Builder.connect b "wr_count" wr_cnt;
  Builder.finish b

(** Kite tiles + NIC sharing one scratchpad through the crossbar; the
    NIC is master [cores] (the last one).  Core programs are loaded by
    the caller; [Nic.forwarding_program] keeps the tiles hammering
    memory like the paper's packet-forwarding cores. *)
let nic_soc ?(mem_latency = 1) ?(mem_depth = 1024) ?(cache_sets = Some 64) ~cores () =
  let core = Kite_core.module_def () in
  let tile = Soc.tile_module ~cache_sets ~core_module:core.Ast.name () in
  let l1_modules =
    match cache_sets with
    | Some sets -> [ Cache.module_def ~name:"kite_tile_l1" ~sets () ]
    | None -> []
  in
  let xbar = Memsys.xbar ~masters:(cores + 1) () in
  let mem = Memsys.scratchpad ~name:"mem" ~depth:mem_depth ~latency:mem_latency () in
  let nic = module_def ~cores ~rx_base:256 ~tx_base:512 ~span:32 () in
  let b = Builder.create "nicsoc" in
  let x = Builder.inst b "xbar" xbar.Ast.name in
  let m = Builder.inst b "mem" mem.Ast.name in
  let nic_i = Builder.inst b "nic" nic.Ast.name in
  let attach_master i inst =
    let mp = Printf.sprintf "m%d" i in
    Builder.connect_in b x (mp ^ "_req_valid") (Builder.of_inst inst "req_valid");
    List.iter
      (fun (f, _) ->
        Builder.connect_in b x (mp ^ "_req_" ^ f) (Builder.of_inst inst ("req_" ^ f)))
      Kite_core.req_fields;
    Builder.connect_in b inst "req_ready" (Builder.of_inst x (mp ^ "_req_ready"));
    Builder.connect_in b inst "resp_valid" (Builder.of_inst x (mp ^ "_resp_valid"));
    Builder.connect_in b inst "resp_data" (Builder.of_inst x (mp ^ "_resp_data"));
    Builder.connect_in b x (mp ^ "_resp_ready") (Builder.of_inst inst "resp_ready")
  in
  let tiles =
    List.init cores (fun i ->
        let t = Builder.inst b (Printf.sprintf "tile%d" i) tile.Ast.name in
        attach_master i t;
        t)
  in
  attach_master cores nic_i;
  (* xbar.mem <-> scratchpad *)
  Builder.connect_in b m "req_valid" (Builder.of_inst x "mem_req_valid");
  List.iter
    (fun (f, _) ->
      Builder.connect_in b m ("req_" ^ f) (Builder.of_inst x ("mem_req_" ^ f)))
    Kite_core.req_fields;
  Builder.connect_in b x "mem_req_ready" (Builder.of_inst m "req_ready");
  Builder.connect_in b x "mem_resp_valid" (Builder.of_inst m "resp_valid");
  Builder.connect_in b x "mem_resp_data" (Builder.of_inst m "resp_data");
  Builder.connect_in b m "resp_ready" (Builder.of_inst x "mem_resp_ready");
  (* NIC counters to the top. *)
  List.iter
    (fun (o, w) ->
      Builder.output b o w;
      Builder.connect b o (Builder.of_inst nic_i o))
    [ ("rd_lat_sum", 32); ("wr_lat_sum", 32); ("rd_count", 16); ("wr_count", 16) ];
  ignore tiles;
  {
    Ast.cname = "nicsoc";
    main = "nicsoc";
    modules = l1_modules @ [ core; tile; xbar; mem; nic; Builder.finish b ];
  }

(** Endless memory-forwarding loop for the tiles (never halts): copies a
    block back and forth, keeping the bus busy like the paper's
    packet-forwarding cores. *)
let forwarding_program =
  let open Kite_isa in
  [
    (* loop: r2 = 40; r3 = 8; inner copy; jump back *)
    Addi (2, 0, 40);
    Addi (3, 0, 8);
    Lw (4, 2, 0);
    Sw (4, 2, 16);
    Addi (2, 2, 1);
    Addi (3, 3, -1);
    Bne (3, 0, -5);
    Jal (1, -8);
  ]

(** Average request-to-response latencies (read, write) after a run. *)
let averages ~peek =
  let avg sum cnt = if peek cnt = 0 then 0. else float_of_int (peek sum) /. float_of_int (peek cnt) in
  (avg "rd_lat_sum" "rd_count", avg "wr_lat_sum" "wr_count")
