(** Kite: the minimal 16-bit RISC ISA of the in-order core, with an
    assembler, a reference interpreter for differential testing, and
    canned programs used by the validation experiments. *)

type reg = int (* 0..7 *)

type funct =
  | F_add
  | F_sub
  | F_and
  | F_or
  | F_xor
  | F_sll
  | F_srl
  | F_slt
  | F_mul

type instr =
  | Alu of funct * reg * reg * reg  (** funct, rd, rs1, rs2 *)
  | Addi of reg * reg * int
  | Lw of reg * reg * int
  | Sw of reg * reg * int  (** [Sw (rsrc, rbase, imm)] stores rsrc *)
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Jal of reg * int
  | Halt

(** Raises [Invalid_argument] on out-of-range registers/immediates. *)
val encode : instr -> int

val assemble : instr list -> int list

(** Reference interpreter state. *)
type machine = {
  mutable pc : int;
  regs : int array;
  mem : int array;
  mutable halted : bool;
  mutable retired : int;
}

(** [mem_words] must be a power of two (addresses wrap like the RTL). *)
val make_machine : mem_words:int -> machine

val load_words : machine -> int list -> unit
val step : machine -> unit

(** {!step} with the instruction word supplied by [fetch] — the Harvard
    variant, for cores with a separate instruction memory. *)
val step_fetch : machine -> fetch:(int -> int) -> unit

(** Runs to halt; fails after [max_steps]. *)
val run : machine -> max_steps:int -> unit

(** Sums [n] words at [base] into memory[dst]. *)
val sum_program : base:int -> n:int -> dst:int -> instr list

(** fib(n) mod 2^16 into memory[dst]. *)
val fib_program : n:int -> dst:int -> instr list

(** Sums [n] words over [reps] cached passes (the Table II workload). *)
val sum_repeat_program : base:int -> n:int -> reps:int -> dst:int -> instr list

(** Copies then accumulates a block (load/store heavy). *)
val memcopy_program : src:int -> dst:int -> n:int -> instr list

(** Decodes one instruction word (total: every 16-bit value decodes;
    undefined ALU functs behave as add, opcode 7 is halt). *)
val decode : int -> instr

val to_string : instr -> string

(** Disassembles a memory image range into listing lines. *)
val disassemble : ?base:int -> int list -> string list
