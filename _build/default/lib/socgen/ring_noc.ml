(* A credit-based ring network-on-chip in the style of Constellation
   (the NoC generator the paper partitions across): per-node router
   modules carrying [Noc_router] annotations, protocol converters
   bridging ready-valid tiles onto credit links, traffic-generator
   tiles, and a reflector node standing in for the SoC subsystem.

   Router boundaries are credit-based and register-driven: no output
   port depends combinationally on any input port, which is exactly the
   property FireRipper's NoC-partition-mode exploits (Fig. 4). *)

open Firrtl

let dest_bits = 5
let src_bits = 5

(* Packet layout: [dest | src | payload]. *)
let packet_width ~payload_width = dest_bits + src_bits + payload_width

let pack ~payload_width ~dest ~src ~payload =
  Dsl.(cat dest (cat src payload)) |> fun e -> ignore payload_width; e

let dest_of ~payload_width e =
  Dsl.bits e ~hi:(packet_width ~payload_width - 1) ~lo:(src_bits + payload_width)

let src_of ~payload_width e = Dsl.bits e ~hi:(src_bits + payload_width - 1) ~lo:payload_width
let payload_of ~payload_width e = Dsl.bits e ~hi:(payload_width - 1) ~lo:0

(* A 2-deep credit-buffered queue (mem + head/tail/occ).  Returns
   (nonempty expr, head-data expr, enq/deq emitters). *)
let credit_queue b ~prefix ~width =
  let open Dsl in
  let q = Builder.mem b (prefix ^ "_q") ~width ~depth:2 in
  let head = Builder.reg b (prefix ^ "_head") 1 in
  let tail = Builder.reg b (prefix ^ "_tail") 1 in
  let occ = Builder.reg b (prefix ^ "_occ") 2 in
  let nonempty = Builder.node b ~width:1 (occ >: lit ~width:2 0) in
  let head_data = read q head in
  let finishq ~enq ~enq_data ~deq =
    Builder.mem_write b q ~addr:tail ~data:enq_data ~enable:enq;
    Builder.reg_next b ~enable:enq (prefix ^ "_tail") (tail +: lit ~width:1 1);
    Builder.reg_next b ~enable:deq (prefix ^ "_head") (head +: lit ~width:1 1);
    Builder.reg_next b (prefix ^ "_occ") (occ +: enq -: deq);
    (* Credit-protocol invariants, synthesized into the image: the
       sender's credits must prevent both overflow and underflow. *)
    Builder.assertion b (prefix ^ "_overflow") (enq &: (occ ==: lit ~width:2 2));
    Builder.assertion b (prefix ^ "_underflow") (deq &: (occ ==: lit ~width:2 0))
  in
  (nonempty, head_data, finishq)

(** One ring router node.  [my_id] routes local deliveries; the module
    carries the [Noc_router index] annotation. *)
let router_module ~name ~index ~payload_width () =
  let w = packet_width ~payload_width in
  let b = Builder.create name in
  let open Dsl in
  Builder.annotate b (Ast.Noc_router { index });
  let ring_in_valid = Builder.input b "ring_in_valid" 1 in
  let ring_in_data = Builder.input b "ring_in_data" w in
  Builder.output b "ring_in_credit" 1;
  Builder.output b "ring_out_valid" 1;
  Builder.output b "ring_out_data" w;
  let ring_out_credit = Builder.input b "ring_out_credit" 1 in
  let loc_in_valid = Builder.input b "loc_in_valid" 1 in
  let loc_in_data = Builder.input b "loc_in_data" w in
  Builder.output b "loc_in_credit" 1;
  Builder.output b "loc_out_valid" 1;
  Builder.output b "loc_out_data" w;
  let loc_out_credit = Builder.input b "loc_out_credit" 1 in
  let inq_ne, inq_head, finish_inq = credit_queue b ~prefix:"inq" ~width:w in
  let locq_ne, locq_head, finish_locq = credit_queue b ~prefix:"locq" ~width:w in
  let credit_next = Builder.reg b ~init:2 "credit_next" 2 in
  let credit_loc = Builder.reg b ~init:2 "credit_loc" 2 in
  let head_dest = Builder.node b ~width:dest_bits (dest_of ~payload_width inq_head) in
  let ring_to_loc =
    Builder.node b ~width:1 (inq_ne &: (head_dest ==: lit ~width:dest_bits index))
  in
  let ring_to_ring = Builder.node b ~width:1 (inq_ne &: not_ ring_to_loc) in
  let have_next_credit = Builder.node b ~width:1 (credit_next >: lit ~width:2 0) in
  let have_loc_credit = Builder.node b ~width:1 (credit_loc >: lit ~width:2 0) in
  let send_loc = Builder.node b ~width:1 (ring_to_loc &: have_loc_credit) in
  let send_ring_from_ring = Builder.node b ~width:1 (ring_to_ring &: have_next_credit) in
  let send_ring_from_loc =
    (* Local injection yields to through traffic. *)
    Builder.node b ~width:1 (locq_ne &: have_next_credit &: not_ ring_to_ring)
  in
  let deq_inq = Builder.node b ~width:1 (send_loc |: send_ring_from_ring) in
  let deq_locq = send_ring_from_loc in
  Builder.connect b "ring_out_valid" (send_ring_from_ring |: send_ring_from_loc);
  Builder.connect b "ring_out_data" (mux send_ring_from_ring inq_head locq_head);
  Builder.connect b "loc_out_valid" send_loc;
  Builder.connect b "loc_out_data" inq_head;
  Builder.connect b "ring_in_credit" deq_inq;
  Builder.connect b "loc_in_credit" deq_locq;
  finish_inq ~enq:ring_in_valid ~enq_data:ring_in_data ~deq:deq_inq;
  finish_locq ~enq:loc_in_valid ~enq_data:loc_in_data ~deq:deq_locq;
  Builder.reg_next b "credit_next"
    (credit_next -: (send_ring_from_ring |: send_ring_from_loc) +: ring_out_credit);
  Builder.reg_next b "credit_loc" (credit_loc -: send_loc +: loc_out_credit);
  Builder.finish b

(** Protocol converter: bridges a tile's ready-valid TX/RX onto the
    router's credit-based local port. *)
let converter_module ~name ~payload_width () =
  let w = packet_width ~payload_width in
  let b = Builder.create name in
  let open Dsl in
  (* Tile side *)
  let tx = Decoupled.sink b "tx" [ ("pkt", w) ] in
  let rx = Decoupled.source b "rx" [ ("pkt", w) ] in
  (* Router side *)
  Builder.output b "noc_out_valid" 1;
  Builder.output b "noc_out_data" w;
  let noc_out_credit = Builder.input b "noc_out_credit" 1 in
  let noc_in_valid = Builder.input b "noc_in_valid" 1 in
  let noc_in_data = Builder.input b "noc_in_data" w in
  Builder.output b "noc_in_credit" 1;
  let credit = Builder.reg b ~init:2 "credit" 2 in
  let have_credit = Builder.node b ~width:1 (credit >: lit ~width:2 0) in
  let tx_fire = Builder.node b ~width:1 (ref_ tx.Decoupled.valid &: have_credit) in
  Builder.connect b tx.Decoupled.ready have_credit;
  Builder.connect b "noc_out_valid" tx_fire;
  Builder.connect b "noc_out_data" (ref_ "tx_pkt");
  Builder.reg_next b "credit" (credit -: tx_fire +: noc_out_credit);
  let inq_ne, inq_head, finish_inq = credit_queue b ~prefix:"rxq" ~width:w in
  let rx_fire = Builder.node b ~width:1 (inq_ne &: ref_ rx.Decoupled.ready) in
  Builder.connect b rx.Decoupled.valid inq_ne;
  Builder.connect b "rx_pkt" inq_head;
  Builder.connect b "noc_in_credit" rx_fire;
  finish_inq ~enq:noc_in_valid ~enq_data:noc_in_data ~deq:rx_fire;
  Builder.finish b

(** Traffic-generator tile: every [period] cycles it sends a packet with
    an incrementing payload to [target], and accumulates a checksum of
    everything it receives.  [bug_at]: an optional deliberately-injected
    RTL bug — when the send sequence number reaches that value, the
    checksum register additionally XORs a wrong constant (a latent bug
    that only manifests deep into a simulation, as in Section V-A). *)
let traffic_tile_module ~name ~my_id ~target ~period ~payload_width ?bug_at () =
  let w = packet_width ~payload_width in
  let b = Builder.create name in
  let open Dsl in
  let tx = Decoupled.source b "tx" [ ("pkt", w) ] in
  let rx = Decoupled.sink b "rx" [ ("pkt", w) ] in
  Builder.output b "sent" 16;
  Builder.output b "rcvd" 16;
  Builder.output b "checksum" 16;
  let tick = Builder.reg b "tick" 16 in
  let seq = Builder.reg b "seq" payload_width in
  let pending = Builder.reg b "pending" 1 in
  let sent = Builder.reg b "sent_r" 16 in
  let rcvd = Builder.reg b "rcvd_r" 16 in
  let checksum = Builder.reg b "checksum_r" 16 in
  let lit16 v = lit ~width:16 v in
  let tick_wrap = Builder.node b ~width:1 (tick ==: lit16 (period - 1)) in
  Builder.reg_next b "tick" (mux tick_wrap (lit16 0) (tick +: lit16 1));
  let tx_fire = Builder.node b ~width:1 (ref_ tx.Decoupled.valid &: ref_ tx.Decoupled.ready) in
  (* A new packet becomes pending on each tick; it stays pending until
     accepted (at full load the generator self-throttles). *)
  Builder.reg_next b "pending" (mux tx_fire zero (mux tick_wrap one pending));
  Builder.connect b tx.Decoupled.valid pending;
  Builder.connect b "tx_pkt"
    (pack ~payload_width
       ~dest:(lit ~width:dest_bits target)
       ~src:(lit ~width:src_bits my_id)
       ~payload:seq);
  Builder.reg_next b ~enable:tx_fire "seq" (seq +: lit ~width:payload_width 1);
  Builder.reg_next b ~enable:tx_fire "sent_r" (sent +: lit16 1);
  let rx_fire = Builder.node b ~width:1 (ref_ rx.Decoupled.valid &: ref_ rx.Decoupled.ready) in
  Builder.connect b rx.Decoupled.ready one;
  Builder.reg_next b ~enable:rx_fire "rcvd_r" (rcvd +: lit16 1);
  let rx_payload = payload_of ~payload_width (ref_ "rx_pkt") in
  let checksum_next =
    let base = Dsl.(checksum ^: rx_payload +: lit16 1) in
    match bug_at with
    | None -> base
    | Some n ->
      (* The latent bug: a bogus extra XOR once the sequence number hits
         [n] — silent until then. *)
      Dsl.(mux (seq ==: lit ~width:payload_width n) (base ^: lit16 0xdead) base)
  in
  Builder.reg_next b ~enable:rx_fire "checksum_r" checksum_next;
  Builder.connect b "sent" sent;
  Builder.connect b "rcvd" rcvd;
  Builder.connect b "checksum" checksum;
  Builder.finish b

(** Reflector node (the "SoC subsystem"): echoes every packet back to
    its source, payload incremented. *)
let reflector_module ~name ~my_id ~payload_width () =
  let w = packet_width ~payload_width in
  let b = Builder.create name in
  let open Dsl in
  let rx = Decoupled.sink b "rx" [ ("pkt", w) ] in
  let tx = Decoupled.source b "tx" [ ("pkt", w) ] in
  Builder.output b "reflected" 16;
  let pend = Builder.reg b "pend" 1 in
  let pend_pkt = Builder.reg b "pend_pkt" w in
  let count = Builder.reg b "count" 16 in
  let tx_fire = Builder.node b ~width:1 (ref_ tx.Decoupled.valid &: ref_ tx.Decoupled.ready) in
  let rx_fire = Builder.node b ~width:1 (ref_ rx.Decoupled.valid &: ref_ rx.Decoupled.ready) in
  Builder.connect b rx.Decoupled.ready (not_ pend |: tx_fire);
  Builder.connect b tx.Decoupled.valid pend;
  Builder.connect b "tx_pkt" pend_pkt;
  let in_pkt = ref_ "rx_pkt" in
  let echo =
    pack ~payload_width
      ~dest:(src_of ~payload_width in_pkt)
      ~src:(lit ~width:src_bits my_id)
      ~payload:(payload_of ~payload_width in_pkt +: lit ~width:payload_width 1)
  in
  Builder.reg_next b ~enable:rx_fire "pend_pkt" echo;
  Builder.reg_next b "pend" (mux rx_fire one (mux tx_fire zero pend));
  Builder.reg_next b ~enable:rx_fire "count" (count +: lit ~width:16 1);
  Builder.connect b "reflected" count;
  Builder.finish b

(** The ring SoC: [n_tiles] traffic tiles plus one reflector node, each
    behind a protocol converter and a ring router.  Tiles send to the
    reflector and checksum the echoes.  [bug_tile]/[bug_at] plant the
    latent RTL bug of the Section V-A case study in one tile. *)
let ring_soc ?(payload_width = 16) ?(period = 8) ?bug_tile ?bug_at ~n_tiles () =
  if n_tiles + 1 > 1 lsl dest_bits then Ast.ir_error "ring_soc: too many nodes";
  let n_nodes = n_tiles + 1 in
  let reflector_id = n_tiles in
  let w = packet_width ~payload_width in
  let routers =
    List.init n_nodes (fun i ->
        router_module ~name:(Printf.sprintf "router%d" i) ~index:i ~payload_width ())
  in
  let convs =
    List.init n_nodes (fun i ->
        converter_module ~name:(Printf.sprintf "conv%d" i) ~payload_width ())
  in
  let tiles =
    List.init n_tiles (fun i ->
        let bug_at = if bug_tile = Some i then bug_at else None in
        traffic_tile_module
          ~name:(Printf.sprintf "ttile%d" i)
          ~my_id:i ~target:reflector_id ~period ~payload_width ?bug_at ())
  in
  let reflector = reflector_module ~name:"reflector" ~my_id:reflector_id ~payload_width () in
  let b = Builder.create "ringsoc" in
  let r_insts =
    List.init n_nodes (fun i -> Builder.inst b (Printf.sprintf "router%d" i) (Printf.sprintf "router%d" i))
  in
  let c_insts =
    List.init n_nodes (fun i -> Builder.inst b (Printf.sprintf "conv%d" i) (Printf.sprintf "conv%d" i))
  in
  let t_insts =
    List.init n_tiles (fun i -> Builder.inst b (Printf.sprintf "ttile%d" i) (Printf.sprintf "ttile%d" i))
  in
  let refl = Builder.inst b "reflector" "reflector" in
  ignore w;
  (* Ring links. *)
  List.iteri
    (fun i r ->
      let nxt = List.nth r_insts ((i + 1) mod n_nodes) in
      Builder.connect_in b nxt "ring_in_valid" (Builder.of_inst r "ring_out_valid");
      Builder.connect_in b nxt "ring_in_data" (Builder.of_inst r "ring_out_data");
      Builder.connect_in b r "ring_out_credit" (Builder.of_inst nxt "ring_in_credit"))
    r_insts;
  (* Converter <-> router local links. *)
  List.iteri
    (fun i c ->
      let r = List.nth r_insts i in
      Builder.connect_in b r "loc_in_valid" (Builder.of_inst c "noc_out_valid");
      Builder.connect_in b r "loc_in_data" (Builder.of_inst c "noc_out_data");
      Builder.connect_in b c "noc_out_credit" (Builder.of_inst r "loc_in_credit");
      Builder.connect_in b c "noc_in_valid" (Builder.of_inst r "loc_out_valid");
      Builder.connect_in b c "noc_in_data" (Builder.of_inst r "loc_out_data");
      Builder.connect_in b r "loc_out_credit" (Builder.of_inst c "noc_in_credit"))
    c_insts;
  (* Tile <-> converter ready-valid links. *)
  let rv_link ~tile ~conv =
    Builder.connect_in b conv "tx_valid" (Builder.of_inst tile "tx_valid");
    Builder.connect_in b conv "tx_pkt" (Builder.of_inst tile "tx_pkt");
    Builder.connect_in b tile "tx_ready" (Builder.of_inst conv "tx_ready");
    Builder.connect_in b tile "rx_valid" (Builder.of_inst conv "rx_valid");
    Builder.connect_in b tile "rx_pkt" (Builder.of_inst conv "rx_pkt");
    Builder.connect_in b conv "rx_ready" (Builder.of_inst tile "rx_ready")
  in
  List.iteri (fun i t -> rv_link ~tile:t ~conv:(List.nth c_insts i)) t_insts;
  rv_link ~tile:refl ~conv:(List.nth c_insts reflector_id);
  (* Statistics outputs. *)
  List.iteri
    (fun i t ->
      List.iter
        (fun sig_ ->
          Builder.output b (Printf.sprintf "%s%d" sig_ i) 16;
          Builder.connect b (Printf.sprintf "%s%d" sig_ i) (Builder.of_inst t sig_))
        [ "sent"; "rcvd"; "checksum" ])
    t_insts;
  Builder.output b "reflected" 16;
  Builder.connect b "reflected" (Builder.of_inst refl "reflected");
  {
    Ast.cname = "ringsoc";
    main = "ringsoc";
    modules = routers @ convs @ tiles @ [ reflector; Builder.finish b ];
  }
