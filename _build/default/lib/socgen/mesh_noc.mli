(** 2-D mesh NoC with dimension-ordered (XY) routing — Constellation-
    style breadth beyond the ring.  Routers carry [Noc_router]
    annotations (index = y*width + x); all outputs register-driven. *)

val packet_width : payload_width:int -> int

(** One mesh router at (x, y); edge routers omit absent direction
    ports. *)
val router_module :
  name:string ->
  x:int ->
  y:int ->
  width:int ->
  height:int ->
  payload_width:int ->
  unit ->
  Firrtl.Ast.module_def

(** A [width] x [height] mesh SoC: traffic tiles on every node except
    the last, which hosts the reflector subsystem. *)
val mesh_soc :
  ?payload_width:int -> ?period:int -> width:int -> height:int -> unit -> Firrtl.Ast.circuit

(** Router indices of row [r] — a natural NoC-partition-mode group. *)
val row_group : width:int -> int -> int list
