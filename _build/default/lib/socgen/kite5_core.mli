(** 5-stage in-order pipeline (IF/ID/EX/MEM/WB) for the Kite ISA:
    Harvard front end (internal instruction memory), decoupled data
    port tolerant of any memory latency, full forwarding with load-use
    stalls, branches resolved in EX (2-cycle flush).  Architecturally
    identical to [Kite_isa]'s reference interpreter. *)

open Firrtl

val module_def : ?name:string -> ?imem_depth:int -> unit -> Ast.module_def

(** Pipelined core + scratchpad SoC ("k5soc"); outputs [halted] and
    [retired]. *)
val soc : ?mem_latency:int -> ?mem_depth:int -> ?imem_depth:int -> unit -> Ast.circuit

(** Pipelined core in front of the FASED-style DRAM timing model. *)
val dram_soc :
  ?timing:Dram.timing ->
  ?banks:int ->
  ?cols:int ->
  ?mem_depth:int ->
  ?imem_depth:int ->
  unit ->
  Ast.circuit

(** Loads a program (into ["core$imem"]) and data words (into
    ["mem$mem"]) of a {!soc} simulation. *)
val load_program : Rtlsim.Sim.t -> data:(int * int) list -> Kite_isa.instr list -> unit
