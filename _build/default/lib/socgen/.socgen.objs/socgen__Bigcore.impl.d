lib/socgen/bigcore.ml: Ast Builder Dsl Firrtl Fun List Printf
