lib/socgen/ring_noc.mli: Ast Builder Firrtl
