lib/socgen/cache.ml: Ast Builder Decoupled Dsl Firrtl Kite_core
