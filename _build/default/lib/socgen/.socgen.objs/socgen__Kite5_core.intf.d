lib/socgen/kite5_core.mli: Ast Dram Firrtl Kite_isa Rtlsim
