lib/socgen/cache.mli: Firrtl
