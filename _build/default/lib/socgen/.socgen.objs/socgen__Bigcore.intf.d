lib/socgen/bigcore.mli: Firrtl
