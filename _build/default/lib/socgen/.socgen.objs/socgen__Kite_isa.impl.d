lib/socgen/kite_isa.ml: Array List Printf
