lib/socgen/mmio.ml: Ast Buffer Builder Cache Char Decoupled Dsl Firrtl Kite_core Kite_isa List Memsys Rtlsim Soc
