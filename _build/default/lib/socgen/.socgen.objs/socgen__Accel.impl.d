lib/socgen/accel.ml: Array Builder Decoupled Dsl Firrtl Kite_core List
