lib/socgen/mmio.mli: Buffer Firrtl Kite_isa
