lib/socgen/soc.ml: Accel Ast Builder Cache Decoupled Dsl Firrtl Kite_core Kite_isa List Memsys Printf Rtlsim
