lib/socgen/ring_noc.ml: Ast Builder Decoupled Dsl Firrtl List Printf
