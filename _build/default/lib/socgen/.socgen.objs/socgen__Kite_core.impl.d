lib/socgen/kite_core.ml: Builder Decoupled Dsl Firrtl
