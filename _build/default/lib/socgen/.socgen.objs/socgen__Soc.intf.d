lib/socgen/soc.mli: Ast Builder Firrtl Kite_isa Rtlsim
