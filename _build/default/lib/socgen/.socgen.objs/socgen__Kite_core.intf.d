lib/socgen/kite_core.mli: Firrtl
