lib/socgen/decoupled.ml: Ast Builder Dsl Firrtl List
