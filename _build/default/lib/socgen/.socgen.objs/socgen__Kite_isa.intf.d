lib/socgen/kite_isa.mli:
