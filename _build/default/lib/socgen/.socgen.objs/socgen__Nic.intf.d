lib/socgen/nic.mli: Firrtl Kite_isa
