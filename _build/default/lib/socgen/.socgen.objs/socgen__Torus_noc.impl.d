lib/socgen/torus_noc.ml: Ast Builder Dsl Firrtl Hashtbl List Mesh_noc Printf Ring_noc
