lib/socgen/dram.mli: Ast Firrtl
