lib/socgen/nic.ml: Ast Builder Cache Decoupled Dsl Firrtl Kite_core Kite_isa List Memsys Printf Soc
