lib/socgen/memsys.mli: Firrtl
