lib/socgen/kite5_core.ml: Ast Builder Decoupled Dram Dsl Firrtl Kite_core Kite_isa List Memsys Rtlsim Soc
