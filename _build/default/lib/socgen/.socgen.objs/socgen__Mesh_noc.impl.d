lib/socgen/mesh_noc.ml: Ast Builder Dsl Firrtl Hashtbl List Printf Ring_noc
