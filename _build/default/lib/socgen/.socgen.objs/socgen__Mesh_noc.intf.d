lib/socgen/mesh_noc.mli: Firrtl
