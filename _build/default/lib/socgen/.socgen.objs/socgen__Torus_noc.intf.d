lib/socgen/torus_noc.mli: Firrtl
