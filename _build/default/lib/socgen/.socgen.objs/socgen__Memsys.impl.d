lib/socgen/memsys.ml: Ast Builder Decoupled Dsl Firrtl Fun Kite_core List Printf
