lib/socgen/dram.ml: Ast Builder Cache Decoupled Dsl Firrtl Kite_core List Soc
