lib/socgen/decoupled.mli: Ast Builder Firrtl
