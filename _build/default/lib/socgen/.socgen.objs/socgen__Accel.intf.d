lib/socgen/accel.mli: Firrtl
