(* Kite: a minimal 16-bit RISC ISA used by the in-order core that plays
   the role of the Rocket tile in the validation experiments.

   Encoding (16-bit instructions, 8 registers, word-addressed memory):

     [15:13] opcode   [12:10] rd   [9:7] rs1   [6:0] imm7 / [6:4] rs2 + [3:0] funct

     0 ALU   rd <- rs1 (funct) rs2
     1 ADDI  rd <- rs1 + sext(imm7)
     2 LW    rd <- mem[rs1 + sext(imm7)]
     3 SW    mem[rs1 + sext(imm7)] <- rd
     4 BEQ   if rd = rs1 then pc <- pc + 1 + sext(imm7)
     5 BNE   likewise on inequality
     6 JAL   rd <- pc + 1; pc <- pc + 1 + sext(imm7)
     7 HALT  stop the core                                         *)

type reg = int (* 0..7 *)

type funct =
  | F_add
  | F_sub
  | F_and
  | F_or
  | F_xor
  | F_sll
  | F_srl
  | F_slt
  | F_mul

type instr =
  | Alu of funct * reg * reg * reg  (* funct, rd, rs1, rs2 *)
  | Addi of reg * reg * int
  | Lw of reg * reg * int
  | Sw of reg * reg * int  (* Sw (rsrc, rbase, imm) stores rsrc *)
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Jal of reg * int
  | Halt

let funct_code = function
  | F_add -> 0
  | F_sub -> 1
  | F_and -> 2
  | F_or -> 3
  | F_xor -> 4
  | F_sll -> 5
  | F_srl -> 6
  | F_slt -> 7
  | F_mul -> 8

let check_reg r = if r < 0 || r > 7 then invalid_arg "kite: register out of range" else r

let imm7 v =
  if v < -64 || v > 63 then invalid_arg (Printf.sprintf "kite: imm7 %d out of range" v)
  else v land 0x7f

let encode instr =
  let enc op rd rs1 low7 =
    (op lsl 13) lor (check_reg rd lsl 10) lor (check_reg rs1 lsl 7) lor (low7 land 0x7f)
  in
  match instr with
  | Alu (f, rd, rs1, rs2) -> enc 0 rd rs1 ((check_reg rs2 lsl 4) lor funct_code f)
  | Addi (rd, rs1, i) -> enc 1 rd rs1 (imm7 i)
  | Lw (rd, rs1, i) -> enc 2 rd rs1 (imm7 i)
  | Sw (rsrc, rbase, i) -> enc 3 rsrc rbase (imm7 i)
  | Beq (a, b, i) -> enc 4 a b (imm7 i)
  | Bne (a, b, i) -> enc 5 a b (imm7 i)
  | Jal (rd, i) -> enc 6 rd 0 (imm7 i)
  | Halt -> enc 7 0 0 0

let assemble instrs = List.map encode instrs

(* ------------------------------------------------------------------ *)
(* Reference interpreter (differential testing of the core RTL)        *)
(* ------------------------------------------------------------------ *)

type machine = {
  mutable pc : int;
  regs : int array;  (* 8 x 16-bit *)
  mem : int array;  (* word-addressed *)
  mutable halted : bool;
  mutable retired : int;
}

let make_machine ~mem_words = { pc = 0; regs = Array.make 8 0; mem = Array.make mem_words 0; halted = false; retired = 0 }

let load_words m words = List.iteri (fun i w -> m.mem.(i) <- w) words

let sext7 v = if v land 0x40 <> 0 then v lor lnot 0x7f else v
let u16 v = v land 0xffff

let alu_eval f a b =
  match f with
  | F_add -> a + b
  | F_sub -> a - b
  | F_and -> a land b
  | F_or -> a lor b
  | F_xor -> a lxor b
  | F_sll -> if b land 0xf > 15 then 0 else a lsl (b land 0xf)
  | F_srl -> a lsr (b land 0xf)
  | F_slt -> if u16 a < u16 b then 1 else 0
  | F_mul -> a * b

let decode_funct code =
  match code with
  | 0 -> F_add
  | 1 -> F_sub
  | 2 -> F_and
  | 3 -> F_or
  | 4 -> F_xor
  | 5 -> F_sll
  | 6 -> F_srl
  | 7 -> F_slt
  | 8 -> F_mul
  | _ -> F_add (* undefined functs behave as add *)

(** Executes one instruction with [fetch] supplying the instruction
    word for a PC — the Harvard variant, matching cores with a separate
    instruction memory.  No-op once halted. *)
let step_fetch m ~fetch =
  if not m.halted then begin
    let ir = fetch m.pc land 0xffff in
    let op = (ir lsr 13) land 7 in
    let rd = (ir lsr 10) land 7 in
    let rs1 = (ir lsr 7) land 7 in
    let rs2 = (ir lsr 4) land 7 in
    let funct = ir land 0xf in
    let imm = sext7 (ir land 0x7f) in
    let wrap a = a land (Array.length m.mem - 1) in
    let next = m.pc + 1 in
    (match op with
    | 0 -> m.regs.(rd) <- u16 (alu_eval (decode_funct funct) m.regs.(rs1) m.regs.(rs2));
      m.pc <- next
    | 1 ->
      m.regs.(rd) <- u16 (m.regs.(rs1) + imm);
      m.pc <- next
    | 2 ->
      m.regs.(rd) <- u16 m.mem.(wrap (m.regs.(rs1) + imm));
      m.pc <- next
    | 3 ->
      m.mem.(wrap (m.regs.(rs1) + imm)) <- u16 m.regs.(rd);
      m.pc <- next
    | 4 ->
      m.pc <- (if m.regs.(rd) = m.regs.(rs1) then next + imm else next)
    | 5 ->
      m.pc <- (if m.regs.(rd) <> m.regs.(rs1) then next + imm else next)
    | 6 ->
      m.regs.(rd) <- u16 next;
      m.pc <- next + imm
    | 7 -> m.halted <- true
    | _ -> assert false);
    m.pc <- u16 m.pc;
    m.retired <- m.retired + 1
  end

(** Executes one instruction, fetching from the unified [mem] (the
    default von Neumann arrangement); no-op once halted. *)
let step m = step_fetch m ~fetch:(fun pc -> m.mem.(pc land (Array.length m.mem - 1)))

let run m ~max_steps =
  let steps = ref 0 in
  while (not m.halted) && !steps < max_steps do
    step m;
    incr steps
  done;
  if not m.halted then failwith "kite reference machine: did not halt"

(* ------------------------------------------------------------------ *)
(* Canned programs                                                     *)
(* ------------------------------------------------------------------ *)

(** Sums [n] memory words starting at [base] into memory[dst], then
    halts.  Assumes the data is preloaded. *)
let sum_program ~base ~n ~dst =
  [
    Addi (1, 0, 0) (* r1 = 0 accumulator; assumes r0 = 0 at reset *);
    Addi (2, 0, base) (* r2 = pointer *);
    Addi (3, 0, n) (* r3 = remaining *);
    (* loop: *)
    Lw (4, 2, 0);
    Alu (F_add, 1, 1, 4);
    Addi (2, 2, 1);
    Addi (3, 3, -1);
    Bne (3, 0, -5);
    Sw (1, 0, dst);
    Halt;
  ]

(** Fibonacci: computes fib(n) (mod 2^16) into memory[dst]. *)
let fib_program ~n ~dst =
  [
    Addi (1, 0, 0);
    Addi (2, 0, 1);
    Addi (3, 0, n);
    Beq (3, 0, 5);
    (* loop: r4 = r1 + r2; r1 = r2; r2 = r4 *)
    Alu (F_add, 4, 1, 2);
    Addi (1, 2, 0);
    Addi (2, 4, 0);
    Addi (3, 3, -1);
    Bne (3, 0, -5);
    Sw (1, 0, dst);
    Halt;
  ]

(** Sums [n] words at [base] over [reps] passes: after the first pass
    both code and data live in the tile's L1, so boundary crossings
    amortize — the workload used for the Table II "boot-and-halt"
    analogue. *)
let sum_repeat_program ~base ~n ~reps ~dst =
  [
    Addi (5, 0, reps);
    Addi (1, 0, 0);
    (* outer: *)
    Addi (2, 0, base);
    Addi (3, 0, n);
    (* loop: *)
    Lw (4, 2, 0);
    Alu (F_add, 1, 1, 4);
    Addi (2, 2, 1);
    Addi (3, 3, -1);
    Bne (3, 0, -5);
    Addi (5, 5, -1);
    Bne (5, 0, -9);
    Sw (1, 0, dst);
    Halt;
  ]

(** Memory-heavy kernel: copies then accumulates a block, exercising
    load/store traffic (latency-sensitive). *)
let memcopy_program ~src ~dst ~n =
  [
    Addi (1, 0, src);
    Addi (2, 0, dst);
    Addi (3, 0, n);
    Lw (4, 1, 0);
    Sw (4, 2, 0);
    Addi (1, 1, 1);
    Addi (2, 2, 1);
    Addi (3, 3, -1);
    Bne (3, 0, -6);
    Halt;
  ]


(* ------------------------------------------------------------------ *)
(* Disassembler                                                        *)
(* ------------------------------------------------------------------ *)

let funct_name = function
  | F_add -> "add"
  | F_sub -> "sub"
  | F_and -> "and"
  | F_or -> "or"
  | F_xor -> "xor"
  | F_sll -> "sll"
  | F_srl -> "srl"
  | F_slt -> "slt"
  | F_mul -> "mul"

(** Decodes one instruction word (total: every 16-bit value decodes). *)
let decode word =
  let op = (word lsr 13) land 7 in
  let rd = (word lsr 10) land 7 in
  let rs1 = (word lsr 7) land 7 in
  let rs2 = (word lsr 4) land 7 in
  let funct = word land 0xf in
  let imm = sext7 (word land 0x7f) in
  match op with
  | 0 -> Alu (decode_funct funct, rd, rs1, rs2)
  | 1 -> Addi (rd, rs1, imm)
  | 2 -> Lw (rd, rs1, imm)
  | 3 -> Sw (rd, rs1, imm)
  | 4 -> Beq (rd, rs1, imm)
  | 5 -> Bne (rd, rs1, imm)
  | 6 -> Jal (rd, imm)
  | _ -> Halt

let to_string instr =
  match instr with
  | Alu (f, rd, rs1, rs2) -> Printf.sprintf "%-5s r%d, r%d, r%d" (funct_name f) rd rs1 rs2
  | Addi (rd, rs1, i) -> Printf.sprintf "addi  r%d, r%d, %d" rd rs1 i
  | Lw (rd, rs1, i) -> Printf.sprintf "lw    r%d, %d(r%d)" rd i rs1
  | Sw (rsrc, rbase, i) -> Printf.sprintf "sw    r%d, %d(r%d)" rsrc i rbase
  | Beq (a, b, i) -> Printf.sprintf "beq   r%d, r%d, %+d" a b i
  | Bne (a, b, i) -> Printf.sprintf "bne   r%d, r%d, %+d" a b i
  | Jal (rd, i) -> Printf.sprintf "jal   r%d, %+d" rd i
  | Halt -> "halt"

(** Disassembles a memory image range. *)
let disassemble ?(base = 0) words =
  List.mapi (fun i w -> Printf.sprintf "%4d: %04x  %s" (base + i) w (to_string (decode w))) words
