(* RTL for the Kite in-order core: a multi-cycle state machine with a
   single decoupled memory port (shared fetch/data), standing in for the
   Rocket tile of the validation experiments.  All interfaces are
   ready-valid and annotated, so the core tile can be partitioned in
   either exact- or fast-mode. *)

open Firrtl

(* FSM states *)
let s_fetch_req = 0
let s_fetch_wait = 1
let s_exec = 2
let s_mem_req = 3
let s_mem_wait = 4
let s_halted = 5

let req_fields = [ ("addr", 16); ("wdata", 16); ("wen", 1) ]
let resp_fields = [ ("data", 16) ]

(** Builds the core module named [name]. *)
let module_def ?(name = "kite_core") () =
  let b = Builder.create name in
  let req = Decoupled.source b "req" req_fields in
  let resp = Decoupled.sink b "resp" resp_fields in
  Builder.output b "halted" 1;
  Builder.output b "retired" 16;
  let lit16 v = Dsl.lit ~width:16 v in
  let st v = Dsl.lit ~width:3 v in
  let pc = Builder.reg b "pc" 16 in
  let state = Builder.reg b ~init:s_fetch_req "state" 3 in
  let ir = Builder.reg b "ir" 16 in
  let retired = Builder.reg b "retired_count" 16 in
  let rf = Builder.mem b "rf" ~width:16 ~depth:8 in
  let open Dsl in
  (* Decode *)
  let opc = Builder.node b ~width:3 (bits ir ~hi:15 ~lo:13) in
  let rd = Builder.node b ~width:3 (bits ir ~hi:12 ~lo:10) in
  let rs1 = Builder.node b ~width:3 (bits ir ~hi:9 ~lo:7) in
  let rs2 = Builder.node b ~width:3 (bits ir ~hi:6 ~lo:4) in
  let funct = Builder.node b ~width:4 (bits ir ~hi:3 ~lo:0) in
  let imm_lo = bits ir ~hi:6 ~lo:0 in
  let imm = Builder.node b ~width:16 (mux (bit ir 6) (imm_lo |: lit16 0xff80) imm_lo) in
  let is_alu = Builder.node b ~width:1 (opc ==: st 0) in
  let is_addi = Builder.node b ~width:1 (opc ==: st 1) in
  let is_lw = Builder.node b ~width:1 (opc ==: st 2) in
  let is_sw = Builder.node b ~width:1 (opc ==: st 3) in
  let is_beq = Builder.node b ~width:1 (opc ==: st 4) in
  let is_bne = Builder.node b ~width:1 (opc ==: st 5) in
  let is_jal = Builder.node b ~width:1 (opc ==: st 6) in
  let is_halt = Builder.node b ~width:1 (opc ==: st 7) in
  let is_mem = Builder.node b ~width:1 (is_lw |: is_sw) in
  (* Register reads *)
  let rv_rd = Builder.node b ~width:16 (read rf rd) in
  let rv_rs1 = Builder.node b ~width:16 (read rf rs1) in
  let rv_rs2 = Builder.node b ~width:16 (read rf rs2) in
  (* ALU *)
  let shamt = bits rv_rs2 ~hi:3 ~lo:0 in
  let alu =
    Builder.node b ~width:16
      (select
         ~default:(rv_rs1 +: rv_rs2)
         [
           (funct ==: lit ~width:4 1, rv_rs1 -: rv_rs2);
           (funct ==: lit ~width:4 2, rv_rs1 &: rv_rs2);
           (funct ==: lit ~width:4 3, rv_rs1 |: rv_rs2);
           (funct ==: lit ~width:4 4, rv_rs1 ^: rv_rs2);
           (funct ==: lit ~width:4 5, rv_rs1 <<: shamt);
           (funct ==: lit ~width:4 6, rv_rs1 >>: shamt);
           (funct ==: lit ~width:4 7, mux (rv_rs1 <: rv_rs2) (lit16 1) (lit16 0));
           (funct ==: lit ~width:4 8, rv_rs1 *: rv_rs2);
         ])
  in
  let exec_result = Builder.node b ~width:16 (mux is_addi (rv_rs1 +: imm) alu) in
  let regs_eq = Builder.node b ~width:1 (rv_rd ==: rv_rs1) in
  let branch_taken =
    Builder.node b ~width:1 ((is_beq &: regs_eq) |: (is_bne &: not_ regs_eq))
  in
  let pc_plus1 = Builder.node b ~width:16 (pc +: lit16 1) in
  let pc_target = Builder.node b ~width:16 (pc_plus1 +: imm) in
  (* Handshakes *)
  let in_state v = state ==: st v in
  let req_fire = Builder.node b ~width:1 (ref_ req.Decoupled.valid &: ref_ req.Decoupled.ready) in
  let resp_valid = ref_ resp.Decoupled.valid in
  let resp_fire =
    Builder.node b ~width:1 (resp_valid &: ref_ resp.Decoupled.ready)
  in
  let resp_data = ref_ "resp_data" in
  (* Outputs *)
  Builder.connect b req.Decoupled.valid (in_state s_fetch_req |: in_state s_mem_req);
  Builder.connect b "req_addr" (mux (in_state s_fetch_req) pc (rv_rs1 +: imm));
  Builder.connect b "req_wdata" rv_rd;
  Builder.connect b "req_wen" (in_state s_mem_req &: is_sw);
  Builder.connect b resp.Decoupled.ready (in_state s_fetch_wait |: in_state s_mem_wait);
  Builder.connect b "halted" (in_state s_halted);
  Builder.connect b "retired" retired;
  (* State transitions *)
  let next_state =
    select ~default:state
      [
        (in_state s_fetch_req &: req_fire, st s_fetch_wait);
        (in_state s_fetch_wait &: resp_fire, st s_exec);
        ( in_state s_exec,
          mux is_halt (st s_halted) (mux is_mem (st s_mem_req) (st s_fetch_req)) );
        (in_state s_mem_req &: req_fire, st s_mem_wait);
        (in_state s_mem_wait &: resp_fire, st s_fetch_req);
      ]
  in
  Builder.reg_next b "state" next_state;
  Builder.reg_next b ~enable:(in_state s_fetch_wait &: resp_fire) "ir" resp_data;
  (* PC *)
  let pc_en =
    Builder.node b ~width:1
      ((in_state s_exec &: not_ is_halt &: not_ is_mem)
      |: (in_state s_mem_wait &: resp_fire))
  in
  let pc_next =
    mux (in_state s_exec)
      (mux (branch_taken |: is_jal) pc_target pc_plus1)
      pc_plus1
  in
  Builder.reg_next b ~enable:pc_en "pc" pc_next;
  (* Register file write *)
  let rf_wen =
    Builder.node b ~width:1
      ((in_state s_exec &: (is_alu |: is_addi |: is_jal))
      |: (in_state s_mem_wait &: resp_fire &: is_lw))
  in
  let rf_wdata =
    mux (in_state s_mem_wait) resp_data (mux is_jal pc_plus1 exec_result)
  in
  Builder.mem_write b rf ~addr:rd ~data:rf_wdata ~enable:rf_wen;
  (* Retired-instruction counter *)
  let retired_en = Builder.node b ~width:1 (pc_en |: (in_state s_exec &: is_halt)) in
  Builder.reg_next b ~enable:retired_en "retired_count" (retired +: lit16 1);
  (* Synthesized commit log: one record per retired instruction. *)
  Builder.printf b "commit" ~fire:retired_en [ (pc, 16); (ir, 16) ];
  Builder.finish b
