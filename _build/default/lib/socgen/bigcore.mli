(** The §V-B case study target: a wide OoO-style core whose backend does
    not fit on one FPGA next to its frontend.  Live RTL with an
    LFSR-driven frontend (I-cache tags, predictor hash chains) and deep
    execution-lane chains in the backend; all cross-boundary outputs are
    registered (exact-mode chain length 1). *)

type params = {
  slots : int;  (** bundle width (fetch/issue slots per cycle) *)
  data_bits : int;
  phys_regs : int;
  exec_ways : int;
  chain_depth : int;
  pred_ways : int;
  fetch_buffer : int;
  icache_sets : int;
}

(** Sized so the backend takes ~60-70% and the frontend ~19% of a U250
    under the resource model, with a >7000-bit boundary. *)
val gc40ish : params

(** Small variant for fast functional tests. *)
val tiny : params

(** Frontend->backend bits (instruction bundles). *)
val bundle_bits : params -> int

(** Backend->frontend bits (branch resolution bus). *)
val resolve_bits : params -> int

val frontend_module : ?name:string -> params -> unit -> Firrtl.Ast.module_def
val backend_module : ?name:string -> params -> unit -> Firrtl.Ast.module_def

(** The monolithic core; FireRipper extracts ["backend"]. *)
val circuit : ?p:params -> unit -> Firrtl.Ast.circuit
