(* Accelerator generators standing in for the Sha3Accel and Gemmini
   accelerator SoCs of the validation study (Table II).  Both are memory
   masters with a decoupled request/response port plus a start/done pair,
   so they can be pulled onto their own partition in either mode.

   - [sha3ish]: absorbs a block of memory words into a small sponge
     state with a few permutation rounds per word — short, memory-
     latency-bound, hence the config most sensitive to fast-mode's
     injected boundary latency (the paper measures 6.6% there).
   - [gemminiish]: a multiply-accumulate 1-D convolution engine — more
     compute per byte, hence much less sensitive (0.22%). *)

open Firrtl

(* sha3ish states *)
let h_idle = 0
let h_rd_req = 1
let h_rd_wait = 2
let h_perm = 3
let h_wr_req = 4
let h_wr_wait = 5
let h_done = 6

(** Sponge-style hash engine.  Reads [len] words at [base], mixes each
    with [rounds] permutation cycles, writes the 3-word digest at
    [out]. *)
let sha3ish ?(name = "sha3ish") ~base ~len ~out ~rounds () =
  let b = Builder.create name in
  let open Dsl in
  let lit16 v = lit ~width:16 v in
  let _start = Builder.input b "start" 1 in
  Builder.output b "done" 1;
  let req = Decoupled.source b "req" Kite_core.req_fields in
  let resp = Decoupled.sink b "resp" Kite_core.resp_fields in
  let state = Builder.reg b ~init:h_idle "state" 3 in
  let s0 = Builder.reg b ~init:0x1234 "s0" 16 in
  let s1 = Builder.reg b ~init:0x5678 "s1" 16 in
  let s2 = Builder.reg b ~init:0x9abc "s2" 16 in
  let idx = Builder.reg b "idx" 16 in
  let rnd = Builder.reg b "rnd" 8 in
  let wr = Builder.reg b "wr" 2 in
  let st v = lit ~width:3 v in
  let in_state v = state ==: st v in
  let req_fire = Builder.node b ~width:1 (ref_ req.Decoupled.valid &: ref_ req.Decoupled.ready) in
  let resp_fire =
    Builder.node b ~width:1 (ref_ resp.Decoupled.valid &: ref_ resp.Decoupled.ready)
  in
  let resp_data = ref_ "resp_data" in
  Builder.connect b req.Decoupled.valid (in_state h_rd_req |: in_state h_wr_req);
  Builder.connect b "req_addr"
    (mux (in_state h_rd_req) (lit16 base +: idx) (lit16 out +: wr));
  Builder.connect b "req_wen" (in_state h_wr_req);
  Builder.connect b "req_wdata"
    (select ~default:s0 [ (wr ==: lit ~width:2 1, s1); (wr ==: lit ~width:2 2, s2) ]);
  Builder.connect b resp.Decoupled.ready (in_state h_rd_wait |: in_state h_wr_wait);
  Builder.connect b "done" (in_state h_done);
  (* Permutation step: a cheap, invertible-looking mix. *)
  let rotl1 = Builder.node b ~width:16 ((s0 <<: lit ~width:5 1) |: (s0 >>: lit ~width:5 15)) in
  let last_word = Builder.node b ~width:1 (idx ==: lit16 (len - 1)) in
  let last_round = Builder.node b ~width:1 (rnd ==: lit ~width:8 (rounds - 1)) in
  let next_state =
    select ~default:state
      [
        (in_state h_idle &: ref_ "start", st h_rd_req);
        (in_state h_rd_req &: req_fire, st h_rd_wait);
        (in_state h_rd_wait &: resp_fire, st h_perm);
        ( in_state h_perm &: last_round,
          mux last_word (st h_wr_req) (st h_rd_req) );
        (in_state h_wr_req &: req_fire, st h_wr_wait);
        ( in_state h_wr_wait &: resp_fire,
          mux (wr ==: lit ~width:2 2) (st h_done) (st h_wr_req) );
      ]
  in
  Builder.reg_next b "state" next_state;
  (* Absorb on read response; permute in h_perm. *)
  let absorbing = Builder.node b ~width:1 (in_state h_rd_wait &: resp_fire) in
  let permuting = in_state h_perm in
  Builder.reg_next b "s0"
    (select ~default:s0 [ (absorbing, s0 ^: resp_data); (permuting, s1 ^: rotl1) ]);
  Builder.reg_next b ~enable:permuting "s1" (s2 +: s0);
  Builder.reg_next b ~enable:permuting "s2" (s0 ^: s1);
  Builder.reg_next b "rnd"
    (select ~default:rnd
       [ (absorbing, lit ~width:8 0); (permuting, rnd +: lit ~width:8 1) ]);
  Builder.reg_next b ~enable:(in_state h_perm &: last_round &: not_ last_word) "idx"
    (idx +: lit16 1);
  Builder.reg_next b ~enable:(in_state h_wr_wait &: resp_fire) "wr"
    (wr +: lit ~width:2 1);
  Builder.finish b

(* gemminiish states *)
let g_idle = 0
let g_load_a = 1
let g_load_w = 2
let g_compute = 3
let g_write = 4
let g_done = 5

(** Streaming 1-D convolution engine: DMAs a[a_base ..] and w[w_base ..]
    into local buffers with back-to-back (pipelined) reads, computes
    out[j] = sum_k a[j+k] * w[k] entirely locally, then streams the
    results back.  Because its memory traffic is throughput- rather than
    latency-bound, boundary latency injected by fast-mode barely shows
    in its cycle count — the behaviour the paper reports for Gemmini
    (0.22% error vs. Sha3's 6.6%). *)
let gemminiish ?(name = "gemminiish") ~a_base ~w_base ~out_base ~out_n ~klen () =
  let n_a = out_n + klen - 1 in
  let pow2 n =
    let rec go p = if p >= n then p else go (p * 2) in
    go 1
  in
  let b = Builder.create name in
  let open Dsl in
  let lit16 v = lit ~width:16 v in
  let _start = Builder.input b "start" 1 in
  Builder.output b "done" 1;
  let req = Decoupled.source b "req" Kite_core.req_fields in
  let resp = Decoupled.sink b "resp" Kite_core.resp_fields in
  let state = Builder.reg b ~init:g_idle "state" 3 in
  let issued = Builder.reg b "issued" 16 in
  let rcvd = Builder.reg b "rcvd" 16 in
  let j = Builder.reg b "j" 16 in
  let k = Builder.reg b "k" 16 in
  let acc = Builder.reg b "acc" 16 in
  let abuf = Builder.mem b "abuf" ~width:16 ~depth:(pow2 n_a) in
  let wbuf = Builder.mem b "wbuf" ~width:16 ~depth:(pow2 klen) in
  let rbuf = Builder.mem b "rbuf" ~width:16 ~depth:(pow2 out_n) in
  let st v = lit ~width:3 v in
  let in_state v = state ==: st v in
  let req_fire = Builder.node b ~width:1 (ref_ req.Decoupled.valid &: ref_ req.Decoupled.ready) in
  let resp_fire =
    Builder.node b ~width:1 (ref_ resp.Decoupled.valid &: ref_ resp.Decoupled.ready)
  in
  let resp_data = ref_ "resp_data" in
  let phase_n =
    select ~default:(lit16 out_n)
      [ (in_state g_load_a, lit16 n_a); (in_state g_load_w, lit16 klen) ]
  in
  let more_to_issue = Builder.node b ~width:1 (issued <: phase_n) in
  let phase_done = Builder.node b ~width:1 (rcvd +: resp_fire ==: phase_n) in
  Builder.connect b req.Decoupled.valid
    ((in_state g_load_a |: in_state g_load_w |: in_state g_write) &: more_to_issue);
  Builder.connect b "req_addr"
    (select
       ~default:(lit16 out_base +: issued)
       [
         (in_state g_load_a, lit16 a_base +: issued);
         (in_state g_load_w, lit16 w_base +: issued);
       ]);
  Builder.connect b "req_wen" (in_state g_write);
  Builder.connect b "req_wdata" (read rbuf issued);
  Builder.connect b resp.Decoupled.ready
    (in_state g_load_a |: in_state g_load_w |: in_state g_write);
  Builder.connect b "done" (in_state g_done);
  (* DMA receive into the local buffers. *)
  Builder.mem_write b abuf ~addr:rcvd ~data:resp_data
    ~enable:(in_state g_load_a &: resp_fire);
  Builder.mem_write b wbuf ~addr:rcvd ~data:resp_data
    ~enable:(in_state g_load_w &: resp_fire);
  (* Local MAC loop: one multiply-accumulate per cycle. *)
  let mac = Builder.node b ~width:16 (acc +: (read abuf (j +: k) *: read wbuf k)) in
  let last_k = Builder.node b ~width:1 (k ==: lit16 (klen - 1)) in
  let last_j = Builder.node b ~width:1 (j ==: lit16 (out_n - 1)) in
  Builder.mem_write b rbuf ~addr:j ~data:mac ~enable:(in_state g_compute &: last_k);
  Builder.reg_next b ~enable:(in_state g_compute) "acc" (mux last_k (lit16 0) mac);
  Builder.reg_next b ~enable:(in_state g_compute) "k"
    (mux last_k (lit16 0) (k +: lit16 1));
  Builder.reg_next b "j"
    (select ~default:j
       [
         (in_state g_compute &: last_k, j +: lit16 1);
         (in_state g_load_w, lit16 0);
       ]);
  (* Phase bookkeeping. *)
  let entering_new_phase =
    Builder.node b ~width:1
      ((in_state g_idle &: ref_ "start")
      |: ((in_state g_load_a |: in_state g_load_w) &: phase_done)
      |: (in_state g_compute &: last_k &: last_j))
  in
  Builder.reg_next b "issued"
    (mux entering_new_phase (lit16 0) (issued +: req_fire));
  Builder.reg_next b "rcvd" (mux entering_new_phase (lit16 0) (rcvd +: resp_fire));
  let next_state =
    select ~default:state
      [
        (in_state g_idle &: ref_ "start", st g_load_a);
        (in_state g_load_a &: phase_done, st g_load_w);
        (in_state g_load_w &: phase_done, st g_compute);
        (in_state g_compute &: last_k &: last_j, st g_write);
        (in_state g_write &: phase_done, st g_done);
      ]
  in
  Builder.reg_next b "state" next_state;
  Builder.finish b

(** Reference computation of [gemminiish]'s result, for tests. *)
let gemminiish_reference ~a ~w ~out_n ~klen =
  List.init out_n (fun j ->
      let acc = ref 0 in
      for k = 0 to klen - 1 do
        acc := !acc + (a.(j + k) * w.(k))
      done;
      !acc land 0xffff)
