(* The §V-B case study target: a wide out-of-order-style core whose
   backend (rename/physical register file/execution lanes) does not fit
   on one FPGA together with its frontend (fetch, branch predictor
   tables, fetch buffer) — the GC40 BOOM situation.  FireRipper splits
   it at the frontend/backend boundary in exact-mode; the partition
   interface carries whole fetch bundles plus a branch-resolution bus
   back (thousands of bits wide, >7000 at the gc40ish size).

   The design is synthetic but live RTL: the frontend generates fetch
   bundles from an LFSR-driven "instruction stream" gated by an
   I-cache-style tag lookup and per-slot branch-predictor hash chains;
   the backend executes every slot through deep chains of wide ALU ways
   against per-slot physical register files, and redirects the frontend
   like a mispredicted branch.  All cross-boundary outputs are
   registered, so the cut is exact-mode legal with chain length 1. *)

open Firrtl

type params = {
  slots : int;  (** bundle width (fetch/issue slots per cycle) *)
  data_bits : int;  (** datapath width per operand *)
  phys_regs : int;  (** physical register file entries per lane *)
  exec_ways : int;  (** parallel functional-unit ways per lane *)
  chain_depth : int;  (** ALU chain depth per way (area knob) *)
  pred_ways : int;  (** predictor hash chains per slot (frontend area) *)
  fetch_buffer : int;
  icache_sets : int;
}

(** Sized so the backend takes ~60% and the frontend ~18% of a U250's
    LUTs under the {!Platform.Resource} model, as in the paper. *)
let gc40ish =
  {
    slots = 32;
    data_bits = 48;
    phys_regs = 256;
    exec_ways = 54;
    chain_depth = 6;
    pred_ways = 68;
    fetch_buffer = 64;
    icache_sets = 1024;
  }

(** A small variant for fast functional tests. *)
let tiny =
  {
    slots = 4;
    data_bits = 48;
    phys_regs = 32;
    exec_ways = 4;
    chain_depth = 2;
    pred_ways = 2;
    fetch_buffer = 16;
    icache_sets = 64;
  }

(** Interface bits per direction of the frontend->backend cut. *)
let bundle_bits p = p.slots * ((3 * p.data_bits) + 32 + 16)

let resolve_bits p = p.slots * 33

let frontend_module ?(name = "bigcore_frontend") p () =
  let b = Builder.create name in
  let open Dsl in
  let redirect_valid = Builder.input b "redirect_valid" 1 in
  let redirect_target = Builder.input b "redirect_target" 32 in
  let credit = Builder.input b "bk_credit" 1 in
  Builder.output b "fb_valid" 1;
  let pc = Builder.reg b ~init:64 "pc" 32 in
  let lfsr = Builder.reg b ~init:0xace1 "lfsr" 16 in
  let credits = Builder.reg b ~init:2 "credits" 2 in
  (* I-cache-ish tag lookup: a miss stalls fetch for a few cycles. *)
  let tags = Builder.mem b "itags" ~width:20 ~depth:p.icache_sets in
  let stall = Builder.reg b "stall" 3 in
  let set = bits pc ~hi:14 ~lo:6 in
  let tag = bits pc ~hi:31 ~lo:12 in
  let hit = Builder.node b ~width:1 (read tags set ==: tag) in
  let fetching =
    Builder.node b ~width:1
      ((stall ==: lit ~width:3 0) &: (credits >: lit ~width:2 0) &: not_ redirect_valid)
  in
  let fire = Builder.node b ~width:1 (fetching &: hit) in
  Builder.connect b "fb_valid" fire;
  (* Branch predictor: per slot, a pile of hash chains over pc/lfsr
     feeding a pattern-history table, updated by the backend's
     resolution bus.  This is where the frontend's area lives. *)
  let pht = Builder.mem b "pht" ~width:2 ~depth:p.icache_sets in
  for s = 0 to p.slots - 1 do
    let sn field = Printf.sprintf "slot%d_%s" s field in
    Builder.output b (sn "op1") p.data_bits;
    Builder.output b (sn "op2") p.data_bits;
    Builder.output b (sn "op3") p.data_bits;
    Builder.output b (sn "pc") 32;
    Builder.output b (sn "meta") 16;
    let resolve = Builder.input b (sn "resolve") 33 in
    let seed =
      Builder.node b ~width:p.data_bits (cat (bits lfsr ~hi:15 ~lo:0) (pc +: lit ~width:32 s))
    in
    let hash =
      List.fold_left
        (fun acc w ->
          Builder.node b ~width:p.data_bits
            (match w mod 3 with
            | 0 -> acc +: (seed >>: lit ~width:3 (w mod 7))
            | 1 -> acc ^: (seed <<: lit ~width:3 (w mod 5))
            | _ -> (acc +: seed) ^: lit ~width:p.data_bits (w * 2654435 land 0xffff)))
        seed
        (List.init p.pred_ways Fun.id)
    in
    let pred = Builder.node b ~width:2 (read pht (bits hash ~hi:9 ~lo:0)) in
    Builder.connect b (sn "op1") (seed ^: hash);
    Builder.connect b (sn "op2") (hash +: lit ~width:p.data_bits (0x5a5a + s));
    Builder.connect b (sn "op3") (hash ^: (seed <<: lit ~width:3 3));
    Builder.connect b (sn "pc") (pc +: lit ~width:32 s);
    Builder.connect b (sn "meta") (cat pred (bits (lfsr ^: lit ~width:16 (s * 37)) ~hi:13 ~lo:0));
    (* PHT update from the backend's resolution. *)
    Builder.mem_write b pht
      ~addr:(bits resolve ~hi:9 ~lo:0)
      ~data:(bits resolve ~hi:11 ~lo:10)
      ~enable:(bit resolve 32)
  done;
  (* Fetch buffer occupancy stand-in (BRAM). *)
  let fbuf = Builder.mem b "fbuf" ~width:p.data_bits ~depth:p.fetch_buffer in
  Builder.mem_write b fbuf
    ~addr:(bits pc ~hi:5 ~lo:0)
    ~data:(cat (bits lfsr ~hi:15 ~lo:0) (bits pc ~hi:31 ~lo:0))
    ~enable:fire;
  Builder.reg_next b "pc"
    (mux redirect_valid redirect_target (mux fire (pc +: lit ~width:32 p.slots) pc));
  Builder.reg_next b "lfsr"
    (cat (bits lfsr ~hi:14 ~lo:0) (bit lfsr 15 ^: bit lfsr 13 ^: bit lfsr 12 ^: bit lfsr 10));
  Builder.mem_write b tags ~addr:set ~data:tag ~enable:(fetching &: not_ hit);
  Builder.reg_next b "stall"
    (mux (fetching &: not_ hit) (lit ~width:3 5)
       (mux (stall >: lit ~width:3 0) (stall -: lit ~width:3 1) stall));
  Builder.reg_next b "credits" (credits -: fire +: credit);
  Builder.finish b

let backend_module ?(name = "bigcore_backend") p () =
  let b = Builder.create name in
  let open Dsl in
  let fb_valid = Builder.input b "fb_valid" 1 in
  Builder.output b "bk_credit" 1;
  Builder.output b "redirect_valid" 1;
  Builder.output b "redirect_target" 32;
  Builder.output b "commits" 32;
  Builder.output b "checksum" p.data_bits;
  let commits = Builder.reg b "commits_r" 32 in
  let checksum = Builder.reg b "checksum_r" p.data_bits in
  let redirect_r = Builder.reg b "redirect_r" 1 in
  let redirect_target_r = Builder.reg b "redirect_target_r" 32 in
  let credit_r = Builder.reg b "credit_r" 1 in
  Builder.connect b "redirect_valid" redirect_r;
  Builder.connect b "redirect_target" redirect_target_r;
  Builder.connect b "bk_credit" credit_r;
  Builder.connect b "commits" commits;
  Builder.connect b "checksum" checksum;
  (* Execution lanes: each slot runs [exec_ways] deep chained ways
     against its physical register file; results fold into the
     checksum and the per-slot resolution bus. *)
  let lane_results = ref [] in
  for s = 0 to p.slots - 1 do
    let sn field = Printf.sprintf "slot%d_%s" s field in
    let op1 = Builder.input b (sn "op1") p.data_bits in
    let op2 = Builder.input b (sn "op2") p.data_bits in
    let op3 = Builder.input b (sn "op3") p.data_bits in
    let pc = Builder.input b (sn "pc") 32 in
    let meta = Builder.input b (sn "meta") 16 in
    let prf = Builder.mem b (Printf.sprintf "prf%d" s) ~width:p.data_bits ~depth:p.phys_regs in
    let rd_idx = Builder.node b ~width:8 (bits meta ~hi:7 ~lo:0) in
    let reg_val = Builder.node b ~width:p.data_bits (read prf rd_idx) in
    let ways =
      List.init p.exec_ways (fun w ->
          let seed =
            Builder.node b ~width:p.data_bits (op1 +: lit ~width:p.data_bits (w * 1337 land 0xffff))
          in
          List.fold_left
            (fun acc d ->
              Builder.node b ~width:p.data_bits
                (match (w + d) mod 3 with
                | 0 -> acc +: reg_val
                | 1 -> acc ^: (op2 >>: lit ~width:3 ((w + d) mod 8))
                | _ -> (acc +: op3) ^: reg_val))
            seed
            (List.init p.chain_depth Fun.id))
    in
    let picked =
      Builder.node b ~width:p.data_bits
        (select
           ~default:(List.nth ways 0)
           (List.mapi
              (fun w e -> (bits meta ~hi:10 ~lo:8 ==: lit ~width:3 (w mod 8), e))
              ways))
    in
    let result = Builder.node b ~width:p.data_bits (picked ^: cat (lit ~width:16 0) pc) in
    Builder.mem_write b prf ~addr:rd_idx ~data:result ~enable:fb_valid;
    (* Registered branch-resolution bus entry back to the frontend. *)
    let resolve = Builder.reg b (Printf.sprintf "resolve%d_r" s) 33 in
    Builder.reg_next b (Printf.sprintf "resolve%d_r" s)
      (cat fb_valid (cat (bits result ~hi:11 ~lo:10) (bits result ~hi:29 ~lo:0))
      |> fun e -> bits e ~hi:32 ~lo:0);
    Builder.output b (sn "resolve") 33;
    Builder.connect b (sn "resolve") resolve;
    lane_results := result :: !lane_results
  done;
  let folded =
    List.fold_left (fun acc r -> Dsl.(acc ^: r)) (lit ~width:p.data_bits 0) !lane_results
  in
  Builder.reg_next b ~enable:fb_valid "checksum_r" Dsl.(checksum +: folded);
  Builder.reg_next b ~enable:fb_valid "commits_r" Dsl.(commits +: lit ~width:32 p.slots);
  Builder.reg_next b "redirect_r"
    Dsl.(fb_valid &: (bits folded ~hi:6 ~lo:0 ==: lit ~width:7 0x2a));
  Builder.reg_next b ~enable:fb_valid "redirect_target_r" Dsl.(bits folded ~hi:31 ~lo:0);
  Builder.reg_next b "credit_r" fb_valid;
  Builder.finish b

(** The monolithic core: frontend + backend wired together; FireRipper
    extracts ["backend"] onto the second FPGA. *)
let circuit ?(p = gc40ish) () =
  let fe = frontend_module p () in
  let be = backend_module p () in
  let b = Builder.create "bigcore" in
  let fi = Builder.inst b "frontend" fe.Ast.name in
  let bi = Builder.inst b "backend" be.Ast.name in
  Builder.connect_in b bi "fb_valid" (Builder.of_inst fi "fb_valid");
  for s = 0 to p.slots - 1 do
    List.iter
      (fun f ->
        let port = Printf.sprintf "slot%d_%s" s f in
        Builder.connect_in b bi port (Builder.of_inst fi port))
      [ "op1"; "op2"; "op3"; "pc"; "meta" ];
    let port = Printf.sprintf "slot%d_resolve" s in
    Builder.connect_in b fi port (Builder.of_inst bi port)
  done;
  Builder.connect_in b fi "redirect_valid" (Builder.of_inst bi "redirect_valid");
  Builder.connect_in b fi "redirect_target" (Builder.of_inst bi "redirect_target");
  Builder.connect_in b fi "bk_credit" (Builder.of_inst bi "bk_credit");
  Builder.output b "commits" 32;
  Builder.connect b "commits" (Builder.of_inst bi "commits");
  Builder.output b "checksum" p.data_bits;
  Builder.connect b "checksum" (Builder.of_inst bi "checksum");
  { Ast.cname = "bigcore"; main = "bigcore"; modules = [ fe; be; Builder.finish b ] }
