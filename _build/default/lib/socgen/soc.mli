(** SoC compositions for the validation and performance studies. *)

open Firrtl

(** Wires master.req -> slave.req and slave.resp -> master.resp. *)
val connect_mem_port : Builder.t -> master:string -> slave:string -> unit

(** A tile wrapping the Kite core (plus an L1 unless [cache_sets] is
    [None]), re-annotated so the tile is a fast-mode partition target. *)
val tile_module :
  ?name:string -> ?cache_sets:int option -> core_module:string -> unit -> Ast.module_def

(** One Kite tile and one scratchpad (the "Rocket tile" target). *)
val single_core_soc :
  ?mem_latency:int -> ?mem_depth:int -> ?cache_sets:int option -> unit -> Ast.circuit

type accel_kind =
  | Sha3
  | Gemmini

(** Accelerator + memory + a one-shot start pulse; raises [done]. *)
val accel_soc : ?mem_latency:int -> ?mem_depth:int -> accel_kind -> Ast.circuit

(** N Kite tiles sharing one scratchpad through the crossbar. *)
val multi_core_soc :
  ?mem_latency:int -> ?mem_depth:int -> ?cache_sets:int option -> cores:int -> unit -> Ast.circuit

(** Loads a Kite program (and optional (addr, word) data) into the
    simulation's memory array [mem]. *)
val load_program :
  Rtlsim.Sim.t -> mem:string -> ?data:(int * int) list -> Kite_isa.instr list -> unit
