(* FASED-style DRAM timing model.

   FireSim attaches its targets to FASED, an FPGA-hosted DDR timing
   model whose latency depends on bank state: a request to the row
   already open in its bank pays only the CAS latency, a request to a
   different row pays precharge + activate + CAS, and periodic refresh
   steals the whole device for t_RFC cycles.  This generator produces
   the same first-order model as synthesizable RTL behind the standard
   decoupled request/response port, so it drops in anywhere a
   [Memsys.scratchpad] does — and, being ordinary RTL, it partitions
   like everything else.

   Address map: {row, bank, column} — low bits select the column so
   streaming accesses stay in one row (row-buffer hits), and the bank
   bits sit between column and row so consecutive rows fall in
   different banks.

   Per-bank open-row state lives in a small table (a memory of
   [banks] entries) plus a valid bitmask; refresh closes every row.
   Hit/miss/refresh counters are exported as outputs for the
   AutoCounter bridge. *)

open Firrtl

(* DRAM controller FSM states. *)
let d_idle = 0
let d_busy = 1
let d_resp = 2
let d_refresh = 3

type timing = {
  t_cas : int;  (** column access, row already open *)
  t_rcd : int;  (** activate: row closed -> open *)
  t_rp : int;  (** precharge: close the previously open row *)
  t_refi : int;  (** cycles between refreshes (0 disables refresh) *)
  t_rfc : int;  (** cycles a refresh occupies the device *)
}

(* Roughly DDR3-1600 ratios at a 16-bit toy scale. *)
let default_timing = { t_cas = 4; t_rcd = 4; t_rp = 4; t_refi = 512; t_rfc = 16 }

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

(** The DRAM module: [depth] words total, split into [banks] banks with
    [cols] words per row.  All three must be powers of two. *)
let dram ?(name = "dram") ?(timing = default_timing) ?(banks = 4) ?(cols = 16) ~depth () =
  List.iter
    (fun (what, v) ->
      if v <= 0 || v land (v - 1) <> 0 then
        Ast.ir_error "dram: %s must be a positive power of 2 (got %d)" what v)
    [ ("depth", depth); ("banks", banks); ("cols", cols) ];
  if banks * cols > depth then Ast.ir_error "dram: banks * cols exceeds depth";
  if timing.t_cas < 1 || timing.t_rcd < 0 || timing.t_rp < 0 then
    Ast.ir_error "dram: negative timing";
  let col_bits = log2 cols in
  let bank_bits = log2 banks in
  let row_bits = log2 depth - col_bits - bank_bits in
  if row_bits < 1 then Ast.ir_error "dram: no row bits left";
  let b = Builder.create name in
  let req = Decoupled.sink b "req" Kite_core.req_fields in
  let resp = Decoupled.source b "resp" Kite_core.resp_fields in
  let open Dsl in
  let mem = Builder.mem b "mem" ~width:16 ~depth in
  let rowtable = Builder.mem b "rowtable" ~width:row_bits ~depth:banks in
  let state = Builder.reg b ~init:d_idle "state" 2 in
  let count = Builder.reg b "count" 8 in
  let addr_r = Builder.reg b "addr_r" 16 in
  let valid_mask = Builder.reg b "valid_mask" banks in
  let refresh_count =
    Builder.reg b ~init:(max 0 (timing.t_refi - 1)) "refresh_count" 16
  in
  let hits = Builder.reg b "hits_r" 16 in
  let misses = Builder.reg b "misses_r" 16 in
  let refreshes = Builder.reg b "refreshes_r" 16 in
  let st v = lit ~width:2 v in
  let in_state v = state ==: st v in
  let req_fire = Builder.node b ~width:1 (ref_ req.Decoupled.valid &: ref_ req.Decoupled.ready) in
  let resp_fire =
    Builder.node b ~width:1 (ref_ resp.Decoupled.valid &: ref_ resp.Decoupled.ready)
  in
  (* Address decomposition. *)
  let addr = ref_ "req_addr" in
  let bank =
    Builder.node b ~width:bank_bits
      (bits addr ~hi:(col_bits + bank_bits - 1) ~lo:col_bits)
  in
  let row =
    Builder.node b ~width:row_bits
      (bits addr ~hi:(col_bits + bank_bits + row_bits - 1) ~lo:(col_bits + bank_bits))
  in
  (* Bank state lookup: open row and its valid bit. *)
  let bank_open = Builder.node b ~width:1 (bit (valid_mask >>: bank) 0) in
  let row_hit = Builder.node b ~width:1 (bank_open &: (read rowtable bank ==: row)) in
  (* Request latency by bank state. *)
  let lat hit_path =
    let t = timing in
    match hit_path with
    | `Hit -> t.t_cas
    | `Conflict -> t.t_rp + t.t_rcd + t.t_cas
    | `Closed -> t.t_rcd + t.t_cas
  in
  let latency =
    Builder.node b ~width:8
      (select
         ~default:(lit ~width:8 (lat `Closed))
         [
           (row_hit, lit ~width:8 (lat `Hit));
           (bank_open, lit ~width:8 (lat `Conflict));
         ])
  in
  let refresh_due =
    if timing.t_refi = 0 then zero
    else Builder.node b ~width:1 (refresh_count ==: lit ~width:16 0)
  in
  (* Refresh preempts new requests; in-flight ones complete first. *)
  Builder.connect b req.Decoupled.ready (in_state d_idle &: not_ refresh_due);
  Builder.connect b resp.Decoupled.valid (in_state d_resp);
  Builder.connect b "resp_data" (read mem addr_r);
  Builder.mem_write b mem ~addr ~data:(ref_ "req_wdata") ~enable:(req_fire &: ref_ "req_wen");
  Builder.reg_next b ~enable:req_fire "addr_r" addr;
  (* Open the accessed row in its bank. *)
  Builder.mem_write b rowtable ~addr:bank ~data:row ~enable:req_fire;
  let refresh_start = Builder.node b ~width:1 (in_state d_idle &: refresh_due) in
  let refresh_done =
    Builder.node b ~width:1 (in_state d_refresh &: (count ==: lit ~width:8 0))
  in
  Builder.reg_next b "valid_mask"
    (select ~default:valid_mask
       [
         (refresh_start, lit ~width:banks 0);
         (req_fire, valid_mask |: (lit ~width:banks 1 <<: bank));
       ]);
  Builder.reg_next b "state"
    (select ~default:state
       [
         (refresh_start, st d_refresh);
         (refresh_done, st d_idle);
         (in_state d_idle &: req_fire, st d_busy);
         (in_state d_busy &: (count ==: lit ~width:8 0), st d_resp);
         (in_state d_resp &: resp_fire, st d_idle);
       ]);
  Builder.reg_next b "count"
    (select
       ~default:(count -: lit ~width:8 1)
       [
         (req_fire, latency -: lit ~width:8 1);
         (refresh_start, lit ~width:8 (max 0 (timing.t_rfc - 1)));
       ]);
  Builder.reg_next b "refresh_count"
    (select
       ~default:(mux refresh_due (lit ~width:16 0) (refresh_count -: lit ~width:16 1))
       [ (refresh_done, lit ~width:16 (max 0 (timing.t_refi - 1))) ]);
  (* Observability counters. *)
  Builder.reg_next b ~enable:(req_fire &: row_hit) "hits_r" (hits +: lit ~width:16 1);
  Builder.reg_next b ~enable:(req_fire &: not_ row_hit) "misses_r" (misses +: lit ~width:16 1);
  Builder.reg_next b ~enable:refresh_start "refreshes_r" (refreshes +: lit ~width:16 1);
  Builder.output b "hits" 16;
  Builder.connect b "hits" hits;
  Builder.output b "misses" 16;
  Builder.connect b "misses" misses;
  Builder.output b "refreshes" 16;
  Builder.connect b "refreshes" refreshes;
  Builder.finish b

(** One Kite tile backed by the DRAM timing model instead of a
    fixed-latency scratchpad (the FASED-attached SoC shape).  The
    program loads into ["mem$mem"]; bank-state counters surface as top
    outputs [hits]/[misses]/[refreshes]. *)
let dram_soc ?timing ?banks ?cols ?(mem_depth = 1024) ?(cache_sets = Some 64) () =
  let core = Kite_core.module_def () in
  let tile = Soc.tile_module ~cache_sets ~core_module:core.Ast.name () in
  let mem = dram ?timing ?banks ?cols ~name:"mem" ~depth:mem_depth () in
  let l1_modules =
    match cache_sets with
    | Some sets -> [ Cache.module_def ~name:"kite_tile_l1" ~sets () ]
    | None -> []
  in
  let b = Builder.create "dramsoc" in
  let t = Builder.inst b "tile" tile.Ast.name in
  let m = Builder.inst b "mem" mem.Ast.name in
  Soc.connect_mem_port b ~master:t ~slave:m;
  Builder.output b "halted" 1;
  Builder.connect b "halted" (Builder.of_inst t "halted");
  Builder.output b "retired" 16;
  Builder.connect b "retired" (Builder.of_inst t "retired");
  List.iter
    (fun o ->
      Builder.output b o 16;
      Builder.connect b o (Builder.of_inst m o))
    [ "hits"; "misses"; "refreshes" ];
  {
    Ast.cname = "dramsoc";
    main = "dramsoc";
    modules = l1_modules @ [ core; tile; mem; Builder.finish b ];
  }
