(* A direct-mapped, write-through L1 cache for the Kite tile.  With the
   cache inside the tile, most requests are served locally and only
   misses and stores cross the tile boundary — giving the partitioned
   tile the same "rare boundary crossing" character as the paper's
   Rocket tile (whose L1s travel with it), and hence a small fast-mode
   cycle error in the Table II analogue.

   Core-side bundle: sink [cpu_req] / source [cpu_resp].
   Memory-side bundle: source [req] / sink [resp] (same names as the
   core's, so the tile boundary is unchanged). *)

open Firrtl

let c_idle = 0
let c_local = 1 (* hit: respond to the core from the array *)
let c_fwd = 2 (* miss or store: forward outward *)
let c_wait = 3
let c_resp = 4 (* respond to the core after a refill *)

(** [sets] must be a power of two. *)
let module_def ?(name = "kite_l1") ~sets () =
  if sets land (sets - 1) <> 0 then Ast.ir_error "cache sets must be a power of 2";
  let idx_bits =
    let rec bits n = if n <= 1 then 0 else 1 + bits (n / 2) in
    bits sets
  in
  let b = Builder.create name in
  let open Dsl in
  let cpu_req = Decoupled.sink b "cpu_req" Kite_core.req_fields in
  let cpu_resp = Decoupled.source b "cpu_resp" Kite_core.resp_fields in
  let req = Decoupled.source b "req" Kite_core.req_fields in
  let resp = Decoupled.sink b "resp" Kite_core.resp_fields in
  let tags = Builder.mem b "tags" ~width:16 ~depth:sets in
  let datas = Builder.mem b "datas" ~width:16 ~depth:sets in
  let valids = Builder.mem b "valids" ~width:1 ~depth:sets in
  let state = Builder.reg b ~init:c_idle "state" 3 in
  let addr_r = Builder.reg b "addr_r" 16 in
  let wdata_r = Builder.reg b "wdata_r" 16 in
  let wen_r = Builder.reg b "wen_r" 1 in
  let st v = lit ~width:3 v in
  let in_state v = state ==: st v in
  let index_of a = if idx_bits = 0 then lit ~width:1 0 else bits a ~hi:(idx_bits - 1) ~lo:0 in
  let tag_of a = a >>: lit ~width:5 idx_bits in
  let idx = Builder.node b ~width:(max 1 idx_bits) (index_of addr_r) in
  let hit =
    Builder.node b ~width:1
      ((read valids idx ==: one) &: (read tags idx ==: tag_of addr_r))
  in
  let cpu_req_fire =
    Builder.node b ~width:1 (ref_ cpu_req.Decoupled.valid &: ref_ cpu_req.Decoupled.ready)
  in
  let req_fire = Builder.node b ~width:1 (ref_ req.Decoupled.valid &: ref_ req.Decoupled.ready) in
  let resp_fire =
    Builder.node b ~width:1 (ref_ resp.Decoupled.valid &: ref_ resp.Decoupled.ready)
  in
  let cpu_resp_fire =
    Builder.node b ~width:1 (ref_ cpu_resp.Decoupled.valid &: ref_ cpu_resp.Decoupled.ready)
  in
  (* Core side.  In c_local the response is only valid on a load hit;
     misses and stores fall through to the forwarding states. *)
  Builder.connect b cpu_req.Decoupled.ready (in_state c_idle);
  Builder.connect b cpu_resp.Decoupled.valid
    ((in_state c_local &: hit &: not_ wen_r) |: in_state c_resp);
  Builder.connect b "cpu_resp_data"
    (mux (in_state c_local) (read datas idx) (ref_ "resp_data"));
  (* Memory side: forward the latched request. *)
  Builder.connect b req.Decoupled.valid (in_state c_fwd);
  Builder.connect b "req_addr" addr_r;
  Builder.connect b "req_wdata" wdata_r;
  Builder.connect b "req_wen" wen_r;
  Builder.connect b resp.Decoupled.ready (in_state c_wait);
  (* Latch the core's request. *)
  Builder.reg_next b ~enable:cpu_req_fire "addr_r" (ref_ "cpu_req_addr");
  Builder.reg_next b ~enable:cpu_req_fire "wdata_r" (ref_ "cpu_req_wdata");
  Builder.reg_next b ~enable:cpu_req_fire "wen_r" (ref_ "cpu_req_wen");
  (* Hit check happens in the cycle after acceptance (addr_r valid). *)
  let next_state =
    select ~default:state
      [
        (in_state c_idle &: cpu_req_fire, st c_local);
        ( in_state c_local,
          (* Loads hit locally; stores and misses go outward. *)
          mux (hit &: not_ wen_r)
            (mux cpu_resp_fire (st c_idle) (st c_local))
            (st c_fwd) );
        (in_state c_fwd &: req_fire, st c_wait);
        (in_state c_wait &: resp_fire, st c_resp);
        (in_state c_resp &: cpu_resp_fire, st c_idle);
      ]
  in
  Builder.reg_next b "state" next_state;
  (* c_local doubles as the hit-responding state: cpu_resp_valid is
     asserted there, but it is only a *hit* response when hit && load.
     Mask validity accordingly. *)
  (* Refill / store-update the array on outer responses and store hits. *)
  let refill = Builder.node b ~width:1 (in_state c_wait &: resp_fire &: not_ wen_r) in
  let store_update = Builder.node b ~width:1 (in_state c_wait &: resp_fire &: wen_r &: hit) in
  let update = Builder.node b ~width:1 (refill |: store_update) in
  Builder.mem_write b tags ~addr:idx ~data:(tag_of addr_r) ~enable:update;
  Builder.mem_write b valids ~addr:idx ~data:one ~enable:update;
  Builder.mem_write b datas ~addr:idx
    ~data:(mux wen_r wdata_r (ref_ "resp_data"))
    ~enable:update;
  Builder.finish b
