(** 2-D torus NoC (the §V-C DDIO study's interconnect family):
    wraparound links in both dimensions, dimension-ordered routing that
    takes the shorter way around, credit-based routers with
    [Noc_router] annotations, register-driven outputs (exact-mode cuts
    anywhere, including across wraparound links). *)

val packet_width : payload_width:int -> int

(** One torus router at (x, y); all four direction ports always
    exist. *)
val router_module :
  name:string ->
  x:int ->
  y:int ->
  width:int ->
  height:int ->
  payload_width:int ->
  unit ->
  Firrtl.Ast.module_def

(** A [width] x [height] torus SoC (both >= 2): traffic tiles on every
    node except the last, which hosts the reflector subsystem. *)
val torus_soc :
  ?payload_width:int -> ?period:int -> width:int -> height:int -> unit -> Firrtl.Ast.circuit

(** Router indices of row [r] — a natural NoC-partition-mode group. *)
val row_group : width:int -> int -> int list
