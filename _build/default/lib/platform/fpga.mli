(** FPGA board models: resource budgets for FireRipper's fit checks and
    the bitstream frequency range of the performance sweeps. *)

type board = {
  board_name : string;
  luts : int;
  ffs : int;
  bram_bits : int;
  dsps : int;
  max_freq_mhz : int;
}

(** Xilinx Alveo U250 (the paper's on-premises board). *)
val u250 : board

(** AWS F1 VU9P behind the cloud shell (~50% fewer usable LUTs than the
    U250, as the paper reports). *)
val vu9p_f1 : board

type utilization = {
  lut_pct : float;
  ff_pct : float;
  bram_pct : float;
  dsp_pct : float;
}

val utilization : board -> Resource.estimate -> utilization

(** Fit check with a routability [threshold] (default 0.85 of LUT/FF
    capacity): beyond it, bitstream builds fail with congestion. *)
val fits : ?threshold:float -> board -> Resource.estimate -> bool

val pp_utilization : Format.formatter -> utilization -> unit
