(* Hybrid cloud/on-premises deployment advisor (§VIII-A).

   The paper weighs three factors when choosing between cloud and
   on-premises FPGAs: cost structure (pay-as-you-go vs upfront), usable
   FPGA capacity (local U250s offer ~50% more LUTs than cloud VU9Ps
   behind the F1 shell), and simulation performance (QSFP beats
   peer-to-peer PCIe).  It advocates a hybrid model: develop on-premises
   for low-latency iteration, then fan benchmark campaigns out to the
   cloud.  This module turns that discussion into numbers. *)

type deployment = {
  dep_name : string;
  dep_board : Fpga.board;
  dep_transport : Transport.kind;
  dep_hourly_usd : float;  (** amortized or rental cost per FPGA-hour *)
}

(* AWS F1: ~$1.65 per FPGA-hour (f1.2xlarge on-demand).  On-premises
   U250: ~$9,000 purchase amortized over 3 years plus hosting. *)
let cloud_f1 =
  { dep_name = "AWS F1 (p2p PCIe)"; dep_board = Fpga.vu9p_f1; dep_transport = Transport.Pcie_p2p; dep_hourly_usd = 1.65 }

let on_prem_u250 =
  {
    dep_name = "on-prem U250 (QSFP)";
    dep_board = Fpga.u250;
    dep_transport = Transport.Qsfp;
    dep_hourly_usd = 9_000. /. (3. *. 365. *. 24.) +. 0.15;
  }

type estimate = {
  e_deployment : deployment;
  e_rate_hz : float;
  e_wall_hours : float;
  e_cost_usd : float;
  e_fits : bool;
}

(** Prices one simulation campaign — [runs] simulations of
    [cycles_per_run] target cycles on an [n_fpgas]-partition plan whose
    widest boundary is [boundary_bits] — on the given deployment. *)
let estimate_campaign ~deployment ~n_fpgas ~boundary_bits ~cycles_per_run ~runs
    ~unit_estimates =
  let spec =
    Perf.ring_spec ~n:(max 2 n_fpgas) ~bits:boundary_bits
      ~freq_mhz:(float_of_int deployment.dep_board.Fpga.max_freq_mhz /. 4.)
      ~transport:deployment.dep_transport
  in
  let rate = Perf.rate spec in
  let total_cycles = float_of_int cycles_per_run *. float_of_int runs in
  let wall_hours = total_cycles /. rate /. 3600. in
  {
    e_deployment = deployment;
    e_rate_hz = rate;
    e_wall_hours = wall_hours;
    e_cost_usd = wall_hours *. float_of_int n_fpgas *. deployment.dep_hourly_usd;
    e_fits = List.for_all (fun est -> Fpga.fits deployment.dep_board est) unit_estimates;
  }

type advice = {
  a_cloud : estimate;
  a_on_prem : estimate;
  a_recommendation : string;
}

(** Compares both deployments for a campaign and phrases the paper's
    hybrid guidance. *)
let advise ~n_fpgas ~boundary_bits ~cycles_per_run ~runs ~unit_estimates =
  let cloud =
    estimate_campaign ~deployment:cloud_f1 ~n_fpgas ~boundary_bits ~cycles_per_run ~runs
      ~unit_estimates
  in
  let on_prem =
    estimate_campaign ~deployment:on_prem_u250 ~n_fpgas ~boundary_bits ~cycles_per_run
      ~runs ~unit_estimates
  in
  let a_recommendation =
    if not cloud.e_fits then
      "partitions exceed the cloud FPGA's usable capacity (shell overhead): use \
       on-premises U250s, or repartition onto more FPGAs"
    else if runs <= 10 then
      "short campaign: iterate on-premises for the lower-latency QSFP interconnect"
    else if cloud.e_cost_usd < on_prem.e_cost_usd then
      "long campaign, cloud is cheaper at this utilization: develop on-premises, then \
       fan the benchmark sweep out to F1 instances (the paper's hybrid model)"
    else
      "sustained utilization favors owning the FPGAs: keep the campaign on-premises"
  in
  { a_cloud = cloud; a_on_prem = on_prem; a_recommendation }

let pp_estimate ppf e =
  Fmt.pf ppf "%-22s %8.3f MHz  %10.1f h  $%10.2f  fits:%b" e.e_deployment.dep_name
    (e.e_rate_hz /. 1e6) e.e_wall_hours e.e_cost_usd e.e_fits
