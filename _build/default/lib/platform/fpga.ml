(* FPGA board models: the resource budgets against which FireRipper's
   quick feedback checks whether a partition fits, and the bitstream
   frequency range used by the performance sweeps. *)

type board = {
  board_name : string;
  luts : int;
  ffs : int;
  bram_bits : int;
  dsps : int;
  max_freq_mhz : int;
}

(** Xilinx Alveo U250 (on-premises; Section V uses six of these). *)
let u250 =
  {
    board_name = "Xilinx Alveo U250";
    luts = 1_728_000;
    ffs = 3_456_000;
    bram_bits = 430_000_000;
    dsps = 12_288;
    max_freq_mhz = 300;
  }

(** AWS F1's VU9P with the cloud shell: the paper reports U250 offering
    ~50% more usable LUTs than cloud VU9Ps due to the fixed shell IP. *)
let vu9p_f1 =
  {
    board_name = "AWS F1 VU9P (usable)";
    luts = 1_152_000;
    ffs = 2_364_000;
    bram_bits = 345_000_000;
    dsps = 6_840;
    max_freq_mhz = 250;
  }

type utilization = {
  lut_pct : float;
  ff_pct : float;
  bram_pct : float;
  dsp_pct : float;
}

let utilization board (e : Resource.estimate) =
  {
    lut_pct = 100. *. float_of_int e.Resource.luts /. float_of_int board.luts;
    ff_pct = 100. *. float_of_int e.Resource.ffs /. float_of_int board.ffs;
    bram_pct = 100. *. float_of_int e.Resource.bram_bits /. float_of_int board.bram_bits;
    dsp_pct = 100. *. float_of_int e.Resource.dsps /. float_of_int board.dsps;
  }

(** Routable utilization threshold: beyond ~85% LUTs, bitstream builds
    fail with congestion (the GC40 monolithic build failure of §V-B). *)
let fits ?(threshold = 0.85) board e =
  float_of_int e.Resource.luts <= threshold *. float_of_int board.luts
  && float_of_int e.Resource.ffs <= threshold *. float_of_int board.ffs
  && float_of_int e.Resource.bram_bits <= float_of_int board.bram_bits
  && float_of_int e.Resource.dsps <= float_of_int board.dsps

let pp_utilization ppf u =
  Fmt.pf ppf "LUT %.1f%%, FF %.1f%%, BRAM %.1f%%, DSP %.1f%%" u.lut_pct u.ff_pct
    u.bram_pct u.dsp_pct
