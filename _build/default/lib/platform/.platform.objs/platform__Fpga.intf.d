lib/platform/fpga.mli: Format Resource
