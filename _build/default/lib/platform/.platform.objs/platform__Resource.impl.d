lib/platform/resource.ml: Ast Fireripper Firrtl Flatten Fmt Lazy List Option
