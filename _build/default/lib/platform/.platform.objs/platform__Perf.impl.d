lib/platform/perf.ml: Array Des Fireripper Firrtl Hashtbl Lazy Libdn List Queue Transport
