lib/platform/advisor.ml: Fmt Fpga List Perf Transport
