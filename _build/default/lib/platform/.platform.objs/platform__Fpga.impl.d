lib/platform/fpga.ml: Fmt Resource
