lib/platform/resource.mli: Fireripper Firrtl Format
