lib/platform/perf.mli: Fireripper Transport
