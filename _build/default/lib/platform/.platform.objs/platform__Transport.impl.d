lib/platform/transport.ml:
