lib/platform/advisor.mli: Format Fpga Resource Transport
