lib/platform/transport.mli:
