(** Coarse FPGA resource estimation over the circuit IR — the basis for
    FireRipper's "will this partition fit?" quick feedback.  Monotone in
    design size; not a synthesis replacement. *)

type estimate = {
  luts : int;
  ffs : int;
  bram_bits : int;
  dsps : int;
}

val zero : estimate
val add : estimate -> estimate -> estimate
val scale_ffs : int -> estimate -> estimate

(** Estimate of a flat (instance-free) module. *)
val estimate_flat : Firrtl.Ast.module_def -> estimate

(** Estimate of a whole circuit (flattened from its main module). *)
val estimate_circuit : Firrtl.Ast.circuit -> estimate

(** Estimate of one plan unit.  [threads > 1] models FAME-5: the
    combinational logic of that many duplicates is shared while the
    sequential state is replicated. *)
val estimate_unit : ?threads:int -> Fireripper.Plan.unit_part -> estimate

val pp : Format.formatter -> estimate -> unit
