(* FPGA resource estimation over the circuit IR: the basis for
   FireRipper's "will this partition fit?" quick feedback (Section
   VIII-B describes this as the direction for further automation; we
   implement the RTL-level estimate directly).

   The model is deliberately coarse — LUT counts proportional to
   operator bit widths, FFs equal to register bits, memories mapped to
   BRAM above a distributed-RAM threshold — but it is monotone in design
   size, which is all the fit check and the §V-B area narrative need. *)

open Firrtl

type estimate = {
  luts : int;
  ffs : int;
  bram_bits : int;
  dsps : int;
}

let zero = { luts = 0; ffs = 0; bram_bits = 0; dsps = 0 }

let add a b =
  {
    luts = a.luts + b.luts;
    ffs = a.ffs + b.ffs;
    bram_bits = a.bram_bits + b.bram_bits;
    dsps = a.dsps + b.dsps;
  }

let scale_ffs n e = { e with ffs = e.ffs * n }

(* LUT cost of one expression node (its own operator, not subtrees). *)
let node_luts env e =
  let w = Ast.width_of env e in
  match e with
  | Ast.Lit _ | Ast.Ref _ | Ast.Bits _ | Ast.Cat _ -> 0
  | Ast.Mux _ -> w
  | Ast.Unop ((Not | Neg), _) -> (w + 1) / 2
  | Ast.Unop ((Andr | Orr | Xorr), a) -> (Ast.width_of env a + 5) / 6
  | Ast.Binop (op, a, b) -> (
    let wa = Ast.width_of env a and wb = Ast.width_of env b in
    match op with
    | Add | Sub -> w
    | And | Or | Xor -> (w + 1) / 2
    | Eq | Neq | Lt | Le | Gt | Ge -> (max wa wb + 2) / 3
    | Shl | Shr -> w * 3 (* barrel shifter: ~log w mux stages *)
    | Mul -> 0 (* counted as DSPs below *)
    | Div | Rem -> w * w / 2)
  | Ast.Read _ -> w (* read mux amortized *)

let node_dsps env e =
  match e with
  | Ast.Binop (Mul, a, b) ->
    let wa = Ast.width_of env a and wb = Ast.width_of env b in
    max 1 (((wa + 15) / 16) * ((wb + 15) / 16))
  | _ -> 0

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Ast.Lit _ | Ast.Ref _ -> acc
  | Ast.Mux (a, b, c) -> fold_expr f (fold_expr f (fold_expr f acc a) b) c
  | Ast.Binop (_, a, b) | Ast.Cat (a, b) -> fold_expr f (fold_expr f acc a) b
  | Ast.Unop (_, a) | Ast.Bits { e = a; _ } -> fold_expr f acc a
  | Ast.Read { addr; _ } -> fold_expr f acc addr

(* Memories below this bit count map to LUT RAM, not BRAM. *)
let bram_threshold_bits = 2048

(** Estimates a flat module. *)
let estimate_flat flat =
  let env = Ast.module_env (Flatten.to_circuit flat) flat in
  let expr_cost acc e =
    fold_expr
      (fun acc e -> add acc { zero with luts = node_luts env e; dsps = node_dsps env e })
      acc e
  in
  let acc =
    List.fold_left
      (fun acc s ->
        match s with
        | Ast.Connect { src; _ } -> expr_cost acc src
        | Ast.Reg_update { next; enable; _ } ->
          let acc = expr_cost acc next in
          Option.fold ~none:acc ~some:(expr_cost acc) enable
        | Ast.Mem_write { addr; data; enable; _ } ->
          expr_cost (expr_cost (expr_cost acc addr) data) enable)
      zero flat.Ast.stmts
  in
  List.fold_left
    (fun acc c ->
      match c with
      | Ast.Wire _ | Ast.Inst _ -> acc
      | Ast.Reg { width; _ } -> add acc { zero with ffs = width }
      | Ast.Mem { width; depth; _ } ->
        let bits = width * depth in
        if bits >= bram_threshold_bits then add acc { zero with bram_bits = bits }
        else add acc { zero with luts = bits / 32 * 2; ffs = 0 })
    acc flat.Ast.comps

let estimate_circuit circuit = estimate_flat (Flatten.flatten circuit)

(** Estimate for one plan unit; FAME-5 threading shares the
    combinational logic of [threads] duplicates while replicating their
    state, which is the LUT saving Section VI-B builds on.  [threads]
    counts the duplicates folded into one (1 = no threading). *)
let estimate_unit ?(threads = 1) (u : Fireripper.Plan.unit_part) =
  let full = estimate_flat (Lazy.force u.Fireripper.Plan.u_flat) in
  if threads <= 1 then full
  else
    (* Approximation: the unit consists of [threads] duplicates; LUTs and
       DSPs shrink to one copy (plus scheduler overhead), state stays. *)
    {
      luts = (full.luts / threads) + (full.ffs / 16);
      ffs = full.ffs;
      bram_bits = full.bram_bits;
      dsps = full.dsps / threads;
    }

let pp ppf e =
  Fmt.pf ppf "%d LUTs, %d FFs, %d BRAM bits, %d DSPs" e.luts e.ffs e.bram_bits e.dsps
