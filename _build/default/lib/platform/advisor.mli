(** Hybrid cloud/on-premises deployment advisor (paper §VIII-A): prices
    a simulation campaign on both platforms and phrases the paper's
    develop-on-premises / sweep-in-the-cloud guidance. *)

type deployment = {
  dep_name : string;
  dep_board : Fpga.board;
  dep_transport : Transport.kind;
  dep_hourly_usd : float;  (** amortized or rental cost per FPGA-hour *)
}

val cloud_f1 : deployment
val on_prem_u250 : deployment

type estimate = {
  e_deployment : deployment;
  e_rate_hz : float;
  e_wall_hours : float;
  e_cost_usd : float;
  e_fits : bool;
}

val estimate_campaign :
  deployment:deployment ->
  n_fpgas:int ->
  boundary_bits:int ->
  cycles_per_run:int ->
  runs:int ->
  unit_estimates:Resource.estimate list ->
  estimate

type advice = {
  a_cloud : estimate;
  a_on_prem : estimate;
  a_recommendation : string;
}

val advise :
  n_fpgas:int ->
  boundary_bits:int ->
  cycles_per_run:int ->
  runs:int ->
  unit_estimates:Resource.estimate list ->
  advice

val pp_estimate : Format.formatter -> estimate -> unit
