(* Latency-insensitive channel descriptions.  A channel aggregates a set
   of same-direction boundary ports; one token carries one value per
   port for one target cycle. *)

type spec = {
  name : string;
  ports : (string * int) list;  (** (port name, width) pairs *)
}

(** Number of payload bits one token of this channel carries; determines
    (de)serialization cost in the platform performance model. *)
let width spec = List.fold_left (fun acc (_, w) -> acc + w) 0 spec.ports

type token = int array

let token_of_ports spec get : token =
  Array.of_list (List.map (fun (p, _) -> get p) spec.ports)

let apply_token spec set (tok : token) =
  List.iteri (fun i (p, _) -> set p tok.(i)) spec.ports

let pp_spec ppf spec =
  Fmt.pf ppf "%s(%db:%a)" spec.name (width spec)
    Fmt.(list ~sep:comma string)
    (List.map fst spec.ports)
