(** The LI-BDN simulation network (paper §II-A): partitions exchange
    per-cycle tokens over latency-insensitive channels; each output
    channel fires once its combinational dependencies hold tokens; a
    partition advances (fireFSM) when all inputs hold tokens and all
    outputs have fired.  The scheduler executes any composition of
    partitions and detects deadlock (Fig. 2a). *)

type in_chan = {
  ic_spec : Channel.spec;
  ic_queue : Channel.token Queue.t;
}

type out_chan = {
  oc_spec : Channel.spec;
  oc_deps : int list;
  oc_eval : unit -> unit;
  mutable oc_fired : bool;
  mutable oc_dests : (int * int) list;
}

type partition = {
  pt_index : int;
  pt_name : string;
  pt_engine : Engine.t;
  pt_ins : in_chan array;
  pt_outs : out_chan array;
  mutable pt_cycle : int;
  mutable pt_drive : Engine.t -> int -> unit;
}

type t

exception Deadlock of string

val create : unit -> t

(** Declares a partition; [outs] pairs each output channel with the
    names of the input channels it combinationally depends on.  Returns
    the partition index.  Add all partitions before connecting. *)
val add_partition :
  t ->
  name:string ->
  engine:Engine.t ->
  ins:Channel.spec list ->
  outs:(Channel.spec * string list) list ->
  int

val partition : t -> int -> partition

(** Connects an output channel to an input channel; fan-out allowed. *)
val connect : t -> src:int * string -> dst:int * string -> unit

(** Pre-loads a token (fast-mode seeding, §III-A2). *)
val seed : t -> part:int -> chan:string -> Channel.token -> unit

(** Per-cycle hook setting a partition's external inputs. *)
val set_drive : t -> int -> (Engine.t -> int -> unit) -> unit

val cycle_of : t -> int -> int
val token_transfers : t -> int

(** Channel-state report used in deadlock messages. *)
val diagnose : t -> string

(** Captures the whole network (engine state, in-flight tokens, fired
    flags, cycles); the returned thunk rolls everything back. *)
val checkpoint : t -> unit -> unit

(** Serializable counterpart of {!checkpoint}: plain data (per-partition
    in-channel queues, fired flags and cycles), no engine state — the
    caller serializes unit simulator state alongside. *)
type snapshot = {
  sn_parts : (Channel.token list array * bool array * int) array;
  sn_transfers : int;
}

val snapshot : t -> snapshot

(** Restores a snapshot into a network of the same shape (same plan). *)
val restore : t -> snapshot -> unit

(** Runs every partition to [cycles] target cycles; raises {!Deadlock}
    if no forward progress is possible. *)
val run : t -> cycles:int -> unit

(** Runs until [pred] holds or all partitions reach [max_cycles];
    returns partition 0's cycle. *)
val run_until : t -> max_cycles:int -> (t -> bool) -> int
