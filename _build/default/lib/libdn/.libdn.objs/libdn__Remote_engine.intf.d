lib/libdn/remote_engine.mli: Engine
