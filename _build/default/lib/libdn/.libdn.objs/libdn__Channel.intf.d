lib/libdn/channel.mli: Format
