lib/libdn/channel.ml: Array Fmt List
