lib/libdn/engine.mli: Firrtl Rtlsim
