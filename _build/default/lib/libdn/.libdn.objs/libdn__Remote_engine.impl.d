lib/libdn/remote_engine.ml: Engine List Printf String Unix
