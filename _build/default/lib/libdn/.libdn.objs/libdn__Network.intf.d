lib/libdn/network.mli: Channel Engine Queue
