lib/libdn/network.ml: Array Buffer Channel Engine List Printf Queue String
