lib/libdn/engine.ml: Firrtl Rtlsim
