(** Latency-insensitive channel descriptions: a channel aggregates a set
    of same-direction boundary ports; one token carries one value per
    port for one target cycle. *)

type spec = {
  name : string;
  ports : (string * int) list;  (** (port name, width) pairs *)
}

(** Payload bits one token carries; determines (de)serialization cost in
    the platform performance model. *)
val width : spec -> int

type token = int array

(** Gathers a token from the channel's ports via [get]. *)
val token_of_ports : spec -> (string -> int) -> token

(** Applies a token's values to the channel's ports via [set]. *)
val apply_token : spec -> (string -> int -> unit) -> token -> unit

val pp_spec : Format.formatter -> spec -> unit
