(* FAME-1 as generated hardware (Fig. 1 of the paper).

   [Fame1] realizes the LI-BDN semantics in the scheduler of the token
   network; this module instead *generates the LI-BDN control logic as
   circuit IR*, the way Golden Gate emits it for an FPGA:

   - every input channel becomes a two-deep token queue;
   - every output channel becomes a single-bit output FSM that fires
     once per target cycle, as soon as the input channels it
     combinationally depends on hold a token;
   - the fireFSM advances the target — whose registers and memory
     writes are rewritten to be gated by [host_fire] — exactly when all
     input channels hold a token and all output channels have fired or
     are firing.

   The generated host-level design runs on the host clock under the
   ordinary RTL simulator, so host-cycles-per-target-cycle (the FMR) is
   *measured* rather than modeled; [link] wires two wrappers together
   with a configurable host-cycle link latency using credit-based flow
   control, mirroring the QSFP/Aurora transport. *)

open Firrtl

let queue_depth = 2

(* Host-level port names for channel [c]. *)
let h_valid c = c ^ "$valid"
let h_ready c = c ^ "$ready"
let h_deq c = c ^ "$deq"
let h_data c p = c ^ "$" ^ p

(** Rewrites a flat target so every register update and memory write is
    gated by a new [host_fire] input — the FAME-1 "may the target
    advance" control. *)
let gate_target flat =
  let fire = Ast.Ref "host_fire" in
  {
    flat with
    Ast.name = flat.Ast.name ^ "_fame1";
    ports = flat.Ast.ports @ [ { Ast.pname = "host_fire"; pdir = Ast.Input; pwidth = 1 } ];
    stmts =
      List.map
        (fun s ->
          match s with
          | Ast.Connect _ -> s
          | Ast.Reg_update { reg; next; enable } ->
            let enable =
              match enable with
              | None -> Some fire
              | Some e -> Some (Ast.Binop (Ast.And, e, fire))
            in
            Ast.Reg_update { reg; next; enable }
          | Ast.Mem_write { mem; addr; data; enable } ->
            Ast.Mem_write { mem; addr; data; enable = Ast.Binop (Ast.And, enable, fire) })
        flat.Ast.stmts;
  }

(** Generates the host wrapper for one partition.  Returns the wrapper
    module and the gated target module (add both to the host circuit).
    Channel dependencies are derived from the target's combinational
    analysis, as in the scheduler-based FAME-1.  [seeded] pre-loads one
    zero token in every input queue (fast-mode). *)
let wrap ~name ~flat ~(ins : Libdn.Channel.spec list) ~(outs : Libdn.Channel.spec list)
    ?(seeded = false) () =
  let analysis = Analysis.build flat in
  let target = gate_target flat in
  let b = Builder.create name in
  let open Dsl in
  let tgt = Builder.inst b "target" target.Ast.name in
  (* ---- input channel queues ---- *)
  let in_nonempty =
    List.map
      (fun (c : Libdn.Channel.spec) ->
        let cn = c.Libdn.Channel.name in
        let valid = Builder.input b (h_valid cn) 1 in
        Builder.output b (h_ready cn) 1;
        Builder.output b (h_deq cn) 1;
        let occ = Builder.reg b ~init:(if seeded then 1 else 0) (cn ^ "$occ") 2 in
        let head = Builder.reg b (cn ^ "$head") 1 in
        let tail = Builder.reg b ~init:(if seeded then 1 else 0) (cn ^ "$tail") 1 in
        let space = Builder.node b ~width:1 (occ <: lit ~width:2 queue_depth) in
        Builder.connect b (h_ready cn) space;
        let fire = ref_ "fire" in
        (* Tokens enter only when accepted, matching the sender's view. *)
        let enq = Builder.node b ~width:1 (valid &: space) in
        Builder.reg_next b (cn ^ "$occ") (occ +: enq -: fire);
        Builder.reg_next b ~enable:fire (cn ^ "$head") (head +: lit ~width:1 1);
        Builder.reg_next b ~enable:enq (cn ^ "$tail") (tail +: lit ~width:1 1);
        List.iter
          (fun (p, w) ->
            let _ = Builder.input b (h_data cn p) w in
            let q = Builder.mem b (cn ^ "$" ^ p ^ "$q") ~width:w ~depth:queue_depth in
            Builder.mem_write b q ~addr:tail ~data:(ref_ (h_data cn p)) ~enable:enq;
            (* Target input = head of queue. *)
            Builder.connect_in b tgt p (read q head))
          c.Libdn.Channel.ports;
        Builder.connect b (h_deq cn) fire;
        let ne = Builder.node b ~width:1 (occ >: lit ~width:2 0) in
        (cn, ne))
      ins
  in
  (* ---- output channel FSMs ---- *)
  let in_chan_of_port =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (c : Libdn.Channel.spec) ->
        List.iter (fun (p, _) -> Hashtbl.replace tbl p c.Libdn.Channel.name) c.Libdn.Channel.ports)
      ins;
    tbl
  in
  let out_done =
    List.map
      (fun (c : Libdn.Channel.spec) ->
        let cn = c.Libdn.Channel.name in
        Builder.output b (h_valid cn) 1;
        let out_ready = Builder.input b (h_ready cn) 1 in
        let sent = Builder.reg b (cn ^ "$sent") 1 in
        (* Which input channels this output combinationally waits for. *)
        let deps =
          List.concat_map
            (fun (p, _) ->
              List.filter_map
                (Hashtbl.find_opt in_chan_of_port)
                (Analysis.comb_inputs analysis p))
            c.Libdn.Channel.ports
          |> List.sort_uniq compare
        in
        let deps_ready =
          List.fold_left
            (fun acc (cn', ne) -> if List.mem cn' deps then Dsl.(acc &: ne) else acc)
            Dsl.one in_nonempty
        in
        let firing = Builder.node b ~width:1 Dsl.(deps_ready &: not_ sent) in
        Builder.connect b (h_valid cn) firing;
        List.iter
          (fun (p, w) ->
            Builder.output b (h_data cn p) w;
            Builder.connect b (h_data cn p) (Builder.of_inst tgt p))
          c.Libdn.Channel.ports;
        let accepted = Builder.node b ~width:1 Dsl.(firing &: out_ready) in
        Builder.reg_next b (cn ^ "$sent")
          Dsl.(mux (ref_ "fire") zero (mux accepted one sent));
        Builder.node b ~width:1 Dsl.(sent |: accepted))
      outs
  in
  (* ---- fireFSM ---- *)
  let all_ins = List.fold_left (fun acc (_, ne) -> Dsl.(acc &: ne)) Dsl.one in_nonempty in
  let all_outs = List.fold_left (fun acc d -> Dsl.(acc &: d)) Dsl.one out_done in
  (* The cycle limit freezes the target deterministically at a chosen
     cycle, so all partitions can be inspected at the same point despite
     the LI-BDN's natural one-cycle skew. *)
  let limit = Builder.input b "cycle_limit" 32 in
  let _ = Builder.wire b "fire" 1 in
  let cycles = Builder.reg b "target_cycles_r" 32 in
  Builder.connect b "fire" Dsl.(all_ins &: all_outs &: (cycles <: limit));
  Builder.connect_in b tgt "host_fire" (ref_ "fire");
  Builder.reg_next b ~enable:(ref_ "fire") "target_cycles_r" Dsl.(cycles +: lit ~width:32 1);
  Builder.output b "target_cycles" 32;
  Builder.connect b "target_cycles" cycles;
  (* Punch through external target outputs not carried by any channel,
     for observation. *)
  let channel_outs =
    List.concat_map (fun (c : Libdn.Channel.spec) -> List.map fst c.Libdn.Channel.ports) outs
  in
  let channel_ins =
    List.concat_map (fun (c : Libdn.Channel.spec) -> List.map fst c.Libdn.Channel.ports) ins
  in
  List.iter
    (fun (p : Ast.port) ->
      if p.Ast.pdir = Ast.Output && not (List.mem p.Ast.pname channel_outs) then begin
        Builder.output b ("obs$" ^ p.Ast.pname) p.Ast.pwidth;
        Builder.connect b ("obs$" ^ p.Ast.pname) (Builder.of_inst tgt p.Ast.pname)
      end)
    flat.Ast.ports;
  (* External target inputs (not in any channel) punch straight through. *)
  List.iter
    (fun (p : Ast.port) ->
      if p.Ast.pdir = Ast.Input && not (List.mem p.Ast.pname channel_ins) then begin
        let x = Builder.input b ("ext$" ^ p.Ast.pname) p.Ast.pwidth in
        Builder.connect_in b tgt p.Ast.pname x
      end)
    flat.Ast.ports;
  (Builder.finish b, target)

(** Wires output channel [src_chan] of host instance [src_inst] to
    input channel [dst_chan] of [dst_inst] in the host top-level
    builder; [ports] pairs each source port with its destination port
    and width.  [latency] host cycles of pipeline on the forward path,
    with credit-based flow control sized to the receiver queue (the
    sender sees [ready] from a local credit counter; credits return on
    the receiver's dequeue, delayed by the same latency). *)
let link b ~latency ~src:(src_inst, src_chan) ~dst:(dst_inst, dst_chan)
    ~(ports : (string * string * int) list) =
  let open Dsl in
  let pre s = Printf.sprintf "lnk$%s$%s$%s" src_inst src_chan s in
  let delay name width src_expr =
    (* [latency] register stages; latency 0 is a plain wire. *)
    let rec stage k prev =
      if k = latency then prev
      else begin
        let r = Builder.reg b (pre (Printf.sprintf "%s%d" name k)) width in
        Builder.reg_next b (pre (Printf.sprintf "%s%d" name k)) prev;
        stage (k + 1) r
      end
    in
    stage 0 src_expr
  in
  if latency = 0 then begin
    Builder.connect_in b dst_inst (h_valid dst_chan) (Builder.of_inst src_inst (h_valid src_chan));
    List.iter
      (fun (sp, dp, _) ->
        Builder.connect_in b dst_inst (h_data dst_chan dp)
          (Builder.of_inst src_inst (h_data src_chan sp)))
      ports;
    Builder.connect_in b src_inst (h_ready src_chan) (Builder.of_inst dst_inst (h_ready dst_chan))
  end
  else begin
    (* Sender-side credits: one per receiver queue slot. *)
    let credits = Builder.reg b ~init:queue_depth (pre "credits") 2 in
    let have = Builder.node b ~width:1 (credits >: lit ~width:2 0) in
    Builder.connect_in b src_inst (h_ready src_chan) have;
    let sent =
      Builder.node b ~width:1 (Builder.of_inst src_inst (h_valid src_chan) &: have)
    in
    Builder.connect_in b dst_inst (h_valid dst_chan) (delay "v" 1 sent);
    List.iter
      (fun (sp, dp, w) ->
        Builder.connect_in b dst_inst (h_data dst_chan dp)
          (delay ("d$" ^ sp) w (Builder.of_inst src_inst (h_data src_chan sp))))
      ports;
    let credit_back = delay "c" 1 (Builder.of_inst dst_inst (h_deq dst_chan)) in
    Builder.reg_next b (pre "credits") (credits -: sent +: credit_back)
  end
