(* FAME-5 as generated hardware (paper §II-B / §IV-C): N target threads
   share one combinational datapath while their architectural state
   lives in banks — every register becomes a [threads]-deep memory
   indexed by a round-robin thread counter, and every target memory is
   widened to [threads] concatenated banks.  One host cycle executes one
   target cycle of one thread, so N threads cost N host cycles per
   target cycle but only one copy of the datapath's LUTs (the paper's
   resource-amortization trade).

   Because memories reset to zero while registers may carry reset
   values, the wrapped module spends its first [threads] host cycles in
   an init sweep writing each bank's register reset values; harnesses
   skip those cycles (target memory writes are suppressed during the
   sweep). *)

open Firrtl

let tid_name = "f5$tid"
let init_name = "f5$init"

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

(** Rewrites the flat module [m] into its [threads]-way multithreaded
    equivalent.  Target memory depths must be powers of two. *)
let wrap ~threads m =
  if threads < 1 then Ast.ir_error "fame5_rtl: threads must be >= 1";
  if threads = 1 then m
  else begin
    Hierarchy.assert_fresh m tid_name;
    Hierarchy.assert_fresh m init_name;
    let tid_bits =
      let rec bits n = if n <= 1 then 1 else 1 + bits (n / 2) in
      bits (threads - 1)
    in
    let tid = Ast.Ref tid_name in
    let initing = Ast.Ref init_name in
    (* Classify original components. *)
    let regs = Hashtbl.create 16 in
    let mems = Hashtbl.create 16 in
    List.iter
      (fun c ->
        match c with
        | Ast.Reg { name; width; init } -> Hashtbl.replace regs name (width, init)
        | Ast.Mem { name; depth; _ } -> Hashtbl.replace mems name depth
        | Ast.Wire _ -> ()
        | Ast.Inst { name; _ } ->
          Ast.ir_error "fame5_rtl: module %s is not flat (instance %s)" m.Ast.name name)
      m.Ast.comps;
    Hashtbl.iter
      (fun name depth ->
        if depth land (depth - 1) <> 0 then
          Ast.ir_error "fame5_rtl: memory %s depth %d is not a power of 2" name depth)
      mems;
    (* Expression rewrite: register reads become bank reads; memory
       addresses gain the thread bank prefix. *)
    let bank_addr mem addr =
      let depth = Hashtbl.find mems mem in
      if depth = 1 then tid else Ast.Cat (tid, Ast.Bits { e = addr; hi = log2 depth - 1; lo = 0 })
    in
    let rec rw e =
      match e with
      | Ast.Lit _ -> e
      | Ast.Ref n -> if Hashtbl.mem regs n then Ast.Read { mem = n; addr = tid } else e
      | Ast.Mux (c, t, f) -> Ast.Mux (rw c, rw t, rw f)
      | Ast.Binop (op, a, b) -> Ast.Binop (op, rw a, rw b)
      | Ast.Unop (op, a) -> Ast.Unop (op, rw a)
      | Ast.Bits { e; hi; lo } -> Ast.Bits { e = rw e; hi; lo }
      | Ast.Cat (a, b) -> Ast.Cat (rw a, rw b)
      | Ast.Read { mem; addr } -> Ast.Read { mem; addr = bank_addr mem (rw addr) }
    in
    let comps =
      List.concat_map
        (fun c ->
          match c with
          | Ast.Reg { name; width; _ } -> [ Ast.Mem { name; width; depth = threads } ]
          | Ast.Mem { name; width; depth } -> [ Ast.Mem { name; width; depth = depth * threads } ]
          | Ast.Wire _ -> [ c ]
          | Ast.Inst _ -> [] (* unreachable: rejected above *))
        m.Ast.comps
      @ [
          Ast.Reg { name = tid_name; width = tid_bits; init = 0 };
          Ast.Reg { name = init_name; width = 1; init = 1 };
        ]
    in
    let last = Ast.Lit { value = threads - 1; width = tid_bits } in
    let stmts =
      List.map
        (fun s ->
          match s with
          | Ast.Connect { dst; src } -> Ast.Connect { dst; src = rw src }
          | Ast.Reg_update { reg; next; enable } ->
            let width, init = Hashtbl.find regs reg in
            let data = Ast.Mux (initing, Ast.Lit { value = init; width }, rw next) in
            let enable =
              match enable with
              | None -> Ast.Lit { value = 1; width = 1 }
              | Some e -> Ast.Binop (Ast.Or, initing, rw e)
            in
            Ast.Mem_write { mem = reg; addr = tid; data; enable }
          | Ast.Mem_write { mem; addr; data; enable } ->
            Ast.Mem_write
              {
                mem;
                addr = bank_addr mem (rw addr);
                data = rw data;
                enable = Ast.Binop (Ast.And, rw enable, Ast.Unop (Ast.Not, initing));
              })
        m.Ast.stmts
      @ [
          Ast.Reg_update
            {
              reg = tid_name;
              next =
                Ast.Mux
                  ( Ast.Binop (Ast.Eq, tid, last),
                    Ast.Lit { value = 0; width = tid_bits },
                    Ast.Binop (Ast.Add, tid, Ast.Lit { value = 1; width = tid_bits }) );
              enable = None;
            };
          Ast.Reg_update
            {
              reg = init_name;
              next = Ast.Binop (Ast.And, initing, Ast.Unop (Ast.Not, Ast.Binop (Ast.Eq, tid, last)));
              enable = None;
            };
        ]
    in
    { m with Ast.comps; stmts }
  end

(** Host cycles the init sweep occupies: skip these before driving. *)
let init_cycles ~threads = if threads <= 1 then 0 else threads

(** The host cycle during which thread [t] presents the inputs for its
    [k]-th target cycle (0-based). *)
let host_cycle ~threads ~thread k = init_cycles ~threads + (k * threads) + thread
