lib/goldengate/fame5.ml: Array Ast Firrtl Hashtbl Libdn List Option Rtlsim String
