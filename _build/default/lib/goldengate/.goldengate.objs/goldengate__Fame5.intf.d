lib/goldengate/fame5.mli: Firrtl Libdn Rtlsim
