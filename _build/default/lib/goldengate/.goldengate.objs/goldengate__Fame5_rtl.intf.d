lib/goldengate/fame5_rtl.mli: Firrtl
