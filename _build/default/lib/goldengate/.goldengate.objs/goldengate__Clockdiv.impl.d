lib/goldengate/clockdiv.ml: Ast Dsl Firrtl Hierarchy List Option
