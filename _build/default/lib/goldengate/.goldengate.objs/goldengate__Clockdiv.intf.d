lib/goldengate/clockdiv.mli: Firrtl
