lib/goldengate/fame1_rtl.ml: Analysis Ast Builder Dsl Firrtl Hashtbl Libdn List Printf
