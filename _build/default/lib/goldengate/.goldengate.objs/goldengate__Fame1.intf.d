lib/goldengate/fame1.mli: Firrtl Libdn
