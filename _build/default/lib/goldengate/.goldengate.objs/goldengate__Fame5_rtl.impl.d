lib/goldengate/fame5_rtl.ml: Ast Firrtl Hashtbl Hierarchy List
