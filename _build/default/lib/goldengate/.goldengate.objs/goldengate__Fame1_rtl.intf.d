lib/goldengate/fame1_rtl.mli: Firrtl Libdn
