lib/goldengate/fame1.ml: Ast Firrtl Hashtbl Libdn List
