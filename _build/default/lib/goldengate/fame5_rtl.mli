(** FAME-5 as generated hardware: N target threads share one
    combinational datapath; registers become thread-indexed banks,
    memories widen to N concatenated banks, and a round-robin thread
    counter executes one thread's target cycle per host cycle.  The
    first {!init_cycles} host cycles sweep register reset values into
    the banks. *)

(** Rewrites the flat module into its [threads]-way multithreaded
    equivalent.  Target memory depths must be powers of two; the module
    must be flat (no instances). *)
val wrap : threads:int -> Firrtl.Ast.module_def -> Firrtl.Ast.module_def

(** Host cycles the init sweep occupies: skip these before driving. *)
val init_cycles : threads:int -> int

(** The host cycle during which thread [thread] presents the inputs for
    its [k]-th target cycle (0-based). *)
val host_cycle : threads:int -> thread:int -> int -> int

(** Names of the injected thread counter and init flag. *)
val tid_name : string

val init_name : string
