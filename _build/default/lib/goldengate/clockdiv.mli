(** Multi-clock support, FireSim-style: slower clock domains modeled on
    the fast base clock with synchronous clock enables, so partitioning
    and the LI-BDN apply unchanged and multi-clock exact-mode stays
    cycle-exact by construction. *)

(** Rewrites a module so its state advances once every [div] base
    cycles ([phase] offsets the first enable; default [div - 1], i.e.
    the first tick fires on base cycle [div - 1]). *)
val gate : ?phase:int -> div:int -> Firrtl.Ast.module_def -> Firrtl.Ast.module_def

(** Applies {!gate} to one named module of a circuit. *)
val gate_module :
  ?phase:int -> div:int -> Firrtl.Ast.circuit -> string -> Firrtl.Ast.circuit
