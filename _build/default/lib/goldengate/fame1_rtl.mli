(** FAME-1 as generated hardware (paper Fig. 1): token queues, output
    FSMs and the fireFSM emitted as circuit IR around a clock-gated
    target, plus credit-flow links — so host-clock behaviour is
    measured under the ordinary RTL simulator. *)

val queue_depth : int

(* Host-level port names for channel [c]. *)
val h_valid : string -> string
val h_ready : string -> string
val h_deq : string -> string
val h_data : string -> string -> string

(** Gates every register update and memory write by a new [host_fire]
    input. *)
val gate_target : Firrtl.Ast.module_def -> Firrtl.Ast.module_def

(** Generates the host wrapper for one partition; returns (wrapper,
    gated target).  The wrapper exposes per-channel valid/ready/deq and
    data ports, a [cycle_limit] input freezing the target
    deterministically, a [target_cycles] counter, [obs$*] observation
    ports and [ext$*] external-input punches.  [seeded] pre-loads one
    zero token per input queue (fast-mode). *)
val wrap :
  name:string ->
  flat:Firrtl.Ast.module_def ->
  ins:Libdn.Channel.spec list ->
  outs:Libdn.Channel.spec list ->
  ?seeded:bool ->
  unit ->
  Firrtl.Ast.module_def * Firrtl.Ast.module_def

(** Wires an output channel of one host instance to an input channel of
    another; [ports] pairs (src port, dst port, width).  [latency] host
    cycles on the forward path with credit-based flow control. *)
val link :
  Firrtl.Builder.t ->
  latency:int ->
  src:string * string ->
  dst:string * string ->
  ports:(string * string * int) list ->
  unit
