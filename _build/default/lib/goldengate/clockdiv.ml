(* Multi-clock support in the FireSim style: a module in a slower clock
   domain is modeled on the fast base clock with a synchronous clock
   enable — its registers and memory writes update once every [div]
   base cycles.  (Constellation's top layer wires clock-domain crossings
   this way; FireSim simulates multi-clock targets at the LCM base clock
   with exactly this enable-gating trick.)

   Because the result is ordinary single-clock RTL, everything else in
   the flow — FireRipper partitioning, the LI-BDN scheduler, the
   generated FAME-1 hardware — applies unchanged, and exact-mode
   partitions of multi-clock designs stay cycle-exact by construction. *)

open Firrtl

(** Rewrites a module so its state advances once every [div] cycles of
    the base clock (first enable fires [phase] cycles in, default
    [div - 1]).  Adds an internal phase counter; combinational logic is
    untouched. *)
let gate ?phase ~div m =
  if div < 1 then Ast.ir_error "clockdiv: div must be >= 1";
  if div = 1 then m
  else begin
    let phase = Option.value ~default:(div - 1) phase in
    let counter = "clkdiv$count" in
    let tick = "clkdiv$tick" in
    Hierarchy.assert_fresh m counter;
    Hierarchy.assert_fresh m tick;
    let open Dsl in
    let width =
      let rec bits n = if n <= 1 then 1 else 1 + bits (n / 2) in
      bits (div - 1)
    in
    let count = ref_ counter in
    let tick_e = ref_ tick in
    let stmts =
      List.map
        (fun s ->
          match s with
          | Ast.Connect _ -> s
          | Ast.Reg_update { reg; next; enable } ->
            let enable =
              match enable with
              | None -> Some tick_e
              | Some e -> Some Ast.(Binop (And, e, tick_e))
            in
            Ast.Reg_update { reg; next; enable }
          | Ast.Mem_write { mem; addr; data; enable } ->
            Ast.Mem_write { mem; addr; data; enable = Ast.Binop (Ast.And, enable, tick_e) })
        m.Ast.stmts
    in
    {
      m with
      Ast.comps =
        m.Ast.comps
        @ [
            Ast.Reg { name = counter; width; init = (div - 1 - phase) mod div };
            Ast.Wire { name = tick; width = 1 };
          ];
      stmts =
        stmts
        @ [
            Ast.Connect { dst = tick; src = (count ==: lit ~width (div - 1)) };
            Ast.Reg_update
              {
                reg = counter;
                next = Dsl.(mux tick_e (lit ~width 0) (count +: lit ~width 1));
                enable = None;
              };
          ];
    }
  end

(** Applies {!gate} to one named module of a circuit. *)
let gate_module ?phase ~div circuit name =
  let m = Ast.find_module circuit name in
  Hierarchy.replace_module circuit (gate ?phase ~div m)
