(* Synthesized assertions, FireSim-style: target RTL declares
   conventionally named [assert$...] wires (see [Firrtl.Builder.assertion]),
   active high on violation; they synthesize into the FPGA image like
   any other logic, and the host harness polls them each target cycle —
   catching the violation at the exact cycle it fires, even billions of
   cycles into a run. *)

let marker = Firrtl.Builder.assertion_prefix

let has_marker name =
  let ml = String.length marker and nl = String.length name in
  let rec go i = i + ml <= nl && (String.sub name i ml = marker || go (i + 1)) in
  go 0

(** All assertion wires of a simulation (flattened names). *)
let signals sim =
  Hashtbl.fold (fun name _ acc -> if has_marker name then name :: acc else acc)
    sim.Sim.slots []
  |> List.sort compare

(** Assertion wires currently violated (evaluates combinational state
    first). *)
let violated sim =
  Sim.eval_comb sim;
  List.filter (fun s -> Sim.get sim s <> 0) (signals sim)

(** Steps until [pred] holds or an assertion fires: [Ok halt_cycle], or
    [Error (cycle, violated)] at the first violating cycle. *)
let run sim ~max_cycles pred =
  let sigs = signals sim in
  let rec go cyc =
    Sim.eval_comb sim;
    match List.filter (fun s -> Sim.get sim s <> 0) sigs with
    | _ :: _ as bad -> Error (cyc, bad)
    | [] ->
      if pred sim then Ok cyc
      else if cyc >= max_cycles then Ok cyc
      else begin
        Sim.step_seq sim;
        go (cyc + 1)
      end
  in
  go 0
