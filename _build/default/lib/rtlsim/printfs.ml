(* Synthesized printfs, FireSim-style: target RTL declares a
   [printf$<label>$fire] wire plus [printf$<label>$arg<k>] wires (see
   [Firrtl.Builder.printf]); they synthesize like any other logic and
   the host drains one log record per cycle the fire wire is high —
   out-of-band target logging with no UART or software involved.

   Flattening prefixes instance paths, so a label's flattened form is
   e.g. [tile$core$printf$commit$fire]; the label reported to the host
   includes the instance path ([tile$core$commit]). *)

let marker = Firrtl.Builder.printf_prefix

type site = {
  p_label : string;  (** instance path + label, e.g. ["tile$core$commit"] *)
  p_fire : string;
  p_args : string list;  (** arg wires, in index order *)
}

type record = {
  r_cycle : int;
  r_label : string;
  r_args : int list;
}

let find_marker name =
  let ml = String.length marker and nl = String.length name in
  let rec go i =
    if i + ml > nl then None
    else if String.sub name i ml = marker then Some i
    else go (i + 1)
  in
  go 0

(** Printf sites of a simulation, grouped from the marker wires. *)
let sites sim =
  let tbl = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name _ ->
      match find_marker name with
      | None -> ()
      | Some i -> begin
        (* name = <path>printf$<label>$(fire | arg<k>) *)
        let rest = String.sub name (i + String.length marker) (String.length name - i - String.length marker) in
        match String.rindex_opt rest '$' with
        | None -> ()
        | Some j ->
          let label = String.sub name 0 i ^ String.sub rest 0 j in
          let field = String.sub rest (j + 1) (String.length rest - j - 1) in
          let fire, args =
            Option.value ~default:("", []) (Hashtbl.find_opt tbl label)
          in
          if field = "fire" then Hashtbl.replace tbl label (name, args)
          else Hashtbl.replace tbl label (fire, (field, name) :: args)
      end)
    sim.Sim.slots;
  Hashtbl.fold
    (fun label (fire, args) acc ->
      if fire = "" then acc
      else
        let index (field, _) =
          (* field = "arg<k>" *)
          if String.length field < 4 then max_int
          else
            match int_of_string_opt (String.sub field 3 (String.length field - 3)) with
            | Some k -> k
            | None -> max_int
        in
        {
          p_label = label;
          p_fire = fire;
          p_args =
            List.sort (fun a b -> compare (index a) (index b)) args |> List.map snd;
        }
        :: acc)
    tbl []
  |> List.sort compare

(** Records fired this cycle (evaluates combinational state first). *)
let poll ?(cycle = 0) sim sites_ =
  Sim.eval_comb sim;
  List.filter_map
    (fun s ->
      if Sim.get sim s.p_fire <> 0 then
        Some { r_cycle = cycle; r_label = s.p_label; r_args = List.map (Sim.get sim) s.p_args }
      else None)
    sites_

(** Runs [cycles] target cycles collecting every fired record. *)
let collect sim ~cycles =
  let ss = sites sim in
  let log = ref [] in
  for c = 0 to cycles - 1 do
    log := List.rev_append (poll ~cycle:c sim ss) !log;
    Sim.step_seq sim
  done;
  List.rev !log

let to_string r =
  Printf.sprintf "[%d] %s: %s" r.r_cycle r.r_label
    (String.concat " " (List.map string_of_int r.r_args))
