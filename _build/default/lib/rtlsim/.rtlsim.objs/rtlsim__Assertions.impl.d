lib/rtlsim/assertions.ml: Firrtl Hashtbl List Sim String
