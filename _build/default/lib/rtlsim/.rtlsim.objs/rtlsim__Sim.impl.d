lib/rtlsim/sim.ml: Analysis Array Ast Buffer Firrtl Flatten Format Hashtbl List Option Printf String
