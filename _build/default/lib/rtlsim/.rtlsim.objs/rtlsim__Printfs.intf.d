lib/rtlsim/printfs.mli: Sim
