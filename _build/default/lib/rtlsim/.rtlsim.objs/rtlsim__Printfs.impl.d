lib/rtlsim/printfs.ml: Firrtl Hashtbl List Option Printf Sim String
