lib/rtlsim/assertions.mli: Sim
