lib/rtlsim/vcd.ml: Array Buffer Char Hashtbl List Printf Sim String
