lib/rtlsim/vcd.mli: Sim
