(** Value Change Dump writer: records selected signals of a simulation
    in standard VCD format (GTKWave-compatible).  Only changes are
    emitted; call {!sample} once per target cycle after evaluation. *)

type t

(** [create sim ~signals] watches the named (flattened) signals. *)
val create : Sim.t -> signals:string list -> t

(** Records the current values; emits only signals that changed since
    the previous sample. *)
val sample : t -> unit

(** The VCD document so far. *)
val contents : t -> string

(** Writes the VCD document to [path]. *)
val save : t -> path:string -> unit
