(** Synthesized printfs (FireSim-style): [printf$<label>$fire] +
    [printf$<label>$arg<k>] wires drained by the host into a
    (cycle, label, args) log — out-of-band target logging. *)

val marker : string

type site = {
  p_label : string;  (** instance path + label, e.g. ["tile$core$commit"] *)
  p_fire : string;
  p_args : string list;  (** arg wires, in index order *)
}

type record = {
  r_cycle : int;
  r_label : string;
  r_args : int list;
}

(** Printf sites of a simulation, grouped from the marker wires. *)
val sites : Sim.t -> site list

(** Records fired this cycle (evaluates combinational state first). *)
val poll : ?cycle:int -> Sim.t -> site list -> record list

(** Runs [cycles] target cycles collecting every fired record. *)
val collect : Sim.t -> cycles:int -> record list

val to_string : record -> string
