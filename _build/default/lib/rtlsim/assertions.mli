(** Synthesized assertions (FireSim-style): conventionally named
    [assert$...] wires, active high on violation, polled by the host
    each target cycle. *)

(** The [assert$] name marker. *)
val marker : string

(** Whether a flattened signal name is an assertion wire. *)
val has_marker : string -> bool

(** All assertion wires of a simulation (flattened names). *)
val signals : Sim.t -> string list

(** Assertion wires currently violated (evaluates combinational state
    first). *)
val violated : Sim.t -> string list

(** Steps until [pred] holds or an assertion fires: [Ok halt_cycle], or
    [Error (cycle, violated)] at the first violating cycle. *)
val run :
  Sim.t -> max_cycles:int -> (Sim.t -> bool) -> (int, int * string list) result
