(** Trace-driven out-of-order core timing model with TIP-style CPI
    attribution (paper Figures 7-8).  Each dynamic instruction receives
    fetch/dispatch/execute/complete/commit timestamps under the
    configuration's resource constraints; every cycle between
    consecutive commits is attributed to exactly one stall category, so
    the CPI stack sums to the CPI. *)

type stall_category =
  | Base  (** committing / retire bandwidth *)
  | Frontend  (** fetch bandwidth, fetch buffer, I-cache misses *)
  | Branch  (** mispredict redirect bubbles *)
  | Memory  (** D-cache misses *)
  | Execution  (** execution-unit latency and contention *)
  | Hazard  (** operand dependencies and backend-capacity stalls *)

val categories : stall_category list
val category_name : stall_category -> string

type result = {
  r_config : Config.t;
  r_instructions : int;
  r_cycles : int;
  r_ipc : float;
  r_runtime_ms : float;
  r_cpi_stack : (stall_category * float) list;  (** cycles per instruction *)
  r_l1d_miss_rate : float;
  r_l1i_miss_rate : float;
}

(** Runs a trace through the configuration.  Raises [Invalid_argument]
    on an empty trace.  Deterministic. *)
val run : Config.t -> Trace.instr array -> result
