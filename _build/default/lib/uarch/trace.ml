(* Dynamic instruction traces consumed by the OoO timing model.  Traces
   are produced by the workload generators (Embench-like kernels) and
   are identical across core configurations, so performance differences
   come from the microarchitecture alone. *)

type op_class =
  | Int_alu
  | Int_mul
  | Int_div
  | Fp
  | Load
  | Store
  | Branch

type instr = {
  op : op_class;
  src1_dist : int;  (** instructions back to the first producer; 0 = none *)
  src2_dist : int;
  mispredicted : bool;  (** branches only *)
  pc_block : int;  (** I-cache block the instruction fetches from *)
  addr_block : int;  (** D-cache block for loads/stores; -1 otherwise *)
  fp_dest : bool;  (** consumes an FP physical register *)
}

let nop =
  {
    op = Int_alu;
    src1_dist = 0;
    src2_dist = 0;
    mispredicted = false;
    pc_block = 0;
    addr_block = -1;
    fp_dest = false;
  }

(* Execution latencies (cycles). *)
let latency = function
  | Int_alu -> 1
  | Int_mul -> 3
  | Int_div -> 16
  | Fp -> 4
  | Load -> 3 (* L1 hit; misses add the refill penalty *)
  | Store -> 1
  | Branch -> 1

let l1_miss_penalty = 22

let is_mem i = i.op = Load || i.op = Store
