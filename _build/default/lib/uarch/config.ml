(* Microarchitectural configurations (Table I): Large BOOM, the
   Golden-Cove-downsized GC40 BOOM that the §V-B split-core case study
   simulates, and a Golden-Cove-class Xeon reference. *)

type t = {
  name : string;
  fetch_width : int;
  issue_width : int;  (** decode/rename/commit width *)
  rob_entries : int;
  int_phys_regs : int;
  fp_phys_regs : int;
  ld_queue : int;
  st_queue : int;
  fetch_buffer : int;
  l1i_kb : int;
  l1d_kb : int;
  alu_units : int;
  mul_units : int;
  fp_units : int;
  mem_ports : int;
  mispredict_penalty : int;
  clock_ghz : float;
  l1d_prefetch : bool;  (** next-line prefetch on D-cache misses *)
}

(* The paper evaluates all cores at the Xeon's measured 3.4 GHz. *)
let clock_ghz = 3.4

let large_boom =
  {
    name = "Large BOOM";
    fetch_width = 4;
    issue_width = 3;
    rob_entries = 96;
    int_phys_regs = 100;
    fp_phys_regs = 96;
    ld_queue = 24;
    st_queue = 24;
    fetch_buffer = 24;
    l1i_kb = 32;
    l1d_kb = 32;
    alu_units = 3;
    mul_units = 1;
    fp_units = 1;
    mem_ports = 1;
    mispredict_penalty = 12;
    clock_ghz;
    l1d_prefetch = false;
  }

let gc40_boom =
  {
    name = "GC40 BOOM";
    fetch_width = 8;
    issue_width = 6;
    rob_entries = 216;
    int_phys_regs = 115;
    fp_phys_regs = 132;
    ld_queue = 76;
    st_queue = 45;
    fetch_buffer = 54;
    l1i_kb = 32;
    l1d_kb = 32;
    alu_units = 6;
    mul_units = 2;
    fp_units = 2;
    mem_ports = 2;
    mispredict_penalty = 14;
    clock_ghz;
    l1d_prefetch = false;
  }

let gc_xeon =
  {
    name = "GC Xeon";
    fetch_width = 8;
    issue_width = 6;
    rob_entries = 512;
    int_phys_regs = 280;
    fp_phys_regs = 332;
    ld_queue = 192;
    st_queue = 114;
    fetch_buffer = 144;
    l1i_kb = 32;
    l1d_kb = 48;
    alu_units = 6;
    mul_units = 2;
    fp_units = 3;
    mem_ports = 3;
    mispredict_penalty = 16;
    clock_ghz;
    l1d_prefetch = true;
  }

(** Synthesis-area estimates reported in §V-B (mm² in a 16nm process,
    core + L1s): the motivation for splitting GC40 across two FPGAs. *)
let area_mm2 = function
  | "Large BOOM" -> 0.79
  | "GC40 BOOM" -> 1.56
  | "GC Xeon" -> 9.13
  | _ -> nan

let all = [ large_boom; gc40_boom; gc_xeon ]

(** Table I rows: (parameter, per-config values). *)
let table1 =
  let row label f = (label, List.map f all) in
  [
    row "Issue width" (fun c -> string_of_int c.issue_width);
    row "ROB entries" (fun c -> string_of_int c.rob_entries);
    row "I-Phys Regs" (fun c -> string_of_int c.int_phys_regs);
    row "F-Phys Regs" (fun c -> string_of_int c.fp_phys_regs);
    row "Ld queue entries" (fun c -> string_of_int c.ld_queue);
    row "St queue entries" (fun c -> string_of_int c.st_queue);
    row "Fetch buffer entries" (fun c -> string_of_int c.fetch_buffer);
    row "L1-I" (fun c -> Printf.sprintf "%d kB" c.l1i_kb);
    row "L1-D" (fun c -> Printf.sprintf "%d kB" c.l1d_kb);
  ]
