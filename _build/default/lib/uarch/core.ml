(* Trace-driven out-of-order core timing model.

   Each dynamic instruction receives fetch / dispatch / execute /
   complete / commit timestamps under the configuration's resource
   constraints: fetch and commit bandwidth, fetch-buffer and ROB
   occupancy, physical-register and load/store-queue capacity, execution
   unit contention, operand wakeup, branch-mispredict redirects and L1
   instruction/data caches (modeled as real direct-mapped tag arrays
   over the trace's block streams).

   Alongside the timestamps the model records *why* each instruction was
   delayed; a TIP-style pass (Gottschall et al., integrated into FireAxe
   in §V-B) turns those into the CPI stacks of Figure 8. *)

open Trace

type stall_category =
  | Base  (** committing / retire bandwidth *)
  | Frontend  (** fetch bandwidth, fetch buffer, I-cache misses *)
  | Branch  (** mispredict redirect bubbles *)
  | Memory  (** D-cache misses *)
  | Execution  (** execution-unit latency and contention *)
  | Hazard  (** operand dependencies and backend-capacity stalls *)

let categories = [ Base; Frontend; Branch; Memory; Execution; Hazard ]

let category_name = function
  | Base -> "base"
  | Frontend -> "frontend"
  | Branch -> "branch"
  | Memory -> "memory"
  | Execution -> "execution"
  | Hazard -> "hazard"

type result = {
  r_config : Config.t;
  r_instructions : int;
  r_cycles : int;
  r_ipc : float;
  r_runtime_ms : float;
  r_cpi_stack : (stall_category * float) list;  (** cycles per instruction *)
  r_l1d_miss_rate : float;
  r_l1i_miss_rate : float;
}

(* Bandwidth-limited slot allocator: at most [width] events per cycle,
   never earlier than the previous event's cycle. *)
type slots = {
  mutable s_cycle : int;
  mutable s_used : int;
  s_width : int;
}

let make_slots width = { s_cycle = -1; s_used = 0; s_width = width }

let take_slot s ~earliest =
  let cycle =
    if earliest > s.s_cycle then earliest
    else if s.s_used < s.s_width then s.s_cycle
    else s.s_cycle + 1
  in
  if cycle > s.s_cycle then begin
    s.s_cycle <- cycle;
    s.s_used <- 1
  end
  else s.s_used <- s.s_used + 1;
  cycle

(* Direct-mapped tag array. *)
type cache = {
  tags : int array;
  mutable accesses : int;
  mutable misses : int;
}

let make_cache ~kb =
  let blocks = max 1 (kb * 1024 / 64) in
  { tags = Array.make blocks (-1); accesses = 0; misses = 0 }

let cache_access c block =
  if block < 0 then false
  else begin
    c.accesses <- c.accesses + 1;
    let idx = block mod Array.length c.tags in
    if c.tags.(idx) = block then false
    else begin
      c.tags.(idx) <- block;
      c.misses <- c.misses + 1;
      true
    end
  end

let decode_latency = 2
let arch_regs = 32

let run (cfg : Config.t) (trace : instr array) =
  let n = Array.length trace in
  if n = 0 then invalid_arg "empty trace";
  let fetch = Array.make n 0 in
  let dispatch = Array.make n 0 in
  let complete = Array.make n 0 in
  let commit = Array.make n 0 in
  (* Cause of the binding constraint on each stamp. *)
  let dispatch_cause = Array.make n Base in
  let complete_cause = Array.make n Execution in
  let fetch_cause = Array.make n Frontend in
  let fetch_slots = make_slots cfg.Config.fetch_width in
  let dispatch_slots = make_slots cfg.Config.issue_width in
  let commit_slots = make_slots cfg.Config.issue_width in
  let icache = make_cache ~kb:cfg.Config.l1i_kb in
  let dcache = make_cache ~kb:cfg.Config.l1d_kb in
  (* Execution unit scoreboards: next free cycle per unit instance. *)
  let units op =
    match op with
    | Int_alu | Branch -> `Alu
    | Int_mul | Int_div -> `Mul
    | Fp -> `Fp
    | Load | Store -> `Mem
  in
  let alu = Array.make cfg.Config.alu_units 0 in
  let mul = Array.make cfg.Config.mul_units 0 in
  let fp = Array.make cfg.Config.fp_units 0 in
  let mem = Array.make cfg.Config.mem_ports 0 in
  let unit_array = function
    | `Alu -> alu
    | `Mul -> mul
    | `Fp -> fp
    | `Mem -> mem
  in
  (* Occupancy tracking for capacity constraints: the k-th load can only
     dispatch once load (k - ld_queue) committed, etc. *)
  let loads = ref [||] and n_loads = ref 0 in
  let stores = ref [||] and n_stores = ref 0 in
  let int_dests = ref [||] and n_int = ref 0 in
  let fp_dests = ref [||] and n_fp = ref 0 in
  let push arr count v =
    if !count = Array.length !arr then begin
      let bigger = Array.make (max 64 (2 * !count)) 0 in
      Array.blit !arr 0 bigger 0 !count;
      arr := bigger
    end;
    !arr.(!count) <- v;
    incr count
  in
  let capacity_constraint arr count ~capacity =
    (* The current instruction would be entry [!count]; it must wait for
       entry [!count - capacity] to commit. *)
    if !count >= capacity then commit.(!arr.(!count - capacity)) + 1 else 0
  in
  let redirect = ref 0 in
  let redirect_active = ref false in
  for i = 0 to n - 1 do
    let ins = trace.(i) in
    (* ---- Fetch ---- *)
    let icache_miss = cache_access icache ins.pc_block in
    let buffer_limit =
      if i >= cfg.Config.fetch_buffer then dispatch.(i - cfg.Config.fetch_buffer) else 0
    in
    let earliest_sources =
      [
        ((if !redirect_active then !redirect else 0), Branch);
        (buffer_limit, Frontend);
        ((if icache_miss then (if i = 0 then 0 else fetch.(i - 1)) + l1_miss_penalty else 0), Frontend);
      ]
    in
    let earliest, f_cause =
      List.fold_left
        (fun (t, c) (t', c') -> if t' > t then (t', c') else (t, c))
        (0, Frontend) earliest_sources
    in
    fetch.(i) <- take_slot fetch_slots ~earliest;
    fetch_cause.(i) <- f_cause;
    if !redirect_active && fetch.(i) >= !redirect then redirect_active := false;
    (* ---- Dispatch (rename) ---- *)
    let rob_limit = if i >= cfg.Config.rob_entries then commit.(i - cfg.Config.rob_entries) + 1 else 0 in
    let reg_limit =
      if ins.fp_dest then
        capacity_constraint fp_dests n_fp ~capacity:(max 1 (cfg.Config.fp_phys_regs - arch_regs))
      else
        capacity_constraint int_dests n_int
          ~capacity:(max 1 (cfg.Config.int_phys_regs - arch_regs))
    in
    let lsq_limit =
      match ins.op with
      | Load -> capacity_constraint loads n_loads ~capacity:cfg.Config.ld_queue
      | Store -> capacity_constraint stores n_stores ~capacity:cfg.Config.st_queue
      | _ -> 0
    in
    let front = fetch.(i) + decode_latency in
    let sources =
      [ (front, fetch_cause.(i)); (rob_limit, Hazard); (reg_limit, Hazard); (lsq_limit, Hazard) ]
    in
    let earliest, d_cause =
      List.fold_left
        (fun (t, c) (t', c') -> if t' > t then (t', c') else (t, c))
        (0, fetch_cause.(i))
        sources
    in
    dispatch.(i) <- take_slot dispatch_slots ~earliest;
    dispatch_cause.(i) <- (if earliest = front then fetch_cause.(i) else d_cause);
    (match ins.op with
    | Load -> push loads n_loads i
    | Store -> push stores n_stores i
    | _ -> ());
    if ins.fp_dest then push fp_dests n_fp i else push int_dests n_int i;
    (* ---- Execute ---- *)
    let op1 = if ins.src1_dist > 0 && i - ins.src1_dist >= 0 then complete.(i - ins.src1_dist) else 0 in
    let op2 = if ins.src2_dist > 0 && i - ins.src2_dist >= 0 then complete.(i - ins.src2_dist) else 0 in
    let operands = max op1 op2 in
    let arr = unit_array (units ins.op) in
    let best = ref 0 in
    Array.iteri (fun k t -> if t < arr.(!best) then best := k else ignore t) arr;
    let unit_free = arr.(!best) in
    let start =
      max (dispatch.(i) + 1) (max operands unit_free)
    in
    let exec_cause =
      if start = dispatch.(i) + 1 then dispatch_cause.(i)
      else if start = operands && operands >= unit_free then Hazard
      else Execution
    in
    let dcache_miss = is_mem ins && cache_access dcache ins.addr_block in
    (* Next-line prefetcher: a miss also installs the following block
       (without charging its latency to this instruction). *)
    if dcache_miss && cfg.Config.l1d_prefetch && ins.addr_block >= 0 then
      ignore (cache_access dcache (ins.addr_block + 1));
    let lat = latency ins.op + if dcache_miss then l1_miss_penalty else 0 in
    (* Non-pipelined divide occupies its unit; everything else is
       pipelined with single-cycle initiation. *)
    arr.(!best) <- (if ins.op = Int_div then start + lat else start + 1);
    complete.(i) <- start + lat;
    complete_cause.(i) <-
      (if dcache_miss then Memory
       else if lat > 1 && exec_cause = dispatch_cause.(i) && ins.op <> Int_alu then Execution
       else exec_cause);
    (* ---- Mispredict redirect ---- *)
    if ins.op = Branch && ins.mispredicted then begin
      redirect := complete.(i) + cfg.Config.mispredict_penalty;
      redirect_active := true
    end;
    (* ---- Commit (in order) ---- *)
    let earliest = max (complete.(i) + 1) (if i = 0 then 0 else commit.(i - 1)) in
    commit.(i) <- take_slot commit_slots ~earliest
  done;
  let cycles = commit.(n - 1) + 1 in
  (* ---- TIP-style CPI attribution ---- *)
  let stack = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace stack c 0.) categories;
  let bump c v = Hashtbl.replace stack c (Hashtbl.find stack c +. v) in
  (* Every cycle between consecutive commits is attributed to exactly one
     category, so the stack sums to the CPI: commit-bandwidth and
     in-order cycles count as Base (committing), and cycles spent waiting
     for the instruction to complete go to whatever stalled its
     completion (TIP-style). *)
  bump Base (float_of_int commit.(0));
  for i = 1 to n - 1 do
    let gap = commit.(i) - commit.(i - 1) in
    if gap > 0 then begin
      let cause =
        if commit.(i) = complete.(i) + 1 then complete_cause.(i) else Base
      in
      bump cause (float_of_int gap)
    end
  done;
  let cpi_stack =
    List.map (fun c -> (c, Hashtbl.find stack c /. float_of_int n)) categories
  in
  {
    r_config = cfg;
    r_instructions = n;
    r_cycles = cycles;
    r_ipc = float_of_int n /. float_of_int cycles;
    r_runtime_ms =
      float_of_int cycles /. (cfg.Config.clock_ghz *. 1e9) *. 1e3;
    r_cpi_stack = cpi_stack;
    r_l1d_miss_rate =
      (if dcache.accesses = 0 then 0.
       else float_of_int dcache.misses /. float_of_int dcache.accesses);
    r_l1i_miss_rate =
      (if icache.accesses = 0 then 0.
       else float_of_int icache.misses /. float_of_int icache.accesses);
  }
