(** Dynamic instruction traces for the OoO timing model.  Traces are
    identical across core configurations, so performance differences
    come from the microarchitecture alone. *)

type op_class =
  | Int_alu
  | Int_mul
  | Int_div
  | Fp
  | Load
  | Store
  | Branch

type instr = {
  op : op_class;
  src1_dist : int;  (** instructions back to the first producer; 0 = none *)
  src2_dist : int;
  mispredicted : bool;  (** branches only *)
  pc_block : int;  (** I-cache block the instruction fetches from *)
  addr_block : int;  (** D-cache block for loads/stores; -1 otherwise *)
  fp_dest : bool;  (** consumes an FP physical register *)
}

val nop : instr

(** Execution latency in cycles (L1 hit for loads). *)
val latency : op_class -> int

val l1_miss_penalty : int
val is_mem : instr -> bool
