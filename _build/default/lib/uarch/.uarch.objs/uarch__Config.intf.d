lib/uarch/config.mli:
