lib/uarch/trace.ml:
