lib/uarch/config.ml: List Printf
