lib/uarch/trace.mli:
