lib/uarch/core.ml: Array Config Hashtbl List Trace
