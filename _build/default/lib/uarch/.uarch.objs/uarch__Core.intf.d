lib/uarch/core.mli: Config Trace
