(** Microarchitectural configurations (paper Table I): Large BOOM, the
    Golden-Cove-downsized GC40 BOOM, and a Golden-Cove-class Xeon. *)

type t = {
  name : string;
  fetch_width : int;
  issue_width : int;  (** decode/rename/commit width *)
  rob_entries : int;
  int_phys_regs : int;
  fp_phys_regs : int;
  ld_queue : int;
  st_queue : int;
  fetch_buffer : int;
  l1i_kb : int;
  l1d_kb : int;
  alu_units : int;
  mul_units : int;
  fp_units : int;
  mem_ports : int;
  mispredict_penalty : int;
  clock_ghz : float;
  l1d_prefetch : bool;  (** next-line prefetch on D-cache misses *)
}

(** The evaluation clock (the paper measures everything at the Xeon's
    3.4 GHz). *)
val clock_ghz : float

val large_boom : t
val gc40_boom : t
val gc_xeon : t

(** §V-B synthesis-area estimates (mm², 16nm, core + L1s) by config
    name; [nan] for unknown names. *)
val area_mm2 : string -> float

val all : t list

(** Table I rows: (parameter label, per-config values). *)
val table1 : (string * string list) list
