(* Tests for the compiled bytecode evaluation engine and the
   optimization passes feeding it: bit-exact crosscheck against the
   closure engine (and the naive fixpoint evaluator) over every bundled
   example design and over randomized input sequences; partitioned
   crosscheck under both schedulers; byte-identical probe traces across
   engines (the guarantee that makes --wave-diff meaningful under
   --engine bytecode); and the out-of-range memory-write telemetry
   counter that replaced silent address wrapping. *)

open Firrtl
module FR = Fireripper
module D = Debug

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let designs_dir =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "examples/designs"

(* Every checked-in example design, so a future design is crosschecked
   the moment it lands. *)
let example_designs () =
  Sys.readdir designs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fir")
  |> List.sort compare

let load file = Firrtl.Text.load ~path:(Filename.concat designs_dir file)

(* The names whose values define observable equivalence: every output
   port and every register of the flat module.  (Wires are not included
   on purpose — dead-assignment elimination may legally stop evaluating
   an unobservable wire.) *)
let observables flat =
  List.map (fun p -> p.Ast.pname) (Ast.output_ports flat)
  @ List.filter_map
      (function Ast.Reg { name; _ } -> Some name | _ -> None)
      flat.Ast.comps

let registers flat =
  List.filter_map
    (function Ast.Reg { name; _ } -> Some name | _ -> None)
    flat.Ast.comps

(* ------------------------------------------------------------------ *)
(* Monolithic crosscheck: closure vs bytecode vs fixpoint              *)
(* ------------------------------------------------------------------ *)

(* Runs the full engine matrix cycle-locked over one flat module:
   closure and bytecode under levelized evaluation, plus both engines
   driven by the naive fixpoint sweep.  [drive] sets this cycle's
   inputs on one simulator.  Every observable must agree with the
   closure reference on every cycle. *)
let crosscheck_matrix ~what ~flat ~cycles ~drive =
  let names = observables flat in
  let mk engine = Rtlsim.Sim.create ~engine flat in
  let reference = mk Rtlsim.Sim.Closure in
  let others =
    [
      ("bytecode", mk Rtlsim.Sim.Bytecode, Rtlsim.Sim.eval_comb);
      ("closure-fixpoint", mk Rtlsim.Sim.Closure, Rtlsim.Sim.eval_comb_fixpoint);
      ("bytecode-fixpoint", mk Rtlsim.Sim.Bytecode, Rtlsim.Sim.eval_comb_fixpoint);
    ]
  in
  for c = 1 to cycles do
    drive reference c;
    List.iter (fun (_, s, _) -> drive s c) others;
    Rtlsim.Sim.eval_comb reference;
    List.iter (fun (_, s, eval) -> eval s) others;
    List.iter
      (fun name ->
        let v = Rtlsim.Sim.get reference name in
        List.iter
          (fun (label, s, _) ->
            check_int
              (Printf.sprintf "%s: %s (%s) @%d" what name label c)
              v (Rtlsim.Sim.get s name))
          others)
      names;
    Rtlsim.Sim.step_seq reference;
    List.iter (fun (_, s, _) -> Rtlsim.Sim.step_seq s) others
  done;
  (* Architectural state (registers AND memories) must agree too. *)
  let st = Rtlsim.Sim.state_to_string (Rtlsim.Sim.save_state reference) in
  List.iter
    (fun (label, s, _) ->
      check_string
        (Printf.sprintf "%s: final state (%s)" what label)
        st
        (Rtlsim.Sim.state_to_string (Rtlsim.Sim.save_state s)))
    others

let test_examples_crosscheck () =
  let designs = example_designs () in
  check_bool "example designs present" true (designs <> []);
  List.iter
    (fun file ->
      crosscheck_matrix ~what:file ~flat:(Flatten.flatten (load file)) ~cycles:120
        ~drive:(fun _ _ -> ()))
    designs

(* A closed design exercising every operator class through an input
   boundary: arithmetic with wrap-around, division by a possibly-zero
   divisor, dynamic shifts, comparisons, slices, concatenation,
   reductions, an enable-gated register, and a non-power-of-two memory
   whose write address can exceed the depth. *)
let alu_flat () =
  let b = Builder.create "alu" in
  let x = Builder.input b "x" 8 in
  let y = Builder.input b "y" 8 in
  let sel = Builder.input b "sel" 2 in
  let lit8 v = Ast.Lit { value = v; width = 8 } in
  let outw name w e =
    Builder.output b name w;
    Builder.connect b name e
  in
  outw "o_add" 8 (Ast.Binop (Ast.Add, x, y));
  outw "o_sub" 8 (Ast.Binop (Ast.Sub, x, y));
  outw "o_mul" 8 (Ast.Binop (Ast.Mul, x, y));
  outw "o_div" 8 (Ast.Binop (Ast.Div, x, y));
  outw "o_rem" 8 (Ast.Binop (Ast.Rem, x, y));
  outw "o_shl" 8 (Ast.Binop (Ast.Shl, x, Ast.Bits { e = y; hi = 1; lo = 0 }));
  outw "o_shr" 8 (Ast.Binop (Ast.Shr, x, Ast.Bits { e = y; hi = 2; lo = 0 }));
  outw "o_logic" 8
    (Ast.Binop (Ast.Xor, Ast.Binop (Ast.And, x, y), Ast.Binop (Ast.Or, x, y)));
  outw "o_cmp" 2 (Ast.Cat (Ast.Binop (Ast.Lt, x, y), Ast.Binop (Ast.Eq, x, y)));
  outw "o_mux" 8
    (Ast.Mux
       ( Ast.Binop (Ast.Ge, x, y),
         Ast.Binop (Ast.Add, x, lit8 1),
         Ast.Binop (Ast.Sub, y, lit8 1) ));
  outw "o_bits" 6 (Ast.Bits { e = Ast.Binop (Ast.Mul, x, y); hi = 7; lo = 2 });
  outw "o_cat" 8
    (Ast.Cat (Ast.Bits { e = x; hi = 3; lo = 0 }, Ast.Bits { e = y; hi = 3; lo = 0 }));
  outw "o_red" 3
    (Ast.Cat
       ( Ast.Unop (Ast.Orr, x),
         Ast.Cat (Ast.Unop (Ast.Andr, y), Ast.Unop (Ast.Xorr, Ast.Binop (Ast.Xor, x, y)))
       ));
  outw "o_not" 8 (Ast.Binop (Ast.Xor, Ast.Unop (Ast.Not, x), Ast.Unop (Ast.Neg, y)));
  let acc = Builder.reg b ~init:7 "acc" 8 in
  Builder.reg_next b "acc" (Ast.Binop (Ast.Add, acc, Ast.Binop (Ast.Xor, x, y)));
  let gated = Builder.reg b ~init:1 "gated" 8 in
  Builder.reg_next b
    ~enable:(Ast.Binop (Ast.Eq, sel, Ast.Lit { value = 1; width = 2 }))
    "gated"
    (Ast.Binop (Ast.Add, gated, x));
  let m = Builder.mem b "m" ~width:8 ~depth:5 in
  (* Address range 0..7 over depth 5: random runs hit the wrap path in
     both engines, which must agree on where the value lands. *)
  Builder.mem_write b m
    ~addr:(Ast.Bits { e = x; hi = 2; lo = 0 })
    ~data:y
    ~enable:(Ast.Unop (Ast.Orr, sel));
  outw "o_mem" 8 (Ast.Read { mem = m; addr = Ast.Bits { e = y; hi = 2; lo = 0 } });
  Builder.finish b

let prop_random_inputs_crosscheck =
  QCheck.Test.make ~name:"engines: random input sequences are bit-identical" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (triple (int_bound 255) (int_bound 255) (int_bound 3)))
    (fun inputs ->
      let stim = Array.of_list inputs in
      crosscheck_matrix ~what:"alu" ~flat:(alu_flat ()) ~cycles:(Array.length stim)
        ~drive:(fun s c ->
          let x, y, sel = stim.(c - 1) in
          Rtlsim.Sim.set_input s "x" x;
          Rtlsim.Sim.set_input s "y" y;
          Rtlsim.Sim.set_input s "sel" sel);
      true)

let prop_random_circuits_crosscheck =
  (* Random hierarchical circuits (same generator as the partition
     equivalence properties), flattened and run through the full engine
     matrix. *)
  QCheck.Test.make ~name:"engines: random circuits are bit-identical" ~count:25
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, extra) ->
      let circuit = Extensions_tests.random_circuit (seed + 11) (4 + extra) in
      crosscheck_matrix ~what:"random" ~flat:(Flatten.flatten circuit) ~cycles:40
        ~drive:(fun _ _ -> ());
      true)

(* Cone evaluation must agree across engines: evaluating just the cone
   of one output (with only that cone's inputs fresh) yields the same
   value either way. *)
let test_cone_eval_crosscheck () =
  let flat = alu_flat () in
  let a = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Closure flat in
  let b = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode flat in
  let roots = [ "o_mux"; "o_mem" ] in
  let ca = Rtlsim.Sim.make_cone_eval a roots in
  let cb = Rtlsim.Sim.make_cone_eval b roots in
  List.iteri
    (fun i (x, y) ->
      Rtlsim.Sim.set_input a "x" x;
      Rtlsim.Sim.set_input a "y" y;
      Rtlsim.Sim.set_input b "x" x;
      Rtlsim.Sim.set_input b "y" y;
      ca ();
      cb ();
      List.iter
        (fun r ->
          check_int
            (Printf.sprintf "cone %s #%d" r i)
            (Rtlsim.Sim.get a r) (Rtlsim.Sim.get b r))
        roots)
    [ (3, 200); (255, 0); (0, 255); (17, 17); (128, 5) ]

(* ------------------------------------------------------------------ *)
(* Partitioned crosscheck: both engines, both schedulers               *)
(* ------------------------------------------------------------------ *)

let first_instance circuit =
  match Hierarchy.instances (Ast.main_module circuit) with
  | (name, _) :: _ -> name
  | [] -> failwith "no instances to partition"

let plan_of circuit =
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Instances [ [ first_instance circuit ] ];
    }
  in
  FR.Compile.compile ~config circuit

let partitioned_engines_agree file scheduler =
  let circuit = load file in
  let flat = Flatten.flatten circuit in
  let plan = plan_of circuit in
  let mono = Rtlsim.Sim.of_circuit ~engine:Rtlsim.Sim.Closure circuit in
  let hc = FR.Runtime.instantiate ~scheduler ~engine:Rtlsim.Sim.Closure plan in
  let hb = FR.Runtime.instantiate ~scheduler ~engine:Rtlsim.Sim.Bytecode plan in
  let cycles = 80 in
  for _ = 1 to cycles do
    Rtlsim.Sim.step mono
  done;
  FR.Runtime.run hc ~cycles;
  FR.Runtime.run hb ~cycles;
  let what = Printf.sprintf "%s (%s)" file (Libdn.Scheduler.name scheduler) in
  (* The two partitioned handles carry identical architectural state,
     and both track the closure-engine monolithic truth. *)
  check_string (what ^ ": snapshots agree across engines")
    (FR.Runtime.save_to_string hc)
    (FR.Runtime.save_to_string hb);
  List.iter
    (fun reg ->
      let u = FR.Runtime.locate hb reg in
      check_int
        (what ^ ": " ^ reg)
        (Rtlsim.Sim.get mono reg)
        (Rtlsim.Sim.get (FR.Runtime.sim_of hb u) reg))
    (registers flat)

let test_partitioned_crosscheck () =
  List.iter
    (fun file ->
      List.iter
        (fun scheduler -> partitioned_engines_agree file scheduler)
        [ Libdn.Scheduler.Sequential; Libdn.Scheduler.Parallel ])
    (example_designs ())

let prop_random_partitioned_engines =
  (* Random circuits, partitioned: the closure and bytecode handles end
     every run with byte-identical whole-simulation snapshots. *)
  QCheck.Test.make ~name:"engines: random partitioned circuits snapshot-identical"
    ~count:10
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, extra) ->
      let n = 4 + extra in
      let circuit = Extensions_tests.random_circuit (seed + 23) n in
      let config =
        {
          FR.Spec.default_config with
          FR.Spec.selection = FR.Spec.Instances [ [ "i0" ] ];
          FR.Spec.allow_long_chains = true;
        }
      in
      let plan = FR.Compile.compile ~config circuit in
      let hc = FR.Runtime.instantiate ~engine:Rtlsim.Sim.Closure plan in
      let hb = FR.Runtime.instantiate ~engine:Rtlsim.Sim.Bytecode plan in
      FR.Runtime.run hc ~cycles:30;
      FR.Runtime.run hb ~cycles:30;
      FR.Runtime.save_to_string hc = FR.Runtime.save_to_string hb)

(* ------------------------------------------------------------------ *)
(* Probe traces: byte-identical across engines                         *)
(* ------------------------------------------------------------------ *)

let test_probe_trace_identity () =
  (* The canonical probe-only VCD of a bytecode run is byte-identical
     to the closure run's — the optimization pipeline may not perturb
     any watched value on any cycle.  Probing every register keeps this
     meaningful for any future design. *)
  List.iter
    (fun file ->
      let flat = Flatten.flatten (load file) in
      let probes = registers flat in
      let a = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Closure flat in
      let b = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode flat in
      let ca = D.Capture.of_sim a ~probes in
      let cb = D.Capture.of_sim b ~probes in
      for c = 1 to 60 do
        Rtlsim.Sim.step a;
        Rtlsim.Sim.step b;
        D.Capture.sample ca ~cycle:c;
        D.Capture.sample cb ~cycle:c
      done;
      check_string
        (file ^ ": probe trace identical across engines")
        (D.Capture.probe_trace ca) (D.Capture.probe_trace cb))
    (example_designs ())

let test_wave_diff_under_bytecode () =
  (* The end-to-end divergence hunt (what the CLI's --wave-diff runs)
     certifies the bytecode-engined partitioned run against its own
     monolithic reference. *)
  List.iter
    (fun file ->
      let circuit = load file in
      let flat = Flatten.flatten circuit in
      check_bool
        (file ^ ": wave_diff clean under bytecode")
        true
        (Fireaxe.wave_diff ~engine:Rtlsim.Sim.Bytecode
           ~circuit:(fun () -> circuit)
           ~selection:(FR.Spec.Instances [ [ first_instance circuit ] ])
           ~probes:(registers flat) ~cycles:50 ()
        = None))
    (example_designs ())

(* ------------------------------------------------------------------ *)
(* Out-of-range memory writes: counted, not silent                     *)
(* ------------------------------------------------------------------ *)

let oob_sim engine telemetry =
  let b = Builder.create "oob" in
  let waddr = Builder.input b "waddr" 4 in
  let wdata = Builder.input b "wdata" 8 in
  let wen = Builder.input b "wen" 1 in
  let m = Builder.mem b "m" ~width:8 ~depth:4 in
  Builder.mem_write b m ~addr:waddr ~data:wdata ~enable:wen;
  Builder.output b "probe" 8;
  Builder.connect b "probe" (Ast.Read { mem = m; addr = Ast.Lit { value = 0; width = 2 } });
  Rtlsim.Sim.create ~engine ~telemetry (Builder.finish b)

let oob_write_counts engine () =
  let telemetry = Telemetry.create () in
  let s = oob_sim engine telemetry in
  let wrapped = Telemetry.counter telemetry "rtlsim.mem.addr_wrapped" in
  let write ~addr ~data ~en =
    Rtlsim.Sim.set_input s "waddr" addr;
    Rtlsim.Sim.set_input s "wdata" data;
    Rtlsim.Sim.set_input s "wen" en;
    Rtlsim.Sim.step s
  in
  write ~addr:3 ~data:42 ~en:1;
  check_int "in-range write does not count" 0 (Telemetry.counter_value wrapped);
  check_int "in-range write lands" 42 (Rtlsim.Sim.peek_mem s "m" 3);
  write ~addr:5 ~data:99 ~en:1;
  check_int "out-of-range write counts" 1 (Telemetry.counter_value wrapped);
  check_int "value lands at addr mod depth" 99 (Rtlsim.Sim.peek_mem s "m" 1);
  (* A disabled write never fires, so its address is never judged. *)
  write ~addr:15 ~data:7 ~en:0;
  check_int "disabled write does not count" 1 (Telemetry.counter_value wrapped);
  check_int "disabled write does not land" 42 (Rtlsim.Sim.peek_mem s "m" 3);
  write ~addr:13 ~data:8 ~en:1;
  check_int "each wrapped write counts once" 2 (Telemetry.counter_value wrapped);
  check_int "13 mod 4 = 1" 8 (Rtlsim.Sim.peek_mem s "m" 1)

(* ------------------------------------------------------------------ *)
(* Optimization passes                                                 *)
(* ------------------------------------------------------------------ *)

let src_of m dst =
  match
    List.find_map
      (function
        | Ast.Connect { dst = d; src } when d = dst -> Some src
        | _ -> None)
      m.Ast.stmts
  with
  | Some src -> src
  | None -> failwith ("no connect for " ^ dst)

let test_const_fold () =
  let b = Builder.create "cf" in
  let x = Builder.input b "x" 8 in
  let lit8 v = Ast.Lit { value = v; width = 8 } in
  Builder.output b "folded" 8;
  Builder.connect b "folded" (Ast.Binop (Ast.Add, lit8 200, lit8 100));
  Builder.output b "identity" 8;
  Builder.connect b "identity" (Ast.Binop (Ast.Add, x, lit8 0));
  Builder.output b "mux" 8;
  Builder.connect b "mux" (Ast.Mux (Ast.Lit { value = 1; width = 1 }, x, lit8 7));
  Builder.output b "nested" 8;
  Builder.connect b "nested"
    (Ast.Binop (Ast.Xor, x, Ast.Binop (Ast.Mul, lit8 6, lit8 7)));
  let m = Opt.fold_module (Builder.finish b) in
  check_bool "literal add folds with wrap-around" true
    (src_of m "folded" = Ast.Lit { value = 300 land 255; width = 8 });
  check_bool "x + 0 reduces to x" true (src_of m "identity" = Ast.Ref "x");
  check_bool "mux on literal condition picks the arm" true (src_of m "mux" = Ast.Ref "x");
  check_bool "literal subexpressions fold in place" true
    (src_of m "nested" = Ast.Binop (Ast.Xor, Ast.Ref "x", Ast.Lit { value = 42; width = 8 }))

let test_share_wires () =
  let b = Builder.create "cse" in
  let x = Builder.input b "x" 8 in
  let common = Ast.Binop (Ast.Xor, x, Ast.Lit { value = 0xAA; width = 8 }) in
  let w1 = Builder.wire b "w1" 8 in
  Builder.connect b "w1" common;
  ignore (Builder.wire b "w2" 8);
  Builder.connect b "w2" common;
  Builder.output b "o1" 8;
  Builder.connect b "o1" w1;
  Builder.output b "o2" 8;
  Builder.connect b "o2" (Ast.Ref "w2");
  let m = Opt.share_wires (Builder.finish b) in
  check_bool "duplicate source becomes a ref to the first wire" true
    (src_of m "w2" = Ast.Ref "w1");
  check_bool "first occurrence keeps its expression" true (src_of m "w1" = common)

let test_dead_assigns () =
  let build () =
    let b = Builder.create "dce" in
    let x = Builder.input b "x" 8 in
    let live = Builder.wire b "live" 8 in
    Builder.connect b "live" (Ast.Binop (Ast.Add, x, Ast.Lit { value = 1; width = 8 }));
    ignore (Builder.wire b "dead" 8);
    Builder.connect b "dead" (Ast.Binop (Ast.Mul, x, Ast.Lit { value = 3; width = 8 }));
    Builder.output b "o" 8;
    Builder.connect b "o" live;
    Builder.finish b
  in
  let has_name m n =
    List.exists (function Ast.Wire { name; _ } -> name = n | _ -> false) m.Ast.comps
  in
  let m = Opt.dead_assigns ~roots:[] (build ()) in
  check_bool "unobservable wire dropped" false (has_name m "dead");
  check_bool "live wire kept" true (has_name m "live");
  let kept = Opt.dead_assigns ~roots:[ "dead" ] (build ()) in
  check_bool "rooted wire survives" true (has_name kept "dead");
  check_bool "unknown root rejected" true
    (try
       ignore (Opt.dead_assigns ~roots:[ "nope" ] (build ()));
       false
     with Opt.Opt_error _ -> true)

let prop_optimize_preserves_observables =
  (* The whole pipeline (fold + CSE) is value-preserving under the
     closure engine itself — optimization correctness separated from
     bytecode-compiler correctness. *)
  QCheck.Test.make ~name:"opt: optimized module is observationally identical" ~count:25
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, extra) ->
      let flat =
        Flatten.flatten (Extensions_tests.random_circuit (seed + 37) (4 + extra))
      in
      let a = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Closure flat in
      let b = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Closure (Opt.optimize flat) in
      let names = observables flat in
      let ok = ref true in
      for _ = 1 to 40 do
        Rtlsim.Sim.eval_comb a;
        Rtlsim.Sim.eval_comb b;
        List.iter
          (fun n -> if Rtlsim.Sim.get a n <> Rtlsim.Sim.get b n then ok := false)
          names;
        Rtlsim.Sim.step_seq a;
        Rtlsim.Sim.step_seq b
      done;
      !ok)

let suite =
  [
    ( "rtlsim.engine",
      [
        Alcotest.test_case "example designs crosscheck" `Quick test_examples_crosscheck;
        Alcotest.test_case "cone evaluation crosscheck" `Quick test_cone_eval_crosscheck;
        Alcotest.test_case "OOB write counted (closure)" `Quick
          (oob_write_counts Rtlsim.Sim.Closure);
        Alcotest.test_case "OOB write counted (bytecode)" `Quick
          (oob_write_counts Rtlsim.Sim.Bytecode);
        QCheck_alcotest.to_alcotest prop_random_inputs_crosscheck;
        QCheck_alcotest.to_alcotest prop_random_circuits_crosscheck;
      ] );
    ( "runtime.engine",
      [
        Alcotest.test_case "partitioned crosscheck, both schedulers" `Quick
          test_partitioned_crosscheck;
        Alcotest.test_case "probe traces identical across engines" `Quick
          test_probe_trace_identity;
        Alcotest.test_case "wave_diff clean under bytecode" `Quick
          test_wave_diff_under_bytecode;
        QCheck_alcotest.to_alcotest prop_random_partitioned_engines;
      ] );
    ( "firrtl.opt",
      [
        Alcotest.test_case "constant folding" `Quick test_const_fold;
        Alcotest.test_case "wire CSE" `Quick test_share_wires;
        Alcotest.test_case "dead assignment elimination" `Quick test_dead_assigns;
        QCheck_alcotest.to_alcotest prop_optimize_preserves_observables;
      ] );
  ]
