(* Tests for the vectorized N-lane evaluation substrate: an N-lane
   bytecode simulation (one compiled instruction stream, N value images
   advanced in lockstep) must be bit-exact against N INDEPENDENT
   single-lane simulations fed the same per-lane stimuli — per-cycle
   observables, per-lane memories, and final architectural state.  Plus
   the compile-invariance properties backing the design: the optimizer
   pipeline is idempotent, and the lane count never changes the
   compiled instruction stream (lanes scale data, not code). *)

open Firrtl
module E = Engine_tests

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Canonical state text: [save_state] renders memories in hash-table
   fold order, which legitimately differs between a sim's own tables
   and the per-lane views built from them — sort before comparing. *)
let canon_state st =
  Rtlsim.Sim.state_to_string
    { st with Rtlsim.Sim.s_mems = List.sort compare st.Rtlsim.Sim.s_mems }

(* Deterministic per-lane stimulus: distinct across lanes, cycles and
   input ports, so every lane computes on genuinely different data. *)
let stim ~lane ~cycle ~i mask = (((lane * 37) + (cycle * 13) + (i * 7)) * 31 + 5) land mask

let input_masks flat =
  List.map
    (fun p -> (p.Ast.pname, (1 lsl min p.Ast.pwidth 16) - 1))
    (Ast.input_ports flat)

(* The core crosscheck: one [n]-lane bytecode sim vs [n] independent
   single-lane sims, cycle-locked, every observable compared on every
   cycle and the full per-lane state at the end. *)
let crosscheck_lanes ~what ~flat ~cycles ?(poke = fun _ ~lane:_ _ -> ()) () =
  let n = 4 in
  let vec = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode ~lanes:n flat in
  check_int (what ^ ": lane count") n (Rtlsim.Sim.lanes vec);
  let solo = Array.init n (fun _ -> Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode flat) in
  for k = 0 to n - 1 do
    poke vec ~lane:k k;
    poke solo.(k) ~lane:0 k
  done;
  let inputs = input_masks flat in
  let names = E.observables flat in
  for c = 1 to cycles do
    for k = 0 to n - 1 do
      List.iteri
        (fun i (name, mask) ->
          let v = stim ~lane:k ~cycle:c ~i mask in
          Rtlsim.Sim.set_input ~lane:k vec name v;
          Rtlsim.Sim.set_input solo.(k) name v)
        inputs
    done;
    Rtlsim.Sim.eval_comb vec;
    Array.iter Rtlsim.Sim.eval_comb solo;
    for k = 0 to n - 1 do
      List.iter
        (fun name ->
          check_int
            (Printf.sprintf "%s: %s lane %d @%d" what name k c)
            (Rtlsim.Sim.get solo.(k) name)
            (Rtlsim.Sim.get ~lane:k vec name))
        names
    done;
    Rtlsim.Sim.step_seq vec;
    Array.iter Rtlsim.Sim.step_seq solo
  done;
  for k = 0 to n - 1 do
    check_string
      (Printf.sprintf "%s: final state lane %d" what k)
      (canon_state (Rtlsim.Sim.save_state solo.(k)))
      (canon_state (Rtlsim.Sim.save_state ~lane:k vec))
  done

let test_lanes_examples () =
  let designs = E.example_designs () in
  check_bool "example designs present" true (designs <> []);
  List.iter
    (fun file ->
      crosscheck_lanes ~what:file ~flat:(Flatten.flatten (E.load file)) ~cycles:100 ())
    designs

let test_lanes_alu () =
  (* The operator-torture design, plus lane-distinct initial memory
     contents loaded through the per-lane poke view. *)
  crosscheck_lanes ~what:"alu" ~flat:(E.alu_flat ()) ~cycles:80
    ~poke:(fun sim ~lane k ->
      for a = 0 to 4 do
        Rtlsim.Sim.poke_mem ~lane sim "m" a ((k * 11) + a + 3)
      done)
    ()

let test_lane_checkpoint () =
  (* [Sim.checkpoint] must capture and restore EVERY lane, not just
     lane 0: run divergent lanes, checkpoint, run on, roll back, and
     every lane's state must match its captured text. *)
  let flat = E.alu_flat () in
  let n = 3 in
  let sim = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode ~lanes:n flat in
  let drive c =
    for k = 0 to n - 1 do
      Rtlsim.Sim.set_input ~lane:k sim "x" ((k * 19) + c);
      Rtlsim.Sim.set_input ~lane:k sim "y" ((k * 5) + (c * 3));
      Rtlsim.Sim.set_input ~lane:k sim "sel" (k land 3)
    done;
    Rtlsim.Sim.eval_comb sim;
    Rtlsim.Sim.step_seq sim
  in
  for c = 1 to 20 do
    drive c
  done;
  let saved = Array.init n (fun k -> canon_state (Rtlsim.Sim.save_state ~lane:k sim)) in
  let rollback = Rtlsim.Sim.checkpoint sim in
  for c = 21 to 40 do
    drive c
  done;
  check_bool "state moved on" true
    (canon_state (Rtlsim.Sim.save_state ~lane:1 sim) <> saved.(1));
  rollback ();
  for k = 0 to n - 1 do
    check_string
      (Printf.sprintf "checkpoint restores lane %d" k)
      saved.(k)
      (canon_state (Rtlsim.Sim.save_state ~lane:k sim))
  done

let test_closure_rejects_lanes () =
  check_bool "closure + lanes>1 is refused" true
    (try
       ignore (Rtlsim.Sim.create ~engine:Rtlsim.Sim.Closure ~lanes:2 (E.alu_flat ()));
       false
     with Rtlsim.Sim.Sim_error _ -> true)

(* ------------------------------------------------------------------ *)
(* FAME-5 threads as engine lanes                                      *)
(* ------------------------------------------------------------------ *)

(* A small tile with an input-dependent register, duplicated N times:
   the laned (bytecode) FAME-5 context and the bank-swapping (closure)
   fallback must agree thread for thread, cycle for cycle. *)
let tile_flat () =
  let b = Builder.create "tile" in
  let x = Builder.input b "x" 8 in
  let acc = Builder.reg b ~init:0 "acc" 8 in
  Builder.reg_next b "acc" (Ast.Binop (Ast.Add, acc, x));
  Builder.output b "out" 8;
  Builder.connect b "out" (Ast.Binop (Ast.Xor, acc, x));
  Builder.finish b

let test_fame5_laned_vs_banked () =
  let flat = tile_flat () in
  let insts = [ "t0"; "t1"; "t2"; "t3" ] in
  let mk engine = Goldengate.Fame5.create ~engine ~flat ~insts () in
  let laned = mk Rtlsim.Sim.Bytecode in
  let banked = mk Rtlsim.Sim.Closure in
  check_bool "bytecode context is laned" true (Goldengate.Fame5.laned laned);
  check_bool "closure context is banked" false (Goldengate.Fame5.laned banked);
  let ea = Goldengate.Fame5.engine laned in
  let eb = Goldengate.Fame5.engine banked in
  (* The FAME-5 engine defers evaluation into step_seq (one vectorized
     pass per target cycle); outputs are latched during the step. *)
  for c = 1 to 50 do
    List.iteri
      (fun k inst ->
        let v = stim ~lane:k ~cycle:c ~i:0 255 in
        ea.Libdn.Engine.set_input (inst ^ "#x") v;
        eb.Libdn.Engine.set_input (inst ^ "#x") v)
      insts;
    ea.Libdn.Engine.step_seq ();
    eb.Libdn.Engine.step_seq ();
    List.iteri
      (fun k inst ->
        check_int
          (Printf.sprintf "fame5 thread %d out @%d" k c)
          (eb.Libdn.Engine.get (inst ^ "#out"))
          (ea.Libdn.Engine.get (inst ^ "#out")))
      insts
  done;
  (* Per-thread state read through with_bank agrees too. *)
  List.iteri
    (fun k _ ->
      check_int
        (Printf.sprintf "fame5 thread %d acc" k)
        (Goldengate.Fame5.with_bank banked k (fun sim lane ->
             Rtlsim.Sim.get ~lane sim "acc"))
        (Goldengate.Fame5.with_bank laned k (fun sim lane ->
             Rtlsim.Sim.get ~lane sim "acc")))
    insts

(* ------------------------------------------------------------------ *)
(* Compile invariance                                                  *)
(* ------------------------------------------------------------------ *)

let prop_opt_idempotent =
  (* Running the optimizer pipeline twice is the same as running it
     once — no pass un-does or re-triggers another on its own output. *)
  QCheck.Test.make ~name:"opt: pipeline is idempotent" ~count:40
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, extra) ->
      let flat =
        Flatten.flatten (Extensions_tests.random_circuit (seed + 71) (4 + extra))
      in
      let once = Opt.optimize flat in
      once = Opt.optimize once)

let prop_lanes_do_not_change_program =
  (* Lanes scale the data images, never the code: the compiled
     instruction stream (hashed over comb + seq code) is identical for
     every lane count, and the engine reports the requested width. *)
  QCheck.Test.make ~name:"lanes: compiled instruction stream is lane-invariant" ~count:20
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, extra) ->
      let flat =
        Flatten.flatten (Extensions_tests.random_circuit (seed + 53) (4 + extra))
      in
      let hash lanes =
        let sim = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode ~lanes flat in
        if Rtlsim.Sim.lanes sim <> lanes then failwith "wrong lane count";
        match Rtlsim.Sim.bytecode_program_hash sim with
        | Some h -> h
        | None -> failwith "no bytecode program"
      in
      let h1 = hash 1 in
      List.for_all (fun n -> hash n = h1) [ 2; 4; 8 ])

let test_program_hash_examples () =
  List.iter
    (fun file ->
      let flat = Flatten.flatten (E.load file) in
      let hash lanes =
        Rtlsim.Sim.bytecode_program_hash
          (Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode ~lanes flat)
      in
      let h1 = hash 1 in
      check_bool (file ^ ": program hash present") true (h1 <> None);
      List.iter
        (fun n -> check_bool (Printf.sprintf "%s: hash @%d lanes" file n) true (hash n = h1))
        [ 2; 8 ])
    (E.example_designs ())

let suite =
  [
    ( "rtlsim.lanes",
      [
        Alcotest.test_case "example designs: N-lane vs N independent sims" `Quick
          test_lanes_examples;
        Alcotest.test_case "alu: divergent stimuli and per-lane memories" `Quick
          test_lanes_alu;
        Alcotest.test_case "checkpoint covers every lane" `Quick test_lane_checkpoint;
        Alcotest.test_case "closure engine rejects lanes>1" `Quick
          test_closure_rejects_lanes;
        Alcotest.test_case "fame5: laned vs banked threads agree" `Quick
          test_fame5_laned_vs_banked;
        Alcotest.test_case "program hash lane-invariant on examples" `Quick
          test_program_hash_examples;
        QCheck_alcotest.to_alcotest prop_opt_idempotent;
        QCheck_alcotest.to_alcotest prop_lanes_do_not_change_program;
      ] );
  ]
