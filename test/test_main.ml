(* Aggregated test entry point: every library contributes a [suite]
   value (a list of alcotest suites) from its companion *_tests module. *)

let () =
  Alcotest.run "fireaxe"
    (List.concat
       [
         Firrtl_tests.suite;
         Rtlsim_tests.suite;
         Libdn_tests.suite;
         Socgen_tests.suite;
         Fireripper_tests.suite;
         Noc_tests.suite;
         Des_tests.suite;
         Platform_tests.suite;
         Uarch_tests.suite;
         System_tests.suite;
         Extensions_tests.suite;
         Text_tests.suite;
         Fame1_rtl_tests.suite;
         Mmio_tests.suite;
         Robustness_tests.suite;
         Nic_tests.suite;
         Multiclock_tests.suite;
         Dram_tests.suite;
         Tracer_tests.suite;
         Snapshot_tests.suite;
         Kite5_tests.suite;
         Fame5_rtl_tests.suite;
         Assertions_tests.suite;
         Printf_tests.suite;
         Remote_tests.suite;
         Scheduler_tests.suite;
         Telemetry_tests.suite;
         Resilience_tests.suite;
         Debug_tests.suite;
         Engine_tests.suite;
         Lane_tests.suite;
         Profile_tests.suite;
         Service_tests.suite;
         Wavestore_tests.suite;
         Batch_tests.suite;
       ])
