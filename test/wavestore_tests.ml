(* Tests for the compact indexed binary waveform store
   ([fireaxe-wave-1]): the varint/delta codec, property-based
   write→read round trips over random traces, index-seek [values_at]
   agreement with a linear-scan reference, lossless [to_vcd] (byte
   identical to [Capture.probe_trace] on every example design, both
   monolithic and partitioned captures), the store/VCD semantic diffs,
   and corruption detection. *)

module FR = Fireripper
module D = Debug
module W = Debug.Wavestore

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let designs_dir =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "examples/designs"

let with_tmpdir f =
  let dir = Filename.temp_file "fireaxe_wave" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_varint_roundtrip () =
  let round v =
    let b = Buffer.create 16 in
    W.Codec.add_varint b v;
    let s = Buffer.contents b in
    let pos = ref 0 in
    let got = W.Codec.read_varint s pos in
    check_bool (Printf.sprintf "varint %d" v) true (got = v && !pos = String.length s)
  in
  List.iter round
    [ 0; 1; 127; 128; 300; 16384; 0x7fffffff; max_int; min_int; -1; -12345 ];
  (* A truncated varint must be rejected, not read past the end. *)
  check_bool "truncated varint raises" true
    (try
       ignore (W.Codec.read_varint "\xff\xff" (ref 0));
       false
     with W.Corrupt _ -> true)

let test_delta_roundtrip_qcheck () =
  let prop (cycle0, raw) =
    let cycle = abs cycle0 in
    (* distinct ascending signal indices, values as given *)
    let changes = List.mapi (fun i v -> (i, abs v)) raw in
    let s = W.Codec.encode_delta ~cycle ~changes in
    W.Codec.decode_delta s = (cycle, changes)
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"delta record round-trip"
       QCheck.(pair small_int (small_list int))
       prop)

(* ------------------------------------------------------------------ *)
(* Random traces: write → read round trip                              *)
(* ------------------------------------------------------------------ *)

(* Massages a qcheck seed into a well-formed trace: [nsig] signals,
   strictly increasing cycles, each row holding the previous value for
   signals the seed row does not cover (so quiet signals and fully
   quiet samples both occur). *)
let trace_of_seed (nsig0, rows) =
  let nsig = 1 + (abs nsig0 mod 5) in
  let prev = Array.make nsig 0 in
  let cycle = ref 0 in
  let trace =
    List.map
      (fun (gap, vals) ->
        cycle := !cycle + 1 + (abs gap mod 4);
        List.iteri (fun i v -> if i < nsig then prev.(i) <- abs v mod 1024) vals;
        (!cycle, Array.copy prev))
      rows
  in
  (nsig, trace)

let signals_of nsig = List.init nsig (fun i -> (Printf.sprintf "s%d" i, 16))

let store_of ?keyframe_every nsig trace =
  let w = W.Writer.create ?keyframe_every ~signals:(signals_of nsig) () in
  List.iter (fun (c, vals) -> W.Writer.sample w ~cycle:c vals) trace;
  w

(* The semantic ground truth: per-signal change lists where the first
   sample opens every list and later samples contribute only actual
   value changes (quiet samples contribute nothing — the store omits
   their records entirely). *)
let model_changes nsig trace =
  let out = Array.make nsig [] in
  let prev = Array.make nsig min_int in
  let first = ref true in
  List.iter
    (fun (c, vals) ->
      Array.iteri
        (fun i v ->
          if !first || v <> prev.(i) then out.(i) <- (c, v) :: out.(i);
          prev.(i) <- v)
        vals;
      first := false)
    trace;
  Array.map List.rev out

let test_roundtrip_qcheck () =
  let gen =
    QCheck.(
      pair small_int (list_of_size (QCheck.Gen.int_range 0 80) (pair small_int (small_list int))))
  in
  let prop seed =
    let nsig, trace = trace_of_seed seed in
    let w = store_of ~keyframe_every:8 nsig trace in
    let r = W.Reader.of_string (W.Writer.contents w) in
    let ok_meta =
      W.Reader.sample_count r = List.length trace
      && W.Reader.signals r = Array.of_list (signals_of nsig)
      && W.Reader.first_cycle r
         = (match trace with [] -> None | (c, _) :: _ -> Some c)
      && W.Reader.last_cycle r
         = (match List.rev trace with [] -> None | (c, _) :: _ -> Some c)
    in
    ok_meta && W.Reader.change_lists r = model_changes nsig trace
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:60 ~name:"store round-trip over random traces" gen prop)

let test_slice_self_contained () =
  let gen =
    QCheck.(
      pair small_int (list_of_size (QCheck.Gen.int_range 1 60) (pair small_int (small_list int))))
  in
  let prop seed =
    let nsig, trace = trace_of_seed seed in
    let w = store_of ~keyframe_every:8 nsig trace in
    let r = W.Reader.of_string (W.Writer.contents w) in
    let last = match W.Reader.last_cycle r with Some c -> c | None -> 0 in
    let lo = last / 3 and hi = 2 * last / 3 in
    let sl = W.Reader.slice r ~lo ~hi in
    match sl with
    | [] -> true
    | (c0, ev0) :: rest ->
      (* first returned sample is a full snapshot, the rest replay to
         the reader's own values_at answer at [hi] *)
      let vals = Array.make nsig 0 in
      List.iter (fun (i, v) -> vals.(i) <- v) ev0;
      List.iter (fun (_, ev) -> List.iter (fun (i, v) -> vals.(i) <- v) ev) rest;
      let in_range = List.for_all (fun (c, _) -> c >= lo && c <= hi) ((c0, ev0) :: rest) in
      let full = List.length ev0 = nsig in
      in_range && full
      && (match W.Reader.values_at r ~cycle:hi with
         | Some want -> vals = want
         | None -> false)
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:60 ~name:"slice is self-contained and in range" gen prop)

(* ------------------------------------------------------------------ *)
(* Index seek vs linear scan                                           *)
(* ------------------------------------------------------------------ *)

(* A long deterministic trace with a small keyframe stride, queried at
   every cycle in range: the seek path (binary search over the cycle
   index + bounded forward scan) must agree with a plain linear
   reconstruction of the trace. *)
let test_seek_matches_linear_scan () =
  let nsig = 3 in
  let state = ref 7 in
  let rand bound =
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    !state mod bound
  in
  let cycle = ref 0 in
  let vals = Array.make nsig 0 in
  let trace =
    List.init 300 (fun _ ->
        cycle := !cycle + 1 + rand 5;
        (* sometimes change nothing, sometimes one or two signals *)
        (match rand 4 with
        | 0 -> ()
        | k ->
          for _ = 1 to k do
            vals.(rand nsig) <- rand 1024
          done);
        (!cycle, Array.copy vals))
  in
  let w = store_of ~keyframe_every:16 nsig trace in
  let r = W.Reader.of_string (W.Writer.contents w) in
  check_bool "index has keyframes" true (W.Reader.keyframe_count r > 10);
  (* linear reference: last sample with cycle <= target *)
  let linear target =
    List.fold_left
      (fun acc (c, v) -> if c <= target then Some v else acc)
      None trace
  in
  let last = match W.Reader.last_cycle r with Some c -> c | None -> 0 in
  for target = -1 to last + 2 do
    let want = linear target in
    let got = W.Reader.values_at r ~cycle:target in
    if got <> want then
      Alcotest.failf "values_at %d: seek and linear scan disagree" target
  done;
  (* the single-signal accessor follows the same contract *)
  check_bool "value_at before first sample" true
    (W.Reader.value_at r ~cycle:(-1) "s0" = None);
  check_bool "value_at unknown signal" true
    (W.Reader.value_at r ~cycle:last "nope" = None)

(* ------------------------------------------------------------------ *)
(* to_vcd equivalence on the example designs                           *)
(* ------------------------------------------------------------------ *)

(* Probe registers per example design (same sets the debug tests use;
   each crosses the first-instance partition cut). *)
let example_probes = function
  | "counter.fir" -> [ "a$acc"; "b$acc"; "seed" ]
  | "pingpong.fir" -> [ "a$hits"; "a$v"; "b$have" ]
  | "blinker.fir" -> [ "b$c" ]
  | f -> failwith ("no probes for " ^ f)

let example_designs () =
  Sys.readdir designs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fir")
  |> List.sort compare

let test_to_vcd_matches_probe_trace () =
  List.iter
    (fun file ->
      let circuit = Firrtl.Text.load ~path:(Filename.concat designs_dir file) in
      let sim = Rtlsim.Sim.of_circuit circuit in
      let cap = D.Capture.of_sim sim ~probes:(example_probes file) in
      for c = 1 to 60 do
        Rtlsim.Sim.step sim;
        D.Capture.sample cap ~cycle:c
      done;
      let r = W.Reader.of_string (D.Capture.wave_contents cap) in
      check_string (file ^ ": to_vcd reproduces probe_trace")
        (D.Capture.probe_trace cap) (W.Reader.to_vcd r);
      check_bool (file ^ ": diff_vcd certifies the match") true
        (W.diff_vcd r (D.Capture.probe_trace cap) = []))
    (example_designs ())

(* The same equivalence through a partitioned capture: the binary
   store written by [--wave-out] on a partitioned run converts to the
   exact VCD the [--vcd] path would have written. *)
let test_to_vcd_matches_partitioned_capture () =
  let file = "counter.fir" in
  let circuit = Firrtl.Text.load ~path:(Filename.concat designs_dir file) in
  let first_inst =
    match Firrtl.Hierarchy.instances (Firrtl.Ast.main_module circuit) with
    | (name, _) :: _ -> name
    | [] -> Alcotest.fail "no instances"
  in
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Instances [ [ first_inst ] ];
    }
  in
  let handle = FR.Runtime.instantiate (FR.Compile.compile ~config circuit) in
  let cap = D.Capture.of_handle handle ~probes:(example_probes file) in
  for c = 1 to 60 do
    FR.Runtime.run handle ~cycles:c;
    D.Capture.sample cap ~cycle:c
  done;
  let r = W.Reader.of_string (D.Capture.wave_contents cap) in
  check_string "partitioned to_vcd reproduces probe_trace" (D.Capture.probe_trace cap)
    (W.Reader.to_vcd r);
  (* ...and the multi-scope channel VCD still matches semantically:
     probe change lists agree, channel tracks are ignored. *)
  check_bool "diff_vcd vs the full channel VCD" true
    (W.diff_vcd r (D.Capture.contents cap) = [])

(* ------------------------------------------------------------------ *)
(* diffs, file round trip, corruption                                  *)
(* ------------------------------------------------------------------ *)

let test_diff_stores () =
  let nsig = 2 in
  let trace = List.init 40 (fun i -> (i + 1, [| i / 3; (i * 5) mod 17 |])) in
  let a = store_of ~keyframe_every:4 nsig trace in
  let b = store_of ~keyframe_every:64 nsig trace in
  let ra = W.Reader.of_string (W.Writer.contents a) in
  let rb = W.Reader.of_string (W.Writer.contents b) in
  (* keyframe stride is an encoding choice, not a semantic one *)
  check_bool "same trace, different stride: match" true (W.diff_stores ra rb = []);
  let c =
    store_of ~keyframe_every:4 nsig
      (List.map (fun (cy, v) -> if cy = 23 then (cy, [| 999; v.(1) |]) else (cy, v)) trace)
  in
  let rc = W.Reader.of_string (W.Writer.contents c) in
  check_bool "injected divergence detected" true (W.diff_stores ra rc <> [])

let test_save_load_and_corruption () =
  with_tmpdir @@ fun dir ->
  let nsig, trace = trace_of_seed (2, List.init 30 (fun i -> (i, [ i * 7; i * 11 ]))) in
  let w = store_of nsig trace in
  let path = Filename.concat dir "t.bwave" in
  W.Writer.save w ~path;
  let r = W.Reader.load path in
  check_bool "file round trip" true
    (W.Reader.change_lists r = model_changes nsig trace);
  let data = W.Writer.contents w in
  let rejects s =
    try
      ignore (W.Reader.of_string s);
      false
    with W.Corrupt _ -> true
  in
  check_bool "truncated store rejected" true
    (rejects (String.sub data 0 (String.length data - 5)));
  check_bool "bad magic rejected" true (rejects ("x" ^ String.sub data 1 (String.length data - 1)));
  check_int "writer stays usable after contents" (List.length trace)
    (W.Writer.sample_count w)

let suite =
  [
    ( "wavestore",
      [
        Alcotest.test_case "varint round-trip and truncation" `Quick test_varint_roundtrip;
        Alcotest.test_case "delta record round-trip (qcheck)" `Quick test_delta_roundtrip_qcheck;
        Alcotest.test_case "store round-trip (qcheck)" `Quick test_roundtrip_qcheck;
        Alcotest.test_case "slice self-contained (qcheck)" `Quick test_slice_self_contained;
        Alcotest.test_case "index seek matches linear scan" `Quick test_seek_matches_linear_scan;
        Alcotest.test_case "to_vcd byte-identical to probe_trace" `Quick
          test_to_vcd_matches_probe_trace;
        Alcotest.test_case "to_vcd matches a partitioned capture" `Quick
          test_to_vcd_matches_partitioned_capture;
        Alcotest.test_case "diff_stores: stride-independent, divergence found" `Quick
          test_diff_stores;
        Alcotest.test_case "save/load round trip and corruption" `Quick
          test_save_load_and_corruption;
      ] );
  ]
