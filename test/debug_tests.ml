(* Tests for lib/debug: the deterministic VCD writer, partition-aware
   waveform capture (byte-identical probe traces across monolithic,
   partitioned-local and partitioned-remote runs of every example
   design), divergence localization with Capture.diff, and the
   post-mortem flight recorder (deadlock dumps naming the blocked
   channels, ring bounding, capture under a checkpointing supervisor). *)

module FR = Fireripper
module D = Debug

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let worker =
  Filename.concat
    (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
    "fireaxe_worker.exe"

let designs_dir =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "examples/designs"

let with_tmpdir f =
  let dir = Filename.temp_file "fireaxe_debug" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* The deterministic VCD writer                                        *)
(* ------------------------------------------------------------------ *)

let test_writer_dedups_and_orders () =
  let w = Rtlsim.Vcd.Writer.create ~version:"t" () in
  Rtlsim.Vcd.Writer.scope w "top";
  let a = Rtlsim.Vcd.Writer.var w ~name:"a" ~width:1 in
  let b = Rtlsim.Vcd.Writer.var w ~name:"b" ~width:8 in
  Rtlsim.Vcd.Writer.upscope w;
  Rtlsim.Vcd.Writer.time w 1;
  Rtlsim.Vcd.Writer.change w a 1;
  Rtlsim.Vcd.Writer.change w b 5;
  Rtlsim.Vcd.Writer.time w 2;
  (* Unchanged values emit nothing — the timestamp stays pending and is
     dropped entirely. *)
  Rtlsim.Vcd.Writer.change w a 1;
  Rtlsim.Vcd.Writer.change w b 5;
  Rtlsim.Vcd.Writer.time w 3;
  Rtlsim.Vcd.Writer.change w b 6;
  let doc = Rtlsim.Vcd.Writer.contents w in
  check_bool "no dead timestamp" false (contains doc "#2");
  check_bool "first cycle present" true (contains doc "#1");
  check_bool "change at 3 present" true (contains doc "#3\nb00000110");
  check_bool "scalar format" true (contains doc "\n1!");
  (* Time must be monotone. *)
  check_bool "backwards time rejected" true
    (try
       Rtlsim.Vcd.Writer.time w 2;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Byte-identical probe traces: monolithic vs partitioned              *)
(* ------------------------------------------------------------------ *)

(* Probe registers per example design; the first main-module instance
   is the extracted partition, so every list crosses the cut. *)
let example_probes = function
  | "counter.fir" -> [ "a$acc"; "b$acc"; "seed" ]
  | "pingpong.fir" -> [ "a$hits"; "a$v"; "b$have" ]
  | "blinker.fir" -> [ "b$c" ]
  | f -> failwith ("no probes for " ^ f)

let load_design file =
  let circuit = Firrtl.Text.load ~path:(Filename.concat designs_dir file) in
  let first_inst =
    match Firrtl.Hierarchy.instances (Firrtl.Ast.main_module circuit) with
    | (name, _) :: _ -> name
    | [] -> failwith (file ^ ": no instances to partition")
  in
  (circuit, first_inst)

let exact_plan circuit first_inst =
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Instances [ [ first_inst ] ];
    }
  in
  FR.Compile.compile ~config circuit

(* Runs the monolithic simulation and the partitioned handle side by
   side for [cycles], capturing [probes] on both; returns both
   captures. *)
let capture_both ~mono ~handle ~probes ~cycles =
  let ca = D.Capture.of_sim mono ~probes in
  let cb = D.Capture.of_handle handle ~probes in
  for c = 1 to cycles do
    Rtlsim.Sim.step mono;
    FR.Runtime.run handle ~cycles:c;
    D.Capture.sample ca ~cycle:c;
    D.Capture.sample cb ~cycle:c
  done;
  (ca, cb)

let byte_identical_trace ~scheduler ~remote file =
  let circuit, first_inst = load_design file in
  let plan = exact_plan circuit first_inst in
  let mono = Rtlsim.Sim.of_circuit circuit in
  let handle, conns =
    if remote then FR.Runtime.instantiate_remote ~scheduler ~worker ~remote_units:[ 1 ] plan
    else (FR.Runtime.instantiate ~scheduler plan, [])
  in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (_, c) -> Libdn.Remote_engine.close c) conns)
    (fun () ->
      let probes = example_probes file in
      let ca, cb = capture_both ~mono ~handle ~probes ~cycles:60 in
      check_string
        (Printf.sprintf "%s probe trace (%s%s)" file
           (Libdn.Scheduler.name scheduler)
           (if remote then ", remote" else ""))
        (D.Capture.probe_trace ca) (D.Capture.probe_trace cb))

let test_byte_identity_local () =
  List.iter
    (fun file ->
      List.iter
        (fun scheduler -> byte_identical_trace ~scheduler ~remote:false file)
        [ Libdn.Scheduler.Sequential; Libdn.Scheduler.Parallel ])
    [ "counter.fir"; "pingpong.fir"; "blinker.fir" ]

let test_byte_identity_remote () =
  List.iter
    (fun scheduler -> byte_identical_trace ~scheduler ~remote:true "counter.fir")
    [ Libdn.Scheduler.Sequential; Libdn.Scheduler.Parallel ]

let test_merged_vcd_shape () =
  (* The merged document scopes probes by owning partition and adds the
     boundary channels as a track scope, timestamps monotone. *)
  let circuit, first_inst = load_design "counter.fir" in
  let plan = exact_plan circuit first_inst in
  let h = FR.Runtime.instantiate plan in
  let cap = D.Capture.of_handle h ~probes:(example_probes "counter.fir") in
  for c = 1 to 20 do
    FR.Runtime.run h ~cycles:c;
    D.Capture.sample cap ~cycle:c
  done;
  let doc = D.Capture.contents cap in
  check_bool "header" true (contains doc "$enddefinitions $end");
  check_bool "channels scope" true (contains doc "$scope module channels $end");
  let scopes =
    String.split_on_char '\n' doc
    |> List.filter (fun l -> String.length l > 6 && String.sub l 0 6 = "$scope")
  in
  check_int "one scope per partition plus channels"
    (FR.Plan.n_units plan + 1)
    (List.length scopes);
  (* Timestamps strictly increase. *)
  let times =
    String.split_on_char '\n' doc
    |> List.filter_map (fun l ->
           if String.length l > 1 && l.[0] = '#' then
             int_of_string_opt (String.sub l 1 (String.length l - 1))
           else None)
  in
  check_bool "monotone timestamps" true
    (List.for_all2
       (fun a b -> a < b)
       (List.filteri (fun i _ -> i < List.length times - 1) times)
       (List.tl times))

let test_unknown_signal_rejected () =
  let circuit, first_inst = load_design "counter.fir" in
  let h = FR.Runtime.instantiate (exact_plan circuit first_inst) in
  match D.Capture.of_handle h ~probes:[ "a$acc"; "nope1"; "nope2" ] with
  | _ -> Alcotest.fail "expected Unknown_signal"
  | exception D.Capture.Unknown_signal names ->
    check_bool "lists every unresolvable name" true
      (List.mem "nope1" names && List.mem "nope2" names
      && not (List.mem "a$acc" names))

let test_fast_mode_offset_remaps_tracks () =
  let circuit, first_inst = load_design "counter.fir" in
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.mode = FR.Spec.Fast;
      FR.Spec.selection = FR.Spec.Instances [ [ first_inst ] ];
    }
  in
  let fast = FR.Runtime.instantiate (FR.Compile.compile ~config circuit) in
  let exact = FR.Runtime.instantiate (exact_plan circuit first_inst) in
  check_int "fast seed offset" 1 (D.Capture.seed_offset fast);
  check_int "exact seed offset" 0 (D.Capture.seed_offset exact);
  (* With offset 1, the channel event of target cycle 1 lands at #0 —
     before any probe event. *)
  let cap = D.Capture.of_handle fast ~probes:[ "seed" ] in
  for c = 1 to 5 do
    FR.Runtime.run fast ~cycles:c;
    D.Capture.sample cap ~cycle:c
  done;
  check_bool "remapped track event at #0" true
    (contains (D.Capture.contents cap) "\n#0\n")

(* ------------------------------------------------------------------ *)
(* Divergence localization                                             *)
(* ------------------------------------------------------------------ *)

let test_diff_pinpoints_seeded_divergence () =
  let circuit, first_inst = load_design "counter.fir" in
  let plan = exact_plan circuit first_inst in
  let mono = Rtlsim.Sim.of_circuit circuit in
  let h = FR.Runtime.instantiate plan in
  let probes = example_probes "counter.fir" in
  let ca = D.Capture.of_sim mono ~probes in
  let cb = D.Capture.of_handle h ~probes in
  for c = 1 to 40 do
    Rtlsim.Sim.step mono;
    FR.Runtime.run h ~cycles:c;
    D.Capture.sample ca ~cycle:c;
    D.Capture.sample cb ~cycle:c;
    (* Seed a single-register corruption into the partitioned side
       right after cycle 20 was sampled. *)
    if c = 20 then begin
      let u = FR.Runtime.locate h "a$acc" in
      let sim = FR.Runtime.sim_of h u in
      Rtlsim.Sim.set_input sim "a$acc" (Rtlsim.Sim.get sim "a$acc" lxor 1)
    end
  done;
  match D.Capture.diff ca cb with
  | None -> Alcotest.fail "expected a divergence"
  | Some dv ->
    check_int "first divergent cycle" 21 dv.D.Capture.dv_cycle;
    check_string "first divergent signal" "a$acc" dv.D.Capture.dv_signal;
    check_bool "values differ" true (dv.D.Capture.dv_a <> dv.D.Capture.dv_b)

let test_diff_silent_when_identical () =
  let circuit, first_inst = load_design "blinker.fir" in
  let mono = Rtlsim.Sim.of_circuit circuit in
  let h = FR.Runtime.instantiate (exact_plan circuit first_inst) in
  let ca, cb =
    capture_both ~mono ~handle:h ~probes:(example_probes "blinker.fir") ~cycles:50
  in
  check_bool "no divergence" true (D.Capture.diff ca cb = None)

let test_find_divergence_uses_capture () =
  (* The §V-A workflow end to end through the new capture plumbing:
     corrupt one partitioned register up front, then hunt. *)
  let circuit, first_inst = load_design "counter.fir" in
  let golden = Rtlsim.Sim.of_circuit circuit in
  let h = FR.Runtime.instantiate (exact_plan circuit first_inst) in
  let u = FR.Runtime.locate h "b$acc" in
  Rtlsim.Sim.set_input (FR.Runtime.sim_of h u) "b$acc" 7;
  match
    Fireaxe.find_divergence ~golden ~handle:h
      ~signals:[ "a$acc"; "b$acc" ] ~stride:16 ~max_cycles:200 ()
  with
  | None -> Alcotest.fail "expected a divergence"
  | Some d ->
    check_string "signal" "b$acc" d.Fireaxe.d_signal;
    check_bool "cycle in first window" true (d.Fireaxe.d_cycle <= 16)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let json_member name j =
  match Telemetry.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "flight.json: missing %S" name

let test_flight_dumps_on_deadlock () =
  (* The Fig. 2a merged-channel network deadlocks on the first cycle;
     the recorder's network hook must dump a bundle naming the blocked
     channels and their (empty) queues. *)
  with_tmpdir (fun dir ->
      let net, p1, _ = Libdn_tests.build_pair_network ~split:false ~seeded:false in
      let read_x () =
        (Libdn.Network.partition net p1).Libdn.Network.pt_engine.Libdn.Engine.get "x"
      in
      let fl =
        D.Flight.of_network ~depth:16 ~dir ~probes:[ ("p1.x", 8, read_x) ] net
      in
      (try
         Libdn.Scheduler.run net ~cycles:1;
         Alcotest.fail "expected deadlock"
       with Libdn.Network.Deadlock _ -> ());
      match D.Flight.last_dump fl with
      | None -> Alcotest.fail "deadlock must dump a flight bundle"
      | Some d ->
        check_bool "dump dir under requested root" true
          (String.length d > String.length dir && String.sub d 0 (String.length dir) = dir);
        check_bool "vcd written" true
          (contains (read_file (Filename.concat d "flight.vcd")) "$enddefinitions");
        let j =
          match Telemetry.Json.parse (read_file (Filename.concat d "flight.json")) with
          | Ok j -> j
          | Error m -> Alcotest.failf "flight.json unparsable: %s" m
        in
        check_bool "reason" true
          (Telemetry.Json.to_str (json_member "reason" j) = Some "deadlock");
        let blocked = Option.get (Telemetry.Json.to_list (json_member "blocked" j)) in
        check_bool "names blocked channels" true (List.length blocked > 0);
        List.iter
          (fun b ->
            check_bool "blocked channel is the merged input" true
              (Telemetry.Json.to_str (json_member "channel" b) = Some "in"))
          blocked;
        let channels = Option.get (Telemetry.Json.to_list (json_member "channels" j)) in
        check_int "one entry per input channel" 2 (List.length channels);
        List.iter
          (fun c ->
            check_bool "starved queue" true
              (Telemetry.Json.to_int (json_member "depth" c) = Some 0))
          channels)

let test_flight_ring_is_bounded () =
  with_tmpdir (fun dir ->
      let net, p1, _ = Libdn_tests.build_pair_network ~split:true ~seeded:false in
      let read_x () =
        (Libdn.Network.partition net p1).Libdn.Network.pt_engine.Libdn.Engine.get "x"
      in
      let fl =
        D.Flight.of_network ~depth:16 ~dir ~probes:[ ("p1.x", 8, read_x) ] net
      in
      for c = 1 to 100 do
        Libdn.Scheduler.run net ~cycles:c;
        D.Flight.record fl ~cycle:c
      done;
      let d = D.Flight.dump fl ~reason:"test reason!" in
      check_bool "reason slugged into the dir name" true
        (contains d "flight-c100-test-reason-");
      let j =
        match Telemetry.Json.parse (read_file (Filename.concat d "flight.json")) with
        | Ok j -> j
        | Error m -> Alcotest.failf "flight.json unparsable: %s" m
      in
      check_bool "ring keeps the last 16" true
        (Telemetry.Json.to_int (json_member "samples" j) = Some 16);
      check_bool "first retained cycle" true
        (Telemetry.Json.to_int (json_member "first_cycle" j) = Some 85);
      check_bool "last cycle" true
        (Telemetry.Json.to_int (json_member "last_cycle" j) = Some 100))

let test_capture_under_supervisor () =
  (* Per-cycle capture driving a checkpointing supervisor must neither
     corrupt the trace (rollback re-execution) nor checkpoint per
     cycle: bundles land only on interval boundaries. *)
  with_tmpdir (fun dir ->
      let circuit, first_inst = load_design "counter.fir" in
      let plan = exact_plan circuit first_inst in
      let mono = Rtlsim.Sim.of_circuit circuit in
      let h = FR.Runtime.instantiate plan in
      let sv =
        Resilience.Supervisor.create ~checkpoint_dir:dir ~every:20 ~worker h
      in
      let probes = example_probes "counter.fir" in
      let ca = D.Capture.of_sim mono ~probes in
      let cb = D.Capture.of_handle h ~probes in
      for c = 1 to 50 do
        Rtlsim.Sim.step mono;
        Resilience.Supervisor.run sv ~cycles:c;
        D.Capture.sample ca ~cycle:c;
        D.Capture.sample cb ~cycle:c
      done;
      check_string "trace matches monolithic" (D.Capture.probe_trace ca)
        (D.Capture.probe_trace cb);
      let bundle_cycles =
        List.map fst (Resilience.Bundle.list_bundles ~dir)
      in
      check_bool "bundles only on interval boundaries"
        true
        (bundle_cycles = [ 0; 20; 40 ]))

let suite =
  [
    ( "debug.writer",
      [
        Alcotest.test_case "dedups values, drops dead timestamps" `Quick
          test_writer_dedups_and_orders;
      ] );
    ( "debug.capture",
      [
        Alcotest.test_case "byte-identical probe traces (local, both schedulers)"
          `Quick test_byte_identity_local;
        Alcotest.test_case "byte-identical probe traces (remote)" `Quick
          test_byte_identity_remote;
        Alcotest.test_case "merged VCD: scope per partition + channel tracks" `Quick
          test_merged_vcd_shape;
        Alcotest.test_case "unresolvable probes rejected with names" `Quick
          test_unknown_signal_rejected;
        Alcotest.test_case "fast-mode boundary cycles remapped" `Quick
          test_fast_mode_offset_remaps_tracks;
      ] );
    ( "debug.diff",
      [
        Alcotest.test_case "pinpoints a seeded single-bit divergence" `Quick
          test_diff_pinpoints_seeded_divergence;
        Alcotest.test_case "silent when traces match" `Quick
          test_diff_silent_when_identical;
        Alcotest.test_case "find_divergence rides the capture plumbing" `Quick
          test_find_divergence_uses_capture;
      ] );
    ( "debug.flight",
      [
        Alcotest.test_case "deadlock dumps blocked channels + tokens" `Quick
          test_flight_dumps_on_deadlock;
        Alcotest.test_case "ring bounded to the newest N cycles" `Quick
          test_flight_ring_is_bounded;
        Alcotest.test_case "capture composes with the supervisor" `Quick
          test_capture_under_supervisor;
      ] );
  ]
