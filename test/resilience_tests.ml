(* Tests for lib/resilience: durable checkpoint bundles (atomicity,
   versioning, corruption rejection), restart policies, the
   crash-recovering supervisor (bit-exact recovery vs the monolithic
   reference under both schedulers), deterministic chaos schedules, and
   the remote-engine lifecycle fixes (bounded close, read timeouts). *)

module FR = Fireripper
module R = Resilience

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let worker =
  Filename.concat
    (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
    "fireaxe_worker.exe"

let designs_dir =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "examples/designs"

let with_tmpdir f =
  let dir = Filename.temp_file "fireaxe_ckpt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ()) (fun () -> f dir)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:8 ~reps:4 ~dst:60
let data = List.init 8 (fun i -> (32 + i, (i * 3) + 2))

let soc_plan () =
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "tile" ] ] }
  in
  FR.Compile.compile ~config (Socgen.Soc.single_core_soc ~mem_latency:1 ())

let load_soc h =
  let mu = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h mu) ~mem:"mem$mem" ~data program

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

let test_policy_backoff () =
  let p =
    { R.Policy.max_restarts = 3; backoff_ms = 10; backoff_factor = 2.0; backoff_max_ms = 55 }
  in
  check_int "first attempt" 10 (R.Policy.delay_ms p ~attempt:1);
  check_int "second doubles" 20 (R.Policy.delay_ms p ~attempt:2);
  check_int "third doubles again" 40 (R.Policy.delay_ms p ~attempt:3);
  check_int "capped" 55 (R.Policy.delay_ms p ~attempt:4);
  check_int "stays capped" 55 (R.Policy.delay_ms p ~attempt:10);
  check_bool "default tolerates a few restarts" true (R.Policy.default.R.Policy.max_restarts >= 3)

(* ------------------------------------------------------------------ *)
(* Bundles                                                             *)
(* ------------------------------------------------------------------ *)

let test_bundle_roundtrip_local () =
  with_tmpdir (fun dir ->
      let plan = soc_plan () in
      let a = FR.Runtime.instantiate plan in
      load_soc a;
      FR.Runtime.run a ~cycles:400;
      let path = R.Bundle.save ~dir a in
      check_bool "bundle directory exists" true (Sys.is_directory path);
      let b = FR.Runtime.instantiate plan in
      check_int "restore returns the bundle cycle" 400 (R.Bundle.restore ~path b);
      FR.Runtime.run a ~cycles:1100;
      FR.Runtime.run b ~cycles:1100;
      check_bool "continuations are bit-exact" true
        (FR.Runtime.save_to_string a = FR.Runtime.save_to_string b))

let test_bundle_atomic_naming_and_latest () =
  with_tmpdir (fun dir ->
      let plan = soc_plan () in
      let h = FR.Runtime.instantiate plan in
      load_soc h;
      ignore (R.Bundle.save ~dir h);
      FR.Runtime.run h ~cycles:250;
      ignore (R.Bundle.save ~dir h);
      FR.Runtime.run h ~cycles:600;
      ignore (R.Bundle.save ~dir h);
      let cycles = List.map fst (R.Bundle.list_bundles ~dir) in
      check_bool "cycle-ascending listing" true (cycles = [ 0; 250; 600 ]);
      (match R.Bundle.latest ~dir with
      | Some (600, _) -> ()
      | _ -> Alcotest.fail "latest must be the 600-cycle bundle");
      (* No stray temp dirs once saves complete. *)
      check_bool "no temp residue" true
        (Sys.readdir dir |> Array.for_all (fun e -> String.length e < 5 || String.sub e 0 5 = "ckpt-")))

let test_bundle_corruption_rejected () =
  with_tmpdir (fun dir ->
      let plan = soc_plan () in
      let h = FR.Runtime.instantiate plan in
      load_soc h;
      FR.Runtime.run h ~cycles:300;
      let path = R.Bundle.save ~dir h in
      let rejected what =
        let fresh = FR.Runtime.instantiate plan in
        match R.Bundle.restore ~path fresh with
        | _ -> Alcotest.fail (what ^ ": corrupted bundle must be rejected")
        | exception R.Bundle.Bundle_error _ -> ()
      in
      (* Flipped byte in a state blob. *)
      R.Chaos.corrupt_file ~seed:3 (Filename.concat path "unit-0.state");
      rejected "bit flip";
      (* Rebuild, then truncate the network blob. *)
      let path = R.Bundle.save ~dir h in
      R.Chaos.truncate_file (Filename.concat path "network.state") ~keep:10;
      rejected "truncation";
      (* Rebuild, then scribble over the manifest. *)
      let path = R.Bundle.save ~dir h in
      let oc = open_out (Filename.concat path "MANIFEST") in
      output_string oc "{ not json";
      close_out oc;
      rejected "garbage manifest";
      (* Rebuild, then delete a blob entirely. *)
      let path = R.Bundle.save ~dir h in
      Sys.remove (Filename.concat path "unit-1.state");
      rejected "missing blob")

let test_bundle_rejects_other_design () =
  with_tmpdir (fun dir ->
      let plan = soc_plan () in
      let h = FR.Runtime.instantiate plan in
      FR.Runtime.run h ~cycles:100;
      let path = R.Bundle.save ~dir h in
      (* A handle over a different design must refuse the bundle. *)
      let other_cfg =
        { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "accel" ] ] }
      in
      let other =
        FR.Runtime.instantiate
          (FR.Compile.compile ~config:other_cfg (Socgen.Soc.accel_soc Socgen.Soc.Sha3))
      in
      match R.Bundle.restore ~path other with
      | _ -> Alcotest.fail "bundle for another design must be rejected"
      | exception R.Bundle.Bundle_error m ->
        check_bool "diagnostic names the design mismatch" true
          (contains m "design" || contains m "units"))

let test_bundle_covers_remote_units () =
  (* A bundle taken from a handle with a REMOTE unit restores into a
     local handle and vice versa — the blobs cross the pipe protocol. *)
  with_tmpdir (fun dir ->
      let plan = soc_plan () in
      let a, conns = FR.Runtime.instantiate_remote ~worker ~remote_units:[ 1 ] plan in
      load_soc a;
      FR.Runtime.run a ~cycles:500;
      let path = R.Bundle.save ~dir a in
      let b = FR.Runtime.instantiate plan in
      check_int "restored cycle" 500 (R.Bundle.restore ~path b);
      (* Continue both; the remote handle's full state must track the
         local one bit for bit. *)
      FR.Runtime.run a ~cycles:1200;
      FR.Runtime.run b ~cycles:1200;
      check_bool "remote-inclusive snapshot is bit-exact" true
        (FR.Runtime.save_to_string a = FR.Runtime.save_to_string b);
      (* And back: restore the bundle INTO the remote handle. *)
      let c, conns2 = FR.Runtime.instantiate_remote ~worker ~remote_units:[ 1 ] plan in
      check_int "restored into remote handle" 500 (R.Bundle.restore ~path c);
      FR.Runtime.run c ~cycles:1200;
      check_bool "remote restore is bit-exact" true
        (FR.Runtime.save_to_string b = FR.Runtime.save_to_string c);
      List.iter (fun (_, cn) -> Libdn.Remote_engine.close cn) (conns @ conns2))

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

let test_chaos_deterministic () =
  let a = R.Chaos.plan ~seed:42 ~cycles:10_000 ~n_victims:3 ~kills:4 () in
  let b = R.Chaos.plan ~seed:42 ~cycles:10_000 ~n_victims:3 ~kills:4 () in
  check_bool "same seed, same schedule" true (R.Chaos.pending a = R.Chaos.pending b);
  let c = R.Chaos.plan ~seed:43 ~cycles:10_000 ~n_victims:3 ~kills:4 () in
  check_bool "different seed, different schedule" true
    (R.Chaos.pending a <> R.Chaos.pending c);
  List.iter
    (fun (k : R.Chaos.kill) ->
      check_bool "kill inside the middle of the run" true (k.at >= 1000 && k.at <= 9000);
      check_bool "victim in range" true (k.victim >= 0 && k.victim < 3))
    (R.Chaos.pending a);
  (* next_kill pops in cycle order and respects the horizon. *)
  let first = List.hd (R.Chaos.pending a) in
  check_bool "not due yet" true (R.Chaos.next_kill a ~upto:(first.at - 1) = None);
  (match R.Chaos.next_kill a ~upto:first.at with
  | Some k -> check_int "due kill popped" first.at k.at
  | None -> Alcotest.fail "kill at the horizon must pop");
  check_int "popped kill is gone" (3) (List.length (R.Chaos.pending a))

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

(* The monolithic truth for the supervised runs below. *)
let mono_probe ~cycles =
  let mono = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  Socgen.Soc.load_program mono ~mem:"mem$mem" ~data program;
  for _ = 1 to cycles do
    Rtlsim.Sim.step mono
  done;
  ( Rtlsim.Sim.get mono "tile$core$retired_count",
    Rtlsim.Sim.get mono "tile$core$pc",
    Rtlsim.Sim.get mono "mem$state" )

let supervised_recovery ~scheduler () =
  with_tmpdir (fun dir ->
      let cycles = 1500 in
      let plan = soc_plan () in
      let tel = Telemetry.create () in
      let h, conns =
        FR.Runtime.instantiate_remote ~scheduler ~telemetry:tel ~worker
          ~remote_units:[ 0; 1 ] plan
      in
      (* Both units remote: load the program over the pipe. *)
      let tile_conn, mem_conn =
        let c0 = List.assoc 0 conns and c1 = List.assoc 1 conns in
        if Libdn.Remote_engine.has c0 "tile$core$pc" then (c0, c1) else (c1, c0)
      in
      List.iteri
        (fun i w -> Libdn.Remote_engine.poke_mem mem_conn "mem$mem" i w)
        (Socgen.Kite_isa.assemble program);
      List.iter (fun (a, v) -> Libdn.Remote_engine.poke_mem mem_conn "mem$mem" a v) data;
      let chaos = R.Chaos.plan ~seed:7 ~cycles ~n_victims:2 ~kills:2 () in
      let kills = List.length (R.Chaos.pending chaos) in
      let deaths = ref 0 in
      let sv =
        R.Supervisor.create ~checkpoint_dir:dir ~every:200
          ~policy:{ R.Policy.default with R.Policy.backoff_ms = 1 }
          ~chaos
          ~on_event:(function R.Supervisor.Worker_down _ -> incr deaths | _ -> ())
          ~worker h
      in
      R.Supervisor.run sv ~cycles;
      check_int "every injected kill was recovered" kills (R.Supervisor.restarts sv);
      check_int "every death was observed" kills !deaths;
      (* Bit-exact against the uninterrupted monolithic run. *)
      let retired, pc, memstate = mono_probe ~cycles in
      check_int "retired_count" retired
        (Libdn.Remote_engine.get tile_conn "tile$core$retired_count");
      check_int "pc" pc (Libdn.Remote_engine.get tile_conn "tile$core$pc");
      check_int "mem$state" memstate (Libdn.Remote_engine.get mem_conn "mem$state");
      (* Telemetry observed the recovery. *)
      let counters = Telemetry.counters tel in
      check_bool "restart counter recorded" true
        (List.exists
           (fun (name, v) -> contains name ".restarts" && v > 0)
           counters);
      check_bool "checkpoints recorded" true
        (List.exists
           (fun (name, v) -> name = "resilience.checkpoints" && v > 0)
           counters);
      R.Supervisor.close sv)

let test_supervised_recovery_seq () = supervised_recovery ~scheduler:Libdn.Scheduler.Sequential ()
let test_supervised_recovery_par () = supervised_recovery ~scheduler:Libdn.Scheduler.Parallel ()

let test_supervisor_gives_up () =
  with_tmpdir (fun dir ->
      let plan = soc_plan () in
      let h, conns = FR.Runtime.instantiate_remote ~worker ~remote_units:[ 1 ] plan in
      load_soc h;
      (* A zero-restart budget: the first death must end the run. *)
      let sv =
        R.Supervisor.create ~checkpoint_dir:dir ~every:100
          ~policy:{ R.Policy.default with R.Policy.max_restarts = 0 }
          ~chaos:(R.Chaos.plan ~seed:5 ~cycles:1000 ~n_victims:1 ())
          ~worker h
      in
      (match R.Supervisor.run sv ~cycles:1000 with
      | () -> Alcotest.fail "expected Gave_up"
      | exception R.Supervisor.Gave_up { attempts; _ } -> check_int "one attempt" 1 attempts);
      ignore conns;
      R.Supervisor.close sv)

let test_supervisor_skips_corrupt_bundle () =
  (* Recovery must walk past a corrupted newest bundle to an older
     good one — and still end bit-exact. *)
  with_tmpdir (fun dir ->
      let cycles = 1200 in
      let plan = soc_plan () in
      let h, conns = FR.Runtime.instantiate_remote ~worker ~remote_units:[ 1 ] plan in
      load_soc h;
      let skipped = ref 0 in
      let chaos = R.Chaos.plan ~seed:9 ~cycles ~n_victims:1 () in
      let kill_at = (List.hd (R.Chaos.pending chaos)).R.Chaos.at in
      let sv =
        R.Supervisor.create ~checkpoint_dir:dir ~every:150
          ~policy:{ R.Policy.default with R.Policy.backoff_ms = 1 }
          ~chaos
          ~on_event:(function R.Supervisor.Skipped_bundle _ -> incr skipped | _ -> ())
          ~worker h
      in
      (* Pre-corrupt the newest bundle that will exist at kill time:
         run supervised up to just before the kill, then corrupt the
         newest bundle on disk before letting the kill land. *)
      R.Supervisor.run sv ~cycles:(kill_at - 1);
      (match R.Bundle.latest ~dir with
      | Some (_, path) -> R.Chaos.corrupt_file ~seed:1 (Filename.concat path "unit-1.state")
      | None -> Alcotest.fail "expected bundles before the kill");
      R.Supervisor.run sv ~cycles;
      check_bool "corrupt bundle was skipped during recovery" true (!skipped > 0);
      let retired, pc, _ = mono_probe ~cycles in
      check_int "retired_count" retired
        (Libdn.Remote_engine.get (List.assoc 1 conns) "tile$core$retired_count");
      check_int "pc" pc (Libdn.Remote_engine.get (List.assoc 1 conns) "tile$core$pc");
      R.Supervisor.close sv)

let test_supervisor_resume_cold () =
  (* Kill the whole "session": checkpoint, drop the handle, build a
     fresh one, resume from disk, continue — matches an uninterrupted
     run. *)
  with_tmpdir (fun dir ->
      let plan = soc_plan () in
      let a = FR.Runtime.instantiate plan in
      load_soc a;
      let sva = R.Supervisor.create ~checkpoint_dir:dir ~every:300 ~worker a in
      R.Supervisor.run sva ~cycles:900;
      (* New process, new handle: resume from the directory alone. *)
      let b = FR.Runtime.instantiate plan in
      (match R.Supervisor.resume ~dir b with
      | Some 900 -> ()
      | Some c -> Alcotest.failf "resumed at %d, want 900" c
      | None -> Alcotest.fail "expected a bundle to resume from");
      FR.Runtime.run b ~cycles:2000;
      let retired, pc, _ = mono_probe ~cycles:2000 in
      let u = FR.Runtime.locate b "tile$core$retired_count" in
      check_int "retired_count" retired
        (Rtlsim.Sim.get (FR.Runtime.sim_of b u) "tile$core$retired_count");
      check_int "pc" pc (Rtlsim.Sim.get (FR.Runtime.sim_of b u) "tile$core$pc"))

(* ------------------------------------------------------------------ *)
(* Remote-engine lifecycle fixes                                       *)
(* ------------------------------------------------------------------ *)

let test_read_timeout_surfaces_worker_died () =
  (* SIGSTOP the worker: reads must give up after the timeout with the
     command in flight recorded, instead of hanging forever. *)
  let plan = soc_plan () in
  let h, conns =
    FR.Runtime.instantiate_remote ~read_timeout:0.2 ~worker ~remote_units:[ 1 ] plan
  in
  ignore h;
  let conn = List.assoc 1 conns in
  R.Chaos.sigstop (Libdn.Remote_engine.pid conn);
  let t0 = Unix.gettimeofday () in
  (match Libdn.Remote_engine.get conn "tile$core$pc" with
  | _ -> Alcotest.fail "expected Worker_died on a wedged worker"
  | exception Libdn.Remote_engine.Worker_died { last_command; status; _ } ->
    check_bool "status names the timeout" true (contains status "timeout");
    Alcotest.(check string) "command in flight" "get tile$core$pc" last_command);
  check_bool "gave up promptly" true (Unix.gettimeofday () -. t0 < 5.0);
  R.Chaos.sigcont (Libdn.Remote_engine.pid conn);
  List.iter (fun (_, c) -> Libdn.Remote_engine.close c) conns

let test_close_bounded_and_idempotent () =
  (* close on a WEDGED (SIGSTOPped) worker must SIGKILL and return
     within the grace period, and a second close must be a no-op. *)
  let plan = soc_plan () in
  let h, conns = FR.Runtime.instantiate_remote ~worker ~remote_units:[ 1 ] plan in
  ignore h;
  let conn = List.assoc 1 conns in
  R.Chaos.sigstop (Libdn.Remote_engine.pid conn);
  let t0 = Unix.gettimeofday () in
  Libdn.Remote_engine.close ~grace:0.2 conn;
  check_bool "close returned within bounds" true (Unix.gettimeofday () -. t0 < 5.0);
  check_bool "worker reaped or gone" true (not (Libdn.Remote_engine.is_alive conn));
  (* Second close: no raise, no hang. *)
  Libdn.Remote_engine.close conn;
  List.iter (fun (_, c) -> Libdn.Remote_engine.close c) conns

let test_reconnect_replays_cones () =
  (* Kill a worker, reconnect in place, restore its state: the network
     keeps its engine closures and the run stays correct. *)
  let plan = soc_plan () in
  let h, conns = FR.Runtime.instantiate_remote ~worker ~remote_units:[ 1 ] plan in
  load_soc h;
  FR.Runtime.run h ~cycles:400;
  let blob = FR.Runtime.save_to_string h in
  let conn = List.assoc 1 conns in
  R.Chaos.sigkill (Libdn.Remote_engine.pid conn);
  (* Wait for the death to be observable, then resurrect. *)
  let rec wait n =
    if n > 0 && Libdn.Remote_engine.is_alive conn then begin
      Unix.sleepf 0.01;
      wait (n - 1)
    end
  in
  wait 200;
  FR.Runtime.respawn_remote h 1 ~worker;
  FR.Runtime.restore_from_string h blob;
  FR.Runtime.run h ~cycles:1200;
  let retired, pc, _ = mono_probe ~cycles:1200 in
  check_int "retired_count after in-place resurrection" retired
    (Libdn.Remote_engine.get conn "tile$core$retired_count");
  check_int "pc after in-place resurrection" pc
    (Libdn.Remote_engine.get conn "tile$core$pc");
  List.iter (fun (_, c) -> Libdn.Remote_engine.close c) conns

(* ------------------------------------------------------------------ *)
(* Property: snapshots round-trip across every example design          *)
(* ------------------------------------------------------------------ *)

let example_designs =
  lazy
    (Sys.readdir designs_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".fir")
    |> List.sort compare
    |> List.map (fun f ->
           let circuit = Firrtl.Text.load ~path:(Filename.concat designs_dir f) in
           let first_inst =
             match Firrtl.Hierarchy.instances (Firrtl.Ast.main_module circuit) with
             | (name, _) :: _ -> name
             | [] -> failwith (f ^ ": no instances to partition")
           in
           (f, circuit, first_inst)))

let prop_save_restore_roundtrips_examples =
  (* Every checked-in example design, both schedulers, local AND
     remote partitions: serialize mid-flight, restore into a fresh
     local handle, continue both — full state stays bit-exact. *)
  QCheck.Test.make ~name:"resilience: snapshots round-trip every example design"
    ~count:20
    QCheck.(triple (int_bound 1000) bool bool)
    (fun (salt, par, remote) ->
      let designs = Lazy.force example_designs in
      let _, circuit, first_inst = List.nth designs (salt mod List.length designs) in
      let cycles = 5 + (salt mod 60) in
      let scheduler =
        if par then Libdn.Scheduler.Parallel else Libdn.Scheduler.Sequential
      in
      let config =
        {
          FR.Spec.default_config with
          FR.Spec.selection = FR.Spec.Instances [ [ first_inst ] ];
        }
      in
      let plan = FR.Compile.compile ~config circuit in
      let a, conns =
        if remote then FR.Runtime.instantiate_remote ~scheduler ~worker ~remote_units:[ 1 ] plan
        else (FR.Runtime.instantiate ~scheduler plan, [])
      in
      Fun.protect
        ~finally:(fun () -> List.iter (fun (_, c) -> Libdn.Remote_engine.close c) conns)
        (fun () ->
          FR.Runtime.run a ~cycles;
          let blob = FR.Runtime.save_to_string a in
          let b = FR.Runtime.instantiate ~scheduler plan in
          FR.Runtime.restore_from_string b blob;
          FR.Runtime.run a ~cycles:(2 * cycles);
          FR.Runtime.run b ~cycles:(2 * cycles);
          FR.Runtime.save_to_string a = FR.Runtime.save_to_string b))

let suite =
  [
    ( "resilience.policy",
      [ Alcotest.test_case "exponential backoff, capped" `Quick test_policy_backoff ] );
    ( "resilience.bundle",
      [
        Alcotest.test_case "round-trip local" `Quick test_bundle_roundtrip_local;
        Alcotest.test_case "naming, listing, latest" `Quick test_bundle_atomic_naming_and_latest;
        Alcotest.test_case "corruption rejected" `Quick test_bundle_corruption_rejected;
        Alcotest.test_case "other design rejected" `Quick test_bundle_rejects_other_design;
        Alcotest.test_case "covers remote units" `Quick test_bundle_covers_remote_units;
      ] );
    ( "resilience.chaos",
      [ Alcotest.test_case "deterministic schedules" `Quick test_chaos_deterministic ] );
    ( "resilience.supervisor",
      [
        Alcotest.test_case "crash recovery bit-exact (seq)" `Quick test_supervised_recovery_seq;
        Alcotest.test_case "crash recovery bit-exact (par)" `Quick test_supervised_recovery_par;
        Alcotest.test_case "gives up past the budget" `Quick test_supervisor_gives_up;
        Alcotest.test_case "skips corrupt bundles" `Quick test_supervisor_skips_corrupt_bundle;
        Alcotest.test_case "cold resume from disk" `Quick test_supervisor_resume_cold;
      ] );
    ( "resilience.remote",
      [
        Alcotest.test_case "read timeout surfaces Worker_died" `Quick
          test_read_timeout_surfaces_worker_died;
        Alcotest.test_case "close bounded + idempotent" `Quick test_close_bounded_and_idempotent;
        Alcotest.test_case "reconnect replays cones" `Quick test_reconnect_replays_cones;
        QCheck_alcotest.to_alcotest prop_save_restore_roundtrips_examples;
      ] );
  ]
