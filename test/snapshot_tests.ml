(* Tests for disk-serializable snapshots: the text round-trip of a
   simulator state, and save/resume of a whole partitioned simulation
   into a freshly instantiated handle (the cross-process workflow). *)

module FR = Fireripper

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:8 ~reps:6 ~dst:60
let data = List.init 8 (fun i -> (32 + i, (i * 5) + 2))

let mono_soc () =
  let sim = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data program;
  sim

let fresh_handle () =
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "tile" ] ] }
  in
  FR.Runtime.instantiate
    (FR.Compile.compile ~config (Socgen.Soc.single_core_soc ~mem_latency:1 ()))

let loaded_handle () =
  let h = fresh_handle () in
  let u = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h u) ~mem:"mem$mem" ~data program;
  h

(* ------------------------------------------------------------------ *)
(* Simulator-state text round-trip                                     *)
(* ------------------------------------------------------------------ *)

let test_state_roundtrip () =
  let sim = mono_soc () in
  for _ = 1 to 777 do
    Rtlsim.Sim.step sim
  done;
  let st = Rtlsim.Sim.save_state sim in
  let st' = Rtlsim.Sim.state_of_string (Rtlsim.Sim.state_to_string st) in
  check_int "cycle survives" st.Rtlsim.Sim.s_cycle st'.Rtlsim.Sim.s_cycle;
  check_bool "registers survive" true (st.Rtlsim.Sim.s_regs = st'.Rtlsim.Sim.s_regs);
  check_bool "memories survive" true
    (List.sort compare st.Rtlsim.Sim.s_mems = List.sort compare st'.Rtlsim.Sim.s_mems)

let test_state_restore_into_fresh_sim () =
  (* Resume a monolithic run in a brand-new simulator via the text
     form: both must evolve identically afterwards. *)
  let a = mono_soc () in
  for _ = 1 to 500 do
    Rtlsim.Sim.step a
  done;
  let text = Rtlsim.Sim.state_to_string (Rtlsim.Sim.save_state a) in
  let b = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  Rtlsim.Sim.restore_state b (Rtlsim.Sim.state_of_string text);
  for _ = 1 to 500 do
    Rtlsim.Sim.step a;
    Rtlsim.Sim.step b
  done;
  List.iter
    (fun reg -> check_int reg (Rtlsim.Sim.get a reg) (Rtlsim.Sim.get b reg))
    [ "tile$core$retired_count"; "tile$core$pc"; "tile$core$state" ]

let test_state_shape_mismatch_rejected () =
  let sim = mono_soc () in
  let st = Rtlsim.Sim.save_state sim in
  let other = Rtlsim.Sim.of_circuit (Socgen.Soc.accel_soc Socgen.Soc.Sha3) in
  check_bool "restoring into a different circuit fails" true
    (try
       Rtlsim.Sim.restore_state other st;
       false
     with Rtlsim.Sim.Sim_error _ -> true)

let test_state_parse_errors () =
  List.iter
    (fun (what, text) ->
      check_bool what true
        (try
           ignore (Rtlsim.Sim.state_of_string text);
           false
         with Rtlsim.Sim.Sim_error _ -> true))
    [
      ("empty", "");
      ("garbage header", "hello\nworld\nmems 0\n");
      ("count mismatch", "cycle 5\nregs 3 1 2\nmems 0\n");
      ("bad integer", "cycle x\nregs 0\nmems 0\n");
      ("missing memory", "cycle 5\nregs 1 9\nmems 2\nmem a 1 0\n");
      ("truncated mem values", "cycle 5\nregs 0\nmems 1\nmem a 4 1 2\n");
      ("cycle line only", "cycle 5\n");
      ("mems header missing", "cycle 5\nregs 1 9\n");
    ]

let prop_state_text_roundtrip =
  (* Any state shape — register file of any size, any number of
     memories of any depth — survives the text form exactly. *)
  let state_gen =
    QCheck.Gen.(
      let value = map abs small_signed_int in
      let mem i =
        map
          (fun vals -> (Printf.sprintf "m%d$mem" i, Array.of_list vals))
          (list_size (int_range 1 16) value)
      in
      let* n_regs = int_range 0 20 in
      let* s_regs = map Array.of_list (list_size (return n_regs) value) in
      let* n_mems = int_range 0 4 in
      let* s_mems = flatten_l (List.init n_mems mem) in
      let* s_cycle = map abs small_signed_int in
      return { Rtlsim.Sim.s_regs; s_mems; s_cycle })
  in
  QCheck.Test.make ~name:"snapshot text round-trips any state shape" ~count:100
    (QCheck.make state_gen) (fun st ->
      let st' = Rtlsim.Sim.state_of_string (Rtlsim.Sim.state_to_string st) in
      st'.Rtlsim.Sim.s_cycle = st.Rtlsim.Sim.s_cycle
      && st'.Rtlsim.Sim.s_regs = st.Rtlsim.Sim.s_regs
      && st'.Rtlsim.Sim.s_mems = st.Rtlsim.Sim.s_mems)

let prop_state_text_truncation_rejected =
  (* Any strict prefix of a serialized state either fails to parse or
     parses to something different — never silently round-trips into
     the same state with data missing. *)
  QCheck.Test.make ~name:"snapshot text prefixes never parse as the full state" ~count:50
    QCheck.(pair (int_bound 1000) (int_bound 999))
    (fun (cycle, cut) ->
      let st =
        {
          Rtlsim.Sim.s_regs = Array.init 6 (fun i -> i * 3);
          s_mems = [ ("m$mem", Array.init 8 (fun i -> i + cycle)) ];
          s_cycle = cycle;
        }
      in
      let text = Rtlsim.Sim.state_to_string st in
      (* Always drop at least one character beyond the final newline —
         removing only trailing whitespace is not a real truncation. *)
      let cut = cut mod (String.length text - 1) in
      let prefix = String.sub text 0 cut in
      match Rtlsim.Sim.state_of_string prefix with
      | st' -> st' <> st
      | exception Rtlsim.Sim.Sim_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Whole-network save / resume                                         *)
(* ------------------------------------------------------------------ *)

let test_partitioned_save_resume () =
  (* Run to mid-flight, serialize, restore into a FRESH handle of the
     same plan, continue both: identical states ever after. *)
  let a = loaded_handle () in
  FR.Runtime.run a ~cycles:700;
  let blob = FR.Runtime.save_to_string a in
  let b = fresh_handle () in
  FR.Runtime.restore_from_string b blob;
  FR.Runtime.run a ~cycles:1500;
  FR.Runtime.run b ~cycles:1500;
  List.iter
    (fun reg ->
      let ua = FR.Runtime.locate a reg and ub = FR.Runtime.locate b reg in
      check_int reg
        (Rtlsim.Sim.get (FR.Runtime.sim_of a ua) reg)
        (Rtlsim.Sim.get (FR.Runtime.sim_of b ub) reg))
    [ "tile$core$retired_count"; "tile$core$pc"; "mem$state" ]

let test_partitioned_resume_matches_monolithic () =
  (* The resumed partitioned run still tracks the monolithic truth. *)
  let mono = mono_soc () in
  for _ = 1 to 2000 do
    Rtlsim.Sim.step mono
  done;
  let a = loaded_handle () in
  FR.Runtime.run a ~cycles:900;
  let blob = FR.Runtime.save_to_string a in
  let b = fresh_handle () in
  FR.Runtime.restore_from_string b blob;
  FR.Runtime.run b ~cycles:2000;
  List.iter
    (fun reg ->
      let u = FR.Runtime.locate b reg in
      check_int reg (Rtlsim.Sim.get mono reg) (Rtlsim.Sim.get (FR.Runtime.sim_of b u) reg))
    [ "tile$core$retired_count"; "tile$core$pc" ]

let test_snapshot_file_roundtrip () =
  let a = loaded_handle () in
  FR.Runtime.run a ~cycles:400;
  let path = Filename.temp_file "fireaxe" ".snap" in
  FR.Runtime.save a ~path;
  let b = fresh_handle () in
  FR.Runtime.load b ~path;
  Sys.remove path;
  FR.Runtime.run a ~cycles:800;
  FR.Runtime.run b ~cycles:800;
  let reg = "tile$core$retired_count" in
  let ua = FR.Runtime.locate a reg and ub = FR.Runtime.locate b reg in
  check_int "file round-trip resumes identically"
    (Rtlsim.Sim.get (FR.Runtime.sim_of a ua) reg)
    (Rtlsim.Sim.get (FR.Runtime.sim_of b ub) reg)

let test_snapshot_rejects_fame5 () =
  (* A FAME-5-threaded handle has no per-unit simulator state. *)
  let circuit = Socgen.Soc.multi_core_soc ~cores:2 ~mem_latency:1 () in
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Instances [ [ "tile0"; "tile1" ] ];
    }
  in
  let h = FR.Runtime.instantiate ~fame5:true (FR.Compile.compile ~config circuit) in
  let threaded = Array.exists Option.is_some h.FR.Runtime.h_fame5 in
  check_bool "handle is actually threaded" true threaded;
  check_bool "snapshot refused" true
    (try
       ignore (FR.Runtime.save_to_string h);
       false
     with Invalid_argument _ -> true)

let test_snapshot_rejects_mismatched_plan () =
  let a = loaded_handle () in
  FR.Runtime.run a ~cycles:100;
  let blob = FR.Runtime.save_to_string a in
  (* A handle with a different unit count must refuse the blob. *)
  let circuit = Socgen.Soc.multi_core_soc ~cores:2 ~mem_latency:1 () in
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Instances [ [ "tile0" ]; [ "tile1" ] ];
    }
  in
  let other = FR.Runtime.instantiate (FR.Compile.compile ~config circuit) in
  check_bool "mismatched plan refused" true
    (try
       FR.Runtime.restore_from_string other blob;
       false
     with Rtlsim.Sim.Sim_error _ -> true)

let prop_snapshot_roundtrip_random_circuits =
  (* Random hierarchical circuits, random partitions: serialize
     mid-flight, restore into a fresh handle of the same plan, continue
     both — identical register state in every leaf ever after. *)
  QCheck.Test.make ~name:"snapshots: random partitioned circuits resume identically"
    ~count:15
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, extra) ->
      let n = 4 + extra in
      let rng = Des.Stats.rng ~seed:(seed + 55) in
      let selected =
        List.init n (fun k -> (k, Des.Stats.bernoulli rng 0.4))
        |> List.filter_map (fun (k, pick) ->
               if pick then Some (Printf.sprintf "i%d" k) else None)
      in
      let selected = if selected = [] then [ "i0" ] else selected in
      if List.length selected = n then true
      else begin
        let config =
          {
            FR.Spec.default_config with
            FR.Spec.selection = FR.Spec.Instances [ selected ];
            FR.Spec.allow_long_chains = true;
          }
        in
        let make () =
          FR.Runtime.instantiate
            (FR.Compile.compile ~config (Extensions_tests.random_circuit (seed + 1) n))
        in
        let a = make () in
        FR.Runtime.run a ~cycles:17;
        let blob = FR.Runtime.save_to_string a in
        let b = make () in
        FR.Runtime.restore_from_string b blob;
        FR.Runtime.run a ~cycles:43;
        FR.Runtime.run b ~cycles:43;
        List.for_all
          (fun k ->
            let reg = Printf.sprintf "i%d$r" k in
            let ua = FR.Runtime.locate a reg and ub = FR.Runtime.locate b reg in
            Rtlsim.Sim.get (FR.Runtime.sim_of a ua) reg
            = Rtlsim.Sim.get (FR.Runtime.sim_of b ub) reg)
          (List.init n Fun.id)
      end)

let suite =
  [
    ( "rtlsim.snapshot",
      [
        Alcotest.test_case "text round-trip" `Quick test_state_roundtrip;
        Alcotest.test_case "restore into fresh sim" `Quick test_state_restore_into_fresh_sim;
        Alcotest.test_case "shape mismatch rejected" `Quick test_state_shape_mismatch_rejected;
        Alcotest.test_case "parse errors" `Quick test_state_parse_errors;
        QCheck_alcotest.to_alcotest prop_state_text_roundtrip;
        QCheck_alcotest.to_alcotest prop_state_text_truncation_rejected;
      ] );
    ( "runtime.snapshot",
      [
        Alcotest.test_case "save / resume in fresh handle" `Quick test_partitioned_save_resume;
        Alcotest.test_case "resumed run matches monolithic" `Quick
          test_partitioned_resume_matches_monolithic;
        Alcotest.test_case "file round-trip" `Quick test_snapshot_file_roundtrip;
        Alcotest.test_case "FAME-5 refused" `Quick test_snapshot_rejects_fame5;
        Alcotest.test_case "mismatched plan refused" `Quick
          test_snapshot_rejects_mismatched_plan;
        QCheck_alcotest.to_alcotest prop_snapshot_roundtrip_random_circuits;
      ] );
  ]
