(* Cycle-batched token exchange: the Bqueue slab operations
   (push_list/peek_upto/drop_n) and the scheduler's [batch_cycles] cap
   must be invisible in every observable — LI-BDN determinism says a
   batched run's token streams and architectural state are
   byte-identical to the per-cycle run's, for ANY batch depth, engine,
   scheduler, and placement.  These tests make that argument
   executable, plus the LPT placement-packing kernel the domain fusion
   rides on. *)

open Firrtl
module FR = Fireripper
module BQ = Libdn.Channel.Bqueue
module Notifier = Libdn.Channel.Notifier

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_ints = Alcotest.(check (list int))
let no_abort () = false

(* ------------------------------------------------------------------ *)
(* Bqueue slab operations                                              *)
(* ------------------------------------------------------------------ *)

let bq capacity = BQ.create ~capacity ~notif:(Notifier.create ())

let test_slab_roundtrip () =
  let q = bq 8 in
  BQ.push_list q [ 1; 2; 3 ] ~block:false ~abort:no_abort;
  check_int "length after slab push" 3 (BQ.length q);
  check_ints "queue order" [ 1; 2; 3 ] (BQ.to_list q);
  check_ints "peek_upto below length" [ 1; 2 ]
    (Array.to_list (BQ.peek_upto_unlocked q 2));
  check_ints "peek_upto past length" [ 1; 2; 3 ]
    (Array.to_list (BQ.peek_upto_unlocked q 99));
  check_ints "peek_upto zero" [] (Array.to_list (BQ.peek_upto_unlocked q 0));
  check_int "peek leaves contents" 3 (BQ.length q);
  BQ.drop_n q 2;
  check_ints "partial drain drops heads" [ 3 ] (BQ.to_list q)

let test_slab_interleaved_wraparound () =
  (* Slab pushes interleaved with drops keep strict FIFO order across
     the capacity boundary (the ring-buffer wrap-around shape). *)
  let q = bq 4 in
  BQ.push_list q [ 10; 11; 12 ] ~block:false ~abort:no_abort;
  BQ.drop_n q 2;
  BQ.push_list q [ 13; 14; 15 ] ~block:false ~abort:no_abort;
  check_ints "order across wrap" [ 12; 13; 14; 15 ] (BQ.to_list q);
  BQ.drop_n q 3;
  BQ.push_list q [ 16 ] ~block:false ~abort:no_abort;
  check_ints "order after second wrap" [ 15; 16 ] (BQ.to_list q)

let test_slab_full_keeps_prefix () =
  (* A non-blocking slab that does not fit raises Full but keeps the
     prefix that made it in — tokens are never dropped or reordered. *)
  let q = bq 4 in
  BQ.push q 0 ~block:false ~abort:no_abort;
  check_bool "overfull slab raises Full" true
    (try
       BQ.push_list q [ 1; 2; 3; 4; 5 ] ~block:false ~abort:no_abort;
       false
     with BQ.Full -> true);
  check_ints "prefix survives Full" [ 0; 1; 2; 3 ] (BQ.to_list q);
  BQ.drop_n q 4;
  (* With space restored the remainder can be re-offered. *)
  BQ.push_list q [ 4; 5 ] ~block:false ~abort:no_abort;
  check_ints "remainder lands after drain" [ 4; 5 ] (BQ.to_list q)

let test_slab_abort_while_blocked () =
  (* A blocking slab push against a full queue honors the abort
     predicate instead of waiting forever. *)
  let q = bq 2 in
  check_bool "abort trips out of blocked slab push" true
    (try
       BQ.push_list q [ 1; 2; 3 ] ~block:true ~abort:(fun () -> true);
       false
     with Libdn.Channel.Aborted -> true);
  (* The prefix filled the queue before the wait began. *)
  check_ints "published prefix survives abort" [ 1; 2 ] (BQ.to_list q)

let test_slab_concurrent_producer_consumer () =
  (* One producer domain streams slabs bigger than the queue capacity
     (so every push blocks mid-slab and publishes a prefix) while the
     consumer drains concurrently: strict FIFO, nothing lost, nothing
     duplicated. *)
  let total = 1_000 and slab = 20 in
  let q = bq 8 in
  let producer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while !i < total do
          let n = min slab (total - !i) in
          BQ.push_list q
            (List.init n (fun k -> !i + k))
            ~block:true ~abort:no_abort;
          i := !i + n
        done)
  in
  let got = ref [] in
  let n_got = ref 0 in
  while !n_got < total do
    match BQ.peek_opt q with
    | Some v ->
      got := v :: !got;
      incr n_got;
      BQ.drop q
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  check_bool "all tokens in order" true
    (List.rev !got = List.init total Fun.id);
  check_int "queue drained" 0 (BQ.length q)

(* ------------------------------------------------------------------ *)
(* LPT placement packing                                               *)
(* ------------------------------------------------------------------ *)

let test_pack_balances_and_normalizes () =
  let groups = Libdn.Scheduler.pack ~weights:[| 7; 1; 5; 3; 1; 1 |] ~domains:3 in
  check_int "one slot per unit" 6 (Array.length groups);
  (* Slots are normalized 0..d-1 in first-use order. *)
  check_int "first unit opens slot 0" 0 groups.(0);
  let loads = Array.make 3 0 in
  Array.iteri (fun i s ->
      check_bool "slot in range" true (s >= 0 && s < 3);
      loads.(s) <- loads.(s) + [| 7; 1; 5; 3; 1; 1 |].(i)) groups;
  (* LPT on these weights yields a perfectly balanced 7/6/5 split:
     max bin 7 (the single heaviest unit alone). *)
  check_int "heaviest bin is the single heaviest unit" 7
    (Array.fold_left max 0 loads);
  check_ints "deterministic assignment"
    (Array.to_list groups)
    (Array.to_list (Libdn.Scheduler.pack ~weights:[| 7; 1; 5; 3; 1; 1 |] ~domains:3))

let test_pack_degenerate () =
  check_int "more domains than units: spread"
    3
    (Array.length (Libdn.Scheduler.pack ~weights:[| 2; 2; 2 |] ~domains:5));
  check_ints "one domain: everything fuses" [ 0; 0; 0 ]
    (Array.to_list (Libdn.Scheduler.pack ~weights:[| 4; 1; 9 |] ~domains:1))

(* ------------------------------------------------------------------ *)
(* Batched exchange is bit-exact: every design x engine x scheduler    *)
(* ------------------------------------------------------------------ *)

let designs_dir =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "examples/designs"

let example_designs () =
  Sys.readdir designs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fir")
  |> List.sort compare

let load file = Firrtl.Text.load ~path:(Filename.concat designs_dir file)

let first_instance circuit =
  match Hierarchy.instances (Ast.main_module circuit) with
  | (name, _) :: _ -> name
  | [] -> failwith "no instances to partition"

let plan_of circuit =
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Instances [ [ first_instance circuit ] ];
    }
  in
  FR.Compile.compile ~config circuit

(* One run's full observable record: the whole-simulation snapshot
   (registers, memories, cycle counters, in-flight tokens) plus the
   token-transfer count — batching may change WHEN tokens cross, never
   how many or what they carry. *)
let snapshot_run plan ~scheduler ~engine ~batch_cycles ~cycles =
  let h = FR.Runtime.instantiate ~scheduler ~engine ~batch_cycles plan in
  FR.Runtime.run h ~cycles;
  (FR.Runtime.save_to_string h, FR.Runtime.token_transfers h)

let test_batched_bit_exact_matrix () =
  List.iter
    (fun file ->
      let plan = plan_of (load file) in
      List.iter
        (fun engine ->
          List.iter
            (fun scheduler ->
              let what k =
                Printf.sprintf "%s (%s, %s, K=%d)" file
                  (Rtlsim.Sim.engine_name engine)
                  (Libdn.Scheduler.name scheduler)
                  k
              in
              let ref_snap, ref_tokens =
                snapshot_run plan ~scheduler ~engine ~batch_cycles:1 ~cycles:80
              in
              List.iter
                (fun k ->
                  let snap, tokens =
                    snapshot_run plan ~scheduler ~engine ~batch_cycles:k
                      ~cycles:80
                  in
                  check_string (what k ^ ": snapshot") ref_snap snap;
                  check_int (what k ^ ": token transfers") ref_tokens tokens)
                [ 2; 7; 64 ])
            [ Libdn.Scheduler.Sequential; Libdn.Scheduler.Parallel ])
        [ Rtlsim.Sim.Closure; Rtlsim.Sim.Bytecode ])
    (example_designs ())

let test_batched_matches_monolithic () =
  (* Deep batching on a multi-partition design still tracks the
     monolithic truth register for register. *)
  let circuit = Socgen.Ring_noc.ring_soc ~n_tiles:4 ~period:4 () in
  let mono = Rtlsim.Sim.of_circuit circuit in
  let cycles = 120 in
  for _ = 1 to cycles do
    Rtlsim.Sim.step mono
  done;
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Noc_routers [ [ 0; 1 ]; [ 2; 3 ] ];
    }
  in
  let plan = FR.Compile.compile ~config circuit in
  let h =
    FR.Runtime.instantiate ~scheduler:Libdn.Scheduler.Parallel ~batch_cycles:16
      plan
  in
  FR.Runtime.run h ~cycles;
  List.iter
    (fun probe ->
      let u = FR.Runtime.locate h probe in
      check_int probe (Rtlsim.Sim.get mono probe)
        (Rtlsim.Sim.get (FR.Runtime.sim_of h u) probe))
    [ "ttile0$rcvd_r"; "ttile1$rcvd_r"; "ttile2$rcvd_r"; "ttile3$rcvd_r" ]

let test_placement_bit_exact () =
  (* Fusing partitions onto shared domains (2-domain LPT placement) is
     execution-order only: snapshots match the spread per-cycle run. *)
  let circuit = Socgen.Ring_noc.ring_soc ~n_tiles:4 ~period:4 () in
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Noc_routers [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ];
    }
  in
  let plan = FR.Compile.compile ~config circuit in
  let reference =
    let h = FR.Runtime.instantiate ~scheduler:Libdn.Scheduler.Sequential plan in
    FR.Runtime.run h ~cycles:100;
    FR.Runtime.save_to_string h
  in
  let groups =
    match Platform.Place.groups ~domains:2 ~policy:Platform.Place.Auto plan with
    | Some g -> g
    | None -> Alcotest.fail "expected a fused placement for 5 units on 2 domains"
  in
  let h =
    FR.Runtime.instantiate ~scheduler:Libdn.Scheduler.Parallel ~batch_cycles:8
      ~groups plan
  in
  FR.Runtime.run h ~cycles:100;
  check_string "fused+batched parallel run matches sequential" reference
    (FR.Runtime.save_to_string h)

let prop_random_batch_depth =
  (* Random circuits, random batch depth and run length: always
     snapshot-identical to the per-cycle run under both schedulers. *)
  QCheck.Test.make ~name:"batch: random circuits bit-exact at any depth"
    ~count:15
    QCheck.(triple small_int (int_range 2 64) (int_range 5 60))
    (fun (seed, k, cycles) ->
      let circuit = Extensions_tests.random_circuit (seed + 41) 5 in
      let config =
        {
          FR.Spec.default_config with
          FR.Spec.selection = FR.Spec.Instances [ [ "i0" ] ];
          FR.Spec.allow_long_chains = true;
        }
      in
      let plan = FR.Compile.compile ~config circuit in
      List.for_all
        (fun scheduler ->
          let reference, _ =
            snapshot_run plan ~scheduler ~engine:Rtlsim.Sim.default_engine
              ~batch_cycles:1 ~cycles
          in
          let batched, _ =
            snapshot_run plan ~scheduler ~engine:Rtlsim.Sim.default_engine
              ~batch_cycles:k ~cycles
          in
          reference = batched)
        [ Libdn.Scheduler.Sequential; Libdn.Scheduler.Parallel ])

let suite =
  [
    ( "batch",
      [
        Alcotest.test_case "bqueue: slab push/peek/drop round trip" `Quick
          test_slab_roundtrip;
        Alcotest.test_case "bqueue: slabs interleaved with drops stay FIFO"
          `Quick test_slab_interleaved_wraparound;
        Alcotest.test_case "bqueue: overfull slab keeps its prefix" `Quick
          test_slab_full_keeps_prefix;
        Alcotest.test_case "bqueue: blocked slab push honors abort" `Quick
          test_slab_abort_while_blocked;
        Alcotest.test_case "bqueue: concurrent slab producer/consumer" `Quick
          test_slab_concurrent_producer_consumer;
        Alcotest.test_case "pack: LPT balances and normalizes slots" `Quick
          test_pack_balances_and_normalizes;
        Alcotest.test_case "pack: degenerate domain counts" `Quick
          test_pack_degenerate;
        Alcotest.test_case
          "batched exchange bit-exact: designs x engines x schedulers" `Quick
          test_batched_bit_exact_matrix;
        Alcotest.test_case "batched parallel run matches monolithic" `Quick
          test_batched_matches_monolithic;
        Alcotest.test_case "fused placement + batching matches sequential"
          `Quick test_placement_bit_exact;
        QCheck_alcotest.to_alcotest prop_random_batch_depth;
      ] );
  ]
