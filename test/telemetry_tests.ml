(* Tests for the unified telemetry subsystem: the JSON emitter/parser,
   metric semantics, the Chrome-trace exporter's shape, determinism of
   instrumented runs under both schedulers, and the structured deadlock
   snapshot (the Fig. 2a mis-cut reported as exact blocked channels). *)

open Firrtl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Option-free JSON accessors: a missing member reads as [Null], a
   wrong-typed coercion fails the test via [Option.get]. *)
module J = struct
  let member name v =
    Option.value ~default:Telemetry.Json.Null (Telemetry.Json.member name v)

  let to_str v = Option.get (Telemetry.Json.to_str v)
  let to_int v = Option.get (Telemetry.Json.to_int v)
  let to_float v = Option.get (Telemetry.Json.to_float v)
  let to_list v = Option.get (Telemetry.Json.to_list v)
end

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let open Telemetry.Json in
  let v =
    Obj
      [
        ("s", String "a\"b\\c\nd");
        ("i", Int (-42));
        ("f", Float 1.5);
        ("b", Bool true);
        ("n", Null);
        ("l", List [ Int 1; Int 2; Int 3 ]);
      ]
  in
  match parse (to_string v) with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok v' ->
    check_string "string field" "a\"b\\c\nd" (J.to_str (J.member "s" v'));
    check_int "int field" (-42) (J.to_int (J.member "i" v'));
    check_bool "float field" true (J.to_float (J.member "f" v') = 1.5);
    check_int "list length" 3 (List.length (J.to_list (J.member "l" v')));
    check_bool "null field" true (J.member "n" v' = Null)

let test_json_rejects_garbage () =
  let open Telemetry.Json in
  check_bool "trailing garbage" true (Result.is_error (parse "{} x"));
  check_bool "unterminated" true (Result.is_error (parse "[1, 2"));
  check_bool "bare word" true (Result.is_error (parse "bogus"))

(* ------------------------------------------------------------------ *)
(* Metric semantics                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge_hist () =
  let tel = Telemetry.create () in
  let c = Telemetry.counter tel "c" in
  Telemetry.incr c;
  Telemetry.add c 4;
  check_int "counter" 5 (Telemetry.counter_value c);
  (* Get-or-create returns the same metric. *)
  Telemetry.incr (Telemetry.counter tel "c");
  check_int "shared counter" 6 (Telemetry.counter_value c);
  let g = Telemetry.gauge tel "g" in
  Telemetry.set_max g 7;
  Telemetry.set_max g 3;
  check_int "gauge max" 7 (Telemetry.gauge_value g);
  let h = Telemetry.hist tel "h" in
  for i = 1 to 100 do
    Telemetry.observe h i
  done;
  match List.assoc_opt "h" (Telemetry.hists tel) with
  | None -> Alcotest.fail "histogram not registered"
  | Some summary ->
    check_int "count" 100 (J.to_int (J.member "count" summary));
    check_int "p50" 50 (J.to_int (J.member "p50" summary));
    check_int "p99" 99 (J.to_int (J.member "p99" summary));
    check_int "max" 100 (J.to_int (J.member "max" summary))

let test_disabled_sink_registers_nothing () =
  let c = Telemetry.counter Telemetry.null "never" in
  Telemetry.incr c;
  Telemetry.add c 100;
  check_int "disabled counter stays zero" 0 (Telemetry.counter_value c);
  check_int "nothing registered" 0 (List.length (Telemetry.counters Telemetry.null));
  let doc = Telemetry.metrics_json Telemetry.null in
  check_bool "disabled in snapshot" true
    (J.member "enabled" doc = Telemetry.Json.Bool false)

(* ------------------------------------------------------------------ *)
(* The Fig. 2 pair network, instrumented                               *)
(* ------------------------------------------------------------------ *)

let half_module name init =
  let b = Builder.create name in
  let a_src = Builder.input b "a_src" 8 in
  let a_snk = Builder.input b "a_snk" 8 in
  let x = Builder.reg b ~init "x" 8 in
  Builder.reg_next b "x" a_snk;
  Builder.output b "d_src" 8;
  Builder.connect b "d_src" x;
  Builder.output b "d_snk" 8;
  Builder.connect b "d_snk" Dsl.(a_src +: x);
  Builder.finish b

let chan name ports = { Libdn.Channel.name; ports }

let build_pair_network ~telemetry ~split =
  let net = Libdn.Network.create ~telemetry () in
  let add name init =
    let flat = Flatten.flatten (Flatten.to_circuit (half_module name init)) in
    let ins, outs =
      if split then
        ( [ chan "in_src" [ ("a_src", 8) ]; chan "in_snk" [ ("a_snk", 8) ] ],
          [ chan "out_src" [ ("d_src", 8) ]; chan "out_snk" [ ("d_snk", 8) ] ] )
      else
        ( [ chan "in" [ ("a_src", 8); ("a_snk", 8) ] ],
          [ chan "out" [ ("d_src", 8); ("d_snk", 8) ] ] )
    in
    let w = Goldengate.Fame1.wrap ~flat ~ins ~outs () in
    Goldengate.Fame1.add_to_network net ~name w
  in
  let p1 = add "half1" 1 in
  let p2 = add "half2" 2 in
  if split then begin
    Libdn.Network.connect net ~src:(p1, "out_src") ~dst:(p2, "in_src");
    Libdn.Network.connect net ~src:(p1, "out_snk") ~dst:(p2, "in_snk");
    Libdn.Network.connect net ~src:(p2, "out_src") ~dst:(p1, "in_src");
    Libdn.Network.connect net ~src:(p2, "out_snk") ~dst:(p1, "in_snk")
  end
  else begin
    Libdn.Network.connect net ~src:(p1, "out") ~dst:(p2, "in");
    Libdn.Network.connect net ~src:(p2, "out") ~dst:(p1, "in")
  end;
  (net, p1, p2)

let pair_x net p = (Libdn.Network.partition net p).Libdn.Network.pt_engine.Libdn.Engine.get "x"

let test_pair_determinism_with_telemetry () =
  (* The instrumented pair network computes identical register state and
     identical per-channel token counts under both schedulers. *)
  let run scheduler =
    let tel = Telemetry.create ~trace:true () in
    let net, p1, p2 = build_pair_network ~telemetry:tel ~split:true in
    Libdn.Scheduler.run ~scheduler net ~cycles:32;
    ((pair_x net p1, pair_x net p2), Telemetry.counters tel)
  in
  let (s1, s2), seq_counters = run Libdn.Scheduler.Sequential in
  let (p1, p2), par_counters = run Libdn.Scheduler.Parallel in
  check_int "x1 seq=par" s1 p1;
  check_int "x2 seq=par" s2 p2;
  (* Token-movement counters (enq/deq/fires) are part of the
     deterministic stream.  Attempt and stall counters are not: they
     count retries and park events, host-scheduling artifacts that
     differ between the two execution policies. *)
  let deterministic name =
    String.length name > 4
    && String.sub name 0 4 = "net."
    && (String.ends_with ~suffix:".enq" name
       || String.ends_with ~suffix:".deq" name
       || String.ends_with ~suffix:".fires" name)
  in
  List.iter
    (fun (name, v) ->
      if deterministic name then
        check_int name v (Option.value ~default:(-1) (List.assoc_opt name par_counters)))
    seq_counters

let test_pair_channel_counters () =
  let tel = Telemetry.create () in
  let net, _, _ = build_pair_network ~telemetry:tel ~split:true in
  Libdn.Scheduler.run net ~cycles:10;
  let counter name =
    Option.value ~default:(-1) (List.assoc_opt name (Telemetry.counters tel))
  in
  (* One token per channel per cycle, all consumed by advances. *)
  check_int "enq" 10 (counter "net.half1.in.in_src.enq");
  check_int "deq" 10 (counter "net.half1.in.in_src.deq");
  check_int "fires" 10 (counter "net.half2.out.out_snk.fires");
  check_bool "attempts >= fires" true
    (counter "net.half2.out.out_snk.attempts" >= 10);
  (* Sequential scheduler counts its sweeps. *)
  check_bool "sweeps counted" true (counter "sched.seq.sweeps" >= 10)

(* ------------------------------------------------------------------ *)
(* Plan-level determinism crosscheck (soc and ring)                    *)
(* ------------------------------------------------------------------ *)

let unit_states plan ~cycles scheduler =
  let tel = Telemetry.create ~trace:true () in
  let h = Fireaxe.instantiate ~scheduler ~telemetry:tel plan in
  Fireaxe.Runtime.run h ~cycles;
  Array.init (Fireaxe.Plan.n_units plan) (fun i ->
      Rtlsim.Sim.state_to_string
        (Rtlsim.Sim.save_state (Fireaxe.Runtime.sim_of h i)))

let crosscheck plan ~cycles =
  let seq = unit_states plan ~cycles Libdn.Scheduler.Sequential in
  let par = unit_states plan ~cycles Libdn.Scheduler.Parallel in
  Array.iteri
    (fun i s -> check_string (Printf.sprintf "unit %d state" i) s par.(i))
    seq

let test_soc_determinism_with_telemetry () =
  let config =
    {
      Fireaxe.Spec.default_config with
      Fireaxe.Spec.selection = Fireaxe.Spec.Instances [ [ "tile" ] ];
    }
  in
  crosscheck (Fireaxe.compile ~config (Socgen.Soc.single_core_soc ())) ~cycles:64

let ring_plan () =
  let config =
    {
      Fireaxe.Spec.default_config with
      Fireaxe.Spec.selection = Fireaxe.Spec.Noc_routers [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ] ];
    }
  in
  Fireaxe.compile ~config (Socgen.Ring_noc.ring_soc ~n_tiles:8 ())

let test_ring_determinism_with_telemetry () = crosscheck (ring_plan ()) ~cycles:100

(* ------------------------------------------------------------------ *)
(* Chrome trace shape                                                  *)
(* ------------------------------------------------------------------ *)

let test_trace_shape () =
  let plan = ring_plan () in
  let tel = Telemetry.create ~trace:true () in
  let h = Fireaxe.instantiate ~scheduler:Libdn.Scheduler.Parallel ~telemetry:tel plan in
  Fireaxe.Runtime.run h ~cycles:200;
  let tc = Option.get (Telemetry.trace tel) in
  (* Exercise the serialized form end to end: emit, reparse, inspect. *)
  let doc =
    match Telemetry.Json.parse (Telemetry.Chrome_trace.to_json tc) with
    | Ok doc -> doc
    | Error m -> Alcotest.failf "trace is not valid JSON: %s" m
  in
  let events = J.to_list (J.member "traceEvents" doc) in
  check_bool "has events" true (events <> []);
  let field = J.member in
  (* Every event carries the required Chrome trace keys. *)
  List.iter
    (fun e ->
      check_bool "has ph" true (field "ph" e <> Telemetry.Json.Null);
      check_bool "has ts" true (field "ts" e <> Telemetry.Json.Null);
      check_bool "has pid" true (field "pid" e <> Telemetry.Json.Null);
      check_bool "has tid" true (field "tid" e <> Telemetry.Json.Null))
    events;
  let spans = List.filter (fun e -> J.to_str (field "ph" e) = "X") events in
  (* One track per partition: every unit index appears as a pid. *)
  let pids =
    List.map (fun e -> J.to_int (field "pid" e)) spans |> List.sort_uniq compare
  in
  for u = 0 to Fireaxe.Plan.n_units plan - 1 do
    check_bool (Printf.sprintf "track for partition %d" u) true (List.mem u pids)
  done;
  (* Nonzero run spans under the parallel scheduler.  Stall spans are a
     host-scheduling artifact: with real hardware parallelism workers
     genuinely park waiting for tokens, but on a single-thread host the
     parallel policy degrades to the cooperative sweep, where the ring
     never catches a partition unable to progress. *)
  let named n =
    List.length (List.filter (fun e -> J.to_str (field "name" e) = n) spans)
  in
  check_bool "run spans" true (named "run" > 0);
  if Domain.recommended_domain_count () > 1 then
    check_bool "stall spans" true (named "stall" > 0);
  (* Per-track timestamps are monotonically non-decreasing in recording
     order. *)
  let last = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let key = (J.to_int (field "pid" e), J.to_int (field "tid" e)) in
      let ts = J.to_float (field "ts" e) in
      (match Hashtbl.find_opt last key with
      | Some prev -> check_bool "monotonic ts" true (ts >= prev)
      | None -> ());
      Hashtbl.replace last key ts)
    events

let test_metrics_snapshot_parses () =
  let tel = Telemetry.create () in
  let net, _, _ = build_pair_network ~telemetry:tel ~split:true in
  Libdn.Scheduler.run net ~cycles:5;
  match Telemetry.Json.parse (Telemetry.metrics_json_string tel) with
  | Error m -> Alcotest.failf "metrics snapshot is not valid JSON: %s" m
  | Ok doc ->
    check_string "schema" "fireaxe-metrics-1"
      (J.to_str (J.member "schema" doc));
    check_bool "has counters" true
      (J.member "counters" doc <> Telemetry.Json.Null)

(* ------------------------------------------------------------------ *)
(* Deadlock snapshot (Fig. 2a)                                         *)
(* ------------------------------------------------------------------ *)

let test_deadlock_snapshot () =
  (* The merged-channel mis-cut must report the exact blocked channels:
     each half's merged "in" starves the peer's merged "out". *)
  let tel = Telemetry.create ~trace:true () in
  let net, _, _ = build_pair_network ~telemetry:tel ~split:false in
  let msg =
    try
      Libdn.Scheduler.run net ~cycles:1;
      Alcotest.fail "expected deadlock"
    with Libdn.Network.Deadlock m -> m
  in
  (* The human message embeds the structured rendering. *)
  check_bool "message names the blocked channel" true
    (contains ~sub:"blocked-on=[in]" msg);
  (* The sink holds the machine-readable snapshot. *)
  match Telemetry.last_deadlock tel with
  | None -> Alcotest.fail "no snapshot recorded"
  | Some snap ->
    Alcotest.(check (list (pair string string)))
      "blocked edges"
      [ ("half1", "in"); ("half2", "in") ]
      (Telemetry.Snapshot.blocked snap);
    (* And the metrics snapshot embeds it. *)
    let doc = Telemetry.metrics_json tel in
    check_bool "deadlock in metrics" true
      (J.member "deadlock" doc <> Telemetry.Json.Null)

let test_sequential_deadlock_also_records () =
  let tel = Telemetry.create () in
  let net, _, _ = build_pair_network ~telemetry:tel ~split:false in
  (try Libdn.Scheduler.run ~scheduler:Libdn.Scheduler.Sequential net ~cycles:1 with
  | Libdn.Network.Deadlock _ -> ());
  check_bool "snapshot recorded" true (Telemetry.last_deadlock tel <> None)

let test_parallel_deadlock_also_records () =
  let tel = Telemetry.create () in
  let net, _, _ = build_pair_network ~telemetry:tel ~split:false in
  (try Libdn.Scheduler.run ~scheduler:Libdn.Scheduler.Parallel net ~cycles:1 with
  | Libdn.Network.Deadlock _ -> ());
  check_bool "snapshot recorded" true (Telemetry.last_deadlock tel <> None)

(* ------------------------------------------------------------------ *)
(* Scheduler name parsing                                              *)
(* ------------------------------------------------------------------ *)

let test_scheduler_aliases () =
  List.iter
    (fun (s, expect) ->
      match Libdn.Scheduler.of_string s with
      | Ok v -> check_bool s true (v = expect)
      | Error m -> Alcotest.failf "%s rejected: %s" s m)
    [
      ("seq", Libdn.Scheduler.Sequential);
      ("sequential", Libdn.Scheduler.Sequential);
      ("par", Libdn.Scheduler.Parallel);
      ("parallel", Libdn.Scheduler.Parallel);
    ];
  match Libdn.Scheduler.of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus accepted"
  | Error m ->
    List.iter
      (fun alias ->
        check_bool (Printf.sprintf "error lists %s" alias) true
          (contains ~sub:alias m))
      Libdn.Scheduler.accepted_names

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
        Alcotest.test_case "counter/gauge/hist semantics" `Quick test_counter_gauge_hist;
        Alcotest.test_case "disabled sink is inert" `Quick
          test_disabled_sink_registers_nothing;
        Alcotest.test_case "pair determinism (telemetry on)" `Quick
          test_pair_determinism_with_telemetry;
        Alcotest.test_case "pair channel counters" `Quick test_pair_channel_counters;
        Alcotest.test_case "soc determinism (telemetry on)" `Quick
          test_soc_determinism_with_telemetry;
        Alcotest.test_case "ring determinism (telemetry on)" `Quick
          test_ring_determinism_with_telemetry;
        Alcotest.test_case "chrome trace shape" `Quick test_trace_shape;
        Alcotest.test_case "metrics snapshot parses" `Quick test_metrics_snapshot_parses;
        Alcotest.test_case "deadlock snapshot (Fig. 2a)" `Quick test_deadlock_snapshot;
        Alcotest.test_case "sequential deadlock records" `Quick
          test_sequential_deadlock_also_records;
        Alcotest.test_case "parallel deadlock records" `Quick
          test_parallel_deadlock_also_records;
        Alcotest.test_case "scheduler aliases" `Quick test_scheduler_aliases;
      ] );
  ]
