(* Cross-scheduler equivalence: the parallel scheduler (one OCaml 5
   domain per partition, bounded token queues) must produce register
   state cycle-identical to the sequential round-robin reference on
   every partitioned design, in both exact and fast modes — the LI-BDN
   determinism argument made executable.  Deadlock detection (Fig. 2a)
   must fire under both policies. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_units = Alcotest.(check (list string))

let seq = Libdn.Scheduler.Sequential
let par = Libdn.Scheduler.Parallel

(* ------------------------------------------------------------------ *)
(* Network-level equivalence on the Fig. 2 pair design                 *)
(* ------------------------------------------------------------------ *)

let pair_x net p = (Libdn.Network.partition net p).pt_engine.Libdn.Engine.get "x"

let test_parallel_matches_monolithic_exact () =
  let mono = Rtlsim.Sim.of_circuit (Libdn_tests.monolithic_pair ()) in
  for _ = 1 to 32 do
    Rtlsim.Sim.step mono
  done;
  let net, p1, p2 = Libdn_tests.build_pair_network ~split:true ~seeded:false in
  Libdn.Scheduler.run ~scheduler:par net ~cycles:32;
  check_int "x1" (Rtlsim.Sim.get mono "p1$x") (pair_x net p1);
  check_int "x2" (Rtlsim.Sim.get mono "p2$x") (pair_x net p2)

let test_parallel_matches_sequential_seeded () =
  (* Fast mode: merged channels with seed tokens. *)
  let run scheduler =
    let net, p1, p2 = Libdn_tests.build_pair_network ~split:false ~seeded:true in
    Libdn.Scheduler.run ~scheduler net ~cycles:25;
    (pair_x net p1, pair_x net p2, Libdn.Network.token_transfers net)
  in
  let sx1, sx2, stok = run seq in
  let px1, px2, ptok = run par in
  check_int "x1" sx1 px1;
  check_int "x2" sx2 px2;
  check_int "token transfers identical" stok ptok

let test_deadlock_detected_under_both () =
  List.iter
    (fun scheduler ->
      let net, _, _ = Libdn_tests.build_pair_network ~split:false ~seeded:false in
      check_bool
        (Libdn.Scheduler.name scheduler ^ " detects the Fig 2a deadlock")
        true
        (try
           Libdn.Scheduler.run ~scheduler net ~cycles:1;
           false
         with Libdn.Network.Deadlock _ -> true))
    [ seq; par ]

(* ------------------------------------------------------------------ *)
(* Plan-level equivalence on the partitioned test designs              *)
(* ------------------------------------------------------------------ *)

let soc_plan mode =
  let config =
    {
      Fireaxe.Spec.default_config with
      Fireaxe.Spec.mode;
      Fireaxe.Spec.selection = Fireaxe.Spec.Instances [ [ "tile" ] ];
    }
  in
  Fireaxe.compile ~config (Socgen.Soc.single_core_soc ())

let ring_plan mode =
  (* 8 routers in 4 extracted partitions of 2, plus the tile wrapper:
     5 partitions (>= 4, the bench shape). *)
  let config =
    {
      Fireaxe.Spec.default_config with
      Fireaxe.Spec.mode;
      Fireaxe.Spec.selection =
        Fireaxe.Spec.Noc_routers [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ]; [ 6; 7 ] ];
    }
  in
  Fireaxe.compile ~config (Socgen.Ring_noc.ring_soc ~n_tiles:8 ~period:4 ())

let test_crosscheck_soc_exact () =
  check_units "no mismatching units" []
    (Fireaxe.crosscheck_schedulers ~cycles:200 (soc_plan Fireaxe.Spec.Exact))

let test_crosscheck_soc_fast () =
  check_units "no mismatching units" []
    (Fireaxe.crosscheck_schedulers ~cycles:200 (soc_plan Fireaxe.Spec.Fast))

let test_crosscheck_ring_exact () =
  check_units "no mismatching units" []
    (Fireaxe.crosscheck_schedulers ~cycles:120 (ring_plan Fireaxe.Spec.Exact))

let test_crosscheck_ring_fast () =
  check_units "no mismatching units" []
    (Fireaxe.crosscheck_schedulers ~cycles:120 (ring_plan Fireaxe.Spec.Fast))

let test_run_until_cycle_identical () =
  (* The workload-termination cycle is scheduler-independent. *)
  let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:8 ~reps:4 ~dst:60 in
  let data = List.init 8 (fun i -> (32 + i, (i * 3) + 2)) in
  let halt_cycle scheduler =
    let h = Fireaxe.instantiate ~scheduler (soc_plan Fireaxe.Spec.Exact) in
    let mu = Fireaxe.Runtime.locate h "mem$mem" in
    Socgen.Soc.load_program (Fireaxe.Runtime.sim_of h mu) ~mem:"mem$mem" ~data program;
    Fireaxe.Runtime.run_until h ~max_cycles:5_000 (fun h ->
        let u = Fireaxe.Runtime.locate h "tile$core$state" in
        Rtlsim.Sim.get (Fireaxe.Runtime.sim_of h u) "tile$core$state"
        = Socgen.Kite_core.s_halted)
  in
  let s = halt_cycle seq in
  check_bool "workload actually terminates" true (s < 5_000);
  check_int "halt cycle identical" s (halt_cycle par)

(* ------------------------------------------------------------------ *)
(* Naming                                                              *)
(* ------------------------------------------------------------------ *)

let test_scheduler_names () =
  List.iter
    (fun (s, expect) ->
      match Libdn.Scheduler.of_string s with
      | Ok t -> check_bool s true (t = expect)
      | Error m -> Alcotest.fail m)
    [ ("seq", seq); ("sequential", seq); ("par", par); ("parallel", par) ];
  check_bool "bad name rejected" true
    (match Libdn.Scheduler.of_string "bogus" with Error _ -> true | Ok _ -> false);
  check_bool "names round-trip" true
    (List.for_all
       (fun t -> Libdn.Scheduler.of_string (Libdn.Scheduler.name t) = Ok t)
       [ seq; par ])

let suite =
  [
    ( "libdn.scheduler",
      [
        Alcotest.test_case "parallel matches monolithic (exact)" `Quick
          test_parallel_matches_monolithic_exact;
        Alcotest.test_case "parallel matches sequential (fast/seeded)" `Quick
          test_parallel_matches_sequential_seeded;
        Alcotest.test_case "deadlock detected under both" `Quick
          test_deadlock_detected_under_both;
        Alcotest.test_case "crosscheck soc exact" `Quick test_crosscheck_soc_exact;
        Alcotest.test_case "crosscheck soc fast" `Quick test_crosscheck_soc_fast;
        Alcotest.test_case "crosscheck ring 5-way exact" `Quick test_crosscheck_ring_exact;
        Alcotest.test_case "crosscheck ring 5-way fast" `Quick test_crosscheck_ring_fast;
        Alcotest.test_case "run_until cycle-identical" `Quick test_run_until_cycle_identical;
        Alcotest.test_case "scheduler names" `Quick test_scheduler_names;
      ] );
  ]
