(* Tests for the §VIII future-work extensions (automated partitioning,
   Ethernet transport, deployment advisor), the VCD writer, and a
   randomized end-to-end property: FireRipper partitions of random
   hierarchical circuits stay cycle-exact against the monolithic
   simulation. *)

open Firrtl

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Automated partitioning                                              *)
(* ------------------------------------------------------------------ *)

let test_auto_partition_multicore () =
  let circuit = Socgen.Soc.multi_core_soc ~cores:4 ~mem_latency:1 () in
  let plan, assignment = Fireaxe.auto_partition ~n_fpgas:3 circuit in
  check_bool "at least 2 units" true (Fireaxe.Plan.n_units plan >= 2);
  check_bool "all instances assigned" true
    (Array.fold_left (fun acc g -> acc + List.length g) 0 assignment.Fireripper.Auto.a_groups
    = List.length (Hierarchy.instances (Ast.main_module circuit)));
  (* The auto-partitioned plan still simulates cycle-exactly. *)
  let mono = Rtlsim.Sim.of_circuit (Socgen.Soc.multi_core_soc ~cores:4 ~mem_latency:1 ()) in
  Socgen.Soc.load_program mono ~mem:"mem$mem" ~data:[]
    (Socgen.Kite_isa.fib_program ~n:6 ~dst:60);
  for _ = 1 to 2000 do
    Rtlsim.Sim.step mono
  done;
  let h = Fireaxe.instantiate plan in
  let u = Fireaxe.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (Fireaxe.Runtime.sim_of h u) ~mem:"mem$mem" ~data:[]
    (Socgen.Kite_isa.fib_program ~n:6 ~dst:60);
  Fireaxe.Runtime.run h ~cycles:2000;
  List.iter
    (fun reg ->
      let u = Fireaxe.Runtime.locate h reg in
      check_int reg (Rtlsim.Sim.get mono reg) (Rtlsim.Sim.get (Fireaxe.Runtime.sim_of h u) reg))
    [ "tile0$core$retired_count"; "tile3$core$retired_count" ]

let test_auto_partition_respects_capacity () =
  (* With a capacity smaller than the biggest instance, packing fails
     with a helpful error. *)
  let circuit = Socgen.Soc.multi_core_soc ~cores:2 () in
  check_bool "refuses impossible fit" true
    (try
       ignore
         (Fireripper.Auto.assign
            ~estimator:{ Fireripper.Auto.est_luts = (fun _ _ -> 100); est_capacity = 50 }
            ~n_fpgas:2 circuit);
       false
     with Fireripper.Spec.Compile_error _ -> true)

let test_auto_partition_prefers_connectivity () =
  (* Three equal-sized instances: a and b share a wide bus, c is
     independent.  The greedy grower must co-locate a and b. *)
  let leaf name =
    let b = Builder.create name in
    let x = Builder.input b "x" 32 in
    let r = Builder.reg b "r" 32 in
    Builder.reg_next b "r" x;
    Builder.output b "q" 32;
    Builder.connect b "q" r;
    Builder.finish b
  in
  let b = Builder.create "ctop" in
  let a = Builder.inst b "a" "la" in
  let bb = Builder.inst b "b" "lb" in
  let c = Builder.inst b "c" "lc" in
  Builder.connect_in b bb "x" (Builder.of_inst a "q");
  Builder.connect_in b a "x" (Builder.of_inst bb "q");
  Builder.connect_in b c "x" (Dsl.lit ~width:32 7);
  Builder.output b "o" 32;
  Builder.connect b "o" (Builder.of_inst c "q");
  let circuit =
    { Ast.cname = "ctop"; main = "ctop"; modules = [ leaf "la"; leaf "lb"; leaf "lc"; Builder.finish b ] }
  in
  let asg =
    Fireripper.Auto.assign
      ~estimator:{ Fireripper.Auto.est_luts = (fun _ _ -> 10); est_capacity = 1000 }
      ~n_fpgas:2 circuit
  in
  let bin_of name =
    let found = ref (-1) in
    Array.iteri (fun k g -> if List.mem name g then found := k) asg.Fireripper.Auto.a_groups;
    !found
  in
  check_int "a and b co-located" (bin_of "a") (bin_of "b");
  check_int "no cut" 0 asg.Fireripper.Auto.a_cut_bits

(* ------------------------------------------------------------------ *)
(* Ethernet transport and star topology                                *)
(* ------------------------------------------------------------------ *)

let test_ethernet_between_qsfp_and_host () =
  let d k = Platform.Transport.delivery_ps k ~bits:512 in
  check_bool "slower than QSFP" true (d Platform.Transport.Ethernet > d Platform.Transport.Qsfp);
  check_bool "far faster than host-managed" true
    (d Platform.Transport.Ethernet < d Platform.Transport.Pcie_host)

let test_star_topology_runs () =
  let spec =
    Platform.Perf.star_spec ~n:5 ~bits:256 ~freq_mhz:50.
      ~transport:Platform.Transport.Ethernet
  in
  let r = Platform.Perf.rate spec in
  check_bool "positive rate" true (r > 0.);
  (* The switched star is slower than a QSFP ring of the same size but
     within an order of magnitude. *)
  let ring =
    Platform.Perf.rate
      (Platform.Perf.ring_spec ~n:5 ~bits:256 ~freq_mhz:50.
         ~transport:Platform.Transport.Qsfp)
  in
  check_bool "slower than direct ring" true (r < ring);
  check_bool "same order of magnitude" true (r > ring /. 10.)

(* ------------------------------------------------------------------ *)
(* Deployment advisor                                                  *)
(* ------------------------------------------------------------------ *)

let test_advisor_short_vs_long_campaign () =
  let unit_estimates =
    [ { Platform.Resource.luts = 500_000; ffs = 10_000; bram_bits = 0; dsps = 0 } ]
  in
  let short =
    Platform.Advisor.advise ~n_fpgas:2 ~boundary_bits:512 ~cycles_per_run:1_000_000_000
      ~runs:2 ~unit_estimates
  in
  let long =
    Platform.Advisor.advise ~n_fpgas:2 ~boundary_bits:512 ~cycles_per_run:1_000_000_000
      ~runs:500 ~unit_estimates
  in
  check_bool "on-prem faster (QSFP)" true
    (short.Platform.Advisor.a_on_prem.Platform.Advisor.e_rate_hz
    > short.Platform.Advisor.a_cloud.Platform.Advisor.e_rate_hz);
  check_bool "short campaign advice mentions on-prem iteration" true
    (short.Platform.Advisor.a_recommendation <> long.Platform.Advisor.a_recommendation);
  check_bool "cost scales with runs" true
    (long.Platform.Advisor.a_cloud.Platform.Advisor.e_cost_usd
    > short.Platform.Advisor.a_cloud.Platform.Advisor.e_cost_usd)

let test_advisor_capacity_gate () =
  (* A partition that fits the U250 but not the shell-burdened VU9P. *)
  let unit_estimates =
    [ { Platform.Resource.luts = 1_300_000; ffs = 0; bram_bits = 0; dsps = 0 } ]
  in
  let advice =
    Platform.Advisor.advise ~n_fpgas:2 ~boundary_bits:512 ~cycles_per_run:1_000_000
      ~runs:100 ~unit_estimates
  in
  check_bool "cloud does not fit" false advice.Platform.Advisor.a_cloud.Platform.Advisor.e_fits;
  check_bool "on-prem fits" true advice.Platform.Advisor.a_on_prem.Platform.Advisor.e_fits

(* ------------------------------------------------------------------ *)
(* VCD writer                                                          *)
(* ------------------------------------------------------------------ *)

let test_vcd_output () =
  let b = Builder.create "vcdtest" in
  let c = Builder.reg b "c" 4 in
  Builder.reg_next b "c" Dsl.(c +: lit ~width:4 1);
  Builder.output b "tick" 1;
  Builder.connect b "tick" Dsl.(bit c 0);
  let sim = Rtlsim.Sim.create (Builder.finish b) in
  let vcd = Rtlsim.Vcd.create sim ~signals:[ "c"; "tick" ] in
  for _ = 1 to 5 do
    Rtlsim.Sim.eval_comb sim;
    Rtlsim.Vcd.sample vcd;
    Rtlsim.Sim.step_seq sim
  done;
  let out = Rtlsim.Vcd.contents vcd in
  let contains needle =
    let nl = String.length needle and hl = String.length out in
    let rec go i = i + nl <= hl && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "header" true (contains "$enddefinitions");
  check_bool "declares c" true (contains "$var wire 4");
  check_bool "declares tick" true (contains "$var wire 1");
  check_bool "has timestamps" true (contains "#0" && contains "#4");
  check_bool "binary values" true (contains "b0011")

let test_vcd_only_changes () =
  let b = Builder.create "constant" in
  let r = Builder.reg b ~init:5 "r" 4 in
  Builder.reg_next b "r" r;
  Builder.output b "o" 4;
  Builder.connect b "o" r;
  let sim = Rtlsim.Sim.create (Builder.finish b) in
  let vcd = Rtlsim.Vcd.create sim ~signals:[ "o" ] in
  for _ = 1 to 10 do
    Rtlsim.Sim.eval_comb sim;
    Rtlsim.Vcd.sample vcd;
    Rtlsim.Sim.step_seq sim
  done;
  let out = Rtlsim.Vcd.contents vcd in
  (* Only the initial sample should appear. *)
  let timestamps =
    String.split_on_char '\n' out |> List.filter (fun l -> String.length l > 0 && l.[0] = '#')
  in
  check_int "one timestamp" 1 (List.length timestamps)

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_restore () =
  let circuit = Socgen.Soc.single_core_soc ~mem_latency:1 () in
  let config =
    {
      Fireripper.Spec.default_config with
      Fireripper.Spec.selection = Fireripper.Spec.Instances [ [ "tile" ] ];
    }
  in
  let plan = Fireripper.Compile.compile ~config circuit in
  let h = Fireripper.Runtime.instantiate plan in
  let u = Fireripper.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (Fireripper.Runtime.sim_of h u) ~mem:"mem$mem" ~data:[]
    (Socgen.Kite_isa.fib_program ~n:20 ~dst:60);
  Fireripper.Runtime.run h ~cycles:150;
  let restore = Fireripper.Runtime.checkpoint h in
  let probe () =
    let u = Fireripper.Runtime.locate h "tile$core$pc" in
    ( Rtlsim.Sim.get (Fireripper.Runtime.sim_of h u) "tile$core$pc",
      Rtlsim.Sim.get (Fireripper.Runtime.sim_of h u) "tile$core$retired_count" )
  in
  Fireripper.Runtime.run h ~cycles:400;
  let after_first = probe () in
  restore ();
  Fireripper.Runtime.run h ~cycles:400;
  check_bool "re-execution from checkpoint is identical" true (probe () = after_first)

let test_checkpoint_fame5 () =
  let circuit = Socgen.Soc.multi_core_soc ~cores:3 ~mem_latency:1 () in
  let config =
    {
      Fireripper.Spec.default_config with
      Fireripper.Spec.selection = Fireripper.Spec.Instances [ [ "tile0"; "tile1"; "tile2" ] ];
    }
  in
  let plan = Fireripper.Compile.compile ~config circuit in
  let h = Fireripper.Runtime.instantiate ~fame5:true plan in
  let u = Fireripper.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (Fireripper.Runtime.sim_of h u) ~mem:"mem$mem" ~data:[]
    (Socgen.Kite_isa.fib_program ~n:10 ~dst:60);
  Fireripper.Runtime.run h ~cycles:200;
  let restore = Fireripper.Runtime.checkpoint h in
  let f5 = Option.get (Fireripper.Runtime.fame5_of h 1) in
  let probe () =
    List.map
      (fun k ->
        Goldengate.Fame5.with_bank f5 k (fun s lane -> Rtlsim.Sim.get ~lane s "core$pc"))
      [ 0; 1; 2 ]
  in
  Fireripper.Runtime.run h ~cycles:500;
  let after_first = probe () in
  restore ();
  Fireripper.Runtime.run h ~cycles:500;
  check_bool "FAME-5 checkpoint restores all banks" true (probe () = after_first)

(* ------------------------------------------------------------------ *)
(* Divergence hunting                                                  *)
(* ------------------------------------------------------------------ *)

let test_find_divergence () =
  (* Golden = bug-free design; partitioned run = design with a latent
     bug planted in tile 1.  The finder must report the first divergent
     cycle on the checksum register. *)
  let good = Socgen.Ring_noc.ring_soc ~n_tiles:3 ~period:4 () in
  let bad = Socgen.Ring_noc.ring_soc ~n_tiles:3 ~period:4 ~bug_tile:1 ~bug_at:60 () in
  let config =
    { Fireripper.Spec.default_config with
      Fireripper.Spec.selection = Fireripper.Spec.Noc_routers [ [ 0; 1 ] ] }
  in
  let plan = Fireripper.Compile.compile ~config bad in
  let handle = Fireripper.Runtime.instantiate plan in
  let golden = Rtlsim.Sim.of_circuit good in
  let signals = List.init 3 (fun i -> Printf.sprintf "ttile%d$checksum_r" i) in
  (match Fireaxe.find_divergence ~golden ~handle ~signals ~stride:300 ~max_cycles:4000 () with
  | None -> Alcotest.fail "divergence not found"
  | Some d ->
    check_bool "on the planted tile" true (d.Fireaxe.d_signal = "ttile1$checksum_r");
    check_bool "deep into the run" true (d.Fireaxe.d_cycle > 200);
    check_bool "values differ" true (d.Fireaxe.d_golden <> d.Fireaxe.d_partitioned);
    (* Exactness of the pinpoint: one cycle earlier they agreed.  Replay
       fresh simulations to the reported cycle and verify. *)
    let g2 = Rtlsim.Sim.of_circuit good in
    let h2 = Fireripper.Runtime.instantiate (Fireripper.Compile.compile ~config bad) in
    for _ = 1 to d.Fireaxe.d_cycle - 1 do
      Rtlsim.Sim.step g2
    done;
    Fireripper.Runtime.run h2 ~cycles:(d.Fireaxe.d_cycle - 1);
    let u = Fireripper.Runtime.locate h2 d.Fireaxe.d_signal in
    check_int "agrees one cycle earlier"
      (Rtlsim.Sim.get g2 d.Fireaxe.d_signal)
      (Rtlsim.Sim.get (Fireripper.Runtime.sim_of h2 u) d.Fireaxe.d_signal))

let test_find_divergence_stride_invariant () =
  (* Regression for the fine-replay path: rolling a window back restores
     the golden sim's cycle counter, so the replay must resume exactly
     at the window start.  The pinpointed cycle and signal must be
     independent of the stride — including strides that place the
     divergence just after a window boundary (rollback to a non-zero
     cycle). *)
  let good = Socgen.Ring_noc.ring_soc ~n_tiles:3 ~period:4 () in
  let bad = Socgen.Ring_noc.ring_soc ~n_tiles:3 ~period:4 ~bug_tile:1 ~bug_at:60 () in
  let config =
    { Fireripper.Spec.default_config with
      Fireripper.Spec.selection = Fireripper.Spec.Noc_routers [ [ 0; 1 ] ] }
  in
  let signals = List.init 3 (fun i -> Printf.sprintf "ttile%d$checksum_r" i) in
  let hunt stride =
    let handle = Fireripper.Runtime.instantiate (Fireripper.Compile.compile ~config bad) in
    let golden = Rtlsim.Sim.of_circuit good in
    match Fireaxe.find_divergence ~golden ~handle ~signals ~stride ~max_cycles:4000 () with
    | None -> Alcotest.fail (Printf.sprintf "stride %d: divergence not found" stride)
    | Some d -> d
  in
  (* Stride 1 never rolls back past a single cycle: ground truth. *)
  let reference = hunt 1 in
  List.iter
    (fun stride ->
      let d = hunt stride in
      check_int (Printf.sprintf "stride %d pinpoints the same cycle" stride)
        reference.Fireaxe.d_cycle d.Fireaxe.d_cycle;
      check_bool (Printf.sprintf "stride %d blames the same signal" stride) true
        (d.Fireaxe.d_signal = reference.Fireaxe.d_signal);
      check_int "same golden value" reference.Fireaxe.d_golden d.Fireaxe.d_golden;
      check_int "same partitioned value" reference.Fireaxe.d_partitioned
        d.Fireaxe.d_partitioned)
    [ 50; 64; 500 ]

let test_find_divergence_none () =
  let circuit = Socgen.Ring_noc.ring_soc ~n_tiles:2 ~period:5 () in
  let config =
    { Fireripper.Spec.default_config with
      Fireripper.Spec.selection = Fireripper.Spec.Noc_routers [ [ 0 ] ] }
  in
  let plan = Fireripper.Compile.compile ~config circuit in
  let handle = Fireripper.Runtime.instantiate plan in
  let golden = Rtlsim.Sim.of_circuit (Socgen.Ring_noc.ring_soc ~n_tiles:2 ~period:5 ()) in
  check_bool "no divergence on identical designs" true
    (Fireaxe.find_divergence ~golden ~handle
       ~signals:[ "ttile0$checksum_r"; "ttile1$checksum_r" ]
       ~stride:200 ~max_cycles:1000 ()
    = None)

(* ------------------------------------------------------------------ *)
(* Randomized partition equivalence                                    *)
(* ------------------------------------------------------------------ *)

(* Builds a random hierarchical circuit: [n] leaf instances, each with a
   register pipeline and a combinational passthrough; instance inputs are
   wired from earlier instances' outputs (comb) or any instance's
   registered outputs, so the design is always legal (acyclic).  The
   partition may create combinational chains longer than 2, so the
   property uses the allow_long_chains escape hatch — exercising the
   generic LI-BDN scheduler well beyond the paper's restricted case. *)
let random_circuit seed n =
  let rng = Des.Stats.rng ~seed in
  let leaf k =
    let b = Builder.create (Printf.sprintf "leaf%d" k) in
    let x = Builder.input b "x" 8 in
    let y = Builder.input b "y" 8 in
    let r = Builder.reg b ~init:(Des.Stats.int rng 200) "r" 8 in
    Builder.reg_next b "r" Dsl.(r +: x +: (y >>: lit ~width:2 1));
    Builder.output b "rq" 8;
    Builder.connect b "rq" r;
    Builder.output b "cq" 8;
    Builder.connect b "cq" Dsl.(x ^: y ^: lit ~width:8 (Des.Stats.int rng 255));
    Builder.finish b
  in
  let leaves = List.init n leaf in
  let b = Builder.create "rtop" in
  let insts = List.init n (fun k -> Builder.inst b (Printf.sprintf "i%d" k) (Printf.sprintf "leaf%d" k)) in
  List.iteri
    (fun k inst ->
      let wire_input port =
        (* Earlier instances' comb outputs, or any instance's registered
           output, or a constant. *)
        let choice = Des.Stats.int rng 3 in
        let src =
          if choice = 0 && k > 0 then
            Builder.of_inst (List.nth insts (Des.Stats.int rng k)) "cq"
          else if choice = 1 then
            Builder.of_inst (List.nth insts (Des.Stats.int rng n)) "rq"
          else Dsl.lit ~width:8 (Des.Stats.int rng 255)
        in
        Builder.connect_in b inst port src
      in
      wire_input "x";
      wire_input "y")
    insts;
  Builder.output b "probe" 8;
  Builder.connect b "probe" (Builder.of_inst (List.nth insts (n - 1)) "rq");
  { Ast.cname = "rtop"; main = "rtop"; modules = leaves @ [ Builder.finish b ] }

let prop_random_partitions_cycle_exact =
  QCheck.Test.make ~name:"random circuits: exact partition = monolithic" ~count:25
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, extra) ->
      let n = 4 + extra in
      let circuit = random_circuit (seed + 1) n in
      (* Pick a random non-empty selection of instances. *)
      let rng = Des.Stats.rng ~seed:(seed + 77) in
      let selected =
        List.init n (fun k -> (k, Des.Stats.bernoulli rng 0.4))
        |> List.filter_map (fun (k, pick) -> if pick then Some (Printf.sprintf "i%d" k) else None)
      in
      let selected = if selected = [] then [ "i0" ] else selected in
      if List.length selected = n then true (* nothing left in the base *)
      else begin
        let config =
          {
            Fireripper.Spec.default_config with
            Fireripper.Spec.selection = Fireripper.Spec.Instances [ selected ];
            Fireripper.Spec.allow_long_chains = true;
          }
        in
        let plan = Fireripper.Compile.compile ~config circuit in
        let mono = Rtlsim.Sim.of_circuit circuit in
        for _ = 1 to 40 do
          Rtlsim.Sim.step mono
        done;
        let h = Fireripper.Runtime.instantiate plan in
        Fireripper.Runtime.run h ~cycles:40;
        List.for_all
          (fun k ->
            let reg = Printf.sprintf "i%d$r" k in
            let u = Fireripper.Runtime.locate h reg in
            Rtlsim.Sim.get mono reg = Rtlsim.Sim.get (Fireripper.Runtime.sim_of h u) reg)
          (List.init n Fun.id)
      end)

let prop_random_partitions_hardware_exact =
  (* The same randomized equivalence, but through the *generated
     hardware* path: FireRipper plan -> FAME-1 control hardware ->
     host-clock simulation.  Chains beyond depth 2 exercise the
     depth-level channelization in hardware too. *)
  QCheck.Test.make ~name:"random circuits: hardware partition = monolithic" ~count:10
    QCheck.(int_bound 500)
    (fun seed ->
      let n = 4 in
      let circuit = random_circuit (seed + 3) n in
      let rng = Des.Stats.rng ~seed:(seed + 991) in
      let selected =
        List.init n (fun k -> (k, Des.Stats.bernoulli rng 0.5))
        |> List.filter_map (fun (k, pick) -> if pick then Some (Printf.sprintf "i%d" k) else None)
      in
      let selected = if selected = [] then [ "i1" ] else selected in
      if List.length selected = n then true
      else begin
        let config =
          {
            Fireripper.Spec.default_config with
            Fireripper.Spec.selection = Fireripper.Spec.Instances [ selected ];
            Fireripper.Spec.allow_long_chains = true;
          }
        in
        let plan = Fireripper.Compile.compile ~config circuit in
        let target = 25 in
        let mono = Rtlsim.Sim.of_circuit circuit in
        for _ = 1 to target do
          Rtlsim.Sim.step mono
        done;
        let r = Fireripper.Hw.run ~latency:1 ~target_cycles:target plan ~setup:(fun _ -> ()) in
        List.for_all
          (fun k ->
            let reg = Printf.sprintf "i%d$r" k in
            let value =
              List.find_map
                (fun u ->
                  try Some (Rtlsim.Sim.get r.Fireripper.Hw.hr_sim (Fireripper.Hw.host_signal ~unit:u reg))
                  with Rtlsim.Sim.Sim_error _ -> None)
                [ 0; 1 ]
            in
            Rtlsim.Sim.get mono reg = Option.get value)
          (List.init n Fun.id)
      end)

let suite =
  [
    ( "auto.partition",
      [
        Alcotest.test_case "multicore end to end" `Quick test_auto_partition_multicore;
        Alcotest.test_case "capacity gate" `Quick test_auto_partition_respects_capacity;
        Alcotest.test_case "connectivity preference" `Quick test_auto_partition_prefers_connectivity;
      ] );
    ( "platform.ethernet",
      [
        Alcotest.test_case "latency ordering" `Quick test_ethernet_between_qsfp_and_host;
        Alcotest.test_case "star topology" `Quick test_star_topology_runs;
      ] );
    ( "platform.advisor",
      [
        Alcotest.test_case "campaign sizing" `Quick test_advisor_short_vs_long_campaign;
        Alcotest.test_case "capacity gate" `Quick test_advisor_capacity_gate;
      ] );
    ( "fireaxe.divergence",
      [
        Alcotest.test_case "finds the planted bug" `Quick test_find_divergence;
        Alcotest.test_case "pinpoint is stride-invariant" `Quick
          test_find_divergence_stride_invariant;
        Alcotest.test_case "silent when identical" `Quick test_find_divergence_none;
      ] );
    ( "runtime.checkpoint",
      [
        Alcotest.test_case "restore and re-execute" `Quick test_checkpoint_restore;
        Alcotest.test_case "FAME-5 banks" `Quick test_checkpoint_fame5;
      ] );
    ( "rtlsim.vcd",
      [
        Alcotest.test_case "format" `Quick test_vcd_output;
        Alcotest.test_case "changes only" `Quick test_vcd_only_changes;
      ] );
    ( "fireripper.properties",
      [
        QCheck_alcotest.to_alcotest prop_random_partitions_cycle_exact;
        QCheck_alcotest.to_alcotest prop_random_partitions_hardware_exact;
      ] );
  ]
