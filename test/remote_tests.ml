(* Tests for multi-process partitioned simulation: a partition unit in
   its own worker process (the software analogue of a separate FPGA),
   driven through the ordinary LI-BDN network.  Exact mode must stay
   cycle-exact across the process boundary; mixed local/remote
   networks, remote memory access and worker lifecycle all covered. *)

module FR = Fireripper

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The worker binary sits next to the test executable's directory:
   _build/default/test/test_main.exe -> _build/default/bin/. *)
let worker =
  Filename.concat
    (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
    "fireaxe_worker.exe"

let test_worker_binary_present () =
  check_bool (Printf.sprintf "worker at %s" worker) true (Sys.file_exists worker)

let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:8 ~reps:4 ~dst:60
let data = List.init 8 (fun i -> (32 + i, (i * 3) + 2))

let soc_plan () =
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "tile" ] ] }
  in
  FR.Compile.compile ~config (Socgen.Soc.single_core_soc ~mem_latency:1 ())

let test_remote_tile_cycle_exact () =
  (* The Kite tile runs in a separate process; the memory stays local.
     The partitioned run must match the monolithic one cycle for
     cycle. *)
  let mono = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  Socgen.Soc.load_program mono ~mem:"mem$mem" ~data program;
  for _ = 1 to 1200 do
    Rtlsim.Sim.step mono
  done;
  let plan = soc_plan () in
  (* The tile is the extracted unit; find it by probing which unit has
     no local simulator after remote instantiation. *)
  let h, conns = FR.Runtime.instantiate_remote ~worker ~remote_units:[ 1 ] plan in
  (match conns with
  | [ (1, _) ] -> ()
  | _ -> Alcotest.fail "expected exactly one remote connection for unit 1");
  let conn = List.assoc 1 conns in
  (* Program and data load into the LOCAL memory unit. *)
  let mu = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h mu) ~mem:"mem$mem" ~data program;
  FR.Runtime.run h ~cycles:1200;
  (* Local-side state matches. *)
  List.iter
    (fun reg ->
      let u = FR.Runtime.locate h reg in
      check_int reg (Rtlsim.Sim.get mono reg) (Rtlsim.Sim.get (FR.Runtime.sim_of h u) reg))
    [ "mem$state"; "mem$addr_r" ];
  check_int "result in local memory" (Rtlsim.Sim.peek_mem mono "mem$mem" 60)
    (Rtlsim.Sim.peek_mem (FR.Runtime.sim_of h mu) "mem$mem" 60);
  (* Remote-side architectural state matches, read over the pipe. *)
  check_int "remote retired count"
    (Rtlsim.Sim.get mono "tile$core$retired_count")
    (Libdn.Remote_engine.get conn "tile$core$retired_count");
  check_int "remote pc" (Rtlsim.Sim.get mono "tile$core$pc")
    (Libdn.Remote_engine.get conn "tile$core$pc");
  check_int "remote register file"
    (Rtlsim.Sim.peek_mem mono "tile$core$rf" 1)
    (Libdn.Remote_engine.peek_mem conn "tile$core$rf" 1);
  List.iter (fun (_, c) -> Libdn.Remote_engine.close c) conns

let test_remote_poke () =
  (* Program loaded into a REMOTE memory unit via the pipe protocol:
     put the memory in its own process instead. *)
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "mem" ] ] }
  in
  let plan =
    FR.Compile.compile ~config (Socgen.Soc.single_core_soc ~mem_latency:1 ())
  in
  let h, conns = FR.Runtime.instantiate_remote ~worker ~remote_units:[ 1 ] plan in
  let conn = List.assoc 1 conns in
  List.iteri
    (fun i w -> Libdn.Remote_engine.poke_mem conn "mem$mem" i w)
    (Socgen.Kite_isa.assemble program);
  List.iter (fun (a, v) -> Libdn.Remote_engine.poke_mem conn "mem$mem" a v) data;
  FR.Runtime.run h ~cycles:1200;
  let mono = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  Socgen.Soc.load_program mono ~mem:"mem$mem" ~data program;
  for _ = 1 to 1200 do
    Rtlsim.Sim.step mono
  done;
  check_int "result read back over the pipe"
    (Rtlsim.Sim.peek_mem mono "mem$mem" 60)
    (Libdn.Remote_engine.peek_mem conn "mem$mem" 60);
  (* The tile stayed local this time. *)
  let u = FR.Runtime.locate h "tile$core$retired_count" in
  check_int "local tile state" (Rtlsim.Sim.get mono "tile$core$retired_count")
    (Rtlsim.Sim.get (FR.Runtime.sim_of h u) "tile$core$retired_count");
  List.iter (fun (_, c) -> Libdn.Remote_engine.close c) conns

let test_all_units_remote () =
  (* Every partition in its own process: the parent only schedules
     tokens — the full multi-FPGA shape. *)
  let plan = soc_plan () in
  let h, conns = FR.Runtime.instantiate_remote ~worker ~remote_units:[ 0; 1 ] plan in
  check_int "two workers" 2 (List.length conns);
  let mem_conn = List.assoc 0 conns in
  List.iteri
    (fun i w -> Libdn.Remote_engine.poke_mem mem_conn "mem$mem" i w)
    (Socgen.Kite_isa.assemble program);
  List.iter (fun (a, v) -> Libdn.Remote_engine.poke_mem mem_conn "mem$mem" a v) data;
  FR.Runtime.run h ~cycles:900;
  let mono = Rtlsim.Sim.of_circuit (Socgen.Soc.single_core_soc ~mem_latency:1 ()) in
  Socgen.Soc.load_program mono ~mem:"mem$mem" ~data program;
  for _ = 1 to 900 do
    Rtlsim.Sim.step mono
  done;
  check_int "retired across two processes"
    (Rtlsim.Sim.get mono "tile$core$retired_count")
    (Libdn.Remote_engine.get (List.assoc 1 conns) "tile$core$retired_count");
  List.iter (fun (_, c) -> Libdn.Remote_engine.close c) conns

let test_worker_survives_checkpoint () =
  (* Checkpoint/restore proxies across the pipe: roll a remote unit
     back and re-execute to the same state. *)
  let plan = soc_plan () in
  let h, conns = FR.Runtime.instantiate_remote ~worker ~remote_units:[ 1 ] plan in
  let conn = List.assoc 1 conns in
  let mu = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h mu) ~mem:"mem$mem" ~data program;
  FR.Runtime.run h ~cycles:300;
  let restore = FR.Runtime.checkpoint h in
  FR.Runtime.run h ~cycles:700;
  let at700 = Libdn.Remote_engine.get conn "tile$core$retired_count" in
  restore ();
  FR.Runtime.run h ~cycles:700;
  check_int "re-executed to the same remote state" at700
    (Libdn.Remote_engine.get conn "tile$core$retired_count");
  List.iter (fun (_, c) -> Libdn.Remote_engine.close c) conns

let test_missing_worker_fails_cleanly () =
  check_bool "missing worker binary reported" true
    (try
       ignore
         (Libdn.Remote_engine.spawn ~worker:"/nonexistent/fireaxe_worker.exe"
            ~fir_path:"/nonexistent.fir" ());
       false
     with
    | Failure _ | Unix.Unix_error _ -> true
    | Libdn.Remote_engine.Worker_died _ -> true)

let test_worker_killed_mid_run () =
  (* A worker killed mid-run (an FPGA falling off the fabric) must
     surface as a [Worker_died] diagnosis naming the partition and the
     command in flight — not a bare [End_of_file]. *)
  let plan = soc_plan () in
  let h, conns = FR.Runtime.instantiate_remote ~worker ~remote_units:[ 1 ] plan in
  let conn = List.assoc 1 conns in
  let mu = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h mu) ~mem:"mem$mem" ~data program;
  FR.Runtime.run h ~cycles:50;
  Unix.kill (Libdn.Remote_engine.pid conn) Sys.sigkill;
  (match Libdn.Remote_engine.get conn "tile$core$pc" with
  | _ -> Alcotest.fail "expected Worker_died after killing the worker"
  | exception Libdn.Remote_engine.Worker_died { label; last_command; status } ->
    Alcotest.(check string)
      "label names the partition" plan.FR.Plan.p_units.(1).FR.Plan.u_name label;
    Alcotest.(check string) "command in flight recorded" "get tile$core$pc" last_command;
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    check_bool
      (Printf.sprintf "status %S mentions the killing signal" status)
      true (contains status "signal"));
  (* [close] must not raise on the already-dead connection. *)
  List.iter (fun (_, c) -> Libdn.Remote_engine.close c) conns

let test_has_query () =
  let plan = soc_plan () in
  let h, conns = FR.Runtime.instantiate_remote ~worker ~remote_units:[ 1 ] plan in
  ignore h;
  let conn = List.assoc 1 conns in
  check_bool "tile signal present" true
    (Libdn.Remote_engine.has conn "tile$core$retired_count");
  check_bool "tile regfile memory present" true (Libdn.Remote_engine.has conn "tile$core$rf");
  check_bool "memory-unit signal absent" false (Libdn.Remote_engine.has conn "mem$state");
  List.iter (fun (_, c) -> Libdn.Remote_engine.close c) conns

let suite =
  [
    ( "libdn.remote",
      [
        Alcotest.test_case "worker binary present" `Quick test_worker_binary_present;
        Alcotest.test_case "remote tile cycle-exact" `Quick test_remote_tile_cycle_exact;
        Alcotest.test_case "remote memory poke" `Quick test_remote_poke;
        Alcotest.test_case "all units remote" `Quick test_all_units_remote;
        Alcotest.test_case "checkpoint across the pipe" `Quick test_worker_survives_checkpoint;
        Alcotest.test_case "missing worker fails cleanly" `Quick test_missing_worker_fails_cleanly;
        Alcotest.test_case "worker killed mid-run" `Quick test_worker_killed_mid_run;
        Alcotest.test_case "has query" `Quick test_has_query;
      ] );
  ]
