(* Tests for the hot-path profiler: the fireaxe-profile-1 document
   round-trips through the shared JSON layer; enabling a profile never
   perturbs simulation (bit-exact state crosscheck, monolithic and
   partitioned, both engines and both schedulers, over every bundled
   example design); retired opcode-class counters are exact on a
   hand-written design (static histogram x passes, the straight-line
   program argument made checkable); the disabled [Profile.null] path
   stays allocation-free and far under the 2%-of-a-target-cycle budget;
   and a deliberately starved two-partition ring reports nonzero stall
   time — the regression test for the all-zero stall_breakdown bug
   (fast paths used to bypass the stall counters entirely). *)

module FR = Fireripper
module J = Telemetry.Json
module P = Telemetry.Profile

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let designs_dir =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "examples/designs"

let example_designs () =
  Sys.readdir designs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fir")
  |> List.sort compare

let load file = Firrtl.Text.load ~path:(Filename.concat designs_dir file)

(* -- JSON plumbing ------------------------------------------------- *)

let field j k =
  match j with
  | J.Obj fields -> List.assoc_opt k fields
  | _ -> None

let int_field j k =
  match field j k with
  | Some (J.Int n) -> n
  | _ -> Alcotest.failf "missing int field %S" k

let string_field j k =
  match field j k with
  | Some (J.String s) -> s
  | _ -> Alcotest.failf "missing string field %S" k

let list_field j k =
  match field j k with
  | Some (J.List l) -> l
  | _ -> Alcotest.failf "missing list field %S" k

(* ------------------------------------------------------------------ *)
(* Schema round-trip through Telemetry.Json                            *)
(* ------------------------------------------------------------------ *)

(* A profile populated across every granularity — engine, cone,
   partition, channel, wire, remote slice — must serialize to a
   one-line document the shared parser accepts, and the parsed tree
   must survive a second emit/parse cycle unchanged. *)
let test_schema_round_trip () =
  let p = P.create () in
  let e =
    P.engine p ~label:"u0" ~kind:"bytecode" ~lanes:2
      ~comb_hist:[ ("arith", 3); ("mov", 1) ]
      ~seq_hist:[ ("state", 2) ]
  in
  P.add_comb e 1_000;
  P.add_seq e 500;
  let cn = P.cone p ~label:"u0" ~name:"out" ~instrs:7 ~hist:[ ("arith", 7) ] in
  P.add_cone_eval cn 250;
  let pt = P.part p ~name:"u0" ~index:0 in
  P.add_run pt 10_000;
  P.add_exchange pt 2_000;
  P.add_spin pt 300;
  P.add_park pt 700;
  P.add_barrier pt 100;
  P.add_cycles pt 42;
  let ch = P.channel p ~part:"u0" ~name:"out" in
  P.add_enq ch ~tokens:4 900;
  P.add_deq ch ~tokens:4 800;
  let w = P.wire p ~label:"u1" in
  P.add_wire w ~bytes_out:64 ~bytes_in:32 5_000;
  P.add_slice p ~label:"u1" (J.Obj [ ("schema", J.String "fireaxe-profile-1") ]);
  P.set_wall_ns p 20_000;
  let line = P.slice_string p in
  check_bool "slice is one line" false (String.contains line '\n');
  let doc =
    match J.parse line with
    | Ok j -> j
    | Error m -> Alcotest.failf "slice_string does not parse: %s" m
  in
  check_string "schema tag" "fireaxe-profile-1" (string_field doc "schema");
  check_int "wall pinned" 20_000 (int_field doc "wall_ns");
  (* Every top-level section the CLI, bench and CI consumers read. *)
  List.iter
    (fun k -> check_bool ("has " ^ k) true (field doc k <> None))
    [
      "schema"; "wall_ns"; "engines"; "opcode_classes"; "cones"; "partitions";
      "channels"; "wires"; "remote_slices"; "load_model";
    ];
  (* One row per registration. *)
  check_int "engines" 1 (List.length (list_field doc "engines"));
  check_int "cones" 1 (List.length (list_field doc "cones"));
  check_int "partitions" 1 (List.length (list_field doc "partitions"));
  check_int "channels" 1 (List.length (list_field doc "channels"));
  check_int "wires" 1 (List.length (list_field doc "wires"));
  (match field doc "remote_slices" with
  | Some (J.Obj [ ("u1", J.Obj _) ]) -> ()
  | _ -> Alcotest.fail "remote_slices should carry the one attached slice");
  (* Partition row carries exactly what was recorded. *)
  let part = List.hd (list_field doc "partitions") in
  (* Exchange segments are nested inside run segments, so the export
     reports run net of exchange. *)
  check_int "run_ns" 8_000 (int_field part "run_ns");
  check_int "exchange_ns" 2_000 (int_field part "exchange_ns");
  check_int "spin_ns" 300 (int_field part "spin_ns");
  check_int "park_ns" 700 (int_field part "park_ns");
  check_int "barrier_ns" 100 (int_field part "barrier_ns");
  check_int "spins" 1 (int_field part "spins");
  check_int "parks" 1 (int_field part "parks");
  check_int "cycles" 42 (int_field part "cycles");
  (* Retired counts: hist x passes x lanes (2 lanes, 1 pass each). *)
  let classes = match field doc "opcode_classes" with
    | Some o -> o
    | None -> Alcotest.fail "no opcode_classes"
  in
  check_int "arith retired" ((3 * 2) + 7) (int_field classes "arith");
  check_int "state retired" (2 * 2) (int_field classes "state");
  (* Emit/parse is a fixpoint on the parsed tree. *)
  match J.parse (J.to_string doc) with
  | Ok doc2 -> check_bool "emit/parse fixpoint" true (doc = doc2)
  | Error m -> Alcotest.failf "re-emitted document does not parse: %s" m

(* ------------------------------------------------------------------ *)
(* Determinism: profiling must never perturb simulation                *)
(* ------------------------------------------------------------------ *)

let snapshot sim = Rtlsim.Sim.state_to_string (Rtlsim.Sim.save_state sim)

let test_monolithic_determinism () =
  List.iter
    (fun file ->
      let circuit = load file in
      List.iter
        (fun (ename, engine) ->
          let run profile =
            let sim = Rtlsim.Sim.of_circuit ~engine ~profile circuit in
            for _ = 1 to 80 do
              Rtlsim.Sim.step sim
            done;
            snapshot sim
          in
          check_string
            (Printf.sprintf "%s (%s): profile on/off bit-exact" file ename)
            (run P.null)
            (run (P.create ())))
        [ ("closure", Rtlsim.Sim.Closure); ("bytecode", Rtlsim.Sim.Bytecode) ])
    (example_designs ())

let first_instance circuit =
  match Firrtl.Hierarchy.instances (Firrtl.Ast.main_module circuit) with
  | (name, _) :: _ -> name
  | [] -> failwith "no instances to partition"

let plan_of circuit =
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Instances [ [ first_instance circuit ] ];
    }
  in
  FR.Compile.compile ~config circuit

(* The partitioned variant additionally exercises the scheduler and
   channel recorders — and, because a live profile forces the parallel
   scheduler onto the real-domain path, the profiled run takes a
   genuinely different execution policy and must still agree. *)
let test_partitioned_determinism () =
  List.iter
    (fun file ->
      let circuit = load file in
      List.iter
        (fun scheduler ->
          List.iter
            (fun (ename, engine) ->
              let run profile =
                let h = FR.Runtime.instantiate ~scheduler ~engine ~profile (plan_of circuit) in
                FR.Runtime.run h ~cycles:60;
                FR.Runtime.save_to_string h
              in
              check_string
                (Printf.sprintf "%s (%s, %s): profile on/off bit-exact" file
                   (Libdn.Scheduler.name scheduler) ename)
                (run P.null)
                (run (P.create ())))
            [ ("closure", Rtlsim.Sim.Closure); ("bytecode", Rtlsim.Sim.Bytecode) ])
        [ Libdn.Scheduler.Sequential; Libdn.Scheduler.Parallel ])
    (example_designs ())

(* ------------------------------------------------------------------ *)
(* Opcode-class counter exactness                                      *)
(* ------------------------------------------------------------------ *)

(* A hand-written module whose per-cycle retired work is knowable: one
   input-dependent add feeding an output (combinational pass) and one
   xor feeding a register (sequential step).  Neither can constant-fold
   away.  Bytecode programs are straight-line, so retired counts must
   be exactly per-pass-histogram x cycles — checked both as pinned
   class counts and as strict linearity in the cycle count. *)
let tiny_circuit () =
  Firrtl.Text.parse
    (String.concat "\n"
       [
         "circuit tiny main top:";
         "  module top:";
         "    input a : UInt<8>";
         "    input b : UInt<8>";
         "    output sum : UInt<8>";
         "    reg acc : UInt<8> init 0";
         "    connect sum = add(a, b)";
         "    regnext acc <= xor(acc, a)";
       ])

let retired_classes ~cycles =
  let profile = P.create () in
  let sim =
    Rtlsim.Sim.of_circuit ~engine:Rtlsim.Sim.Bytecode ~profile (tiny_circuit ())
  in
  Rtlsim.Sim.set_input sim "a" 3;
  Rtlsim.Sim.set_input sim "b" 5;
  for _ = 1 to cycles do
    Rtlsim.Sim.step sim
  done;
  match field (P.to_json profile) "opcode_classes" with
  | Some (J.Obj classes) ->
    List.filter_map
      (fun (k, v) -> match v with J.Int n when n > 0 -> Some (k, n) | _ -> None)
      classes
    |> List.sort compare
  | _ -> Alcotest.fail "no opcode_classes in profile document"

let test_opcode_class_exactness () =
  let n = 6 in
  let classes = retired_classes ~cycles:n in
  (* The input-dependent add retires exactly once per cycle; so does
     the xor feeding the register. *)
  check_int "arith: one add per cycle" n (List.assoc "arith" classes);
  check_int "logic: one xor per cycle" n (List.assoc "logic" classes);
  (* Straight-line programs: every class is linear in the pass count,
     with no constant term from setup passes. *)
  let doubled = retired_classes ~cycles:(2 * n) in
  List.iter
    (fun (k, v) ->
      check_int (k ^ ": retired count linear in cycles") (2 * v)
        (List.assoc k doubled))
    classes;
  check_int "no classes appear or vanish" (List.length classes)
    (List.length doubled)

(* ------------------------------------------------------------------ *)
(* Disabled-path overhead guard                                        *)
(* ------------------------------------------------------------------ *)

let ring_plan groups =
  let config =
    {
      FR.Spec.default_config with
      FR.Spec.selection = FR.Spec.Noc_routers groups;
    }
  in
  FR.Compile.compile ~config (Socgen.Ring_noc.ring_soc ~n_tiles:8 ~period:4 ())

(* The Profile.null discipline promises: recording into a disabled
   recorder is one predictable branch and never allocates.  Measured
   directly — per-call cost of the hottest recorders against the wall
   time of one ring-8 target cycle — the disabled path must cost far
   under 2% even assuming a generous per-cycle call count. *)
let test_null_overhead () =
  let e =
    P.engine P.null ~label:"x" ~kind:"bytecode" ~lanes:1 ~comb_hist:[] ~seq_hist:[]
  in
  let pt = P.part P.null ~name:"x" ~index:0 in
  let ch = P.channel P.null ~part:"x" ~name:"c" in
  let calls = 1_000_000 in
  let minor_before = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 1 to calls do
    P.add_comb e i;
    P.add_run pt i;
    P.add_enq ch ~tokens:1 i
  done;
  let per_call_ns =
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int (3 * calls)
  in
  let minor_after = Gc.minor_words () in
  check_bool "disabled recording never allocates" true
    (minor_after -. minor_before < 256.);
  (* Wall time of one partitioned ring-8 target cycle, sequential
     scheduler, everything disabled — the baseline the <2% budget is
     measured against. *)
  let cycles = 200 in
  let h =
    FR.Runtime.instantiate ~scheduler:Libdn.Scheduler.Sequential
      (ring_plan [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ] ])
  in
  let t0 = Unix.gettimeofday () in
  FR.Runtime.run h ~cycles;
  let per_cycle_ns =
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int cycles
  in
  (* 64 disabled record calls per target cycle is far above what the
     hot path actually issues (two per engine step, a handful per
     channel op). *)
  let budget_pct = 100. *. (64. *. per_call_ns) /. per_cycle_ns in
  if budget_pct >= 2.0 then
    Alcotest.failf
      "disabled profile path too expensive: %.2f ns/call, %.0f ns/cycle -> %.2f%% (budget 2%%)"
      per_call_ns per_cycle_ns budget_pct

(* ------------------------------------------------------------------ *)
(* Starved-ring stall attribution (all-zero stall_breakdown regression) *)
(* ------------------------------------------------------------------ *)

(* Two-partition ring where one partition's drive hook sleeps every
   target cycle: its peer MUST accumulate nonzero spin/park stall time
   in the profile, and the telemetry MUST attribute stalls to the
   starved input channels.  Before the fix the fast paths bypassed the
   stall counters and the single-core cooperative fallback was
   structurally zero, so profiles reported an all-zero stall_breakdown
   on exactly the runs where stalls dominate. *)
let test_starved_ring_stall_attribution () =
  let telemetry = Telemetry.create () in
  let profile = P.create () in
  (* A live profile forces the real-domain parallel path even on a
     single-core host, so spin/park instrumentation actually runs. *)
  let h =
    FR.Runtime.instantiate ~scheduler:Libdn.Scheduler.Parallel ~telemetry
      ~profile
      (ring_plan [ [ 0; 1; 2; 3; 4; 5; 6; 7 ] ])
  in
  FR.Runtime.set_drive h 0 (fun _ _ -> Unix.sleepf 0.0002);
  FR.Runtime.run h ~cycles:40;
  let doc = P.to_json profile in
  let parts = list_field doc "partitions" in
  check_int "two partitions profiled" 2 (List.length parts);
  let total key = List.fold_left (fun acc p -> acc + int_field p key) 0 parts in
  check_bool "nonzero stall events (spins+parks)" true
    (total "spins" + total "parks" > 0);
  check_bool "nonzero stall time (spin_ns+park_ns)" true
    (total "spin_ns" + total "park_ns" > 0);
  check_bool "nonzero run time" true (total "run_ns" > 0);
  (* The starved partition's input channels carry stall attribution. *)
  let stalled =
    List.fold_left
      (fun acc (name, v) ->
        if String.ends_with ~suffix:".stalled" name then acc + v else acc)
      0 (Telemetry.counters telemetry)
  in
  check_bool "telemetry attributes stalls to channels" true (stalled > 0)

(* The cooperative single-core fallback now counts failed round-robin
   visits as spins instead of leaving the counters structurally zero.
   The network is built so the FIRST visited partition ("pass", a pure
   combinational passthrough) can do nothing at all until its peer
   ("src", a register source) has fired: its opening visit must fail
   and be counted. *)
let test_cooperative_spins_counted () =
  let chan name ports = { Libdn.Channel.name; ports } in
  let pass_module =
    let b = Firrtl.Builder.create "pass" in
    let a = Firrtl.Builder.input b "a" 8 in
    Firrtl.Builder.output b "d" 8;
    Firrtl.Builder.connect b "d" a;
    Firrtl.Builder.finish b
  in
  let src_module =
    let b = Firrtl.Builder.create "src" in
    let a = Firrtl.Builder.input b "a" 8 in
    let x = Firrtl.Builder.reg b ~init:1 "x" 8 in
    Firrtl.Builder.reg_next b "x" a;
    Firrtl.Builder.output b "d" 8;
    Firrtl.Builder.connect b "d" x;
    Firrtl.Builder.finish b
  in
  let telemetry = Telemetry.create () in
  let net = Libdn.Network.create ~telemetry () in
  let add flat =
    Goldengate.Fame1.add_to_network net ~name:flat.Firrtl.Ast.name
      (Goldengate.Fame1.wrap ~flat
         ~ins:[ chan "in" [ ("a", 8) ] ]
         ~outs:[ chan "out" [ ("d", 8) ] ]
         ())
  in
  let p_pass = add pass_module in
  let p_src = add src_module in
  Libdn.Network.connect net ~src:(p_src, "out") ~dst:(p_pass, "in");
  Libdn.Network.connect net ~src:(p_pass, "out") ~dst:(p_src, "in");
  Libdn.Scheduler.set_host_domains 1;
  Fun.protect
    ~finally:(fun () -> Libdn.Scheduler.set_host_domains 0)
    (fun () ->
      Libdn.Scheduler.run ~scheduler:Libdn.Scheduler.Parallel net ~cycles:40);
  let spins =
    List.fold_left
      (fun acc (name, v) ->
        if String.ends_with ~suffix:".spins" name then acc + v else acc)
      0 (Telemetry.counters telemetry)
  in
  check_bool "cooperative failed visits counted as spins" true (spins > 0)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "telemetry.profile",
      [
        Alcotest.test_case "schema round-trips through Telemetry.Json" `Quick
          test_schema_round_trip;
        Alcotest.test_case "monolithic determinism (profile on/off)" `Quick
          test_monolithic_determinism;
        Alcotest.test_case "partitioned determinism (schedulers x engines)" `Quick
          test_partitioned_determinism;
        Alcotest.test_case "opcode-class counters exact" `Quick
          test_opcode_class_exactness;
        Alcotest.test_case "Profile.null overhead under budget" `Quick
          test_null_overhead;
        Alcotest.test_case "starved ring reports stall time" `Quick
          test_starved_ring_stall_attribution;
        Alcotest.test_case "cooperative fallback counts spins" `Quick
          test_cooperative_spins_counted;
      ] );
  ]
