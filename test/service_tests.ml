(* Tests for the simulation service: the shared wire codec, the
   lane-attach substrate it packs tenants onto, session lifecycle over
   the socket protocol, bit-exact isolation of packed tenants
   (property-based), evict→resume round trips, admission control
   against a board budget, and the ≥8-session soak with an interleaved
   eviction+resume and a chaos kill. *)

open Firrtl

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_tmpdir f =
  let dir = Filename.temp_file "fireaxe_service" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* The tenant design                                                    *)
(* ------------------------------------------------------------------ *)

(* A seeded accumulator with a self-writing memory: enough state that
   packing, eviction and restore bugs cannot hide (registers, a
   memory, and an input whose value matters every cycle). *)
let tenant_flat () =
  let b = Builder.create "tenant" in
  let seed = Builder.input b "seed" 16 in
  let acc = Builder.reg b ~init:0 "acc" 16 in
  Builder.reg_next b "acc" Dsl.(acc +: seed);
  let cnt = Builder.reg b ~init:0 "cnt" 8 in
  Builder.reg_next b "cnt" Dsl.(cnt +: lit ~width:8 1);
  let _ = Builder.mem b "scratch" ~width:16 ~depth:8 in
  Builder.mem_write b "scratch" ~addr:Dsl.(bits cnt ~hi:2 ~lo:0) ~data:acc ~enable:Dsl.one;
  Builder.output b "out" 16;
  Builder.connect b "out" acc;
  Builder.finish b

let tenant_text () = Text.emit (Flatten.to_circuit (tenant_flat ()))

(* The local reference a service session must match: same design, same
   stimulus, stepped privately. *)
let reference ~seed ~cycles =
  let sim = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode (tenant_flat ()) in
  Rtlsim.Sim.set_input sim "seed" seed;
  for _ = 1 to cycles do
    Rtlsim.Sim.step sim
  done;
  Rtlsim.Sim.eval_comb sim;
  sim

(* ------------------------------------------------------------------ *)
(* Server harness                                                       *)
(* ------------------------------------------------------------------ *)

let with_server ?state_dir ?board ?(pack = true) ?(pack_wait = 0.15) ?(max_sessions = 64)
    dir f =
  let socket_path = Filename.concat dir "svc.sock" in
  let cfg =
    {
      (Service.Server.default_config ~socket_path) with
      Service.Server.state_dir;
      pack;
      pack_wait;
      max_sessions;
      board = Option.value board ~default:Platform.Fpga.u250;
    }
  in
  let d = Domain.spawn (fun () -> Service.Server.run cfg) in
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Service.Client.connect ~retry_for:2. ~socket_path () in
         Service.Client.shutdown c;
         Service.Client.close c
       with _ -> ());
      Domain.join d)
    (fun () -> f socket_path)

let connect socket_path = Service.Client.connect ~retry_for:5. ~socket_path ()

(* ------------------------------------------------------------------ *)
(* Wire codec (the extracted framing satellite)                         *)
(* ------------------------------------------------------------------ *)

let test_wire_payload_codec () =
  check_string "join/split" "cmd a b"
    (fst (Libdn.Wire.split_payload (Libdn.Wire.join_payload "cmd a b" "")));
  let line, blob = Libdn.Wire.split_payload (Libdn.Wire.join_payload "cmd" "blob\nwith\nlines") in
  check_string "line" "cmd" line;
  check_string "blob" "blob\nwith\nlines" blob;
  check_bool "newline rejected" true
    (try
       ignore (Libdn.Wire.join_payload "a\nb" "");
       false
     with Invalid_argument _ -> true)

let test_wire_frame_roundtrip () =
  let prop payload =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () ->
        Unix.close a;
        Unix.close b)
      (fun () ->
        Libdn.Wire.write_frame a payload;
        Libdn.Wire.write_frame a payload;
        let rd = Libdn.Wire.reader b in
        (* Both pipelined frames must come back intact and in order. *)
        Libdn.Wire.read_frame ~timeout:5. rd = payload
        && Libdn.Wire.read_frame ~timeout:5. rd = payload)
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:50 ~name:"length-prefixed frames round-trip"
       QCheck.(string_of_size (Gen.int_bound 4096))
       prop)

let test_wire_partial_frames () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let close fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      close a;
      close b)
    (fun () ->
      let payload = "hello service" in
      let framed = Libdn.Wire.frame payload in
      let rd = Libdn.Wire.reader b in
      (* Nothing sent yet: the non-blocking probe must not block or
         fabricate a frame. *)
      check_bool "no frame yet" true (Libdn.Wire.try_read_frame rd = None);
      (* First half only: still no complete frame. *)
      let half = String.length framed / 2 in
      ignore (Unix.write_substring a framed 0 half);
      check_bool "half a frame" true (Libdn.Wire.try_read_frame rd = None);
      ignore (Unix.write_substring a framed half (String.length framed - half));
      (match Libdn.Wire.try_read_frame rd with
      | Some got -> check_string "reassembled" payload got
      | None -> Alcotest.fail "frame not reassembled");
      (* Peer gone -> Closed, not a hang. *)
      Unix.close a;
      check_bool "closed" true
        (try
           ignore (Libdn.Wire.read_frame ~timeout:1. rd);
           false
         with Libdn.Wire.Closed _ -> true))

(* ------------------------------------------------------------------ *)
(* Lane attach/detach substrate                                         *)
(* ------------------------------------------------------------------ *)

let test_attach_lane () =
  let flat = tenant_flat () in
  let vec = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode flat in
  check_int "starts single-lane" 1 (Rtlsim.Sim.lanes vec);
  let l1 = Rtlsim.Sim.attach_lane vec in
  check_int "second lane index" 1 l1;
  check_int "two lanes" 2 (Rtlsim.Sim.lanes vec);
  let solo = Array.init 2 (fun _ -> Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode flat) in
  for k = 0 to 1 do
    Rtlsim.Sim.set_input ~lane:k vec "seed" (100 + k);
    Rtlsim.Sim.set_input solo.(k) "seed" (100 + k)
  done;
  for _ = 1 to 20 do
    Rtlsim.Sim.step vec;
    Array.iter Rtlsim.Sim.step solo
  done;
  Rtlsim.Sim.eval_comb vec;
  Array.iter Rtlsim.Sim.eval_comb solo;
  for k = 0 to 1 do
    check_int
      (Printf.sprintf "lane %d acc" k)
      (Rtlsim.Sim.get solo.(k) "out")
      (Rtlsim.Sim.get ~lane:k vec "out");
    check_int
      (Printf.sprintf "lane %d scratch" k)
      (Rtlsim.Sim.peek_mem solo.(k) "scratch" 3)
      (Rtlsim.Sim.peek_mem ~lane:k vec "scratch" 3)
  done

let test_reset_lane () =
  let flat = tenant_flat () in
  let vec = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode ~lanes:2 flat in
  Rtlsim.Sim.set_input ~lane:0 vec "seed" 7;
  Rtlsim.Sim.set_input ~lane:1 vec "seed" 9;
  (* Dirty lane 1, then hand it to a "new tenant" before any stepping:
     it must look exactly like power-on. *)
  Rtlsim.Sim.poke_mem ~lane:1 vec "scratch" 5 999;
  Rtlsim.Sim.reset_lane vec ~lane:1;
  Rtlsim.Sim.eval_comb vec;
  check_int "registers re-initialized" 0 (Rtlsim.Sim.get ~lane:1 vec "acc");
  check_int "inputs cleared" 0 (Rtlsim.Sim.get ~lane:1 vec "seed");
  check_int "memory zeroed" 0 (Rtlsim.Sim.peek_mem ~lane:1 vec "scratch" 5);
  (* Lane 0 untouched by its neighbor's reset. *)
  check_int "lane 0 keeps its stimulus" 7 (Rtlsim.Sim.get ~lane:0 vec "seed")

(* ------------------------------------------------------------------ *)
(* Session lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let test_lifecycle () =
  with_tmpdir @@ fun dir ->
  with_server dir @@ fun socket_path ->
  let c = connect socket_path in
  Fun.protect ~finally:(fun () -> Service.Client.close c) @@ fun () ->
  let r = Service.Client.create c ~design:(tenant_text ()) in
  check_int "born at cycle 0" 0 r.Service.Client.c_cycle;
  check_bool "first tenant is unpacked" false r.Service.Client.c_packed;
  let sid = r.Service.Client.c_sid in
  Service.Client.set c ~sid "seed" 5;
  check_int "stepped" 10 (Service.Client.step c ~sid 10);
  check_int "acc = 10 cycles of +5" 50 (Service.Client.get c ~sid "out");
  (match Service.Client.probe c ~sid [ "out"; "cnt" ] with
  | [ out; cnt ] ->
    check_int "probe out" 50 out;
    check_int "probe cnt" 10 cnt
  | _ -> Alcotest.fail "probe arity");
  Service.Client.poke_mem c ~sid "scratch" 7 4242;
  check_int "poked memory" 4242 (Service.Client.peek_mem c ~sid "scratch" 7);
  (match Service.Client.list c with
  | [ row ] ->
    check_string "listed" sid row.Service.Protocol.r_sid;
    check_string "live" "live" row.Service.Protocol.r_status;
    check_int "cycle" 10 row.Service.Protocol.r_cycle
  | rows -> Alcotest.fail (Printf.sprintf "%d rows" (List.length rows)));
  Service.Client.kill c ~sid;
  check_int "killed" 0 (List.length (Service.Client.list c));
  check_bool "commands on a killed session fail" true
    (try
       ignore (Service.Client.step c ~sid 1);
       false
     with Service.Client.Service_error _ -> true)

(* Property: N same-design tenants packed as lanes of one engine, each
   with a distinct seed, are bit-exact against N independent private
   sims — on the probe, the architectural registers, and the memory. *)
let test_pack_isolation () =
  let prop seeds =
    with_tmpdir @@ fun dir ->
    with_server dir @@ fun socket_path ->
    let seeds = Array.of_list seeds in
    let n = Array.length seeds in
    let conns = Array.init n (fun _ -> connect socket_path) in
    Fun.protect ~finally:(fun () -> Array.iter Service.Client.close conns) @@ fun () ->
    let text = tenant_text () in
    let rs = Array.map (fun c -> Service.Client.create c ~design:text) conns in
    (* All but the first must have landed as lanes of the seed group. *)
    Array.iteri
      (fun i r -> if i > 0 && not r.Service.Client.c_packed then failwith "not packed")
      rs;
    Array.iteri
      (fun i c -> Service.Client.set c ~sid:rs.(i).Service.Client.c_sid "seed" seeds.(i))
      conns;
    (* Fill the credit barrier, then collect. *)
    let cycles = 25 in
    Array.iteri
      (fun i c -> ignore (Service.Client.step_async c ~sid:rs.(i).Service.Client.c_sid cycles))
      conns;
    Array.iteri
      (fun i c ->
        if Service.Client.wait c ~sid:rs.(i).Service.Client.c_sid <> cycles then
          failwith "wrong cycle")
      conns;
    Array.for_all Fun.id
      (Array.mapi
         (fun i c ->
           let sid = rs.(i).Service.Client.c_sid in
           let want = reference ~seed:seeds.(i) ~cycles in
           Service.Client.probe c ~sid [ "out"; "acc"; "cnt" ]
           = [
               Rtlsim.Sim.get want "out"; Rtlsim.Sim.get want "acc"; Rtlsim.Sim.get want "cnt";
             ]
           && Service.Client.peek_mem c ~sid "scratch" 2
              = Rtlsim.Sim.peek_mem want "scratch" 2)
         conns)
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:8 ~name:"packed tenants are bit-exact vs private sims"
       QCheck.(list_of_size (Gen.int_range 2 5) (int_bound 0xffff))
       prop)

let test_evict_resume_roundtrip () =
  with_tmpdir @@ fun dir ->
  let state = Filename.concat dir "state" in
  with_server ~state_dir:state dir @@ fun socket_path ->
  let c = connect socket_path in
  Fun.protect ~finally:(fun () -> Service.Client.close c) @@ fun () ->
  let r = Service.Client.create c ~design:(tenant_text ()) in
  let sid = r.Service.Client.c_sid in
  Service.Client.set c ~sid "seed" 3;
  (* Record a probe trace up to the eviction point... *)
  let trace_before =
    List.init 10 (fun _ ->
        ignore (Service.Client.step c ~sid 1);
        Service.Client.get c ~sid "out")
  in
  check_int "evicted at its cycle" 10 (Service.Client.evict c ~sid);
  (match Service.Client.list c with
  | [ row ] ->
    check_string "status" "evicted" row.Service.Protocol.r_status;
    check_int "cycle preserved" 10 row.Service.Protocol.r_cycle
  | _ -> Alcotest.fail "list");
  (* ...then touch it: transparent resume, and the trace must continue
     exactly where it left off. *)
  check_int "resume-on-touch sees the evicted value" (List.nth trace_before 9)
    (Service.Client.get c ~sid "out");
  check_int "memory survived the round trip" (3 * 3)
    (* scratch[3] was written at cycle 4 with acc after 3 cycles of +3 *)
    (Service.Client.peek_mem c ~sid "scratch" 3);
  Service.Client.set c ~sid "seed" 3;
  let trace_after =
    List.init 10 (fun _ ->
        ignore (Service.Client.step c ~sid 1);
        Service.Client.get c ~sid "out")
  in
  let want = List.init 20 (fun i -> 3 * (i + 1)) in
  check_bool "full 20-cycle trace intact" true (trace_before @ trace_after = want)

(* A board too small for the tenant: admission must reject, not build. *)
let test_admission_rejection () =
  with_tmpdir @@ fun dir ->
  let board =
    { Platform.Fpga.u250 with Platform.Fpga.board_name = "matchbox"; luts = 10; ffs = 10 }
  in
  with_server ~board dir @@ fun socket_path ->
  let c = connect socket_path in
  Fun.protect ~finally:(fun () -> Service.Client.close c) @@ fun () ->
  check_bool "rejected" true
    (try
       ignore (Service.Client.create c ~design:(tenant_text ()));
       false
     with Service.Client.Rejected _ -> true);
  (* The server survives the rejection and still answers. *)
  check_int "no sessions" 0 (List.length (Service.Client.list c))

(* A board that fits exactly one private tenant: the second create must
   LRU-evict the idle first tenant rather than reject, and the evictee
   must come back bit-exact when touched. *)
let test_admission_evicts_lru () =
  with_tmpdir @@ fun dir ->
  let est = Platform.Resource.estimate_flat (tenant_flat ()) in
  let board =
    {
      Platform.Fpga.u250 with
      Platform.Fpga.board_name = "one-tenant";
      luts = max 16 (est.Platform.Resource.luts * 3 / 2);
      ffs = max 16 (est.Platform.Resource.ffs * 3 / 2);
    }
  in
  let state = Filename.concat dir "state" in
  with_server ~board ~state_dir:state ~pack:false dir @@ fun socket_path ->
  let c = connect socket_path in
  Fun.protect ~finally:(fun () -> Service.Client.close c) @@ fun () ->
  let r1 = Service.Client.create c ~design:(tenant_text ()) in
  let sid1 = r1.Service.Client.c_sid in
  Service.Client.set c ~sid:sid1 "seed" 11;
  ignore (Service.Client.step c ~sid:sid1 5);
  let r2 = Service.Client.create c ~design:(tenant_text ()) in
  let status sid =
    (List.find (fun r -> r.Service.Protocol.r_sid = sid) (Service.Client.list c))
      .Service.Protocol.r_status
  in
  check_string "first tenant was evicted to make room" "evicted" (status sid1);
  check_string "second tenant admitted" "live" (status r2.Service.Client.c_sid);
  (* Touching the evictee swaps capacity back (the now-idle second
     tenant becomes the LRU victim) and restores its state. *)
  check_int "evictee resumed bit-exact" 55 (Service.Client.get c ~sid:sid1 "out")

(* A queue=1 create parks until capacity frees (here: the blocking
   tenant is killed from another connection). *)
let test_queued_create () =
  with_tmpdir @@ fun dir ->
  let est = Platform.Resource.estimate_flat (tenant_flat ()) in
  let board =
    {
      Platform.Fpga.u250 with
      Platform.Fpga.board_name = "one-tenant";
      luts = max 16 (est.Platform.Resource.luts * 3 / 2);
      ffs = max 16 (est.Platform.Resource.ffs * 3 / 2);
    }
  in
  (* No state dir: eviction unavailable, so the only way in is the
     blocker dying. *)
  with_server ~board ~pack:false dir @@ fun socket_path ->
  let c = connect socket_path in
  Fun.protect ~finally:(fun () -> Service.Client.close c) @@ fun () ->
  let r1 = Service.Client.create c ~design:(tenant_text ()) in
  let text = tenant_text () in
  let queued =
    Domain.spawn (fun () ->
        let c2 = connect socket_path in
        Fun.protect
          ~finally:(fun () -> Service.Client.close c2)
          (fun () -> Service.Client.create ~queue:true c2 ~design:text))
  in
  Unix.sleepf 0.1;
  Service.Client.kill c ~sid:r1.Service.Client.c_sid;
  let r2 = Domain.join queued in
  check_int "queued create admitted after the kill" 0 r2.Service.Client.c_cycle;
  check_int "one live session" 1 (List.length (Service.Client.list c))

(* The acceptance soak: >= 8 concurrent sessions with interleaved
   lifecycles, one eviction+resume and one chaos kill mid-run; every
   survivor must finish bit-exact. *)
let test_soak () =
  with_tmpdir @@ fun dir ->
  let state = Filename.concat dir "state" in
  with_server ~state_dir:state dir @@ fun socket_path ->
  let n = 8 in
  let conns = Array.init n (fun _ -> connect socket_path) in
  Fun.protect ~finally:(fun () -> Array.iter Service.Client.close conns) @@ fun () ->
  let text = tenant_text () in
  let rs = Array.map (fun c -> Service.Client.create c ~design:text) conns in
  let sids = Array.map (fun r -> r.Service.Client.c_sid) rs in
  let alive = Array.make n true in
  Array.iteri (fun i c -> Service.Client.set c ~sid:sids.(i) "seed" (1 + i)) conns;
  let rounds = 6 and per_round = 10 in
  let executed = Array.make n 0 in
  for r = 1 to rounds do
    if r = 3 then begin
      (* Chaos: one tenant dies mid-run... *)
      Service.Client.kill conns.(n - 1) ~sid:sids.(n - 1);
      alive.(n - 1) <- false;
      (* ...and another is forced out to disk; its next step resumes it. *)
      check_int "evicted mid-soak" executed.(0) (Service.Client.evict conns.(0) ~sid:sids.(0))
    end;
    Array.iteri
      (fun i c ->
        if alive.(i) then ignore (Service.Client.step_async c ~sid:sids.(i) per_round))
      conns;
    Array.iteri
      (fun i c ->
        if alive.(i) then begin
          let cyc = Service.Client.wait c ~sid:sids.(i) in
          executed.(i) <- executed.(i) + per_round;
          check_int (Printf.sprintf "session %d at round %d" i r) executed.(i) cyc
        end)
      conns
  done;
  (* The eviction really happened (the victim resumed transparently on
     its post-eviction step), and the survivors are all bit-exact. *)
  Array.iteri
    (fun i c ->
      if alive.(i) then begin
        let want = reference ~seed:(1 + i) ~cycles:executed.(i) in
        check_int (Printf.sprintf "survivor %d out" i) (Rtlsim.Sim.get want "out")
          (Service.Client.get c ~sid:sids.(i) "out");
        check_int
          (Printf.sprintf "survivor %d scratch" i)
          (Rtlsim.Sim.peek_mem want "scratch" 4)
          (Service.Client.peek_mem c ~sid:sids.(i) "scratch" 4)
      end)
    conns;
  check_bool "the killed tenant is gone" true
    (not (List.exists (fun r -> r.Service.Protocol.r_sid = sids.(n - 1)) (Service.Client.list conns.(0))))

(* Checkpoint bundles survive a full server restart: sessions come back
   as evicted entries and resume where the bundle left them. *)
let test_restart_resurrection () =
  with_tmpdir @@ fun dir ->
  let state = Filename.concat dir "state" in
  let first =
    with_server ~state_dir:state dir @@ fun socket_path ->
    let c = connect socket_path in
    Fun.protect ~finally:(fun () -> Service.Client.close c) @@ fun () ->
    let r = Service.Client.create c ~design:(tenant_text ()) in
    let sid = r.Service.Client.c_sid in
    Service.Client.set c ~sid "seed" 2;
    ignore (Service.Client.step c ~sid 15);
    ignore (Service.Client.evict c ~sid);
    sid
  in
  with_server ~state_dir:state dir @@ fun socket_path ->
  let c = connect socket_path in
  Fun.protect ~finally:(fun () -> Service.Client.close c) @@ fun () ->
  (match Service.Client.list c with
  | [ row ] ->
    check_string "resurrected" first row.Service.Protocol.r_sid;
    check_string "as evicted" "evicted" row.Service.Protocol.r_status;
    check_int "at its bundle cycle" 15 row.Service.Protocol.r_cycle
  | rows -> Alcotest.fail (Printf.sprintf "%d rows after restart" (List.length rows)));
  check_int "state intact across restart" 30 (Service.Client.get c ~sid:first "out")

(* ------------------------------------------------------------------ *)
(* Live observability: watch subscriptions and the event journal       *)
(* ------------------------------------------------------------------ *)

let next_watch c =
  match Service.Client.next_push ~timeout:10. c with
  | Some (Service.Client.Watch { w_cycle; w_values; _ }) -> (w_cycle, w_values)
  | Some (Service.Client.Event _) -> Alcotest.fail "unexpected event push"
  | None -> Alcotest.fail "timed out waiting for a watch frame"

(* Every pushed frame must be bit-exact with what polling the same
   probes at that cycle would have returned — checked against a private
   reference sim, across an evict→resume round trip. *)
let test_watch_stream_bit_exact () =
  with_tmpdir @@ fun dir ->
  let state = Filename.concat dir "state" in
  with_server ~state_dir:state dir @@ fun socket_path ->
  let c = connect socket_path in
  Fun.protect ~finally:(fun () -> Service.Client.close c) @@ fun () ->
  let r = Service.Client.create c ~design:(tenant_text ()) in
  let sid = r.Service.Client.c_sid in
  Service.Client.set c ~sid "seed" 3;
  let wid = Service.Client.subscribe c ~sid ~probes:[ "out"; "cnt" ] in
  let expect_frame () =
    let cycle, values = next_watch c in
    let want = reference ~seed:3 ~cycles:cycle in
    List.iter
      (fun (name, v) ->
        check_int (Printf.sprintf "%s at cycle %d" name cycle) (Rtlsim.Sim.get want name) v)
      values;
    check_int
      (Printf.sprintf "frame carries both probes at %d" cycle)
      2 (List.length values);
    cycle
  in
  (* subscribing pushes an immediate full snapshot at the current cycle *)
  check_int "snapshot frame at cycle 0" 0 (expect_frame ());
  for i = 1 to 5 do
    ignore (Service.Client.step c ~sid 4);
    check_int "one frame per advance" (4 * i) (expect_frame ())
  done;
  (* the frames must also agree with polling the live session *)
  check_bool "watch agrees with probe" true
    (Service.Client.probe c ~sid [ "out"; "cnt" ]
    = [ Rtlsim.Sim.get (reference ~seed:3 ~cycles:20) "out";
        Rtlsim.Sim.get (reference ~seed:3 ~cycles:20) "cnt" ]);
  (* evict → resume: the subscription survives and stays bit-exact *)
  check_int "evicted" 20 (Service.Client.evict c ~sid);
  check_int "resumed" 20 (Service.Client.resume c ~sid);
  Service.Client.set c ~sid "seed" 3;
  ignore (Service.Client.step c ~sid 4);
  check_int "frame after evict/resume" 24 (expect_frame ());
  Service.Client.unsubscribe c ~wid;
  ignore (Service.Client.step c ~sid 4);
  check_bool "no frames after unsubscribe" true
    (Service.Client.next_push ~timeout:0.3 c = None)

(* [every=N] thins the stream: frames arrive only once the session has
   advanced N more target cycles. *)
let test_watch_every () =
  with_tmpdir @@ fun dir ->
  with_server dir @@ fun socket_path ->
  let c = connect socket_path in
  Fun.protect ~finally:(fun () -> Service.Client.close c) @@ fun () ->
  let r = Service.Client.create c ~design:(tenant_text ()) in
  let sid = r.Service.Client.c_sid in
  ignore (Service.Client.subscribe ~every:10 c ~sid ~probes:[ "cnt" ]);
  check_int "snapshot" 0 (fst (next_watch c));
  ignore (Service.Client.step c ~sid 4);
  check_bool "4 < every: no frame" true (Service.Client.next_push ~timeout:0.3 c = None);
  ignore (Service.Client.step c ~sid 4);
  check_bool "8 < every: still no frame" true
    (Service.Client.next_push ~timeout:0.3 c = None);
  ignore (Service.Client.step c ~sid 4);
  check_int "12 >= every: frame" 12 (fst (next_watch c))

(* The lifecycle journal: a subscriber from seq 0 replays the retained
   history and then streams live entries, gaplessly sequence-numbered,
   with the kinds the lifecycle actually produced. *)
let test_events_journal () =
  with_tmpdir @@ fun dir ->
  let state = Filename.concat dir "state" in
  with_server ~state_dir:state dir @@ fun socket_path ->
  let c = connect socket_path in
  Fun.protect ~finally:(fun () -> Service.Client.close c) @@ fun () ->
  let r = Service.Client.create c ~design:(tenant_text ()) in
  let sid = r.Service.Client.c_sid in
  ignore (Service.Client.step c ~sid 5);
  check_int "evict journaled" 5 (Service.Client.evict c ~sid);
  check_int "resume journaled" 5 (Service.Client.resume c ~sid);
  (* subscribe on a second connection: replay must not depend on having
     witnessed the events *)
  let ec = connect socket_path in
  Fun.protect ~finally:(fun () -> Service.Client.close ec) @@ fun () ->
  let live_from = Service.Client.events ~from:0 ec in
  check_int "live stream starts after the retained entries" 3 live_from;
  Service.Client.kill c ~sid;
  let next_event () =
    match Service.Client.next_push ~timeout:10. ec with
    | Some (Service.Client.Event { e_seq; e_json }) ->
      let kind =
        match e_json with
        | Telemetry.Json.Obj fields -> (
          match List.assoc_opt "kind" fields with
          | Some (Telemetry.Json.String k) -> k
          | _ -> "?")
        | _ -> "?"
      in
      (e_seq, kind)
    | Some (Service.Client.Watch _) -> Alcotest.fail "unexpected watch push"
    | None -> Alcotest.fail "timed out waiting for an event"
  in
  let got = List.init 4 (fun _ -> next_event ()) in
  check_bool "gapless sequence from 0" true (List.map fst got = [ 0; 1; 2; 3 ]);
  check_bool "kinds reflect the lifecycle" true
    (List.map snd got = [ "create"; "evict"; "resume"; "kill" ])

(* Protocol v2 is additive: a v1 hello still gets untagged frames, and
   the stats document advertises the negotiated schema plus the new
   subscription counters. *)
let test_v2_stats_and_v1_compat () =
  with_tmpdir @@ fun dir ->
  with_server dir @@ fun socket_path ->
  let c = connect socket_path in
  Fun.protect ~finally:(fun () -> Service.Client.close c) @@ fun () ->
  let r = Service.Client.create c ~design:(tenant_text ()) in
  ignore (Service.Client.subscribe c ~sid:r.Service.Client.c_sid ~probes:[ "out" ]);
  (match Service.Client.stats c with
  | Telemetry.Json.Obj fields ->
    check_bool "negotiated v2" true
      (List.assoc_opt "protocol" fields
      = Some (Telemetry.Json.String "fireaxe-service-2"));
    check_bool "subscriptions counted" true
      (List.assoc_opt "subscriptions" fields = Some (Telemetry.Json.Int 1));
    check_bool "events_seq present" true
      (match List.assoc_opt "events_seq" fields with
      | Some (Telemetry.Json.Int n) -> n >= 1
      | _ -> false)
  | _ -> Alcotest.fail "stats is not an object");
  (* raw v1 handshake on the same socket: replies stay untagged *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  let rd = Libdn.Wire.reader fd in
  Libdn.Wire.write_frame fd "hello fireaxe-service-1";
  let hello = Libdn.Wire.read_frame ~timeout:10. rd in
  check_string "v1 hello accepted, reply untagged" "ok fireaxe-service-1" hello;
  Libdn.Wire.write_frame fd "list";
  let reply = Libdn.Wire.read_frame ~timeout:10. rd in
  check_bool "v1 reply untagged" true
    (String.length reply >= 2 && String.sub reply 0 2 = "ok")

let suite =
  [
    ( "service.wire",
      [
        Alcotest.test_case "payload codec" `Quick test_wire_payload_codec;
        Alcotest.test_case "frame round-trip (qcheck)" `Quick test_wire_frame_roundtrip;
        Alcotest.test_case "partial frames and closed peers" `Quick test_wire_partial_frames;
      ] );
    ( "service.lanes",
      [
        Alcotest.test_case "attach_lane matches private sims" `Quick test_attach_lane;
        Alcotest.test_case "reset_lane returns a lane to power-on" `Quick test_reset_lane;
      ] );
    ( "service.sessions",
      [
        Alcotest.test_case "lifecycle over the socket" `Quick test_lifecycle;
        Alcotest.test_case "packed-tenant isolation (qcheck)" `Quick test_pack_isolation;
        Alcotest.test_case "evict/resume round trip" `Quick test_evict_resume_roundtrip;
        Alcotest.test_case "admission rejects an oversized design" `Quick test_admission_rejection;
        Alcotest.test_case "admission evicts the LRU idle tenant" `Quick test_admission_evicts_lru;
        Alcotest.test_case "queue=1 create waits for capacity" `Quick test_queued_create;
        Alcotest.test_case "8-session soak with eviction and chaos kill" `Quick test_soak;
        Alcotest.test_case "bundles resurrect across server restart" `Quick test_restart_resurrection;
      ] );
    ( "service.observe",
      [
        Alcotest.test_case "watch frames bit-exact incl. evict/resume" `Quick
          test_watch_stream_bit_exact;
        Alcotest.test_case "every=N thins the stream" `Quick test_watch_every;
        Alcotest.test_case "event journal replays gaplessly" `Quick test_events_journal;
        Alcotest.test_case "v2 stats fields and v1 compatibility" `Quick
          test_v2_stats_and_v1_compat;
      ] );
  ]
