(* Tests for the LI-BDN token network and the Golden Gate FAME
   transforms: exact-mode channel splitting (Fig. 2b), the merged-channel
   deadlock (Fig. 2a), fast-mode seed tokens (Fig. 3), and FAME-5
   multithreading equivalence. *)

open Firrtl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* One half of the Fig. 2 example: a register x plus an adder whose
   output depends combinationally on the source-driven input.

     d_src = x                  (source out: no comb dependency)
     d_snk = a_src + x          (sink out: depends on a_src)
     x    <= a_snk              (state update from the peer's sink out)  *)
let half_module name init =
  let b = Builder.create name in
  let a_src = Builder.input b "a_src" 8 in
  let a_snk = Builder.input b "a_snk" 8 in
  let x = Builder.reg b ~init "x" 8 in
  Builder.reg_next b "x" a_snk;
  Builder.output b "d_src" 8;
  Builder.connect b "d_src" x;
  Builder.output b "d_snk" 8;
  Builder.connect b "d_snk" Dsl.(a_src +: x);
  Builder.finish b

(* Monolithic reference: the two halves directly wired. *)
let monolithic_pair () =
  let b = Builder.create "mono" in
  let p1 = Builder.inst b "p1" "half1" in
  let p2 = Builder.inst b "p2" "half2" in
  Builder.connect_in b p2 "a_src" (Builder.of_inst p1 "d_src");
  Builder.connect_in b p2 "a_snk" (Builder.of_inst p1 "d_snk");
  Builder.connect_in b p1 "a_src" (Builder.of_inst p2 "d_src");
  Builder.connect_in b p1 "a_snk" (Builder.of_inst p2 "d_snk");
  Builder.output b "x1" 8;
  Builder.connect b "x1" (Builder.of_inst p1 "d_src");
  Builder.output b "x2" 8;
  Builder.connect b "x2" (Builder.of_inst p2 "d_src");
  {
    Ast.cname = "mono";
    main = "mono";
    modules = [ half_module "half1" 1; half_module "half2" 2; Builder.finish b ];
  }

let chan name ports = { Libdn.Channel.name; ports }

(* Builds the two-partition network with the given channelization.  When
   [split] is true, source and sink ports get separate channels
   (exact-mode, Fig. 2b); otherwise they are merged (Fig. 2a). *)
let build_pair_network ~split ~seeded =
  let net = Libdn.Network.create () in
  let add name init =
    let flat = Flatten.flatten (Flatten.to_circuit (half_module name init)) in
    let ins, outs =
      if split then
        ( [ chan "in_src" [ ("a_src", 8) ]; chan "in_snk" [ ("a_snk", 8) ] ],
          [ chan "out_src" [ ("d_src", 8) ]; chan "out_snk" [ ("d_snk", 8) ] ] )
      else
        ( [ chan "in" [ ("a_src", 8); ("a_snk", 8) ] ],
          [ chan "out" [ ("d_src", 8); ("d_snk", 8) ] ] )
    in
    let w = Goldengate.Fame1.wrap ~flat ~ins ~outs () in
    Goldengate.Fame1.add_to_network net ~name w
  in
  let p1 = add "half1" 1 in
  let p2 = add "half2" 2 in
  if split then begin
    Libdn.Network.connect net ~src:(p1, "out_src") ~dst:(p2, "in_src");
    Libdn.Network.connect net ~src:(p1, "out_snk") ~dst:(p2, "in_snk");
    Libdn.Network.connect net ~src:(p2, "out_src") ~dst:(p1, "in_src");
    Libdn.Network.connect net ~src:(p2, "out_snk") ~dst:(p1, "in_snk")
  end
  else begin
    Libdn.Network.connect net ~src:(p1, "out") ~dst:(p2, "in");
    Libdn.Network.connect net ~src:(p2, "out") ~dst:(p1, "in")
  end;
  if seeded then begin
    Libdn.Network.seed net ~part:p1 ~chan:"in" [| 0; 0 |];
    Libdn.Network.seed net ~part:p2 ~chan:"in" [| 0; 0 |]
  end;
  (net, p1, p2)

let test_exact_mode_matches_monolithic () =
  let mono = Rtlsim.Sim.of_circuit (monolithic_pair ()) in
  let net, p1, p2 = build_pair_network ~split:true ~seeded:false in
  for cyc = 1 to 32 do
    Rtlsim.Sim.step mono;
    Libdn.Scheduler.run net ~cycles:cyc;
    (* Compare register state: always current right after an advance. *)
    let e1 = Rtlsim.Sim.get mono "p1$x" and e2 = Rtlsim.Sim.get mono "p2$x" in
    let g1 = (Libdn.Network.partition net p1).pt_engine.Libdn.Engine.get "x" in
    let g2 = (Libdn.Network.partition net p2).pt_engine.Libdn.Engine.get "x" in
    check_int (Printf.sprintf "x1 at cycle %d" cyc) e1 g1;
    check_int (Printf.sprintf "x2 at cycle %d" cyc) e2 g2
  done

let test_exact_mode_crossings () =
  (* Exact mode moves two tokens per direction per target cycle. *)
  let net, _, _ = build_pair_network ~split:true ~seeded:false in
  Libdn.Scheduler.run net ~cycles:10;
  check_int "token transfers" (2 * 2 * 10) (Libdn.Network.token_transfers net)

let test_merged_channels_deadlock () =
  let net, _, _ = build_pair_network ~split:false ~seeded:false in
  check_bool "deadlocks" true
    (try
       Libdn.Scheduler.run net ~cycles:1;
       false
     with Libdn.Network.Deadlock _ -> true)

let test_fast_mode_seeding_runs () =
  (* Merged channels + one seed token per side: no deadlock (Fig. 3),
     one crossing per cycle, one cycle of injected boundary latency. *)
  let net, p1, _ = build_pair_network ~split:false ~seeded:true in
  Libdn.Scheduler.run net ~cycles:10;
  check_int "token transfers" (2 * 10) (Libdn.Network.token_transfers net);
  ignore p1

let test_fast_mode_latency_semantics () =
  (* The seeded network behaves like the monolithic design with an extra
     register on each cross-boundary wire. *)
  let delayed =
    let b = Builder.create "mono_delayed" in
    let p1 = Builder.inst b "p1" "half1" in
    let p2 = Builder.inst b "p2" "half2" in
    let delay name src =
      let r = Builder.reg b name 8 in
      Builder.reg_next b name src;
      r
    in
    Builder.connect_in b p2 "a_src" (delay "d1" (Builder.of_inst p1 "d_src"));
    Builder.connect_in b p2 "a_snk" (delay "d2" (Builder.of_inst p1 "d_snk"));
    Builder.connect_in b p1 "a_src" (delay "d3" (Builder.of_inst p2 "d_src"));
    Builder.connect_in b p1 "a_snk" (delay "d4" (Builder.of_inst p2 "d_snk"));
    Builder.output b "x1" 8;
    Builder.connect b "x1" (Builder.of_inst p1 "d_src");
    Builder.output b "x2" 8;
    Builder.connect b "x2" (Builder.of_inst p2 "d_src");
    {
      Ast.cname = "mono_delayed";
      main = "mono_delayed";
      modules = [ half_module "half1" 1; half_module "half2" 2; Builder.finish b ];
    }
  in
  let ds = Rtlsim.Sim.of_circuit delayed in
  let net, p1, p2 = build_pair_network ~split:false ~seeded:true in
  for cyc = 1 to 24 do
    Rtlsim.Sim.step ds;
    Libdn.Scheduler.run net ~cycles:cyc;
    check_int
      (Printf.sprintf "x1 at cycle %d" cyc)
      (Rtlsim.Sim.get ds "p1$x")
      ((Libdn.Network.partition net p1).pt_engine.Libdn.Engine.get "x");
    check_int
      (Printf.sprintf "x2 at cycle %d" cyc)
      (Rtlsim.Sim.get ds "p2$x")
      ((Libdn.Network.partition net p2).pt_engine.Libdn.Engine.get "x")
  done

let test_external_drive () =
  (* A single closed partition whose external input is driven by the
     per-cycle hook. *)
  let b = Builder.create "extsum" in
  let x = Builder.input b "x" 8 in
  let acc = Builder.reg b "acc" 16 in
  Builder.reg_next b "acc" Dsl.(acc +: x);
  Builder.output b "out" 16;
  Builder.connect b "out" acc;
  let flat = Builder.finish b in
  let net = Libdn.Network.create () in
  let w = Goldengate.Fame1.wrap ~flat ~ins:[] ~outs:[] () in
  let p = Goldengate.Fame1.add_to_network net ~name:"extsum" w in
  Libdn.Network.set_drive net p (fun eng cyc -> eng.Libdn.Engine.set_input "x" cyc);
  Libdn.Scheduler.run net ~cycles:5;
  (* acc accumulates x at cycles 0..4 = 0+1+2+3+4 = 10 *)
  Libdn.Scheduler.run net ~cycles:5;
  let eng = (Libdn.Network.partition net p).pt_engine in
  eng.Libdn.Engine.eval_comb ();
  check_int "accumulated drive" 10 (eng.Libdn.Engine.get "out")

(* ------------------------------------------------------------------ *)
(* FAME-5                                                              *)
(* ------------------------------------------------------------------ *)

(* A small tile: counter plus input adder, so threads diverge when
   driven differently. *)
let tile_flat () =
  let b = Builder.create "tile" in
  let inc = Builder.input b "inc" 8 in
  let c = Builder.reg b "c" 16 in
  Builder.reg_next b "c" Dsl.(c +: inc);
  Builder.output b "count" 16;
  Builder.connect b "count" c;
  Builder.finish b

let test_fame5_matches_replicated () =
  let flat = tile_flat () in
  let f5 = Goldengate.Fame5.create ~flat ~insts:[ "t0"; "t1"; "t2" ] () in
  let eng = Goldengate.Fame5.engine f5 in
  (* Reference: three independent sims. *)
  let refs = Array.init 3 (fun _ -> Rtlsim.Sim.create (tile_flat ())) in
  for cyc = 0 to 19 do
    for k = 0 to 2 do
      let v = (cyc + (k * 7)) land 0xff in
      eng.Libdn.Engine.set_input (Printf.sprintf "t%d#inc" k) v;
      Rtlsim.Sim.set_input refs.(k) "inc" v
    done;
    eng.Libdn.Engine.eval_comb ();
    eng.Libdn.Engine.step_seq ();
    Array.iter Rtlsim.Sim.step refs
  done;
  (* Compare via a cone evaluation (the way the network reads outputs). *)
  let cone = eng.Libdn.Engine.make_cone_eval [ "t0#count"; "t1#count"; "t2#count" ] in
  cone ();
  for k = 0 to 2 do
    Rtlsim.Sim.eval_comb refs.(k);
    check_int
      (Printf.sprintf "thread %d count" k)
      (Rtlsim.Sim.get refs.(k) "count")
      (eng.Libdn.Engine.get (Printf.sprintf "t%d#count" k))
  done

let test_fame5_per_bank_setup () =
  (* Programs can be loaded per thread via with_bank. *)
  let b = Builder.create "romtile" in
  let addr = Builder.input b "addr" 4 in
  let rom = Builder.mem b "rom" ~width:8 ~depth:16 in
  Builder.output b "data" 8;
  Builder.connect b "data" (Dsl.read rom addr);
  let flat = Builder.finish b in
  let f5 = Goldengate.Fame5.create ~flat ~insts:[ "a"; "b" ] () in
  Goldengate.Fame5.with_bank f5 0 (fun sim lane -> Rtlsim.Sim.poke_mem ~lane sim "rom" 3 11);
  Goldengate.Fame5.with_bank f5 1 (fun sim lane -> Rtlsim.Sim.poke_mem ~lane sim "rom" 3 22);
  let eng = Goldengate.Fame5.engine f5 in
  eng.Libdn.Engine.set_input "a#addr" 3;
  eng.Libdn.Engine.set_input "b#addr" 3;
  let cone = eng.Libdn.Engine.make_cone_eval [ "a#data"; "b#data" ] in
  cone ();
  check_int "bank a rom" 11 (eng.Libdn.Engine.get "a#data");
  check_int "bank b rom" 22 (eng.Libdn.Engine.get "b#data")

let test_fame5_comb_deps () =
  let b = Builder.create "combtile" in
  let x = Builder.input b "x" 8 in
  Builder.output b "y" 8;
  Builder.connect b "y" Dsl.(x +: lit ~width:8 1);
  let flat = Builder.finish b in
  let f5 = Goldengate.Fame5.create ~flat ~insts:[ "t0"; "t1" ] () in
  let eng = Goldengate.Fame5.engine f5 in
  Alcotest.(check (list string))
    "deps stay within thread" [ "t1#x" ]
    (eng.Libdn.Engine.output_comb_deps "t1#y")

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_exact_mode_equivalence =
  QCheck.Test.make ~name:"exact-mode partition = monolithic (random init)" ~count:30
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (i1, i2) ->
      let mono =
        let b = Builder.create "m" in
        let p1 = Builder.inst b "p1" "h1" in
        let p2 = Builder.inst b "p2" "h2" in
        Builder.connect_in b p2 "a_src" (Builder.of_inst p1 "d_src");
        Builder.connect_in b p2 "a_snk" (Builder.of_inst p1 "d_snk");
        Builder.connect_in b p1 "a_src" (Builder.of_inst p2 "d_src");
        Builder.connect_in b p1 "a_snk" (Builder.of_inst p2 "d_snk");
        Builder.output b "x1" 8;
        Builder.connect b "x1" (Builder.of_inst p1 "d_src");
        {
          Ast.cname = "m";
          main = "m";
          modules = [ half_module "h1" i1; half_module "h2" i2; Builder.finish b ];
        }
      in
      let ms = Rtlsim.Sim.of_circuit mono in
      let net = Libdn.Network.create () in
      let add name init =
        let flat = Flatten.flatten (Flatten.to_circuit (half_module name init)) in
        let w =
          Goldengate.Fame1.wrap ~flat
            ~ins:[ chan "in_src" [ ("a_src", 8) ]; chan "in_snk" [ ("a_snk", 8) ] ]
            ~outs:[ chan "out_src" [ ("d_src", 8) ]; chan "out_snk" [ ("d_snk", 8) ] ]
            ()
        in
        Goldengate.Fame1.add_to_network net ~name w
      in
      let p1 = add "h1" i1 in
      let p2 = add "h2" i2 in
      Libdn.Network.connect net ~src:(p1, "out_src") ~dst:(p2, "in_src");
      Libdn.Network.connect net ~src:(p1, "out_snk") ~dst:(p2, "in_snk");
      Libdn.Network.connect net ~src:(p2, "out_src") ~dst:(p1, "in_src");
      Libdn.Network.connect net ~src:(p2, "out_snk") ~dst:(p1, "in_snk");
      for _ = 1 to 16 do
        Rtlsim.Sim.step ms
      done;
      Libdn.Scheduler.run net ~cycles:16;
      Rtlsim.Sim.get ms "p1$x"
      = (Libdn.Network.partition net p1).pt_engine.Libdn.Engine.get "x")

let suite =
  [
    ( "libdn.exact",
      [
        Alcotest.test_case "matches monolithic" `Quick test_exact_mode_matches_monolithic;
        Alcotest.test_case "two crossings per cycle" `Quick test_exact_mode_crossings;
      ] );
    ( "libdn.deadlock",
      [ Alcotest.test_case "merged channels deadlock (Fig 2a)" `Quick test_merged_channels_deadlock ] );
    ( "libdn.fast",
      [
        Alcotest.test_case "seeding avoids deadlock" `Quick test_fast_mode_seeding_runs;
        Alcotest.test_case "one-cycle latency semantics" `Quick test_fast_mode_latency_semantics;
      ] );
    ("libdn.drive", [ Alcotest.test_case "external inputs" `Quick test_external_drive ]);
    ( "goldengate.fame5",
      [
        Alcotest.test_case "matches replicated instances" `Quick test_fame5_matches_replicated;
        Alcotest.test_case "per-bank setup" `Quick test_fame5_per_bank_setup;
        Alcotest.test_case "comb deps per thread" `Quick test_fame5_comb_deps;
      ] );
    ("libdn.properties", [ QCheck_alcotest.to_alcotest prop_exact_mode_equivalence ]);
  ]
