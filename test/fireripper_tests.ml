(* FireRipper compiler tests: exact-mode cycle-exactness against the
   monolithic simulation, fast-mode functional correctness with bounded
   cycle error (the Table II pattern), chain-length enforcement,
   multi-partition plans, feedthrough elision and FAME-5 threading. *)

open Firrtl
module FR = Fireripper

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let exact_config selection = { FR.Spec.default_config with FR.Spec.selection }
let fast_config selection = { FR.Spec.default_config with FR.Spec.mode = FR.Spec.Fast; selection }

(* Runs a partitioned simulation cycle by cycle until [halted] (a
   register predicate on the handle) holds; returns the halt cycle. *)
let run_partitioned_until h ~max_cycles halted =
  let rec go c =
    if c > max_cycles then Alcotest.fail "partitioned run did not halt"
    else begin
      FR.Runtime.run h ~cycles:c;
      if halted h then c else go (c + 1)
    end
  in
  go 1

(* Reads a register (or memory-backed value) in whichever unit holds it. *)
let reg_value h name =
  let u = FR.Runtime.locate h name in
  Rtlsim.Sim.get (FR.Runtime.sim_of h u) name

let mem_value h mem addr =
  let u = FR.Runtime.locate h mem in
  Rtlsim.Sim.peek_mem (FR.Runtime.sim_of h u) mem addr

(* ------------------------------------------------------------------ *)
(* Single-core SoC (the "Rocket tile" validation target)               *)
(* ------------------------------------------------------------------ *)

let program = Socgen.Kite_isa.sum_program ~base:32 ~n:8 ~dst:60
let data = List.mapi (fun i v -> (32 + i, v)) [ 3; 1; 4; 1; 5; 9; 2; 6 ]

let monolithic_run () =
  let circuit = Socgen.Soc.single_core_soc ~mem_latency:2 () in
  let sim = Rtlsim.Sim.of_circuit circuit in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data program;
  let cycles =
    Rtlsim.Sim.run_until sim ~max_cycles:100_000 (fun s ->
        Rtlsim.Sim.get s "tile$core$state" = Socgen.Kite_core.s_halted)
  in
  (cycles, Rtlsim.Sim.peek_mem sim "mem$mem" 60, Rtlsim.Sim.get sim "tile$core$retired_count")

let partitioned_run config =
  let circuit = Socgen.Soc.single_core_soc ~mem_latency:2 () in
  let plan = FR.Compile.compile ~config circuit in
  let h = FR.Runtime.instantiate plan in
  let u = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h u) ~mem:"mem$mem" ~data program;
  let state_name =
    (* The core's state register lives in the extracted unit; its flat
       name depends on how deep the selection path was. *)
    if FR.Runtime.locate h "tile$core$state" >= 0 then "tile$core$state" else assert false
  in
  let cycles =
    run_partitioned_until h ~max_cycles:100_000 (fun h ->
        reg_value h state_name = Socgen.Kite_core.s_halted)
  in
  (cycles, mem_value h "mem$mem" 60, reg_value h "tile$core$retired_count", plan, h)

let test_exact_is_cycle_exact () =
  let mono_cycles, mono_result, mono_retired = monolithic_run () in
  let cycles, result, retired, plan, _ =
    partitioned_run (exact_config (FR.Spec.Instances [ [ "tile" ] ]))
  in
  check_int "halt cycle" mono_cycles cycles;
  check_int "program result" mono_result result;
  check_int "retired" mono_retired retired;
  check_int "two units" 2 (FR.Plan.n_units plan)

let test_exact_deep_path () =
  (* Selecting the core *inside* the tile exercises the reparent pass on
     a real design. *)
  let mono_cycles, mono_result, _ = monolithic_run () in
  let circuit = Socgen.Soc.single_core_soc ~mem_latency:2 () in
  let plan =
    FR.Compile.compile ~config:(exact_config (FR.Spec.Instances [ [ "tile.core" ] ])) circuit
  in
  let h = FR.Runtime.instantiate plan in
  let u = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h u) ~mem:"mem$mem" ~data program;
  let cycles =
    run_partitioned_until h ~max_cycles:100_000 (fun h ->
        reg_value h "tile#core$state" = Socgen.Kite_core.s_halted)
  in
  check_int "halt cycle" mono_cycles cycles;
  check_int "result" mono_result (mem_value h "mem$mem" 60)

let test_fast_mode_bounded_error () =
  let mono_cycles, mono_result, mono_retired = monolithic_run () in
  let cycles, result, retired, _, _ =
    partitioned_run (fast_config (FR.Spec.Instances [ [ "tile" ] ]))
  in
  check_int "program result" mono_result result;
  check_int "retired" mono_retired retired;
  check_bool "cycle count differs (injected latency)" true (cycles <> mono_cycles);
  let err = abs (cycles - mono_cycles) * 100 / mono_cycles in
  check_bool (Printf.sprintf "error %d%% bounded" err) true (err <= 40)

(* ------------------------------------------------------------------ *)
(* Accelerator SoCs                                                    *)
(* ------------------------------------------------------------------ *)

let out_base = function
  | Socgen.Soc.Sha3 -> 64
  | Socgen.Soc.Gemmini -> 100

let accel_mono kind ~done_state =
  let circuit = Socgen.Soc.accel_soc ~mem_latency:2 kind in
  let sim = Rtlsim.Sim.of_circuit circuit in
  (match kind with
  | Socgen.Soc.Gemmini ->
    List.iteri (fun i v -> Rtlsim.Sim.poke_mem sim "mem$mem" (16 + i) v)
      (List.init 48 (fun i -> (i * 3) + 1));
    List.iteri (fun i v -> Rtlsim.Sim.poke_mem sim "mem$mem" (80 + i) v)
      (List.init 16 (fun i -> i + 1))
  | Socgen.Soc.Sha3 ->
    List.iteri (fun i v -> Rtlsim.Sim.poke_mem sim "mem$mem" (16 + i) v)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
  let cycles =
    Rtlsim.Sim.run_until sim ~max_cycles:100_000 (fun s ->
        Rtlsim.Sim.get s "accel$state" = done_state)
  in
  (cycles, List.init 3 (fun i -> Rtlsim.Sim.peek_mem sim "mem$mem" (out_base kind + i)))

let accel_part kind ~done_state config =
  let circuit = Socgen.Soc.accel_soc ~mem_latency:2 kind in
  let plan = FR.Compile.compile ~config circuit in
  let h = FR.Runtime.instantiate plan in
  let u = FR.Runtime.locate h "mem$mem" in
  let sim = FR.Runtime.sim_of h u in
  (match kind with
  | Socgen.Soc.Gemmini ->
    List.iteri (fun i v -> Rtlsim.Sim.poke_mem sim "mem$mem" (16 + i) v)
      (List.init 48 (fun i -> (i * 3) + 1));
    List.iteri (fun i v -> Rtlsim.Sim.poke_mem sim "mem$mem" (80 + i) v)
      (List.init 16 (fun i -> i + 1))
  | Socgen.Soc.Sha3 ->
    List.iteri (fun i v -> Rtlsim.Sim.poke_mem sim "mem$mem" (16 + i) v)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
  let cycles =
    run_partitioned_until h ~max_cycles:100_000 (fun h ->
        reg_value h "accel$state" = done_state)
  in
  (cycles, List.init 3 (fun i -> mem_value h "mem$mem" (out_base kind + i)))

let accel_selection = FR.Spec.Instances [ [ "accel" ] ]

let test_sha3_exact () =
  let mc, md = accel_mono Socgen.Soc.Sha3 ~done_state:Socgen.Accel.h_done in
  let pc, pd = accel_part Socgen.Soc.Sha3 ~done_state:Socgen.Accel.h_done (exact_config accel_selection) in
  check_int "cycles" mc pc;
  Alcotest.(check (list int)) "digest" md pd

let test_sha3_fast () =
  let mc, md = accel_mono Socgen.Soc.Sha3 ~done_state:Socgen.Accel.h_done in
  let pc, pd = accel_part Socgen.Soc.Sha3 ~done_state:Socgen.Accel.h_done (fast_config accel_selection) in
  Alcotest.(check (list int)) "digest" md pd;
  check_bool "bounded error" true (abs (pc - mc) * 100 / mc <= 40)

let test_gemmini_exact () =
  let mc, md = accel_mono Socgen.Soc.Gemmini ~done_state:Socgen.Accel.g_done in
  let pc, pd = accel_part Socgen.Soc.Gemmini ~done_state:Socgen.Accel.g_done (exact_config accel_selection) in
  check_int "cycles" mc pc;
  Alcotest.(check (list int)) "results" md pd

let test_gemmini_fast () =
  let mc, md = accel_mono Socgen.Soc.Gemmini ~done_state:Socgen.Accel.g_done in
  let pc, pd = accel_part Socgen.Soc.Gemmini ~done_state:Socgen.Accel.g_done (fast_config accel_selection) in
  Alcotest.(check (list int)) "results" md pd;
  check_bool "bounded error" true (abs (pc - mc) * 100 / mc <= 40)

(* ------------------------------------------------------------------ *)
(* Multi-partition plans and FAME-5                                    *)
(* ------------------------------------------------------------------ *)

let multicore_program = Socgen.Kite_isa.fib_program ~n:8 ~dst:60

let multicore_mono cores =
  let circuit = Socgen.Soc.multi_core_soc ~cores ~mem_latency:1 () in
  let sim = Rtlsim.Sim.of_circuit circuit in
  Socgen.Soc.load_program sim ~mem:"mem$mem" ~data:[] multicore_program;
  Rtlsim.Sim.run_until sim ~max_cycles:500_000 (fun s -> Rtlsim.Sim.get s "all_halted" = 1)

let test_three_partitions_exact () =
  let cores = 2 in
  let mono = multicore_mono cores in
  let circuit = Socgen.Soc.multi_core_soc ~cores ~mem_latency:1 () in
  let plan =
    FR.Compile.compile
      ~config:(exact_config (FR.Spec.Instances [ [ "tile0" ]; [ "tile1" ] ]))
      circuit
  in
  check_int "three units" 3 (FR.Plan.n_units plan);
  let h = FR.Runtime.instantiate plan in
  let u = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h u) ~mem:"mem$mem" ~data:[] multicore_program;
  let cycles =
    run_partitioned_until h ~max_cycles:500_000 (fun h ->
        reg_value h "tile0$core$state" = Socgen.Kite_core.s_halted
        && reg_value h "tile1$core$state" = Socgen.Kite_core.s_halted)
  in
  (* The monolithic halt cycle is defined on all_halted; the state-reg
     condition is identical. *)
  check_int "halt cycle" mono cycles

let test_fame5_partition () =
  let cores = 4 in
  let mono = multicore_mono cores in
  let circuit = Socgen.Soc.multi_core_soc ~cores ~mem_latency:1 () in
  let plan =
    FR.Compile.compile
      ~config:(exact_config (FR.Spec.Instances [ [ "tile0"; "tile1"; "tile2"; "tile3" ] ]))
      circuit
  in
  let h = FR.Runtime.instantiate ~fame5:true plan in
  (match FR.Runtime.fame5_of h 1 with
  | Some f5 -> check_int "four threads" 4 (Goldengate.Fame5.threads f5)
  | None -> Alcotest.fail "FAME-5 threading expected on the tile partition");
  let u = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h u) ~mem:"mem$mem" ~data:[] multicore_program;
  let f5 = Option.get (FR.Runtime.fame5_of h 1) in
  let all_halted h =
    ignore h;
    List.for_all
      (fun k ->
        Goldengate.Fame5.with_bank f5 k (fun sim lane ->
            Rtlsim.Sim.get ~lane sim "core$state" = Socgen.Kite_core.s_halted))
      [ 0; 1; 2; 3 ]
  in
  let cycles = run_partitioned_until h ~max_cycles:500_000 all_halted in
  check_int "halt cycle matches monolithic" mono cycles

let test_multi_group_fast_mode () =
  (* Two tiles on two separate FPGAs, fast mode: ready-valid repairs are
     applied per boundary; results stay functionally correct with
     bounded cycle error. *)
  let cores = 2 in
  let mono_cycles = multicore_mono cores in
  let circuit = Socgen.Soc.multi_core_soc ~cores ~mem_latency:1 () in
  let plan =
    FR.Compile.compile
      ~config:(fast_config (FR.Spec.Instances [ [ "tile0" ]; [ "tile1" ] ]))
      circuit
  in
  check_int "three units" 3 (FR.Plan.n_units plan);
  let h = FR.Runtime.instantiate plan in
  let u = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h u) ~mem:"mem$mem" ~data:[] multicore_program;
  let cycles =
    run_partitioned_until h ~max_cycles:500_000 (fun h ->
        reg_value h "tile0$core$state" = Socgen.Kite_core.s_halted
        && reg_value h "tile1$core$state" = Socgen.Kite_core.s_halted)
  in
  (* Same retired counts as monolithic execution. *)
  let mono = Rtlsim.Sim.of_circuit (Socgen.Soc.multi_core_soc ~cores ~mem_latency:1 ()) in
  Socgen.Soc.load_program mono ~mem:"mem$mem" ~data:[] multicore_program;
  let _ =
    Rtlsim.Sim.run_until mono ~max_cycles:500_000 (fun s -> Rtlsim.Sim.get s "all_halted" = 1)
  in
  check_int "core0 retired" (Rtlsim.Sim.get mono "tile0$core$retired_count")
    (reg_value h "tile0$core$retired_count");
  check_int "core1 retired" (Rtlsim.Sim.get mono "tile1$core$retired_count")
    (reg_value h "tile1$core$retired_count");
  check_bool "bounded error" true (abs (cycles - mono_cycles) * 100 / mono_cycles <= 40)

(* ------------------------------------------------------------------ *)
(* Chain-length enforcement and the long-chain escape hatch            *)
(* ------------------------------------------------------------------ *)

(* comb3: a <- in (comb), chained across the boundary three deep. *)
let chain3_circuit () =
  (* inner module: out = in + 1 combinationally; out2 = reg *)
  let mk name =
    let b = Builder.create name in
    let x = Builder.input b "x" 8 in
    let r = Builder.reg b "r" 8 in
    Builder.reg_next b "r" x;
    Builder.output b "y" 8;
    Builder.connect b "y" Dsl.(x +: lit ~width:8 1);
    Builder.output b "yr" 8;
    Builder.connect b "yr" r;
    Builder.finish b
  in
  (* main: a.y -> b.x (comb), b.y -> a.x: a comb cycle? No: route
     b.y into a register in main, then to a.x.  Chain: main's reg feeds
     a.x -> a.y (len 2) -> b.x -> b.y (len 3). *)
  let b = Builder.create "chainy" in
  let ia = Builder.inst b "pa" "m1" in
  let ib = Builder.inst b "pb" "m2" in
  Builder.connect_in b ib "x" (Builder.of_inst ia "y");
  let r = Builder.reg b "mr" 8 in
  Builder.reg_next b "mr" (Builder.of_inst ib "y");
  Builder.connect_in b ia "x" r;
  Builder.output b "o" 8;
  Builder.connect b "o" Dsl.(Builder.of_inst ia "yr" +: Builder.of_inst ib "yr");
  { Ast.cname = "chainy"; main = "chainy"; modules = [ mk "m1"; mk "m2"; Builder.finish b ] }

let test_chain_too_long_rejected () =
  let circuit = chain3_circuit () in
  check_bool "rejected" true
    (try
       ignore
         (FR.Compile.compile
            ~config:(exact_config (FR.Spec.Instances [ [ "pa" ]; [ "pb" ] ]))
            circuit);
       false
     with FR.Spec.Compile_error msg ->
       (* The error must name the offending chain. *)
       let contains hay needle =
         let nl = String.length needle and hl = String.length hay in
         let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
         go 0
       in
       check_bool "mentions chain" true (contains msg "chain");
       true)

let test_long_chain_escape_hatch () =
  (* With the bound lifted, the generic scheduler still executes the
     plan and stays cycle-exact — it just needs more crossings. *)
  let circuit = chain3_circuit () in
  let mono = Rtlsim.Sim.of_circuit circuit in
  let plan =
    FR.Compile.compile
      ~config:
        {
          (exact_config (FR.Spec.Instances [ [ "pa" ]; [ "pb" ] ])) with
          FR.Spec.allow_long_chains = true;
        }
      circuit
  in
  let h = FR.Runtime.instantiate plan in
  for c = 1 to 20 do
    Rtlsim.Sim.step mono;
    FR.Runtime.run h ~cycles:c;
    check_int
      (Printf.sprintf "pa.r at cycle %d" c)
      (Rtlsim.Sim.get mono "pa$r") (reg_value h "pa$r");
    check_int
      (Printf.sprintf "mr at cycle %d" c)
      (Rtlsim.Sim.get mono "mr") (reg_value h "mr")
  done

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_report_quick_feedback () =
  let circuit = Socgen.Soc.single_core_soc () in
  let plan =
    FR.Compile.compile ~config:(exact_config (FR.Spec.Instances [ [ "tile" ] ])) circuit
  in
  let r = FR.Report.build plan in
  check_int "units" 2 (List.length r.FR.Report.r_units);
  (* Boundary: req (valid+addr+wdata+wen = 34b) + resp (valid+data=17b) +
     ready bits both ways + halted + retired. *)
  check_bool "width plausible" true (r.FR.Report.r_total_width > 50);
  check_bool "report prints" true (String.length (FR.Report.to_string r) > 0)

let suite =
  [
    ( "fireripper.exact",
      [
        Alcotest.test_case "tile partition is cycle-exact" `Quick test_exact_is_cycle_exact;
        Alcotest.test_case "deep-path selection (reparent)" `Quick test_exact_deep_path;
        Alcotest.test_case "sha3 SoC" `Quick test_sha3_exact;
        Alcotest.test_case "gemmini SoC" `Quick test_gemmini_exact;
        Alcotest.test_case "three partitions" `Quick test_three_partitions_exact;
      ] );
    ( "fireripper.fast",
      [
        Alcotest.test_case "tile partition bounded error" `Quick test_fast_mode_bounded_error;
        Alcotest.test_case "sha3 SoC" `Quick test_sha3_fast;
        Alcotest.test_case "gemmini SoC" `Quick test_gemmini_fast;
        Alcotest.test_case "two tile partitions" `Quick test_multi_group_fast_mode;
      ] );
    ( "fireripper.fame5",
      [ Alcotest.test_case "threaded tiles cycle-exact" `Quick test_fame5_partition ] );
    ( "fireripper.chains",
      [
        Alcotest.test_case "chain >2 rejected" `Quick test_chain_too_long_rejected;
        Alcotest.test_case "escape hatch stays exact" `Quick test_long_chain_escape_hatch;
      ] );
    ("fireripper.report", [ Alcotest.test_case "quick feedback" `Quick test_report_quick_feedback ]);
  ]
