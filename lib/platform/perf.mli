(** Discrete-event performance model of a partitioned FireAxe simulation
    (Figures 11-14): the LI-BDN token protocol executed in host time,
    with (de)serialization at the bitstream clock, transport wire time
    and latency, and FAME-5 thread multipliers. *)

type part = {
  p_freq_mhz : float;  (** bitstream frequency *)
  p_threads : int;  (** FAME-5 threads folded into this partition *)
}

type chan = {
  ch_src : int;
  ch_dst : int;
  ch_bits : int;
  ch_transport : Transport.kind;
  ch_deps : int list;
      (** channel indices of incoming channels of [ch_src] whose token
          must arrive before this channel fires *)
  ch_seeded : bool;  (** fast-mode initial token *)
  ch_extra_ps : int;  (** additional per-delivery overhead (ring skew) *)
}

type spec = {
  parts : part array;
  chans : chan array;
}

(* Host-cycle cost constants, exposed for hardware-FMR validation. *)
val serdes_width_bits : int
val fire_overhead_cycles : int
val step_overhead_cycles : int
val period_ps : part -> int
val ser_cycles : int -> int

(** Host picoseconds to simulate [target_cycles]. *)
val simulate : spec -> target_cycles:int -> int

(** Simulation rate in target Hz. *)
val rate : ?target_cycles:int -> spec -> float

(** Publishes the model's predictions ([model.perf.host_ps],
    [model.perf.rate_hz], per-channel [delivery_ps], plus the transport
    parameters in use) into a telemetry sink, so measured run telemetry
    and modeled costs land in one metrics snapshot. *)
val to_telemetry : Telemetry.t -> spec -> target_cycles:int -> unit

(** Closed-form estimate (the ablation baseline). *)
val analytic_rate : spec -> float

(** Builds a spec from a compiled plan: channel widths and dependency
    structure from the real channelization; frequencies, FAME-5 threads
    and transports supplied per unit / link. *)
val of_plan :
  ?freq_mhz:(int -> float) ->
  ?threads:(int -> int) ->
  ?transport:(src:int -> dst:int -> Transport.kind) ->
  Fireripper.Plan.t ->
  spec

(** Two partitions cut by an interface of [bits] per direction (the
    §VI-A sweep setup). *)
val two_fpga_spec :
  mode:Fireripper.Spec.mode -> bits:int -> freq_mhz:float -> transport:Transport.kind -> spec

(** A ring of [n] FPGAs exchanging NoC tokens with neighbours
    (Figure 13), with a mild per-hop skew. *)
val ring_spec : n:int -> bits:int -> freq_mhz:float -> transport:Transport.kind -> spec

(** FAME-5 amortization setup (Figure 14): [tiles] threads on one FPGA,
    the SoC subsystem on the other; interface grows with tiles. *)
val fame5_spec :
  tiles:int ->
  bits_per_tile:int ->
  tile_freq_mhz:float ->
  soc_freq_mhz:float ->
  transport:Transport.kind ->
  spec

(** Star topology through a central switch (§VIII-C). *)
val star_spec : n:int -> bits:int -> freq_mhz:float -> transport:Transport.kind -> spec
