(* FPGA-to-FPGA transport models (Section IV).

   Three mechanisms, as in the paper:
   - QSFP direct-attach cables driving Aurora IP (on-premises): lowest
     latency, highest bandwidth;
   - peer-to-peer PCIe between FPGAs on one AWS F1 instance: no host
     round trip, but higher latency than QSFP;
   - host-managed PCIe: each token crosses FPGA -> host CPU -> shared
     memory -> host CPU -> FPGA, capping simulation rate in the tens of
     kilohertz.

   Constants are calibrated so the headline rates of the paper come out
   of the performance model: ~1.6 MHz for QSFP, ~1 MHz for p2p PCIe and
   ~26 kHz host-managed on a narrow fast-mode boundary. *)

type kind =
  | Qsfp
  | Pcie_p2p
  | Pcie_host
  | Ethernet
      (** §VIII-C future work: switched Ethernet between FPGAs — higher
          latency than direct-attach QSFP (one switch traversal), but it
          frees the topology from the two-QSFP-cage ring/tree limit:
          any FPGA can reach any other through the switch. *)

type params = {
  latency_ps : int;  (** one-way link latency *)
  gbps : float;  (** payload bandwidth, bits per nanosecond *)
  fixed_overhead_ps : int;  (** per-token protocol/software overhead *)
}

let params = function
  | Qsfp -> { latency_ps = 500_000; gbps = 64.0; fixed_overhead_ps = 40_000 }
  | Pcie_p2p -> { latency_ps = 860_000; gbps = 32.0; fixed_overhead_ps = 60_000 }
  | Pcie_host ->
    (* Dominated by driver software and two host PCIe hops. *)
    { latency_ps = 32_000_000; gbps = 32.0; fixed_overhead_ps = 4_500_000 }
  | Ethernet ->
    (* Two cable flights plus a cut-through switch traversal. *)
    { latency_ps = 1_400_000; gbps = 48.0; fixed_overhead_ps = 120_000 }

let name = function
  | Qsfp -> "QSFP direct-attach"
  | Pcie_p2p -> "PCIe peer-to-peer"
  | Pcie_host -> "host-managed PCIe"
  | Ethernet -> "switched Ethernet"

let slug = function
  | Qsfp -> "qsfp"
  | Pcie_p2p -> "pcie_p2p"
  | Pcie_host -> "pcie_host"
  | Ethernet -> "ethernet"

(** Wire time for a token of [bits] (excluding link latency). *)
let wire_time_ps kind ~bits =
  let p = params kind in
  p.fixed_overhead_ps + int_of_float (float_of_int bits /. p.gbps *. 1000.)

(** Total one-way delivery time for a token of [bits]. *)
let delivery_ps kind ~bits = (params kind).latency_ps + wire_time_ps kind ~bits

(** Publishes the modeled per-token costs of [kind] for a token of
    [bits] as gauges ([model.transport.<kind>.latency_ps] /
    [.wire_ps] / [.delivery_ps]), so a functional run's measured
    telemetry can be cross-checked against the transport model in one
    metrics snapshot. *)
let to_telemetry tel kind ~bits =
  let p = params kind in
  let g metric v =
    Telemetry.set
      (Telemetry.gauge tel (Printf.sprintf "model.transport.%s.%s" (slug kind) metric))
      v
  in
  g "latency_ps" p.latency_ps;
  g "wire_ps" (wire_time_ps kind ~bits);
  g "delivery_ps" (delivery_ps kind ~bits)
