(** Static load-balanced domain placement: packs plan units onto the
    available host domains by predicted weight (LPT bin packing via
    {!Libdn.Scheduler.pack}), replacing one-domain-per-partition when
    the host has fewer domains than the plan has partitions.

    Weights come from the {!Telemetry.Profile} load model when a
    profile from a previous run is supplied (measured active ns), else
    from the {!Resource} estimator (LUTs + FFs per unit). *)

type policy =
  | Spread  (** one domain per partition — the historical mapping *)
  | Auto  (** bin-pack partitions onto the available host domains *)

val accepted_names : string list
(** The spellings {!policy_of_string} accepts: ["auto"]/["spread"]. *)

val policy_of_string : string -> (policy, string) result
val policy_name : policy -> string

(** One weight per plan unit, in unit order: the profile's load-model
    weight when available (keyed by unit name), else the resource
    estimate. *)
val weights : ?profile:Telemetry.Profile.t -> Fireripper.Plan.t -> int array

(** The assignment for [plan] under [policy]: [None] = one domain per
    partition; [Some groups] fuses partitions sharing a slot onto one
    domain (feed it to [Network.set_groups]).  [domains] defaults to
    {!Libdn.Scheduler.effective_host_domains}; [Auto] collapses to
    spread when domains >= partitions. *)
val groups :
  ?profile:Telemetry.Profile.t ->
  ?domains:int ->
  policy:policy ->
  Fireripper.Plan.t ->
  int array option
