(* Static load-balanced domain placement (the software analogue of the
   paper's partition-to-FPGA assignment): decide which host domain runs
   which partition BEFORE the run, from a static load model, instead of
   blindly spawning one domain per partition and letting the surplus
   park.

   Weight sources, in order of preference:
   - the {!Telemetry.Profile} load model, when a profile from a previous
     run is supplied and has recorded per-partition weights (measured
     active ns beats any prediction);
   - the {!Resource} estimator otherwise: LUTs + FFs of each plan unit —
     the same static weight the fit advisor uses, monotone in the
     evaluation cost of the unit's logic.

   The pass itself is {!Libdn.Scheduler.pack}: LPT greedy bin packing
   onto the available host domains.  Starved partitions therefore fuse
   onto shared domains instead of each burning a parked domain — the
   replacement for the one-domain-per-partition mapping that
   oversubscribed single-core CI machines into pure park time. *)

type policy = Spread | Auto

let accepted_names = [ "auto"; "spread" ]

let policy_of_string = function
  | "auto" -> Ok Auto
  | "spread" -> Ok Spread
  | s ->
    Error
      (Printf.sprintf "unknown placement %S (accepted: %s)" s
         (String.concat "|" accepted_names))

let policy_name = function Spread -> "spread" | Auto -> "auto"

(* Static per-unit weight: LUTs + FFs from the resource estimator.
   Relative magnitudes are all that matters for packing. *)
let resource_weight (u : Fireripper.Plan.unit_part) =
  let e = Resource.estimate_unit u in
  max 1 (e.Resource.luts + e.Resource.ffs)

(** One weight per plan unit, in unit order.  [profile]'s load model
    wins for units it has rows for (keyed by unit name); the resource
    estimator fills the rest. *)
let weights ?(profile = Telemetry.Profile.null) (plan : Fireripper.Plan.t) =
  let profiled = Telemetry.Profile.load_weights profile in
  Array.map
    (fun (u : Fireripper.Plan.unit_part) ->
      match List.assoc_opt u.Fireripper.Plan.u_name profiled with
      | Some w when w > 0 -> w
      | _ -> resource_weight u)
    plan.Fireripper.Plan.p_units

(** The placement assignment for [plan] under [policy]: [None] means
    one domain per partition (spread — the historical mapping), [Some
    groups] fuses partitions sharing a slot onto one domain.  [domains]
    defaults to the host-domain count the parallel scheduler sizes
    itself to; Auto collapses to spread when there are at least as many
    domains as partitions (fusing would only serialize). *)
let groups ?profile ?domains ~policy (plan : Fireripper.Plan.t) =
  match policy with
  | Spread -> None
  | Auto ->
    let n = Array.length plan.Fireripper.Plan.p_units in
    let d =
      match domains with
      | Some d when d > 0 -> d
      | _ -> Libdn.Scheduler.effective_host_domains ()
    in
    if d >= n || n = 0 then None
    else Some (Libdn.Scheduler.pack ~weights:(weights ?profile plan) ~domains:d)
