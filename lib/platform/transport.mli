(** FPGA-to-FPGA transport models (paper Section IV): QSFP direct-attach
    cables, peer-to-peer PCIe on AWS F1, host-managed PCIe, and the
    §VIII-C switched-Ethernet extension.  Constants are calibrated so
    the performance model reproduces the paper's headline rates. *)

type kind =
  | Qsfp
  | Pcie_p2p
  | Pcie_host
  | Ethernet

type params = {
  latency_ps : int;  (** one-way link latency *)
  gbps : float;  (** payload bandwidth, bits per nanosecond *)
  fixed_overhead_ps : int;  (** per-token protocol/software overhead *)
}

val params : kind -> params
val name : kind -> string

(** Metric-name-safe identifier (["qsfp"], ["pcie_p2p"], ...). *)
val slug : kind -> string

(** Wire time for a token of [bits], excluding link latency. *)
val wire_time_ps : kind -> bits:int -> int

(** Total one-way delivery time for a token of [bits]. *)
val delivery_ps : kind -> bits:int -> int

(** Publishes the modeled per-token costs as
    [model.transport.<kind>.latency_ps]/[.wire_ps]/[.delivery_ps]
    gauges, for cross-checking measured telemetry against the model. *)
val to_telemetry : Telemetry.t -> kind -> bits:int -> unit
