(* Discrete-event performance model of a partitioned FireAxe simulation.

   The model executes the same token protocol as the functional LI-BDN
   network — source channels fire from the cycle start, sink channels
   wait for the tokens they combinationally depend on, a partition
   advances when all inputs arrived and all outputs fired — but in host
   time: firing costs (de)serialization host cycles at the bitstream
   frequency, deliveries cost transport wire time plus link latency, and
   FAME-5 threading multiplies the per-cycle host step.  Simulation rate
   is then target cycles divided by simulated host time.  This is the
   machinery behind Figures 11-14; a closed-form estimate is provided
   for the ablation bench. *)

type part = {
  p_freq_mhz : float;  (** bitstream frequency *)
  p_threads : int;  (** FAME-5 threads folded into this partition *)
}

type chan = {
  ch_src : int;
  ch_dst : int;
  ch_bits : int;
  ch_transport : Transport.kind;
  ch_deps : int list;
      (** channel indices (into the spec) of incoming channels of
          [ch_src] whose token must arrive before this channel fires *)
  ch_seeded : bool;  (** fast-mode initial token *)
  ch_extra_ps : int;  (** additional per-delivery overhead (ring skew) *)
}

type spec = {
  parts : part array;
  chans : chan array;
}

(* Host cycles charged by the LI-BDN machinery. *)
let serdes_width_bits = 512
let fire_overhead_cycles = 2
let step_overhead_cycles = 2

let period_ps (p : part) = int_of_float (1_000_000. /. p.p_freq_mhz)

let ser_cycles bits = fire_overhead_cycles + ((bits + serdes_width_bits - 1) / serdes_width_bits)

type runtime_state = {
  mutable cycle : int;
  mutable cycle_start : int;  (** host time the current cycle began *)
  fired : int array;  (** fire time per outgoing channel, -1 = unfired *)
}

(** Simulates [target_cycles] of the partitioned design; returns the
    total host time in picoseconds. *)
let simulate spec ~target_cycles =
  let eng = Des.Engine.create () in
  let n = Array.length spec.parts in
  let outs = Array.make n [] in
  let ins = Array.make n [] in
  Array.iteri
    (fun ci c ->
      outs.(c.ch_src) <- ci :: outs.(c.ch_src);
      ins.(c.ch_dst) <- ci :: ins.(c.ch_dst))
    spec.chans;
  let arrivals = Array.map (fun _ -> Queue.create ()) spec.chans in
  let states =
    Array.init n (fun _ ->
        { cycle = 0; cycle_start = 0; fired = Array.make (Array.length spec.chans) (-1) })
  in
  Array.iteri (fun ci c -> if c.ch_seeded then Queue.push 0 arrivals.(ci)) spec.chans;
  let finish_time = ref 0 in
  let rec progress p () =
    let st = states.(p) in
    if st.cycle < target_cycles then begin
      let prt = spec.parts.(p) in
      let period = period_ps prt in
      (* Fire ready output channels. *)
      List.iter
        (fun ci ->
          let c = spec.chans.(ci) in
          if
            st.fired.(ci) < 0
            && List.for_all (fun d -> not (Queue.is_empty arrivals.(d))) c.ch_deps
          then begin
            let dep_ready =
              List.fold_left (fun acc d -> max acc (Queue.peek arrivals.(d))) 0 c.ch_deps
            in
            let fire = max st.cycle_start dep_ready + (ser_cycles c.ch_bits * period) in
            st.fired.(ci) <- fire;
            let deliver =
              fire
              + Transport.delivery_ps c.ch_transport ~bits:c.ch_bits
              + c.ch_extra_ps
              + (ser_cycles c.ch_bits * period_ps spec.parts.(c.ch_dst))
            in
            Des.Engine.at eng ~time:deliver (fun () ->
                Queue.push deliver arrivals.(ci);
                progress c.ch_dst ())
          end)
        outs.(p);
      (* Advance the target cycle. *)
      let inputs_ready =
        List.for_all (fun ci -> not (Queue.is_empty arrivals.(ci))) ins.(p)
      in
      let outputs_fired = List.for_all (fun ci -> st.fired.(ci) >= 0) outs.(p) in
      if inputs_ready && outputs_fired then begin
        let latest = ref st.cycle_start in
        List.iter (fun ci -> latest := max !latest (Queue.pop arrivals.(ci))) ins.(p);
        List.iter
          (fun ci ->
            latest := max !latest st.fired.(ci);
            st.fired.(ci) <- -1)
          outs.(p);
        let step = (step_overhead_cycles + prt.p_threads) * period in
        st.cycle_start <- !latest + step;
        st.cycle <- st.cycle + 1;
        if st.cycle >= target_cycles then finish_time := max !finish_time st.cycle_start
        else Des.Engine.at eng ~time:st.cycle_start (progress p)
      end
    end
  in
  for p = 0 to n - 1 do
    progress p ()
  done;
  Des.Engine.run eng;
  !finish_time

(** Simulation rate in target Hz. *)
let rate ?(target_cycles = 2000) spec =
  let t_ps = simulate spec ~target_cycles in
  if t_ps = 0 then infinity
  else float_of_int target_cycles /. (float_of_int t_ps *. 1e-12)

(** Publishes the performance model's predictions for [spec] as gauges
    ([model.perf.host_ps], [model.perf.rate_hz],
    [model.perf.chan.<i>.delivery_ps]), alongside the transport
    parameters of every link kind the spec uses.  A functional run that
    records into the same sink then carries modeled and measured numbers
    in one metrics snapshot, making the cross-check a pure
    post-processing step. *)
let to_telemetry tel spec ~target_cycles =
  let g name v = Telemetry.set (Telemetry.gauge tel name) v in
  let host_ps = simulate spec ~target_cycles in
  g "model.perf.target_cycles" target_cycles;
  g "model.perf.host_ps" host_ps;
  if host_ps > 0 then
    g "model.perf.rate_hz"
      (int_of_float (float_of_int target_cycles /. (float_of_int host_ps *. 1e-12)));
  let kinds =
    Array.to_list spec.chans
    |> List.map (fun c -> c.ch_transport)
    |> List.sort_uniq compare
  in
  List.iter (fun k -> Transport.to_telemetry tel k ~bits:0) kinds;
  Array.iteri
    (fun ci c ->
      g
        (Printf.sprintf "model.perf.chan.%d.delivery_ps" ci)
        (Transport.delivery_ps c.ch_transport ~bits:c.ch_bits + c.ch_extra_ps))
    spec.chans

(* ------------------------------------------------------------------ *)
(* Closed-form estimate (ablation baseline)                            *)
(* ------------------------------------------------------------------ *)

(** Back-of-the-envelope rate: the critical path of one target cycle is
    the longest serial chain of channel deliveries plus the slowest
    partition's step time.  Ignores pipelining effects the DES captures. *)
let analytic_rate spec =
  let chain_depth =
    (* Longest dependency chain among channels (1 = source only). *)
    let memo = Hashtbl.create 16 in
    let rec depth ci =
      match Hashtbl.find_opt memo ci with
      | Some d -> d
      | None ->
        Hashtbl.replace memo ci 1;
        let c = spec.chans.(ci) in
        let d =
          1 + List.fold_left (fun acc d -> max acc (depth d)) 0 c.ch_deps
        in
        Hashtbl.replace memo ci d;
        d
    in
    Array.to_list (Array.mapi (fun i _ -> depth i) spec.chans)
    |> List.fold_left max 1
  in
  let worst_delivery =
    Array.fold_left
      (fun acc c ->
        max acc
          (Transport.delivery_ps c.ch_transport ~bits:c.ch_bits
          + c.ch_extra_ps
          + (2 * ser_cycles c.ch_bits * period_ps spec.parts.(c.ch_src))))
      0 spec.chans
  in
  let worst_step =
    Array.fold_left
      (fun acc p -> max acc ((step_overhead_cycles + p.p_threads) * period_ps p))
      0 spec.parts
  in
  let effective_depth =
    if Array.for_all (fun c -> c.ch_seeded) spec.chans && Array.length spec.chans > 0 then 1
    else chain_depth
  in
  let period = worst_step + (effective_depth * worst_delivery) in
  1e12 /. float_of_int period

(* ------------------------------------------------------------------ *)
(* From a FireRipper plan                                              *)
(* ------------------------------------------------------------------ *)

(** Builds a perf spec from a compiled plan: channel widths and
    dependency structure come from the real channelization; transports,
    bitstream frequencies and FAME-5 thread counts are supplied by the
    caller. *)
let of_plan ?(freq_mhz = fun _ -> 30.) ?(threads = fun _ -> 1)
    ?(transport = fun ~src:_ ~dst:_ -> Transport.Qsfp) (plan : Fireripper.Plan.t) =
  let pairs = Fireripper.Plan.channel_pairs plan in
  let parts =
    Array.map
      (fun (u : Fireripper.Plan.unit_part) ->
        { p_freq_mhz = freq_mhz u.Fireripper.Plan.u_index; p_threads = threads u.Fireripper.Plan.u_index })
      plan.Fireripper.Plan.p_units
  in
  (* Map: which channel-pair index carries a given input port of a unit. *)
  let in_port_chan = Hashtbl.create 64 in
  List.iteri
    (fun ci (cp : Fireripper.Plan.channel_pair) ->
      List.iter
        (fun (port, _) -> Hashtbl.replace in_port_chan (cp.Fireripper.Plan.cp_dst_unit, port) ci)
        cp.Fireripper.Plan.cp_in.Libdn.Channel.ports)
    pairs;
  let chans =
    List.mapi
      (fun _ci (cp : Fireripper.Plan.channel_pair) ->
        let u = cp.Fireripper.Plan.cp_src_unit in
        let analysis = Lazy.force plan.Fireripper.Plan.p_units.(u).Fireripper.Plan.u_analysis in
        let deps =
          List.concat_map
            (fun (port, _) ->
              List.filter_map
                (fun dep -> Hashtbl.find_opt in_port_chan (u, dep))
                (Firrtl.Analysis.comb_inputs analysis port))
            cp.Fireripper.Plan.cp_out.Libdn.Channel.ports
          |> List.sort_uniq compare
        in
        {
          ch_src = u;
          ch_dst = cp.Fireripper.Plan.cp_dst_unit;
          ch_bits = Libdn.Channel.width cp.Fireripper.Plan.cp_out;
          ch_transport = transport ~src:u ~dst:cp.Fireripper.Plan.cp_dst_unit;
          ch_deps = deps;
          ch_seeded = plan.Fireripper.Plan.p_mode = Fireripper.Spec.Fast;
          ch_extra_ps = 0;
        })
      pairs
    |> Array.of_list
  in
  { parts; chans }

(* ------------------------------------------------------------------ *)
(* Synthetic specs for the performance sweeps                          *)
(* ------------------------------------------------------------------ *)

(** Two partitions cut by an interface of [bits] (each direction),
    matching the Section VI-A sweep setup.  Exact mode splits the
    interface into a source and a sink channel per direction (two
    crossings per cycle); fast mode is one seeded channel each way. *)
let two_fpga_spec ~mode ~bits ~freq_mhz ~transport =
  let part = { p_freq_mhz = freq_mhz; p_threads = 1 } in
  match (mode : Fireripper.Spec.mode) with
  | Fireripper.Spec.Fast ->
    {
      parts = [| part; part |];
      chans =
        [|
          { ch_src = 0; ch_dst = 1; ch_bits = bits; ch_transport = transport; ch_deps = [ 1 ]; ch_seeded = true; ch_extra_ps = 0 };
          { ch_src = 1; ch_dst = 0; ch_bits = bits; ch_transport = transport; ch_deps = [ 0 ]; ch_seeded = true; ch_extra_ps = 0 };
        |];
    }
  | Fireripper.Spec.Exact ->
    (* Channels: 0/1 = src outs, 2/3 = sink outs; a sink out waits on
       the peer's source token (chain length 2). *)
    let src_bits = bits / 2 and snk_bits = bits - (bits / 2) in
    {
      parts = [| part; part |];
      chans =
        [|
          { ch_src = 0; ch_dst = 1; ch_bits = src_bits; ch_transport = transport; ch_deps = []; ch_seeded = false; ch_extra_ps = 0 };
          { ch_src = 1; ch_dst = 0; ch_bits = src_bits; ch_transport = transport; ch_deps = []; ch_seeded = false; ch_extra_ps = 0 };
          { ch_src = 0; ch_dst = 1; ch_bits = snk_bits; ch_transport = transport; ch_deps = [ 1 ]; ch_seeded = false; ch_extra_ps = 0 };
          { ch_src = 1; ch_dst = 0; ch_bits = snk_bits; ch_transport = transport; ch_deps = [ 0 ]; ch_seeded = false; ch_extra_ps = 0 };
        |];
    }

(** A ring of [n] FPGAs exchanging NoC tokens with neighbours (the
    Figure 13 sweep).  Interface width is fixed per ring hop; a small
    per-hop skew overhead models the "minor timing issues" the paper
    observes as rings grow. *)
let ring_spec ~n ~bits ~freq_mhz ~transport =
  let parts = Array.init n (fun _ -> { p_freq_mhz = freq_mhz; p_threads = 1 }) in
  let chans =
    Array.init (2 * n) (fun i ->
        let k = i / 2 in
        let forward = i mod 2 = 0 in
        let src = if forward then k else (k + 1) mod n in
        let dst = if forward then (k + 1) mod n else k in
        {
          ch_src = src;
          ch_dst = dst;
          ch_bits = bits;
          ch_transport = transport;
          ch_deps = [];
          ch_seeded = false;
          ch_extra_ps = 15_000 * n;
        })
  in
  { parts; chans }

(** FAME-5 amortization setup (Figure 14): one FPGA holds [tiles]
    threaded tiles at [tile_freq]; the SoC subsystem FPGA runs at
    [soc_freq].  Interface width grows linearly with the thread count,
    as the paper notes. *)
let fame5_spec ~tiles ~bits_per_tile ~tile_freq_mhz ~soc_freq_mhz ~transport =
  {
    parts =
      [|
        { p_freq_mhz = soc_freq_mhz; p_threads = 1 };
        { p_freq_mhz = tile_freq_mhz; p_threads = tiles };
      |];
    chans =
      [|
        {
          ch_src = 0;
          ch_dst = 1;
          ch_bits = tiles * bits_per_tile;
          ch_transport = transport;
          ch_deps = [ 1 ];
          ch_seeded = true;
          ch_extra_ps = 0;
        };
        {
          ch_src = 1;
          ch_dst = 0;
          ch_bits = tiles * bits_per_tile;
          ch_transport = transport;
          ch_deps = [ 0 ];
          ch_seeded = true;
          ch_extra_ps = 0;
        };
      |];
  }

(** Star topology through a central Ethernet switch (§VIII-C): every
    partition exchanges tokens with the hub partition 0.  Compared with
    the QSFP ring it trades latency for arbitrary reach — no rewiring
    when the topology changes. *)
let star_spec ~n ~bits ~freq_mhz ~transport =
  let parts = Array.init n (fun _ -> { p_freq_mhz = freq_mhz; p_threads = 1 }) in
  let chans =
    Array.init (2 * (n - 1)) (fun i ->
        let k = (i / 2) + 1 in
        let to_hub = i mod 2 = 0 in
        {
          ch_src = (if to_hub then k else 0);
          ch_dst = (if to_hub then 0 else k);
          ch_bits = bits;
          ch_transport = transport;
          ch_deps = [];
          ch_seeded = false;
          ch_extra_ps = 0;
        })
  in
  { parts; chans }
