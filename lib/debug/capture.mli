(** Partition-aware waveform capture: watch flattened signals anywhere
    in a partitioned design (local units through their simulator,
    remote units through one batched worker round trip per cycle) plus
    the LI-BDN boundary channels as queue-depth tracks, merged into a
    single GTKWave-loadable VCD with one scope per partition.
    Fast-mode injected boundary cycles are remapped onto target cycles
    at render time so partitioned and monolithic waves align. *)

exception Unknown_signal of string list
(** Signal names that resolved to no partition (or name a memory, which
    cannot be waveform-sampled). *)

(** A resolved probe set: per-signal metadata plus one batched reader
    returning every current value in probe order. *)
type probes = {
  pb_names : string array;
  pb_scopes : string array;  (** owning unit name, per probe *)
  pb_widths : int array;
  pb_read : unit -> int array;
}

(** One extra waveform lane read from outside the probe set. *)
type track = { tr_name : string; tr_width : int; tr_read : unit -> int }

type divergence = {
  dv_cycle : int;
  dv_signal : string;
  dv_a : int;  (** value in the first (golden) capture *)
  dv_b : int;  (** value in the second capture *)
}

(** Resolves names against every unit of the handle — local simulators,
    then remote workers — building the batched reader (one [sample]
    round trip per worker per call).  Raises {!Unknown_signal} listing
    every unresolvable name. *)
val resolve : Fireripper.Runtime.handle -> string list -> probes

(** One queue-depth track per LI-BDN input channel, named
    [<partition>.<channel>.depth]. *)
val network_tracks : Libdn.Network.t -> track array

(** The fast-mode seed offset of a handle's plan: channel-track events
    are shifted this many cycles earlier at render time (1 in fast
    mode, 0 in exact mode). *)
val seed_offset : Fireripper.Runtime.handle -> int

(** Renders (probes, tracks, samples-oldest-first) as a VCD document:
    one scope per distinct probe scope, a [channels] scope for tracks,
    track events shifted [offset] cycles earlier, all events merged
    time-sorted.  Each sample is (target cycle, probe values, track
    values). *)
val render_vcd :
  ?version:string ->
  probes:probes ->
  tracks:track array ->
  offset:int ->
  samples:(int * int array * int array) list ->
  unit ->
  string

type t

(** Builds a capture over an explicit probe set (no channel tracks
    unless given). *)
val of_probes : ?tracks:track array -> ?offset:int -> probes -> t

(** Watches [probes] of a partitioned handle; [channels] (default true)
    adds the boundary-channel depth tracks.  Raises {!Unknown_signal}
    for unresolvable names. *)
val of_handle : ?channels:bool -> Fireripper.Runtime.handle -> probes:string list -> t

(** Watches [probes] of a monolithic simulation — the golden side of a
    partitioned-vs-monolithic comparison. *)
val of_sim : Rtlsim.Sim.t -> probes:string list -> t

(** Records the watched values for target cycle [cycle] (call right
    after advancing to it).  Re-sampling an already-recorded cycle is a
    no-op, so supervisor rollback + re-execution cannot corrupt the
    trace. *)
val sample : t -> cycle:int -> unit

val sample_count : t -> int
val probe_names : t -> string list

(** The merged multi-scope VCD document. *)
val contents : t -> string

(** The canonical probe-only VCD (single [top] scope, vars in probe
    order, no tracks): byte-identical across monolithic and partitioned
    captures of the same probes and values. *)
val probe_trace : t -> string

(** Writes {!contents} to [path]. *)
val save : t -> path:string -> unit

(** The probe samples as a [fireaxe-wave-1] binary store (signal table
    in probe order, no channel tracks).  [Wavestore.Reader.to_vcd] of
    these bytes reproduces {!probe_trace} byte for byte. *)
val wave_contents : t -> string

(** Writes {!wave_contents} to [path]. *)
val save_wave : t -> path:string -> unit

(** The first (cycle, signal) at which two captures of the same probe
    list disagree, comparing the cycles both sampled.  [None] when all
    common samples match. *)
val diff : t -> t -> divergence option
