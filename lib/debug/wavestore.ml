(* Compact indexed binary waveform store (schema [fireaxe-wave-1]):
   change-only per-sample records with varint cycle deltas, periodic
   keyframes carrying every signal value, and a trailing cycle index so
   random access is a binary search plus a short forward scan instead of
   a scan from cycle zero.  VCD text made full capture cost +42% in
   BENCH_observe.json; this sink writes a few varint bytes per changed
   signal and renders to VCD only on demand, losslessly.

   Layout:

     "fireaxe-wave-1\n"
     header   : varint nsignals, nsignals x (varint len, name, varint w),
                varint keyframe_every
     frames   : 'K' varint cycle, nsignals varints        (keyframe)
                'D' varint dcycle, varint nchanges,
                    nchanges x (varint index, varint value)
     index    : varint nsamples, varint first_cycle, varint last_cycle,
                varint nkeys, nkeys x (varint cycle, varint offset)
     trailer  : 8-byte big-endian index offset, "FAXW"

   Varints are LEB128 over the int's unsigned bit pattern, so any OCaml
   int round-trips in at most nine bytes. *)

let schema = "fireaxe-wave-1"

let magic = schema ^ "\n"
let tail_magic = "FAXW"

exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Corrupt why -> Some (Printf.sprintf "wavestore: corrupt store (%s)" why)
    | _ -> None)

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

(* The varint + delta-record codec, exposed so the service's push
   frames ([watch] probe deltas) ride the exact same bytes as the
   on-disk store. *)
module Codec = struct
  let add_varint buf n =
    let rec go n =
      let b = n land 0x7f in
      let rest = n lsr 7 in
      if rest = 0 then Buffer.add_char buf (Char.chr b)
      else begin
        Buffer.add_char buf (Char.chr (b lor 0x80));
        go rest
      end
    in
    go n

  let read_varint s pos =
    let len = String.length s in
    let rec go shift acc =
      if !pos >= len then corrupt "truncated varint";
      let b = Char.code s.[!pos] in
      incr pos;
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc
      else if shift >= 63 then corrupt "varint overflow"
      else go (shift + 7) acc
    in
    go 0 0

  (* One probe-delta record: target cycle plus (signal index, value)
     changes — the payload of a [watch] push frame. *)
  let encode_delta ~cycle ~changes =
    let buf = Buffer.create 32 in
    add_varint buf cycle;
    add_varint buf (List.length changes);
    List.iter
      (fun (i, v) ->
        add_varint buf i;
        add_varint buf v)
      changes;
    Buffer.contents buf

  let decode_delta s =
    let pos = ref 0 in
    let cycle = read_varint s pos in
    let n = read_varint s pos in
    if n < 0 || n > String.length s then corrupt "insane delta change count %d" n;
    let changes = List.init n (fun _ ->
        let i = read_varint s pos in
        let v = read_varint s pos in
        (i, v))
    in
    (cycle, changes)
end

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

module Writer = struct
  type t = {
    wr_signals : (string * int) array;
    wr_every : int;  (* samples between keyframes *)
    wr_buf : Buffer.t;  (* magic + header + frames so far *)
    mutable wr_last : int array;  (* values at the previous sample *)
    mutable wr_cycle : int;  (* previous sample's cycle *)
    mutable wr_ecycle : int;  (* cycle of the last emitted record *)
    mutable wr_samples : int;
    mutable wr_first_cycle : int;
    mutable wr_keys : (int * int) list;  (* (cycle, offset), newest first *)
  }

  let create ?(keyframe_every = 64) ~signals () =
    if keyframe_every < 1 then invalid_arg "Wavestore.Writer.create: keyframe_every < 1";
    let signals = Array.of_list signals in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf magic;
    Codec.add_varint buf (Array.length signals);
    Array.iter
      (fun (name, w) ->
        Codec.add_varint buf (String.length name);
        Buffer.add_string buf name;
        Codec.add_varint buf w)
      signals;
    Codec.add_varint buf keyframe_every;
    {
      wr_signals = signals;
      wr_every = keyframe_every;
      wr_buf = buf;
      wr_last = [||];
      wr_cycle = min_int;
      wr_ecycle = min_int;
      wr_samples = 0;
      wr_first_cycle = 0;
      wr_keys = [];
    }

  let sample_count t = t.wr_samples

  let sample t ~cycle values =
    if Array.length values <> Array.length t.wr_signals then
      invalid_arg "Wavestore.Writer.sample: value count mismatch";
    if t.wr_samples > 0 && cycle <= t.wr_cycle then
      invalid_arg
        (Printf.sprintf "Wavestore.Writer.sample: cycle %d after %d" cycle t.wr_cycle);
    if t.wr_samples = 0 || t.wr_samples mod t.wr_every = 0 then begin
      t.wr_keys <- (cycle, Buffer.length t.wr_buf) :: t.wr_keys;
      Buffer.add_char t.wr_buf 'K';
      Codec.add_varint t.wr_buf cycle;
      Array.iter (fun v -> Codec.add_varint t.wr_buf v) values;
      t.wr_ecycle <- cycle
    end
    else begin
      let changes = ref [] in
      for i = Array.length values - 1 downto 0 do
        if values.(i) <> t.wr_last.(i) then changes := (i, values.(i)) :: !changes
      done;
      (* A sample where nothing moved emits no record at all — the store
         is change-only between keyframes, which is where the size win
         over per-cycle VCD timestamps comes from.  Readers reconstruct
         the quiet cycles implicitly: a query cycle between two records
         resolves to the values of the record at or before it. *)
      match !changes with
      | [] -> ()
      | changes ->
        Buffer.add_char t.wr_buf 'D';
        Codec.add_varint t.wr_buf (cycle - t.wr_ecycle);
        Codec.add_varint t.wr_buf (List.length changes);
        List.iter
          (fun (i, v) ->
            Codec.add_varint t.wr_buf i;
            Codec.add_varint t.wr_buf v)
          changes;
        t.wr_ecycle <- cycle
    end;
    if t.wr_samples = 0 then t.wr_first_cycle <- cycle;
    t.wr_last <- Array.copy values;
    t.wr_cycle <- cycle;
    t.wr_samples <- t.wr_samples + 1

  let contents t =
    let index = Buffer.create 256 in
    Codec.add_varint index t.wr_samples;
    Codec.add_varint index (if t.wr_samples = 0 then 0 else t.wr_first_cycle);
    Codec.add_varint index (if t.wr_samples = 0 then 0 else t.wr_cycle);
    let keys = List.rev t.wr_keys in
    Codec.add_varint index (List.length keys);
    List.iter
      (fun (c, off) ->
        Codec.add_varint index c;
        Codec.add_varint index off)
      keys;
    let index_off = Buffer.length t.wr_buf in
    let trailer = Bytes.create 12 in
    for i = 0 to 7 do
      Bytes.set trailer i (Char.chr ((index_off lsr (8 * (7 - i))) land 0xff))
    done;
    Bytes.blit_string tail_magic 0 trailer 8 4;
    Buffer.contents t.wr_buf ^ Buffer.contents index ^ Bytes.to_string trailer

  let save t ~path =
    let oc = open_out_bin path in
    output_string oc (contents t);
    close_out oc
end

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

module Reader = struct
  type t = {
    rd_data : string;
    rd_signals : (string * int) array;
    rd_every : int;
    rd_body : int;  (* offset of the first frame *)
    rd_index_off : int;  (* frames end here *)
    rd_samples : int;
    rd_first : int;
    rd_last : int;
    rd_keys : (int * int) array;  (* (keyframe cycle, frame offset) *)
  }

  let of_string data =
    let mlen = String.length magic in
    if String.length data < mlen + 12 then corrupt "too short";
    if String.sub data 0 mlen <> magic then corrupt "bad magic";
    if String.sub data (String.length data - 4) 4 <> tail_magic then
      corrupt "bad trailer magic";
    let index_off =
      let base = String.length data - 12 in
      let v = ref 0 in
      for i = 0 to 7 do
        v := (!v lsl 8) lor Char.code data.[base + i]
      done;
      !v
    in
    if index_off < mlen || index_off > String.length data - 12 then
      corrupt "insane index offset %d" index_off;
    let pos = ref mlen in
    let nsig = Codec.read_varint data pos in
    if nsig < 0 || nsig > String.length data then corrupt "insane signal count %d" nsig;
    let signals =
      Array.init nsig (fun _ ->
          let len = Codec.read_varint data pos in
          if len < 0 || !pos + len > String.length data then
            corrupt "truncated signal name";
          let name = String.sub data !pos len in
          pos := !pos + len;
          let w = Codec.read_varint data pos in
          (name, w))
    in
    let every = Codec.read_varint data pos in
    let body = !pos in
    let pos = ref index_off in
    let samples = Codec.read_varint data pos in
    let first = Codec.read_varint data pos in
    let last = Codec.read_varint data pos in
    let nkeys = Codec.read_varint data pos in
    if nkeys < 0 || nkeys > String.length data then corrupt "insane key count %d" nkeys;
    let keys =
      Array.init nkeys (fun _ ->
          let c = Codec.read_varint data pos in
          let off = Codec.read_varint data pos in
          if off < body || off >= index_off then corrupt "key offset %d out of body" off;
          (c, off))
    in
    {
      rd_data = data;
      rd_signals = signals;
      rd_every = every;
      rd_body = body;
      rd_index_off = index_off;
      rd_samples = samples;
      rd_first = first;
      rd_last = last;
      rd_keys = keys;
    }

  let load path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let data = really_input_string ic n in
    close_in ic;
    of_string data

  let signals t = t.rd_signals
  let sample_count t = t.rd_samples
  let keyframe_count t = Array.length t.rd_keys
  let keyframe_every t = t.rd_every
  let first_cycle t = if t.rd_samples = 0 then None else Some t.rd_first
  let last_cycle t = if t.rd_samples = 0 then None else Some t.rd_last

  let signal_index t name =
    let n = Array.length t.rd_signals in
    let rec go i =
      if i >= n then None else if fst t.rd_signals.(i) = name then Some i else go (i + 1)
    in
    go 0

  (* Decodes the frame at [pos], updating [values] (current snapshot)
     and [cycle] in place; returns the per-frame change list ([] means
     a keyframe frame is reported as a change of every signal). *)
  let step t pos ~values ~cycle =
    let nsig = Array.length t.rd_signals in
    if !pos >= t.rd_index_off then corrupt "scan past body end";
    let tag = t.rd_data.[!pos] in
    incr pos;
    match tag with
    | 'K' ->
      let c = Codec.read_varint t.rd_data pos in
      let changes = ref [] in
      (* read in order, report changed-vs-previous for callers that
         want a change view of the keyframe *)
      let fresh = Array.init nsig (fun _ -> Codec.read_varint t.rd_data pos) in
      for i = nsig - 1 downto 0 do
        if !cycle = min_int || fresh.(i) <> values.(i) then
          changes := (i, fresh.(i)) :: !changes
      done;
      Array.blit fresh 0 values 0 nsig;
      cycle := c;
      !changes
    | 'D' ->
      let dc = Codec.read_varint t.rd_data pos in
      let n = Codec.read_varint t.rd_data pos in
      if n < 0 || n > nsig then corrupt "insane change count %d" n;
      let changes = List.init n (fun _ ->
          let i = Codec.read_varint t.rd_data pos in
          let v = Codec.read_varint t.rd_data pos in
          if i < 0 || i >= nsig then corrupt "change index %d out of range" i;
          values.(i) <- v;
          (i, v))
      in
      cycle := !cycle + dc;
      changes
    | c -> corrupt "unknown frame tag %C" c

  (* The last keyframe whose cycle is <= [cycle]: binary search over
     the index. *)
  let seek t cycle =
    let keys = t.rd_keys in
    let n = Array.length keys in
    if n = 0 || cycle < fst keys.(0) then None
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if fst keys.(mid) <= cycle then lo := mid else hi := mid - 1
      done;
      Some keys.(!lo)
    end

  (* Folds [f] over samples from the beginning (or from a keyframe at
     or before [from]) while [f] keeps returning [true]. *)
  let scan ?from t f =
    if t.rd_samples > 0 then begin
      let from_start = if Array.length t.rd_keys = 0 then None else Some t.rd_keys.(0) in
      let start =
        match from with
        | None -> from_start
        | Some c -> (
          (* a target before the first keyframe still scans from the
             beginning — the caller filters by cycle *)
          match seek t c with Some k -> Some k | None -> from_start)
      in
      match start with
      | None -> ()
      | Some (_, off) ->
        let nsig = Array.length t.rd_signals in
        let values = Array.make nsig 0 in
        let cycle = ref min_int in
        let pos = ref off in
        let continue = ref true in
        while !continue && !pos < t.rd_index_off do
          let changes = step t pos ~values ~cycle in
          continue := f ~cycle:!cycle ~values ~changes
        done
    end

  let values_at t ~cycle =
    if t.rd_samples = 0 || cycle < t.rd_first then None
    else begin
      let best = ref None in
      scan ~from:cycle t (fun ~cycle:c ~values ~changes:_ ->
          if c <= cycle then begin
            best := Some (Array.copy values);
            true
          end
          else false);
      !best
    end

  let value_at t ~cycle name =
    match signal_index t name with
    | None -> None
    | Some i -> (
      match values_at t ~cycle with
      | None -> None
      | Some vs -> Some vs.(i))

  (* Samples with cycle in [lo, hi], oldest first; each carries the
     (index, value) changes vs the previous sample, except the first
     returned sample which carries a full snapshot so a slice is
     self-contained. *)
  let slice t ~lo ~hi =
    let out = ref [] in
    let started = ref false in
    scan ~from:lo t (fun ~cycle ~values ~changes ->
        if cycle > hi then false
        else begin
          if cycle >= lo then begin
            let ev =
              if !started then changes
              else Array.to_list (Array.mapi (fun i v -> (i, v)) values)
            in
            started := true;
            out := (cycle, ev) :: !out
          end;
          true
        end);
    List.rev !out

  (* Per-signal change lists (cycle, value), oldest first — every
     signal's first sampled cycle opens its list. *)
  let change_lists t =
    let nsig = Array.length t.rd_signals in
    let out = Array.make nsig [] in
    let first = ref true in
    scan t (fun ~cycle ~values ~changes ->
        if !first then begin
          first := false;
          Array.iteri (fun i v -> out.(i) <- [ (cycle, v) ]) values
        end
        else
          List.iter (fun (i, _) -> out.(i) <- (cycle, values.(i)) :: out.(i)) changes;
        true);
    Array.map List.rev out

  (* Lossless conversion to VCD text.  The defaults (single [top]
     scope, vars in signal order, version "fireaxe probes") make the
     output byte-identical to [Capture.probe_trace] of the same probes
     and samples. *)
  let to_vcd ?(version = "fireaxe probes") t =
    let w = Rtlsim.Vcd.Writer.create ~version () in
    Rtlsim.Vcd.Writer.scope w "top";
    let vars =
      Array.map
        (fun (name, width) -> Rtlsim.Vcd.Writer.var w ~name ~width)
        t.rd_signals
    in
    Rtlsim.Vcd.Writer.upscope w;
    scan t (fun ~cycle ~values ~changes:_ ->
        Rtlsim.Vcd.Writer.time w cycle;
        Array.iteri (fun i v -> Rtlsim.Vcd.Writer.change w vars.(i) v) values;
        true);
    Rtlsim.Vcd.Writer.contents w
end

(* ------------------------------------------------------------------ *)
(* VCD ingestion (for crosschecks)                                     *)
(* ------------------------------------------------------------------ *)

(* Just enough of a VCD parser to semantically compare a store against
   a VCD rendered by this repo: flat var table (scopes recorded but
   names matched scope-free, as our writers emit unique leaf names),
   '#' timestamps, '0'/'1' scalar and 'b...' vector changes. *)
module Vcd_in = struct
  type t = {
    vi_signals : (string * int) array;  (* sanitized leaf name, width *)
    vi_changes : (int * int) list array;  (* per signal, oldest first *)
  }

  let signals t = t.vi_signals

  let changes t name =
    let n = Array.length t.vi_signals in
    let rec go i =
      if i >= n then None
      else if fst t.vi_signals.(i) = name then Some t.vi_changes.(i)
      else go (i + 1)
    in
    go 0

  let parse text =
    let lines = String.split_on_char '\n' text in
    let vars = Hashtbl.create 31 in  (* id -> slot *)
    let names = ref [] in  (* (name, width), newest first *)
    let nslots = ref 0 in
    let body = ref [] in  (* remaining lines after $enddefinitions *)
    let rec header = function
      | [] -> ()
      | line :: rest -> (
        match Libdn.Wire.words line with
        | "$var" :: _kind :: w :: id :: name :: _ ->
          let width =
            match int_of_string_opt w with
            | Some w -> w
            | None -> corrupt "bad $var width %S" w
          in
          Hashtbl.replace vars id !nslots;
          names := (name, width) :: !names;
          incr nslots;
          header rest
        | "$enddefinitions" :: _ -> body := rest
        | _ -> header rest)
    in
    header lines;
    let changes = Array.make !nslots [] in
    let time = ref 0 in
    let record id v =
      match Hashtbl.find_opt vars id with
      | None -> corrupt "change for undeclared id %S" id
      | Some slot -> changes.(slot) <- (!time, v) :: changes.(slot)
    in
    List.iter
      (fun line ->
        if line <> "" then
          match line.[0] with
          | '#' -> (
            match int_of_string_opt (String.sub line 1 (String.length line - 1)) with
            | Some t -> time := t
            | None -> corrupt "bad timestamp %S" line)
          | '0' | '1' ->
            record (String.sub line 1 (String.length line - 1)) (Char.code line.[0] - Char.code '0')
          | 'b' -> (
            match String.index_opt line ' ' with
            | None -> corrupt "bad vector change %S" line
            | Some sp ->
              let bits = String.sub line 1 (sp - 1) in
              let id = String.sub line (sp + 1) (String.length line - sp - 1) in
              let v = ref 0 in
              String.iter
                (fun c ->
                  v := (!v lsl 1) lor (if c = '1' then 1 else 0))
                bits;
              record id !v)
          | '$' -> ()  (* $dumpvars etc. *)
          | _ -> ())
      !body;
    {
      vi_signals = Array.of_list (List.rev !names);
      vi_changes = Array.map List.rev changes;
    }
end

let sanitize = Rtlsim.Vcd.sanitize

(* Semantic store-vs-VCD comparison: every store signal must have a VCD
   var of the same sanitized leaf name with an identical (cycle, value)
   change list.  VCD-only vars (e.g. channel-depth tracks) are ignored.
   Returns human-readable divergence lines; [] certifies a match. *)
let diff_vcd reader vcd_text =
  let vcd = Vcd_in.parse vcd_text in
  let lists = Reader.change_lists reader in
  let sigs = Reader.signals reader in
  let issues = ref [] in
  Array.iteri
    (fun i (name, width) ->
      let want = lists.(i) in
      match Vcd_in.changes vcd (sanitize name) with
      | None -> issues := Printf.sprintf "%s: missing from VCD" name :: !issues
      | Some got ->
        (match
           Array.to_list (Vcd_in.signals vcd)
           |> List.find_opt (fun (n, _) -> n = sanitize name)
         with
        | Some (_, w) when w <> width ->
          issues := Printf.sprintf "%s: width %d in store, %d in VCD" name width w :: !issues
        | _ ->
          let rec cmp a b =
            match (a, b) with
            | [], [] -> ()
            | (c, v) :: a', (c', v') :: b' when c = c' && v = v' -> cmp a' b'
            | (c, v) :: _, (c', v') :: _ ->
              issues :=
                Printf.sprintf "%s: store has %d@%d, VCD has %d@%d" name v c v' c'
                :: !issues
            | (c, v) :: _, [] ->
              issues := Printf.sprintf "%s: store has %d@%d past VCD end" name v c :: !issues
            | [], (c, v) :: _ ->
              issues := Printf.sprintf "%s: VCD has %d@%d past store end" name v c :: !issues
          in
          cmp want got))
    sigs;
  List.rev !issues

(* Store-vs-store comparison under the same contract. *)
let diff_stores a b =
  let issues = ref [] in
  let sa = Reader.signals a and sb = Reader.signals b in
  if sa <> sb then issues := [ "signal tables differ" ]
  else begin
    let la = Reader.change_lists a and lb = Reader.change_lists b in
    Array.iteri
      (fun i (name, _) ->
        if la.(i) <> lb.(i) then
          issues := Printf.sprintf "%s: change lists differ" name :: !issues)
      sa
  end;
  List.rev !issues
