(** Compact indexed binary waveform store — schema [fireaxe-wave-1].

    The affordable full-capture sink: per-sample change-only records
    with varint cycle deltas, a keyframe carrying every signal value
    every [keyframe_every] samples, and a trailing cycle index so
    random access ({!Reader.values_at}, {!Reader.slice}) is a binary
    search over keyframes plus a bounded forward scan.  Conversion back
    to VCD ({!Reader.to_vcd}) is lossless — with the default options it
    reproduces [Capture.probe_trace] byte for byte — so GTKWave
    workflows lose nothing by capturing binary first.

    The varint/delta codec is exposed ({!Codec}) because the service's
    [watch] push frames carry probe deltas in exactly this encoding. *)

val schema : string

(** The store bytes are not a valid [fireaxe-wave-1] document (bad
    magic, truncated varint, out-of-range offset...). *)
exception Corrupt of string

(** LEB128 varints over the int's unsigned bit pattern, plus the
    probe-delta record shared with the service push protocol. *)
module Codec : sig
  val add_varint : Buffer.t -> int -> unit

  (** Reads one varint at [!pos], advancing it.  Raises {!Corrupt} on
      truncation or overflow. *)
  val read_varint : string -> int ref -> int

  (** One delta record: target cycle + (signal index, value) changes. *)
  val encode_delta : cycle:int -> changes:(int * int) list -> string

  val decode_delta : string -> int * (int * int) list
end

module Writer : sig
  type t

  (** [create ~signals ()] opens a store over the ordered signal table
      [(name, width)].  [keyframe_every] (default 64) bounds the scan
      distance after an index seek. *)
  val create : ?keyframe_every:int -> signals:(string * int) list -> unit -> t

  (** Records the full value snapshot for [cycle]; only changes are
      stored.  Cycles must be strictly increasing. *)
  val sample : t -> cycle:int -> int array -> unit

  val sample_count : t -> int

  (** The complete store (header + frames + index + trailer).  The
      writer remains usable; call again after more samples. *)
  val contents : t -> string

  val save : t -> path:string -> unit
end

module Reader : sig
  type t

  (** Raises {!Corrupt} on malformed bytes. *)
  val of_string : string -> t

  val load : string -> t
  val signals : t -> (string * int) array
  val sample_count : t -> int
  val keyframe_count : t -> int
  val keyframe_every : t -> int
  val first_cycle : t -> int option
  val last_cycle : t -> int option
  val signal_index : t -> string -> int option

  (** The full snapshot at the latest sample with cycle <= [cycle]
      (index seek + bounded scan); [None] before the first sample. *)
  val values_at : t -> cycle:int -> int array option

  (** One signal's value under the {!values_at} contract. *)
  val value_at : t -> cycle:int -> string -> int option

  (** Samples with cycle in [lo, hi], oldest first, as (cycle,
      (signal index, value) changes); the first returned sample carries
      a full snapshot so a slice is self-contained. *)
  val slice : t -> lo:int -> hi:int -> (int * (int * int) list) list

  (** Per-signal (cycle, value) change lists, oldest first — the
      canonical semantic view both diffs compare. *)
  val change_lists : t -> (int * int) list array

  (** Lossless VCD text.  Defaults (single [top] scope, vars in signal
      order, version ["fireaxe probes"]) reproduce
      [Capture.probe_trace] byte for byte for the same samples. *)
  val to_vcd : ?version:string -> t -> string
end

(** Minimal reader for VCDs this repo writes, for crosschecks. *)
module Vcd_in : sig
  type t

  val parse : string -> t
  val signals : t -> (string * int) array

  (** Change list of the var with this (sanitized) leaf name. *)
  val changes : t -> string -> (int * int) list option
end

(** Semantic store-vs-VCD comparison: every store signal must appear in
    the VCD (sanitized leaf name) with an identical change list;
    VCD-only vars (channel tracks) are ignored.  Returns divergence
    descriptions; [[]] certifies a match. *)
val diff_vcd : Reader.t -> string -> string list

(** Store-vs-store comparison under the same contract. *)
val diff_stores : Reader.t -> Reader.t -> string list
